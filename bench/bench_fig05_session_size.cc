// Figure 5 — Session size: (a) CDF of file operations per session;
// (b) store-only session volume vs stored-file count (linear at ~1.5 MB per
// file); (c) retrieve-only session volume vs retrieved-file count (average
// above the 75th percentile; single-file sessions averaging ~70 MB).
#include "bench_util.h"

#include "analysis/session_stats.h"
#include "analysis/sessionizer.h"
#include "model/paper_params.h"
#include "stats/regression.h"
#include "trace/filters.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 5", "session size vs file-operation count");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto sessions =
      analysis::Sessionizer().Sessionize(MobileOnly(w.trace));

  // (a) CDF of operations per session.
  const auto store_ops =
      analysis::OpCountSample(sessions, analysis::Session::Type::kStoreOnly);
  const auto retrieve_ops = analysis::OpCountSample(
      sessions, analysis::Session::Type::kRetrieveOnly);
  const std::vector<double> grid = {1, 2, 3, 5, 10, 20, 50, 100, 200};
  std::printf("\n(a) file operations per session\n");
  bench::PrintCdf("store-only", store_ops, grid, "ops");
  bench::PrintCdf("retrieve-only", retrieve_ops, grid, "ops");
  {
    const Ecdf se(std::vector<double>(store_ops.begin(), store_ops.end()));
    bench::PaperVsMeasured("share of single-op sessions (~0.4)",
                           paper::kSingleOpSessionShare, se.Evaluate(1.0));
    bench::PaperVsMeasured("share of >20-op sessions (~0.1)",
                           paper::kOver20OpSessionShare, se.Ccdf(20.0));
  }

  // (b) and (c): binned session volumes.
  const auto print_bins = [](const char* title,
                             const std::vector<analysis::SessionSizeBin>&
                                 bins) {
    std::printf("\n%s\n", title);
    std::printf("  %6s %9s %10s %10s %10s %10s\n", "#files", "sessions",
                "avg MB", "median MB", "p25 MB", "p75 MB");
    for (const auto& b : bins) {
      if (b.file_ops > 10 && b.file_ops % 10 != 0) continue;
      std::printf("  %6zu %9zu %10.1f %10.1f %10.1f %10.1f\n", b.file_ops,
                  b.sessions, b.avg_mb, b.median_mb, b.p25_mb, b.p75_mb);
    }
  };
  const auto store_bins = analysis::SessionSizeByOpCount(
      sessions, analysis::Session::Type::kStoreOnly);
  const auto retrieve_bins = analysis::SessionSizeByOpCount(
      sessions, analysis::Session::Type::kRetrieveOnly);
  print_bins("(b) store-only session volume", store_bins);
  print_bins("(c) retrieve-only session volume", retrieve_bins);

  // Linear coefficient of the store-only relationship.
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& b : store_bins) {
    if (b.sessions < 5) continue;
    xs.push_back(static_cast<double>(b.file_ops));
    ys.push_back(b.avg_mb);
  }
  std::printf("\nHeadline observations:\n");
  if (xs.size() >= 2) {
    const LinearFit fit = FitLinear(xs, ys);
    bench::PaperVsMeasured("store volume slope (MB/file, ~1.5)",
                           paper::kStoreLinearCoefficientMB, fit.slope,
                           "MB/file");
  }
  for (const auto& b : retrieve_bins) {
    if (b.file_ops == 1) {
      bench::PaperVsMeasured("avg volume of 1-file retrieve sessions (~70)",
                             paper::kRetrieveSingleFileAvgMB, b.avg_mb, "MB");
      bench::PaperVsMeasured("  ... average exceeds p75 (1 = yes)", 1.0,
                             b.avg_mb > b.p75_mb ? 1.0 : 0.0);
      break;
    }
  }
  return 0;
}
