// Figure 8 — User engagement: of the users active on the first observation
// day, the fraction active again on each following day, per device-profile
// group. Paper: a bimodal pattern — users either return within a day or two
// or stay away all week; about half of single-device users never return,
// under 20% of multi-device users.
#include "bench_util.h"

#include "analysis/engagement.h"
#include "analysis/sessionizer.h"
#include "model/paper_params.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 8", "user engagement: returns after the first day");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto sessions = analysis::Sessionizer().Sessionize(w.trace);
  const auto usage = analysis::BuildUserUsage(w.trace);
  const auto curves = analysis::ReturnCurves(sessions, usage, kTraceStart);

  std::printf("\nfraction of day-1 users active on day x:\n");
  std::printf("  %-16s %8s", "group", "users");
  for (int d = 1; d <= 6; ++d) std::printf("  day %d", d);
  std::printf("   >6 (never)\n");
  for (const auto& c : curves) {
    std::printf("  %-16s %8zu",
                std::string(analysis::ToString(c.group)).c_str(),
                c.day1_users);
    for (double v : c.active_on_day) std::printf("  %5.2f", v);
    std::printf("   %5.2f\n", c.never_returned);
  }

  std::printf("\nHeadline observations:\n");
  bench::PaperVsMeasured("1-device never-return share (~0.5)",
                         paper::kSingleDeviceNoReturnShare,
                         curves[0].never_returned);
  bench::PaperVsMeasured(">1-device never-return share (<0.2)",
                         paper::kMultiDeviceNoReturnShare,
                         curves[1].never_returned);
  bench::PaperVsMeasured("mobile&PC never-return share (<0.2)", 0.15,
                         curves[3].never_returned);
  return 0;
}
