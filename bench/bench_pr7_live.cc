// PR 7 bench — simulated vs live T_tran.
//
//   bench_pr7_live [USERS] [SEED] [--duration S] [--connections N]
//                  [--max-chunk-kb K] [--out FILE.json]
//
// Generates one synthetic workload trace and measures its per-chunk
// transfer time (t_tran = T_chunk − T_srv) twice over the *same* request
// population:
//   * simulated — the calibrated generative model's timings carried in the
//     trace records (the paper-fidelity numbers: WAN RTTs, device radios,
//     server windows);
//   * live      — the same records replayed open-loop by the src/net stack
//     against an in-process `mcloudd` server on loopback TCP, T_chunk
//     measured first-byte-in → last-byte-out on the real kernel.
// The gap between the two columns is exactly the WAN: loopback has ~50 µs
// RTT and no radio wakeups, so live percentiles sit orders of magnitude
// below simulated ones. The bench exists to (a) prove the live path
// produces the same log schema and per-session record counts, and (b) pin
// the loopback baseline so regressions in the server/event-loop show up as
// a live-percentile drift. Writes BENCH_PR7.json (see EXPERIMENTS.md).
#include "bench_util.h"

#include <atomic>
#include <thread>

#include "net/epoll_server.h"
#include "net/live_service.h"
#include "net/replay.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("PR 7", "live service mode: simulated vs live t_tran");

  const char* a1 = bench::Positional(argc, argv, 1);
  const char* a2 = bench::Positional(argc, argv, 2);
  double duration = 15.0;
  Bytes max_chunk_kb = 32;
  int connections = 4;
  std::string out_path = "BENCH_PR7.json";
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--duration") duration = std::strtod(argv[i + 1], nullptr);
    if (a == "--connections")
      connections = static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
    if (a == "--max-chunk-kb")
      max_chunk_kb = std::strtoull(argv[i + 1], nullptr, 10);
    if (a == "--out") out_path = argv[i + 1];
  }

  workload::WorkloadConfig wc;
  wc.population.mobile_users = a1 ? std::strtoul(a1, nullptr, 10) : 40;
  wc.population.pc_only_users = 0;
  wc.seed = a2 ? std::strtoull(a2, nullptr, 10) : 7;
  wc.threads = 1;
  std::printf("# workload: %zu mobile users, seed %llu\n",
              wc.population.mobile_users,
              static_cast<unsigned long long>(wc.seed));
  const std::vector<LogRecord> trace =
      workload::WorkloadGenerator(wc).Generate().trace;

  // Simulated t_tran: the calibrated model's chunk timings in the trace.
  std::vector<double> sim_ttran;
  for (const LogRecord& r : trace) {
    if (r.request_type == RequestType::kChunkRequest) {
      sim_ttran.push_back(r.processing_time - r.server_time);
    }
  }

  // Live side: in-process mcloudd on an ephemeral loopback port.
  net::LiveServiceConfig service_config;
  net::LiveService service(service_config);
  net::ServerConfig server_config;
  net::EpollServer server(
      server_config,
      [&service](const net::HttpRequest& req, const net::RequestContext& ctx) {
        return service.Handle(req, ctx);
      });
  const std::uint16_t port = server.Start();
  std::thread server_thread([&server] { server.Run(); });

  net::ReplayPlanOptions plan_options;
  plan_options.max_chunk_bytes = max_chunk_kb * kKiB;
  plan_options.target_qps = static_cast<double>(trace.size()) / duration;
  const net::ReplayPlan plan = net::BuildReplayPlan(trace, plan_options);
  net::ReplayOptions replay_options;
  replay_options.port = port;
  replay_options.connections = connections;
  std::printf("# replay: %zu requests over ~%.0fs on %d connections, "
              "chunk bodies capped at %llu KiB\n",
              plan.items.size(), duration, connections,
              static_cast<unsigned long long>(max_chunk_kb));
  const net::ReplayReport report = net::ExecuteReplay(plan, replay_options);

  server.RequestStop();
  server_thread.join();
  const std::vector<LogRecord> live = service.TakeLog();
  const auto mismatch = net::LiveLogMatchesTrace(trace, live);

  std::vector<double> live_ttran;
  for (const LogRecord& r : live) {
    if (r.request_type == RequestType::kChunkRequest) {
      live_ttran.push_back(r.processing_time - r.server_time);
    }
  }

  std::printf("\nper-chunk t_tran, simulated (WAN model) vs live (loopback):\n");
  std::printf("  %-10s %12s %12s\n", "quantile", "simulated", "live");
  const double cuts[] = {50, 90, 99, 99.9};
  double sim_q[4] = {}, live_q[4] = {};
  for (int i = 0; i < 4; ++i) {
    sim_q[i] = Percentile(sim_ttran, cuts[i]);
    live_q[i] = Percentile(live_ttran, cuts[i]);
    std::printf("  p%-9.4g %10.4g s %10.4g s\n", cuts[i], sim_q[i],
                live_q[i]);
  }
  std::printf("\nreplay client (open-loop, from scheduled send instant):\n");
  std::printf("  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  p999 %.3f ms; "
              "%.0f req/s achieved\n",
              report.LatencyQuantile(0.50) * 1e3,
              report.LatencyQuantile(0.90) * 1e3,
              report.LatencyQuantile(0.99) * 1e3,
              report.LatencyQuantile(0.999) * 1e3, report.achieved_qps);
  std::printf("  %llu sent, %llu ok, %llu verify failures; live log %s\n",
              static_cast<unsigned long long>(report.sent),
              static_cast<unsigned long long>(report.ok),
              static_cast<unsigned long long>(report.verify_failures),
              mismatch ? mismatch->c_str() : "matches trace 1:1");

  char body[2048];
  std::snprintf(
      body, sizeof(body),
      "  \"users\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"records\": %zu,\n"
      "  \"chunk_requests\": %zu,\n"
      "  \"connections\": %d,\n"
      "  \"max_chunk_kb\": %llu,\n"
      "  \"achieved_qps\": %.1f,\n"
      "  \"sent\": %llu,\n"
      "  \"ok\": %llu,\n"
      "  \"verify_failures\": %llu,\n"
      "  \"live_log_matches_trace\": %s,\n"
      "  \"sim_ttran_s\": {\"p50\": %.6g, \"p90\": %.6g, \"p99\": %.6g, "
      "\"p999\": %.6g},\n"
      "  \"live_ttran_s\": {\"p50\": %.6g, \"p90\": %.6g, \"p99\": %.6g, "
      "\"p999\": %.6g},\n"
      "  \"client_latency_s\": {\"p50\": %.6g, \"p90\": %.6g, \"p99\": "
      "%.6g, \"p999\": %.6g}\n",
      wc.population.mobile_users,
      static_cast<unsigned long long>(wc.seed), trace.size(),
      sim_ttran.size(), connections,
      static_cast<unsigned long long>(max_chunk_kb), report.achieved_qps,
      static_cast<unsigned long long>(report.sent),
      static_cast<unsigned long long>(report.ok),
      static_cast<unsigned long long>(report.verify_failures),
      mismatch ? "false" : "true", sim_q[0], sim_q[1], sim_q[2], sim_q[3],
      live_q[0], live_q[1], live_q[2], live_q[3],
      report.LatencyQuantile(0.50), report.LatencyQuantile(0.90),
      report.LatencyQuantile(0.99), report.LatencyQuantile(0.999));
  bench::EmitBenchJson(out_path, "pr7_live", body);
  return (mismatch || report.verify_failures > 0 ||
          report.transport_errors > 0)
             ? 1
             : 0;
}
