// Figure 16 — Dissecting the idle time between consecutive chunks:
// (a) T_clt / T_srv CDFs for storage flows, (b) for retrieval flows,
// (c) CDF of idle/RTO. Paper: T_srv ≈ 100 ms regardless of device; Android
// T_clt is far larger; ~60% of Android storage gaps exceed the RTO and
// restart slow start, vs ~18% on iOS.
#include "bench_util.h"

#include "analysis/perf_analysis.h"
#include "model/paper_params.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 16", "idle time between chunks: T_clt, T_srv, RTO");
  const auto result = bench::Section4Result(argc, argv);
  const auto& perf = result.chunk_perf;

  const auto grid = LogGrid(0.001, 30.0, 14);
  for (auto [dir, title] :
       {std::pair{Direction::kStore, "(a) storage flows"},
        std::pair{Direction::kRetrieve, "(b) retrieval flows"}}) {
    std::printf("\n%s\n", title);
    bench::PrintCdf("android T_clt",
                    analysis::TcltSamples(perf, DeviceType::kAndroid, dir),
                    grid, "s");
    bench::PrintCdf("iOS T_clt",
                    analysis::TcltSamples(perf, DeviceType::kIos, dir), grid,
                    "s");
    bench::PrintCdf("android T_srv",
                    analysis::TsrvSamples(perf, DeviceType::kAndroid, dir),
                    grid, "s");
    bench::PrintCdf("iOS T_srv",
                    analysis::TsrvSamples(perf, DeviceType::kIos, dir), grid,
                    "s");
  }

  std::printf("\n(c) idle time / RTO\n");
  const auto ratio_grid = LinGrid(0.0, 5.0, 21);
  bench::PrintCdf("android storage",
                  analysis::IdleToRtoRatios(perf, DeviceType::kAndroid,
                                            Direction::kStore),
                  ratio_grid, "idle/RTO");
  bench::PrintCdf("iOS storage",
                  analysis::IdleToRtoRatios(perf, DeviceType::kIos,
                                            Direction::kStore),
                  ratio_grid, "idle/RTO");
  bench::PrintCdf("android retrieval",
                  analysis::IdleToRtoRatios(perf, DeviceType::kAndroid,
                                            Direction::kRetrieve),
                  ratio_grid, "idle/RTO");
  bench::PrintCdf("iOS retrieval",
                  analysis::IdleToRtoRatios(perf, DeviceType::kIos,
                                            Direction::kRetrieve),
                  ratio_grid, "idle/RTO");

  std::printf("\nHeadline observations:\n");
  bench::PaperVsMeasured(
      "Android storage gaps restarting slow start",
      paper::kAndroidIdleOverRtoShare,
      analysis::SlowStartRestartShare(perf, DeviceType::kAndroid,
                                      Direction::kStore));
  bench::PaperVsMeasured(
      "iOS storage gaps restarting slow start",
      paper::kIosIdleOverRtoShare,
      analysis::SlowStartRestartShare(perf, DeviceType::kIos,
                                      Direction::kStore));
  const auto srv_a = analysis::TsrvSamples(perf, DeviceType::kAndroid,
                                           Direction::kStore);
  const auto srv_i =
      analysis::TsrvSamples(perf, DeviceType::kIos, Direction::kStore);
  bench::PaperVsMeasured("median T_srv Android (device-blind, ~0.1)",
                         paper::kMedianServerTime, Percentile(srv_a, 50),
                         "s");
  bench::PaperVsMeasured("median T_srv iOS (device-blind, ~0.1)",
                         paper::kMedianServerTime, Percentile(srv_i, 50),
                         "s");
  const auto clt_a = analysis::TcltSamples(perf, DeviceType::kAndroid,
                                           Direction::kRetrieve);
  bench::PaperVsMeasured("Android retrieval T_clt p90 (~1s)",
                         paper::kAndroidRetrievalP90Tclt,
                         Percentile(clt_a, 90), "s");
  return 0;
}
