// Sharded fleet + event-core benchmark (PR "sharded parallel fleet
// simulation with an allocation-free event core").
//
//   bench_pr5_fleet [--events N] [--sessions N] [--reps N]
//                   [--min-event-speedup X] [--out FILE.json]
//
// Two measurements, both asserted:
//
//   1. Event core: the pre-PR EventQueue (binary priority_queue of
//      std::function entries with two unordered_sets tracking pending and
//      cancelled ids) is embedded here verbatim as LegacyEventQueue and
//      driven through an identical schedule/cancel/drain churn loop against
//      the slot-pooled 4-ary-heap queue. The pooled core must clear
//      --min-event-speedup (default 3x) in single-thread events/sec.
//
//   2. Fleet: ExecuteFleet over a Section4-style session fleet at
//      --threads 1, 4, and hardware concurrency; the merged-result
//      fingerprints must be identical at every thread count (the PR's
//      determinism contract), and sessions/sec + events/sec are recorded
//      per thread count.
//
// Writes BENCH_PR5.json and exits non-zero if either assertion fails.
#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cloud/fleet.h"
#include "sim/event_queue.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timeutil.h"
#include "util/units.h"
#include "workload/session_plan.h"

namespace {

using namespace mcloud;
using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// The pre-PR event queue, embedded as the baseline under measurement.
// ---------------------------------------------------------------------------

class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  EventId ScheduleAt(Seconds at, Callback cb) {
    MCLOUD_REQUIRE(at >= now_, "cannot schedule an event in the past");
    MCLOUD_REQUIRE(cb != nullptr, "event callback must not be null");
    const EventId id = next_seq_++;
    heap_.push(Entry{at, id, std::move(cb)});
    pending_.insert(id);
    ++live_;
    return id;
  }

  bool Cancel(EventId id) {
    if (pending_.erase(id) == 0) return false;
    cancelled_.insert(id);
    --live_;
    return true;
  }

  [[nodiscard]] Seconds Now() const { return now_; }

  bool RunNext() {
    DiscardCancelled();
    if (heap_.empty()) return false;
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    pending_.erase(e.seq);
    --live_;
    now_ = e.at;
    ++executed_;
    e.cb();
    return true;
  }

  std::uint64_t RunAll(std::uint64_t max_events = ~0ULL) {
    std::uint64_t n = 0;
    while (n < max_events && RunNext()) ++n;
    return n;
  }

 private:
  struct Entry {
    Seconds at;
    EventId seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void DiscardCancelled() {
    while (!heap_.empty() && cancelled_.count(heap_.top().seq) > 0) {
      cancelled_.erase(heap_.top().seq);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  Seconds now_ = 0;
  EventId next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
};

// ---------------------------------------------------------------------------
// Event-core churn driver (identical schedule for both queue types)
// ---------------------------------------------------------------------------

/// The steady-state pattern the fleet drives: a deep standing window of
/// pending events (the fault scheduler installs full crash/restart
/// timelines up front; every in-flight flow holds a completion event),
/// continuous schedule/run churn against it, and a steady stream of live
/// cancellations (retry hedges retracted when the primary wins, fault
/// timelines truncated at the horizon). Callbacks capture the context a
/// real completion closure carries (~32 bytes — past std::function's
/// small-buffer limit, inside EventCallback's). Times come from a private
/// LCG, so both queue types see the exact same sequence.
template <typename Queue>
std::uint64_t DriveChurn(std::size_t total_events) {
  constexpr std::size_t kWindow = 1 << 17;  // standing pending events (fleet-scale)
  Queue q;
  std::uint64_t counter = 0;
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  const auto next_u64 = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  const auto schedule = [&] {
    const double at = q.Now() + static_cast<double>(next_u64() % 1000) * 1e-3;
    const std::uint64_t v = next_u64();
    const std::array<std::uint64_t, 3> ctx{v, v ^ 0x9E3779B9ULL, v * 31};
    return q.ScheduleAt(at, [&counter, ctx] {
      counter += 1 + ((ctx[0] ^ ctx[1] ^ ctx[2]) & 1);
    });
  };

  std::size_t scheduled = 0;
  for (; scheduled < kWindow && scheduled < total_events; ++scheduled)
    schedule();
  while (scheduled < total_events) {
    // One hedge per three committed events, retracted while still pending.
    const auto hedge = schedule();
    schedule();
    schedule();
    schedule();
    scheduled += 4;
    q.Cancel(hedge);
    q.RunNext();
    q.RunNext();
    q.RunNext();
  }
  q.RunAll();
  return counter;  // defeats dead-code elimination; also sanity-checked
}

template <typename Queue>
double BestEventsPerSec(std::size_t events, int reps,
                        std::uint64_t* executed) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    *executed = DriveChurn<Queue>(events);
    const double s = Since(t0);
    best = std::max(best, static_cast<double>(events) / s);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Fleet sweep
// ---------------------------------------------------------------------------

/// Section4-style fleet: single-file sessions, 78% Android, 60/40
/// store/retrieve, users spread so every shard of the 8-way split works.
std::vector<workload::SessionPlan> FleetPlans(std::size_t sessions) {
  Rng rng(7);
  std::vector<workload::SessionPlan> plans;
  plans.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    workload::SessionPlan s;
    s.user_id = i + 1;
    s.device_id = i + 1;
    s.device_type =
        rng.Bernoulli(0.784) ? DeviceType::kAndroid : DeviceType::kIos;
    s.start = kTraceStart + static_cast<UnixSeconds>(i * 30);
    workload::FileOp op;
    if (rng.Bernoulli(0.6)) {
      op.direction = Direction::kStore;
      op.size = FromMB(1.0 + rng.ExponentialMean(4.0));
    } else {
      op.direction = Direction::kRetrieve;
      op.size = FromMB(2.0 + rng.ExponentialMean(20.0));
    }
    s.ops.push_back(op);
    plans.push_back(s);
  }
  return plans;
}

struct FleetSample {
  int threads = 0;
  double wall_s = 0;
  double sessions_per_s = 0;
  double events_per_s = 0;
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t events = 1'000'000;
  std::size_t sessions = 3'000;
  int reps = 3;
  double min_event_speedup = 3.0;
  std::string out_path = "BENCH_PR5.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--events") == 0) {
      events = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--min-event-speedup") == 0) {
      min_event_speedup = std::strtod(argv[i + 1], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  // ---- event core ----
  std::uint64_t legacy_executed = 0;
  std::uint64_t pooled_executed = 0;
  std::fprintf(stderr, "event core: %zu events x %d reps per queue...\n",
               events, reps);
  const double legacy_eps =
      BestEventsPerSec<LegacyEventQueue>(events, reps, &legacy_executed);
  const double pooled_eps =
      BestEventsPerSec<EventQueue>(events, reps, &pooled_executed);
  const double event_speedup = pooled_eps / legacy_eps;
  const bool same_executed = legacy_executed == pooled_executed;
  std::fprintf(stderr,
               "  legacy %.2fM ev/s, pooled %.2fM ev/s -> %.2fx "
               "(executed %" PRIu64 " vs %" PRIu64 ")\n",
               legacy_eps / 1e6, pooled_eps / 1e6, event_speedup,
               legacy_executed, pooled_executed);

  // ---- fleet sweep ----
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> sweep = {1, 4};
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end())
    sweep.push_back(hw);

  const auto plans = FleetPlans(sessions);
  std::vector<FleetSample> fleet_samples;
  for (const int threads : sweep) {
    cloud::FleetConfig cfg;
    cfg.threads = threads;
    const auto t0 = Clock::now();
    const cloud::FleetResult fleet = cloud::ExecuteFleet(cfg, plans);
    FleetSample s;
    s.threads = threads;
    s.wall_s = Since(t0);
    s.events = fleet.result.queue.executed;
    s.sessions_per_s = static_cast<double>(plans.size()) / s.wall_s;
    s.events_per_s = static_cast<double>(s.events) / s.wall_s;
    s.fingerprint = cloud::FingerprintServiceResult(fleet.result);
    std::fprintf(stderr,
                 "fleet threads=%-2d  %.2fs  %.0f sessions/s  "
                 "%.2fM events/s  fp %016" PRIx64 "\n",
                 threads, s.wall_s, s.sessions_per_s, s.events_per_s / 1e6,
                 s.fingerprint);
    fleet_samples.push_back(s);
  }
  bool identical = !fleet_samples.empty();
  for (const FleetSample& s : fleet_samples)
    identical = identical && s.fingerprint == fleet_samples.front().fingerprint;

  const bool pass =
      identical && same_executed && event_speedup >= min_event_speedup;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"pr5_sharded_fleet_event_core\",\n"
      "  \"hardware_threads\": %d,\n"
      "  \"event_core\": {\n"
      "    \"churn_events\": %zu,\n"
      "    \"legacy_events_per_second\": %.0f,\n"
      "    \"pooled_events_per_second\": %.0f,\n"
      "    \"speedup_threads1\": %.2f,\n"
      "    \"min_speedup_required\": %.2f,\n"
      "    \"executed_identical\": %s\n"
      "  },\n"
      "  \"fleet\": {\n"
      "    \"sessions\": %zu,\n"
      "    \"shards\": 8,\n"
      "    \"fingerprints_identical\": %s,\n"
      "    \"samples\": [\n",
      hw, events, legacy_eps, pooled_eps, event_speedup, min_event_speedup,
      same_executed ? "true" : "false", sessions,
      identical ? "true" : "false");
  for (std::size_t i = 0; i < fleet_samples.size(); ++i) {
    const FleetSample& s = fleet_samples[i];
    std::fprintf(f,
                 "      {\"threads\": %d, \"wall_seconds\": %.3f, "
                 "\"sessions_per_second\": %.1f, "
                 "\"events_per_second\": %.0f, "
                 "\"events_executed\": %" PRIu64 ", "
                 "\"fingerprint\": \"%016" PRIx64 "\"}%s\n",
                 s.threads, s.wall_s, s.sessions_per_s, s.events_per_s,
                 s.events, s.fingerprint,
                 i + 1 < fleet_samples.size() ? "," : "");
  }
  std::fprintf(f,
               "    ]\n  },\n"
               "  \"pass\": %s\n"
               "}\n",
               pass ? "true" : "false");
  std::fclose(f);

  std::fprintf(stderr,
               "wrote %s: event speedup %.2fx (need %.2fx), fleet "
               "fingerprints %s -> %s\n",
               out_path.c_str(), event_speedup, min_event_speedup,
               identical ? "identical" : "DIVERGENT",
               pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
