// Generator fast path A/B bench (PR "radix-ordered columnar emission").
//
//   bench_pr10_generator [--users N] [--repeats R] [--threads-list 1,4]
//                        [--min-speedup X] [--out FILE.json]
//
// Measures the generate stage old vs new at each thread count:
//
//   * "old": the pre-PR path, embedded below verbatim — allocating
//     PlanUser per user, scalar EmitSession into per-shard AoS runs,
//     per-shard std::stable_sort + stable k-way merge.
//   * "new": WorkloadGenerator::Generate — pooled PlanUserInto, batched
//     normals, columnar emission, one global stable radix sort.
//
// Every run's trace is folded into the representation-independent
// TraceFingerprint; the bench FAILS unless all old/new fingerprints are
// identical (the fast path's whole claim is byte-identity) and the best
// new time beats the best old time by --min-speedup at threads=1.
// Writes the committed BENCH_PR10.json.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "trace/record_columns.h"
#include "util/merge.h"
#include "util/parallel.h"
#include "workload/diurnal.h"
#include "workload/generator.h"
#include "workload/log_emitter.h"
#include "workload/session_model.h"
#include "workload/user_model.h"

namespace {

using namespace mcloud;
using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---- the pre-PR generate path, embedded verbatim ------------------------
// This is WorkloadGenerator::PlanAndEmit + Generate as of the previous
// commit (allocating per-user planning, scalar emission, per-shard
// stable_sort, stable k-way merge), with only the Workload bookkeeping the
// bench does not need removed.

bool SessionStartOrder(const workload::SessionPlan& a,
                       const workload::SessionPlan& b) {
  if (a.start != b.start) return a.start < b.start;
  return a.user_id < b.user_id;
}

std::vector<LogRecord> OldGenerate(const workload::WorkloadConfig& config) {
  ThreadPool pool(config.threads);
  Rng rng(config.seed);

  workload::PopulationBuilder population(config.population, config.model);
  const std::vector<workload::UserProfile> users =
      population.Build(rng, &pool);
  const std::uint64_t session_root = rng.NextU64();

  const workload::DiurnalPattern diurnal(config.model.hour_weights);
  workload::SessionModelConfig smc;
  smc.trace_start = config.trace_start;
  smc.days = config.population.days;
  smc.model = config.model;
  const workload::SessionModel session_model(smc, diurnal);
  const workload::FastLogEmitter emitter;

  const std::size_t shards = ShardCount(pool, users.size());
  std::vector<std::vector<LogRecord>> local_runs(shards);

  ParallelForShards(
      pool, users.size(),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        std::vector<LogRecord>& trace = local_runs[shard];
        for (std::size_t i = begin; i < end; ++i) {
          const workload::UserProfile& user = users[i];
          Rng user_rng = Rng::ForStream(session_root, user.user_id);
          const std::vector<workload::SessionPlan> planned =
              session_model.PlanUser(user, user_rng);
          for (const workload::SessionPlan& s : planned)
            emitter.EmitSession(s, user_rng, trace);
          (void)SessionStartOrder;  // session merge order, kept for fidelity
        }
        std::stable_sort(trace.begin(), trace.end(), LogRecordTimeOrder);
      });

  return MergeSortedRuns(std::move(local_runs), LogRecordTimeOrder);
}

// -------------------------------------------------------------------------

struct Sample {
  std::string mode;
  int threads = 0;
  double seconds = 0;
  std::size_t records = 0;
  std::uint64_t fingerprint = 0;
  workload::GenTimings gt;  // new path only
};

workload::WorkloadConfig ConfigFor(std::size_t users, int threads) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = users;
  cfg.population.pc_only_users = users / 3;
  cfg.seed = 42;
  cfg.threads = threads;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t users = 20000;
  int repeats = 3;
  double min_speedup = 1.8;
  std::string out_path = "BENCH_PR10.json";
  std::vector<int> threads_list = {1, 4};
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--users") == 0) {
      users = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      repeats = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0) {
      min_speedup = std::strtod(argv[i + 1], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--threads-list") == 0) {
      threads_list.clear();
      for (const char* p = argv[i + 1]; *p != '\0';) {
        threads_list.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }

  std::vector<Sample> samples;
  for (const int threads : threads_list) {
    const workload::WorkloadConfig cfg = ConfigFor(users, threads);
    for (int r = 0; r < repeats; ++r) {
      {
        Sample s;
        s.mode = "old";
        s.threads = threads;
        const auto t0 = Clock::now();
        const std::vector<LogRecord> trace = OldGenerate(cfg);
        s.seconds = Since(t0);
        s.records = trace.size();
        s.fingerprint = TraceFingerprint(std::span<const LogRecord>(trace));
        std::fprintf(stderr,
                     "old  threads=%d run=%d  %.2fs  %zu records  fp %016"
                     PRIx64 "\n",
                     threads, r, s.seconds, s.records, s.fingerprint);
        samples.push_back(s);
      }
      {
        Sample s;
        s.mode = "new";
        s.threads = threads;
        const auto t0 = Clock::now();
        const workload::Workload w =
            workload::WorkloadGenerator(cfg).Generate(&s.gt);
        s.seconds = Since(t0);
        s.records = w.trace.size();
        s.fingerprint = TraceFingerprint(std::span<const LogRecord>(w.trace));
        std::fprintf(stderr,
                     "new  threads=%d run=%d  %.2fs  %zu records  fp %016"
                     PRIx64 "  (plan %.2f emit %.2f sort %.2f)\n",
                     threads, r, s.seconds, s.records, s.fingerprint,
                     s.gt.plan_s, s.gt.emit_s, s.gt.sort_s);
        samples.push_back(s);
      }
    }
  }

  // Hard gate 1: every fingerprint identical — old, new, every thread
  // count, every repeat.
  bool identical = true;
  for (const Sample& s : samples)
    identical = identical && s.fingerprint == samples.front().fingerprint &&
                s.records == samples.front().records;

  // Hard gate 2: best-of-repeats speedup at each thread count.
  const auto best = [&](const char* mode, int threads) {
    double b = 1e300;
    for (const Sample& s : samples)
      if (s.mode == mode && s.threads == threads) b = std::min(b, s.seconds);
    return b;
  };
  std::string speedup_json;
  double speedup_t1 = 0;
  for (const int threads : threads_list) {
    const double ratio = best("old", threads) / best("new", threads);
    if (threads == threads_list.front()) speedup_t1 = ratio;
    char line[128];
    std::snprintf(line, sizeof(line),
                  "    {\"threads\": %d, \"old_best_seconds\": %.3f, "
                  "\"new_best_seconds\": %.3f, \"speedup\": %.2f}%s\n",
                  threads, best("old", threads), best("new", threads), ratio,
                  threads == threads_list.back() ? "" : ",");
    speedup_json += line;
    std::fprintf(stderr, "threads=%d: old %.2fs new %.2fs -> %.2fx\n",
                 threads, best("old", threads), best("new", threads), ratio);
  }
  const bool pass = identical && speedup_t1 >= min_speedup;

  std::string body;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"mobile_users\": %zu,\n"
                "  \"trace_records\": %zu,\n"
                "  \"repeats\": %d,\n"
                "  \"fingerprint\": \"%016" PRIx64 "\",\n"
                "  \"fingerprints_identical\": %s,\n"
                "  \"speedup_threads_first\": %.2f,\n"
                "  \"min_speedup_required\": %.2f,\n"
                "  \"pass\": %s,\n"
                "  \"speedups\": [\n",
                users, samples.front().records, repeats,
                samples.front().fingerprint, identical ? "true" : "false",
                speedup_t1, min_speedup, pass ? "true" : "false");
  body += buf;
  body += speedup_json;
  body += "  ],\n  \"samples\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"%s\", \"threads\": %d, \"seconds\": %.3f, "
        "\"records_per_second\": %.0f, \"plan_seconds\": %.3f, "
        "\"emit_seconds\": %.3f, \"sort_seconds\": %.3f}%s\n",
        s.mode.c_str(), s.threads, s.seconds,
        static_cast<double>(s.records) / s.seconds, s.gt.plan_s, s.gt.emit_s,
        s.gt.sort_s, i + 1 < samples.size() ? "," : "");
    body += buf;
  }
  body += "  ]\n";
  bench::EmitBenchJson(out_path, "pr10_generator_fast_path", body);

  std::fprintf(stderr, "identical=%s speedup=%.2fx (need %.2fx) -> %s\n",
               identical ? "yes" : "NO", speedup_t1, min_speedup,
               pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
