// Figure 10 — Rank distribution of per-user stored (a) and retrieved (b)
// file counts: the stretched-exponential fit (store c=0.2, retrieve c=0.15,
// R² ≈ 0.999) versus the power-law model the paper rejects.
#include "bench_util.h"

#include "analysis/activity_model.h"
#include "stats/bootstrap.h"
#include "analysis/usage_patterns.h"
#include "model/paper_params.h"
#include "trace/filters.h"

namespace {

void Run(const char* name, const mcloud::analysis::ActivityModelResult& r,
         const mcloud::paper::SeParams& paper_params) {
  using namespace mcloud;
  std::printf("\n--- %s activity (%zu active users) ---\n", name,
              r.active_users);

  std::printf("rank curve (log-spaced ranks) vs SE model:\n");
  std::printf("  %8s %12s %12s\n", "rank", "data", "SE fit");
  for (std::size_t rank = 1; rank <= r.ranked.size();
       rank = rank < 4 ? rank + 1 : rank * 3) {
    std::printf("  %8zu %12.0f %12.1f\n", rank, r.ranked[rank - 1],
                StretchedExponentialRankValue(r.se, rank));
  }

  // Bootstrap 95% confidence intervals for the fitted SE parameters.
  std::vector<double> counts(r.ranked.begin(), r.ranked.end());
  const auto cis = BootstrapPercentileCi(
      counts,
      [](std::span<const double> sample) {
        const auto fit = FitStretchedExponentialRank(sample);
        return std::vector<double>{fit.c, fit.a};
      },
      100, 0.95, 7);
  std::printf("  %-46s paper=%-10.4g measured=%-10.4g [%.2f, %.2f] 95%% CI\n",
              "stretch factor c", paper_params.c, r.se.c, cis[0].lo,
              cis[0].hi);
  std::printf("  %-46s paper=%-10.4g measured=%-10.4g [%.2f, %.2f] 95%% CI\n",
              "slope a (= x0^c)", paper_params.a, r.se.a, cis[1].lo,
              cis[1].hi);
  std::printf("  %-46s paper=%-10.4g measured=%-10.4g (population-size "
              "dependent)\n",
              "intercept b", paper_params.b, r.se.b);
  bench::PaperVsMeasured("SE R^2", paper_params.r2, r.se.r_squared);
  std::printf("  %-46s measured=%.4f  ->  SE wins: %s\n",
              "power-law R^2 (rejected model)", r.power_law.r_squared,
              r.se.r_squared > r.power_law.r_squared ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 10",
                "stretched-exponential user activity vs power law");
  // The retrieve-side fit needs >= ~3000 active retrievers to escape
  // small-sample bias in the stretch factor, hence the larger default
  // population for this bench.
  auto cfg = bench::StandardConfig(argc, argv);
  if (argc <= 1) cfg.population.mobile_users = 20000;
  std::printf("# workload: %zu mobile users, seed %llu\n",
              cfg.population.mobile_users,
              static_cast<unsigned long long>(cfg.seed));
  const auto w = workload::WorkloadGenerator(cfg).Generate();
  const auto usage = analysis::BuildUserUsage(MobileOnly(w.trace));

  Run("stored-files", analysis::FitActivity(usage, Direction::kStore),
      paper::kStoreActivitySe);
  Run("retrieved-files", analysis::FitActivity(usage, Direction::kRetrieve),
      paper::kRetrieveActivitySe);

  std::printf("\nImplication: the SE law means \"core\" users dominate less "
              "than a power law\nwould predict — caching/prefetching must "
              "cover more users (Table 4).\n");
  return 0;
}
