// Wall-time smoke for the paper-fidelity validator: a full
// `mcloudctl validate`-equivalent run (generate → analyze → §4 fleet →
// every FigureCheck) must finish within a fixed budget at the standard
// 20k-user scale, so the CI validate job and the golden test stay cheap
// enough to run on every push. Prints the per-phase and per-check wall
// times recorded in the JSON manifest and exits non-zero over budget.
//
// Usage: bench_validate [users] [seed] [budget_seconds] [--json FILE]
//
// --json FILE additionally writes the timing/pass-rate manifest as a bench
// JSON artifact (the committed BENCH_PR4.json) via EmitBenchJson.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "validate/validator.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string_view(argv[i]) == flag) return argv[i + 1];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcloud;

  const char* a1 = bench::Positional(argc, argv, 1);
  const char* a2 = bench::Positional(argc, argv, 2);
  const char* a3 = bench::Positional(argc, argv, 3);
  validate::ValidateOptions opt;
  opt.users = a1 ? std::strtoul(a1, nullptr, 10) : 20'000;
  opt.seed = a2 ? std::strtoull(a2, nullptr, 10) : 42;
  opt.threads = bench::ParseThreads(argc, argv);
  const double budget_s = a3 ? std::strtod(a3, nullptr) : 30.0;
  const char* json_path = FlagValue(argc, argv, "--json");

  bench::Header("validate smoke",
                "full FigureCheck registry wall-time budget");
  std::printf("# %zu mobile users, seed %llu, budget %.1f s\n", opt.users,
              static_cast<unsigned long long>(opt.seed), budget_s);

  const validate::ValidationRun run = validate::RunValidation(opt);

  std::printf("\nphase wall times:\n");
  std::printf("  %-12s %8.2f s\n", "generate", run.generate_s);
  std::printf("  %-12s %8.2f s\n", "analyze", run.analyze_s);
  std::printf("  %-12s %8.2f s\n", "fleet", run.fleet_s);
  std::printf("  %-12s %8.2f s\n", "checks", run.checks_s);
  std::printf("  %-12s %8.2f s\n", "total", run.total_s);

  std::printf("\nper-check wall times:\n");
  for (const auto& o : run.outcomes)
    std::printf("  %-28s %8.4f s  %s\n", o.id.c_str(), o.wall_s,
                o.passed ? "pass" : "FAIL");
  std::printf("\n%zu/%zu checks passed\n", run.Passed(),
              run.outcomes.size());

  if (json_path) {
    std::string body;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"users\": %zu,\n  \"seed\": %llu,\n"
                  "  \"checks\": %zu,\n  \"passed\": %zu,\n"
                  "  \"pass_rate\": %.4f,\n"
                  "  \"fingerprint\": \"%016llx\",\n",
                  run.options.users,
                  static_cast<unsigned long long>(run.options.seed),
                  run.outcomes.size(), run.Passed(),
                  run.outcomes.empty()
                      ? 0.0
                      : static_cast<double>(run.Passed()) /
                            static_cast<double>(run.outcomes.size()),
                  static_cast<unsigned long long>(
                      validate::ManifestFingerprint(run)));
    body += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"timings_s\": {\"generate\": %.3f, \"analyze\": %.3f, "
                  "\"fleet\": %.3f, \"checks\": %.3f, \"total\": %.3f},\n",
                  run.generate_s, run.analyze_s, run.fleet_s, run.checks_s,
                  run.total_s);
    body += buf;
    body += "  \"per_check\": [\n";
    for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
      const auto& o = run.outcomes[i];
      std::snprintf(buf, sizeof(buf),
                    "    {\"id\": \"%s\", \"wall_s\": %.6f, \"passed\": %s}%s\n",
                    o.id.c_str(), o.wall_s, o.passed ? "true" : "false",
                    i + 1 < run.outcomes.size() ? "," : "");
      body += buf;
    }
    body += "  ]\n";
    bench::EmitBenchJson(json_path, "validate", body);
  }

  bool ok = true;
  if (run.total_s > budget_s) {
    std::printf("FAIL: total %.2f s exceeds the %.1f s budget\n",
                run.total_s, budget_s);
    ok = false;
  }
  if (!run.AllPassed()) {
    std::printf("FAIL: %zu check(s) failed\n",
                run.outcomes.size() - run.Passed());
    ok = false;
  }
  if (ok)
    std::printf("OK: %.2f s total, within the %.1f s budget\n", run.total_s,
                budget_s);
  return ok ? 0 : 1;
}
