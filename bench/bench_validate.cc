// Wall-time smoke for the paper-fidelity validator: a full
// `mcloudctl validate`-equivalent run (generate → analyze → §4 fleet →
// every FigureCheck) must finish within a fixed budget at the standard
// 20k-user scale, so the CI validate job and the golden test stay cheap
// enough to run on every push. Prints the per-phase and per-check wall
// times recorded in the JSON manifest and exits non-zero over budget.
//
// Usage: bench_validate [users] [seed] [budget_seconds]
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "validate/validator.h"

int main(int argc, char** argv) {
  using namespace mcloud;

  validate::ValidateOptions opt;
  opt.users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20'000;
  opt.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const double budget_s =
      argc > 3 ? std::strtod(argv[3], nullptr) : 30.0;

  bench::Header("validate smoke",
                "full FigureCheck registry wall-time budget");
  std::printf("# %zu mobile users, seed %llu, budget %.1f s\n", opt.users,
              static_cast<unsigned long long>(opt.seed), budget_s);

  const validate::ValidationRun run = validate::RunValidation(opt);

  std::printf("\nphase wall times:\n");
  std::printf("  %-12s %8.2f s\n", "generate", run.generate_s);
  std::printf("  %-12s %8.2f s\n", "analyze", run.analyze_s);
  std::printf("  %-12s %8.2f s\n", "fleet", run.fleet_s);
  std::printf("  %-12s %8.2f s\n", "checks", run.checks_s);
  std::printf("  %-12s %8.2f s\n", "total", run.total_s);

  std::printf("\nper-check wall times:\n");
  for (const auto& o : run.outcomes)
    std::printf("  %-28s %8.4f s  %s\n", o.id.c_str(), o.wall_s,
                o.passed ? "pass" : "FAIL");
  std::printf("\n%zu/%zu checks passed\n", run.Passed(),
              run.outcomes.size());

  bool ok = true;
  if (run.total_s > budget_s) {
    std::printf("FAIL: total %.2f s exceeds the %.1f s budget\n",
                run.total_s, budget_s);
    ok = false;
  }
  if (!run.AllPassed()) {
    std::printf("FAIL: %zu check(s) failed\n",
                run.outcomes.size() - run.Passed());
    ok = false;
  }
  if (ok)
    std::printf("OK: %.2f s total, within the %.1f s budget\n", run.total_s,
                budget_s);
  return ok ? 0 : 1;
}
