// Resident vs out-of-core pipeline comparison (PR "out-of-core paper
// scale").
//
//   bench_pr6_outofcore [--users N[,N...]] [--out FILE.json] [--tmp DIR]
//                       [--memory-mb M] [--rss-limit-mb L]
//
// For each user-population size the parent re-executes itself once per
// configuration so every run's peak RSS is measured in a fresh address
// space:
//
//   * "resident" (threads=1): GenerateColumnar → AnalysisPipeline::Run
//   * "ooc" (threads=1 and 4): GenerateToPartitions (spill budget
//     --memory-mb) → PartitionedTrace::Open → RunOutOfCore
//
// Each child prints one JSON object: records, FullReport fingerprint,
// generate/analyze wall times, and getrusage peak RSS. The parent asserts
// that every configuration of a given size produced a bit-identical
// report and that every out-of-core run stayed under --rss-limit-mb, then
// writes BENCH_PR6.json (records/sec and RSS-per-user for each sample)
// via EmitBenchJson. The default sizes are 20k and 200k users; the 1.1M
// paper-scale run is invoked explicitly (see EXPERIMENTS.md):
//
//   bench_pr6_outofcore --users 1100000 --memory-mb 512
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "trace/partitioned_trace.h"
#include "workload/generator.h"

namespace {

using namespace mcloud;
using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string SelfExe(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

workload::WorkloadConfig ConfigFor(std::size_t users) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = users;
  cfg.population.pc_only_users = users / 3;
  cfg.seed = 42;
  return cfg;
}

// ---- child: one (mode, threads, users) measurement ----

int RunChild(const std::string& mode, int threads, std::size_t users,
             std::size_t memory_mb, const std::string& tmp_dir) {
  const workload::WorkloadConfig cfg = ConfigFor(users);
  core::PipelineOptions opts;
  opts.threads = threads;
  core::FullReport report;
  std::size_t records = 0;
  double generate_s = 0;
  double analyze_s = 0;

  if (mode == "resident") {
    const auto t0 = Clock::now();
    const workload::ColumnarWorkload w =
        workload::WorkloadGenerator(cfg).GenerateColumnar();
    generate_s = Since(t0);
    records = w.trace.rows();
    const auto t1 = Clock::now();
    report = core::AnalysisPipeline(opts).Run(w.trace);
    analyze_s = Since(t1);
  } else {
    const std::filesystem::path spill_dir =
        std::filesystem::path(tmp_dir) /
        ("bench_pr6_spill-" + std::to_string(::getpid()));
    std::filesystem::create_directories(spill_dir);
    workload::SpillConfig spill;
    spill.dir = spill_dir;
    spill.max_buffer_bytes = memory_mb * (1024 * 1024 / 3);
    const auto t0 = Clock::now();
    const workload::SpillSummary summary =
        workload::WorkloadGenerator(cfg).GenerateToPartitions(spill);
    generate_s = Since(t0);
    records = summary.records;
    opts.max_memory_mb = memory_mb;
    const auto t1 = Clock::now();
    const PartitionedTrace partitions = PartitionedTrace::Open(spill_dir);
    report = core::AnalysisPipeline(opts).RunOutOfCore(partitions);
    analyze_s = Since(t1);
    std::error_code ec;
    std::filesystem::remove_all(spill_dir, ec);
  }

  std::printf("{\"mode\": \"%s\", \"threads\": %d, \"users\": %zu, "
              "\"records\": %zu, \"fingerprint\": \"%016" PRIx64 "\", "
              "\"generate_s\": %.4f, \"analyze_s\": %.4f, "
              "\"max_rss_kb\": %llu}\n",
              mode.c_str(), threads, users, records,
              core::FingerprintReport(report), generate_s, analyze_s,
              static_cast<unsigned long long>(bench::PeakRssBytes() / 1024));
  return 0;
}

// ---- parent: sweep + JSON aggregation ----

struct Sample {
  std::string mode;
  int threads = 0;
  std::size_t users = 0;
  std::size_t records = 0;
  std::string fingerprint;
  double generate_s = 0;
  double analyze_s = 0;
  std::uint64_t max_rss_kb = 0;
};

double JsonNum(const std::string& s, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtod(s.c_str() + pos + needle.size(), nullptr);
}

std::string JsonStr(const std::string& s, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return "";
  const auto begin = pos + needle.size();
  return s.substr(begin, s.find('"', begin) - begin);
}

bool RunOne(const std::string& exe, const std::string& mode, int threads,
            std::size_t users, std::size_t memory_mb,
            const std::string& tmp_dir, Sample* out) {
  const std::string cmd = exe + " --child " + mode +
                          " --child-threads " + std::to_string(threads) +
                          " --child-users " + std::to_string(users) +
                          " --memory-mb " + std::to_string(memory_mb) +
                          " --tmp " + tmp_dir;
  std::FILE* p = popen(cmd.c_str(), "r");
  if (p == nullptr) return false;
  std::string output;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), p) != nullptr) output += buf;
  if (pclose(p) != 0) {
    std::fprintf(stderr, "child failed: %s\n", cmd.c_str());
    return false;
  }
  out->mode = mode;
  out->threads = threads;
  out->users = users;
  out->records = static_cast<std::size_t>(JsonNum(output, "records"));
  out->fingerprint = JsonStr(output, "fingerprint");
  out->generate_s = JsonNum(output, "generate_s");
  out->analyze_s = JsonNum(output, "analyze_s");
  out->max_rss_kb = static_cast<std::uint64_t>(JsonNum(output, "max_rss_kb"));
  return !out->fingerprint.empty() && out->records > 0;
}

std::vector<std::size_t> ParseSizes(const char* arg) {
  std::vector<std::size_t> sizes;
  for (const char* p = arg; *p != '\0';) {
    char* end = nullptr;
    const std::size_t v = std::strtoull(p, &end, 10);
    if (end == p) break;
    if (v > 0) sizes.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {20'000, 200'000};
  std::string out_path = "BENCH_PR6.json";
  std::string tmp_dir = ".";
  std::size_t memory_mb = 512;
  std::size_t rss_limit_mb = 1024;
  std::string child_mode;
  int child_threads = 1;
  std::size_t child_users = 20'000;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--users") == 0) {
      sizes = ParseSizes(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--tmp") == 0) {
      tmp_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--memory-mb") == 0) {
      memory_mb = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rss-limit-mb") == 0) {
      rss_limit_mb = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--child") == 0) {
      child_mode = argv[i + 1];
    } else if (std::strcmp(argv[i], "--child-threads") == 0) {
      child_threads = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--child-users") == 0) {
      child_users = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  if (!child_mode.empty())
    return RunChild(child_mode, child_threads, child_users, memory_mb,
                    tmp_dir);
  if (sizes.empty()) {
    std::fprintf(stderr, "no sizes given\n");
    return 1;
  }

  struct Config {
    const char* mode;
    int threads;
  };
  const Config kConfigs[] = {{"resident", 1}, {"ooc", 1}, {"ooc", 4}};

  const std::string exe = SelfExe(argv[0]);
  std::vector<Sample> samples;
  bool ok = true;
  bool identical = true;
  bool under_limit = true;
  for (const std::size_t users : sizes) {
    std::string size_fp;
    for (const Config& c : kConfigs) {
      std::fprintf(stderr, "running %s threads=%d users=%zu...\n", c.mode,
                   c.threads, users);
      Sample s;
      if (!RunOne(exe, c.mode, c.threads, users, memory_mb, tmp_dir, &s)) {
        ok = false;
        continue;
      }
      std::fprintf(stderr,
                   "%-8s threads=%d users=%-8zu records=%-10zu "
                   "gen %.1fs  analyze %.1fs  rss %llu MB  fp %s\n",
                   s.mode.c_str(), s.threads, s.users, s.records,
                   s.generate_s, s.analyze_s,
                   static_cast<unsigned long long>(s.max_rss_kb / 1024),
                   s.fingerprint.c_str());
      if (size_fp.empty())
        size_fp = s.fingerprint;
      else if (s.fingerprint != size_fp)
        identical = false;
      if (s.mode == "ooc" && s.max_rss_kb > rss_limit_mb * 1024)
        under_limit = false;
      samples.push_back(s);
    }
  }
  if (!ok || samples.empty()) {
    std::fprintf(stderr, "FAIL: child runs failed\n");
    return 1;
  }
  const bool pass = identical && under_limit;

  std::string body;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"memory_budget_mb\": %zu,\n"
                "  \"ooc_rss_limit_mb\": %zu,\n"
                "  \"reports_bit_identical\": %s,\n"
                "  \"ooc_under_rss_limit\": %s,\n"
                "  \"pass\": %s,\n",
                memory_mb, rss_limit_mb, identical ? "true" : "false",
                under_limit ? "true" : "false", pass ? "true" : "false");
  body += buf;
  body += "  \"samples\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"%s\", \"threads\": %d, \"users\": %zu, "
        "\"records\": %zu, \"fingerprint\": \"%s\", "
        "\"generate_seconds\": %.2f, \"analyze_seconds\": %.2f, "
        "\"generate_records_per_second\": %.0f, "
        "\"analyze_records_per_second\": %.0f, \"peak_rss_kb\": %llu, "
        "\"rss_bytes_per_user\": %.1f}%s\n",
        s.mode.c_str(), s.threads, s.users, s.records, s.fingerprint.c_str(),
        s.generate_s, s.analyze_s,
        static_cast<double>(s.records) / s.generate_s,
        static_cast<double>(s.records) / s.analyze_s,
        static_cast<unsigned long long>(s.max_rss_kb),
        static_cast<double>(s.max_rss_kb) * 1024.0 /
            static_cast<double>(s.users),
        i + 1 < samples.size() ? "," : "");
    body += buf;
  }
  body += "  ]\n";
  bench::EmitBenchJson(out_path, "pr6_outofcore", body);

  std::fprintf(stderr,
               "identical=%s ooc_under_%zuMB=%s -> %s\n",
               identical ? "yes" : "NO", rss_limit_mb,
               under_limit ? "yes" : "NO", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
