// Figure 6 + Table 2 — CCDF of the per-session average file size for
// store-only and retrieve-only sessions, the mixture-exponential model
// selection (components added until a weight falls below 0.001), the fitted
// α/µ parameters against Table 2, and the chi-square goodness of fit.
#include "bench_util.h"

#include "analysis/file_size_model.h"
#include "analysis/session_stats.h"
#include "analysis/sessionizer.h"
#include "model/paper_params.h"
#include "trace/filters.h"

namespace {

void Run(const char* name, std::span<const double> sizes,
         const mcloud::paper::MixtureExpParams& paper_params) {
  using namespace mcloud;
  std::printf("\n--- %s sessions (%zu samples) ---\n", name, sizes.size());
  const auto model = analysis::FitFileSizeModel(sizes);

  std::printf("selected n = %zu components (stop rule: negligible added "
              "weight / overlapping means)\n",
              model.selection.selected_n);
  const auto& comps = model.selection.fit.mixture.components();
  for (std::size_t i = 0; i < comps.size(); ++i) {
    std::printf("  component %zu: alpha=%.3f mu=%.1f MB\n", i + 1,
                comps[i].weight, comps[i].mean);
  }
  std::printf("  paper (Table 2):");
  for (std::size_t i = 0; i < paper_params.weights.size(); ++i) {
    std::printf("  alpha=%.2f mu=%.1f MB", paper_params.weights[i],
                paper_params.means_mb[i]);
  }
  std::printf("\n  (the extra sub-1 MB component is the synthetic "
              "occasional class; the paper's\n  three regimes map onto the "
              "remaining components)\n");
  if (model.chi_square_valid) {
    std::printf("chi-square: stat=%.1f dof=%.0f p=%.3f (paper: passes at "
                "5%% significance)\n",
                model.chi_square.statistic, model.chi_square.dof,
                model.chi_square.p_value);
  } else {
    std::printf("chi-square: skipped (sample too small)\n");
  }

  std::printf("CCDF (empirical vs model), log-spaced sizes:\n");
  std::printf("  %10s  %10s  %10s\n", "MB", "empirical", "model");
  for (std::size_t i = 0; i < model.grid_mb.size(); i += 4) {
    std::printf("  %10.3g  %10.4g  %10.4g\n", model.grid_mb[i],
                model.empirical_ccdf[i], model.model_ccdf[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 6 / Table 2",
                "mixture-exponential models of per-session avg file size");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto sessions =
      analysis::Sessionizer().Sessionize(MobileOnly(w.trace));

  const auto store_sizes = analysis::AvgFileSizeSample(
      sessions, analysis::Session::Type::kStoreOnly);
  const auto retrieve_sizes = analysis::AvgFileSizeSample(
      sessions, analysis::Session::Type::kRetrieveOnly);

  Run("store-only", store_sizes, paper::kStoreFileSizeParams);
  Run("retrieve-only", retrieve_sizes, paper::kRetrieveFileSizeParams);

  std::printf("\nNote: the synthetic occasional-user class (volume < 1 MB, "
              "Table 3) contributes a\nsmall-payload regime that the EM "
              "resolves as extra sub-1.5MB structure in the\nstore model; "
              "see EXPERIMENTS.md for the discussion.\n");
  return 0;
}
