// Figure 14 — CDF of the average RTT measured on chunk-carrying TCP
// connections. Paper: median around 100 ms with a heavy tail into seconds.
#include "bench_util.h"

#include "analysis/perf_analysis.h"
#include "model/paper_params.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 14", "RTT of chunk transfers");
  const auto result = bench::Section4Result(argc, argv);

  const auto rtts = analysis::RttSamples(result.logs);
  const auto grid = LogGrid(0.01, 10.0, 16);
  bench::PrintCdf("chunk RTT", rtts, grid, "s");
  bench::PrintPercentiles("chunk RTT", rtts, "s");

  std::printf("\nHeadline observations:\n");
  bench::PaperVsMeasured("median RTT (s)", paper::kMedianRtt,
                         Percentile(rtts, 50), "s");
  return 0;
}
