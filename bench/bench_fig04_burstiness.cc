// Figure 4 — CDF of the user operating time (first to last file operation),
// normalized by session length, for sessions with >1, >10 and >20 file
// operations. Paper: >80% of multi-op sessions stay below 0.1, and the more
// operations a session has, the earlier they are all issued.
#include "bench_util.h"

#include "analysis/burstiness.h"
#include "analysis/sessionizer.h"
#include "model/paper_params.h"
#include "trace/filters.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 4", "burstiness: normalized user operating time");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto sessions =
      analysis::Sessionizer().Sessionize(MobileOnly(w.trace));
  const auto groups = analysis::NormalizedOperatingTimes(sessions);

  const auto grid = LinGrid(0.0, 0.4, 17);
  for (const auto& g : groups) {
    std::string label =
        "#files > " + std::to_string(g.min_ops_exclusive);
    bench::PrintCdf(label.c_str(), g.normalized_times, grid, "norm. time");
  }

  std::printf("\nHeadline observations:\n");
  for (const auto& g : groups) {
    const double below =
        analysis::FractionBelow(g, paper::kBurstyOperatingTimeBound);
    std::string what = "share below 0.1 for >" +
                       std::to_string(g.min_ops_exclusive) + " ops (>0.8)";
    bench::PaperVsMeasured(what.c_str(), paper::kBurstyOperatingTimeQuantile,
                           below);
  }
  // Paper: sessions with >20 ops issue all requests within 3% of the
  // session length (median).
  const auto& many = groups.back();
  if (!many.normalized_times.empty()) {
    bench::PaperVsMeasured("median normalized time, >20 ops (~0.03)", 0.03,
                           Percentile(many.normalized_times, 50));
  }
  return 0;
}
