// Figure 9 — Upper bound on uploads being retrieved: of the users with a
// storage session on the first day, the cumulative fraction with any later
// retrieval session by day x, per device-profile group. Paper: >80% of
// mobile-only uploaders never retrieve within the week regardless of device
// count; mobile&PC users retrieve soon, often the same day.
#include "bench_util.h"

#include "analysis/engagement.h"
#include "analysis/sessionizer.h"
#include "model/paper_params.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 9",
                "probability of retrieving after a first-day upload");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto sessions = analysis::Sessionizer().Sessionize(w.trace);
  const auto usage = analysis::BuildUserUsage(w.trace);
  const auto curves =
      analysis::RetrievalReturns(sessions, usage, kTraceStart);

  std::printf("\ncumulative P(retrieval by day x | upload on day 1):\n");
  std::printf("  %-16s %9s", "group", "uploaders");
  for (int d = 0; d <= 6; ++d) std::printf("  day %d", d);
  std::printf("   never\n");
  for (const auto& c : curves) {
    std::printf("  %-16s %9zu",
                std::string(analysis::ToString(c.group)).c_str(),
                c.day1_uploaders);
    for (double v : c.retrieved_by_day) std::printf("  %5.2f", v);
    std::printf("   %5.2f\n", c.never_retrieved);
  }

  std::printf("\nHeadline observations:\n");
  bench::PaperVsMeasured("mobile-only (1 dev) never-retrieve (~0.8+)",
                         paper::kMobileOnlyNoRetrievalShare,
                         curves[0].never_retrieved);
  bench::PaperVsMeasured("mobile-only (>1 dev) never-retrieve (~0.8)",
                         paper::kMobileOnlyNoRetrievalShare,
                         curves[1].never_retrieved);
  std::printf("  %-46s measured=%.2f (paper: far below mobile-only, "
              "same-day sync visible)\n",
              "mobile&PC never-retrieve", curves[3].never_retrieved);
  std::printf("\nImplication: most uploads can be deferred off-peak — see "
              "bench_whatif_deferral.\n");
  return 0;
}
