// Thread-count sweep for the parallel execution layer (PR "deterministic
// multi-threaded workload generation"): times WorkloadGenerator::Generate()
// and AnalysisPipeline::Run() at 1/2/4/8/hardware threads and writes the
// results as JSON.
//
//   bench_pr1_threads [--users N] [--out FILE.json]
//
// Defaults: 50000 mobile users (~ a few million records), BENCH_PR1.json in
// the current directory. Every configuration produces a byte-identical
// trace; the sweep verifies that via a fingerprint while timing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "workload/generator.h"

namespace {

using namespace mcloud;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t Fingerprint(const std::vector<LogRecord>& trace) {
  // FNV-1a over the fields that identify a record's position and payload.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const LogRecord& r : trace) {
    mix(static_cast<std::uint64_t>(r.timestamp));
    mix(r.user_id);
    mix(r.device_id);
    mix(r.data_volume);
  }
  return h;
}

struct Sample {
  int threads = 0;
  double generate_s = 0;
  double analyze_s = 0;
  mcloud::core::StageTimings stages;
  std::uint64_t fingerprint = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t users = 50000;
  std::string out = "BENCH_PR1.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--users") == 0) {
      users = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = argv[i + 1];
    }
  }

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> sweep = {1, 2, 4, 8};
  if (hw > 0 && std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
    sweep.push_back(hw);
  }

  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = users;
  cfg.population.pc_only_users = users / 3;
  cfg.seed = 42;

  std::fprintf(stderr, "sweep: %zu mobile users, hardware threads = %d\n",
               users, hw);

  std::vector<Sample> samples;
  std::size_t records = 0;
  for (const int threads : sweep) {
    cfg.threads = threads;
    Sample s;
    s.threads = threads;

    auto t0 = Clock::now();
    const auto w = workload::WorkloadGenerator(cfg).Generate();
    s.generate_s = SecondsSince(t0);
    s.fingerprint = Fingerprint(w.trace);
    records = w.trace.size();

    core::PipelineOptions opts;
    opts.threads = threads;
    t0 = Clock::now();
    const auto report = core::AnalysisPipeline(opts).Run(w.trace, &s.stages);
    s.analyze_s = SecondsSince(t0);

    std::fprintf(stderr,
                 "threads=%2d  generate %.2fs  analyze %.2fs  "
                 "(scan %.2f sess %.2f user %.2f fits %.2f)  "
                 "fingerprint %016llx\n",
                 threads, s.generate_s, s.analyze_s, s.stages.scan_s,
                 s.stages.sessionize_s, s.stages.per_user_s, s.stages.fits_s,
                 static_cast<unsigned long long>(s.fingerprint));
    samples.push_back(s);
  }

  bool identical = true;
  for (const Sample& s : samples) {
    identical = identical && s.fingerprint == samples.front().fingerprint;
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  const double base_gen = samples.front().generate_s;
  const double base_ana = samples.front().analyze_s;
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"pr1_thread_sweep\",\n"
               "  \"mobile_users\": %zu,\n"
               "  \"trace_records\": %zu,\n"
               "  \"hardware_threads\": %d,\n"
               "  \"traces_identical\": %s,\n"
               "  \"samples\": [\n",
               users, records, hw, identical ? "true" : "false");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"generate_seconds\": %.3f, "
                 "\"generate_records_per_second\": %.0f, "
                 "\"generate_speedup\": %.2f, "
                 "\"analyze_seconds\": %.3f, \"analyze_speedup\": %.2f, "
                 "\"analyze_scan_seconds\": %.3f, "
                 "\"analyze_sessionize_seconds\": %.3f, "
                 "\"analyze_per_user_seconds\": %.3f, "
                 "\"analyze_fit_seconds\": %.3f}%s\n",
                 s.threads, s.generate_s,
                 static_cast<double>(records) / s.generate_s,
                 base_gen / s.generate_s, s.analyze_s,
                 base_ana / s.analyze_s, s.stages.scan_s,
                 s.stages.sessionize_s, s.stages.per_user_s, s.stages.fits_s,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (traces identical: %s)\n", out.c_str(),
               identical ? "yes" : "NO — determinism bug");
  return identical ? 0 : 1;
}
