// Figure 12 — CDF of the time to upload (a) / download (b) one chunk
// (t_tran = T_chunk − T_srv), by device type. Paper: median upload 1.6 s on
// iOS vs 4.1 s on Android; the retrieval gap is smaller.
#include "bench_util.h"

#include "analysis/perf_analysis.h"
#include "model/paper_params.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 12", "per-chunk transfer time by device type");
  const auto result = bench::Section4Result(argc, argv);

  const auto grid = LinGrid(0.0, 20.0, 21);
  std::printf("\n(a) storage (upload) time per chunk\n");
  const auto android_up = analysis::PerfTransferTimes(
      result.chunk_perf, DeviceType::kAndroid, Direction::kStore);
  const auto ios_up = analysis::PerfTransferTimes(
      result.chunk_perf, DeviceType::kIos, Direction::kStore);
  bench::PrintCdf("Android", android_up, grid, "s");
  bench::PrintCdf("iOS", ios_up, grid, "s");

  std::printf("\n(b) retrieval (download) time per chunk\n");
  const auto android_down = analysis::PerfTransferTimes(
      result.chunk_perf, DeviceType::kAndroid, Direction::kRetrieve);
  const auto ios_down = analysis::PerfTransferTimes(
      result.chunk_perf, DeviceType::kIos, Direction::kRetrieve);
  bench::PrintCdf("Android", android_down, grid, "s");
  bench::PrintCdf("iOS", ios_down, grid, "s");

  std::printf("\nHeadline observations:\n");
  bench::PaperVsMeasured("median Android upload chunk (s)",
                         paper::kMedianUploadTimeAndroid,
                         Percentile(android_up, 50), "s");
  bench::PaperVsMeasured("median iOS upload chunk (s)",
                         paper::kMedianUploadTimeIos,
                         Percentile(ios_up, 50), "s");
  bench::PaperVsMeasured(
      "Android/iOS upload slowdown (~2.6x)",
      paper::kMedianUploadTimeAndroid / paper::kMedianUploadTimeIos,
      Percentile(android_up, 50) / Percentile(ios_up, 50), "x");
  bench::PaperVsMeasured(
      "retrieval gap smaller than upload gap (1 = yes)", 1.0,
      (Percentile(android_down, 50) / Percentile(ios_down, 50) <
       Percentile(android_up, 50) / Percentile(ios_up, 50))
          ? 1.0
          : 0.0);
  return 0;
}
