// §4.3 what-ifs — the transmission optimizations the paper proposes,
// quantified by re-running the TCP substrate with each lever pulled:
// larger chunks (512 KB → 1.5-2 MB), batched chunk requests, server-side
// window scaling, and disabled slow-start-after-idle.
#include "bench_util.h"

#include "core/whatif.h"

namespace {

void PrintOutcomes(std::span<const mcloud::core::WhatIfOutcome> outcomes) {
  std::printf("  %-44s %9s %9s %8s %9s %9s %7s\n", "scenario", "median s",
              "mean s", "chunk s", "restarts", "timeouts", "Mbps");
  for (const auto& o : outcomes) {
    std::printf("  %-44s %9.2f %9.2f %8.2f %8.0f%% %9.2f %7.2f\n",
                o.name.c_str(), o.median_file_time, o.mean_file_time,
                o.median_chunk_ttran, 100 * o.restart_share,
                o.timeouts_per_flow, o.goodput_mbps);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("§4.3 what-ifs", "transmission optimizations on the TCP sim");

  core::WhatIfConfig cfg;
  const char* mb = bench::Positional(argc, argv, 1);
  const char* flows = bench::Positional(argc, argv, 2);
  cfg.file_size = mb ? std::strtoull(mb, nullptr, 10) * kMiB : 8 * kMiB;
  cfg.flows = flows ? std::strtoul(flows, nullptr, 10) : 300;
  cfg.threads = bench::ParseThreads(argc, argv);

  std::printf("# uploading a %.0f MB file, %zu flows per scenario\n\n",
              ToMB(cfg.file_size), cfg.flows);

  for (auto device : {DeviceType::kAndroid, DeviceType::kIos}) {
    cfg.device = device;
    std::printf("%s uploads:\n",
                device == DeviceType::kAndroid ? "Android" : "iOS");
    PrintOutcomes(core::RunWhatIf(cfg, core::StandardScenarios()));
    std::printf("\n");
  }

  std::printf("chunk-size sweep (Android uploads), §4.3's 'increase the "
              "chunk size to 1.5~2MB':\n");
  cfg.device = DeviceType::kAndroid;
  PrintOutcomes(core::RunWhatIf(cfg, core::ChunkSizeSweep()));

  std::printf("\nExpected shape (paper §4.3): larger chunks and batching "
              "shrink the number of\ninter-chunk idles and their slow-start "
              "restarts; window scaling lifts the 64KB\ncap; disabling SSAI "
              "removes restarts but risks post-idle bursts (not modeled\n"
              "here: the paper advises pacing instead).\n");
  return 0;
}
