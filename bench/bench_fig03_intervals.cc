// Figure 3 + §3.1.1 — Histogram of inter-file-operation times, the
// two-component Gaussian mixture over log10 intervals, the τ = 1 h valley,
// and the resulting session-type split (store-only / retrieve-only / mixed).
#include "bench_util.h"

#include "analysis/interval_model.h"
#include "analysis/session_stats.h"
#include "analysis/sessionizer.h"
#include "model/paper_params.h"
#include "trace/filters.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 3 / §3.1.1",
                "inter-operation intervals, GMM fit, session identification");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto mobile = MobileOnly(w.trace);

  const auto intervals = analysis::InterOpIntervals(mobile);
  const auto model = analysis::FitIntervalModel(intervals);

  std::printf("\nHistogram of log10(inter-op seconds), %zu intervals:\n",
              intervals.size());
  const auto& h = model.log10_histogram;
  for (std::size_t i = 0; i < h.bins(); i += 2) {
    const int bar = static_cast<int>(h.Fraction(i) * 400);
    std::printf("  10^%4.1f s %8.4f |%s\n", h.BinCenter(i), h.Fraction(i),
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }

  std::printf("\nhistogram quantiles (Histogram::ValueAtQuantile over "
              "log10 s): p50=%.3gs p90=%.3gs p99=%.3gs\n",
              std::pow(10.0, h.ValueAtQuantile(0.50)),
              std::pow(10.0, h.ValueAtQuantile(0.90)),
              std::pow(10.0, h.ValueAtQuantile(0.99)));

  std::printf("\nTwo-component Gaussian mixture over log10 intervals:\n");
  for (const auto& c : model.gmm.mixture.components()) {
    std::printf("  weight=%.3f mean=10^%.2f (~%.3gs) stddev(log10)=%.2f\n",
                c.weight, c.mean, std::pow(10.0, c.mean), c.stddev);
  }
  bench::PaperVsMeasured("intra-session mean (s)", 10.0,
                         model.intra_mean_seconds, "s");
  bench::PaperVsMeasured("inter-session mean (days)", 1.0,
                         model.inter_mean_seconds / kDay, "days");
  bench::PaperVsMeasured("valley tau (minutes)", 60.0,
                         model.valley_tau / kMinute, "min");
  bench::PaperVsMeasured("GMM equal-likelihood crossover (minutes)", 60.0,
                         model.gmm_tau / kMinute, "min");

  // Session identification with tau = 1 h, as the paper settles on.
  const auto sessions = analysis::Sessionizer().Sessionize(mobile);
  const auto split = analysis::ClassifySessions(sessions);
  std::printf("\nSession classification at tau = 1 h (%zu sessions):\n",
              split.total);
  bench::PaperVsMeasured("store-only share", paper::kStoreOnlySessionShare,
                         split.StoreShare());
  bench::PaperVsMeasured("retrieve-only share",
                         paper::kRetrieveOnlySessionShare,
                         split.RetrieveShare());
  bench::PaperVsMeasured("mixed share", paper::kMixedSessionShare,
                         split.MixedShare());
  return 0;
}
