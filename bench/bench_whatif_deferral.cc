// §3.2.2 implication — "smart auto backup": defer evening uploads of users
// who will not retrieve them into the early-morning trough, and measure the
// storage-load peak reduction.
#include "bench_util.h"

#include "core/deferral.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("§3.2.2 what-if",
                "smart auto backup: deferring evening uploads");
  const auto w = bench::StandardWorkload(argc, argv);

  const auto run = [&](const char* name, const core::DeferralPolicy& p) {
    const auto r = core::SimulateDeferral(w.trace, p, kTraceStart);
    std::printf("  %-44s peak %6.2f -> %6.2f GB/h  (%+5.1f%%), deferred "
                "%4.1f%% of volume (%llu chunks)\n",
                name, r.peak_before_gb, r.peak_after_gb,
                -100 * r.peak_reduction, 100 * r.deferred_share,
                static_cast<unsigned long long>(r.deferred_chunks));
    return r;
  };

  std::printf("\nhourly storage load before/after (policy: defer 19-24h "
              "uploads of non-retrievers\nto 1-8h next morning):\n");
  core::DeferralPolicy standard;
  const auto result = core::SimulateDeferral(w.trace, standard, kTraceStart);
  std::printf("  %-10s %12s %12s\n", "hour", "before GB", "after GB");
  for (std::size_t i = 0; i < result.before.hours.size() && i < 48; i += 2) {
    std::printf("  %-3s %02d:00  %12.2f %12.2f\n",
                DayLabel(static_cast<int>(i) / 24).c_str(),
                static_cast<int>(i) % 24,
                result.before.hours[i].StoreVolumeGb(),
                result.after.hours[i].StoreVolumeGb());
  }

  std::printf("\npolicy comparison:\n");
  run("standard (non-retrievers, full opt-in)", standard);

  core::DeferralPolicy half;
  half.opt_in = 0.5;
  run("50% opt-in", half);

  core::DeferralPolicy aggressive;
  aggressive.only_non_retrievers = false;
  run("defer everyone (QoE risk: same-week readers)", aggressive);

  core::DeferralPolicy narrow;
  narrow.defer_begin_hour = 3;
  narrow.defer_end_hour = 5;
  run("narrow 3-5h window (re-peaks in the morning)", narrow);

  std::printf("\nPaper's argument: ~80%% of mobile uploaders never retrieve "
              "within the week\n(Fig 9), so deferral is safe for most uploads "
              "and cuts the provisioning peak.\n");
  return 0;
}
