// Figure 7 — CDF of the per-user stored/retrieved volume ratio:
// (a) mobile&PC vs mobile-only vs PC-only users; (b) mobile-only users by
// device count. Paper: mobile users skew heavily toward storage dominance;
// multiple devices pull users toward mixed usage.
#include "bench_util.h"

#include "analysis/usage_patterns.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 7", "stored/retrieved volume ratio per user");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto usage = analysis::BuildUserUsage(w.trace);

  // Grid over log10(ratio): the paper plots 1e-10 .. 1e10.
  const auto grid = LinGrid(-10, 10, 21);

  std::printf("\n(a) by device profile — CDF over log10(store/retrieve)\n");
  bench::PrintCdf("mobile & PC",
                  analysis::RatioSample(
                      usage, analysis::DeviceProfile::kMobileAndPc),
                  grid, "log10");
  bench::PrintCdf("only mobile",
                  analysis::RatioSample(
                      usage, analysis::DeviceProfile::kMobileOnly),
                  grid, "log10");
  bench::PrintCdf("only PC",
                  analysis::RatioSample(usage,
                                        analysis::DeviceProfile::kPcOnly),
                  grid, "log10");

  std::printf("\n(b) mobile-only users by device count\n");
  bench::PrintCdf("1+ devices", analysis::RatioSampleByDevices(usage, 1),
                  grid, "log10");
  bench::PrintCdf(">1 device", analysis::RatioSampleByDevices(usage, 2),
                  grid, "log10");
  bench::PrintCdf(">2 devices", analysis::RatioSampleByDevices(usage, 3),
                  grid, "log10");

  // Headline: share of storage-dominant users (ratio > 1e5) per group.
  const auto dominant_share = [](std::span<const double> log_ratios) {
    std::size_t n = 0;
    for (double r : log_ratios) {
      if (r > 5.0) ++n;
    }
    return log_ratios.empty() ? 0.0
                              : static_cast<double>(n) / log_ratios.size();
  };
  std::printf("\nHeadline observations (storage-dominant share):\n");
  const auto one = analysis::RatioSampleByDevices(usage, 1);
  const auto multi = analysis::RatioSampleByDevices(usage, 2);
  const auto pc = analysis::RatioSample(usage,
                                        analysis::DeviceProfile::kPcOnly);
  std::printf("  mobile-only (any devices): %.2f\n", dominant_share(one));
  std::printf("  mobile-only (>1 device):   %.2f   (paper: significantly "
              "reduced vs 1 device)\n",
              dominant_share(multi));
  std::printf("  PC-only:                   %.2f   (paper: well below "
              "mobile users)\n",
              dominant_share(pc));
  return 0;
}
