// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// builds (or reuses) a synthetic workload, runs the corresponding analysis,
// and prints the series the paper plots, with the paper's published values
// alongside where they exist. Output is plain aligned text so that
// `for b in build/bench/*; do $b; done` reads as a lab notebook.
#pragma once

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <string_view>

#include "core/pipeline.h"
#include "util/summary.h"
#include "workload/generator.h"

namespace mcloud::bench {

/// Peak RSS of the calling process in bytes (Linux ru_maxrss is KiB).
inline std::uint64_t PeakRssBytes() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

/// `git describe --always --dirty` of the working tree, or "unknown" when
/// git is unavailable — stamps every bench artifact with its provenance.
inline std::string GitDescribe() {
  std::string out;
  if (std::FILE* p = ::popen("git describe --always --dirty 2>/dev/null",
                             "r")) {
    char buf[128];
    while (std::fgets(buf, sizeof(buf), p)) out += buf;
    ::pclose(p);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out.empty() ? "unknown" : out;
}

/// Write a bench JSON artifact (the committed BENCH_*.json files) with the
/// standard provenance stamps every bench shares: bench name, git describe,
/// hardware thread count, and the emitting process's peak RSS. `body` is
/// the bench-specific payload — already-formed JSON members, each line
/// indented two spaces and ending with a newline, the last without a
/// trailing comma.
inline void EmitBenchJson(const std::string& path, const std::string& bench,
                          const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"git\": \"%s\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"harness_peak_rss_bytes\": %llu,\n"
               "%s"
               "}\n",
               bench.c_str(), GitDescribe().c_str(),
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(PeakRssBytes()), body.c_str());
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

/// `--threads N` anywhere on the command line (0 = hardware concurrency,
/// the default). Thread count never changes any bench's output, only its
/// wall-clock — every parallel path in the library is deterministic.
inline int ParseThreads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string_view(argv[i]) == "--threads")
      return static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
  return 0;
}

/// The idx-th (1-based) positional argument, skipping `--flag value`
/// pairs, so `bench 4000 --threads 2` and `bench --threads 2 4000` both
/// read 4000 as the first positional.
inline const char* Positional(int argc, char** argv, int idx) {
  int seen = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--", 0) == 0) {
      ++i;  // skip the flag's value
      continue;
    }
    if (++seen == idx) return argv[i];
  }
  return nullptr;
}

/// Standard bench workload: ~6k mobile users for a week (≈2M records),
/// overridable via positional args (users, seed) plus --threads N.
inline workload::WorkloadConfig StandardConfig(int argc, char** argv) {
  workload::WorkloadConfig cfg;
  const char* users = Positional(argc, argv, 1);
  const char* seed = Positional(argc, argv, 2);
  cfg.population.mobile_users =
      users ? std::strtoul(users, nullptr, 10) : 6000;
  cfg.population.pc_only_users = cfg.population.mobile_users / 3;
  cfg.seed = seed ? std::strtoull(seed, nullptr, 10) : 42;
  cfg.threads = ParseThreads(argc, argv);
  return cfg;
}

inline workload::Workload StandardWorkload(int argc, char** argv) {
  const workload::WorkloadConfig cfg = StandardConfig(argc, argv);
  std::printf("# workload: %zu mobile users, %zu PC-only, seed %llu\n",
              cfg.population.mobile_users, cfg.population.pc_only_users,
              static_cast<unsigned long long>(cfg.seed));
  return workload::WorkloadGenerator(cfg).Generate();
}

inline void Header(const char* experiment, const char* caption) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", experiment, caption);
  std::printf("==============================================================="
              "=================\n");
}

/// Print a CDF of `samples` evaluated at `grid` points.
inline void PrintCdf(const char* label, std::span<const double> samples,
                     std::span<const double> grid, const char* unit) {
  if (samples.empty()) {
    std::printf("%-22s (no samples)\n", label);
    return;
  }
  const Ecdf ecdf(std::vector<double>(samples.begin(), samples.end()));
  std::printf("%-22s n=%zu  median=%.3g %s\n", label, samples.size(),
              ecdf.Median(), unit);
  std::printf("  %10s  %8s\n", unit, "CDF");
  for (double x : grid)
    std::printf("  %10.3g  %8.4f\n", x, ecdf.Evaluate(x));
}

/// Print percentile summary of a sample.
inline void PrintPercentiles(const char* label,
                             std::span<const double> samples,
                             const char* unit) {
  if (samples.empty()) {
    std::printf("%-24s (no samples)\n", label);
    return;
  }
  const std::vector<double> cuts = {10, 25, 50, 75, 90, 99};
  const auto v = Percentiles(samples, cuts);
  std::printf("%-24s n=%-8zu p10=%-8.3g p25=%-8.3g p50=%-8.3g p75=%-8.3g "
              "p90=%-8.3g p99=%-8.3g %s\n",
              label, samples.size(), v[0], v[1], v[2], v[3], v[4], v[5],
              unit);
}

inline void PaperVsMeasured(const char* what, double paper, double measured,
                            const char* unit = "") {
  std::printf("  %-46s paper=%-10.4g measured=%-10.4g %s\n", what, paper,
              measured, unit);
}

}  // namespace mcloud::bench

#include "cloud/fleet.h"
#include "cloud/storage_service.h"

namespace mcloud::bench {

/// Standard §4 workload: `flows` single-file sessions (78% Android) split
/// between uploads and downloads, executed through the sharded fleet
/// executor (metadata dedup + TCP substrate; `--threads N` to spread the
/// shards, output identical for every thread count). Mirrors the paper's
/// packet-trace collection at one front-end (40,386 flows).
inline cloud::ServiceResult Section4Result(
    int argc, char** argv, const cloud::ServiceConfig& config = {}) {
  const char* a1 = Positional(argc, argv, 1);
  const char* a2 = Positional(argc, argv, 2);
  const std::size_t flows = a1 ? std::strtoul(a1, nullptr, 10) : 4000;
  const std::uint64_t seed = a2 ? std::strtoull(a2, nullptr, 10) : 7;
  std::printf("# service simulation: %zu flows, seed %llu\n", flows,
              static_cast<unsigned long long>(seed));

  Rng rng(seed);
  std::vector<workload::SessionPlan> plans;
  plans.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    workload::SessionPlan s;
    s.user_id = i + 1;
    s.device_id = i + 1;
    s.device_type = rng.Bernoulli(0.784) ? DeviceType::kAndroid
                                         : DeviceType::kIos;
    s.start = kTraceStart + static_cast<UnixSeconds>(i * 30);
    workload::FileOp op;
    // Uploads: typical photo-batch payloads; downloads: larger objects.
    if (rng.Bernoulli(0.6)) {
      op.direction = Direction::kStore;
      op.size = FromMB(1.0 + rng.ExponentialMean(4.0));
    } else {
      op.direction = Direction::kRetrieve;
      op.size = FromMB(2.0 + rng.ExponentialMean(20.0));
    }
    s.ops.push_back(op);
    plans.push_back(s);
  }
  cloud::FleetConfig fleet_cfg;
  fleet_cfg.service = config;
  fleet_cfg.threads = ParseThreads(argc, argv);
  return cloud::ExecuteFleet(fleet_cfg, plans).result;
}

}  // namespace mcloud::bench
