// Figure 13 — Sequence number (a) and in-flight size (b) over time for one
// Android and one iOS storage flow uploading the same file. Paper: the iPad
// holds its ~64 KB sending window across chunks while the Android pad idles
// between chunks, restarts slow start, and repeatedly collapses its
// in-flight size.
#include "bench_util.h"

#include "cloud/storage_service.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 13",
                "sequence number and in-flight size of one storage flow");

  const Bytes file_size =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) * kMiB : 4 * kMiB;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  std::printf("# one %.0f MB upload per device, identical RTT=100ms, "
              "seed %llu\n",
              ToMB(file_size), static_cast<unsigned long long>(seed));

  const cloud::StorageService service{cloud::ServiceConfig{}};
  const auto android = service.SimulateFlow(
      DeviceType::kAndroid, Direction::kStore, file_size, seed, 0.1);
  const auto ios = service.SimulateFlow(DeviceType::kIos, Direction::kStore,
                                        file_size, seed, 0.1);

  const auto print_trace = [](const char* name,
                              const tcp::FlowResult& flow) {
    std::printf("\n%s flow: duration=%.1fs, slow-start restarts=%llu\n",
                name, flow.duration,
                static_cast<unsigned long long>(flow.restarts));
    std::printf("  %8s %12s %12s\n", "t (s)", "seq (bytes)", "inflight");
    // Subsample the trace to ~40 lines.
    const std::size_t step = std::max<std::size_t>(1, flow.trace.size() / 40);
    for (std::size_t i = 0; i < flow.trace.size(); i += step) {
      const auto& p = flow.trace[i];
      std::printf("  %8.2f %12llu %12llu\n", p.t,
                  static_cast<unsigned long long>(p.seq),
                  static_cast<unsigned long long>(p.inflight));
    }
  };
  print_trace("iOS (iPad)", ios);
  print_trace("Android (pad)", android);

  std::printf("\nHeadline observations:\n");
  bench::PaperVsMeasured("Android slower than iOS (ratio > 1)", 2.0,
                         android.duration / ios.duration, "x");
  bench::PaperVsMeasured("Android restarts >> iOS restarts", 3.0,
                         ios.restarts > 0 ? static_cast<double>(
                                                android.restarts) /
                                                static_cast<double>(
                                                    ios.restarts)
                                          : static_cast<double>(
                                                android.restarts),
                         "x");
  // The 64 KB cap: neither flow's inflight exceeds the server's window.
  Bytes max_inflight = 0;
  for (const auto& p : android.trace)
    max_inflight = std::max(max_inflight, p.inflight);
  for (const auto& p : ios.trace)
    max_inflight = std::max(max_inflight, p.inflight);
  bench::PaperVsMeasured("max inflight (bytes; 64KB rwnd cap)",
                         static_cast<double>(64 * kKiB),
                         static_cast<double>(max_inflight), "B");
  return 0;
}
