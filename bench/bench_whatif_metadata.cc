// §3.1.2 implication — "decouple the metadata management and the data
// storage management": because users issue all file operations in a burst at
// the session start, the metadata tier sees short, sharp load spikes. This
// ablation compares the metadata request rate under the paper's design
// (metadata touched only by file operations) against a coupled strawman
// where every chunk request also consults the metadata tier.
#include "bench_util.h"

#include <map>

#include "trace/filters.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("§3.1.2 what-if",
                "metadata tier load: decoupled vs coupled design");
  const auto w = bench::StandardWorkload(argc, argv);

  // Per-second request counts at the metadata tier under both designs.
  std::map<UnixSeconds, std::uint32_t> decoupled;  // file operations only
  std::map<UnixSeconds, std::uint32_t> coupled;    // every request
  std::uint64_t ops = 0;
  std::uint64_t chunks = 0;
  for (const auto& r : w.trace) {
    coupled[r.timestamp]++;
    if (r.request_type == RequestType::kFileOperation) {
      decoupled[r.timestamp]++;
      ++ops;
    } else {
      ++chunks;
    }
  }

  const auto summarize = [](const std::map<UnixSeconds, std::uint32_t>& m) {
    std::vector<double> rates;
    rates.reserve(m.size());
    for (const auto& [t, c] : m) rates.push_back(c);
    struct {
      double peak, p99, mean;
    } s{};
    s.peak = Percentile(rates, 100);
    s.p99 = Percentile(rates, 99);
    double sum = 0;
    for (double v : rates) sum += v;
    // Mean over active seconds (idle seconds carry no entry).
    s.mean = sum / static_cast<double>(rates.size());
    return s;
  };

  const auto d = summarize(decoupled);
  const auto c = summarize(coupled);

  std::printf("\nrequests reaching the metadata tier:\n");
  std::printf("  %-34s %14s %14s\n", "", "decoupled", "coupled");
  std::printf("  %-34s %14llu %14llu\n", "total requests",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(ops + chunks));
  std::printf("  %-34s %14.0f %14.0f\n", "peak req/s", d.peak, c.peak);
  std::printf("  %-34s %14.0f %14.0f\n", "p99 req/s (active seconds)",
              d.p99, c.p99);
  std::printf("  %-34s %14.1f %14.1f\n", "mean req/s (active seconds)",
              d.mean, c.mean);

  std::printf("\nHeadline observations:\n");
  std::printf("  request-volume amplification of a coupled design: %.1fx\n",
              static_cast<double>(ops + chunks) / static_cast<double>(ops));
  std::printf("  decoupled tier peak-to-mean ratio: %.1fx (bursty: ops "
              "cluster at session starts)\n",
              d.peak / d.mean);
  std::printf("  coupled tier peak-to-mean ratio:   %.1fx\n",
              c.peak / c.mean);
  std::printf("\nThe paper's point (§3.1.2): metadata is only needed at the "
              "bursty session\nstarts, so a decoupled metadata tier handles "
              "~%.0fx fewer requests in total;\ncoupling it to the chunk "
              "path would buy nothing except that amplification.\n",
              static_cast<double>(ops + chunks) / static_cast<double>(ops));
  return 0;
}
