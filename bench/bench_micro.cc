// Micro-benchmarks (google-benchmark): throughput of the building blocks —
// MD5 hashing, log (de)serialization, sessionization, workload generation,
// EM fitting, and the TCP flow simulator.
#include <benchmark/benchmark.h>

#include "analysis/sessionizer.h"
#include "cloud/chunker.h"
#include "core/pipeline.h"
#include "stats/em_gaussian.h"
#include "tcp/flow.h"
#include "trace/log_io.h"
#include "util/md5.h"
#include "workload/generator.h"

namespace mcloud {
namespace {

void BM_Md5Hash(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Hash)->Arg(512)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_ChunkerManifest(benchmark::State& state) {
  const cloud::Chunker chunker;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chunker.Manifest(seed++, static_cast<Bytes>(state.range(0))));
  }
}
BENCHMARK(BM_ChunkerManifest)->Arg(1 << 20)->Arg(64 << 20);

void BM_CsvRoundTrip(benchmark::State& state) {
  LogRecord r;
  r.timestamp = kTraceStart;
  r.user_id = 123456;
  r.device_id = 654321;
  r.data_volume = kChunkSize;
  r.processing_time = 1.234567;
  r.server_time = 0.1;
  r.avg_rtt = 0.089;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FromCsvLine(ToCsvLine(r)));
  }
}
BENCHMARK(BM_CsvRoundTrip);

void BM_WorkloadGeneration(benchmark::State& state) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = static_cast<std::size_t>(state.range(0));
  cfg.population.pc_only_users = cfg.population.mobile_users / 3;
  cfg.threads = static_cast<int>(state.range(1));
  std::uint64_t records = 0;
  for (auto _ : state) {
    cfg.seed++;
    const auto w = workload::WorkloadGenerator(cfg).Generate();
    records += w.trace.size();
    benchmark::DoNotOptimize(w.trace.data());
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
}
// Second arg is the thread count (sweep the parallel execution layer);
// output is byte-identical across the sweep, only the wall clock moves.
BENCHMARK(BM_WorkloadGeneration)
    ->Args({500, 1})
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({2000, 4})
    ->Args({2000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_Sessionize(benchmark::State& state) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 2000;
  const auto w = workload::WorkloadGenerator(cfg).Generate();
  const analysis::Sessionizer sessionizer;
  std::uint64_t records = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sessionizer.Sessionize(w.trace));
    records += w.trace.size();
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sessionize)->Unit(benchmark::kMillisecond);

void BM_AnalysisPipeline(benchmark::State& state) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 2000;
  const auto w = workload::WorkloadGenerator(cfg).Generate();
  core::PipelineOptions opts;
  opts.threads = static_cast<int>(state.range(0));
  const core::AnalysisPipeline pipeline(opts);
  std::uint64_t records = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Run(w.trace));
    records += w.trace.size();
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalysisPipeline)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_EmGaussian(benchmark::State& state) {
  Rng rng(1);
  const GaussianMixture truth({{0.8, 0.5, 0.5}, {0.2, 4.9, 0.5}});
  std::vector<double> xs;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    xs.push_back(truth.Sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGaussianMixture(xs, 2));
  }
}
BENCHMARK(BM_EmGaussian)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_TcpFlow(benchmark::State& state) {
  tcp::FlowConfig cfg;
  cfg.rtt = 0.1;
  cfg.bandwidth_bps = 16e6;
  const tcp::FlowSimulator sim(cfg);
  const std::vector<Bytes> chunks(
      static_cast<std::size_t>(state.range(0)), kChunkSize);
  const auto tsrv = [](Rng&) { return 0.1; };
  const auto tclt = [](Rng&) { return 0.3; };
  Rng rng(2);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Run(chunks, tsrv, tclt, {}, rng));
    bytes += chunks.size() * kChunkSize;
  }
  state.counters["simulated_B/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TcpFlow)->Arg(8)->Arg(128);

}  // namespace
}  // namespace mcloud

BENCHMARK_MAIN();
