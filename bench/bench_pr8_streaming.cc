// Two-phase vs analyze-while-generate comparison (PR "online analysis
// engine").
//
//   bench_pr8_streaming [--users N[,N...]] [--out FILE.json] [--tmp DIR]
//                       [--memory-mb M] [--fits-budget-s S]
//
// For each user-population size the parent re-executes itself once per
// configuration so every run's peak RSS is measured in a fresh address
// space:
//
//   * "twophase" (threads=1): GenerateToPartitions (spill budget
//     --memory-mb) → PartitionedTrace::Open → RunStreaming — generation
//     and analysis walk the data as two sequential phases.
//   * "concurrent" (threads=1 and 4): RunConcurrent — generation spills
//     sealed slices straight into the bounded queue and the fused passes
//     consume them while the generator keeps producing; one overlapped
//     walk at the same memory budget.
//
// Each child prints one JSON object: records, FullReport fingerprint,
// phase wall times, the fit-stage time from StageTimings, the report's
// sketch bytes, and getrusage peak RSS. The parent asserts that every
// configuration of a given size produced a bit-identical report, that the
// overlapped walk beats the two-phase wall clock, that its peak RSS is no
// worse (5% tolerance for allocator noise), and that the sketch-backed
// fit stage stays under --fits-budget-s — half of the 0.423 s the PR 3
// raw-sample fit stage took at 20k users (BENCH_PR3.json) — then writes
// BENCH_PR8.json via EmitBenchJson.
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "trace/partitioned_trace.h"
#include "workload/generator.h"

namespace {

using namespace mcloud;
using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string SelfExe(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

workload::WorkloadConfig ConfigFor(std::size_t users, int threads) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = users;
  cfg.population.pc_only_users = users / 3;
  cfg.seed = 42;
  cfg.threads = threads;
  return cfg;
}

// ---- child: one (mode, threads, users) measurement ----

int RunChild(const std::string& mode, int threads, std::size_t users,
             std::size_t memory_mb, const std::string& tmp_dir) {
  const workload::WorkloadConfig cfg = ConfigFor(users, threads);
  const std::filesystem::path spill_dir =
      std::filesystem::path(tmp_dir) /
      ("bench_pr8_spill-" + std::to_string(::getpid()));
  std::filesystem::create_directories(spill_dir);
  workload::SpillConfig spill;
  spill.dir = spill_dir;
  // Concurrent keeps up to three slices in flight (producer buffer, queue
  // slot, consumer), so it gets a third of the two-phase slice size — both
  // modes then hold the same resident total at the same budget.
  spill.max_buffer_bytes = memory_mb * (1024 * 1024 / 3) /
                           (mode == "twophase" ? 1 : 3);

  core::PipelineOptions opts;
  opts.threads = threads;
  opts.max_memory_mb = memory_mb;
  core::FullReport report;
  core::StageTimings st;
  std::size_t records = 0;
  double generate_s = 0;
  double analyze_s = 0;
  double total_s = 0;

  if (mode == "twophase") {
    const auto t0 = Clock::now();
    const workload::SpillSummary summary =
        workload::WorkloadGenerator(cfg).GenerateToPartitions(spill);
    generate_s = Since(t0);
    records = summary.records;
    const auto t1 = Clock::now();
    const PartitionedTrace partitions = PartitionedTrace::Open(spill_dir);
    report = core::AnalysisPipeline(opts).RunStreaming(partitions, &st);
    analyze_s = Since(t1);
    total_s = Since(t0);
  } else {  // concurrent: one overlapped walk
    workload::SpillSummary summary;
    const auto t0 = Clock::now();
    report = core::AnalysisPipeline(opts).RunConcurrent(
        [&](const core::AnalysisPipeline::SliceConsumer& consume) {
          summary =
              workload::WorkloadGenerator(cfg).GenerateToPartitions(spill,
                                                                    consume);
        },
        &st);
    total_s = Since(t0);
    analyze_s = total_s;  // generation overlaps analysis
    records = summary.records;
  }
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);

  std::printf("{\"mode\": \"%s\", \"threads\": %d, \"users\": %zu, "
              "\"records\": %zu, \"fingerprint\": \"%016" PRIx64 "\", "
              "\"generate_s\": %.4f, \"analyze_s\": %.4f, "
              "\"total_s\": %.4f, \"fits_s\": %.4f, "
              "\"sketch_bytes\": %zu, \"max_rss_kb\": %llu}\n",
              mode.c_str(), threads, users, records,
              core::FingerprintReport(report), generate_s, analyze_s,
              total_s, st.fits_s, report.sketches.MemoryBytes(),
              static_cast<unsigned long long>(bench::PeakRssBytes() / 1024));
  return 0;
}

// ---- parent: sweep + JSON aggregation ----

struct Sample {
  std::string mode;
  int threads = 0;
  std::size_t users = 0;
  std::size_t records = 0;
  std::string fingerprint;
  double generate_s = 0;
  double analyze_s = 0;
  double total_s = 0;
  double fits_s = 0;
  std::size_t sketch_bytes = 0;
  std::uint64_t max_rss_kb = 0;
};

double JsonNum(const std::string& s, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtod(s.c_str() + pos + needle.size(), nullptr);
}

std::string JsonStr(const std::string& s, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return "";
  const auto begin = pos + needle.size();
  return s.substr(begin, s.find('"', begin) - begin);
}

bool RunOne(const std::string& exe, const std::string& mode, int threads,
            std::size_t users, std::size_t memory_mb,
            const std::string& tmp_dir, Sample* out) {
  const std::string cmd = exe + " --child " + mode +
                          " --child-threads " + std::to_string(threads) +
                          " --child-users " + std::to_string(users) +
                          " --memory-mb " + std::to_string(memory_mb) +
                          " --tmp " + tmp_dir;
  std::FILE* p = popen(cmd.c_str(), "r");
  if (p == nullptr) return false;
  std::string output;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), p) != nullptr) output += buf;
  if (pclose(p) != 0) {
    std::fprintf(stderr, "child failed: %s\n", cmd.c_str());
    return false;
  }
  out->mode = mode;
  out->threads = threads;
  out->users = users;
  out->records = static_cast<std::size_t>(JsonNum(output, "records"));
  out->fingerprint = JsonStr(output, "fingerprint");
  out->generate_s = JsonNum(output, "generate_s");
  out->analyze_s = JsonNum(output, "analyze_s");
  out->total_s = JsonNum(output, "total_s");
  out->fits_s = JsonNum(output, "fits_s");
  out->sketch_bytes = static_cast<std::size_t>(JsonNum(output, "sketch_bytes"));
  out->max_rss_kb = static_cast<std::uint64_t>(JsonNum(output, "max_rss_kb"));
  return !out->fingerprint.empty() && out->records > 0;
}

std::vector<std::size_t> ParseSizes(const char* arg) {
  std::vector<std::size_t> sizes;
  for (const char* p = arg; *p != '\0';) {
    char* end = nullptr;
    const std::size_t v = std::strtoull(p, &end, 10);
    if (end == p) break;
    if (v > 0) sizes.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {20'000};
  std::string out_path = "BENCH_PR8.json";
  std::string tmp_dir = ".";
  std::size_t memory_mb = 512;
  double fits_budget_s = 0.2115;  // half the PR 3 fit stage (0.423 s)
  std::string child_mode;
  int child_threads = 1;
  std::size_t child_users = 20'000;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--users") == 0) {
      sizes = ParseSizes(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--tmp") == 0) {
      tmp_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--memory-mb") == 0) {
      memory_mb = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fits-budget-s") == 0) {
      fits_budget_s = std::strtod(argv[i + 1], nullptr);
    } else if (std::strcmp(argv[i], "--child") == 0) {
      child_mode = argv[i + 1];
    } else if (std::strcmp(argv[i], "--child-threads") == 0) {
      child_threads = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--child-users") == 0) {
      child_users = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  if (!child_mode.empty())
    return RunChild(child_mode, child_threads, child_users, memory_mb,
                    tmp_dir);
  if (sizes.empty()) {
    std::fprintf(stderr, "no sizes given\n");
    return 1;
  }

  struct Config {
    const char* mode;
    int threads;
  };
  const Config kConfigs[] = {{"twophase", 1}, {"concurrent", 1},
                             {"concurrent", 4}};

  const std::string exe = SelfExe(argv[0]);
  std::vector<Sample> samples;
  bool ok = true;
  bool identical = true;
  bool overlapped_faster = true;
  bool rss_no_worse = true;
  bool fits_in_budget = true;
  for (const std::size_t users : sizes) {
    std::string size_fp;
    double twophase_total = 0;
    std::uint64_t twophase_rss_kb = 0;
    for (const Config& c : kConfigs) {
      std::fprintf(stderr, "running %s threads=%d users=%zu...\n", c.mode,
                   c.threads, users);
      Sample s;
      if (!RunOne(exe, c.mode, c.threads, users, memory_mb, tmp_dir, &s)) {
        ok = false;
        continue;
      }
      std::fprintf(stderr,
                   "%-10s threads=%d users=%-8zu records=%-10zu "
                   "total %.2fs  fits %.3fs  rss %llu MB  fp %s\n",
                   s.mode.c_str(), s.threads, s.users, s.records, s.total_s,
                   s.fits_s,
                   static_cast<unsigned long long>(s.max_rss_kb / 1024),
                   s.fingerprint.c_str());
      if (size_fp.empty())
        size_fp = s.fingerprint;
      else if (s.fingerprint != size_fp)
        identical = false;
      if (s.mode == "twophase") {
        twophase_total = s.total_s;
        twophase_rss_kb = s.max_rss_kb;
      } else if (s.threads == 1) {
        // The single-walk contract, judged at matched thread counts: the
        // overlapped run must beat the two sequential phases end to end,
        // at no additional resident cost (5% allocator-noise tolerance).
        if (s.total_s >= twophase_total) overlapped_faster = false;
        if (static_cast<double>(s.max_rss_kb) >
            static_cast<double>(twophase_rss_kb) * 1.05) {
          rss_no_worse = false;
        }
      }
      if (s.fits_s > fits_budget_s) fits_in_budget = false;
      samples.push_back(s);
    }
  }
  if (!ok || samples.empty()) {
    std::fprintf(stderr, "FAIL: child runs failed\n");
    return 1;
  }
  const bool pass =
      identical && overlapped_faster && rss_no_worse && fits_in_budget;

  std::string body;
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "  \"memory_budget_mb\": %zu,\n"
                "  \"fits_budget_s\": %.4f,\n"
                "  \"reports_bit_identical\": %s,\n"
                "  \"concurrent_beats_twophase\": %s,\n"
                "  \"concurrent_rss_no_worse\": %s,\n"
                "  \"fits_within_budget\": %s,\n"
                "  \"pass\": %s,\n",
                memory_mb, fits_budget_s, identical ? "true" : "false",
                overlapped_faster ? "true" : "false",
                rss_no_worse ? "true" : "false",
                fits_in_budget ? "true" : "false", pass ? "true" : "false");
  body += buf;
  body += "  \"samples\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"%s\", \"threads\": %d, \"users\": %zu, "
        "\"records\": %zu, \"fingerprint\": \"%s\", "
        "\"generate_seconds\": %.2f, \"analyze_seconds\": %.2f, "
        "\"total_seconds\": %.2f, \"fit_stage_seconds\": %.4f, "
        "\"total_records_per_second\": %.0f, \"sketch_bytes\": %zu, "
        "\"peak_rss_kb\": %llu}%s\n",
        s.mode.c_str(), s.threads, s.users, s.records, s.fingerprint.c_str(),
        s.generate_s, s.analyze_s, s.total_s, s.fits_s,
        static_cast<double>(s.records) / s.total_s, s.sketch_bytes,
        static_cast<unsigned long long>(s.max_rss_kb),
        i + 1 < samples.size() ? "," : "");
    body += buf;
  }
  body += "  ]\n";
  bench::EmitBenchJson(out_path, "pr8_streaming", body);

  std::fprintf(stderr,
               "identical=%s overlapped_faster=%s rss_no_worse=%s "
               "fits<=%.3fs=%s -> %s\n",
               identical ? "yes" : "NO", overlapped_faster ? "yes" : "NO",
               rss_no_worse ? "yes" : "NO", fits_budget_s,
               fits_in_budget ? "yes" : "NO", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
