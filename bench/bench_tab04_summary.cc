// Table 4 — Summary of major findings and implications: the full §3
// analysis pipeline over a generated week, rendered as the paper-vs-measured
// findings report.
#include "bench_util.h"

#include "core/report.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Table 4", "summary of major findings and implications");
  const auto w = bench::StandardWorkload(argc, argv);
  const core::FullReport report = core::AnalysisPipeline().Run(w.trace);
  std::fputs(core::RenderFindings(report).c_str(), stdout);
  return 0;
}
