// §3.1.4 implication — "web cache proxies can reduce server workload":
// replay the retrieval stream of a simulated week through an LRU front-end
// cache across capacities, and report object/byte hit ratios and the egress
// the storage servers are spared. The locality comes from Zipf-popular
// shared content (URL downloads), exactly the regime the paper flags.
#include "bench_util.h"

#include "cloud/cache.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("§3.1.4 what-if", "front-end LRU cache for retrievals");

  // A retrieval-heavy service day: many download sessions, shared-content
  // heavy (the paper's 28% ~150 MB objects are URL-shared videos).
  cloud::ServiceConfig service_cfg;
  service_cfg.shared_content_prob = 0.6;
  const auto result = bench::Section4Result(argc, argv, service_cfg);

  Bytes total = 0;
  Bytes shared = 0;
  for (const auto& r : result.retrievals) {
    total += r.size;
    if (r.shared) shared += r.size;
  }
  std::printf("\nretrieval stream: %zu fetches, %.1f GB total, %.0f%% of "
              "bytes from shared URLs\n",
              result.retrievals.size(), static_cast<double>(total) / 1e9,
              total ? 100.0 * static_cast<double>(shared) /
                          static_cast<double>(total)
                    : 0.0);

  std::printf("\n%12s %10s %12s %12s %12s %10s\n", "cache", "hit ratio",
              "byte hits", "egress GB", "saved GB", "objects");
  for (Bytes capacity_gb : {1, 2, 4, 8, 16, 32, 64}) {
    cloud::LruByteCache cache(capacity_gb * 1000 * kMiB);
    for (const auto& r : result.retrievals) cache.Access(r.file_md5, r.size);
    const auto& s = cache.stats();
    std::printf("%9llu GB %9.1f%% %11.1f%% %12.2f %12.2f %10zu\n",
                static_cast<unsigned long long>(capacity_gb),
                100 * s.HitRatio(), 100 * s.ByteHitRatio(),
                static_cast<double>(s.bytes_requested - s.bytes_hit) / 1e9,
                static_cast<double>(s.bytes_hit) / 1e9,
                cache.ObjectCount());
  }

  std::printf("\nExpected shape: hit ratios climb steeply while the cache "
              "is smaller than the\nZipf head of shared content, then "
              "flatten — personal (unshared) retrievals are\none-touch and "
              "never benefit. This bounds how much a proxy tier can save.\n");
  return 0;
}
