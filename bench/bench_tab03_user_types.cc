// Table 3 — The four user classes (occasional / upload-only / download-only
// / mixed) per device profile: user shares and their shares of stored and
// retrieved volume.
#include "bench_util.h"

#include "analysis/usage_patterns.h"
#include "model/paper_params.h"

namespace {

struct PaperColumn {
  const char* name;
  double occ, up, down, mixed;          // user shares
  double up_store, down_retrieve;       // headline volume shares
};

void PrintColumn(const mcloud::analysis::UserTypeColumn& col,
                 const PaperColumn& paper_col) {
  using mcloud::paper::UserClass;
  static const char* kNames[] = {"occasional", "upload-only",
                                 "download-only", "mixed"};
  std::printf("\n%s column (%zu users):\n", paper_col.name, col.users);
  std::printf("  %-14s %10s %10s %10s %10s\n", "class", "users",
              "paper", "store v.", "retr. v.");
  const double paper_shares[] = {paper_col.occ, paper_col.up, paper_col.down,
                                 paper_col.mixed};
  for (std::size_t k :
       {static_cast<std::size_t>(UserClass::kOccasional),
        static_cast<std::size_t>(UserClass::kUploadOnly),
        static_cast<std::size_t>(UserClass::kDownloadOnly),
        static_cast<std::size_t>(UserClass::kMixed)}) {
    std::printf("  %-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", kNames[k],
                100 * col.user_share[k], 100 * paper_shares[k],
                100 * col.store_share[k], 100 * col.retrieve_share[k]);
  }
  const auto up = static_cast<std::size_t>(UserClass::kUploadOnly);
  const auto down = static_cast<std::size_t>(UserClass::kDownloadOnly);
  mcloud::bench::PaperVsMeasured("upload-only share of store volume",
                                 paper_col.up_store, col.store_share[up]);
  mcloud::bench::PaperVsMeasured("download-only share of retrieve volume",
                                 paper_col.down_retrieve,
                                 col.retrieve_share[down]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Table 3", "user classes per device profile");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto usage = analysis::BuildUserUsage(w.trace);

  PrintColumn(analysis::BuildUserTypeColumn(
                  usage, analysis::DeviceProfile::kMobileOnly),
              {"mobile only", paper::kMobileOccasionalShare,
               paper::kMobileUploadOnlyShare, paper::kMobileDownloadOnlyShare,
               paper::kMobileMixedShare, paper::kMobileUploadOnlyStoreVolume,
               paper::kMobileDownloadOnlyRetrieveVolume});
  PrintColumn(analysis::BuildUserTypeColumn(
                  usage, analysis::DeviceProfile::kMobileAndPc),
              {"mobile & PC", paper::kBothOccasionalShare,
               paper::kBothUploadOnlyShare, paper::kBothDownloadOnlyShare,
               paper::kBothMixedShare, 0.813, 0.665});
  PrintColumn(analysis::BuildUserTypeColumn(usage,
                                            analysis::DeviceProfile::kPcOnly),
              {"PC only", paper::kPcOccasionalShare,
               paper::kPcUploadOnlyShare, paper::kPcDownloadOnlyShare,
               paper::kPcMixedShare, 0.748, 0.755});
  return 0;
}
