// Figure 1 — Temporal variation of workload: hourly data volume (1a) and
// hourly stored/retrieved file counts (1b) over the observation week.
//
// Paper's observations to reproduce: a clear diurnal pattern with a surge
// around 11 PM; retrieval volume above storage volume; stored files per hour
// over twice the retrieved files.
#include "bench_util.h"

#include "analysis/workload_timeseries.h"
#include "model/paper_params.h"
#include "trace/filters.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 1", "temporal variation of the mobile workload");
  const auto w = bench::StandardWorkload(argc, argv);
  const auto mobile = MobileOnly(w.trace);
  const auto ts = analysis::BuildTimeseries(mobile);

  std::printf("\n(a) hourly data volume / (b) hourly file operations\n");
  std::printf("%-14s %12s %12s %12s %12s\n", "hour", "store GB",
              "retrieve GB", "stored files", "retr. files");
  for (const auto& h : ts.hours) {
    // Print every third hour to keep the series readable; totals below use
    // every bin.
    if (h.hour % 3 != 0) continue;
    std::printf("%-3s %02d:00     %12.2f %12.2f %12llu %12llu\n",
                DayLabel(h.hour / 24).c_str(), h.hour % 24,
                h.StoreVolumeGb(), h.RetrieveVolumeGb(),
                static_cast<unsigned long long>(h.stored_files),
                static_cast<unsigned long long>(h.retrieved_files));
  }

  std::printf("\nHeadline observations:\n");
  bench::PaperVsMeasured("peak hour of day (23 = 11PM surge)",
                         paper::kPeakHourOfDay, ts.PeakHourOfDay());
  bench::PaperVsMeasured("retrieve/store volume ratio (>1)", 1.0,
                         ts.TotalStoreGb() > 0
                             ? ts.TotalRetrieveGb() / ts.TotalStoreGb()
                             : 0.0);
  bench::PaperVsMeasured("stored/retrieved file-count ratio (>2)",
                         paper::kStoredToRetrievedFileCountRatio,
                         ts.TotalRetrievedFiles() > 0
                             ? static_cast<double>(ts.TotalStoredFiles()) /
                                   static_cast<double>(
                                       ts.TotalRetrievedFiles())
                             : 0.0);
  return 0;
}
