// AoS vs columnar analysis engine comparison (PR "columnar TraceStore").
//
//   bench_pr3_columnar [--users N] [--out FILE.json]
//                      [--min-engine-speedup X] [--tmp DIR]
//
// The parent process generates the PR1 workload once, writes it as both a
// v1 (row-wise) and a v2 (columnar) binary trace, then re-executes itself
// once per (engine, threads) configuration so each run's peak RSS is
// measured in a fresh address space:
//
//   * engine "aos":      ReadBinaryTrace(v1)  → AnalysisPipeline::RunAos
//   * engine "columnar": ReadColumnarTrace(v2, kAnalysisColumns)
//                        → AnalysisPipeline::Run(TraceStore)
//
// Each child prints one JSON object: per-stage timings (StageTimings), the
// FullReport fingerprint, and getrusage peak RSS. The parent asserts that
// every configuration produced a bit-identical report and that the columnar
// engine's record-processing throughput (scan + sessionize + per-user
// stages; model fitting is shared code and excluded) beats the AoS engine
// by at least --min-engine-speedup at threads=1, then writes BENCH_PR3.json.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/report.h"
#include "trace/log_io.h"
#include "workload/generator.h"

namespace {

using namespace mcloud;
using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

long PeakRssKb() {
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
  return u.ru_maxrss;  // kilobytes on Linux
}

std::string SelfExe(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

// ---- child: one (engine, threads) measurement ----

int RunChild(const std::string& mode, int threads, const std::string& v1,
             const std::string& v2) {
  core::PipelineOptions opts;
  opts.threads = threads;
  const core::AnalysisPipeline pipeline(opts);
  core::StageTimings t;
  core::FullReport report;
  std::size_t records = 0;

  const auto t0 = Clock::now();
  double load_s = 0;
  if (mode == "aos") {
    const std::vector<LogRecord> trace = ReadBinaryTrace(v1);
    load_s = Since(t0);
    records = trace.size();
    report = pipeline.RunAos(trace, &t);
  } else {
    const TraceStore store = ReadColumnarTrace(v2, kAnalysisColumns);
    load_s = Since(t0);
    records = store.rows();
    report = pipeline.Run(store, &t);
  }

  std::printf("{\"mode\": \"%s\", \"threads\": %d, \"records\": %zu, "
              "\"fingerprint\": \"%016" PRIx64 "\", \"load_s\": %.4f, "
              "\"scan_s\": %.4f, \"sessionize_s\": %.4f, "
              "\"per_user_s\": %.4f, \"fits_s\": %.4f, \"total_s\": %.4f, "
              "\"max_rss_kb\": %ld}\n",
              mode.c_str(), threads, records,
              core::FingerprintReport(report), load_s, t.scan_s,
              t.sessionize_s, t.per_user_s, t.fits_s, t.total_s, PeakRssKb());
  return 0;
}

// ---- parent: sweep + JSON aggregation ----

struct Sample {
  std::string mode;
  int threads = 0;
  std::size_t records = 0;
  std::string fingerprint;
  double load_s = 0, scan_s = 0, sessionize_s = 0, per_user_s = 0;
  double fits_s = 0, total_s = 0;
  long max_rss_kb = 0;

  [[nodiscard]] double EngineSeconds() const {
    return scan_s + sessionize_s + per_user_s;
  }
};

double JsonNum(const std::string& s, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtod(s.c_str() + pos + needle.size(), nullptr);
}

std::string JsonStr(const std::string& s, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return "";
  const auto begin = pos + needle.size();
  return s.substr(begin, s.find('"', begin) - begin);
}

bool RunOne(const std::string& exe, const std::string& mode, int threads,
            const std::string& v1, const std::string& v2, Sample* out) {
  const std::string cmd = exe + " --child " + mode +
                          " --threads " + std::to_string(threads) +
                          " --v1 " + v1 + " --v2 " + v2;
  std::FILE* p = popen(cmd.c_str(), "r");
  if (p == nullptr) return false;
  std::string output;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), p) != nullptr) output += buf;
  if (pclose(p) != 0) {
    std::fprintf(stderr, "child failed: %s\n", cmd.c_str());
    return false;
  }
  out->mode = mode;
  out->threads = threads;
  out->records = static_cast<std::size_t>(JsonNum(output, "records"));
  out->fingerprint = JsonStr(output, "fingerprint");
  out->load_s = JsonNum(output, "load_s");
  out->scan_s = JsonNum(output, "scan_s");
  out->sessionize_s = JsonNum(output, "sessionize_s");
  out->per_user_s = JsonNum(output, "per_user_s");
  out->fits_s = JsonNum(output, "fits_s");
  out->total_s = JsonNum(output, "total_s");
  out->max_rss_kb = static_cast<long>(JsonNum(output, "max_rss_kb"));
  return !out->fingerprint.empty() && out->records > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t users = 20000;
  std::string out_path = "BENCH_PR3.json";
  std::string tmp_dir = ".";
  double min_engine_speedup = 3.0;
  std::string child_mode;
  int child_threads = 1;
  std::string v1_path;
  std::string v2_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--users") == 0) {
      users = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--tmp") == 0) {
      tmp_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--min-engine-speedup") == 0) {
      min_engine_speedup = std::strtod(argv[i + 1], nullptr);
    } else if (std::strcmp(argv[i], "--child") == 0) {
      child_mode = argv[i + 1];
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      child_threads = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--v1") == 0) {
      v1_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--v2") == 0) {
      v2_path = argv[i + 1];
    }
  }
  if (!child_mode.empty()) {
    return RunChild(child_mode, child_threads, v1_path, v2_path);
  }

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> sweep = {1, 4};
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end())
    sweep.push_back(hw);

  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = users;
  cfg.population.pc_only_users = users / 3;
  cfg.seed = 42;
  std::fprintf(stderr, "generating %zu mobile users...\n", users);
  const auto t0 = Clock::now();
  const auto w = workload::WorkloadGenerator(cfg).GenerateColumnar();
  std::fprintf(stderr, "generated %zu records in %.1fs\n", w.trace.rows(),
               Since(t0));

  v1_path = tmp_dir + "/bench_pr3_trace.v1bin";
  v2_path = tmp_dir + "/bench_pr3_trace.v2";
  WriteBinaryTrace(v1_path, w.trace.ToRecords());
  WriteColumnarTrace(v2_path, w.trace);
  const auto v1_bytes = std::filesystem::file_size(v1_path);
  const auto v2_bytes = std::filesystem::file_size(v2_path);

  const std::string exe = SelfExe(argv[0]);
  std::vector<Sample> samples;
  bool ok = true;
  for (const char* mode : {"aos", "columnar"}) {
    for (const int threads : sweep) {
      Sample s;
      if (!RunOne(exe, mode, threads, v1_path, v2_path, &s)) {
        ok = false;
        continue;
      }
      std::fprintf(stderr,
                   "%-8s threads=%d  load %.2fs  engine %.2fs "
                   "(scan %.2f sess %.2f user %.2f)  fits %.2fs  "
                   "total %.2fs  rss %ld MB  fp %s\n",
                   s.mode.c_str(), s.threads, s.load_s, s.EngineSeconds(),
                   s.scan_s, s.sessionize_s, s.per_user_s, s.fits_s,
                   s.total_s, s.max_rss_kb / 1024, s.fingerprint.c_str());
      samples.push_back(s);
    }
  }
  std::filesystem::remove(v1_path);
  std::filesystem::remove(v2_path);
  if (!ok || samples.empty()) {
    std::fprintf(stderr, "FAIL: child runs failed\n");
    return 1;
  }

  bool identical = true;
  for (const Sample& s : samples)
    identical = identical && s.fingerprint == samples.front().fingerprint;

  const auto find = [&](const char* mode, int threads) -> const Sample* {
    for (const Sample& s : samples)
      if (s.mode == mode && s.threads == threads) return &s;
    return nullptr;
  };
  const Sample* aos1 = find("aos", 1);
  const Sample* col1 = find("columnar", 1);
  double engine_speedup = 0;
  double total_speedup = 0;
  double rss_ratio = 0;
  if (aos1 != nullptr && col1 != nullptr) {
    engine_speedup = aos1->EngineSeconds() / col1->EngineSeconds();
    total_speedup = aos1->total_s / col1->total_s;
    rss_ratio = static_cast<double>(aos1->max_rss_kb) /
                static_cast<double>(col1->max_rss_kb);
  }
  const bool pass =
      identical && engine_speedup >= min_engine_speedup && rss_ratio >= 1.0;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::size_t records = samples.front().records;
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"pr3_columnar_vs_aos\",\n"
      "  \"mobile_users\": %zu,\n"
      "  \"trace_records\": %zu,\n"
      "  \"hardware_threads\": %d,\n"
      "  \"v1_file_bytes_per_record\": %.1f,\n"
      "  \"v2_file_bytes_per_record\": %.1f,\n"
      "  \"reports_bit_identical\": %s,\n"
      "  \"engine_speedup_threads1\": %.2f,\n"
      "  \"total_speedup_threads1\": %.2f,\n"
      "  \"rss_ratio_threads1\": %.2f,\n"
      "  \"min_engine_speedup_required\": %.2f,\n"
      "  \"pass\": %s,\n"
      "  \"note\": \"engine_seconds = scan + sessionize + per-user stage "
      "time (record processing); model fitting is shared code between both "
      "engines and reported separately as fits_seconds\",\n"
      "  \"samples\": [\n",
      users, records, hw,
      static_cast<double>(v1_bytes) / static_cast<double>(records),
      static_cast<double>(v2_bytes) / static_cast<double>(records),
      identical ? "true" : "false", engine_speedup, total_speedup, rss_ratio,
      min_engine_speedup, pass ? "true" : "false");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"engine\": \"%s\", \"threads\": %d, "
        "\"fingerprint\": \"%s\", \"load_seconds\": %.3f, "
        "\"scan_seconds\": %.3f, \"sessionize_seconds\": %.3f, "
        "\"per_user_seconds\": %.3f, \"fits_seconds\": %.3f, "
        "\"total_seconds\": %.3f, \"engine_records_per_second\": %.0f, "
        "\"total_records_per_second\": %.0f, \"peak_rss_kb\": %ld, "
        "\"rss_bytes_per_record\": %.1f}%s\n",
        s.mode.c_str(), s.threads, s.fingerprint.c_str(), s.load_s, s.scan_s,
        s.sessionize_s, s.per_user_s, s.fits_s, s.total_s,
        static_cast<double>(s.records) / s.EngineSeconds(),
        static_cast<double>(s.records) / s.total_s,
        s.max_rss_kb,
        static_cast<double>(s.max_rss_kb) * 1024.0 /
            static_cast<double>(s.records),
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::fprintf(stderr,
               "wrote %s: identical=%s engine_speedup=%.2fx (need %.2fx) "
               "rss_ratio=%.2fx -> %s\n",
               out_path.c_str(), identical ? "yes" : "NO", engine_speedup,
               min_engine_speedup, rss_ratio, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
