// Fault/resilience sweep (PR "fault-injection & resilience subsystem"):
// runs one session fleet against the storage service across a grid of
// front-end failure rates × loss-burst rates × retry policies, and writes
// session success rate, goodput fraction, retry amplification, and the
// chunk-latency tail as JSON.
//
//   bench_pr2_faults [--users N] [--out FILE.json]
//
// Defaults: 250 mobile users (~1.3k sessions), BENCH_PR2.json in the
// current directory. The same plans are replayed for every cell, so the
// grid isolates the effect of the fault knobs and the policy.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/availability.h"
#include "cloud/storage_service.h"
#include "fault/retry_policy.h"
#include "workload/generator.h"

namespace {

using namespace mcloud;
using Clock = std::chrono::steady_clock;

struct Cell {
  double fail_rate = 0;
  double loss_rate = 0;
  const char* policy = "";
  analysis::AvailabilityReport report;
  double wall_s = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t users = 250;
  std::string out = "BENCH_PR2.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--users") == 0) {
      users = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = argv[i + 1];
    }
  }

  workload::WorkloadConfig wcfg;
  wcfg.population.mobile_users = users;
  wcfg.population.pc_only_users = users / 3;
  wcfg.seed = 42;
  const auto w = workload::WorkloadGenerator(wcfg).GeneratePlansOnly();
  std::fprintf(stderr, "fault sweep: %zu users, %zu sessions\n", users,
               w.sessions.size());

  struct Policy {
    const char* name;
    fault::RetryPolicy policy;
  };
  std::vector<Policy> policies;
  policies.push_back({"none", fault::RetryPolicy::None()});
  policies.push_back({"retry", fault::RetryPolicy{}});
  {
    fault::RetryPolicy hedged;
    hedged.hedge = true;
    policies.push_back({"retry+hedge", hedged});
  }

  std::vector<Cell> cells;
  for (const double fail : {0.0, 0.01, 0.05, 0.15}) {
    for (const double loss : {0.0, 0.01}) {
      if (fail == 0.0 && loss != 0.0) continue;  // loss-only cell is below
      for (const Policy& p : policies) {
        Cell c;
        c.fail_rate = fail;
        c.loss_rate = loss;
        c.policy = p.name;
        cloud::ServiceConfig cfg;
        cfg.faults.frontend_fail_rate = fail;
        cfg.faults.loss_burst_rate = loss;
        cfg.faults.degraded_rate = fail > 0 ? 0.05 : 0.0;
        cfg.retry = p.policy;
        const auto t0 = Clock::now();
        cloud::StorageService service(cfg);
        c.report = analysis::Availability(service.Execute(w.sessions));
        c.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
        std::fprintf(stderr,
                     "fail=%.2f loss=%.3f policy=%-11s  success %.4f  "
                     "goodput %.4f  amp %.3f  p99 %.2fs  (%.1fs)\n",
                     fail, loss, p.name, c.report.session_success_rate,
                     c.report.goodput_fraction, c.report.retry_amplification,
                     c.report.chunk_ttran_p99, c.wall_s);
        cells.push_back(c);
      }
    }
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"pr2_fault_sweep\",\n"
               "  \"mobile_users\": %zu,\n"
               "  \"sessions\": %zu,\n"
               "  \"cells\": [\n",
               users, w.sessions.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const auto& r = c.report;
    std::fprintf(
        f,
        "    {\"fail_rate\": %.3f, \"loss_burst_rate\": %.3f, "
        "\"policy\": \"%s\", \"session_success_rate\": %.6f, "
        "\"op_success_rate\": %.6f, \"goodput_fraction\": %.6f, "
        "\"retry_amplification\": %.6f, \"retries\": %llu, "
        "\"failovers\": %llu, \"hedges\": %llu, \"hedge_wins\": %llu, "
        "\"resume_skipped_chunks\": %llu, \"chunk_ttran_p50_s\": %.4f, "
        "\"chunk_ttran_p99_s\": %.4f, \"wall_seconds\": %.2f}%s\n",
        c.fail_rate, c.loss_rate, c.policy, r.session_success_rate,
        r.op_success_rate, r.goodput_fraction, r.retry_amplification,
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.failovers),
        static_cast<unsigned long long>(r.hedges_issued),
        static_cast<unsigned long long>(r.hedge_wins),
        static_cast<unsigned long long>(r.resume_skipped_chunks),
        r.chunk_ttran_p50, r.chunk_ttran_p99,
        c.wall_s, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out.c_str());
  return 0;
}
