// §2.1 ablation — one TCP connection per file vs one reused connection per
// batch: the service allows both ("TCP connections can also carry HTTP
// requests from more than one file"). A reused connection saves handshakes
// and keeps ssthresh across files, but the user's inter-file think time sits
// on it as TCP idle and triggers slow-start restart — the same §4 mechanism
// that penalizes inter-chunk idles.
#include "bench_util.h"

#include "core/whatif.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("§2.1 what-if",
                "connection per file vs reused connection per batch");

  core::ConnectionStrategyConfig cfg;
  const char* files = bench::Positional(argc, argv, 1);
  cfg.files = files ? std::strtoul(files, nullptr, 10) : 8;
  cfg.file_size = 2 * kMiB;
  cfg.trials = 150;
  cfg.threads = bench::ParseThreads(argc, argv);

  std::printf("# batch of %zu files x %.0f MB, varying inter-file gap\n\n",
              cfg.files, ToMB(cfg.file_size));
  std::printf("%-10s %-9s %14s %14s %11s %11s\n", "device", "gap s",
              "per-file s", "reused s", "pf restarts", "re restarts");
  for (auto device : {DeviceType::kAndroid, DeviceType::kIos}) {
    cfg.device = device;
    for (Seconds gap : {0.5, 2.0, 10.0, 60.0}) {
      cfg.inter_file_gap = gap;
      const auto out = core::CompareConnectionStrategies(cfg);
      std::printf("%-10s %-9.1f %14.1f %14.1f %11.1f %11.1f\n",
                  device == DeviceType::kAndroid ? "android" : "ios", gap,
                  out.per_file_median, out.reused_median,
                  out.per_file_restarts, out.reused_restarts);
    }
  }

  std::printf("\nMechanistic reading: with the server's 64 KB window cap, a "
              "warm connection is\nworth little — the ramp back to 64 KB "
              "takes only a few RTTs — so the handshake\nsavings of reuse "
              "are offset by the slow-start restarts its inter-file idles\n"
              "incur (the same mechanism behind Fig 16), and the strategies "
              "are a near-wash.\nThis is why the paper pushes on the idle "
              "times themselves (larger chunks,\nbatching) rather than on "
              "connection management.\n");
  return 0;
}
