// Figure 15 — Distribution of the estimated average sending window of
// storage flows, swnd = reqsize·RTT/t_tran. Paper: the distribution is
// bounded by — and concentrates toward — the 64 KB receive window that the
// front-ends advertise with window scaling disabled.
#include "bench_util.h"

#include "analysis/perf_analysis.h"
#include "model/paper_params.h"
#include "util/histogram.h"

int main(int argc, char** argv) {
  using namespace mcloud;
  bench::Header("Figure 15", "estimated sending window of storage flows");
  const auto result = bench::Section4Result(argc, argv);

  const auto swnd = analysis::SendingWindowEstimates(result.logs);
  std::printf("\nprobability distribution over log-spaced window sizes:\n");
  Histogram hist(std::log2(1024.0), std::log2(128.0 * 1024), 28);
  for (double s : swnd) {
    if (s > 0) hist.Add(std::log2(s));
  }
  for (std::size_t i = 0; i < hist.bins(); ++i) {
    const double kb = std::pow(2.0, hist.BinCenter(i)) / 1024.0;
    const int bar = static_cast<int>(hist.Fraction(i) * 300);
    std::printf("  %7.1f KB %7.4f |%s\n", kb, hist.Fraction(i),
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }

  bench::PrintPercentiles("swnd (bytes)", swnd, "B");
  std::printf("\nHeadline observations:\n");
  std::size_t above_cap = 0;
  for (double s : swnd) {
    if (s > static_cast<double>(paper::kServerReceiveWindow) * 1.1)
      ++above_cap;
  }
  bench::PaperVsMeasured(
      "share of estimates above the 64KB cap (~0)", 0.0,
      swnd.empty() ? 0.0
                   : static_cast<double>(above_cap) /
                         static_cast<double>(swnd.size()));
  bench::PaperVsMeasured("p99 swnd vs 64KB cap (bytes)",
                         static_cast<double>(paper::kServerReceiveWindow),
                         Percentile(swnd, 99), "B");
  // Same statistic extracted from the binned distribution itself — the
  // shared Histogram::ValueAtQuantile implementation the live load
  // generator uses for its latency percentiles.
  bench::PaperVsMeasured("p99 swnd from histogram (bytes)",
                         static_cast<double>(paper::kServerReceiveWindow),
                         std::pow(2.0, hist.ValueAtQuantile(0.99)), "B");
  std::printf("\nNote: the estimator divides by t_tran, which includes "
              "Android's client-side\nstalls, so the bulk of the mass sits "
              "below the cap; the upper edge of the\ndistribution pinning "
              "at 64KB is the fingerprint of the disabled window\nscaling "
              "(compare bench_whatif_chunking's window-scaling scenario).\n");
  return 0;
}
