// Quickstart: generate a synthetic week of mobile cloud storage logs,
// run the full analysis pipeline, and print the findings summary.
//
//   ./quickstart [mobile_users] [seed]
//
// This is the 60-second tour of the library: WorkloadGenerator stands in for
// the paper's proprietary dataset, AnalysisPipeline is the paper's §3
// methodology, and RenderFindings prints measured values next to the
// paper's published ones.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace mcloud;

  workload::WorkloadConfig config;
  config.population.mobile_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                            : 8000;
  config.population.pc_only_users = config.population.mobile_users / 3;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("Generating one week of logs for %zu mobile users "
              "(+%zu PC-only), seed %llu...\n",
              config.population.mobile_users,
              config.population.pc_only_users,
              static_cast<unsigned long long>(config.seed));

  const workload::WorkloadGenerator generator(config);
  const workload::Workload w = generator.Generate();
  std::printf("  users=%zu sessions=%zu log records=%zu\n\n", w.users.size(),
              w.sessions.size(), w.trace.size());

  const core::AnalysisPipeline pipeline;
  const core::FullReport report = pipeline.Run(w.trace);
  std::fputs(core::RenderFindings(report).c_str(), stdout);
  return 0;
}
