// Trace analytics — the "bring your own logs" path.
//
// Demonstrates the trace toolchain end to end: generate a week of logs,
// anonymize them (as the paper's released dataset was), write them to CSV
// and to the compact binary format, read them back, and run the full
// analysis pipeline on the reloaded trace. Point the reader at FromCsvLine /
// ReadCsvTrace to run the pipeline on real front-end logs instead.
//
//   ./trace_analytics [mobile_users] [output_dir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/pipeline.h"
#include "trace/anonymizer.h"
#include "trace/log_io.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace mcloud;

  workload::WorkloadConfig config;
  config.population.mobile_users =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  config.population.pc_only_users = config.population.mobile_users / 4;
  const std::filesystem::path dir =
      argc > 2 ? argv[2] : std::filesystem::temp_directory_path();

  std::printf("Generating logs for %zu mobile users...\n",
              config.population.mobile_users);
  const auto w = workload::WorkloadGenerator(config).Generate();

  // Anonymize user and device IDs, exactly as the released dataset does.
  const Anonymizer anonymizer("example-release-key");
  const auto anonymized = anonymizer.Apply(w.trace);

  const auto csv_path = dir / "mcloud_trace.csv";
  const auto bin_path = dir / "mcloud_trace.bin";
  WriteCsvTrace(csv_path, anonymized);
  WriteBinaryTrace(bin_path, anonymized);
  std::printf("Wrote %zu records:\n  CSV    %s (%.1f MB)\n  binary %s "
              "(%.1f MB)\n",
              anonymized.size(), csv_path.c_str(),
              ToMB(std::filesystem::file_size(csv_path)),
              bin_path.c_str(),
              ToMB(std::filesystem::file_size(bin_path)));

  // Reload from disk and analyze, as an external consumer would.
  const auto reloaded = ReadBinaryTrace(bin_path);
  std::printf("\nReloaded %zu records; running the analysis pipeline...\n\n",
              reloaded.size());
  const core::FullReport report = core::AnalysisPipeline().Run(reloaded);
  std::fputs(core::RenderFindings(report).c_str(), stdout);

  std::filesystem::remove(csv_path);
  std::filesystem::remove(bin_path);
  return 0;
}
