// Transfer tuner — an app developer's view of §4.
//
// Given a device type and a file size, run the upload through the simulated
// service under each §4.3 optimization (bigger chunks, batching, server
// window scaling, SSAI off) and report what actually helps. This is the
// "should we change our chunk size?" question the paper answers for the
// provider, as a runnable tool.
//
//   ./transfer_tuner [android|ios] [file_mb]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/whatif.h"

int main(int argc, char** argv) {
  using namespace mcloud;

  core::WhatIfConfig config;
  config.device = (argc > 1 && std::strcmp(argv[1], "ios") == 0)
                      ? DeviceType::kIos
                      : DeviceType::kAndroid;
  config.file_size =
      (argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12) * kMiB;
  config.flows = 250;

  std::printf("Tuning uploads of a %.0f MB file from an %s device "
              "(%zu simulated flows per scenario)...\n\n",
              ToMB(config.file_size),
              config.device == DeviceType::kIos ? "iOS" : "Android",
              config.flows);

  const auto outcomes = core::RunWhatIf(config, core::StandardScenarios());
  const double baseline = outcomes.front().median_file_time;

  std::printf("%-44s %10s %9s %10s %9s\n", "scenario", "median s",
              "speedup", "restarts", "Mbps");
  for (const auto& o : outcomes) {
    std::printf("%-44s %10.2f %8.2fx %9.0f%% %9.2f\n", o.name.c_str(),
                o.median_file_time, baseline / o.median_file_time,
                100 * o.restart_share, o.goodput_mbps);
  }

  std::printf("\nReading the table (paper §4.3):\n"
              " * larger chunks / batching shrink the number of inter-chunk "
              "idles, the main\n   Android penalty;\n"
              " * window scaling lifts the server's 64 KB cap and helps "
              "every device;\n"
              " * disabling slow-start-after-idle removes restarts but "
              "risks post-idle\n   bursts — the paper recommends pacing "
              "instead.\n");
  return 0;
}
