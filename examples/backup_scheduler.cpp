// Smart auto backup — an operator's capacity-planning tool.
//
// The paper's §3.2.2 implication: most mobile uploads are never retrieved in
// the following week, so an opt-in "smart auto backup" can defer evening
// uploads into the early-morning trough and cut the peak load that storage
// capacity must be provisioned for. This example generates a week of load
// and sweeps deferral policies so an operator can pick one.
//
//   ./backup_scheduler [mobile_users] [opt_in_percent]
#include <cstdio>
#include <cstdlib>

#include "core/deferral.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace mcloud;

  workload::WorkloadConfig config;
  config.population.mobile_users =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6000;
  config.population.pc_only_users = config.population.mobile_users / 4;
  const double opt_in =
      argc > 2 ? std::strtod(argv[2], nullptr) / 100.0 : 1.0;

  std::printf("Generating a week of load for %zu mobile users...\n",
              config.population.mobile_users);
  const auto w = workload::WorkloadGenerator(config).Generate();

  core::DeferralPolicy policy;
  policy.opt_in = opt_in;
  const auto result = core::SimulateDeferral(w.trace, policy, kTraceStart);

  std::printf("\nStorage load by hour of day (average over the week):\n");
  std::printf("  %5s %12s %12s\n", "hour", "before GB/h", "after GB/h");
  for (int hod = 0; hod < 24; ++hod) {
    double before = 0;
    double after = 0;
    int days = 0;
    for (std::size_t i = hod; i < result.before.hours.size(); i += 24) {
      before += result.before.hours[i].StoreVolumeGb();
      after += result.after.hours[i].StoreVolumeGb();
      ++days;
    }
    std::printf("  %02d:00 %12.2f %12.2f  %s\n", hod, before / days,
                after / days,
                (hod >= policy.peak_begin_hour && hod < policy.peak_end_hour)
                    ? "<- deferral source"
                : (hod >= policy.defer_begin_hour &&
                   hod < policy.defer_end_hour)
                    ? "<- deferral target"
                    : "");
  }

  std::printf("\nWith %.0f%% opt-in:\n", 100 * policy.opt_in);
  std::printf("  peak hourly storage load: %.2f -> %.2f GB/h "
              "(%.1f%% reduction)\n",
              result.peak_before_gb, result.peak_after_gb,
              100 * result.peak_reduction);
  std::printf("  deferred: %.1f%% of upload volume (%llu chunk uploads), "
              "all from users with no\n  retrieval activity this week — "
              "their QoE is unaffected (Fig 9).\n",
              100 * result.deferred_share,
              static_cast<unsigned long long>(result.deferred_chunks));
  return 0;
}
