// Tests for the deterministic RNG (util/rng.h).
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace mcloud {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformIntRejectsZero) {
  // The n == 0 guard is debug-only (hot path: one check per session device
  // pick); release builds hit the modulo-by-zero UB guard in callers.
#ifndef NDEBUG
  Rng rng(1);
  EXPECT_THROW((void)rng.UniformInt(0), Error);
#else
  GTEST_SKIP() << "UniformInt range check compiled out in release builds";
#endif
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.ExponentialMean(3.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW((void)rng.ExponentialMean(0.0), Error);
  EXPECT_THROW((void)rng.ExponentialMean(-1.0), Error);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.LogNormal(std::log(2.0), 0.7));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 2.0, 0.1);
}

TEST(Rng, ParetoBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  EXPECT_THROW((void)rng.Pareto(0.0, 1.0), Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(23);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) counts[rng.PickWeighted(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

TEST(Rng, PickWeightedErrors) {
  Rng rng(1);
  EXPECT_THROW((void)rng.PickWeighted(std::vector<double>{}), Error);
  EXPECT_THROW((void)rng.PickWeighted(std::vector<double>{0.0, 0.0}), Error);
  EXPECT_THROW((void)rng.PickWeighted(std::vector<double>{1.0, -1.0}), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.Shuffle(v);
  EXPECT_NE(v, copy);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

// ---------------------------------------------------------------------------
// Batched draws (FillUniform / FillNormal / FillLogNormal): each must consume
// the engine exactly as N scalar calls would — same values, same draw count,
// same Box–Muller cache state afterwards. The generator fast path leans on
// this contract for byte-identical traces.

TEST(Rng, FillUniformMatchesScalarSequence) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{1000}}) {
    Rng scalar(101);
    Rng batched(101);
    std::vector<double> want(n);
    for (double& v : want) v = scalar.Uniform();
    std::vector<double> got(n);
    batched.FillUniform(got);
    EXPECT_EQ(want, got) << "n=" << n;
    // Engines advanced identically.
    EXPECT_EQ(scalar.NextU64(), batched.NextU64());
  }
}

TEST(Rng, FillNormalMatchesScalarSequence) {
  // Odd and even n exercise both Box–Muller parities: even n with an empty
  // cache ends with a cached sin; odd n consumes it exactly.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{8},
                              std::size_t{1001}}) {
    Rng scalar(202);
    Rng batched(202);
    std::vector<double> want(n);
    for (double& v : want) v = scalar.Normal();
    std::vector<double> got(n);
    batched.FillNormal(got);
    EXPECT_EQ(want, got) << "n=" << n;
    // Trailing cache state identical: the next scalar draw must agree
    // whether it comes from the cache or a fresh pair.
    EXPECT_EQ(scalar.Normal(), batched.Normal()) << "n=" << n;
    EXPECT_EQ(scalar.NextU64(), batched.NextU64()) << "n=" << n;
  }
}

TEST(Rng, FillNormalConsumesPreexistingCache) {
  // A scalar Normal() before the fill leaves a cached sin; the fill must
  // emit it first, exactly like the scalar sequence would.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{9}}) {
    Rng scalar(303);
    Rng batched(303);
    EXPECT_EQ(scalar.Normal(), batched.Normal());  // seed both caches
    std::vector<double> want(n);
    for (double& v : want) v = scalar.Normal();
    std::vector<double> got(n);
    batched.FillNormal(got);
    EXPECT_EQ(want, got) << "n=" << n;
    EXPECT_EQ(scalar.Normal(), batched.Normal()) << "n=" << n;
  }
}

TEST(Rng, FillLogNormalMatchesScalarSequence) {
  const double mu = std::log(2.0);
  const double sigma = 0.7;
  for (const std::size_t n : {std::size_t{1}, std::size_t{6},
                              std::size_t{999}}) {
    Rng scalar(404);
    Rng batched(404);
    std::vector<double> want(n);
    for (double& v : want) v = scalar.LogNormal(mu, sigma);
    std::vector<double> got(n);
    batched.FillLogNormal(mu, sigma, got);
    EXPECT_EQ(want, got) << "n=" << n;
    EXPECT_EQ(scalar.NextU64(), batched.NextU64()) << "n=" << n;
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// Property sweep: the unit-interval guarantee holds across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndNonConstant) {
  Rng rng(GetParam());
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    min = std::min(min, u);
    max = std::max(max, u);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  EXPECT_LT(min, 0.2);
  EXPECT_GT(max, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 12345ULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace mcloud
