// Tests for the TCP substrate: RTO estimation, congestion control with
// slow-start-after-idle, and the chunked flow simulator — the mechanisms
// behind the paper's §4 findings. (EventQueue tests live in test_sim.cc.)
#include <gtest/gtest.h>

#include "tcp/congestion.h"
#include "tcp/flow.h"
#include "tcp/rtt_estimator.h"
#include "util/rng.h"

namespace mcloud::tcp {
namespace {

TEST(RttEstimator, InitialRtoIsOneSecond) {
  RttEstimator est;
  EXPECT_FALSE(est.HasSample());
  EXPECT_DOUBLE_EQ(est.Rto(), 1.0);
}

TEST(RttEstimator, FirstSampleRfc6298) {
  RttEstimator est;
  est.Update(0.1);
  EXPECT_DOUBLE_EQ(est.Srtt(), 0.1);
  EXPECT_DOUBLE_EQ(est.RttVar(), 0.05);
  // RTO = SRTT + max(0.2, 4*RTTVAR) = 0.1 + 0.2 = 0.3.
  EXPECT_DOUBLE_EQ(est.Rto(), 0.3);
}

TEST(RttEstimator, LargeVarianceDominatesFloor) {
  RttEstimator est;
  est.Update(1.0);
  // RTTVAR = 0.5, 4*RTTVAR = 2.0 > 0.2 -> RTO = 1.0 + 2.0.
  EXPECT_DOUBLE_EQ(est.Rto(), 3.0);
}

TEST(RttEstimator, ConvergesOnConstantSamples) {
  RttEstimator est;
  for (int i = 0; i < 200; ++i) est.Update(0.1);
  EXPECT_NEAR(est.Srtt(), 0.1, 1e-6);
  EXPECT_NEAR(est.RttVar(), 0.0, 1e-3);
  EXPECT_NEAR(est.Rto(), 0.3, 1e-3);  // min-var floor holds it at SRTT+0.2
}

TEST(RttEstimator, EwmaWeights) {
  RttEstimator est;
  est.Update(0.1);
  est.Update(0.2);
  // SRTT = 7/8*0.1 + 1/8*0.2 = 0.1125.
  EXPECT_NEAR(est.Srtt(), 0.1125, 1e-9);
  // RTTVAR = 3/4*0.05 + 1/4*|0.1-0.2| = 0.0625.
  EXPECT_NEAR(est.RttVar(), 0.0625, 1e-9);
}

TEST(RttEstimator, RejectsNonPositive) {
  RttEstimator est;
  EXPECT_THROW(est.Update(0.0), Error);
  EXPECT_THROW(est.Update(-0.1), Error);
}

TEST(Congestion, InitialWindowIw10) {
  CongestionController cc(CongestionConfig{});
  EXPECT_EQ(cc.Cwnd(), 10u * 1448u);
  EXPECT_TRUE(cc.InSlowStart());
}

TEST(Congestion, SlowStartDoublesPerWindow) {
  CongestionController cc(CongestionConfig{});
  const Bytes before = cc.Cwnd();
  cc.OnAck(before);  // a full window acknowledged
  EXPECT_GE(cc.Cwnd(), 2 * before - cc.Mss());
}

TEST(Congestion, CongestionAvoidanceLinearGrowth) {
  CongestionConfig cfg;
  CongestionController cc(cfg);
  cc.OnTimeout(cc.Cwnd());  // forces ssthresh down, cwnd = 1 MSS
  const Bytes ssthresh = cc.Ssthresh();
  // Grow back past ssthresh into congestion avoidance.
  while (cc.InSlowStart()) cc.OnAck(cc.Cwnd());
  const Bytes at_ca = cc.Cwnd();
  EXPECT_GE(at_ca, ssthresh);
  // One full window ACKed in CA adds about one MSS.
  cc.OnAck(cc.Cwnd());
  EXPECT_NEAR(static_cast<double>(cc.Cwnd() - at_ca),
              static_cast<double>(cfg.mss), static_cast<double>(cfg.mss));
}

TEST(Congestion, TimeoutCollapsesToOneMss) {
  CongestionController cc(CongestionConfig{});
  cc.OnAck(100 * 1448);
  cc.OnTimeout(cc.Cwnd());
  EXPECT_EQ(cc.Cwnd(), cc.Mss());
  EXPECT_EQ(cc.SlowStartRestarts(), 1u);
}

TEST(Congestion, LossHalvesWindow) {
  CongestionController cc(CongestionConfig{});
  for (int i = 0; i < 20; ++i) cc.OnAck(cc.Cwnd());
  const Bytes flight = cc.Cwnd();
  cc.OnLoss(flight);
  EXPECT_EQ(cc.Cwnd(), std::max<Bytes>(flight / 2, 2 * cc.Mss()));
}

TEST(Congestion, IdleBelowRtoDoesNothing) {
  CongestionController cc(CongestionConfig{});
  cc.OnAck(50 * 1448);
  const Bytes before = cc.Cwnd();
  EXPECT_FALSE(cc.OnIdle(0.2, 0.3));
  EXPECT_EQ(cc.Cwnd(), before);
  EXPECT_EQ(cc.SlowStartRestarts(), 0u);
}

TEST(Congestion, IdleAboveRtoRestartsSlowStart) {
  CongestionController cc(CongestionConfig{});
  // Grow well past the initial window.
  for (int i = 0; i < 10; ++i) cc.OnAck(cc.Cwnd());
  const Bytes grown = cc.Cwnd();
  ASSERT_GT(grown, cc.InitialWindow());

  EXPECT_TRUE(cc.OnIdle(0.5, 0.3));
  EXPECT_EQ(cc.Cwnd(), cc.InitialWindow());  // RW = min(IW, cwnd)
  EXPECT_TRUE(cc.InSlowStart());
  // ssthresh remembers the previous operating point.
  EXPECT_GE(cc.Ssthresh(), grown);
  EXPECT_EQ(cc.SlowStartRestarts(), 1u);
}

TEST(Congestion, SsaiDisabledNeverRestarts) {
  CongestionConfig cfg;
  cfg.slow_start_after_idle = false;
  CongestionController cc(cfg);
  cc.OnAck(50 * 1448);
  const Bytes before = cc.Cwnd();
  EXPECT_FALSE(cc.OnIdle(10.0, 0.3));
  EXPECT_EQ(cc.Cwnd(), before);
}

TEST(Flow, SplitIntoChunks) {
  const auto chunks = SplitIntoChunks(kChunkSize * 2 + 100, kChunkSize);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], kChunkSize);
  EXPECT_EQ(chunks[2], 100u);
  EXPECT_EQ(SplitIntoChunks(10, kChunkSize).size(), 1u);
  EXPECT_THROW((void)SplitIntoChunks(0, kChunkSize), Error);
}

FlowConfig BasicConfig() {
  FlowConfig cfg;
  cfg.mss = 1448;
  cfg.sender_window = 64 * kKiB;
  cfg.rtt = 0.1;
  cfg.bandwidth_bps = 16e6;
  return cfg;
}

DurationSampler Constant(Seconds v) {
  return [v](Rng&) { return v; };
}

TEST(Flow, TransfersAllChunks) {
  const FlowSimulator sim(BasicConfig());
  Rng rng(1);
  const std::vector<Bytes> chunks(4, kChunkSize);
  const auto result =
      sim.Run(chunks, Constant(0.1), Constant(0.05), StallModel{}, rng);
  ASSERT_EQ(result.chunks.size(), 4u);
  for (const auto& c : result.chunks) {
    EXPECT_EQ(c.bytes, kChunkSize);
    EXPECT_GT(c.transfer_time, 0.0);
  }
  EXPECT_GT(result.duration, 0.0);
}

TEST(Flow, SmallerWindowSlowerTransfer) {
  Rng rng_a(2);
  Rng rng_b(2);
  FlowConfig small = BasicConfig();
  small.sender_window = 16 * kKiB;
  FlowConfig large = BasicConfig();
  large.sender_window = 256 * kKiB;
  const std::vector<Bytes> chunks(4, kChunkSize);
  const auto slow = FlowSimulator(small).Run(chunks, Constant(0.05),
                                             Constant(0.01), {}, rng_a);
  const auto fast = FlowSimulator(large).Run(chunks, Constant(0.05),
                                             Constant(0.01), {}, rng_b);
  EXPECT_GT(slow.duration, fast.duration);
}

TEST(Flow, LongClientTimeTriggersRestartsAndSlowsChunks) {
  // The paper's causal chain: long T_clt -> idle > RTO -> slow-start
  // restart -> longer per-chunk transfer times.
  const std::vector<Bytes> chunks(6, kChunkSize);
  Rng rng_fast(3);
  Rng rng_slow(3);
  const FlowSimulator sim(BasicConfig());

  const auto fast = sim.Run(chunks, Constant(0.05), Constant(0.01), {},
                            rng_fast);
  const auto slow = sim.Run(chunks, Constant(0.05), Constant(1.0), {},
                            rng_slow);

  EXPECT_EQ(fast.restarts, 0u);
  EXPECT_GT(slow.restarts, 0u);
  // After the first chunk (which starts from IW either way), restarted
  // chunks transfer more slowly.
  double fast_later = 0;
  double slow_later = 0;
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    fast_later += fast.chunks[i].transfer_time;
    slow_later += slow.chunks[i].transfer_time;
    EXPECT_FALSE(fast.chunks[i].restarted);
    EXPECT_TRUE(slow.chunks[i].restarted);
  }
  EXPECT_GT(slow_later, fast_later);
}

TEST(Flow, SsaiOffRemovesPenalty) {
  std::vector<Bytes> chunks(6, kChunkSize);
  FlowConfig on = BasicConfig();
  FlowConfig off = BasicConfig();
  off.cc.slow_start_after_idle = false;
  Rng ra(4);
  Rng rb(4);
  const auto with_ssai =
      FlowSimulator(on).Run(chunks, Constant(0.05), Constant(1.0), {}, ra);
  const auto without =
      FlowSimulator(off).Run(chunks, Constant(0.05), Constant(1.0), {}, rb);
  EXPECT_GT(with_ssai.restarts, 0u);
  EXPECT_EQ(without.restarts, 0u);
  EXPECT_LT(without.chunks[3].transfer_time,
            with_ssai.chunks[3].transfer_time);
}

TEST(Flow, StallsCollapseInflight) {
  std::vector<Bytes> chunks(2, kChunkSize);
  FlowConfig cfg = BasicConfig();
  cfg.record_trace = true;
  StallModel stall;
  stall.block = 64 * kKiB;
  stall.sample = [](Rng&) { return 1.0; };  // always > RTO
  Rng rng(5);
  const auto result = FlowSimulator(cfg).Run(chunks, Constant(0.05),
                                             Constant(0.01), stall, rng);
  // Stall restarts accumulate beyond inter-chunk restarts.
  EXPECT_GT(result.restarts, 2u);
  EXPECT_FALSE(result.trace.empty());
  // Trace times are non-decreasing and sequence numbers monotone.
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].t, result.trace[i - 1].t);
    EXPECT_GE(result.trace[i].seq, result.trace[i - 1].seq);
  }
  EXPECT_EQ(result.trace.back().seq, 2 * kChunkSize);
}

TEST(Flow, IdleAccountingMatchesSamplers) {
  std::vector<Bytes> chunks(3, kChunkSize);
  const FlowSimulator sim(BasicConfig());
  Rng rng(6);
  const auto result =
      sim.Run(chunks, Constant(0.2), Constant(0.3), {}, rng);
  // idle = tsrv + rtt + tclt = 0.2 + 0.1 + 0.3.
  for (std::size_t i = 1; i < result.chunks.size(); ++i) {
    EXPECT_NEAR(result.chunks[i].idle_before, 0.6, 1e-9);
    EXPECT_GT(result.chunks[i].rto_at_idle, 0.0);
  }
  EXPECT_DOUBLE_EQ(result.chunks[0].idle_before, 0.0);
}

TEST(Flow, InputValidation) {
  const FlowSimulator sim(BasicConfig());
  Rng rng(7);
  EXPECT_THROW(
      (void)sim.Run({}, Constant(0.1), Constant(0.1), {}, rng), Error);
  FlowConfig bad = BasicConfig();
  bad.rtt = 0;
  EXPECT_THROW(FlowSimulator{bad}, Error);
  bad = BasicConfig();
  bad.bandwidth_bps = 0;
  EXPECT_THROW(FlowSimulator{bad}, Error);
}

// Property sweep: duration decreases (weakly) as the receiver window grows,
// across RTTs.
class FlowWindowSweep
    : public ::testing::TestWithParam<std::tuple<double, Bytes>> {};

TEST_P(FlowWindowSweep, MoreWindowNeverSlower) {
  const auto [rtt, window] = GetParam();
  FlowConfig small = BasicConfig();
  small.rtt = rtt;
  small.sender_window = window;
  FlowConfig bigger = small;
  bigger.sender_window = window * 2;

  const std::vector<Bytes> chunks(3, kChunkSize);
  Rng ra(8);
  Rng rb(8);
  const auto a = FlowSimulator(small).Run(chunks, Constant(0.05),
                                          Constant(0.01), {}, ra);
  const auto b = FlowSimulator(bigger).Run(chunks, Constant(0.05),
                                           Constant(0.01), {}, rb);
  EXPECT_GE(a.duration + 1e-9, b.duration);
}

INSTANTIATE_TEST_SUITE_P(
    Params, FlowWindowSweep,
    ::testing::Combine(::testing::Values(0.02, 0.1, 0.4),
                       ::testing::Values(Bytes{16 * kKiB}, Bytes{64 * kKiB},
                                         Bytes{256 * kKiB})));

TEST(Flow, PostIdleBurstLossForcesTimeouts) {
  // §4.3 caveat: SSAI off + long idles + lossy tail bursts ⇒ RTO penalties.
  std::vector<Bytes> chunks(8, kChunkSize);
  FlowConfig cfg = BasicConfig();
  cfg.cc.slow_start_after_idle = false;
  cfg.post_idle_burst_loss_prob = 1.0;  // always lose the post-idle burst
  Rng rng(21);
  const auto result = FlowSimulator(cfg).Run(chunks, Constant(0.2),
                                             Constant(1.0), {}, rng);
  EXPECT_GT(result.timeouts, 0u);

  // With short idles (< RTO) there is no post-idle burst and no loss.
  Rng rng2(21);
  const auto calm = FlowSimulator(cfg).Run(chunks, Constant(0.01),
                                           Constant(0.01), {}, rng2);
  EXPECT_EQ(calm.timeouts, 0u);
}

TEST(Flow, PacingAvoidsBurstLoss) {
  std::vector<Bytes> chunks(8, kChunkSize);
  FlowConfig lossy = BasicConfig();
  lossy.cc.slow_start_after_idle = false;
  lossy.post_idle_burst_loss_prob = 1.0;
  FlowConfig paced = lossy;
  paced.cc.pace_after_idle = true;

  Rng ra(22);
  Rng rb(22);
  const auto without = FlowSimulator(lossy).Run(chunks, Constant(0.2),
                                                Constant(1.0), {}, ra);
  const auto with_pacing = FlowSimulator(paced).Run(chunks, Constant(0.2),
                                                    Constant(1.0), {}, rb);
  EXPECT_GT(without.timeouts, 0u);
  EXPECT_EQ(with_pacing.timeouts, 0u);
  // Pacing pays one extra RTT per restart instead of a full RTO + slow
  // start — it must beat the lossy variant.
  EXPECT_LT(with_pacing.duration, without.duration);
}

TEST(Flow, PacingBeatsSlowStartRestartWhenLossless) {
  // The paper's ordering: pacing keeps the window, so it also beats SSAI's
  // restart ramp.
  std::vector<Bytes> chunks(8, kChunkSize);
  FlowConfig ssai = BasicConfig();
  FlowConfig paced = BasicConfig();
  paced.cc.slow_start_after_idle = false;
  paced.cc.pace_after_idle = true;
  Rng ra(23);
  Rng rb(23);
  const auto restart = FlowSimulator(ssai).Run(chunks, Constant(0.2),
                                               Constant(1.0), {}, ra);
  const auto pace = FlowSimulator(paced).Run(chunks, Constant(0.2),
                                             Constant(1.0), {}, rb);
  EXPECT_GT(restart.restarts, 0u);
  EXPECT_EQ(pace.restarts, 0u);
  EXPECT_LT(pace.duration, restart.duration);
}

TEST(Flow, RandomLossTriggersFastRetransmit) {
  std::vector<Bytes> chunks(4, kChunkSize);
  FlowConfig cfg = BasicConfig();
  cfg.random_loss_prob = 0.2;
  Rng ra(24);
  const auto lossy = FlowSimulator(cfg).Run(chunks, Constant(0.05),
                                            Constant(0.01), {}, ra);
  EXPECT_GT(lossy.fast_retransmits, 0u);
  EXPECT_EQ(lossy.timeouts, 0u);

  FlowConfig clean = BasicConfig();
  Rng rb(24);
  const auto lossless = FlowSimulator(clean).Run(chunks, Constant(0.05),
                                                 Constant(0.01), {}, rb);
  EXPECT_EQ(lossless.fast_retransmits, 0u);
  EXPECT_LT(lossless.duration, lossy.duration);
}

TEST(Flow, ChunkDeadlineAbortsTransfer) {
  // A starved flow hits the per-chunk deadline: the chunk is marked
  // aborted, the flow stops, and the remaining chunks are never attempted.
  FlowConfig cfg = BasicConfig();
  cfg.bandwidth_bps = 8e3;  // ~64 s per 64 KiB chunk
  cfg.chunk_deadline = 5.0;
  const FlowSimulator sim(cfg);
  Rng rng(7);
  const std::vector<Bytes> chunks(3, 64 * kKiB);
  const auto result =
      sim.Run(chunks, Constant(0.1), Constant(0.05), StallModel{}, rng);
  ASSERT_FALSE(result.chunks.empty());
  EXPECT_TRUE(result.aborted);
  EXPECT_TRUE(result.chunks.back().aborted);
  EXPECT_LT(result.chunks.size(), 3u);  // flow ended at the abort

  // Without a deadline the same flow completes.
  cfg.chunk_deadline = 0;
  Rng rng2(7);
  const auto ok = FlowSimulator(cfg).Run(chunks, Constant(0.1),
                                         Constant(0.05), StallModel{}, rng2);
  EXPECT_FALSE(ok.aborted);
  ASSERT_EQ(ok.chunks.size(), 3u);
}

}  // namespace
}  // namespace mcloud::tcp
