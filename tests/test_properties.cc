// Cross-module property tests: randomized round-trips and invariants that
// no single-module suite owns.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/file_size_model.h"
#include "analysis/sessionizer.h"
#include "cloud/storage_service.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "trace/anonymizer.h"
#include "trace/log_io.h"
#include "validate/gof.h"
#include "workload/generator.h"

namespace mcloud {
namespace {

LogRecord RandomRecord(Rng& rng) {
  LogRecord r;
  r.timestamp = kTraceStart + static_cast<UnixSeconds>(rng.UniformInt(
                    static_cast<std::uint64_t>(kWeek)));
  r.device_type = static_cast<DeviceType>(rng.UniformInt(3));
  r.device_id = rng.NextU64() >> 1;
  r.user_id = rng.NextU64() >> 1;
  r.request_type = static_cast<RequestType>(rng.UniformInt(2));
  r.direction = static_cast<Direction>(rng.UniformInt(2));
  r.data_volume = r.request_type == RequestType::kChunkRequest
                      ? rng.UniformInt(kChunkSize) + 1
                      : 0;
  r.processing_time = rng.Uniform(0.0, 100.0);
  r.server_time = rng.Uniform(0.0, 2.0);
  r.avg_rtt = rng.Uniform(0.001, 5.0);
  r.proxied = rng.Bernoulli(0.1);
  return r;
}

class RoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripSweep, CsvAndBinaryPreserveRandomRecords) {
  Rng rng(GetParam());
  std::vector<LogRecord> records;
  for (int i = 0; i < 500; ++i) records.push_back(RandomRecord(rng));

  const auto dir = std::filesystem::temp_directory_path();
  const auto csv = dir / ("prop_" + std::to_string(GetParam()) + ".csv");
  const auto bin = dir / ("prop_" + std::to_string(GetParam()) + ".bin");
  WriteCsvTrace(csv, records);
  WriteBinaryTrace(bin, records);
  const auto from_csv = ReadCsvTrace(csv);
  const auto from_bin = ReadBinaryTrace(bin);
  std::filesystem::remove(csv);
  std::filesystem::remove(bin);

  ASSERT_EQ(from_csv.size(), records.size());
  ASSERT_EQ(from_bin.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    // Integral fields must round-trip exactly through both formats.
    EXPECT_EQ(from_csv[i].timestamp, records[i].timestamp);
    EXPECT_EQ(from_csv[i].user_id, records[i].user_id);
    EXPECT_EQ(from_csv[i].device_id, records[i].device_id);
    EXPECT_EQ(from_csv[i].data_volume, records[i].data_volume);
    EXPECT_EQ(from_csv[i].proxied, records[i].proxied);
    // Times round to microseconds in both formats.
    EXPECT_NEAR(from_csv[i].processing_time, records[i].processing_time,
                1e-6);
    EXPECT_NEAR(from_bin[i].processing_time, records[i].processing_time,
                1e-6);
    EXPECT_EQ(from_bin[i].user_id, records[i].user_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 99ULL));

TEST(Properties, AnonymizationPreservesEveryAnalysisInput) {
  // Anonymizing a trace must not change any session-level statistic: the
  // sessionizer only cares about identity *equality*, which the keyed MD5
  // mapping preserves.
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 400;
  cfg.population.pc_only_users = 100;
  const auto w = workload::WorkloadGenerator(cfg).Generate();
  auto anonymized = Anonymizer("prop-key").Apply(w.trace);
  std::sort(anonymized.begin(), anonymized.end(), LogRecordTimeOrder);

  const auto before = analysis::Sessionizer().Sessionize(w.trace);
  const auto after = analysis::Sessionizer().Sessionize(anonymized);
  ASSERT_EQ(before.size(), after.size());

  // Compare the multiset of per-session operation counts. (Chunk/volume
  // attribution can legitimately differ: ID remapping permutes the
  // tie-break order of same-second records, and a chunk logged in the same
  // second as a session-opening operation may move across the boundary.)
  const auto summarize = [](const std::vector<analysis::Session>& sessions) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    out.reserve(sessions.size());
    for (const auto& s : sessions)
      out.emplace_back(s.store_ops, s.retrieve_ops);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(summarize(before), summarize(after));
  // Total transferred volume is conserved regardless of attribution.
  Bytes vol_before = 0;
  Bytes vol_after = 0;
  for (const auto& s : before) vol_before += s.Volume();
  for (const auto& s : after) vol_after += s.Volume();
  EXPECT_EQ(vol_before, vol_after);
}

TEST(Properties, SessionizerPartitionsEveryRecord) {
  // Each trace record lands in exactly one session: op and chunk counts
  // summed over sessions equal the trace's counts.
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 300;
  cfg.population.pc_only_users = 0;
  const auto w = workload::WorkloadGenerator(cfg).Generate();
  const auto sessions = analysis::Sessionizer().Sessionize(w.trace);

  std::size_t ops = 0;
  std::size_t chunks = 0;
  Bytes volume = 0;
  for (const auto& s : sessions) {
    ops += s.FileOps();
    chunks += s.chunk_requests;
    volume += s.Volume();
  }
  std::size_t trace_ops = 0;
  std::size_t trace_chunks = 0;
  Bytes trace_volume = 0;
  for (const auto& r : w.trace) {
    if (r.request_type == RequestType::kFileOperation) {
      ++trace_ops;
    } else {
      ++trace_chunks;
      trace_volume += r.data_volume;
    }
  }
  EXPECT_EQ(ops, trace_ops);
  EXPECT_EQ(chunks, trace_chunks);
  EXPECT_EQ(volume, trace_volume);
}

TEST(Properties, UploadOnlyUsersNeverRetrieveAnywhere) {
  // The Table 3 invariant behind Fig 9: upload-only-intent users must have
  // zero retrieval records on every device, including their PCs.
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 1200;
  cfg.population.pc_only_users = 300;
  const auto w = workload::WorkloadGenerator(cfg).Generate();

  std::unordered_map<std::uint64_t, const workload::UserProfile*> profiles;
  for (const auto& u : w.users) profiles[u.user_id] = &u;
  for (const auto& r : w.trace) {
    const auto* p = profiles.at(r.user_id);
    if (p->usage_class == paper::UserClass::kUploadOnly) {
      EXPECT_EQ(r.direction, Direction::kStore)
          << "upload-only user " << r.user_id << " retrieved";
    }
    if (p->usage_class == paper::UserClass::kDownloadOnly) {
      EXPECT_EQ(r.direction, Direction::kRetrieve)
          << "download-only user " << r.user_id << " stored";
    }
  }
}

TEST(Properties, OwnUploadRetrievalMatchesStoredContent) {
  // A user who stores a file and later retrieves only their own content
  // pulls exactly the bytes they stored (content identity, not resampling).
  cloud::ServiceConfig cfg;
  cfg.shared_content_prob = 0.0;
  cloud::StorageService service(cfg);

  std::vector<workload::SessionPlan> plans;
  workload::SessionPlan store;
  store.user_id = 1;
  store.device_id = 1;
  store.device_type = DeviceType::kAndroid;
  store.start = kTraceStart;
  workload::FileOp up;
  up.direction = Direction::kStore;
  up.size = 3 * kMiB;
  store.ops.push_back(up);
  plans.push_back(store);

  workload::SessionPlan retrieve = store;
  retrieve.start = kTraceStart + 7200;
  retrieve.ops[0].direction = Direction::kRetrieve;
  plans.push_back(retrieve);

  const auto result = service.Execute(plans);
  Bytes stored = 0;
  Bytes retrieved = 0;
  for (const auto& r : result.logs) {
    if (r.request_type != RequestType::kChunkRequest) continue;
    (r.direction == Direction::kStore ? stored : retrieved) += r.data_volume;
  }
  EXPECT_EQ(stored, 3 * kMiB);
  EXPECT_EQ(retrieved, stored);
  ASSERT_EQ(result.retrievals.size(), 1u);
  EXPECT_FALSE(result.retrievals[0].shared);
}

TEST(Properties, SmallSampleFileSizeFitSkipsChiSquare) {
  Rng rng(5);
  std::vector<double> sizes;
  for (int i = 0; i < 120; ++i) sizes.push_back(rng.ExponentialMean(1.5));
  const auto model = analysis::FitFileSizeModel(sizes);
  EXPECT_FALSE(model.chi_square_valid);
  EXPECT_GE(model.selection.selected_n, 1u);
  EXPECT_FALSE(model.grid_mb.empty());
}

TEST(Properties, KsDistanceMetricInvariants) {
  // The two-sample KS distance behind the validation layer's Table 2 gates
  // is a metric on empirical distributions: symmetric, bounded in [0, 1],
  // and exactly zero on identical samples — on every random sample shape.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const std::size_t na = 1 + rng.UniformInt(200);
    const std::size_t nb = 1 + rng.UniformInt(200);
    std::vector<double> a(na);
    std::vector<double> b(nb);
    // Mix of scales (heavy-tailed like the file sizes) and occasional ties.
    for (auto& x : a)
      x = rng.Bernoulli(0.2) ? std::floor(rng.Uniform(0.0, 5.0))
                             : rng.ExponentialMean(3.0);
    for (auto& x : b)
      x = rng.Bernoulli(0.2) ? std::floor(rng.Uniform(0.0, 5.0))
                             : rng.ExponentialMean(1.0 + rng.Uniform());

    const auto ab = validate::KsTwoSample(a, b);
    const auto ba = validate::KsTwoSample(b, a);
    EXPECT_DOUBLE_EQ(ab.statistic, ba.statistic) << "seed " << seed;
    EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12) << "seed " << seed;
    EXPECT_GE(ab.statistic, 0.0) << "seed " << seed;
    EXPECT_LE(ab.statistic, 1.0) << "seed " << seed;
    EXPECT_GE(ab.p_value, 0.0) << "seed " << seed;
    EXPECT_LE(ab.p_value, 1.0) << "seed " << seed;

    const auto aa = validate::KsTwoSample(a, a);
    EXPECT_DOUBLE_EQ(aa.statistic, 0.0) << "seed " << seed;
  }
}

TEST(Properties, DeterminismAcrossWholeStack) {
  // Same seed ⇒ byte-identical findings text: the whole stack (generator,
  // sessionizer, EM, SE fit) is deterministic.
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 500;
  cfg.population.pc_only_users = 100;
  cfg.seed = 77;
  const auto a = core::AnalysisPipeline().Run(
      workload::WorkloadGenerator(cfg).Generate().trace);
  const auto b = core::AnalysisPipeline().Run(
      workload::WorkloadGenerator(cfg).Generate().trace);
  EXPECT_EQ(core::RenderFindings(a), core::RenderFindings(b));
}

}  // namespace
}  // namespace mcloud
