// Tests for the live service mode (src/net): the HTTP parser under
// adversarial framing, the chunked response round-trip, port-0 binding,
// the chunk protocol against a real loopback server, and the in-process
// replay integration (generated trace → live server → matching log).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "net/epoll_server.h"
#include "net/http.h"
#include "net/live_protocol.h"
#include "net/live_service.h"
#include "net/replay.h"
#include "util/md5.h"
#include "workload/generator.h"

namespace mcloud::net {
namespace {

// --- HttpParser -----------------------------------------------------------

TEST(HttpParser, ParsesSimpleRequest) {
  HttpParser p;
  p.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  HttpRequest req;
  ASSERT_EQ(p.Poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.version, "HTTP/1.1");
  ASSERT_NE(req.Header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*req.Header("HOST"), "x");
  EXPECT_TRUE(req.KeepAlive());
  EXPECT_EQ(p.Poll(req), HttpParser::Result::kNeedMore);
}

TEST(HttpParser, HandlesArbitrarySplitReads) {
  const std::string wire =
      "PUT /chunk HTTP/1.1\r\nContent-Length: 5\r\nX-Mc-User: 7\r\n\r\nhello"
      "GET /stats HTTP/1.1\r\n\r\n";
  // Feed byte-by-byte and in every two-way split: same two requests out.
  for (std::size_t split = 1; split < wire.size(); ++split) {
    HttpParser p;
    p.Feed(std::string_view(wire).substr(0, split));
    HttpRequest req;
    std::vector<HttpRequest> got;
    while (p.Poll(req) == HttpParser::Result::kRequest) got.push_back(req);
    p.Feed(std::string_view(wire).substr(split));
    while (p.Poll(req) == HttpParser::Result::kRequest) got.push_back(req);
    ASSERT_EQ(got.size(), 2u) << "split at " << split;
    EXPECT_EQ(got[0].method, "PUT");
    EXPECT_EQ(got[0].body, "hello");
    EXPECT_EQ(got[0].HeaderU64("X-Mc-User", 0), 7u);
    EXPECT_EQ(got[1].target, "/stats");
  }
}

TEST(HttpParser, PipelinedRequestsPopInOrder) {
  HttpParser p;
  p.Feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n"
      "POST /c HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy");
  HttpRequest req;
  ASSERT_EQ(p.Poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.target, "/a");
  ASSERT_EQ(p.Poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.target, "/b");
  ASSERT_EQ(p.Poll(req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.target, "/c");
  EXPECT_EQ(req.body, "xy");
  EXPECT_EQ(p.Poll(req), HttpParser::Result::kNeedMore);
  EXPECT_FALSE(p.HasBufferedData());
}

TEST(HttpParser, MalformedRequestLineIs400) {
  for (const char* bad : {
           "GARBAGE\r\n\r\n",
           "GET /x HTTP/2.0\r\n\r\n",          // unsupported version
           "GET  HTTP/1.1\r\n\r\n",            // missing target
           "GET /x HTTP/1.1 extra\r\n\r\n",    // 4 tokens
           "GET /x HTTP/1.1\r\nbad line\r\n\r\n",  // header w/o colon
       }) {
    HttpParser p;
    p.Feed(bad);
    HttpRequest req;
    EXPECT_EQ(p.Poll(req), HttpParser::Result::kError) << bad;
    EXPECT_EQ(p.error_status(), 400) << bad;
  }
}

TEST(HttpParser, OversizedHeadersAndBodyAreRejected) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 64;
  {
    HttpParser p(limits);
    p.Feed("GET / HTTP/1.1\r\nX-Big: " + std::string(200, 'a') + "\r\n\r\n");
    HttpRequest req;
    ASSERT_EQ(p.Poll(req), HttpParser::Result::kError);
    EXPECT_EQ(p.error_status(), 431);
  }
  {
    HttpParser p(limits);
    p.Feed("PUT /chunk HTTP/1.1\r\nContent-Length: 100\r\n\r\n");
    HttpRequest req;
    ASSERT_EQ(p.Poll(req), HttpParser::Result::kError);
    EXPECT_EQ(p.error_status(), 413);
  }
}

// --- chunked framing round-trip -------------------------------------------

TEST(HttpChunked, ResponseRoundTripsThroughClientParser) {
  HttpResponse r;
  r.chunked = true;
  r.chunk_size = 7;  // force many chunks
  for (int i = 0; i < 100; ++i) r.body += "payload-" + std::to_string(i);
  const std::string wire = SerializeResponse(r);

  // Feed in uneven pieces to exercise the chunked decoder's resume paths.
  HttpResponseParser p;
  HttpResponseMsg msg;
  std::size_t off = 0, step = 1;
  auto result = HttpResponseParser::Result::kNeedMore;
  while (off < wire.size()) {
    const std::size_t n = std::min(step, wire.size() - off);
    p.Feed(std::string_view(wire).substr(off, n));
    off += n;
    step = step * 2 + 1;
    result = p.Poll(msg);
    if (result == HttpResponseParser::Result::kResponse) break;
    ASSERT_NE(result, HttpResponseParser::Result::kError) << p.error();
  }
  ASSERT_EQ(result, HttpResponseParser::Result::kResponse);
  EXPECT_EQ(msg.status, 200);
  EXPECT_EQ(msg.body, r.body);
  ASSERT_NE(msg.Header("Transfer-Encoding"), nullptr);
}

// --- live protocol helpers ------------------------------------------------

TEST(LiveProtocol, ChunkBodiesAreDeterministic) {
  std::string a, b, c;
  FillChunkBody(42, 3, 1000, a);
  FillChunkBody(42, 3, 1000, b);
  FillChunkBody(42, 4, 1000, c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 1000u);

  Md5Digest md5 = Md5::Hash(a);
  EXPECT_EQ(md5.ToHex().size(), 32u);
  Md5Digest parsed;
  ASSERT_TRUE(ParseHexMd5(md5.ToHex(), parsed));
  EXPECT_EQ(parsed, md5);
  EXPECT_FALSE(ParseHexMd5("not-a-hash", parsed));
  EXPECT_FALSE(ParseHexMd5(std::string(32, 'g'), parsed));
}

// --- loopback server integration ------------------------------------------

class LiveServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LiveServiceConfig config;
    config.front_ends = 2;
    service_ = std::make_unique<LiveService>(config);
    ServerConfig server_config;
    server_config.port = 0;  // ephemeral by construction: no port races
    server_ = std::make_unique<EpollServer>(
        server_config, [this](const HttpRequest& req,
                              const RequestContext& ctx) {
          return service_->Handle(req, ctx);
        });
    port_ = server_->Start();
    ASSERT_NE(port_, 0);
    thread_ = std::thread([this] { server_->Run(); });
  }

  void TearDown() override {
    server_->RequestStop();
    thread_.join();
  }

  std::unique_ptr<LiveService> service_;
  std::unique_ptr<EpollServer> server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST_F(LiveServerTest, BindsEphemeralPortAndDrainsCleanly) {
  // Two servers at once: port 0 means they can never collide.
  ServerConfig config;
  EpollServer other(config, [](const HttpRequest&, const RequestContext&) {
    return HttpResponse{};
  });
  const std::uint16_t other_port = other.Start();
  EXPECT_NE(other_port, 0);
  EXPECT_NE(other_port, port_);
  other.RequestStop();
  other.Run();  // returns immediately after the drain
}

TEST_F(LiveServerTest, ChunkPutThenGetRoundTripsBytes) {
  // Drive the wire protocol through the replay client machinery: one
  // store fileop, two chunk puts, two gets of the same chunks.
  std::vector<LogRecord> trace;
  LogRecord r;
  r.timestamp = 1000;
  r.user_id = 11;
  r.device_id = 21;
  r.request_type = RequestType::kFileOperation;
  r.direction = Direction::kStore;
  trace.push_back(r);
  r.request_type = RequestType::kChunkRequest;
  r.data_volume = 64 * 1024;
  trace.push_back(r);
  r.timestamp = 1001;
  trace.push_back(r);
  r.timestamp = 1002;
  r.direction = Direction::kRetrieve;
  trace.push_back(r);
  r.timestamp = 1003;
  trace.push_back(r);

  ReplayPlanOptions plan_options;
  plan_options.target_qps = 200;  // finish fast
  const ReplayPlan plan = BuildReplayPlan(trace, plan_options);
  ASSERT_EQ(plan.items.size(), trace.size());
  EXPECT_EQ(plan.chunk_puts, 2u);
  EXPECT_EQ(plan.chunk_gets, 2u);

  ReplayOptions replay_options;
  replay_options.port = port_;
  replay_options.connections = 1;
  const ReplayReport report = ExecuteReplay(plan, replay_options);
  EXPECT_EQ(report.sent, trace.size());
  EXPECT_EQ(report.ok, trace.size());
  EXPECT_EQ(report.transport_errors, 0u);
  EXPECT_EQ(report.http_errors, 0u);
  // Byte-for-byte verification: both GETs must hit the chunk index and
  // return exactly the stored bytes.
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(report.index_serves, 2u);
  EXPECT_EQ(report.replica_serves, 0u);
  EXPECT_GT(report.bytes_received, 2u * 64 * 1024);
}

TEST_F(LiveServerTest, ReplayOfGeneratedTraceMatchesLogPerSession) {
  workload::WorkloadConfig wc;
  wc.seed = 11;
  wc.population.mobile_users = 12;
  wc.population.pc_only_users = 0;
  wc.population.days = 7;
  wc.threads = 1;
  std::vector<LogRecord> trace =
      workload::WorkloadGenerator(wc).Generate().trace;
  ASSERT_FALSE(trace.empty());
  // Keep the in-process test fast: ~100 sessions' worth of records.
  if (trace.size() > 2000) trace.resize(2000);
  std::stable_sort(trace.begin(), trace.end(), LogRecordTimeOrder);

  ReplayPlanOptions plan_options;
  plan_options.max_chunk_bytes = 16 * kKiB;
  plan_options.target_qps = 1000;
  const ReplayPlan plan = BuildReplayPlan(trace, plan_options);
  ASSERT_EQ(plan.items.size(), trace.size());

  ReplayOptions replay_options;
  replay_options.port = port_;
  replay_options.connections = 3;
  const ReplayReport report = ExecuteReplay(plan, replay_options);
  EXPECT_EQ(report.sent, trace.size());
  EXPECT_EQ(report.transport_errors, 0u);
  EXPECT_EQ(report.http_errors, 0u);
  EXPECT_EQ(report.verify_failures, 0u);

  server_->RequestStop();
  thread_.join();
  thread_ = std::thread([] {});  // TearDown joins again

  // The live log has exactly one record per trace record, per session.
  std::vector<LogRecord> live = service_->TakeLog();
  const auto mismatch = LiveLogMatchesTrace(trace, live);
  EXPECT_FALSE(mismatch.has_value()) << mismatch.value_or("");
  // And the records carry real measured timings.
  std::size_t with_time = 0;
  for (const LogRecord& rec : live) {
    if (rec.request_type == RequestType::kChunkRequest &&
        rec.processing_time > 0) {
      ++with_time;
    }
  }
  EXPECT_GT(with_time, 0u);
}

TEST_F(LiveServerTest, PerRequestConnectionsAlsoWork) {
  std::vector<LogRecord> trace;
  LogRecord r;
  r.timestamp = 5000;
  r.user_id = 3;
  r.device_id = 4;
  r.request_type = RequestType::kFileOperation;
  r.direction = Direction::kStore;
  for (int i = 0; i < 10; ++i) {
    r.timestamp = 5000 + i;
    trace.push_back(r);
  }

  ReplayPlanOptions plan_options;
  plan_options.target_qps = 500;
  ReplayOptions replay_options;
  replay_options.port = port_;
  replay_options.connections = 2;
  replay_options.persistent = false;  // fresh connection per request
  const ReplayReport report =
      ExecuteReplay(BuildReplayPlan(trace, plan_options), replay_options);
  EXPECT_EQ(report.ok, trace.size());
  EXPECT_EQ(report.transport_errors, 0u);
}

TEST_F(LiveServerTest, ServerAnswersMalformedRequestWith400) {
  // Raw socket poke: malformed request line must yield a 400 and a close.
  std::vector<LogRecord> trace(1);
  trace[0].request_type = RequestType::kFileOperation;
  // Use the replay client for a well-formed baseline first.
  ReplayOptions replay_options;
  replay_options.port = port_;
  replay_options.connections = 1;
  const ReplayReport ok_report =
      ExecuteReplay(BuildReplayPlan(trace, {}), replay_options);
  EXPECT_EQ(ok_report.ok, 1u);
  EXPECT_EQ(service_->counters().fileops, 1u);
}

}  // namespace
}  // namespace mcloud::net
