// Tests for the core layer: the end-to-end pipeline, the deferral
// simulator, and the §4.3 what-if harness.
#include <gtest/gtest.h>

#include "core/deferral.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/whatif.h"
#include "workload/generator.h"

namespace mcloud::core {
namespace {

workload::Workload SmallWorkload(std::uint64_t seed = 42) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 800;
  cfg.population.pc_only_users = 200;
  cfg.seed = seed;
  return workload::WorkloadGenerator(cfg).Generate();
}

TEST(Pipeline, ProducesCompleteReport) {
  const auto w = SmallWorkload();
  const AnalysisPipeline pipeline;
  const FullReport report = pipeline.Run(w.trace);

  EXPECT_EQ(report.records, w.trace.size());
  EXPECT_GT(report.mobile_users, 700u);
  EXPECT_GT(report.mobile_devices, report.mobile_users);
  EXPECT_GT(report.android_access_share, 0.5);

  EXPECT_GT(report.session_split.total, 0u);
  EXPECT_GT(report.session_split.StoreShare(),
            report.session_split.RetrieveShare());

  EXPECT_EQ(report.burstiness.size(), 3u);
  EXPECT_GE(report.store_size_model.selection.selected_n, 2u);
  EXPECT_EQ(report.engagement.size(), 4u);
  EXPECT_EQ(report.retrieval_returns.size(), 4u);
  EXPECT_GT(report.store_activity.active_users, 0u);
  EXPECT_GT(report.store_activity.se.r_squared, 0.95);
}

TEST(Pipeline, RenderFindingsMentionsKeyResults) {
  const auto w = SmallWorkload(7);
  const FullReport report = AnalysisPipeline().Run(w.trace);
  const std::string text = RenderFindings(report);
  EXPECT_NE(text.find("store-only"), std::string::npos);
  EXPECT_NE(text.find("SE"), std::string::npos);
  EXPECT_NE(text.find("never returned"), std::string::npos);
}

TEST(Pipeline, RejectsEmptyTrace) {
  const AnalysisPipeline pipeline;
  EXPECT_THROW((void)pipeline.Run(std::span<const LogRecord>{}), Error);
  EXPECT_THROW((void)pipeline.RunAos(std::span<const LogRecord>{}), Error);
  EXPECT_THROW((void)pipeline.Run(TraceStore{}), Error);
}

TEST(Pipeline, DataDerivedTauWorks) {
  const auto w = SmallWorkload(11);
  PipelineOptions opts;
  opts.session_tau = 0;  // derive from the histogram valley
  const FullReport report = AnalysisPipeline(opts).Run(w.trace);
  EXPECT_GT(report.interval_model.valley_tau, 0.0);
  EXPECT_GT(report.session_split.total, 0u);
}

TEST(Deferral, FlattensPeakWithoutLosingVolume) {
  const auto w = SmallWorkload(13);
  DeferralPolicy policy;
  const auto result = SimulateDeferral(w.trace, policy, kTraceStart, 7, 1);

  EXPECT_GT(result.deferred_chunks, 0u);
  EXPECT_GT(result.deferred_share, 0.0);
  EXPECT_LT(result.peak_after_gb, result.peak_before_gb);
  EXPECT_GT(result.peak_reduction, 0.0);
  // Total stored volume is conserved — uploads move, they do not vanish.
  EXPECT_NEAR(result.before.TotalStoreGb(), result.after.TotalStoreGb(),
              1e-9);
  EXPECT_EQ(result.before.TotalStoredFiles(),
            result.after.TotalStoredFiles());
}

TEST(Deferral, RespectsRetrieversWhenAsked) {
  const auto w = SmallWorkload(17);
  DeferralPolicy protect;
  protect.only_non_retrievers = true;
  DeferralPolicy all;
  all.only_non_retrievers = false;
  const auto protected_result =
      SimulateDeferral(w.trace, protect, kTraceStart, 7, 1);
  const auto all_result = SimulateDeferral(w.trace, all, kTraceStart, 7, 1);
  EXPECT_GE(all_result.deferred_chunks, protected_result.deferred_chunks);
}

TEST(Deferral, OptInScalesEffect) {
  const auto w = SmallWorkload(19);
  DeferralPolicy half;
  half.opt_in = 0.5;
  DeferralPolicy full;
  full.opt_in = 1.0;
  const auto h = SimulateDeferral(w.trace, half, kTraceStart, 7, 1);
  const auto f = SimulateDeferral(w.trace, full, kTraceStart, 7, 1);
  EXPECT_LT(h.deferred_chunks, f.deferred_chunks);
}

TEST(Deferral, ValidatesPolicy) {
  const auto w = SmallWorkload(23);
  DeferralPolicy bad;
  bad.peak_begin_hour = 10;
  bad.peak_end_hour = 5;
  EXPECT_THROW((void)SimulateDeferral(w.trace, bad, kTraceStart), Error);
  bad = DeferralPolicy{};
  bad.opt_in = 1.5;
  EXPECT_THROW((void)SimulateDeferral(w.trace, bad, kTraceStart), Error);
}

TEST(WhatIf, StandardScenariosImproveOnBaseline) {
  WhatIfConfig cfg;
  cfg.device = DeviceType::kAndroid;
  cfg.file_size = 4 * kMiB;
  cfg.flows = 60;
  const auto scenarios = StandardScenarios();
  const auto outcomes = RunWhatIf(cfg, scenarios);
  ASSERT_EQ(outcomes.size(), scenarios.size());

  const auto& baseline = outcomes[0];
  EXPECT_GT(baseline.median_file_time, 0.0);
  EXPECT_GT(baseline.restart_share, 0.3);  // Android uploads restart a lot

  for (const auto& o : outcomes) {
    SCOPED_TRACE(o.name);
    EXPECT_GT(o.goodput_mbps, 0.0);
  }
  const auto find = [&](const char* needle) -> const core::WhatIfOutcome& {
    for (const auto& o : outcomes) {
      if (o.name.find(needle) != std::string::npos) return o;
    }
    throw Error(std::string("scenario not found: ") + needle);
  };
  // Larger chunks reduce the number of idle gaps and beat the baseline.
  EXPECT_LT(find("2MB chunks").median_file_time, baseline.median_file_time);
  // Disabling SSAI eliminates restarts entirely...
  const auto& ideal = find("ideal");
  EXPECT_DOUBLE_EQ(ideal.restart_share, 0.0);
  EXPECT_DOUBLE_EQ(ideal.timeouts_per_flow, 0.0);
  // ...but with realistic post-idle burst loss it pays timeouts, and the
  // paper's pacing recommendation avoids them while keeping cwnd.
  const auto& lossy = find("burst loss");
  const auto& paced = find("pacing");
  EXPECT_GT(lossy.timeouts_per_flow, 0.0);
  EXPECT_DOUBLE_EQ(paced.timeouts_per_flow, 0.0);
  EXPECT_LT(paced.median_file_time, lossy.median_file_time);
}

TEST(WhatIf, ChunkSizeSweepMonotoneGaps) {
  WhatIfConfig cfg;
  cfg.device = DeviceType::kIos;
  cfg.file_size = 8 * kMiB;
  cfg.flows = 40;
  const auto outcomes = RunWhatIf(cfg, ChunkSizeSweep());
  ASSERT_GE(outcomes.size(), 3u);
  // Bigger chunks -> fewer chunks per file -> weakly fewer restart chances;
  // goodput should not degrade as chunks grow.
  EXPECT_GT(outcomes.back().goodput_mbps, outcomes.front().goodput_mbps);
}

}  // namespace
}  // namespace mcloud::core
