// Concurrency utilities and the determinism contract of the parallel
// execution layer: the workload generator and the analysis pipeline must
// produce byte-identical output for every thread count (DESIGN.md,
// "Concurrency model").
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/pipeline.h"
#include "core/report.h"
#include "util/merge.h"
#include "util/parallel.h"
#include "workload/generator.h"

namespace mcloud {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr std::size_t kCount = 997;  // prime: not a multiple of the pool
  std::vector<std::atomic<int>> hits(kCount);
  pool.Run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  pool.Run(seen.size(),
           [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.Run(8,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool must survive a failed batch.
  std::atomic<int> count{0};
  pool.Run(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, ResolveThreadsDefaultsToHardware) {
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_EQ(ResolveThreads(3), 3);
  EXPECT_GE(ResolveThreads(-2), 1);
}

TEST(ParallelForShards, ShardsAreContiguousDisjointAndComplete) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 11;
  std::vector<int> covered(kN, 0);
  std::atomic<int> shards{0};
  ParallelForShards(pool, kN,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      EXPECT_LT(begin, end);
                      for (std::size_t i = begin; i < end; ++i) ++covered[i];
                      shards.fetch_add(1);
                    });
  EXPECT_EQ(shards.load(), ShardCount(pool, kN));
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(covered[i], 1);
  // Never more shards than elements.
  EXPECT_EQ(ShardCount(pool, 2), 2);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto squares = ParallelMap<std::uint64_t>(
      pool, 100, [](std::size_t i) { return static_cast<std::uint64_t>(i * i); });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

// --------------------------------------------------------- MergeSortedRuns

TEST(MergeSortedRuns, MatchesStableSortOfConcatenation) {
  // Keys collide on purpose: the merge must order ties by run index, which
  // is exactly what a stable sort of the concatenated runs produces when
  // each run is itself stably sorted.
  struct Item {
    int key;
    int origin;  // run index * 100 + position: identifies the element
  };
  std::vector<std::vector<Item>> runs(4);
  std::vector<Item> all;
  std::uint64_t x = 12345;
  const auto next = [&x] {  // small deterministic LCG
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((x >> 33) % 7);
  };
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 50; ++i)
      runs[r].push_back({next(), r * 100 + i});
    std::stable_sort(runs[r].begin(), runs[r].end(),
                     [](const Item& a, const Item& b) { return a.key < b.key; });
    all.insert(all.end(), runs[r].begin(), runs[r].end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Item& a, const Item& b) { return a.key < b.key; });

  const auto merged = MergeSortedRuns(
      std::move(runs), [](const Item& a, const Item& b) { return a.key < b.key; });
  ASSERT_EQ(merged.size(), all.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].key, all[i].key);
    EXPECT_EQ(merged[i].origin, all[i].origin) << "at " << i;
  }
}

TEST(MergeSortedRuns, HandlesEmptyAndSingleRuns) {
  std::vector<std::vector<int>> runs;
  EXPECT_TRUE(MergeSortedRuns(std::move(runs), std::less<int>{}).empty());

  std::vector<std::vector<int>> one;
  one.push_back({1, 2, 3});
  one.push_back({});
  const auto merged = MergeSortedRuns(std::move(one), std::less<int>{});
  EXPECT_EQ(merged, (std::vector<int>{1, 2, 3}));
}

// The sink-based core is what the out-of-core spill writer and the
// columnar builder feed from, so its edge cases get their own coverage
// (the vector overload short-circuits single runs and never exercises
// some of these paths).

TEST(MergeSortedRunsInto, ZeroRunsNeverCallsSink) {
  std::vector<std::vector<int>> runs;
  std::size_t calls = 0;
  MergeSortedRunsInto(std::move(runs), std::less<int>{},
                      [&calls](int&&) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(MergeSortedRunsInto, AllEmptyRunsNeverCallSink) {
  std::vector<std::vector<int>> runs(5);
  std::size_t calls = 0;
  MergeSortedRunsInto(std::move(runs), std::less<int>{},
                      [&calls](int&&) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(MergeSortedRunsInto, SingleRunStreamsInOrder) {
  std::vector<std::vector<int>> runs;
  runs.push_back({1, 1, 2, 3, 5, 8});
  std::vector<int> out;
  MergeSortedRunsInto(std::move(runs), std::less<int>{},
                      [&out](int&& v) { out.push_back(v); });
  EXPECT_EQ(out, (std::vector<int>{1, 1, 2, 3, 5, 8}));
}

TEST(MergeSortedRunsInto, DuplicateKeysKeepLowerRunFirst) {
  // Every element of every run has the same key: the merged order must be
  // run 0's elements in order, then run 1's, then run 2's — the exact
  // tie-break the out-of-core day merge relies on for determinism.
  struct Item {
    int key;
    int origin;
  };
  std::vector<std::vector<Item>> runs(3);
  for (int r = 0; r < 3; ++r)
    for (int i = 0; i < 4; ++i) runs[r].push_back({7, r * 10 + i});
  std::vector<int> origins;
  MergeSortedRunsInto(
      std::move(runs),
      [](const Item& a, const Item& b) { return a.key < b.key; },
      [&origins](Item&& v) { origins.push_back(v.origin); });
  EXPECT_EQ(origins, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13, 20, 21,
                                       22, 23}));
}

TEST(MergeSortedCursorsInto, MatchesRunMergeIncludingTies) {
  // The streaming generalization must produce the identical sequence for
  // the same runs, including cross-cursor ties and empty cursors.
  struct VecCursor {
    std::vector<int> data;
    std::size_t pos = 0;
    [[nodiscard]] bool empty() const { return pos == data.size(); }
    void pop() { ++pos; }
    [[nodiscard]] int head() const { return data[pos]; }
  };
  std::vector<std::vector<int>> runs = {
      {1, 3, 3, 9}, {}, {2, 3, 4}, {3, 3}};
  std::vector<VecCursor> cursors;
  for (const auto& r : runs) cursors.push_back({r, 0});

  std::vector<std::pair<int, std::size_t>> streamed;  // (value, cursor)
  MergeSortedCursorsInto(
      cursors,
      [](const VecCursor& a, const VecCursor& b) {
        return a.head() < b.head();
      },
      [&streamed, &cursors](const VecCursor& c) {
        streamed.emplace_back(c.head(),
                              static_cast<std::size_t>(&c - cursors.data()));
      });

  const std::vector<std::pair<int, std::size_t>> expected = {
      {1, 0}, {2, 2}, {3, 0}, {3, 0}, {3, 2}, {3, 3}, {3, 3}, {4, 2}, {9, 0}};
  EXPECT_EQ(streamed, expected);
}

// ------------------------------------------------------- Generator goldens

workload::Workload Generate(std::size_t mobile, std::size_t pc, int threads,
                            std::uint64_t seed = 7) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = mobile;
  cfg.population.pc_only_users = pc;
  cfg.seed = seed;
  cfg.threads = threads;
  return workload::WorkloadGenerator(cfg).Generate();
}

/// FNV-1a over the full record contents — the golden fingerprint of a trace.
std::uint64_t TraceHash(const std::vector<LogRecord>& trace) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const LogRecord& r : trace) {
    mix(static_cast<std::uint64_t>(r.timestamp));
    mix(static_cast<std::uint64_t>(r.device_type));
    mix(r.device_id);
    mix(r.user_id);
    mix(static_cast<std::uint64_t>(r.request_type));
    mix(static_cast<std::uint64_t>(r.direction));
    mix(r.data_volume);
    mix(static_cast<std::uint64_t>(r.processing_time * 1e6));
    mix(static_cast<std::uint64_t>(r.server_time * 1e6));
    mix(static_cast<std::uint64_t>(r.avg_rtt * 1e6));
    mix(static_cast<std::uint64_t>(r.proxied));
  }
  return h;
}

TEST(Determinism, TraceIsIdenticalAcrossThreadCounts) {
  const auto serial = Generate(600, 200, 1);
  const auto four = Generate(600, 200, 4);
  const auto hw = Generate(600, 200, 0);

  ASSERT_FALSE(serial.trace.empty());
  // Full byte-for-byte equality, plus the golden hash for a readable failure.
  EXPECT_EQ(TraceHash(four.trace), TraceHash(serial.trace));
  EXPECT_EQ(TraceHash(hw.trace), TraceHash(serial.trace));
  EXPECT_TRUE(four.trace == serial.trace);
  EXPECT_TRUE(hw.trace == serial.trace);
  EXPECT_EQ(four.users.size(), serial.users.size());
  EXPECT_EQ(four.sessions.size(), serial.sessions.size());
}

TEST(Determinism, RepeatedRunsAgree) {
  const auto a = Generate(300, 100, 4);
  const auto b = Generate(300, 100, 4);
  EXPECT_TRUE(a.trace == b.trace);
  EXPECT_EQ(TraceHash(a.trace), TraceHash(b.trace));
}

TEST(Determinism, DifferentSeedsDiffer) {
  const auto a = Generate(200, 60, 2, 7);
  const auto b = Generate(200, 60, 2, 8);
  EXPECT_NE(TraceHash(a.trace), TraceHash(b.trace));
}

TEST(Determinism, AddingAUserLeavesExistingUsersUnchanged) {
  // Per-user RNG streams are keyed by (root seed, user id), not by draw
  // order, so growing the population must not perturb anyone who was
  // already in it. New pc-only users append at the end of the id range.
  const auto base = Generate(400, 120, 2);
  const auto grown = Generate(400, 121, 2);

  ASSERT_EQ(base.users.size(), 520u);
  ASSERT_EQ(grown.users.size(), 521u);
  const std::uint64_t max_base_id = 520;

  // Profiles (including assigned device ids) are identical.
  for (std::size_t i = 0; i < base.users.size(); ++i) {
    const auto& u = base.users[i];
    const auto& v = grown.users[i];
    EXPECT_EQ(u.user_id, v.user_id);
    ASSERT_EQ(u.mobile_devices.size(), v.mobile_devices.size());
    for (std::size_t d = 0; d < u.mobile_devices.size(); ++d) {
      EXPECT_EQ(u.mobile_devices[d].device_id, v.mobile_devices[d].device_id);
      EXPECT_EQ(u.mobile_devices[d].type, v.mobile_devices[d].type);
    }
  }

  // The grown trace, filtered down to the original users, is the base trace.
  std::vector<LogRecord> grown_existing;
  for (const LogRecord& r : grown.trace) {
    if (r.user_id <= max_base_id) grown_existing.push_back(r);
  }
  EXPECT_TRUE(grown_existing == base.trace);
}

// ------------------------------------------------------ Pipeline threading

TEST(Determinism, PipelineReportIsIdenticalAcrossThreadCounts) {
  const auto w = Generate(500, 150, 2);

  core::PipelineOptions serial_opts;
  serial_opts.threads = 1;
  core::PipelineOptions parallel_opts;
  parallel_opts.threads = 4;

  const auto a = core::AnalysisPipeline(serial_opts).Run(w.trace);
  const auto b = core::AnalysisPipeline(parallel_opts).Run(w.trace);

  // The rendered findings format every report field; string equality is a
  // whole-report comparison. Spot-check raw doubles for exactness too.
  EXPECT_EQ(core::RenderFindings(a), core::RenderFindings(b));
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.mobile_users, b.mobile_users);
  EXPECT_EQ(a.interval_model.valley_tau, b.interval_model.valley_tau);
  EXPECT_EQ(a.session_split.StoreShare(), b.session_split.StoreShare());
  EXPECT_EQ(a.store_activity.se.c, b.store_activity.se.c);
}

}  // namespace
}  // namespace mcloud
