// Tests for the parametric distributions (util/distributions.h).
#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/summary.h"

namespace mcloud {
namespace {

TEST(GaussianMixture, ValidatesWeights) {
  EXPECT_THROW(GaussianMixture({{0.5, 0, 1}, {0.6, 1, 1}}), Error);
  EXPECT_THROW(GaussianMixture({{1.0, 0, 0}}), Error);
  EXPECT_THROW(
      GaussianMixture(std::vector<GaussianMixture::Component>{}), Error);
  EXPECT_NO_THROW(GaussianMixture({{0.25, 0, 1}, {0.75, 3, 2}}));
}

TEST(GaussianMixture, PdfIntegratesToOne) {
  const GaussianMixture m({{0.4, -1.0, 0.5}, {0.6, 2.0, 1.5}});
  double integral = 0;
  const double dx = 0.01;
  for (double x = -10; x < 12; x += dx) integral += m.Pdf(x) * dx;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(GaussianMixture, CdfMatchesPdfIntegral) {
  const GaussianMixture m({{0.5, 0.0, 1.0}, {0.5, 4.0, 2.0}});
  double integral = 0;
  const double dx = 0.005;
  for (double x = -8; x < 3.0; x += dx) integral += m.Pdf(x) * dx;
  EXPECT_NEAR(integral, m.Cdf(3.0), 1e-3);
}

TEST(GaussianMixture, MeanIsWeightedMean) {
  const GaussianMixture m({{0.3, 1.0, 1.0}, {0.7, 5.0, 2.0}});
  EXPECT_DOUBLE_EQ(m.Mean(), 0.3 * 1.0 + 0.7 * 5.0);
}

TEST(GaussianMixture, ResponsibilitiesSumToOne) {
  const GaussianMixture m({{0.5, 0.0, 1.0}, {0.5, 3.0, 1.0}});
  for (double x : {-2.0, 0.0, 1.5, 3.0, 6.0}) {
    EXPECT_NEAR(m.Responsibility(0, x) + m.Responsibility(1, x), 1.0, 1e-12);
  }
  // Near each component's mean, that component dominates.
  EXPECT_GT(m.Responsibility(0, 0.0), 0.9);
  EXPECT_GT(m.Responsibility(1, 3.0), 0.9);
}

TEST(GaussianMixture, SampleMoments) {
  const GaussianMixture m({{0.4, -2.0, 0.5}, {0.6, 3.0, 1.0}});
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(m.Sample(rng));
  EXPECT_NEAR(stats.Mean(), m.Mean(), 0.03);
}

TEST(GaussianMixture, SampleWithComponentLabels) {
  const GaussianMixture m({{0.5, -10.0, 0.1}, {0.5, 10.0, 0.1}});
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto [x, k] = m.SampleWithComponent(rng);
    if (k == 0) {
      EXPECT_LT(x, 0);
    } else {
      EXPECT_GT(x, 0);
    }
  }
}

TEST(MixtureExponential, ValidatesInput) {
  EXPECT_THROW(MixtureExponential({{1.0, -1.0}}), Error);
  EXPECT_THROW(MixtureExponential({{0.4, 1.0}, {0.4, 2.0}}), Error);
  EXPECT_NO_THROW(MixtureExponential({{0.9, 1.5}, {0.1, 13.0}}));
}

TEST(MixtureExponential, CdfCcdfComplementary) {
  const MixtureExponential m({{0.91, 1.5}, {0.07, 13.1}, {0.02, 77.4}});
  for (double x : {0.0, 0.5, 1.5, 10.0, 100.0}) {
    EXPECT_NEAR(m.Cdf(x) + m.Ccdf(x), 1.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(m.Cdf(-1.0), 0.0);
}

TEST(MixtureExponential, MeanMatchesSample) {
  const MixtureExponential m({{0.91, 1.5}, {0.07, 13.1}, {0.02, 77.4}});
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 300000; ++i) stats.Add(m.Sample(rng));
  EXPECT_NEAR(stats.Mean(), m.Mean(), 0.1);
  EXPECT_NEAR(m.Mean(), 0.91 * 1.5 + 0.07 * 13.1 + 0.02 * 77.4, 1e-9);
}

TEST(MixtureExponential, PdfIntegratesToCdf) {
  const MixtureExponential m({{0.6, 1.0}, {0.4, 10.0}});
  double integral = 0;
  const double dx = 0.002;
  for (double x = 0; x < 5.0; x += dx) integral += m.Pdf(x + dx / 2) * dx;
  EXPECT_NEAR(integral, m.Cdf(5.0), 1e-3);
}

TEST(MixtureExponential, ResponsibilityFavorsTailComponentForLargeX) {
  const MixtureExponential m({{0.9, 1.0}, {0.1, 50.0}});
  EXPECT_GT(m.Responsibility(0, 0.1), 0.8);
  EXPECT_GT(m.Responsibility(1, 100.0), 0.99);
}

TEST(StretchedExponential, QuantileInvertsCcdf) {
  const StretchedExponential se(0.018, 0.2);
  for (double u : {0.9, 0.5, 0.1, 0.01}) {
    const double x = se.Quantile(u);
    EXPECT_NEAR(se.Ccdf(x), u, 1e-9);
  }
}

TEST(StretchedExponential, CcdfBoundaries) {
  const StretchedExponential se(1.0, 0.5);
  EXPECT_DOUBLE_EQ(se.Ccdf(0.0), 1.0);
  EXPECT_LT(se.Ccdf(100.0), 1e-4);
  EXPECT_THROW(StretchedExponential(-1.0, 0.5), Error);
  EXPECT_THROW(StretchedExponential(1.0, 0.0), Error);
}

TEST(StretchedExponential, RankValueDecreasing) {
  const StretchedExponential se(0.018, 0.2);
  const double r1 = se.RankValue(1, 100000);
  const double r10 = se.RankValue(10, 100000);
  const double r1000 = se.RankValue(1000, 100000);
  EXPECT_GT(r1, r10);
  EXPECT_GT(r10, r1000);
  EXPECT_THROW((void)se.RankValue(0, 10), Error);
  EXPECT_THROW((void)se.RankValue(11, 10), Error);
}

TEST(StretchedExponential, SampleMatchesCcdf) {
  const StretchedExponential se(2.0, 0.5);
  Rng rng(6);
  int above = 0;
  const int n = 100000;
  const double threshold = 2.0;  // Ccdf(2.0) = exp(-1)
  for (int i = 0; i < n; ++i) {
    if (se.Sample(rng) >= threshold) ++above;
  }
  EXPECT_NEAR(above / static_cast<double>(n), std::exp(-1.0), 0.01);
}

TEST(Zipf, PmfSumsToOne) {
  const Zipf z(50, 0.9);
  double total = 0;
  for (std::size_t k = 1; k <= 50; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(z.Pmf(1), z.Pmf(2));
  EXPECT_GT(z.Pmf(2), z.Pmf(50));
}

TEST(Zipf, SampleRanksInRange) {
  const Zipf z(10, 1.0);
  Rng rng(8);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto k = z.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 10u);
    counts[k]++;
  }
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_NEAR(counts[1] / 50000.0, z.Pmf(1), 0.01);
}

// Property sweep: CCDF monotonicity for a range of SE parameters.
class SeParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SeParamSweep, CcdfMonotoneAndQuantileRoundtrip) {
  const auto [x0, c] = GetParam();
  const StretchedExponential se(x0, c);
  double prev = 1.0;
  for (double x = 0.1; x < 50; x *= 1.5) {
    const double v = se.Ccdf(x);
    ASSERT_LE(v, prev + 1e-12);
    prev = v;
  }
  for (double u = 0.05; u < 1.0; u += 0.1) {
    EXPECT_NEAR(se.Ccdf(se.Quantile(u)), u, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, SeParamSweep,
    ::testing::Combine(::testing::Values(0.001, 0.018, 0.5, 2.0),
                       ::testing::Values(0.15, 0.2, 0.5, 1.0)));

}  // namespace
}  // namespace mcloud
