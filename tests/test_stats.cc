// Tests for regression, special functions, and the chi-square test.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/bootstrap.h"
#include "stats/chi_square.h"
#include "stats/regression.h"
#include "stats/special_functions.h"
#include "util/rng.h"

namespace mcloud {
namespace {

TEST(FitLinear, ExactLineRecovery) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double v : x) y.push_back(2.5 * v - 1.0);
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLine) {
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    const double xv = rng.Uniform(0, 10);
    x.push_back(xv);
    y.push_back(3.0 * xv + 2.0 + rng.Normal(0, 0.5));
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_NEAR(fit.intercept, 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinear, Errors) {
  EXPECT_THROW((void)FitLinear(std::vector<double>{1.0},
                               std::vector<double>{1.0}),
               Error);
  EXPECT_THROW((void)FitLinear(std::vector<double>{1.0, 1.0},
                               std::vector<double>{1.0, 2.0}),
               Error);  // degenerate x
  EXPECT_THROW((void)FitLinear(std::vector<double>{1.0, 2.0},
                               std::vector<double>{1.0}),
               Error);  // length mismatch
}

TEST(FitLinearWeighted, ZeroWeightIgnoresOutlier) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {0, 1, 2, 100};  // outlier at the end
  const std::vector<double> w = {1, 1, 1, 0};
  const LinearFit fit = FitLinearWeighted(x, y, w);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinearWeighted, MatchesUnweightedWithEqualWeights) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y = {1, 3, 4, 6, 9};
  const std::vector<double> w = {2, 2, 2, 2, 2};
  const LinearFit a = FitLinear(x, y);
  const LinearFit b = FitLinearWeighted(x, y, w);
  EXPECT_NEAR(a.slope, b.slope, 1e-12);
  EXPECT_NEAR(a.intercept, b.intercept, 1e-12);
  EXPECT_NEAR(a.r_squared, b.r_squared, 1e-12);
}

TEST(RSquared, PerfectAndPoor) {
  const std::vector<double> obs = {1, 2, 3, 4};
  EXPECT_NEAR(RSquared(obs, obs), 1.0, 1e-12);
  const std::vector<double> bad = {4, 3, 2, 1};
  EXPECT_LT(RSquared(obs, bad), 0.0);  // worse than the mean predictor
}

TEST(SpecialFunctions, GammaPKnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  // P(a, 0) = 0; Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.5, 0.0), 1.0);
  // Complementarity.
  for (double a : {0.5, 2.0, 10.0}) {
    for (double x : {0.5, 2.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(SpecialFunctions, ChiSquareSurvivalKnownValues) {
  // Chi-square with 2 dof: survival = e^{-x/2}.
  for (double x : {1.0, 4.0, 10.0}) {
    EXPECT_NEAR(ChiSquareSurvival(x, 2.0), std::exp(-x / 2.0), 1e-10);
  }
  // Median of chi-square with 1 dof ≈ 0.4549.
  EXPECT_NEAR(ChiSquareSurvival(0.4549, 1.0), 0.5, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(-1.0, 3.0), 1.0);
}

TEST(InvertCdf, RecoversQuantiles) {
  const auto cdf = [](double x) { return 1.0 - std::exp(-x / 2.0); };
  const double q = InvertCdf(cdf, 0.5, 0.0, 100.0);
  EXPECT_NEAR(q, 2.0 * std::log(2.0), 1e-6);
}

TEST(ChiSquareGoodnessOfFit, AcceptsTrueModel) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.ExponentialMean(2.0));
  const auto cdf = [](double x) { return 1.0 - std::exp(-x / 2.0); };
  const auto quantile = [](double q) { return -2.0 * std::log(1.0 - q); };
  const auto result = ChiSquareGoodnessOfFit(xs, cdf, quantile, 30, 1);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_EQ(result.bins, 30u);
  EXPECT_DOUBLE_EQ(result.dof, 28.0);
}

TEST(ChiSquareGoodnessOfFit, RejectsWrongModel) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.ExponentialMean(2.0));
  // Model claims mean 4 — decisively wrong with 20k samples.
  const auto cdf = [](double x) { return 1.0 - std::exp(-x / 4.0); };
  const auto quantile = [](double q) { return -4.0 * std::log(1.0 - q); };
  const auto result = ChiSquareGoodnessOfFit(xs, cdf, quantile, 30, 1);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(Bootstrap, MeanCiCoversTruthAndShrinks) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.Normal(5.0, 2.0));
  const auto mean_stat = [](std::span<const double> s) {
    double sum = 0;
    for (double v : s) sum += v;
    return std::vector<double>{sum / static_cast<double>(s.size())};
  };
  const auto ci = BootstrapPercentileCi(xs, mean_stat, 200, 0.95, 3);
  ASSERT_EQ(ci.size(), 1u);
  EXPECT_NEAR(ci[0].point, 5.0, 0.15);
  EXPECT_LT(ci[0].lo, ci[0].point);
  EXPECT_GT(ci[0].hi, ci[0].point);
  // Analytic 95% CI half-width for the mean: 1.96 * 2 / sqrt(2000) ≈ 0.088.
  EXPECT_NEAR(ci[0].hi - ci[0].lo, 2 * 1.96 * 2.0 / std::sqrt(2000.0), 0.05);
}

TEST(Bootstrap, MultipleStatistics) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.ExponentialMean(3.0));
  const auto stat = [](std::span<const double> s) {
    double sum = 0;
    double mx = 0;
    for (double v : s) {
      sum += v;
      mx = std::max(mx, v);
    }
    return std::vector<double>{sum / static_cast<double>(s.size()), mx};
  };
  const auto ci = BootstrapPercentileCi(xs, stat, 100, 0.9, 5);
  ASSERT_EQ(ci.size(), 2u);
  EXPECT_NEAR(ci[0].point, 3.0, 0.5);
  EXPECT_GE(ci[1].point, ci[0].point);  // max >= mean
}

TEST(Bootstrap, InputValidation) {
  const auto stat = [](std::span<const double>) {
    return std::vector<double>{0.0};
  };
  EXPECT_THROW((void)BootstrapPercentileCi({}, stat), Error);
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW((void)BootstrapPercentileCi(xs, stat, 5), Error);
  EXPECT_THROW((void)BootstrapPercentileCi(xs, stat, 100, 1.5), Error);
}

TEST(ChiSquareGoodnessOfFit, InputValidation) {
  const std::vector<double> xs(100, 1.0);
  const auto cdf = [](double x) { return x; };
  const auto quantile = [](double q) { return q; };
  EXPECT_THROW((void)ChiSquareGoodnessOfFit(xs, cdf, quantile, 1, 0), Error);
  EXPECT_THROW((void)ChiSquareGoodnessOfFit(xs, cdf, quantile, 30, 0),
               Error);  // needs >= 5 per bin
  EXPECT_THROW((void)ChiSquareGoodnessOfFit(xs, cdf, quantile, 10, 9), Error);
}

}  // namespace
}  // namespace mcloud
