// Tests for fixed-bin histograms and valley detection.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace mcloud {
namespace {

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(0.7);
  h.Add(9.99);
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(9), 1u);
  EXPECT_EQ(h.TotalInRange(), 3u);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 1.0);
  EXPECT_DOUBLE_EQ(h.BinLeft(3), 3.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(3), 3.5);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-0.1);
  h.Add(1.0);  // hi is exclusive
  h.Add(0.5);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
  EXPECT_EQ(h.TotalInRange(), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.25, 10);
  EXPECT_EQ(h.Count(0), 10u);
  EXPECT_EQ(h.TotalInRange(), 10u);
}

TEST(Histogram, FractionsAndDensity) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5, 3);
  h.Add(1.5, 1);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.Density(0), 0.75 / 1.0);
  // Densities integrate to 1 over the range.
  EXPECT_NEAR(h.Density(0) * h.BinWidth() + h.Density(1) * h.BinWidth(), 1.0,
              1e-12);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.Count(2), Error);
}

TEST(Histogram, DeepestValleyOnBimodal) {
  // Two Gaussian-ish bumps with a gap around x = 5.
  Histogram h(0.0, 10.0, 40);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) h.Add(rng.Normal(2.0, 0.7));
  for (int i = 0; i < 8000; ++i) h.Add(rng.Normal(8.0, 0.7));
  const std::size_t v = h.DeepestValley();
  ASSERT_LT(v, h.bins());
  EXPECT_GT(h.BinCenter(v), 3.5);
  EXPECT_LT(h.BinCenter(v), 7.0);
}

TEST(Histogram, NoValleyOnMonotone) {
  Histogram h(0.0, 10.0, 20);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) h.Add(rng.ExponentialMean(1.5));
  EXPECT_EQ(h.DeepestValley(), h.bins());
}

TEST(Histogram, NoValleyOnTinyHistogram) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.1);
  h.Add(0.9);
  EXPECT_EQ(h.DeepestValley(), h.bins());
}

TEST(Histogram, QuantileUniformExact) {
  // One count per unit-width bin: the quantile function is the identity
  // (up to the uniform-within-bin interpolation, which is exact here).
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(1.0), 10.0);
}

TEST(Histogram, QuantileInterpolatesWithinBin) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5, 2);  // bin [0,1): 2 counts
  h.Add(2.5, 6);  // bin [2,3): 6 counts
  // q=0.25 -> target mass 2 -> exactly exhausts bin 0 -> its right edge.
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.25), 1.0);
  // q=0.5 -> target 4 -> 2 counts into bin [2,3): 2/6 of the width.
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 2.0 + 2.0 / 6.0);
  // q=1 -> right edge of the last non-empty bin, not hi().
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(1.0), 3.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(empty.ValueAtQuantile(0.5), 0.0);  // lo() on empty
  Histogram h(0.0, 1.0, 4);
  h.Add(0.9);
  // All mass in one bin: q=0 gives its left edge, q=1 its right edge.
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.0), 0.75);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(1.0), 1.0);
  EXPECT_THROW((void)h.ValueAtQuantile(-0.1), Error);
  EXPECT_THROW((void)h.ValueAtQuantile(1.1), Error);
}

TEST(Histogram, QuantileIgnoresOutOfRangeMass) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0, 100);  // underflow
  h.Add(5.0, 100);   // overflow
  h.Add(0.25, 1);
  h.Add(0.75, 1);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 0.5);
}

TEST(Histogram, QuantileMatchesSampleQuantilesWithinBinWidth) {
  Histogram h(0.0, 10.0, 200);
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.Normal(5.0, 1.2);
    xs.push_back(x);
    h.Add(x);
  }
  std::sort(xs.begin(), xs.end());
  double prev = 0.0;
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double hist_q = h.ValueAtQuantile(q);
    const double sample_q =
        xs[static_cast<std::size_t>(q * (xs.size() - 1))];
    EXPECT_NEAR(hist_q, sample_q, 2 * h.BinWidth()) << "q=" << q;
    EXPECT_GE(hist_q, prev);  // monotone in q
    prev = hist_q;
  }
}

// The Fig 3 use case: bimodal in log10 space with unbalanced masses.
TEST(Histogram, ValleyWithUnbalancedModes) {
  Histogram h(0.0, 6.0, 60);
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) h.Add(rng.Normal(0.5, 0.5));  // intra
  for (int i = 0; i < 5000; ++i) h.Add(rng.Normal(4.9, 0.5));   // inter
  const std::size_t v = h.DeepestValley();
  ASSERT_LT(v, h.bins());
  EXPECT_GT(h.BinCenter(v), 1.8);
  EXPECT_LT(h.BinCenter(v), 4.4);
}

}  // namespace
}  // namespace mcloud
