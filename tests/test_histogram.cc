// Tests for fixed-bin histograms and valley detection.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mcloud {
namespace {

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(0.7);
  h.Add(9.99);
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(9), 1u);
  EXPECT_EQ(h.TotalInRange(), 3u);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 1.0);
  EXPECT_DOUBLE_EQ(h.BinLeft(3), 3.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(3), 3.5);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-0.1);
  h.Add(1.0);  // hi is exclusive
  h.Add(0.5);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
  EXPECT_EQ(h.TotalInRange(), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.25, 10);
  EXPECT_EQ(h.Count(0), 10u);
  EXPECT_EQ(h.TotalInRange(), 10u);
}

TEST(Histogram, FractionsAndDensity) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5, 3);
  h.Add(1.5, 1);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.Density(0), 0.75 / 1.0);
  // Densities integrate to 1 over the range.
  EXPECT_NEAR(h.Density(0) * h.BinWidth() + h.Density(1) * h.BinWidth(), 1.0,
              1e-12);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.Count(2), Error);
}

TEST(Histogram, DeepestValleyOnBimodal) {
  // Two Gaussian-ish bumps with a gap around x = 5.
  Histogram h(0.0, 10.0, 40);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) h.Add(rng.Normal(2.0, 0.7));
  for (int i = 0; i < 8000; ++i) h.Add(rng.Normal(8.0, 0.7));
  const std::size_t v = h.DeepestValley();
  ASSERT_LT(v, h.bins());
  EXPECT_GT(h.BinCenter(v), 3.5);
  EXPECT_LT(h.BinCenter(v), 7.0);
}

TEST(Histogram, NoValleyOnMonotone) {
  Histogram h(0.0, 10.0, 20);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) h.Add(rng.ExponentialMean(1.5));
  EXPECT_EQ(h.DeepestValley(), h.bins());
}

TEST(Histogram, NoValleyOnTinyHistogram) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.1);
  h.Add(0.9);
  EXPECT_EQ(h.DeepestValley(), h.bins());
}

// The Fig 3 use case: bimodal in log10 space with unbalanced masses.
TEST(Histogram, ValleyWithUnbalancedModes) {
  Histogram h(0.0, 6.0, 60);
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) h.Add(rng.Normal(0.5, 0.5));  // intra
  for (int i = 0; i < 5000; ++i) h.Add(rng.Normal(4.9, 0.5));   // inter
  const std::size_t v = h.DeepestValley();
  ASSERT_LT(v, h.bins());
  EXPECT_GT(h.BinCenter(v), 1.8);
  EXPECT_LT(h.BinCenter(v), 4.4);
}

}  // namespace
}  // namespace mcloud
