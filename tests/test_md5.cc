// MD5 conformance against the RFC 1321 test suite, plus incremental-update
// semantics.
#include "util/md5.h"

#include <gtest/gtest.h>

#include <string>

#include "util/error.h"
#include "util/rng.h"

namespace mcloud {
namespace {

// RFC 1321 §A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::Hash("").ToHex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::Hash("a").ToHex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::Hash("abc").ToHex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::Hash("message digest").ToHex(),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::Hash("abcdefghijklmnopqrstuvwxyz").ToHex(),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::Hash(
          "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")
          .ToHex(),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::Hash("1234567890123456789012345678901234567890123456789012"
                      "3456789012345678901234567890")
                .ToHex(),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalEqualsOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly.";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Md5 h;
    h.Update(std::string_view(msg).substr(0, split));
    h.Update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.Finalize(), Md5::Hash(msg)) << "split at " << split;
  }
}

TEST(Md5, BlockBoundarySizes) {
  // Sizes around the 64-byte block and 56-byte padding boundaries.
  Rng rng(1);
  for (std::size_t size : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string data(size, '\0');
    for (auto& ch : data) ch = static_cast<char>(rng.UniformInt(256));
    // Hash in two different chunkings; digests must agree.
    Md5 a;
    a.Update(data);
    Md5 b;
    for (char ch : data) b.Update(std::string_view(&ch, 1));
    EXPECT_EQ(a.Finalize(), b.Finalize()) << "size " << size;
  }
}

TEST(Md5, ResetAllowsReuse) {
  Md5 h;
  h.Update("first");
  (void)h.Finalize();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(h.Finalize().ToHex(), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, UpdateAfterFinalizeThrows) {
  Md5 h;
  (void)h.Finalize();
  EXPECT_THROW(h.Update("x"), Error);
  EXPECT_THROW((void)h.Finalize(), Error);
}

TEST(Md5, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5::Hash("hello"), Md5::Hash("hellp"));
  EXPECT_NE(Md5::Hash("hello").Low64(), Md5::Hash("hellp").Low64());
}

TEST(Md5, Low64MatchesLeadingBytes) {
  const Md5Digest d = Md5::Hash("abc");
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < 8; ++i)
    expected |= static_cast<std::uint64_t>(d.bytes[i]) << (8 * i);
  EXPECT_EQ(d.Low64(), expected);
}

TEST(Md5, StdHashUsable) {
  const std::hash<Md5Digest> hasher;
  EXPECT_EQ(hasher(Md5::Hash("x")), hasher(Md5::Hash("x")));
  EXPECT_NE(hasher(Md5::Hash("x")), hasher(Md5::Hash("y")));
}

// Parameterized sweep: digests are stable across chunked update patterns for
// many message lengths.
class Md5SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Md5SizeSweep, ChunkedUpdatesAgree) {
  const std::size_t size = GetParam();
  std::string data(size, '\0');
  Rng rng(size + 1);
  for (auto& ch : data) ch = static_cast<char>(rng.UniformInt(256));

  const Md5Digest reference = Md5::Hash(data);
  for (std::size_t chunk : {1u, 7u, 64u, 1000u}) {
    Md5 h;
    for (std::size_t off = 0; off < size; off += chunk) {
      h.Update(std::string_view(data).substr(off, chunk));
    }
    EXPECT_EQ(h.Finalize(), reference) << "size " << size << " chunk " << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Md5SizeSweep,
                         ::testing::Values(0, 1, 31, 64, 100, 1023, 4096,
                                           100000));

}  // namespace
}  // namespace mcloud
