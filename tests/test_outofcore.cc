// The out-of-core pipeline's determinism contract: spill-generate +
// RunOutOfCore must produce the bit-identical FullReport of the resident
// GenerateColumnar + Run path, at every thread count and every spill-buffer
// size (DESIGN.md, "Out-of-core pipeline").
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/pipeline.h"
#include "core/report.h"
#include "trace/partitioned_trace.h"
#include "validate/validator.h"
#include "workload/generator.h"

namespace mcloud {
namespace {

workload::WorkloadConfig SmallConfig() {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 600;
  cfg.population.pc_only_users = 200;
  cfg.seed = 17;
  return cfg;
}

std::filesystem::path SpillDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(OutOfCore, SpilledGenerationMatchesResidentReport) {
  const workload::WorkloadConfig cfg = SmallConfig();
  const workload::ColumnarWorkload resident =
      workload::WorkloadGenerator(cfg).GenerateColumnar();
  const core::FullReport want =
      core::AnalysisPipeline(core::PipelineOptions{}).Run(resident.trace);
  const std::uint64_t want_fp = core::FingerprintReport(want);

  // Small chunks + the minimum buffer budget force several spills at this
  // scale; thread count and analysis staging must not matter either.
  for (const int threads : {1, 3}) {
    const auto dir = SpillDir("mcloud_ooc_report_test");
    workload::SpillConfig spill;
    spill.dir = dir;
    spill.max_buffer_bytes = 1;  // clamped to the 64k-record floor
    spill.users_per_chunk = 64;
    workload::WorkloadConfig gen_cfg = cfg;
    gen_cfg.threads = threads;
    const workload::SpillSummary summary =
        workload::WorkloadGenerator(gen_cfg).GenerateToPartitions(spill);
    EXPECT_EQ(summary.records, resident.trace.rows());
    EXPECT_GT(summary.spills, 1u) << "buffer too big to exercise spilling";

    const PartitionedTrace trace = PartitionedTrace::Open(dir);
    EXPECT_EQ(trace.rows(), resident.trace.rows());
    EXPECT_EQ(trace.users(), resident.trace.users());

    core::PipelineOptions opts;
    opts.threads = threads;
    opts.max_memory_mb = 1;  // minimum staging: many refills per day
    const core::FullReport got =
        core::AnalysisPipeline(opts).RunOutOfCore(trace);
    EXPECT_EQ(core::FingerprintReport(got), want_fp)
        << "threads=" << threads;
    std::filesystem::remove_all(dir);
  }
}

TEST(OutOfCore, RunStreamingMatchesResidentReport) {
  const workload::WorkloadConfig cfg = SmallConfig();
  const workload::ColumnarWorkload resident =
      workload::WorkloadGenerator(cfg).GenerateColumnar();
  const core::FullReport want =
      core::AnalysisPipeline(core::PipelineOptions{}).Run(resident.trace);
  const std::uint64_t want_fp = core::FingerprintReport(want);

  const auto dir = SpillDir("mcloud_ooc_streaming_test");
  workload::SpillConfig spill;
  spill.dir = dir;
  spill.max_buffer_bytes = 1;  // clamped to the 64k-record floor
  spill.users_per_chunk = 64;
  (void)workload::WorkloadGenerator(cfg).GenerateToPartitions(spill);
  const PartitionedTrace trace = PartitionedTrace::Open(dir);

  // The single-walk engine (one Scan feeding the row pass and the
  // inline-mobility per-user pass together) must be bit-identical to the
  // resident two-pass engine at every thread count and staging budget.
  for (const int threads : {1, 3}) {
    core::PipelineOptions opts;
    opts.threads = threads;
    opts.max_memory_mb = 1;  // minimum staging: many refills per day
    core::StageTimings st;
    const core::FullReport got =
        core::AnalysisPipeline(opts).RunStreaming(trace, &st);
    EXPECT_EQ(core::FingerprintReport(got), want_fp)
        << "threads=" << threads;
    EXPECT_GT(st.fits_s, 0.0);
  }
  std::filesystem::remove_all(dir);
}

TEST(OutOfCore, RunConcurrentMatchesResidentReport) {
  const workload::WorkloadConfig cfg = SmallConfig();
  const workload::ColumnarWorkload resident =
      workload::WorkloadGenerator(cfg).GenerateColumnar();
  const core::FullReport want =
      core::AnalysisPipeline(core::PipelineOptions{}).Run(resident.trace);
  const std::uint64_t want_fp = core::FingerprintReport(want);

  // Analyze-while-generate: generation spills sealed slices straight into
  // the bounded queue; the overlapped walk must still produce the resident
  // report bit-for-bit, independent of threads and slice boundaries.
  for (const int threads : {1, 3}) {
    const auto dir = SpillDir("mcloud_ooc_concurrent_test");
    workload::SpillConfig spill;
    spill.dir = dir;
    spill.max_buffer_bytes = 1;  // clamped to the 64k-record floor
    spill.users_per_chunk = 64;
    workload::WorkloadConfig gen_cfg = cfg;
    gen_cfg.threads = threads;

    core::PipelineOptions opts;
    opts.threads = threads;
    core::StageTimings st;
    workload::SpillSummary summary;
    const core::FullReport got =
        core::AnalysisPipeline(opts).RunConcurrent(
            [&](const core::AnalysisPipeline::SliceConsumer& consume) {
              summary = workload::WorkloadGenerator(gen_cfg)
                            .GenerateToPartitions(spill, consume);
            },
            &st);
    EXPECT_EQ(summary.records, resident.trace.rows());
    EXPECT_GT(summary.spills, 1u) << "buffer too big to exercise slicing";
    EXPECT_EQ(core::FingerprintReport(got), want_fp)
        << "threads=" << threads;
    std::filesystem::remove_all(dir);
  }
}

TEST(OutOfCore, ValidatorFingerprintMatchesResident) {
  validate::ValidateOptions opt;
  opt.users = 800;
  opt.seed = 5;
  opt.fleet_flows = 200;

  validate::ValidationRun resident;
  (void)validate::BuildValidationInputs(opt, &resident);

  opt.out_of_core = true;
  opt.max_memory_mb = 64;
  validate::ValidationRun ooc;
  (void)validate::BuildValidationInputs(opt, &ooc);

  // The execution-strategy knobs are not part of the sample identity: an
  // out-of-core run must fingerprint identically to the resident run.
  EXPECT_EQ(validate::ManifestFingerprint(ooc),
            validate::ManifestFingerprint(resident));

  opt.out_of_core = false;
  opt.concurrent = true;
  validate::ValidationRun concurrent;
  (void)validate::BuildValidationInputs(opt, &concurrent);
  EXPECT_EQ(validate::ManifestFingerprint(concurrent),
            validate::ManifestFingerprint(resident));
  EXPECT_GT(concurrent.sketch_bytes, 0u);
  EXPECT_EQ(concurrent.generate_s, 0.0)
      << "generation should overlap analysis in concurrent mode";
}

TEST(OutOfCore, GenerateToPartitionsIsIdenticalAcrossThreadCounts) {
  const auto ReportOf = [](int threads) {
    const auto dir = SpillDir("mcloud_ooc_threads_test");
    workload::WorkloadConfig cfg = SmallConfig();
    cfg.threads = threads;
    workload::SpillConfig spill;
    spill.dir = dir;
    spill.max_buffer_bytes = 1;  // clamped to the 64k-record floor
    spill.users_per_chunk = 64;
    (void)workload::WorkloadGenerator(cfg).GenerateToPartitions(spill);
    const core::FullReport report =
        core::AnalysisPipeline(core::PipelineOptions{}).RunOutOfCore(PartitionedTrace::Open(dir));
    std::filesystem::remove_all(dir);
    return core::FingerprintReport(report);
  };
  const std::uint64_t fp1 = ReportOf(1);
  EXPECT_EQ(ReportOf(2), fp1);
  EXPECT_EQ(ReportOf(5), fp1);
}

}  // namespace
}  // namespace mcloud
