// Tests for the workload generator: population model, session model,
// diurnal pattern, and the fast log emitter.
#include <gtest/gtest.h>

#include <span>
#include <unordered_set>
#include <vector>

#include "trace/record_columns.h"
#include "trace/trace_store.h"
#include "workload/calibration.h"
#include "workload/diurnal.h"
#include "workload/generator.h"
#include "workload/log_emitter.h"
#include "workload/session_model.h"
#include "workload/user_model.h"

namespace mcloud::workload {
namespace {

TEST(Diurnal, NormalizedSharesAndPeak) {
  const DiurnalPattern pattern(cal::kHourOfDayWeights);
  double total = 0;
  for (int h = 0; h < 24; ++h) total += pattern.HourShare(h);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(pattern.PeakHour(), 23);  // the paper's 11 PM surge
}

TEST(Diurnal, SamplesWithinDayAndFollowWeights) {
  const DiurnalPattern pattern(cal::kHourOfDayWeights);
  Rng rng(1);
  int evening = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Seconds s = pattern.SampleSecondOfDay(rng);
    ASSERT_GE(s, 0.0);
    ASSERT_LT(s, kDay);
    if (s >= 18 * kHour) ++evening;
  }
  // Hours 18-23 carry well over a third of the weight.
  EXPECT_GT(evening / static_cast<double>(n), 0.35);
}

TEST(Diurnal, RejectsBadWeights) {
  std::array<double, 24> zero{};
  EXPECT_THROW(DiurnalPattern{zero}, Error);
  std::array<double, 24> negative{};
  negative[0] = -1.0;
  EXPECT_THROW(DiurnalPattern{negative}, Error);
}

PopulationConfig SmallPopulation() {
  PopulationConfig cfg;
  cfg.mobile_users = 3000;
  cfg.pc_only_users = 1000;
  return cfg;
}

TEST(Population, SizesAndUniqueIds) {
  Rng rng(2);
  const auto users = PopulationBuilder(SmallPopulation()).Build(rng);
  EXPECT_EQ(users.size(), 4000u);

  std::unordered_set<std::uint64_t> user_ids;
  std::unordered_set<std::uint64_t> device_ids;
  std::size_t mobile = 0;
  for (const auto& u : users) {
    EXPECT_TRUE(user_ids.insert(u.user_id).second);
    for (const auto& d : u.mobile_devices)
      EXPECT_TRUE(device_ids.insert(d.device_id).second);
    if (u.IsMobileUser()) ++mobile;
  }
  EXPECT_EQ(mobile, 3000u);
}

TEST(Population, PcOnlyUsersHaveNoMobileDevices) {
  Rng rng(3);
  const auto users = PopulationBuilder(SmallPopulation()).Build(rng);
  for (const auto& u : users) {
    if (!u.IsMobileUser()) {
      EXPECT_TRUE(u.uses_pc);
      EXPECT_TRUE(u.mobile_devices.empty());
    }
  }
}

TEST(Population, AndroidShareNearConfig) {
  Rng rng(4);
  const auto users = PopulationBuilder(SmallPopulation()).Build(rng);
  std::size_t android = 0;
  std::size_t devices = 0;
  for (const auto& u : users) {
    for (const auto& d : u.mobile_devices) {
      ++devices;
      if (d.type == DeviceType::kAndroid) ++android;
    }
  }
  EXPECT_NEAR(android / static_cast<double>(devices), paper::kAndroidShare,
              0.03);
}

TEST(Population, ActivityMatchesClass) {
  Rng rng(5);
  const auto users = PopulationBuilder(SmallPopulation()).Build(rng);
  for (const auto& u : users) {
    switch (u.usage_class) {
      case paper::UserClass::kUploadOnly:
        EXPECT_GE(u.store_files, 1u);
        EXPECT_EQ(u.retrieve_files, 0u);
        break;
      case paper::UserClass::kDownloadOnly:
        EXPECT_EQ(u.store_files, 0u);
        EXPECT_GE(u.retrieve_files, 1u);
        break;
      case paper::UserClass::kMixed:
        EXPECT_GE(u.store_files, 1u);
        EXPECT_GE(u.retrieve_files, 1u);
        break;
      case paper::UserClass::kOccasional:
        EXPECT_GE(u.store_files, 1u);
        break;
    }
  }
}

TEST(Population, HeavyUsersAreEngaged) {
  Rng rng(6);
  const auto users = PopulationBuilder(SmallPopulation()).Build(rng);
  for (const auto& u : users) {
    if (u.store_files + u.retrieve_files > 25) EXPECT_TRUE(u.engaged);
  }
}

TEST(Population, SampleActivityAtLeastOne) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(PopulationBuilder::SampleActivityAtLeastOne(rng, 0.018, 0.2),
              1u);
  }
}

SessionModelConfig WeekConfig() {
  SessionModelConfig cfg;
  cfg.trace_start = kTraceStart;
  cfg.days = 7;
  return cfg;
}

TEST(SessionModel, BudgetsConserved) {
  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  const SessionModel model(WeekConfig(), diurnal);
  Rng rng(8);

  UserProfile u;
  u.user_id = 1;
  u.mobile_devices = {{10, DeviceType::kAndroid}};
  u.usage_class = paper::UserClass::kMixed;
  u.store_files = 23;
  u.retrieve_files = 9;
  u.engaged = true;
  u.first_active_day = 2;

  const auto sessions = model.PlanUser(u, rng);
  std::size_t store = 0;
  std::size_t retrieve = 0;
  for (const auto& s : sessions) {
    for (const auto& op : s.ops) {
      (op.direction == Direction::kStore ? store : retrieve)++;
    }
  }
  EXPECT_EQ(store, 23u);
  EXPECT_EQ(retrieve, 9u);
}

TEST(SessionModel, SessionsWithinObservationWindowMostly) {
  // PC-sync sessions can spill a few hours past an upload, but all starts
  // stay within [start, start + days + margin).
  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  const SessionModel model(WeekConfig(), diurnal);
  Rng rng(9);
  UserProfile u;
  u.user_id = 2;
  u.mobile_devices = {{20, DeviceType::kIos}};
  u.uses_pc = true;
  u.usage_class = paper::UserClass::kUploadOnly;
  u.store_files = 40;
  u.engaged = true;
  u.first_active_day = 0;

  const auto sessions = model.PlanUser(u, rng);
  ASSERT_FALSE(sessions.empty());
  for (const auto& s : sessions) {
    EXPECT_GE(s.start, kTraceStart);
    EXPECT_LT(s.start, kTraceStart + static_cast<UnixSeconds>(8 * kDay));
  }
  // Chronological order.
  for (std::size_t i = 1; i < sessions.size(); ++i)
    EXPECT_LE(sessions[i - 1].start, sessions[i].start);
}

TEST(SessionModel, FirstActiveDayCarriesASession) {
  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  const SessionModel model(WeekConfig(), diurnal);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    UserProfile u;
    u.user_id = seed;
    u.mobile_devices = {{seed * 10 + 1, DeviceType::kAndroid}};
    u.usage_class = paper::UserClass::kUploadOnly;
    u.store_files = 5;
    u.engaged = false;
    u.first_active_day = 3;
    const auto sessions = model.PlanUser(u, rng);
    bool day3 = false;
    for (const auto& s : sessions) {
      if (DayIndex(s.start) == 3) day3 = true;
    }
    EXPECT_TRUE(day3);
  }
}

TEST(SessionModel, NonEngagedUsersHaveFewSessions) {
  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  const SessionModel model(WeekConfig(), diurnal);
  Rng rng(11);
  UserProfile u;
  u.user_id = 3;
  u.mobile_devices = {{30, DeviceType::kAndroid}};
  u.usage_class = paper::UserClass::kUploadOnly;
  u.store_files = 60;
  u.engaged = false;
  u.first_active_day = 1;
  const auto sessions = model.PlanUser(u, rng);
  EXPECT_LE(sessions.size(), 2u);
}

TEST(SessionModel, OpCountDistributionShape) {
  Rng rng(12);
  std::size_t single = 0;
  std::size_t over20 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto ops = SessionModel::SampleOpCount(rng, Direction::kStore);
    ASSERT_GE(ops, 1u);
    if (ops == 1) ++single;
    if (ops > 20) ++over20;
  }
  EXPECT_NEAR(single / static_cast<double>(n), cal::kSingleOpShare, 0.02);
  EXPECT_NEAR(over20 / static_cast<double>(n), 0.10, 0.04);
}

TEST(SessionModel, OccasionalPayloadsSmall) {
  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  const SessionModel model(WeekConfig(), diurnal);
  Rng rng(13);
  UserProfile u;
  u.user_id = 4;
  u.mobile_devices = {{40, DeviceType::kIos}};
  u.usage_class = paper::UserClass::kOccasional;
  u.store_files = 3;
  u.first_active_day = 0;
  const auto sessions = model.PlanUser(u, rng);
  for (const auto& s : sessions) {
    for (const auto& op : s.ops) {
      EXPECT_LE(op.size, FromMB(cal::kOccasionalMaxFileMB));
    }
  }
}

TEST(SessionModel, OpsClusterAtSessionStart) {
  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  const SessionModel model(WeekConfig(), diurnal);
  Rng rng(14);
  UserProfile u;
  u.user_id = 5;
  u.mobile_devices = {{50, DeviceType::kAndroid}};
  u.usage_class = paper::UserClass::kUploadOnly;
  u.store_files = 30;
  u.engaged = false;
  u.first_active_day = 0;
  const auto sessions = model.PlanUser(u, rng);
  for (const auto& s : sessions) {
    if (s.ops.size() < 20) continue;
    // Batch sessions issue everything within a couple of minutes.
    EXPECT_LT(s.ops.back().offset, 3 * kMinute);
    for (std::size_t i = 1; i < s.ops.size(); ++i)
      EXPECT_GE(s.ops[i].offset, s.ops[i - 1].offset);
  }
}

TEST(SessionPlan, TypeClassification) {
  SessionPlan s;
  FileOp store;
  store.direction = Direction::kStore;
  FileOp retrieve;
  retrieve.direction = Direction::kRetrieve;
  s.ops = {store};
  EXPECT_EQ(s.Type(), SessionType::kStoreOnly);
  s.ops = {retrieve};
  EXPECT_EQ(s.Type(), SessionType::kRetrieveOnly);
  s.ops = {store, retrieve};
  EXPECT_EQ(s.Type(), SessionType::kMixed);
}

TEST(LogEmitter, EmitsFileOpsAndChunks) {
  SessionPlan s;
  s.user_id = 1;
  s.device_id = 2;
  s.device_type = DeviceType::kAndroid;
  s.start = kTraceStart;
  FileOp op;
  op.direction = Direction::kStore;
  op.size = kChunkSize * 2 + 1000;  // 3 chunks
  op.offset = 0;
  s.ops.push_back(op);

  Rng rng(15);
  std::vector<LogRecord> out;
  FastLogEmitter().EmitSession(s, rng, out);
  ASSERT_EQ(out.size(), 4u);  // 1 file op + 3 chunk requests
  EXPECT_EQ(out[0].request_type, RequestType::kFileOperation);
  Bytes volume = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i].request_type, RequestType::kChunkRequest);
    volume += out[i].data_volume;
    EXPECT_GT(out[i].processing_time, out[i].server_time);
  }
  EXPECT_EQ(volume, op.size);
}

TEST(LogEmitter, ChunkTimestampsFollowOps) {
  SessionPlan s;
  s.user_id = 1;
  s.device_id = 2;
  s.device_type = DeviceType::kIos;
  s.start = kTraceStart;
  for (int i = 0; i < 3; ++i) {
    FileOp op;
    op.direction = Direction::kStore;
    op.size = kMiB;
    op.offset = i * 2.0;
    s.ops.push_back(op);
  }
  Rng rng(16);
  std::vector<LogRecord> out;
  FastLogEmitter().EmitSession(s, rng, out);
  for (const auto& r : out) {
    EXPECT_GE(r.timestamp, s.start);
    EXPECT_LT(r.timestamp, s.start + 7200);
  }
}

TEST(LogEmitter, ThroughputOrdering) {
  // Android uplink is the slowest; PC is the fastest (Fig 12 calibration).
  EXPECT_LT(FastLogEmitter::BaseThroughput(DeviceType::kAndroid,
                                           Direction::kStore),
            FastLogEmitter::BaseThroughput(DeviceType::kIos,
                                           Direction::kStore));
  EXPECT_LT(FastLogEmitter::BaseThroughput(DeviceType::kIos,
                                           Direction::kStore),
            FastLogEmitter::BaseThroughput(DeviceType::kPc,
                                           Direction::kStore));
}

TEST(LogEmitter, ColumnarMatchesScalarFieldExact) {
  // The fast path (batched normals, SoA output) must reproduce the scalar
  // emitter bit for bit — every field, every record, same RNG stream out.
  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  const SessionModel model(WeekConfig(), diurnal);
  Rng plan_rng(77);
  const FastLogEmitter emitter;
  EmitScratch scratch;
  std::size_t sessions_checked = 0;
  for (int u = 0; u < 40; ++u) {
    UserProfile profile;
    profile.user_id = 1000 + static_cast<std::uint64_t>(u);
    profile.mobile_devices = {{profile.user_id * 2, u % 2 == 0
                                                        ? DeviceType::kAndroid
                                                        : DeviceType::kIos}};
    profile.uses_pc = u % 3 == 0;
    profile.usage_class = u % 4 == 0 ? paper::UserClass::kOccasional
                                     : paper::UserClass::kMixed;
    profile.store_files = 1 + static_cast<std::uint64_t>(u) % 40;
    profile.retrieve_files = static_cast<std::uint64_t>(u) % 13;
    profile.engaged = u % 2 == 1;
    profile.first_active_day = u % 5;
    for (const SessionPlan& s : model.PlanUser(profile, plan_rng)) {
      Rng scalar_rng(500 + sessions_checked);
      Rng columnar_rng(500 + sessions_checked);
      std::vector<LogRecord> want;
      emitter.EmitSession(s, scalar_rng, want);
      RecordColumns cols;
      emitter.EmitSessionColumnar(s, columnar_rng, cols, scratch);
      ASSERT_EQ(cols.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        const LogRecord got = cols.RecordAt(i);
        ASSERT_EQ(got.timestamp, want[i].timestamp);
        ASSERT_EQ(got.device_type, want[i].device_type);
        ASSERT_EQ(got.device_id, want[i].device_id);
        ASSERT_EQ(got.user_id, want[i].user_id);
        ASSERT_EQ(got.request_type, want[i].request_type);
        ASSERT_EQ(got.direction, want[i].direction);
        ASSERT_EQ(got.data_volume, want[i].data_volume);
        ASSERT_EQ(got.processing_time, want[i].processing_time);  // bit-exact
        ASSERT_EQ(got.server_time, want[i].server_time);
        ASSERT_EQ(got.avg_rtt, want[i].avg_rtt);
        ASSERT_EQ(got.proxied, want[i].proxied);
      }
      // Both paths consumed the engine identically.
      ASSERT_EQ(scalar_rng.NextU64(), columnar_rng.NextU64());
      ++sessions_checked;
    }
  }
  EXPECT_GT(sessions_checked, 100u);
}

TEST(SessionModel, PlanUserIntoMatchesPlanUser) {
  // Pooled planning must replicate the allocating path draw for draw,
  // including the final chronological order, across reused scratch state.
  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  const SessionModel model(WeekConfig(), diurnal);
  PlanScratch scratch;
  for (int u = 0; u < 60; ++u) {
    UserProfile profile;
    profile.user_id = 5000 + static_cast<std::uint64_t>(u);
    profile.mobile_devices = {{profile.user_id * 2, DeviceType::kAndroid}};
    profile.uses_pc = u % 2 == 0;
    profile.usage_class =
        u % 3 == 0 ? paper::UserClass::kOccasional : paper::UserClass::kMixed;
    profile.store_files = 1 + static_cast<std::uint64_t>(u * 7) % 60;
    profile.retrieve_files = static_cast<std::uint64_t>(u * 3) % 20;
    profile.engaged = u % 2 == 0;
    profile.first_active_day = u % 6;

    Rng rng_a(900 + u);
    Rng rng_b(900 + u);
    const std::vector<SessionPlan> want = model.PlanUser(profile, rng_a);
    model.PlanUserInto(profile, rng_b, scratch);  // scratch reused across users
    const std::span<const SessionPlan> got = scratch.sessions();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].user_id, want[i].user_id);
      ASSERT_EQ(got[i].device_id, want[i].device_id);
      ASSERT_EQ(got[i].device_type, want[i].device_type);
      ASSERT_EQ(got[i].start, want[i].start);
      ASSERT_EQ(got[i].ops.size(), want[i].ops.size());
      for (std::size_t k = 0; k < want[i].ops.size(); ++k) {
        ASSERT_EQ(got[i].ops[k].direction, want[i].ops[k].direction);
        ASSERT_EQ(got[i].ops[k].size, want[i].ops[k].size);
        ASSERT_EQ(got[i].ops[k].offset, want[i].ops[k].offset);  // bit-exact
      }
    }
    ASSERT_EQ(rng_a.NextU64(), rng_b.NextU64());
  }
}

TEST(Generator, ColumnarFingerprintMatchesRecords) {
  // The representation-independent fingerprint agrees between the AoS
  // records and the columnar store the fast path builds.
  WorkloadConfig cfg;
  cfg.population.mobile_users = 150;
  cfg.population.pc_only_users = 50;
  cfg.seed = 7;
  const auto w = WorkloadGenerator(cfg).Generate();
  const ColumnarWorkload cw = WorkloadGenerator(cfg).GenerateColumnar();
  ASSERT_EQ(cw.trace.rows(), w.trace.size());
  EXPECT_EQ(TraceFingerprint(std::span<const LogRecord>(w.trace)),
            TraceFingerprint(cw.trace));
}

TEST(Generator, DeterministicForSeed) {
  WorkloadConfig cfg;
  cfg.population.mobile_users = 200;
  cfg.population.pc_only_users = 50;
  cfg.seed = 99;
  const auto a = WorkloadGenerator(cfg).Generate();
  const auto b = WorkloadGenerator(cfg).Generate();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    ASSERT_EQ(a.trace[i], b.trace[i]);
}

TEST(Generator, DifferentSeedsDiffer) {
  WorkloadConfig cfg;
  cfg.population.mobile_users = 200;
  cfg.population.pc_only_users = 0;
  cfg.seed = 1;
  const auto a = WorkloadGenerator(cfg).Generate();
  cfg.seed = 2;
  const auto b = WorkloadGenerator(cfg).Generate();
  EXPECT_TRUE(a.trace.size() != b.trace.size() || a.trace != b.trace);
}

TEST(Generator, TraceSortedAndConsistent) {
  WorkloadConfig cfg;
  cfg.population.mobile_users = 300;
  cfg.population.pc_only_users = 100;
  const auto w = WorkloadGenerator(cfg).Generate();
  ASSERT_FALSE(w.trace.empty());
  for (std::size_t i = 1; i < w.trace.size(); ++i)
    EXPECT_LE(w.trace[i - 1].timestamp, w.trace[i].timestamp);
  // Plans-only mode produces the same sessions and no logs.
  const auto plans = WorkloadGenerator(cfg).GeneratePlansOnly();
  EXPECT_EQ(plans.sessions.size(), w.sessions.size());
  EXPECT_TRUE(plans.trace.empty());
}

// Property sweep over seeds: structural invariants of generated workloads.
class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, StructuralInvariants) {
  WorkloadConfig cfg;
  cfg.population.mobile_users = 400;
  cfg.population.pc_only_users = 100;
  cfg.seed = GetParam();
  const auto w = WorkloadGenerator(cfg).Generate();

  for (const auto& r : w.trace) {
    // Chunk payloads never exceed the protocol chunk size.
    if (r.request_type == RequestType::kChunkRequest) {
      EXPECT_GT(r.data_volume, 0u);
      EXPECT_LE(r.data_volume, kChunkSize);
    } else {
      EXPECT_EQ(r.data_volume, 0u);
    }
    EXPECT_GT(r.avg_rtt, 0.0);
    EXPECT_GE(r.processing_time, r.server_time);
  }
  for (const auto& s : w.sessions) EXPECT_FALSE(s.ops.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1000003ULL));

}  // namespace
}  // namespace mcloud::workload
