// Tests for the analysis library: sessionizer, session stats, burstiness,
// usage patterns, engagement, activity models, timeseries, and the
// performance dissection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/activity_model.h"
#include "analysis/burstiness.h"
#include "analysis/engagement.h"
#include "analysis/file_size_model.h"
#include "analysis/interval_model.h"
#include "analysis/perf_analysis.h"
#include "analysis/session_stats.h"
#include "analysis/sessionizer.h"
#include "analysis/usage_patterns.h"
#include "analysis/workload_timeseries.h"
#include "util/timeutil.h"

namespace mcloud::analysis {
namespace {

LogRecord Rec(UnixSeconds ts, std::uint64_t user, Direction dir,
              RequestType type, Bytes volume = 0,
              DeviceType dev = DeviceType::kAndroid) {
  LogRecord r;
  r.timestamp = ts;
  r.user_id = user;
  r.device_id = user * 100 + (dev == DeviceType::kPc ? 1 : 0);
  r.device_type = dev;
  r.direction = dir;
  r.request_type = type;
  r.data_volume = volume;
  r.processing_time = 1.0;
  r.server_time = 0.1;
  r.avg_rtt = 0.1;
  return r;
}

LogRecord Op(UnixSeconds ts, std::uint64_t user, Direction dir,
             DeviceType dev = DeviceType::kAndroid) {
  return Rec(ts, user, dir, RequestType::kFileOperation, 0, dev);
}

LogRecord Chunk(UnixSeconds ts, std::uint64_t user, Direction dir,
                Bytes volume = kChunkSize,
                DeviceType dev = DeviceType::kAndroid) {
  return Rec(ts, user, dir, RequestType::kChunkRequest, volume, dev);
}

TEST(Sessionizer, SplitsOnGapAboveTau) {
  const UnixSeconds t0 = kTraceStart;
  std::vector<LogRecord> trace = {
      Op(t0, 1, Direction::kStore),
      Chunk(t0 + 5, 1, Direction::kStore),
      Op(t0 + 10, 1, Direction::kStore),
      // gap of 2 hours > tau: new session
      Op(t0 + 10 + 7200, 1, Direction::kStore),
  };
  const auto sessions = Sessionizer(kHour).Sessionize(trace);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].store_ops, 2u);
  EXPECT_EQ(sessions[0].chunk_requests, 1u);
  EXPECT_EQ(sessions[1].store_ops, 1u);
}

TEST(Sessionizer, ChunksExtendButNeverSplit) {
  const UnixSeconds t0 = kTraceStart;
  std::vector<LogRecord> trace = {
      Op(t0, 1, Direction::kStore),
      // Chunks trail for 90 minutes — longer than tau, but no new session.
      Chunk(t0 + 1800, 1, Direction::kStore),
      Chunk(t0 + 5400, 1, Direction::kStore),
  };
  const auto sessions = Sessionizer(kHour).Sessionize(trace);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].chunk_requests, 2u);
  EXPECT_DOUBLE_EQ(sessions[0].Length(), 5400.0);
  EXPECT_DOUBLE_EQ(sessions[0].OperatingTime(), 0.0);
}

TEST(Sessionizer, UsersAreIndependent) {
  const UnixSeconds t0 = kTraceStart;
  std::vector<LogRecord> trace = {
      Op(t0, 1, Direction::kStore),
      Op(t0 + 1, 2, Direction::kRetrieve),
      Op(t0 + 2, 1, Direction::kStore),
  };
  const auto sessions = Sessionizer().Sessionize(trace);
  ASSERT_EQ(sessions.size(), 2u);
}

TEST(Sessionizer, RequiresSortedTrace) {
  std::vector<LogRecord> trace = {
      Op(kTraceStart + 10, 1, Direction::kStore),
      Op(kTraceStart, 1, Direction::kStore),
  };
  EXPECT_THROW((void)Sessionizer().Sessionize(trace), Error);
}

TEST(Sessionizer, VolumeAccounting) {
  const UnixSeconds t0 = kTraceStart;
  std::vector<LogRecord> trace = {
      Op(t0, 1, Direction::kStore),
      Chunk(t0 + 1, 1, Direction::kStore, 100),
      Op(t0 + 2, 1, Direction::kRetrieve),
      Chunk(t0 + 3, 1, Direction::kRetrieve, 200),
  };
  const auto sessions = Sessionizer().Sessionize(trace);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].store_volume, 100u);
  EXPECT_EQ(sessions[0].retrieve_volume, 200u);
  EXPECT_EQ(sessions[0].SessionType(), Session::Type::kMixed);
}

TEST(InterOpIntervals, OnlyFileOpsCount) {
  const UnixSeconds t0 = kTraceStart;
  std::vector<LogRecord> trace = {
      Op(t0, 1, Direction::kStore),
      Chunk(t0 + 2, 1, Direction::kStore),
      Op(t0 + 10, 1, Direction::kStore),
      Op(t0 + 20, 2, Direction::kStore),  // other user: no interval yet
  };
  const auto intervals = InterOpIntervals(trace);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0], 10.0);
}

TEST(IntervalModel, RecoversBimodalStructure) {
  // Synthesize intervals: intra-session around 3 s, inter-session around a
  // day, and verify the full Fig 3 pipeline finds both.
  Rng rng(1);
  std::vector<double> intervals;
  for (int i = 0; i < 30000; ++i)
    intervals.push_back(std::pow(10.0, rng.Normal(0.5, 0.4)));
  for (int i = 0; i < 5000; ++i)
    intervals.push_back(std::pow(10.0, rng.Normal(4.9, 0.4)));

  const auto model = FitIntervalModel(intervals);
  EXPECT_NEAR(model.intra_mean_seconds, 3.16, 1.0);
  EXPECT_GT(model.inter_mean_seconds, 0.5 * kDay);
  // Valley and GMM crossover both land between the modes.
  EXPECT_GT(model.valley_tau, 60.0);
  EXPECT_LT(model.valley_tau, 12 * kHour);
  EXPECT_GT(model.gmm_tau, 60.0);
  EXPECT_LT(model.gmm_tau, 12 * kHour);
}

TEST(IntervalModel, MixtureCrossoverBetweenMeans) {
  const GaussianMixture m({{0.8, 0.0, 1.0}, {0.2, 6.0, 1.0}});
  const double cross = MixtureCrossover(m);
  EXPECT_GT(cross, 0.0);
  EXPECT_LT(cross, 6.0);
  EXPECT_NEAR(m.Responsibility(0, cross), 0.5, 1e-3);
}

std::vector<Session> SyntheticSessions() {
  std::vector<Session> sessions;
  // 3 store-only with 1..3 ops, 2 retrieve-only, 1 mixed.
  for (int i = 0; i < 3; ++i) {
    Session s;
    s.user_id = 1;
    s.begin = kTraceStart;
    s.end = kTraceStart + 100;
    s.first_op = kTraceStart;
    s.last_op = kTraceStart + 5;
    s.store_ops = i + 1;
    s.store_volume = FromMB(1.5) * (i + 1);
    sessions.push_back(s);
  }
  for (int i = 0; i < 2; ++i) {
    Session s;
    s.user_id = 2;
    s.begin = kTraceStart;
    s.end = kTraceStart + 200;
    s.first_op = kTraceStart;
    s.last_op = kTraceStart + 50;
    s.retrieve_ops = 2;
    s.retrieve_volume = FromMB(60);
    sessions.push_back(s);
  }
  Session mixed;
  mixed.user_id = 3;
  mixed.begin = kTraceStart;
  mixed.end = kTraceStart + 50;
  mixed.store_ops = 1;
  mixed.retrieve_ops = 1;
  mixed.store_volume = FromMB(1);
  mixed.retrieve_volume = FromMB(1);
  sessions.push_back(mixed);
  return sessions;
}

TEST(SessionStats, Classification) {
  const auto split = ClassifySessions(SyntheticSessions());
  EXPECT_EQ(split.total, 6u);
  EXPECT_EQ(split.store_only, 3u);
  EXPECT_EQ(split.retrieve_only, 2u);
  EXPECT_EQ(split.mixed, 1u);
  EXPECT_NEAR(split.StoreShare(), 0.5, 1e-12);
}

TEST(SessionStats, SizeByOpCount) {
  const auto bins = SessionSizeByOpCount(SyntheticSessions(),
                                         Session::Type::kStoreOnly);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].file_ops, 1u);
  EXPECT_NEAR(bins[0].avg_mb, 1.5, 1e-6);
  EXPECT_NEAR(bins[2].avg_mb, 4.5, 1e-6);
  EXPECT_EQ(bins[1].sessions, 1u);
}

TEST(SessionStats, AvgFileSizeSample) {
  const auto sizes = AvgFileSizeSample(SyntheticSessions(),
                                       Session::Type::kRetrieveOnly);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_NEAR(sizes[0], 30.0, 1e-6);  // 60 MB over 2 files
}

TEST(Burstiness, GroupsAndFractions) {
  std::vector<Session> sessions;
  for (int i = 0; i < 10; ++i) {
    Session s;
    s.begin = kTraceStart;
    s.end = kTraceStart + 100;
    s.first_op = kTraceStart;
    s.last_op = kTraceStart + (i < 8 ? 5 : 60);  // 8 bursty, 2 not
    s.store_ops = 25;
    sessions.push_back(s);
  }
  const auto groups = NormalizedOperatingTimes(sessions);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[2].min_ops_exclusive, 20u);
  EXPECT_EQ(groups[2].normalized_times.size(), 10u);
  EXPECT_NEAR(FractionBelow(groups[2], 0.1), 0.8, 1e-12);
}

TEST(UsagePatterns, ClassificationRules) {
  UserUsage u;
  u.store_volume = FromMB(100);
  u.retrieve_volume = 0;
  EXPECT_EQ(u.Classify(), paper::UserClass::kUploadOnly);
  u.retrieve_volume = FromMB(100);
  EXPECT_EQ(u.Classify(), paper::UserClass::kMixed);
  u.store_volume = 0;
  EXPECT_EQ(u.Classify(), paper::UserClass::kDownloadOnly);
  u.retrieve_volume = FromMB(0.5);
  EXPECT_EQ(u.Classify(), paper::UserClass::kOccasional);
}

TEST(UsagePatterns, BuildFromTrace) {
  std::vector<LogRecord> trace = {
      Op(kTraceStart, 1, Direction::kStore),
      Chunk(kTraceStart + 1, 1, Direction::kStore, FromMB(5)),
      Op(kTraceStart + 2, 1, Direction::kRetrieve,
         DeviceType::kPc),
      Chunk(kTraceStart + 3, 1, Direction::kRetrieve, FromMB(2),
            DeviceType::kPc),
  };
  const auto usage = BuildUserUsage(trace);
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_EQ(usage[0].store_volume, FromMB(5));
  EXPECT_EQ(usage[0].retrieve_volume, FromMB(2));
  EXPECT_EQ(usage[0].stored_files, 1u);
  EXPECT_EQ(usage[0].retrieved_files, 1u);
  EXPECT_TRUE(usage[0].MobileAndPc());
  EXPECT_EQ(usage[0].mobile_devices, 1u);
}

TEST(UsagePatterns, RatioSaturation) {
  UserUsage u;
  u.store_volume = FromMB(10);
  EXPECT_GT(u.VolumeRatio(), paper::kUploadOnlyRatio);
  u.store_volume = 0;
  u.retrieve_volume = FromMB(10);
  EXPECT_LT(u.VolumeRatio(), paper::kDownloadOnlyRatio);
}

TEST(UsagePatterns, TableColumnSharesSumToOne) {
  std::vector<UserUsage> usage;
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    UserUsage u;
    u.user_id = i;
    u.mobile_devices = 1;
    u.store_volume = rng.Bernoulli(0.6) ? FromMB(rng.Uniform(0, 50)) : 0;
    u.retrieve_volume = rng.Bernoulli(0.3) ? FromMB(rng.Uniform(0, 50)) : 0;
    usage.push_back(u);
  }
  const auto col = BuildUserTypeColumn(usage, DeviceProfile::kMobileOnly);
  EXPECT_EQ(col.users, 500u);
  double total = 0;
  for (double s : col.user_share) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Engagement, ReturnCurveCounting) {
  // User 1: active day 0 and day 2. User 2: day 0 only. Both 1-device.
  std::vector<Session> sessions;
  for (const auto& [user, day] :
       std::vector<std::pair<std::uint64_t, int>>{{1, 0}, {1, 2}, {2, 0}}) {
    Session s;
    s.user_id = user;
    s.begin = kTraceStart + static_cast<UnixSeconds>(day) * 86400 + 100;
    s.end = s.begin + 10;
    s.store_ops = 1;
    sessions.push_back(s);
  }
  std::vector<UserUsage> usage(2);
  usage[0].user_id = 1;
  usage[0].mobile_devices = 1;
  usage[1].user_id = 2;
  usage[1].mobile_devices = 1;

  const auto curves = ReturnCurves(sessions, usage, kTraceStart, 7);
  const auto& one_dev = curves[0];
  EXPECT_EQ(one_dev.day1_users, 2u);
  EXPECT_NEAR(one_dev.active_on_day[1], 0.5, 1e-12);  // day 2 -> index 1
  EXPECT_NEAR(one_dev.never_returned, 0.5, 1e-12);
}

TEST(Engagement, RetrievalReturnUpperBound) {
  // Uploader on day 0 who retrieves on day 3.
  std::vector<Session> sessions;
  Session up;
  up.user_id = 1;
  up.begin = kTraceStart + 100;
  up.end = up.begin + 10;
  up.store_ops = 1;
  sessions.push_back(up);
  Session down;
  down.user_id = 1;
  down.begin = kTraceStart + 3 * 86400;
  down.end = down.begin + 10;
  down.retrieve_ops = 1;
  sessions.push_back(down);

  std::vector<UserUsage> usage(1);
  usage[0].user_id = 1;
  usage[0].mobile_devices = 1;

  const auto curves = RetrievalReturns(sessions, usage, kTraceStart, 7);
  const auto& one_dev = curves[0];
  EXPECT_EQ(one_dev.day1_uploaders, 1u);
  EXPECT_DOUBLE_EQ(one_dev.retrieved_by_day[2], 0.0);
  EXPECT_DOUBLE_EQ(one_dev.retrieved_by_day[3], 1.0);
  EXPECT_DOUBLE_EQ(one_dev.retrieved_by_day[6], 1.0);
  EXPECT_DOUBLE_EQ(one_dev.never_retrieved, 0.0);
}

TEST(ActivityModel, FitsAndRanks) {
  std::vector<UserUsage> usage;
  Rng rng(3);
  const StretchedExponential law(0.018, 0.2);
  for (int i = 0; i < 5000; ++i) {
    UserUsage u;
    u.user_id = i;
    const double cap = law.Ccdf(1.0);
    double v = rng.Uniform() * cap;
    while (v <= 0) v = rng.Uniform() * cap;
    u.stored_files =
        static_cast<std::uint64_t>(std::max(1.0, std::floor(law.Quantile(v))));
    usage.push_back(u);
  }
  const auto result = FitActivity(usage, Direction::kStore);
  EXPECT_EQ(result.active_users, 5000u);
  EXPECT_NEAR(result.se.c, 0.2, 0.05);
  EXPECT_GT(result.se.r_squared, result.power_law.r_squared);
  // Ranked series is descending.
  for (std::size_t i = 1; i < result.ranked.size(); ++i)
    EXPECT_GE(result.ranked[i - 1], result.ranked[i]);

  const std::vector<std::size_t> ranks = {1, 10, 100};
  const auto curve = SePredictedCurve(result.se, ranks);
  EXPECT_GT(curve[0], curve[2]);
}

TEST(Timeseries, BinsVolumeAndFiles) {
  std::vector<LogRecord> trace = {
      Op(kTraceStart + 100, 1, Direction::kStore),
      Chunk(kTraceStart + 200, 1, Direction::kStore, FromMB(1)),
      Op(kTraceStart + 3600 + 10, 1, Direction::kRetrieve),
      Chunk(kTraceStart + 3600 + 20, 1, Direction::kRetrieve, FromMB(3)),
  };
  const auto ts = BuildTimeseries(trace, kTraceStart, 1);
  ASSERT_EQ(ts.hours.size(), 24u);
  EXPECT_EQ(ts.hours[0].stored_files, 1u);
  EXPECT_NEAR(ts.hours[0].StoreVolumeGb(), 0.001, 1e-9);
  EXPECT_EQ(ts.hours[1].retrieved_files, 1u);
  EXPECT_NEAR(ts.TotalRetrieveGb(), 0.003, 1e-9);
}

TEST(Timeseries, PeakHourOfDay) {
  std::vector<LogRecord> trace;
  // Two days of load, both peaking at hour 23.
  for (int day = 0; day < 2; ++day) {
    trace.push_back(Chunk(kTraceStart + day * 86400 + 23 * 3600, 1,
                          Direction::kStore, FromMB(100)));
    trace.push_back(Chunk(kTraceStart + day * 86400 + 12 * 3600, 1,
                          Direction::kStore, FromMB(10)));
  }
  std::sort(trace.begin(), trace.end(), LogRecordTimeOrder);
  const auto ts = BuildTimeseries(trace, kTraceStart, 2);
  EXPECT_EQ(ts.PeakHourOfDay(), 23);
}

TEST(FileSizeModel, FitsMixtureAndCcdfSeries) {
  Rng rng(4);
  const MixtureExponential truth({{0.9, 1.5}, {0.1, 30.0}});
  std::vector<double> sizes;
  for (int i = 0; i < 30000; ++i) sizes.push_back(truth.Sample(rng));
  const auto model = FitFileSizeModel(sizes);
  EXPECT_GE(model.selection.selected_n, 2u);
  EXPECT_EQ(model.grid_mb.size(), model.empirical_ccdf.size());
  EXPECT_EQ(model.grid_mb.size(), model.model_ccdf.size());
  // Model and empirical CCDFs track each other.
  for (std::size_t i = 0; i < model.grid_mb.size(); ++i) {
    EXPECT_NEAR(model.model_ccdf[i], model.empirical_ccdf[i], 0.05);
  }
}

TEST(PerfAnalysis, FiltersByDeviceDirectionAndProxy) {
  std::vector<LogRecord> trace;
  LogRecord ok = Chunk(kTraceStart, 1, Direction::kStore);
  ok.processing_time = 2.0;
  ok.server_time = 0.5;
  trace.push_back(ok);
  LogRecord proxied = ok;
  proxied.proxied = true;
  trace.push_back(proxied);
  LogRecord ios = ok;
  ios.device_type = DeviceType::kIos;
  trace.push_back(ios);

  const auto android =
      ChunkTransferTimes(trace, DeviceType::kAndroid, Direction::kStore);
  ASSERT_EQ(android.size(), 1u);
  EXPECT_NEAR(android[0], 1.5, 1e-12);
  EXPECT_EQ(
      ChunkTransferTimes(trace, DeviceType::kIos, Direction::kStore).size(),
      1u);
  EXPECT_EQ(RttSamples(trace).size(), 2u);  // proxied excluded
}

TEST(PerfAnalysis, SendingWindowEstimate) {
  std::vector<LogRecord> trace;
  LogRecord r = Chunk(kTraceStart, 1, Direction::kStore, 512 * kKiB);
  r.avg_rtt = 0.1;
  r.server_time = 0.1;
  r.processing_time = 0.1 + 0.8;  // ttran chosen so swnd = 64 KiB
  trace.push_back(r);
  const auto swnd = SendingWindowEstimates(trace);
  ASSERT_EQ(swnd.size(), 1u);
  EXPECT_NEAR(swnd[0], 64 * 1024, 1.0);
}

TEST(PerfAnalysis, ChunkPerfDissection) {
  std::vector<cloud::ChunkPerf> perf;
  for (int i = 0; i < 10; ++i) {
    cloud::ChunkPerf p;
    p.device = DeviceType::kAndroid;
    p.direction = Direction::kStore;
    p.tclt = 0.3;
    p.tsrv = 0.1;
    p.idle_before = i == 0 ? 0.0 : 0.5;
    p.rto_at_idle = 0.4;
    p.restarted = i > 0 && i % 2 == 0;
    p.ttran = 2.0;
    perf.push_back(p);
  }
  EXPECT_EQ(TcltSamples(perf, DeviceType::kAndroid, Direction::kStore).size(),
            10u);
  EXPECT_EQ(
      IdleToRtoRatios(perf, DeviceType::kAndroid, Direction::kStore).size(),
      9u);  // the first chunk has no preceding gap
  EXPECT_NEAR(
      SlowStartRestartShare(perf, DeviceType::kAndroid, Direction::kStore),
      4.0 / 9.0, 1e-12);
  EXPECT_TRUE(
      TcltSamples(perf, DeviceType::kIos, Direction::kStore).empty());
}

}  // namespace
}  // namespace mcloud::analysis
