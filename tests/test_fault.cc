// Fault-injection subsystem tests: schedule construction, retry policy,
// the zero-fault bit-identity contract, and the resilience acceptance
// sweep (monotone degradation without retries; recovery with the default
// policy; determinism per seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/availability.h"
#include "cloud/storage_service.h"
#include "fault/fault_config.h"
#include "fault/fault_schedule.h"
#include "fault/retry_policy.h"
#include "sim/event_queue.h"
#include "util/timeutil.h"
#include "workload/generator.h"

namespace mcloud {
namespace {

// ---------------------------------------------------------------------------
// FaultConfig / RetryPolicy
// ---------------------------------------------------------------------------

TEST(FaultConfig, AnyDetectsActiveKnobs) {
  fault::FaultConfig cfg;
  EXPECT_FALSE(cfg.Any());
  cfg.frontend_fail_rate = 0.01;
  EXPECT_TRUE(cfg.Any());
  cfg = {};
  cfg.degraded_rate = 0.05;
  EXPECT_TRUE(cfg.Any());
  cfg = {};
  cfg.loss_burst_rate = 0.001;
  EXPECT_TRUE(cfg.Any());
}

TEST(RetryPolicy, BackoffGrowsExponentiallyWithCap) {
  fault::RetryPolicy p;
  p.jitter = 0;  // deterministic midpoint
  Rng rng(1);
  EXPECT_DOUBLE_EQ(p.Backoff(1, rng), 0.0);  // first attempt: no wait
  EXPECT_DOUBLE_EQ(p.Backoff(2, rng), 0.5);
  EXPECT_DOUBLE_EQ(p.Backoff(3, rng), 1.0);
  EXPECT_DOUBLE_EQ(p.Backoff(4, rng), 2.0);
  EXPECT_DOUBLE_EQ(p.Backoff(12, rng), p.max_backoff);  // truncated
}

TEST(RetryPolicy, BackoffJitterStaysInBand) {
  const fault::RetryPolicy p;  // jitter = 0.25
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const Seconds b = p.Backoff(3, rng);  // nominal 1.0 s
    EXPECT_GE(b, 1.0 * (1.0 - p.jitter));
    EXPECT_LE(b, 1.0 * (1.0 + p.jitter));
  }
  // Same stream position -> same delay.
  Rng a(7), b(7);
  EXPECT_DOUBLE_EQ(p.Backoff(4, a), p.Backoff(4, b));
}

TEST(RetryPolicy, NoneNeverRetries) {
  const auto p = fault::RetryPolicy::None();
  EXPECT_EQ(p.max_attempts, 1u);
  EXPECT_DOUBLE_EQ(p.chunk_timeout, 0.0);
  EXPECT_FALSE(p.hedge);
}

// ---------------------------------------------------------------------------
// FaultSchedule
// ---------------------------------------------------------------------------

TEST(FaultSchedule, ZeroRatesProduceNoEpisodes) {
  const fault::FaultSchedule s(fault::FaultConfig{}, 4, 7 * kDay);
  for (std::uint32_t fe = 0; fe < 4; ++fe) {
    EXPECT_FALSE(s.FrontEndDown(fe, 0.0));
    EXPECT_FALSE(s.FrontEndDownDuring(fe, 0.0, 7 * kDay));
    EXPECT_DOUBLE_EQ(s.TsrvFactor(fe, kDay), 1.0);
  }
  EXPECT_DOUBLE_EQ(s.ExtraLossProb(kDay), 0.0);
  EXPECT_FALSE(s.InLossBurst(kDay));
}

TEST(FaultSchedule, DowntimeFractionTracksRate) {
  fault::FaultConfig cfg;
  cfg.frontend_fail_rate = 0.05;
  const Seconds horizon = 60 * kDay;  // long horizon averages the renewals
  const fault::FaultSchedule s(cfg, 2, horizon);
  double down = 0;
  const Seconds step = 30.0;
  for (Seconds t = 0; t < horizon; t += step)
    if (s.FrontEndDown(0, t)) down += step;
  EXPECT_NEAR(down / horizon, cfg.frontend_fail_rate, 0.02);
}

TEST(FaultSchedule, DeterministicPerSeedAndPerFrontEnd) {
  fault::FaultConfig cfg;
  cfg.frontend_fail_rate = 0.02;
  cfg.degraded_rate = 0.05;
  cfg.loss_burst_rate = 0.01;
  const fault::FaultSchedule a(cfg, 3, 7 * kDay);
  const fault::FaultSchedule b(cfg, 3, 7 * kDay);
  bool fe_streams_differ = false;
  for (Seconds t = 0; t < 7 * kDay; t += 61.0) {
    EXPECT_EQ(a.FrontEndDown(1, t), b.FrontEndDown(1, t));
    EXPECT_DOUBLE_EQ(a.TsrvFactor(2, t), b.TsrvFactor(2, t));
    EXPECT_DOUBLE_EQ(a.ExtraLossProb(t), b.ExtraLossProb(t));
    if (a.FrontEndDown(0, t) != a.FrontEndDown(1, t)) fe_streams_differ = true;
  }
  // Each front-end draws its own episode stream.
  EXPECT_TRUE(fe_streams_differ);
}

TEST(FaultSchedule, DownDuringDetectsOverlap) {
  fault::FaultConfig cfg;
  cfg.frontend_fail_rate = 0.10;
  const fault::FaultSchedule s(cfg, 1, 30 * kDay);
  // Locate an actual downtime instant, then probe intervals around it.
  Seconds down_at = -1;
  for (Seconds t = 0; t < 30 * kDay; t += 10.0) {
    if (s.FrontEndDown(0, t)) {
      down_at = t;
      break;
    }
  }
  ASSERT_GE(down_at, 0.0);
  EXPECT_TRUE(s.FrontEndDownDuring(0, down_at - 5.0, down_at + 5.0));
  const Seconds up_until = s.DownUntil(0, down_at);
  EXPECT_GT(up_until, down_at);
  EXPECT_FALSE(s.FrontEndDown(0, up_until + 1e-3));
}

TEST(FaultSchedule, InstallHealthEventsFlipsHealth) {
  fault::FaultConfig cfg;
  cfg.frontend_fail_rate = 0.10;
  const Seconds horizon = 30 * kDay;
  const fault::FaultSchedule s(cfg, 2, horizon);
  EventQueue queue;
  fault::FrontEndHealth health(2);
  EXPECT_EQ(health.UpCount(), 2u);
  const auto ids = s.InstallHealthEvents(queue, health);
  EXPECT_FALSE(ids.empty());
  // After draining the timeline, health matches the schedule's final state.
  queue.RunUntil(horizon);
  for (std::uint32_t fe = 0; fe < 2; ++fe)
    EXPECT_EQ(health.IsUp(fe), !s.FrontEndDown(fe, horizon - 1e-6));
  // Events can be retracted (the service cancels past-horizon flips).
  EventQueue q2;
  fault::FrontEndHealth h2(2);
  for (const auto id : s.InstallHealthEvents(q2, h2)) EXPECT_TRUE(q2.Cancel(id));
  EXPECT_TRUE(q2.Empty());
}

// ---------------------------------------------------------------------------
// Zero-fault bit-identity goldens
// ---------------------------------------------------------------------------

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void MixSeconds(double s) { Mix(static_cast<std::uint64_t>(s * 1e6)); }
};

std::uint64_t TraceFingerprint(const std::vector<LogRecord>& trace) {
  Fnv f;
  for (const LogRecord& r : trace) {
    f.Mix(static_cast<std::uint64_t>(r.timestamp));
    f.Mix(static_cast<std::uint64_t>(r.device_type));
    f.Mix(r.device_id);
    f.Mix(r.user_id);
    f.Mix(static_cast<std::uint64_t>(r.request_type));
    f.Mix(static_cast<std::uint64_t>(r.direction));
    f.Mix(r.data_volume);
    f.MixSeconds(r.processing_time);
    f.MixSeconds(r.server_time);
    f.MixSeconds(r.avg_rtt);
    f.Mix(static_cast<std::uint64_t>(r.proxied));
  }
  return f.h;
}

std::uint64_t ServiceFingerprint(const cloud::ServiceResult& r) {
  Fnv f;
  f.Mix(TraceFingerprint(r.logs));
  for (const cloud::ChunkPerf& p : r.chunk_perf) {
    f.Mix(static_cast<std::uint64_t>(p.device));
    f.Mix(static_cast<std::uint64_t>(p.direction));
    f.Mix(p.bytes);
    f.MixSeconds(p.ttran);
    f.MixSeconds(p.tsrv);
    f.MixSeconds(p.tclt);
    f.MixSeconds(p.idle_before);
    f.MixSeconds(p.rto_at_idle);
    f.Mix(static_cast<std::uint64_t>(p.restarted));
    f.MixSeconds(p.rtt);
  }
  f.Mix(r.flows);
  f.Mix(r.slow_start_restarts);
  f.Mix(r.skipped_uploads);
  return f.h;
}

/// Fixed mixed-direction session plans, independent of workload calibration.
std::vector<workload::SessionPlan> ServicePlans() {
  std::vector<workload::SessionPlan> plans;
  Rng rng(2026);
  for (int i = 0; i < 400; ++i) {
    workload::SessionPlan s;
    s.user_id = static_cast<std::uint64_t>(i % 120 + 1);
    s.device_id = s.user_id;
    s.device_type = (i % 3 == 0)   ? DeviceType::kIos
                    : (i % 7 == 0) ? DeviceType::kPc
                                   : DeviceType::kAndroid;
    s.start = kTraceStart + static_cast<UnixSeconds>(i * 45);
    workload::FileOp op;
    op.direction = (i % 2 == 0) ? Direction::kStore : Direction::kRetrieve;
    op.size = FromMB(0.3 + 3.0 * rng.Uniform());
    s.ops.push_back(op);
    if (i % 5 == 0) {
      workload::FileOp op2;
      op2.direction = Direction::kStore;
      op2.size = FromMB(1.0 + 2.0 * rng.Uniform());
      op2.offset = 20.0;
      s.ops.push_back(op2);
    }
    plans.push_back(s);
  }
  return plans;
}

// With every fault knob at zero the generator and service must be
// bit-identical to the pre-fault-subsystem pipeline: same records, same
// RNG stream consumption, same chunk timings — at every thread count.
TEST(ZeroFaultGolden, TraceBitIdenticalAcrossThreads) {
  for (const int threads : {1, 4}) {
    workload::WorkloadConfig cfg;
    cfg.population.mobile_users = 2000;
    cfg.population.pc_only_users = 666;
    cfg.seed = 42;
    cfg.threads = threads;
    const auto w = workload::WorkloadGenerator(cfg).Generate();
    EXPECT_EQ(w.trace.size(), 770053u) << "threads=" << threads;
    EXPECT_EQ(TraceFingerprint(w.trace), 0x9bc1d03971d8a383ULL)
        << "threads=" << threads;
  }
}

TEST(ZeroFaultGolden, ServiceBitIdentical) {
  cloud::ServiceConfig cfg;  // all fault knobs zero, default retry unused
  ASSERT_FALSE(cfg.faults.Any());
  cloud::StorageService service{cfg};
  const auto result = service.Execute(ServicePlans());
  EXPECT_EQ(result.logs.size(), 50533u);
  EXPECT_EQ(result.chunk_perf.size(), 50053u);
  EXPECT_EQ(ServiceFingerprint(result), 0x201f30ec3b5ae2f7ULL);
  // Fault accounting stays silent on a clean run.
  EXPECT_EQ(result.faults.failed_sessions, 0u);
  EXPECT_EQ(result.faults.retries, 0u);
  const auto r = analysis::Availability(result);
  EXPECT_DOUBLE_EQ(r.session_success_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.op_success_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.retry_amplification, 1.0);
  EXPECT_DOUBLE_EQ(r.goodput_fraction, 1.0);
}

// ---------------------------------------------------------------------------
// Resilience acceptance sweep
// ---------------------------------------------------------------------------

TEST(FaultSweep, SuccessDegradesMonotonicallyWithoutRetries) {
  const auto plans = ServicePlans();
  double prev = 2.0;
  double at_zero = 0, at_worst = 0;
  for (const double rate : {0.0, 0.03, 0.10, 0.25}) {
    cloud::ServiceConfig cfg;
    cfg.faults.frontend_fail_rate = rate;
    cfg.faults.loss_burst_rate = rate > 0 ? 0.005 : 0.0;
    cfg.retry = fault::RetryPolicy::None();
    cloud::StorageService service{cfg};
    const auto r = analysis::Availability(service.Execute(plans));
    EXPECT_LE(r.session_success_rate, prev + 1e-12) << "rate=" << rate;
    prev = r.session_success_rate;
    if (rate == 0.0) at_zero = r.session_success_rate;
    if (rate == 0.25) at_worst = r.session_success_rate;
  }
  EXPECT_DOUBLE_EQ(at_zero, 1.0);
  EXPECT_LT(at_worst, 0.9);  // heavy faults must actually hurt
}

TEST(FaultSweep, DefaultPolicyRecoversAtOnePercentFailure) {
  const auto plans = ServicePlans();
  cloud::ServiceConfig cfg;
  cfg.faults.frontend_fail_rate = 0.01;
  cfg.faults.loss_burst_rate = 0.005;
  // cfg.retry keeps the default policy: 4 attempts + failover + resume.
  cloud::StorageService service{cfg};
  const auto result = service.Execute(plans);
  const auto r = analysis::Availability(result);
  EXPECT_GE(r.session_success_rate, 0.99);
  EXPECT_GE(r.goodput_fraction, 0.99);
  EXPECT_LT(r.retry_amplification, 1.05);
  // The resilience machinery is genuinely exercised, not idle.
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.resume_skipped_chunks, 0u);
  EXPECT_GT(result.faults.chunk_server_failures + result.faults.chunk_timeouts +
                result.faults.chunk_disconnects,
            0u);
}

TEST(FaultSweep, DeterministicPerSeed) {
  const auto plans = ServicePlans();
  cloud::ServiceConfig cfg;
  cfg.faults.frontend_fail_rate = 0.03;
  cfg.faults.degraded_rate = 0.05;
  cfg.faults.loss_burst_rate = 0.01;
  cloud::StorageService a{cfg};
  cloud::StorageService b{cfg};
  const auto ra = a.Execute(plans);
  const auto rb = b.Execute(plans);
  EXPECT_EQ(ServiceFingerprint(ra), ServiceFingerprint(rb));
  EXPECT_EQ(ra.faults.chunk_attempts, rb.faults.chunk_attempts);
  EXPECT_EQ(ra.faults.retries, rb.faults.retries);
  EXPECT_EQ(ra.faults.failed_sessions, rb.faults.failed_sessions);
  EXPECT_EQ(ra.faults.goodput_bytes, rb.faults.goodput_bytes);

  // A different fault seed draws a different timeline.
  cloud::ServiceConfig other = cfg;
  other.faults.seed = 0xBEEF;
  cloud::StorageService c{other};
  EXPECT_NE(ServiceFingerprint(c.Execute(plans)), ServiceFingerprint(ra));
}

TEST(FaultSweep, HedgingCutsIntoDegradedTail) {
  const auto plans = ServicePlans();
  cloud::ServiceConfig slow;
  slow.faults.degraded_rate = 0.10;
  cloud::StorageService base{slow};
  const auto r_base = analysis::Availability(base.Execute(plans));

  cloud::ServiceConfig hedged = slow;
  hedged.retry.hedge = true;
  cloud::StorageService h{hedged};
  const auto result = h.Execute(plans);
  const auto r_hedge = analysis::Availability(result);
  EXPECT_GT(r_hedge.hedges_issued, 0u);
  EXPECT_GT(r_hedge.hedge_wins, 0u);
  EXPECT_EQ(r_base.hedges_issued, 0u);
  // Hedged requests appear in the log tagged as such.
  std::uint64_t hedged_logs = 0;
  for (const LogRecord& rec : result.logs)
    if (rec.outcome == RequestOutcome::kHedged) ++hedged_logs;
  EXPECT_EQ(hedged_logs, r_hedge.hedge_wins);
}

TEST(Availability, RenderMentionsKeyMetrics) {
  cloud::ServiceConfig cfg;
  cfg.faults.frontend_fail_rate = 0.01;
  cloud::StorageService service{cfg};
  const auto r = analysis::Availability(service.Execute(ServicePlans()));
  const std::string text = analysis::RenderAvailability(r);
  EXPECT_NE(text.find("success rate"), std::string::npos);
  EXPECT_NE(text.find("goodput"), std::string::npos);
  EXPECT_NE(text.find("retry amplification"), std::string::npos);
}

TEST(Availability, SuccessRateByDeviceCoversAllTypes) {
  cloud::ServiceConfig cfg;
  cloud::StorageService service{cfg};
  const auto by_device = analysis::SuccessRateByDevice(service.Execute(ServicePlans()));
  ASSERT_EQ(by_device.size(), 3u);
  for (const double rate : by_device) EXPECT_DOUBLE_EQ(rate, 1.0);
}

}  // namespace
}  // namespace mcloud
