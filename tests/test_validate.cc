// Tests for the validation layer: the goodness-of-fit engine against
// closed-form cases, the tolerance policies, and the FigureCheck registry —
// including the golden run (every check passes on the standard 20k-user
// seed-42 trace) and a negative control proving that a mis-calibrated
// generator fails exactly the targeted check.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "stats/chi_square.h"
#include "stats/special_functions.h"
#include "util/rng.h"
#include "validate/figure_checks.h"
#include "validate/gof.h"
#include "validate/tolerance.h"
#include "validate/validator.h"

namespace mcloud {
namespace {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// ---------------------------------------------------------------------------
// Goodness-of-fit engine: closed-form anchors
// ---------------------------------------------------------------------------

TEST(Gof, KolmogorovSurvivalClassicCriticalValues) {
  // Q(1.358) ≈ 0.05 and Q(1.628) ≈ 0.01 — the tabulated KS critical values.
  EXPECT_NEAR(KolmogorovSurvival(1.358), 0.05, 2e-3);
  EXPECT_NEAR(KolmogorovSurvival(1.628), 0.01, 1e-3);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_LT(KolmogorovSurvival(3.0), 1e-6);
}

TEST(Gof, AndersonDarlingSurvivalClassicCriticalValues) {
  // The case-0 asymptotic critical values: A² = 2.492 at 5%, 3.857 at 1%.
  EXPECT_NEAR(AndersonDarlingSurvival(2.492), 0.05, 2e-3);
  EXPECT_NEAR(AndersonDarlingSurvival(3.857), 0.01, 1e-3);
  EXPECT_DOUBLE_EQ(AndersonDarlingSurvival(0.0), 1.0);
}

TEST(Gof, KsOneSampleExactDistanceOnUniformGrid) {
  // Bin midpoints (i+0.5)/n under the U(0,1) CDF: every step contributes
  // exactly 1/(2n), so D = 1/(2n) in closed form.
  for (const std::size_t n : {10UL, 100UL, 1000UL}) {
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
      s[i] = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const auto r = validate::KsOneSample(s, [](double x) { return x; });
    EXPECT_NEAR(r.statistic, 0.5 / static_cast<double>(n), 1e-12);
    EXPECT_EQ(r.n, n);
    EXPECT_GT(r.p_value, 0.99);  // a perfectly calibrated sample
  }
}

TEST(Gof, KsOneSampleDetectsLocationShift) {
  Rng rng(7);
  std::vector<double> shifted(2000);
  for (auto& x : shifted) x = rng.Normal(0.3, 1.0);
  const auto r = validate::KsOneSample(shifted, NormalCdf);
  EXPECT_GT(r.statistic, 0.08);
  EXPECT_LT(r.p_value, 0.01);

  std::vector<double> centered(2000);
  for (auto& x : centered) x = rng.Normal(0.0, 1.0);
  const auto ok = validate::KsOneSample(centered, NormalCdf);
  EXPECT_LT(ok.statistic, 0.04);
  EXPECT_GT(ok.p_value, 0.05);
}

TEST(Gof, KsTwoSampleZeroOnIdenticalAndOneOnDisjoint) {
  Rng rng(11);
  std::vector<double> a(500);
  for (auto& x : a) x = rng.Uniform(0.0, 1.0);
  const auto same = validate::KsTwoSample(a, a);
  EXPECT_DOUBLE_EQ(same.statistic, 0.0);
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);

  std::vector<double> b(500);
  for (auto& x : b) x = rng.Uniform(10.0, 11.0);
  const auto disjoint = validate::KsTwoSample(a, b);
  EXPECT_DOUBLE_EQ(disjoint.statistic, 1.0);
  EXPECT_LT(disjoint.p_value, 1e-12);
}

TEST(Gof, AndersonDarlingCalibratedVsShifted) {
  Rng rng(13);
  std::vector<double> good(2000);
  for (auto& x : good) x = rng.Normal(0.0, 1.0);
  const auto ok = validate::AndersonDarling(good, NormalCdf);
  // A²/n → A² under the null stays O(1); 2.492 is the 5% point.
  EXPECT_LT(ok.statistic, 2.492);
  EXPECT_GT(ok.p_value, 0.05);

  std::vector<double> bad(2000);
  for (auto& x : bad) x = rng.Normal(0.4, 1.0);
  const auto shifted = validate::AndersonDarling(bad, NormalCdf);
  EXPECT_GT(shifted.statistic, 10.0);
  EXPECT_LT(shifted.p_value, 1e-6);
}

TEST(Gof, ChiSquareCountsExactAndSkewed) {
  // Counts exactly proportional to the expectation: statistic 0, p = 1.
  const std::vector<std::uint64_t> exact = {682, 299, 19};
  const std::vector<double> probs = {0.682, 0.299, 0.019};
  const auto clean = ChiSquareCounts(exact, probs);
  EXPECT_NEAR(clean.statistic, 0.0, 1e-9);
  EXPECT_NEAR(clean.p_value, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(clean.dof, 2.0);

  // A 50/50 split against the paper's 68/30/2: χ²/n far above any gate.
  const std::vector<std::uint64_t> skewed = {500, 500, 0};
  const auto bad = ChiSquareCounts(skewed, probs);
  EXPECT_GT(bad.statistic / 1000.0, 0.1);
  EXPECT_LT(bad.p_value, 1e-12);
}

TEST(Gof, ChiSquareQuantileMatchesTables) {
  // χ²₂(0.05) = 5.991, χ²₃(0.05) = 7.815.
  EXPECT_NEAR(ChiSquareQuantile(0.05, 2), 5.991, 5e-3);
  EXPECT_NEAR(ChiSquareQuantile(0.05, 3), 7.815, 5e-3);
}

// ---------------------------------------------------------------------------
// Tolerance policies
// ---------------------------------------------------------------------------

TEST(Tolerance, BandsShrinkWithSampleSizeTowardSlack) {
  const validate::SharePolicy share{0.05};
  EXPECT_GT(share.Band(0.5, 100), share.Band(0.5, 10'000));
  EXPECT_NEAR(share.Band(0.5, 100'000'000), 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(share.Band(0.5, 0), 1.0);  // no sample: never reject

  EXPECT_GT(validate::KsBand(0.0, 100), validate::KsBand(0.0, 10'000));
  EXPECT_NEAR(validate::KsBand(0.02, 100'000'000), 0.02, 1e-3);
  EXPECT_DOUBLE_EQ(validate::KsBand(0.02, 0), 1.0);

  const double q = ChiSquareQuantile(validate::kPerCheckAlpha, 2);
  EXPECT_GT(validate::ChiSquarePerSampleBand(0.0, q, 100),
            validate::ChiSquarePerSampleBand(0.0, q, 10'000));
  EXPECT_NEAR(validate::ChiSquarePerSampleBand(6e-3, q, 100'000'000), 6e-3,
              1e-5);
}

TEST(Tolerance, DkwBandCoversCalibratedSamples) {
  // A perfectly calibrated uniform sample stays inside the α=1e-3 DKW band
  // on every seed (expected failures over 50 seeds: 0.05).
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    std::vector<double> s(2000);
    for (auto& x : s) x = rng.Uniform(0.0, 1.0);
    const auto r = validate::KsOneSample(s, [](double x) { return x; });
    EXPECT_LT(r.statistic, validate::KsBand(0.0, s.size())) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// FigureCheck registry: golden run and negative control
// ---------------------------------------------------------------------------

TEST(Registry, CoversEveryReproducedFigureWithUniqueIds) {
  const auto& checks = validate::FigureChecks();
  EXPECT_GE(checks.size(), 14u);
  std::set<std::string> ids;
  for (const auto& c : checks) {
    EXPECT_TRUE(ids.insert(c.id).second) << "duplicate id " << c.id;
    EXPECT_FALSE(c.figure.empty()) << c.id;
    EXPECT_FALSE(c.what.empty()) << c.id;
    EXPECT_TRUE(c.run != nullptr) << c.id;
  }
  // The headline anchors of the paper must all be present.
  for (const char* id :
       {"fig01_workload", "fig02_session_split", "fig04_burstiness",
        "tab02_store_sizes", "fig10_store_activity", "fig12_chunk_time",
        "fig16_idle_dissection", "tab03_user_types", "tab04_summary"}) {
    EXPECT_TRUE(ids.count(id)) << "missing " << id;
  }
}

/// The golden fixture: the standard validation scale (20k mobile users,
/// seed 42 — the same configuration the CI validate job runs), built once
/// and shared by the golden and negative-control tests.
const validate::ValidationInputs& GoldenInputs() {
  static const validate::ValidationInputs inputs =
      validate::BuildValidationInputs(validate::ValidateOptions{});
  return inputs;
}

TEST(Golden, AllFigureChecksPassAtStandardScale) {
  const auto outcomes = validate::EvaluateChecks(GoldenInputs());
  ASSERT_GE(outcomes.size(), 14u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.passed) << o.id << ": " << o.result.metric << " "
                          << o.result.statistic << " > " << o.result.threshold
                          << " (" << o.result.detail << ")";
    EXPECT_GE(o.wall_s, 0.0) << o.id;
    // Statistical gates need a positive band; structural gates count
    // violations against a hard threshold of zero.
    if (o.result.metric != "violations") {
      EXPECT_GT(o.result.threshold, 0.0) << o.id << ": vacuous gate";
    }
  }
}

TEST(Golden, MiscalibratedSessionSplitFailsExactlyFig02) {
  // Simulate a generator that lost the store-only bias: force the session
  // split to 50/50. Exactly the Fig 2 gate must trip — every other check
  // reads different report fields, so the registry localizes the fault.
  validate::ValidationInputs bad = GoldenInputs();
  auto& s = bad.report.session_split;
  ASSERT_GT(s.total, 0u);
  s.store_only = s.total / 2;
  s.retrieve_only = s.total - s.store_only;
  s.mixed = 0;

  const auto outcomes = validate::EvaluateChecks(bad);
  std::vector<std::string> failed;
  for (const auto& o : outcomes)
    if (!o.passed) failed.push_back(o.id);
  ASSERT_EQ(failed.size(), 1u)
      << "expected exactly one failure, got "
      << std::accumulate(failed.begin(), failed.end(), std::string(),
                         [](std::string acc, const std::string& id) {
                           return acc.empty() ? id : acc + ", " + id;
                         });
  EXPECT_EQ(failed[0], "fig02_session_split");
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST(Manifest, JsonCarriesVerdictsAndPerCheckWallTimes) {
  validate::ValidationRun run;
  run.options = validate::ValidateOptions{};
  run.outcomes = validate::EvaluateChecks(GoldenInputs());
  run.generate_s = 1.0;
  run.analyze_s = 0.5;
  run.fleet_s = 0.25;
  run.checks_s = 0.1;
  run.total_s = 1.85;

  const std::string json = validate::ToJson(run);
  EXPECT_NE(json.find("\"users\": 20000"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"all_passed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"timings_s\""), std::string::npos);
  EXPECT_NE(json.find("\"fig02_session_split\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_s\""), std::string::npos);
  // One result object per registered check, each with a recorded wall time.
  std::size_t wall_fields = 0;
  for (std::size_t p = json.find("\"wall_s\""); p != std::string::npos;
       p = json.find("\"wall_s\"", p + 1))
    ++wall_fields;
  EXPECT_EQ(wall_fields, run.outcomes.size());

  const std::string text = validate::RenderText(run);
  EXPECT_NE(text.find("fig02_session_split"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

TEST(Manifest, FingerprintIdenticalAcrossThreadCounts) {
  // The CI fleet-determinism job in miniature: a full validation run at
  // --threads 1 and --threads 4 must produce the same manifest fingerprint
  // (and the same sharded-fleet fingerprint), because the shard count — not
  // the thread count — is the unit of decomposition. Small scale keeps the
  // double generation cheap; the fingerprint covers every check statistic,
  // so any thread-dependent divergence anywhere in the pipeline trips it.
  validate::ValidateOptions opts;
  opts.users = 400;
  opts.fleet_flows = 300;
  opts.threads = 1;
  const validate::ValidationRun serial = validate::RunValidation(opts);
  opts.threads = 4;
  const validate::ValidationRun parallel = validate::RunValidation(opts);

  EXPECT_NE(serial.fleet_fingerprint, 0u);
  EXPECT_EQ(serial.fleet_fingerprint, parallel.fleet_fingerprint);
  EXPECT_EQ(validate::ManifestFingerprint(serial),
            validate::ManifestFingerprint(parallel));
  ASSERT_EQ(serial.fleet_shards.size(), opts.fleet_shards);
  // The fingerprint must ignore wall clocks: zeroing them changes nothing.
  validate::ValidationRun scrubbed = serial;
  scrubbed.generate_s = scrubbed.analyze_s = scrubbed.fleet_s = 0;
  scrubbed.total_s = 0;
  for (auto& t : scrubbed.fleet_shards) t.wall_s = 0;
  EXPECT_EQ(validate::ManifestFingerprint(scrubbed),
            validate::ManifestFingerprint(serial));
}

TEST(Manifest, RunIsDeterministicInSeed) {
  // The manifest is a regression anchor: two builds of the same options
  // must produce identical statistics. (Thread count must not matter —
  // BuildValidationInputs documents that — but re-running the full 20k
  // generation twice here would double the suite's cost, so determinism
  // across thread counts is owned by test_core's engine-equivalence tests;
  // this gate re-checks the evaluated outcomes instead.)
  const auto a = validate::EvaluateChecks(GoldenInputs());
  const auto b = validate::EvaluateChecks(GoldenInputs());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].result.statistic, b[i].result.statistic);
    EXPECT_DOUBLE_EQ(a[i].result.threshold, b[i].result.threshold);
    EXPECT_EQ(a[i].passed, b[i].passed);
  }
}

}  // namespace
}  // namespace mcloud
