// Tests for the sharded parallel fleet executor: the determinism contract
// (output byte-identical at every thread count, because the shard count —
// not the thread count — is the unit of decomposition), the single-shard
// passthrough, and the canonical order of the merged result.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cloud/fleet.h"
#include "cloud/storage_service.h"
#include "util/rng.h"
#include "util/timeutil.h"
#include "util/units.h"
#include "workload/session_plan.h"

namespace mcloud::cloud {
namespace {

/// Fixed mixed-direction fleet, spread over enough users that every shard
/// of an 8-way split is populated. Mirrors test_fault's ServicePlans but
/// with its own shape so the two fixtures drift independently.
std::vector<workload::SessionPlan> FleetFixture(int sessions = 240,
                                                int users = 60) {
  std::vector<workload::SessionPlan> plans;
  Rng rng(7117);
  for (int i = 0; i < sessions; ++i) {
    workload::SessionPlan s;
    s.user_id = static_cast<std::uint64_t>(i % users + 1);
    s.device_id = s.user_id + 500;
    s.device_type = (i % 3 == 0)   ? DeviceType::kIos
                    : (i % 8 == 0) ? DeviceType::kPc
                                   : DeviceType::kAndroid;
    s.start = kTraceStart + static_cast<UnixSeconds>((i % 50) * 60);
    workload::FileOp op;
    op.direction = (i % 2 == 0) ? Direction::kStore : Direction::kRetrieve;
    op.size = FromMB(0.2 + 2.5 * rng.Uniform());
    s.ops.push_back(op);
    if (i % 6 == 0) {
      workload::FileOp op2;
      op2.direction = Direction::kStore;
      op2.size = FromMB(0.5 + 1.5 * rng.Uniform());
      op2.offset = 15.0;
      s.ops.push_back(op2);
    }
    plans.push_back(s);
  }
  return plans;
}

TEST(ShardOfFn, DeterministicAndInRange) {
  for (std::uint64_t uid = 1; uid <= 1000; ++uid) {
    const std::uint32_t s = ShardOf(uid, 8);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, ShardOf(uid, 8));  // pure function of (uid, shards)
  }
  // The hash decorrelates from sequential id assignment: all 8 shards of a
  // 60-user population are populated.
  std::vector<int> counts(8, 0);
  for (std::uint64_t uid = 1; uid <= 60; ++uid) ++counts[ShardOf(uid, 8)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(FleetGolden, ByteIdenticalAcrossThreadCounts) {
  const auto plans = FleetFixture();
  std::uint64_t first_fp = 0;
  std::vector<ShardTelemetry> first_shards;
  for (const int threads : {1, 4, 0 /* hardware */}) {
    FleetConfig cfg;
    cfg.shards = 8;
    cfg.threads = threads;
    const FleetResult fleet = ExecuteFleet(cfg, plans);
    const std::uint64_t fp = FingerprintServiceResult(fleet.result);
    if (first_fp == 0) {
      first_fp = fp;
      first_shards = fleet.shards;
      continue;
    }
    EXPECT_EQ(fp, first_fp) << "threads=" << threads;
    // Telemetry (minus wall clock) is part of the deterministic surface.
    ASSERT_EQ(fleet.shards.size(), first_shards.size());
    for (std::size_t s = 0; s < fleet.shards.size(); ++s) {
      EXPECT_EQ(fleet.shards[s].sessions, first_shards[s].sessions);
      EXPECT_EQ(fleet.shards[s].queue.scheduled,
                first_shards[s].queue.scheduled);
      EXPECT_EQ(fleet.shards[s].queue.executed,
                first_shards[s].queue.executed);
      EXPECT_EQ(fleet.shards[s].queue.cancelled,
                first_shards[s].queue.cancelled);
      EXPECT_EQ(fleet.shards[s].queue.peak_pending,
                first_shards[s].queue.peak_pending);
    }
  }
  ASSERT_NE(first_fp, 0u);
}

TEST(FleetGolden, FaultModeByteIdenticalAcrossThreadCounts) {
  // Per-shard fault schedules derive from shard-salted seeds, so the fault
  // timeline is part of the deterministic surface too.
  const auto plans = FleetFixture();
  FleetConfig cfg;
  cfg.shards = 8;
  cfg.service.faults.frontend_fail_rate = 0.05;
  cfg.service.faults.degraded_rate = 0.10;
  cfg.service.faults.loss_burst_rate = 0.05;
  ASSERT_TRUE(cfg.service.faults.Any());

  cfg.threads = 1;
  const FleetResult serial = ExecuteFleet(cfg, plans);
  cfg.threads = 4;
  const FleetResult parallel = ExecuteFleet(cfg, plans);
  EXPECT_EQ(FingerprintServiceResult(serial.result),
            FingerprintServiceResult(parallel.result));
  EXPECT_GT(serial.result.faults.chunk_attempts,
            serial.result.faults.goodput_bytes > 0 ? 0u : 1u);
}

TEST(FleetPassthrough, SingleShardMatchesPlainExecute) {
  const auto plans = FleetFixture();
  FleetConfig cfg;
  cfg.shards = 1;
  cfg.threads = 4;  // must not matter: one shard is inherently serial
  const FleetResult fleet = ExecuteFleet(cfg, plans);

  StorageService service(cfg.service);
  const ServiceResult plain = service.Execute(plans);
  EXPECT_EQ(FingerprintServiceResult(fleet.result),
            FingerprintServiceResult(plain));
  ASSERT_EQ(fleet.shards.size(), 1u);
  EXPECT_EQ(fleet.shards[0].sessions, plans.size());
  EXPECT_EQ(fleet.shards[0].queue.executed, plain.queue.executed);
}

TEST(FleetMerge, CanonicalOrderInvariants) {
  const auto plans = FleetFixture();
  FleetConfig cfg;
  cfg.shards = 8;
  const FleetResult fleet = ExecuteFleet(cfg, plans);
  const ServiceResult& r = fleet.result;

  // Every session came back, in canonical (start-stable) order.
  ASSERT_EQ(r.session_outcomes.size(), plans.size());
  for (std::size_t i = 1; i < r.session_outcomes.size(); ++i)
    EXPECT_LE(r.session_outcomes[i - 1].start, r.session_outcomes[i].start);
  EXPECT_EQ(r.faults.sessions, plans.size());

  // Chunk groups follow the same canonical order, with session_seq rewritten
  // to the global rank.
  for (std::size_t i = 1; i < r.chunk_perf.size(); ++i)
    EXPECT_LE(r.chunk_perf[i - 1].session_seq, r.chunk_perf[i].session_seq);
  if (!r.chunk_perf.empty()) {
    EXPECT_LT(r.chunk_perf.back().session_seq, r.session_outcomes.size());
  }

  // Logs and retrievals are globally time-sorted.
  EXPECT_TRUE(std::is_sorted(r.logs.begin(), r.logs.end(),
                             [](const LogRecord& a, const LogRecord& b) {
                               return a.timestamp < b.timestamp;
                             }));
  EXPECT_TRUE(std::is_sorted(r.retrievals.begin(), r.retrievals.end(),
                             [](const RetrievalEvent& a,
                                const RetrievalEvent& b) {
                               return a.at < b.at;
                             }));

  // Aggregates survived the merge.
  std::uint64_t fe_file_ops = 0;
  for (const FrontEndStats& fe : r.front_ends)
    fe_file_ops += fe.file_operations;
  EXPECT_GT(fe_file_ops, 0u);
  EXPECT_GT(r.flows, 0u);
  EXPECT_EQ(r.queue.executed, r.queue.scheduled - r.queue.cancelled);

  // Shard telemetry covers the whole fleet exactly once.
  std::uint64_t shard_sessions = 0;
  for (const ShardTelemetry& t : fleet.shards) shard_sessions += t.sessions;
  EXPECT_EQ(shard_sessions, plans.size());
}

TEST(FleetMerge, EmptyFleetIsWellFormed) {
  FleetConfig cfg;
  cfg.shards = 8;
  const FleetResult fleet = ExecuteFleet(cfg, {});
  EXPECT_TRUE(fleet.result.logs.empty());
  EXPECT_TRUE(fleet.result.session_outcomes.empty());
  EXPECT_EQ(fleet.result.front_ends.size(), cfg.service.front_ends);
  EXPECT_EQ(fleet.shards.size(), cfg.shards);
}

}  // namespace
}  // namespace mcloud::cloud
