// Matrix-runner tests (DESIGN.md §13): the what-if sweep is byte-identical
// at every thread count, the axis presets reject unknown names, a one-cell
// smoke stays inside the ctest budget, and every shipped spec passes its
// own declared targets (self-conformance) at the 4k-user test scale.
#include <gtest/gtest.h>

#include <string>

#include "scenario/conformance.h"
#include "scenario/matrix.h"
#include "scenario/workload_spec.h"
#include "util/error.h"

namespace mcloud {
namespace {

scenario::MatrixReport ZeroWallClock(scenario::MatrixReport r) {
  for (auto& cell : r.cells) cell.wall_s = 0;
  return r;
}

TEST(Matrix, ReportIsByteIdenticalAcrossThreadCounts) {
  scenario::MatrixOptions opts;
  opts.specs = {"paper2016", "flash-crowd-restore"};
  opts.faults = {"none", "frontend-flaky"};
  opts.connections = {"baseline", "no-ssai"};
  opts.users = 400;  // small fleet: 8 cells must fit the ctest budget
  opts.threads = 1;
  const auto one = ZeroWallClock(scenario::RunMatrix(opts));
  opts.threads = 4;
  const auto four = ZeroWallClock(scenario::RunMatrix(opts));

  ASSERT_EQ(one.cells.size(), 8u);
  EXPECT_EQ(one.fingerprint, four.fingerprint);
  // Golden: with the (unfingerprinted) wall clocks zeroed, the whole JSON
  // report is byte-identical — the property the CI matrix-smoke job diffs.
  EXPECT_EQ(scenario::ToJson(one), scenario::ToJson(four));
}

TEST(Matrix, CellsVaryWhereTheyShould) {
  scenario::MatrixOptions opts;
  opts.specs = {"paper2016"};
  opts.faults = {"none", "frontend-flaky"};
  opts.connections = {"baseline", "no-ssai"};
  opts.users = 400;
  const auto report = scenario::RunMatrix(opts);
  ASSERT_EQ(report.cells.size(), 4u);
  // Same spec → same session plans in every cell.
  for (const auto& cell : report.cells)
    EXPECT_EQ(cell.sessions, report.cells[0].sessions);
  // SSAI off removes every slow-start restart; baseline has many.
  const auto& baseline = report.cells[0];
  const auto& no_ssai = report.cells[1];
  EXPECT_GT(baseline.slow_start_restarts, 0u);
  EXPECT_EQ(no_ssai.slow_start_restarts, 0u);
  EXPECT_LT(no_ssai.median_ttran_s, baseline.median_ttran_s);
  // Fault injection hurts availability but retries keep most sessions.
  const auto& flaky = report.cells[2];
  EXPECT_GT(flaky.wasted_mb, baseline.wasted_mb);
  EXPECT_GE(baseline.session_success_rate, flaky.session_success_rate);
  EXPECT_GT(flaky.session_success_rate, 0.95);
}

TEST(Matrix, OneCellSmoke) {
  scenario::MatrixOptions opts;
  opts.specs = {"photo-backup-heavy"};
  opts.faults = {"lossy-cell"};
  opts.connections = {"paced"};
  opts.chunk_policies = {"chunk2m"};
  opts.users = 200;
  const auto report = scenario::RunMatrix(opts);
  ASSERT_EQ(report.cells.size(), 1u);
  const auto& cell = report.cells[0];
  EXPECT_EQ(cell.spec, "photo-backup-heavy");
  EXPECT_GT(cell.sessions, 0u);
  EXPECT_GT(cell.ops, 0u);
  EXPECT_GT(cell.goodput_mb, 0.0);
  EXPECT_NE(cell.fingerprint, 0u);
  const std::string json = scenario::ToJson(report);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("lossy-cell"), std::string::npos);
}

TEST(Matrix, UnknownAxisNamesAreRejectedUpFront) {
  EXPECT_THROW((void)scenario::FaultGrid("frontend-flakey"), Error);
  cloud::ServiceConfig cfg;
  EXPECT_THROW(scenario::ApplyConnectionStrategy(cfg, "nossai"), Error);
  EXPECT_THROW(scenario::ApplyChunkPolicy(cfg, "huge"), Error);
  scenario::MatrixOptions opts;
  opts.specs = {"paper2016"};
  opts.faults = {"none", "frontend-flakey"};
  opts.users = 100;
  EXPECT_THROW((void)scenario::RunMatrix(opts), Error);
}

// Self-conformance: every spec shipped in specs/ passes its own declared
// [targets] at the 4k-user test scale. This is the suite-level guarantee
// that a contributed spec's promises actually hold.
TEST(Conformance, EveryShippedSpecPassesItsOwnTargets) {
  const auto names = scenario::ListSpecs();
  ASSERT_GE(names.size(), 4u);
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    const scenario::WorkloadSpec spec = scenario::LoadSpec(name);
    EXPECT_FALSE(spec.targets.store_share == std::nullopt &&
                 spec.targets.retrieve_share == std::nullopt)
        << "shipped specs must declare session-mix targets";
    scenario::ConformanceOptions opts;
    opts.users_override = 4000;
    const scenario::ConformanceRun run = scenario::RunConformance(spec, opts);
    EXPECT_GE(run.outcomes.size(), 5u);
    EXPECT_TRUE(run.AllPassed()) << scenario::RenderText(run);
  }
}

}  // namespace
}  // namespace mcloud
