// Tests for the LRU byte cache (the §3.1.4 web-cache-proxy what-if).
#include "cloud/cache.h"

#include <gtest/gtest.h>

#include "cloud/storage_service.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace mcloud::cloud {
namespace {

Md5Digest Key(int i) { return Md5::Hash("object-" + std::to_string(i)); }

TEST(LruByteCache, HitAfterAdmission) {
  LruByteCache cache(1000);
  EXPECT_FALSE(cache.Access(Key(1), 100));  // miss, admitted
  EXPECT_TRUE(cache.Access(Key(1), 100));   // hit
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.used(), 100u);
  EXPECT_EQ(cache.ObjectCount(), 1u);
}

TEST(LruByteCache, EvictsLeastRecentlyUsed) {
  LruByteCache cache(300);
  cache.Access(Key(1), 100);
  cache.Access(Key(2), 100);
  cache.Access(Key(3), 100);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Access(Key(1), 100));
  cache.Access(Key(4), 100);  // evicts 2
  EXPECT_TRUE(cache.Contains(Key(1)));
  EXPECT_FALSE(cache.Contains(Key(2)));
  EXPECT_TRUE(cache.Contains(Key(3)));
  EXPECT_TRUE(cache.Contains(Key(4)));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruByteCache, CapacityNeverExceeded) {
  LruByteCache cache(250);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    cache.Access(Key(static_cast<int>(rng.UniformInt(50))),
                 20 + rng.UniformInt(60));
    ASSERT_LE(cache.used(), cache.capacity());
  }
}

TEST(LruByteCache, OversizedObjectsBypass) {
  LruByteCache cache(100);
  EXPECT_FALSE(cache.Access(Key(1), 500));  // too big to admit
  EXPECT_FALSE(cache.Contains(Key(1)));
  EXPECT_EQ(cache.used(), 0u);
  EXPECT_FALSE(cache.Access(Key(1), 500));  // still a miss
}

TEST(LruByteCache, ByteHitRatioAccounting) {
  LruByteCache cache(1000);
  cache.Access(Key(1), 400);  // miss
  cache.Access(Key(1), 400);  // hit
  cache.Access(Key(2), 200);  // miss
  const auto& s = cache.stats();
  EXPECT_EQ(s.bytes_requested, 1000u);
  EXPECT_EQ(s.bytes_hit, 400u);
  EXPECT_NEAR(s.ByteHitRatio(), 0.4, 1e-12);
  EXPECT_NEAR(s.HitRatio(), 1.0 / 3.0, 1e-12);
}

TEST(LruByteCache, RejectsInvalidArgs) {
  EXPECT_THROW(LruByteCache{0}, Error);
  LruByteCache cache(100);
  EXPECT_THROW(cache.Access(Key(1), 0), Error);
}

TEST(LruByteCache, ZipfStreamHitRatioGrowsWithCapacity) {
  // A Zipf-popular stream through growing caches: hit ratio must be
  // monotone in capacity (property the cache-sizing bench relies on).
  Rng rng(7);
  const Zipf zipf(200, 1.0);
  std::vector<std::pair<Md5Digest, Bytes>> stream;
  for (int i = 0; i < 20000; ++i) {
    const auto k = static_cast<int>(zipf.Sample(rng));
    stream.emplace_back(Key(k), 50 + 13 * static_cast<Bytes>(k));
  }
  double prev = -1;
  for (Bytes cap : {1000u, 4000u, 16000u, 64000u}) {
    LruByteCache cache(cap);
    for (const auto& [k, size] : stream) cache.Access(k, size);
    EXPECT_GE(cache.stats().HitRatio(), prev);
    prev = cache.stats().HitRatio();
  }
  EXPECT_GT(prev, 0.5);  // a big cache captures the Zipf head
}

TEST(StorageServiceRetrievals, StreamRecorded) {
  ServiceConfig cfg;
  cfg.shared_content_prob = 1.0;
  StorageService service(cfg);
  std::vector<workload::SessionPlan> plans;
  for (int i = 0; i < 20; ++i) {
    workload::SessionPlan s;
    s.user_id = static_cast<std::uint64_t>(i + 1);
    s.device_id = s.user_id;
    s.device_type = DeviceType::kAndroid;
    s.start = 1438560000 + i * 100;
    workload::FileOp op;
    op.direction = Direction::kRetrieve;
    op.size = kMiB;
    s.ops.push_back(op);
    plans.push_back(s);
  }
  const auto result = service.Execute(plans);
  ASSERT_EQ(result.retrievals.size(), 20u);
  for (const auto& r : result.retrievals) {
    EXPECT_TRUE(r.shared);
    EXPECT_GT(r.size, 0u);
  }
  // Chronological order.
  for (std::size_t i = 1; i < result.retrievals.size(); ++i)
    EXPECT_LE(result.retrievals[i - 1].at, result.retrievals[i].at);
}

}  // namespace
}  // namespace mcloud::cloud
