// The streaming-sketch contracts behind the online analysis engine
// (DESIGN.md §12): TDigest determinism under fixed ingestion + merge order,
// quantile accuracy against exact CDFs, LogBins order-independent merging,
// StreamingMoments merge correctness, and the grouped GoF statistics
// matching their raw counterparts exactly on tied data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "stats/tdigest.h"
#include "util/rng.h"
#include "validate/gof.h"

namespace mcloud {
namespace {

std::vector<double> UniformSample(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.Uniform(0.0, 1.0));
  return xs;
}

bool SameCentroids(const TDigest& a, const TDigest& b) {
  const auto ca = a.CanonicalCentroids();
  const auto cb = b.CanonicalCentroids();
  if (ca.size() != cb.size()) return false;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (ca[i].mean != cb[i].mean || ca[i].weight != cb[i].weight) {
      return false;
    }
  }
  return true;
}

TEST(TDigest, EmptyDigest) {
  const TDigest d;
  EXPECT_EQ(d.Count(), 0u);
  EXPECT_EQ(d.Quantile(0.5), 0.0);
  EXPECT_TRUE(d.CanonicalCentroids().empty());
}

TEST(TDigest, SameIngestionOrderIsByteIdentical) {
  const std::vector<double> xs = UniformSample(20'000, 11);
  TDigest a;
  TDigest b;
  for (double x : xs) {
    a.Add(x);
    b.Add(x);
  }
  EXPECT_EQ(a.Count(), xs.size());
  EXPECT_TRUE(SameCentroids(a, b));
  EXPECT_EQ(a.Quantile(0.5), b.Quantile(0.5));
}

TEST(TDigest, QueriesNeverPerturbState) {
  // The determinism contract: interleaving quantile/CDF reads with
  // ingestion must not change the final centroid state, because queries
  // operate on a temporary canonical copy.
  const std::vector<double> xs = UniformSample(10'000, 3);
  TDigest quiet;
  TDigest queried;
  double sink = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    quiet.Add(xs[i]);
    queried.Add(xs[i]);
    if (i % 37 == 0) {
      sink += queried.Quantile(0.9) + queried.Cdf(0.5);
    }
  }
  EXPECT_TRUE(SameCentroids(quiet, queried)) << "query-order dependence";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(TDigest, ShardedMergeIsDeterministic) {
  // Production shards contiguously and merges in ascending shard order;
  // repeating the identical shard+merge sequence must reproduce the digest
  // byte-for-byte.
  const std::vector<double> xs = UniformSample(30'000, 7);
  const auto Build = [&xs](std::size_t shards) {
    std::vector<TDigest> parts(shards);
    const std::size_t per = xs.size() / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t lo = s * per;
      const std::size_t hi = s + 1 == shards ? xs.size() : lo + per;
      for (std::size_t i = lo; i < hi; ++i) parts[s].Add(xs[i]);
    }
    TDigest merged;
    for (const TDigest& p : parts) merged.Merge(p);
    return merged;
  };
  for (const std::size_t shards : {1u, 4u, 9u}) {
    const TDigest once = Build(shards);
    const TDigest twice = Build(shards);
    EXPECT_EQ(once.Count(), xs.size());
    EXPECT_TRUE(SameCentroids(once, twice)) << "shards=" << shards;
  }
}

TEST(TDigest, QuantileAccuracyUniform) {
  const std::size_t n = 200'000;
  const std::vector<double> xs = UniformSample(n, 19);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (const std::size_t shards : {1u, 8u}) {
    std::vector<TDigest> parts(shards);
    for (std::size_t i = 0; i < n; ++i) {
      parts[i / ((n + shards - 1) / shards)].Add(xs[i]);
    }
    TDigest d;
    for (const TDigest& p : parts) d.Merge(p);
    for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
      const double exact =
          sorted[static_cast<std::size_t>(q * static_cast<double>(n - 1))];
      // ~1e-3 absolute quantile error at compression 200 (tdigest.h); the
      // empirical sample itself wanders O(1/sqrt(n)) from the true CDF.
      EXPECT_NEAR(d.Quantile(q), exact, 5e-3)
          << "q=" << q << " shards=" << shards;
    }
    EXPECT_EQ(d.Quantile(0.0), sorted.front());
    EXPECT_EQ(d.Quantile(1.0), sorted.back());
  }
}

TEST(TDigest, QuantileAccuracyExponential) {
  Rng rng(23);
  const std::size_t n = 200'000;
  TDigest d;
  std::vector<double> sorted;
  sorted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.ExponentialMean(1.0);
    d.Add(x);
    sorted.push_back(x);
  }
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact =
        sorted[static_cast<std::size_t>(q * static_cast<double>(n - 1))];
    // Relative error bound: the exponential's heavy right side stretches
    // absolute gaps near q=0.99 (exact value ~4.6).
    EXPECT_NEAR(d.Quantile(q), exact, 0.02 * std::max(1.0, exact))
        << "q=" << q;
  }
  // CDF inverts Quantile's interpolation scheme to the same accuracy.
  EXPECT_NEAR(d.Cdf(std::log(2.0)), 0.5, 5e-3);
}

TEST(TDigest, WeightedAddCarriesFullWeight) {
  // Add(x, c) must weight x as c samples. Four equal-weight centroids sit
  // at cumulative quantile positions 0.125/0.375/0.625/0.875, where the
  // piecewise-linear Quantile returns the centroid means exactly. (This is
  // *not* byte-equivalent to c repeated unit Adds — those cross buffer-
  // flush boundaries at different points, which the determinism contract
  // explicitly scopes to the exact ingestion sequence.)
  TDigest d;
  const std::vector<double> xs = {0.1, 0.5, 2.0, 7.5};
  for (double x : xs) d.Add(x, 250);
  EXPECT_EQ(d.Count(), 1000u);
  EXPECT_DOUBLE_EQ(d.Min(), 0.1);
  EXPECT_DOUBLE_EQ(d.Max(), 7.5);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(d.Quantile(0.125 + 0.25 * static_cast<double>(i)), xs[i],
                1e-9)
        << i;
  }
  // CDF midpoint between the second and third value groups: 500 of the
  // 1000 samples lie below.
  EXPECT_NEAR(d.Cdf(1.0), 0.5, 0.05);
}

TEST(LogBins, MergeIsOrderIndependent) {
  // Integer values keep every per-bin sum exactly representable, so the
  // shard merge commutes — the property the inter-op interval sketch
  // relies on for --threads invariance.
  Rng rng(31);
  std::vector<LogBins> shards(5, LogBins(-0.35, 6.0, 1016));
  for (int i = 0; i < 50'000; ++i) {
    const double gap = std::floor(rng.Uniform(1.0, 1e6));
    shards[static_cast<std::size_t>(i) % shards.size()].Add(
        gap * (1.0 + 1e-7), gap, 1);
  }
  LogBins forward(-0.35, 6.0, 1016);
  for (const LogBins& s : shards) forward.Merge(s);
  LogBins backward(-0.35, 6.0, 1016);
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    backward.Merge(*it);
  }
  ASSERT_EQ(forward.Total(), backward.Total());
  for (std::size_t b = 0; b < forward.bins(); ++b) {
    EXPECT_EQ(forward.Count(b), backward.Count(b)) << b;
    EXPECT_EQ(forward.Sum(b), backward.Sum(b)) << b;
  }
  EXPECT_EQ(forward.Min(), backward.Min());
  EXPECT_EQ(forward.Max(), backward.Max());
}

TEST(LogBins, ClampsOutOfRangeIntoEdgeBinsWithExactSums) {
  LogBins bins(0.0, 2.0, 4);  // [1, 100) in 4 half-decade bins
  bins.Add(0.5);     // below range -> bin 0
  bins.Add(1e9);     // above range -> last bin
  bins.Add(10.0);    // exactly on an interior edge -> bin 2
  EXPECT_EQ(bins.Total(), 3u);
  EXPECT_EQ(bins.Count(0), 1u);
  EXPECT_DOUBLE_EQ(bins.Mean(0), 0.5);  // sum stays exact despite the clamp
  EXPECT_EQ(bins.Count(3), 1u);
  EXPECT_DOUBLE_EQ(bins.Mean(3), 1e9);
  EXPECT_EQ(bins.Count(2), 1u);
  EXPECT_DOUBLE_EQ(bins.Min(), 0.5);
  EXPECT_DOUBLE_EQ(bins.Max(), 1e9);
}

TEST(StreamingMoments, MergeMatchesSinglePass) {
  Rng rng(41);
  StreamingMoments whole;
  StreamingMoments left;
  StreamingMoments right;
  for (int i = 0; i < 20'000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    const double w = rng.Uniform(0.5, 2.0);
    whole.Add(x, w);
    (i % 2 == 0 ? left : right).Add(x, w);
  }
  StreamingMoments merged = left;
  merged.Merge(right);
  EXPECT_NEAR(merged.WeightSum(), whole.WeightSum(), 1e-9);
  EXPECT_NEAR(merged.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(merged.Variance(), whole.Variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.Min(), whole.Min());
  EXPECT_DOUBLE_EQ(merged.Max(), whole.Max());
  EXPECT_NEAR(whole.Mean(), 3.0, 0.05);
  EXPECT_NEAR(whole.StdDev(), 2.0, 0.05);
}

TEST(GroupedGof, MatchesRawStatisticsOnTiedData) {
  // The grouped KS/AD forms are exact closed forms over (value, count)
  // groups: expanding each group back into `count` raw copies must give
  // the identical statistic, p-value, and n.
  Rng rng(53);
  std::vector<double> values;
  std::vector<std::uint64_t> counts;
  std::vector<double> raw;
  for (int g = 0; g < 40; ++g) {
    const double v = rng.Uniform(0.05, 0.95);
    const auto c = static_cast<std::uint64_t>(1 + (g * 7) % 13);
    values.push_back(v);
    counts.push_back(c);
    for (std::uint64_t i = 0; i < c; ++i) raw.push_back(v);
  }
  const std::function<double(double)> uniform_cdf = [](double x) {
    return std::clamp(x, 0.0, 1.0);
  };
  const validate::GofResult ks_raw = validate::KsOneSample(raw, uniform_cdf);
  const validate::GofResult ks_grouped =
      validate::KsGrouped(values, counts, uniform_cdf);
  EXPECT_EQ(ks_grouped.n, raw.size());
  EXPECT_NEAR(ks_grouped.statistic, ks_raw.statistic, 1e-12);
  EXPECT_NEAR(ks_grouped.p_value, ks_raw.p_value, 1e-12);

  const validate::GofResult ad_raw =
      validate::AndersonDarling(raw, uniform_cdf);
  const validate::GofResult ad_grouped =
      validate::AndersonDarlingGrouped(values, counts, uniform_cdf);
  EXPECT_EQ(ad_grouped.n, raw.size());
  EXPECT_NEAR(ad_grouped.statistic, ad_raw.statistic, 1e-9);
  EXPECT_NEAR(ad_grouped.p_value, ad_raw.p_value, 1e-9);
}

TEST(GroupedGof, SingletonGroupsReproduceRawExactly) {
  Rng rng(61);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.ExponentialMean(1.0));
  const std::function<double(double)> exp_cdf = [](double x) {
    return x <= 0 ? 0.0 : 1.0 - std::exp(-x);
  };
  std::vector<std::uint64_t> ones(sample.size(), 1);
  const validate::GofResult raw = validate::KsOneSample(sample, exp_cdf);
  const validate::GofResult grouped =
      validate::KsGrouped(sample, ones, exp_cdf);
  EXPECT_EQ(grouped.statistic, raw.statistic);
  EXPECT_EQ(grouped.p_value, raw.p_value);
}

}  // namespace
}  // namespace mcloud
