// Tests for the columnar TraceStore and the v2 columnar binary format:
// dense user remapping, run/day indexes, AoS round-trips, selective column
// reads, corrupt-file handling, and golden equivalence of the AoS and
// columnar analysis engines.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "core/pipeline.h"
#include "core/report.h"
#include "trace/log_io.h"
#include "trace/log_record.h"
#include "trace/trace_store.h"
#include "util/timeutil.h"
#include "workload/generator.h"

namespace mcloud {
namespace {

LogRecord MakeRecord(UnixSeconds ts, std::uint64_t user, Direction dir,
                     RequestType type = RequestType::kChunkRequest,
                     DeviceType dev = DeviceType::kAndroid) {
  LogRecord r;
  r.timestamp = ts;
  r.device_type = dev;
  r.device_id = user * 10;
  r.user_id = user;
  r.request_type = type;
  r.direction = dir;
  r.data_volume = type == RequestType::kChunkRequest ? kChunkSize : 0;
  r.processing_time = 1.25;
  r.server_time = 0.1;
  r.avg_rtt = 0.089238;
  r.proxied = false;
  return r;
}

std::filesystem::path TempPath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

/// A small mixed trace: sparse out-of-order user ids, all three device
/// types, both request types, rows spanning three calendar days around
/// kTraceStart (including one before it).
std::vector<LogRecord> MixedTrace() {
  std::vector<LogRecord> t;
  t.push_back(MakeRecord(kTraceStart - kDay / 2, 900, Direction::kStore,
                         RequestType::kFileOperation, DeviceType::kPc));
  t.push_back(MakeRecord(kTraceStart + 10, 7, Direction::kStore,
                         RequestType::kFileOperation));
  t.push_back(MakeRecord(kTraceStart + 20, 900, Direction::kRetrieve));
  t.push_back(MakeRecord(kTraceStart + 30, 42, Direction::kRetrieve,
                         RequestType::kChunkRequest, DeviceType::kIos));
  t.push_back(MakeRecord(kTraceStart + 40, 7, Direction::kStore));
  t.push_back(MakeRecord(kTraceStart + kDay + 5, 7, Direction::kRetrieve,
                         RequestType::kFileOperation, DeviceType::kPc));
  t.push_back(MakeRecord(kTraceStart + kDay + 6, 42, Direction::kStore));
  return t;
}

TEST(TraceStore, DenseRemapIsAscendingOriginalOrder) {
  const auto records = MixedTrace();
  const auto store = TraceStore::FromRecords(records);

  ASSERT_EQ(store.rows(), records.size());
  ASSERT_EQ(store.users(), 3u);
  // Dense ids are assigned in ascending original-id order regardless of
  // first-appearance order (900 appears first).
  EXPECT_EQ(store.user_ids()[0], 7u);
  EXPECT_EQ(store.user_ids()[1], 42u);
  EXPECT_EQ(store.user_ids()[2], 900u);
  for (std::size_t row = 0; row < store.rows(); ++row) {
    EXPECT_EQ(store.user_ids()[store.user_index()[row]],
              records[row].user_id);
  }
}

TEST(TraceStore, UserRunsAreTimeOrderedAndCoverAllRows) {
  const auto records = MixedTrace();
  const auto store = TraceStore::FromRecords(records);

  std::vector<int> visits(store.rows(), 0);
  for (std::size_t u = 0; u < store.users(); ++u) {
    const auto run = store.UserRun(u);
    std::int64_t prev = std::numeric_limits<std::int64_t>::min();
    for (const std::uint32_t row : run) {
      EXPECT_EQ(store.user_index()[row], u);
      EXPECT_GE(store.timestamps()[row], prev);
      prev = store.timestamps()[row];
      ++visits[row];
    }
  }
  for (const int v : visits) EXPECT_EQ(v, 1);  // a partition of the rows
}

TEST(TraceStore, DayPartitionsTileTheTraceByCalendarDay) {
  const auto records = MixedTrace();
  const auto store = TraceStore::FromRecords(records);

  const auto parts = store.day_partitions();
  ASSERT_FALSE(parts.empty());
  std::uint32_t next = 0;
  for (const auto& p : parts) {
    EXPECT_EQ(p.begin, next);  // contiguous, in row order
    EXPECT_LT(p.begin, p.end);
    for (std::uint32_t row = p.begin; row < p.end; ++row) {
      const auto day = static_cast<std::int64_t>(
          std::floor(static_cast<double>(store.timestamps()[row] -
                                         store.day_base()) /
                     kDay));
      EXPECT_EQ(day, p.day);
    }
    next = p.end;
  }
  EXPECT_EQ(next, store.rows());
  EXPECT_LT(parts.front().day, 0);  // the pre-epoch row lands in day -1
}

TEST(TraceStore, ToRecordsRoundTripsTheAosTrace) {
  const auto records = MixedTrace();
  EXPECT_EQ(TraceStore::FromRecords(records).ToRecords(), records);
}

TEST(ColumnarIo, RoundTripAllColumns) {
  const auto records = MixedTrace();
  const auto path = TempPath("trace_store_roundtrip.v2");
  WriteColumnarTrace(path, TraceStore::FromRecords(records));

  const auto store = ReadColumnarTrace(path);
  EXPECT_EQ(store.columns_present(), kAllColumns);
  const auto back = store.ToRecords();
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].timestamp, records[i].timestamp);
    EXPECT_EQ(back[i].user_id, records[i].user_id);
    EXPECT_EQ(back[i].device_id, records[i].device_id);
    EXPECT_EQ(back[i].device_type, records[i].device_type);
    EXPECT_EQ(back[i].request_type, records[i].request_type);
    EXPECT_EQ(back[i].direction, records[i].direction);
    EXPECT_EQ(back[i].data_volume, records[i].data_volume);
    EXPECT_EQ(back[i].proxied, records[i].proxied);
    // Times travel as integer microseconds, like the v1 format.
    EXPECT_DOUBLE_EQ(back[i].processing_time, records[i].processing_time);
    EXPECT_DOUBLE_EQ(back[i].server_time, records[i].server_time);
    EXPECT_DOUBLE_EQ(back[i].avg_rtt, records[i].avg_rtt);
  }
  std::filesystem::remove(path);
}

TEST(ColumnarIo, SelectiveReadSkipsColumnsAndZeroFills) {
  const auto records = MixedTrace();
  const auto path = TempPath("trace_store_subset.v2");
  WriteColumnarTrace(path, TraceStore::FromRecords(records));

  const auto store = ReadColumnarTrace(path, kAnalysisColumns);
  EXPECT_TRUE(store.has(kAnalysisColumns));
  EXPECT_FALSE(store.has(kColProcessingTime));
  EXPECT_FALSE(store.has(kColProxied));
  EXPECT_TRUE(store.processing_times().empty());

  // Loaded columns match; absent ones read back as zeros.
  const auto back = store.ToRecords();
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].timestamp, records[i].timestamp);
    EXPECT_EQ(back[i].user_id, records[i].user_id);
    EXPECT_EQ(back[i].device_id, records[i].device_id);
    EXPECT_EQ(back[i].device_type, records[i].device_type);
    EXPECT_EQ(back[i].request_type, records[i].request_type);
    EXPECT_EQ(back[i].direction, records[i].direction);
    EXPECT_EQ(back[i].data_volume, records[i].data_volume);
    EXPECT_EQ(back[i].processing_time, 0.0);
    EXPECT_EQ(back[i].server_time, 0.0);
    EXPECT_EQ(back[i].avg_rtt, 0.0);
    EXPECT_FALSE(back[i].proxied);
  }
  std::filesystem::remove(path);
}

TEST(ColumnarIo, SniffsTheMagic) {
  const auto records = MixedTrace();
  const auto v2 = TempPath("trace_store_sniff.v2");
  const auto v1 = TempPath("trace_store_sniff.v1bin");
  WriteColumnarTrace(v2, TraceStore::FromRecords(records));
  WriteBinaryTrace(v1, records);

  EXPECT_TRUE(IsColumnarTrace(v2));
  EXPECT_FALSE(IsColumnarTrace(v1));
  EXPECT_FALSE(IsColumnarTrace(TempPath("no_such_trace.v2")));

  const auto tiny = TempPath("trace_store_tiny.v2");
  std::ofstream(tiny) << "MC";  // shorter than the magic
  EXPECT_FALSE(IsColumnarTrace(tiny));

  std::filesystem::remove(v2);
  std::filesystem::remove(v1);
  std::filesystem::remove(tiny);
}

TEST(ColumnarIo, RejectsWrongFormatAndTruncation) {
  const auto records = MixedTrace();

  // A v1 file is not a v2 file.
  const auto v1 = TempPath("trace_store_bad.v1bin");
  WriteBinaryTrace(v1, records);
  EXPECT_THROW((void)ReadColumnarTrace(v1), ParseError);
  std::filesystem::remove(v1);

  // Truncation anywhere in the column data is detected up front.
  const auto v2 = TempPath("trace_store_trunc.v2");
  WriteColumnarTrace(v2, TraceStore::FromRecords(records));
  const auto full = std::filesystem::file_size(v2);
  std::filesystem::resize_file(v2, full - 16);
  EXPECT_THROW((void)ReadColumnarTrace(v2), ParseError);
  std::filesystem::resize_file(v2, 4);  // shorter than the header
  EXPECT_THROW((void)ReadColumnarTrace(v2), ParseError);
  std::filesystem::remove(v2);
}

/// Golden equivalence: the columnar engine must reproduce the AoS engine's
/// FullReport bit for bit, whatever the entry point and thread count.
TEST(EngineEquivalence, ColumnarReportIsBitIdenticalToAos) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 200;
  cfg.population.pc_only_users = 60;
  cfg.seed = 7;
  const auto w = workload::WorkloadGenerator(cfg).Generate();
  ASSERT_FALSE(w.trace.empty());

  core::PipelineOptions opts;
  opts.threads = 1;
  const auto golden =
      core::FingerprintReport(core::AnalysisPipeline(opts).RunAos(w.trace));

  for (const int threads : {1, 4}) {
    core::PipelineOptions o;
    o.threads = threads;
    const core::AnalysisPipeline pipeline(o);
    EXPECT_EQ(core::FingerprintReport(pipeline.RunAos(w.trace)), golden);
    EXPECT_EQ(core::FingerprintReport(pipeline.Run(w.trace)), golden);
    const auto store = TraceStore::FromRecords(w.trace);
    EXPECT_EQ(core::FingerprintReport(pipeline.Run(store)), golden);
  }
}

TEST(EngineEquivalence, GenerateColumnarEmitsTheSameTrace) {
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = 120;
  cfg.population.pc_only_users = 40;
  cfg.seed = 9;
  const auto aos = workload::WorkloadGenerator(cfg).Generate();
  const auto columnar = workload::WorkloadGenerator(cfg).GenerateColumnar();

  EXPECT_EQ(columnar.users.size(), aos.users.size());
  EXPECT_EQ(columnar.sessions.size(), aos.sessions.size());
  EXPECT_EQ(columnar.trace.ToRecords(), aos.trace);
}

}  // namespace
}  // namespace mcloud
