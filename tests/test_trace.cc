// Tests for the trace layer: record serialization, CSV/binary IO, filters,
// anonymization, and the CSV tokenizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "trace/anonymizer.h"
#include "trace/filters.h"
#include "trace/log_io.h"
#include "trace/log_record.h"
#include "trace/partitioned_trace.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/timeutil.h"

namespace mcloud {
namespace {

LogRecord MakeRecord(UnixSeconds ts, std::uint64_t user, Direction dir,
                     RequestType type = RequestType::kChunkRequest,
                     DeviceType dev = DeviceType::kAndroid) {
  LogRecord r;
  r.timestamp = ts;
  r.device_type = dev;
  r.device_id = user * 10;
  r.user_id = user;
  r.request_type = type;
  r.direction = dir;
  r.data_volume = type == RequestType::kChunkRequest ? kChunkSize : 0;
  r.processing_time = 1.25;
  r.server_time = 0.1;
  r.avg_rtt = 0.089238;
  r.proxied = false;
  return r;
}

std::filesystem::path TempPath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(LogRecord, EnumStringsRoundTrip) {
  for (auto d : {DeviceType::kAndroid, DeviceType::kIos, DeviceType::kPc}) {
    EXPECT_EQ(DeviceTypeFromString(ToString(d)), d);
  }
  for (auto t : {RequestType::kFileOperation, RequestType::kChunkRequest}) {
    EXPECT_EQ(RequestTypeFromString(ToString(t)), t);
  }
  for (auto d : {Direction::kStore, Direction::kRetrieve}) {
    EXPECT_EQ(DirectionFromString(ToString(d)), d);
  }
  EXPECT_THROW((void)DeviceTypeFromString("blackberry"), ParseError);
  EXPECT_THROW((void)RequestTypeFromString(""), ParseError);
  EXPECT_THROW((void)DirectionFromString("up"), ParseError);
}

TEST(LogRecord, IsMobile) {
  EXPECT_TRUE(MakeRecord(0, 1, Direction::kStore).IsMobile());
  EXPECT_FALSE(MakeRecord(0, 1, Direction::kStore,
                          RequestType::kChunkRequest, DeviceType::kPc)
                   .IsMobile());
}

TEST(Csv, SplitAndJoin) {
  const auto fields = SplitCsvLine("a,b,,d");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(JoinCsvLine({"a", "b", "", "d"}), "a,b,,d");
  EXPECT_THROW((void)JoinCsvLine({"a,b"}), ParseError);
}

TEST(Csv, ParseHelpers) {
  EXPECT_EQ(ParseInt64("-42", "x"), -42);
  EXPECT_EQ(ParseUint64("42", "x"), 42u);
  EXPECT_DOUBLE_EQ(ParseDouble("2.5", "x"), 2.5);
  EXPECT_THROW((void)ParseInt64("4x", "x"), ParseError);
  EXPECT_THROW((void)ParseUint64("-1", "x"), ParseError);
  EXPECT_THROW((void)ParseDouble("", "x"), ParseError);
}

TEST(LogIo, CsvLineRoundTrip) {
  const LogRecord r = MakeRecord(kTraceStart + 5, 7, Direction::kRetrieve);
  const LogRecord back = FromCsvLine(ToCsvLine(r));
  EXPECT_EQ(back, r);
}

TEST(LogIo, CsvLineRejectsBadFieldCount) {
  EXPECT_THROW((void)FromCsvLine("1,2,3"), ParseError);
}

TEST(LogIo, CsvFileRoundTrip) {
  std::vector<LogRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(MakeRecord(kTraceStart + i, i % 7 + 1,
                                 i % 2 ? Direction::kStore
                                       : Direction::kRetrieve));
  }
  const auto path = TempPath("mcloud_test_trace.csv");
  WriteCsvTrace(path, records);
  const auto back = ReadCsvTrace(path);
  EXPECT_EQ(back, records);
  std::filesystem::remove(path);
}

TEST(LogIo, CsvHeaderValidated) {
  const auto path = TempPath("mcloud_bad_header.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not,a,header\n", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)ReadCsvTrace(path), ParseError);
  std::filesystem::remove(path);
}

TEST(LogIo, BinaryFileRoundTrip) {
  std::vector<LogRecord> records;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    LogRecord r = MakeRecord(kTraceStart + i, rng.UniformInt(50) + 1,
                             Direction::kStore);
    r.proxied = rng.Bernoulli(0.1);
    r.avg_rtt = rng.Uniform(0.01, 2.0);
    records.push_back(r);
  }
  const auto path = TempPath("mcloud_test_trace.bin");
  WriteBinaryTrace(path, records);
  const auto back = ReadBinaryTrace(path);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].timestamp, records[i].timestamp);
    EXPECT_EQ(back[i].user_id, records[i].user_id);
    EXPECT_NEAR(back[i].avg_rtt, records[i].avg_rtt, 1e-6);
  }
  std::filesystem::remove(path);
}

TEST(LogIo, BinaryRejectsGarbage) {
  const auto path = TempPath("mcloud_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage!", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)ReadBinaryTrace(path), ParseError);
  std::filesystem::remove(path);
}

TEST(LogIo, ScanStopsEarly) {
  std::vector<LogRecord> records;
  for (int i = 0; i < 50; ++i)
    records.push_back(MakeRecord(kTraceStart + i, 1, Direction::kStore));
  const auto path = TempPath("mcloud_scan.bin");
  WriteBinaryTrace(path, records);
  std::size_t seen = 0;
  const std::size_t visited = ScanBinaryTrace(path, [&](const LogRecord&) {
    ++seen;
    return seen < 10;
  });
  EXPECT_EQ(seen, 10u);
  EXPECT_EQ(visited, 10u);
  std::filesystem::remove(path);
}

TEST(Filters, SliceByDeviceProxyAndType) {
  std::vector<LogRecord> trace;
  trace.push_back(MakeRecord(1, 1, Direction::kStore,
                             RequestType::kFileOperation));
  trace.push_back(MakeRecord(2, 1, Direction::kStore));
  LogRecord pc = MakeRecord(3, 2, Direction::kRetrieve,
                            RequestType::kChunkRequest, DeviceType::kPc);
  trace.push_back(pc);
  LogRecord proxied = MakeRecord(4, 3, Direction::kStore);
  proxied.proxied = true;
  trace.push_back(proxied);

  EXPECT_EQ(MobileOnly(trace).size(), 3u);
  EXPECT_EQ(Unproxied(trace).size(), 3u);
  EXPECT_EQ(ChunksOnly(trace).size(), 3u);
  EXPECT_EQ(FileOperationsOnly(trace).size(), 1u);
  EXPECT_EQ(CountDistinctUsers(trace), 3u);
  EXPECT_EQ(CountDistinctDevices(trace), 3u);
}

TEST(Filters, GroupByUserPreservesOrder) {
  std::vector<LogRecord> trace;
  for (int i = 0; i < 10; ++i)
    trace.push_back(MakeRecord(kTraceStart + i, i % 2 + 1, Direction::kStore));
  const auto groups = GroupByUser(trace);
  ASSERT_EQ(groups.size(), 2u);
  for (const auto& [user, records] : groups) {
    for (std::size_t i = 1; i < records.size(); ++i)
      EXPECT_LT(records[i - 1].timestamp, records[i].timestamp);
  }
}

TEST(Filters, DevicesPerUser) {
  std::vector<LogRecord> trace;
  LogRecord a = MakeRecord(1, 1, Direction::kStore);
  a.device_id = 100;
  LogRecord b = MakeRecord(2, 1, Direction::kStore);
  b.device_id = 101;
  LogRecord c = MakeRecord(3, 1, Direction::kRetrieve,
                           RequestType::kChunkRequest, DeviceType::kPc);
  trace = {a, b, c};
  const auto per_user = DevicesPerUser(trace);
  ASSERT_EQ(per_user.size(), 1u);
  EXPECT_EQ(per_user.at(1).mobile_devices, 2u);
  EXPECT_TRUE(per_user.at(1).uses_pc);
}

TEST(Anonymizer, DeterministicAndKeyDependent) {
  const Anonymizer a("key-1");
  const Anonymizer b("key-2");
  EXPECT_EQ(a.MapId(42), a.MapId(42));
  EXPECT_NE(a.MapId(42), a.MapId(43));
  EXPECT_NE(a.MapId(42), b.MapId(42));
}

TEST(Anonymizer, PreservesJoins) {
  // Two records of the same user must map to the same pseudonym, so joins
  // across traces survive anonymization.
  const Anonymizer anon("secret");
  const LogRecord r1 = MakeRecord(1, 7, Direction::kStore);
  const LogRecord r2 = MakeRecord(2, 7, Direction::kRetrieve);
  const LogRecord a1 = anon.Apply(r1);
  const LogRecord a2 = anon.Apply(r2);
  EXPECT_EQ(a1.user_id, a2.user_id);
  EXPECT_NE(a1.user_id, r1.user_id);
  // Non-ID fields are untouched.
  EXPECT_EQ(a1.timestamp, r1.timestamp);
  EXPECT_EQ(a1.data_volume, r1.data_volume);
}

TEST(Timeutil, DayAndHourIndexing) {
  EXPECT_EQ(DayIndex(kTraceStart), 0);
  EXPECT_EQ(DayIndex(kTraceStart + 86399), 0);
  EXPECT_EQ(DayIndex(kTraceStart + 86400), 1);
  EXPECT_EQ(HourIndex(kTraceStart + 3600 * 30), 30);
  EXPECT_EQ(HourOfDay(kTraceStart + 3600 * 30), 6);
  EXPECT_EQ(DayLabel(0), "Mon");
  EXPECT_EQ(DayLabel(6), "Sun");
  EXPECT_EQ(DayLabel(7), "Mon");
  EXPECT_EQ(TimestampLabel(kTraceStart + kDay + 3661), "Tue 01:01:01");
}

// ------------------------------------------------------- PartitionedTrace

/// Deterministic emission spanning `days` calendar days with heavy
/// timestamp collisions, in generator order (user-major). data_volume is a
/// serial number so merge stability is observable on otherwise-equal keys.
std::vector<LogRecord> MakeEmission(std::size_t n, int days) {
  std::vector<LogRecord> all;
  Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t user = i * 40 / n + 1;  // user-ordered chunks
    const auto ts = kTraceStart +
                    static_cast<UnixSeconds>(rng.UniformInt(
                        static_cast<std::uint64_t>(days) * kDay / 16)) *
                        16;
    LogRecord r = MakeRecord(ts, user, Direction::kStore);
    r.device_type = static_cast<DeviceType>(i % 3);
    r.device_id = user * 10 + i % 2;
    r.data_volume = i;
    all.push_back(r);
  }
  return all;
}

/// Split `all` into `spills` contiguous slices, stable-sort each, and
/// write them as a partitioned trace — exactly the generator's spill
/// discipline.
void WritePartitioned(const std::filesystem::path& dir,
                      std::vector<LogRecord> all, std::size_t spills) {
  std::filesystem::create_directories(dir);
  PartitionedTraceWriter writer(dir, kTraceStart);
  const std::size_t per = (all.size() + spills - 1) / spills;
  for (std::size_t s = 0; s < spills; ++s) {
    const std::size_t begin = std::min(s * per, all.size());
    const std::size_t end = std::min(begin + per, all.size());
    std::stable_sort(all.begin() + static_cast<std::ptrdiff_t>(begin),
                     all.begin() + static_cast<std::ptrdiff_t>(end),
                     LogRecordTimeOrder);
    writer.WriteSortedSlice(
        std::span<const LogRecord>(all.data() + begin, end - begin));
  }
  writer.Finish();
}

TEST(PartitionedTrace, ScanMatchesStableSortOfEmission) {
  const auto dir = TempPath("mcloud_part_roundtrip");
  std::filesystem::remove_all(dir);
  std::vector<LogRecord> all = MakeEmission(18'000, 3);
  WritePartitioned(dir, all, 4);

  const PartitionedTrace trace = PartitionedTrace::Open(dir);
  EXPECT_EQ(trace.rows(), all.size());
  EXPECT_GT(trace.run_count(), 4u);  // every spill split across 3 days

  // Small staging budget: forces several blocks per day and tiny per-run
  // read buffers, which must not change the merged order.
  std::vector<LogRecord> merged;
  std::int64_t last_day = -1;
  trace.Scan(8'192, [&](std::int64_t day, const TraceRowBlock& b) {
    EXPECT_GE(day, last_day);
    last_day = day;
    for (std::size_t i = 0; i < b.rows(); ++i) {
      LogRecord r;
      r.timestamp = b.timestamps[i];
      r.device_type = static_cast<DeviceType>(b.device_types[i]);
      r.device_id = b.device_ids[i];
      r.user_id = trace.user_ids()[b.users[i]];
      r.request_type = static_cast<RequestType>(b.request_types[i]);
      r.direction = static_cast<Direction>(b.directions[i]);
      r.data_volume = b.data_volumes[i];
      merged.push_back(r);
      EXPECT_EQ(day, DayIndex(r.timestamp));
    }
  });

  std::stable_sort(all.begin(), all.end(), LogRecordTimeOrder);
  ASSERT_EQ(merged.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(merged[i].timestamp, all[i].timestamp) << "at " << i;
    EXPECT_EQ(merged[i].user_id, all[i].user_id) << "at " << i;
    EXPECT_EQ(merged[i].device_id, all[i].device_id) << "at " << i;
    // The serial number: proves cross-run ties kept emission order.
    EXPECT_EQ(merged[i].data_volume, all[i].data_volume) << "at " << i;
  }
  std::filesystem::remove_all(dir);
}

std::filesystem::path FirstRunFile(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> runs;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().extension() == ".v2") runs.push_back(e.path());
  std::sort(runs.begin(), runs.end());
  EXPECT_FALSE(runs.empty());
  return runs.front();
}

TEST(PartitionedTrace, OpenRejectsMissingRunFile) {
  const auto dir = TempPath("mcloud_part_missing");
  std::filesystem::remove_all(dir);
  WritePartitioned(dir, MakeEmission(2'000, 2), 2);
  std::filesystem::remove(FirstRunFile(dir));
  EXPECT_THROW((void)PartitionedTrace::Open(dir), ParseError);
  std::filesystem::remove_all(dir);
}

TEST(PartitionedTrace, OpenRejectsTruncatedRunFile) {
  const auto dir = TempPath("mcloud_part_truncated");
  std::filesystem::remove_all(dir);
  WritePartitioned(dir, MakeEmission(2'000, 2), 2);
  const auto run = FirstRunFile(dir);
  // Header and user table intact, column payload short: exactly the
  // failure mode a killed spill leaves behind.
  std::filesystem::resize_file(run, std::filesystem::file_size(run) - 9);
  EXPECT_THROW((void)PartitionedTrace::Open(dir), ParseError);
  std::filesystem::remove_all(dir);
}

TEST(PartitionedTrace, OpenRejectsManifestWithoutEndSentinel) {
  const auto dir = TempPath("mcloud_part_noend");
  std::filesystem::remove_all(dir);
  WritePartitioned(dir, MakeEmission(2'000, 2), 2);
  std::string manifest;
  {
    std::ifstream in(dir / "MANIFEST");
    std::string line;
    while (std::getline(in, line))
      if (line != "end") manifest += line + "\n";
  }
  std::ofstream(dir / "MANIFEST", std::ios::trunc) << manifest;
  EXPECT_THROW((void)PartitionedTrace::Open(dir), ParseError);
  std::filesystem::remove_all(dir);
}

TEST(PartitionedTrace, OpenRejectsRunRowCountMismatch) {
  const auto dir = TempPath("mcloud_part_rows");
  std::filesystem::remove_all(dir);
  WritePartitioned(dir, MakeEmission(2'000, 2), 2);
  std::string manifest;
  {
    std::ifstream in(dir / "MANIFEST");
    std::string line;
    bool bumped = false;
    while (std::getline(in, line)) {
      if (!bumped && line.rfind("run ", 0) == 0) {
        // Bump the row count of the first run entry.
        const auto last_space = line.find_last_of(' ');
        auto prev_space = line.find_last_of(' ', last_space - 1);
        const std::uint64_t rows =
            std::strtoull(line.c_str() + prev_space + 1, nullptr, 10);
        line = line.substr(0, prev_space + 1) + std::to_string(rows + 1) +
               line.substr(last_space);
        bumped = true;
      }
      manifest += line + "\n";
    }
    EXPECT_TRUE(bumped);
  }
  std::ofstream(dir / "MANIFEST", std::ios::trunc) << manifest;
  EXPECT_THROW((void)PartitionedTrace::Open(dir), ParseError);
  std::filesystem::remove_all(dir);
}

TEST(LogIo, V2FileInfoValidatesFullExpectedLength) {
  // Regression: a v2 file whose header and user table parse cleanly but
  // whose column payload is short must fail at ReadV2FileInfo — the
  // single truncation gate every partitioned-run open goes through.
  const auto path = TempPath("mcloud_v2_truncation.v2");
  std::vector<LogRecord> records;
  for (int i = 0; i < 500; ++i)
    records.push_back(MakeRecord(kTraceStart + i, 1 + i % 7,
                                 Direction::kStore));
  WriteColumnarTrace(path, TraceStore::FromRecords(records));

  const detail::V2FileInfo info = detail::ReadV2FileInfo(path);
  EXPECT_EQ(info.rows, 500u);

  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 1);
  EXPECT_THROW((void)detail::ReadV2FileInfo(path), ParseError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mcloud
