// Integration tests: generator faithfulness (re-fitting the paper's models
// to generated data recovers the published parameters) and the mechanistic
// §4 causal chain through the full service stack. These are the validation
// layer described in DESIGN.md §4.
#include <gtest/gtest.h>

#include "analysis/perf_analysis.h"
#include "core/pipeline.h"
#include "model/paper_params.h"
#include "scenario/workload_spec.h"
#include "util/summary.h"
#include "validate/tolerance.h"
#include "workload/generator.h"

namespace mcloud {
namespace {

// One medium-sized workload shared by the faithfulness assertions (building
// it once keeps the suite fast). The population is large enough that the
// heavy-tailed statistics below — the stored/retrieved file ratio most of
// all, which a single stretched-exponential outlier can swing at small n —
// concentrate inside the assertion bands.
const core::FullReport& Report() {
  static const core::FullReport report = [] {
    workload::WorkloadConfig cfg;
    cfg.population.mobile_users = 12000;
    cfg.population.pc_only_users = 3600;
    cfg.seed = 42;
    const auto w = workload::WorkloadGenerator(cfg).Generate();
    return core::AnalysisPipeline().Run(w.trace);
  }();
  return report;
}

TEST(Faithfulness, WorkloadShape) {
  const auto& r = Report();
  // Fig 1: evening surge; retrieval volume above storage volume; stored
  // files at least twice retrieved files.
  EXPECT_GE(r.timeseries.PeakHourOfDay(), 20);
  EXPECT_GT(r.timeseries.TotalRetrieveGb(), r.timeseries.TotalStoreGb());
  EXPECT_GT(static_cast<double>(r.timeseries.TotalStoredFiles()),
            2.0 * static_cast<double>(r.timeseries.TotalRetrievedFiles()));
}

TEST(Faithfulness, SessionTypeSplit) {
  const auto& r = Report();
  // §3.1.1: store-only ~68%, retrieve-only ~30%, mixed ~2%. Targets and
  // the re-sessionization systematic slacks come from the paper2016 spec's
  // declared [targets] (the spec-aware home of those numbers since the
  // scenario lab), so this suite, `mcloudctl validate`, and
  // `mcloudctl conform paper2016` gate the same values and cannot drift.
  const scenario::WorkloadSpec spec = scenario::LoadSpec("paper2016");
  ASSERT_TRUE(spec.targets.store_share && spec.targets.retrieve_share &&
              spec.targets.mixed_share);
  EXPECT_DOUBLE_EQ(*spec.targets.store_share, paper::kStoreOnlySessionShare);
  const std::size_t n = r.session_split.total;
  const validate::SharePolicy major{spec.targets.session_share_slack};
  const validate::SharePolicy mixed{spec.targets.mixed_share_slack};
  EXPECT_NEAR(r.session_split.StoreShare(), *spec.targets.store_share,
              major.Band(*spec.targets.store_share, n));
  EXPECT_NEAR(r.session_split.RetrieveShare(), *spec.targets.retrieve_share,
              major.Band(*spec.targets.retrieve_share, n));
  EXPECT_NEAR(r.session_split.MixedShare(), *spec.targets.mixed_share,
              mixed.Band(*spec.targets.mixed_share, n));
}

TEST(Faithfulness, IntervalModelStructure) {
  const auto& r = Report();
  // Fig 3: intra-session component in the seconds range, inter-session in
  // the hours-to-day range, with a detectable valley between them.
  EXPECT_GT(r.interval_model.intra_mean_seconds, 0.5);
  EXPECT_LT(r.interval_model.intra_mean_seconds, 60.0);
  EXPECT_GT(r.interval_model.inter_mean_seconds, kHour);
  EXPECT_GT(r.interval_model.valley_tau, kMinute);
  EXPECT_LT(r.interval_model.valley_tau, 6 * kHour);
}

TEST(Faithfulness, Burstiness) {
  const auto& r = Report();
  // Fig 4: at least ~3/4 of multi-op sessions operate within 10% of the
  // session length (paper: >80%).
  for (const auto& g : r.burstiness) {
    EXPECT_GT(analysis::FractionBelow(g, 0.1), 0.70)
        << "group > " << g.min_ops_exclusive;
  }
}

TEST(Faithfulness, UserClassShares) {
  const auto& r = Report();
  // Table 3 mobile-only column, order: occasional/upload/download/mixed.
  EXPECT_NEAR(r.mobile_only_column.user_share[0],
              paper::kMobileOccasionalShare, 0.06);
  EXPECT_NEAR(r.mobile_only_column.user_share[1],
              paper::kMobileUploadOnlyShare, 0.06);
  EXPECT_NEAR(r.mobile_only_column.user_share[2],
              paper::kMobileDownloadOnlyShare, 0.05);
  EXPECT_NEAR(r.mobile_only_column.user_share[3], paper::kMobileMixedShare,
              0.05);
  // Upload-only users dominate storage volume (paper: 86.6%).
  EXPECT_GT(r.mobile_only_column.store_share[1], 0.7);
}

TEST(Faithfulness, StretchedExponentialActivity) {
  const auto& r = Report();
  // Fig 10: the SE refit recovers the published stretch factors and slopes,
  // and beats the power law.
  EXPECT_NEAR(r.store_activity.se.c, paper::kStoreActivitySe.c, 0.05);
  EXPECT_NEAR(r.store_activity.se.a, paper::kStoreActivitySe.a, 0.12);
  EXPECT_GT(r.store_activity.se.r_squared, 0.99);
  EXPECT_GT(r.store_activity.se.r_squared,
            r.store_activity.power_law.r_squared);

  EXPECT_NEAR(r.retrieve_activity.se.c, paper::kRetrieveActivitySe.c, 0.05);
  EXPECT_GT(r.retrieve_activity.se.r_squared,
            r.retrieve_activity.power_law.r_squared);
}

TEST(Faithfulness, Engagement) {
  const auto& r = Report();
  // Fig 8: single-device users churn the most; multi-device users return.
  const auto& one_dev = r.engagement[0];
  const auto& multi_dev = r.engagement[1];
  EXPECT_GT(one_dev.never_returned, 0.4);
  EXPECT_LT(multi_dev.never_returned, 0.25);

  // Fig 9: ~80%+ of mobile-only uploaders never retrieve within the week;
  // mobile&PC users retrieve far more often.
  const auto& one_dev_r = r.retrieval_returns[0];
  const auto& pc_r = r.retrieval_returns[3];
  EXPECT_GT(one_dev_r.never_retrieved, 0.7);
  EXPECT_LT(pc_r.never_retrieved, one_dev_r.never_retrieved);
}

TEST(Faithfulness, FileSizeModels) {
  const auto& r = Report();
  // Fig 6 / Table 2 shape: the retrieve-session size model has far heavier
  // components than the store model, whose dominant component sits in the
  // ~1 MB photo regime.
  const auto& store = r.store_size_model.selection.fit.mixture;
  const auto& retrieve = r.retrieve_size_model.selection.fit.mixture;
  EXPECT_LT(store.components().front().mean, 2.5);
  EXPECT_GT(retrieve.Mean(), 3.0 * store.Mean());
  EXPECT_GT(retrieve.components().back().mean, 80.0);
}

TEST(Mechanism, AndroidIosGapEmergesFromTcp) {
  // §4: run identical files through the service for both device types; the
  // Android/iOS gap and the slow-start-restart shares must *emerge* from
  // the TCP mechanics, not be sampled from the result curves.
  cloud::StorageService service{cloud::ServiceConfig{}};
  std::vector<workload::SessionPlan> plans;
  for (int i = 0; i < 300; ++i) {
    workload::SessionPlan s;
    s.user_id = static_cast<std::uint64_t>(i + 1);
    s.device_id = s.user_id;
    s.device_type = (i % 2 == 0) ? DeviceType::kAndroid : DeviceType::kIos;
    s.start = kTraceStart + i * 120;
    workload::FileOp op;
    op.direction = Direction::kStore;
    op.size = 4 * kMiB;
    s.ops.push_back(op);
    plans.push_back(s);
  }
  const auto result = service.Execute(plans);

  const auto android = analysis::PerfTransferTimes(
      result.chunk_perf, DeviceType::kAndroid, Direction::kStore);
  const auto ios = analysis::PerfTransferTimes(
      result.chunk_perf, DeviceType::kIos, Direction::kStore);
  ASSERT_FALSE(android.empty());
  ASSERT_FALSE(ios.empty());

  const double android_median = Percentile(android, 50);
  const double ios_median = Percentile(ios, 50);
  // Fig 12a: Android uploads are at least ~2x slower per chunk.
  EXPECT_GT(android_median, 1.8 * ios_median);
  EXPECT_NEAR(ios_median, paper::kMedianUploadTimeIos, 0.8);
  EXPECT_NEAR(android_median, paper::kMedianUploadTimeAndroid, 1.5);

  // Fig 16c: Android restarts slow start after most inter-chunk gaps.
  const double android_restarts = analysis::SlowStartRestartShare(
      result.chunk_perf, DeviceType::kAndroid, Direction::kStore);
  const double ios_restarts = analysis::SlowStartRestartShare(
      result.chunk_perf, DeviceType::kIos, Direction::kStore);
  EXPECT_NEAR(android_restarts, paper::kAndroidIdleOverRtoShare, 0.15);
  EXPECT_NEAR(ios_restarts, paper::kIosIdleOverRtoShare, 0.12);
  EXPECT_GT(android_restarts, 2.0 * ios_restarts);
}

TEST(Mechanism, ServerSideIsDeviceBlind) {
  // §4.1: "servers do not distinguish between device types" — T_srv
  // distributions must match across devices.
  cloud::StorageService service{cloud::ServiceConfig{}};
  std::vector<workload::SessionPlan> plans;
  for (int i = 0; i < 200; ++i) {
    workload::SessionPlan s;
    s.user_id = static_cast<std::uint64_t>(i + 1);
    s.device_id = s.user_id;
    s.device_type = (i % 2 == 0) ? DeviceType::kAndroid : DeviceType::kIos;
    s.start = kTraceStart + i * 60;
    workload::FileOp op;
    op.direction = Direction::kStore;
    op.size = 2 * kMiB;
    s.ops.push_back(op);
    plans.push_back(s);
  }
  const auto result = service.Execute(plans);
  const auto android = analysis::TsrvSamples(result.chunk_perf,
                                             DeviceType::kAndroid,
                                             Direction::kStore);
  const auto ios = analysis::TsrvSamples(result.chunk_perf, DeviceType::kIos,
                                         Direction::kStore);
  EXPECT_NEAR(Percentile(android, 50), Percentile(ios, 50), 0.03);
}

}  // namespace
}  // namespace mcloud
