// Property tests for the stable radix permutation sort (util/radix_sort.h):
// every case asserts the exact std::stable_sort order, since the generator
// fast path's byte-identity guarantee rests on that equivalence.
#include "util/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "util/rng.h"

namespace mcloud {
namespace {

/// Reference order: std::stable_sort of row indices under the same
/// lexicographic multi-component key the sorter sees.
std::vector<std::uint32_t> StableSortReference(
    std::size_t n, std::span<const RadixKey> keys) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     for (const RadixKey& k : keys) {
                       const std::uint64_t x = k.at(a);
                       const std::uint64_t y = k.at(b);
                       if (x != y) return x < y;
                     }
                     return false;
                   });
  return perm;
}

void ExpectMatchesStableSort(std::span<const RadixKey> keys, std::size_t n) {
  StableRadixSorter sorter;
  const std::span<const std::uint32_t> got = sorter.Sort(n, keys);
  const std::vector<std::uint32_t> want = StableSortReference(n, keys);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < n; ++j)
    ASSERT_EQ(got[j], want[j]) << "rank " << j;
}

TEST(RadixSort, EmptyAndSingle) {
  StableRadixSorter sorter;
  const std::vector<std::int64_t> one = {42};
  const RadixKey keys[1] = {RadixKey::I64(one)};
  EXPECT_TRUE(sorter.Sort(0, keys).empty());
  const auto perm = sorter.Sort(1, keys);
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0u);
}

TEST(RadixSort, AllEqualKeysIsIdentity) {
  // Degenerate day: every session at the same timestamp. Stability demands
  // the identity permutation. Sized above kSmallN to hit the radix path.
  const std::size_t n = 4 * StableRadixSorter::kSmallN;
  const std::vector<std::int64_t> ts(n, 1404172800);
  const RadixKey keys[1] = {RadixKey::I64(ts)};
  StableRadixSorter sorter;
  const auto perm = sorter.Sort(n, keys);
  for (std::size_t j = 0; j < n; ++j) ASSERT_EQ(perm[j], j);
}

TEST(RadixSort, NegativeAndCrossMidnightKeys) {
  // Signed keys straddling zero (timestamps relative to an epoch mid-trace)
  // must order sign-correctly through the bias mapping.
  std::vector<std::int64_t> ts;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t base =
        static_cast<std::int64_t>(rng.UniformInt(5)) * 86400 - 2 * 86400;
    ts.push_back(base + static_cast<std::int64_t>(rng.UniformInt(86400)));
  }
  ts.push_back(INT64_MIN);
  ts.push_back(INT64_MAX);
  ts.push_back(0);
  ts.push_back(-1);
  ts.push_back(1);
  const RadixKey keys[1] = {RadixKey::I64(ts)};
  ExpectMatchesStableSort(keys, ts.size());
}

TEST(RadixSort, SmallNBoundary) {
  // Both sides of the kSmallN cutoff take different code paths; the order
  // must agree with the reference on each.
  Rng rng(11);
  for (const std::size_t n :
       {StableRadixSorter::kSmallN - 1, StableRadixSorter::kSmallN,
        StableRadixSorter::kSmallN + 1}) {
    std::vector<std::uint64_t> users;
    std::vector<std::int64_t> ts;
    for (std::size_t i = 0; i < n; ++i) {
      users.push_back(rng.UniformInt(16));  // heavy ties
      ts.push_back(static_cast<std::int64_t>(rng.UniformInt(8)));
    }
    const RadixKey keys[2] = {RadixKey::I64(ts), RadixKey::U64(users)};
    ExpectMatchesStableSort(keys, n);
  }
}

TEST(RadixSort, MultiComponentMatchesLexicographicOrder) {
  // Three components like the record order (timestamp, user, device) with
  // deliberate tie structure at every level.
  Rng rng(13);
  const std::size_t n = 50000;
  std::vector<std::int64_t> ts;
  std::vector<std::uint64_t> users;
  std::vector<std::uint64_t> devices;
  for (std::size_t i = 0; i < n; ++i) {
    ts.push_back(1404172800 + static_cast<std::int64_t>(rng.UniformInt(600)));
    users.push_back(rng.UniformInt(300));
    // Device ids straddle the PC range bit like real traces do.
    devices.push_back(rng.Bernoulli(0.3) ? (1ULL << 48) + rng.UniformInt(300)
                                         : rng.UniformInt(1000));
  }
  const RadixKey keys[3] = {RadixKey::I64(ts), RadixKey::U64(users),
                            RadixKey::U64(devices)};
  ExpectMatchesStableSort(keys, n);
}

TEST(RadixSort, MillionRowShuffleMatchesStableSort) {
  // Paper-scale single-component stress: 1M rows, many duplicates, full
  // shuffle. Also exercises scratch reuse by sorting twice with one sorter.
  Rng rng(17);
  const std::size_t n = 1'000'000;
  std::vector<std::int64_t> ts;
  ts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    ts.push_back(1404172800 +
                 static_cast<std::int64_t>(rng.UniformInt(7 * 86400)));
  const RadixKey keys[1] = {RadixKey::I64(ts)};
  const std::vector<std::uint32_t> want = StableSortReference(n, keys);
  StableRadixSorter sorter;
  for (int round = 0; round < 2; ++round) {
    const auto got = sorter.Sort(n, keys);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(got[j], want[j]) << "round " << round << " rank " << j;
  }
}

}  // namespace
}  // namespace mcloud
