// Scenario-lab tests (DESIGN.md §13): spec grammar round-trips, strict
// rejection of malformed specs with line/field-carrying errors, the
// paper2016-equals-defaults fingerprint identity, and the negative-control
// conformance run (targets contradicting parameters must fail on exactly
// the contradicted checks).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "scenario/conformance.h"
#include "scenario/workload_spec.h"
#include "util/error.h"
#include "validate/validator.h"

namespace mcloud {
namespace {

// ---------------------------------------------------------------------------
// Round-trip goldens.

TEST(SpecText, DefaultSpecRoundTripsExactly) {
  scenario::WorkloadSpec spec;
  spec.name = "roundtrip";
  spec.description = "default world";
  const std::string text = scenario::ToText(spec);
  const scenario::WorkloadSpec back = scenario::ParseSpec(text, "<inline>");
  // Canonical form is a fixed point: re-emitting the parsed spec reproduces
  // the text byte for byte (doubles use round-trip precision).
  EXPECT_EQ(scenario::ToText(back), text);
  EXPECT_EQ(back.name, "roundtrip");
  EXPECT_EQ(back.mobile_users, spec.mobile_users);
  EXPECT_DOUBLE_EQ(back.android_share, spec.android_share);
  EXPECT_EQ(back.model.hour_weights, spec.model.hour_weights);
}

TEST(SpecText, ShippedSpecsParseAndRoundTrip) {
  const auto names = scenario::ListSpecs();
  ASSERT_GE(names.size(), 4u);
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    const scenario::WorkloadSpec spec = scenario::LoadSpec(name);
    EXPECT_EQ(spec.name, name);  // file name matches declared name
    const std::string canon = scenario::ToText(spec);
    const scenario::WorkloadSpec back = scenario::ParseSpec(canon, name);
    EXPECT_EQ(scenario::ToText(back), canon);
  }
}

TEST(SpecText, Paper2016DeclaresThePaperWorld) {
  const scenario::WorkloadSpec spec = scenario::LoadSpec("paper2016");
  EXPECT_EQ(spec.mobile_users, 20000u);
  // users/3 at the validate harness's default scale — the explicit value of
  // the legacy pc_users derivation (see ValidateOptions::kPcUsersAuto).
  EXPECT_EQ(spec.pc_only_users, 6666u);
  EXPECT_DOUBLE_EQ(spec.android_share, 0.784);
  // The spec's model must be byte-for-byte the default calibration: a
  // default-constructed ModelParams emits identical canonical text.
  scenario::WorkloadSpec defaults;
  defaults.name = spec.name;
  defaults.description = spec.description;
  defaults.pc_only_users = spec.pc_only_users;
  defaults.targets = spec.targets;
  EXPECT_EQ(scenario::ToText(spec), scenario::ToText(defaults));
  // Targets carry the slacks that moved here from validate/tolerance.h.
  EXPECT_DOUBLE_EQ(spec.targets.session_share_slack,
                   scenario::kDefaultSessionShareSlack);
  EXPECT_DOUBLE_EQ(spec.targets.mixed_share_slack,
                   scenario::kDefaultMixedShareSlack);
}

// ---------------------------------------------------------------------------
// Malformed specs: every rejection carries source:line: [section].key.

void ExpectParseError(const std::string& text, const std::string& where,
                      const std::string& message_piece) {
  try {
    (void)scenario::ParseSpec(text, "<inline>");
    FAIL() << "expected ParseError for:\n" << text;
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(where), std::string::npos)
        << "error `" << e.what() << "` lacks location `" << where << "`";
    EXPECT_NE(std::string(e.what()).find(message_piece), std::string::npos)
        << "error `" << e.what() << "` lacks `" << message_piece << "`";
  }
}

TEST(SpecErrors, UnknownKey) {
  ExpectParseError("name = \"x\"\n[population]\nmobile_userz = 5\n",
                   "<inline>:3: [population].mobile_userz", "unknown key");
}

TEST(SpecErrors, UnknownSection) {
  ExpectParseError("name = \"x\"\n[bogus]\n", "<inline>:2: [bogus]",
                   "unknown section");
}

TEST(SpecErrors, OutOfRangeShare) {
  ExpectParseError("name = \"x\"\n[population]\nandroid_share = 1.5\n",
                   "<inline>:3: [population].android_share", "out of range");
}

TEST(SpecErrors, MixtureWeightsMustSumToOne) {
  ExpectParseError(
      "name = \"x\"\n[store_size]\nweights = [0.5, 0.2, 0.2]\n",
      "<inline>:3: [store_size].weights", "weights sum to");
}

TEST(SpecErrors, WrongArity) {
  ExpectParseError("name = \"x\"\n[store_size]\nweights = [0.5, 0.5]\n",
                   "<inline>:3: [store_size].weights",
                   "expected 3 elements");
}

TEST(SpecErrors, DuplicateKey) {
  ExpectParseError(
      "name = \"x\"\n[population]\nmobile_users = 5\nmobile_users = 6\n",
      "<inline>:4: [population].mobile_users", "duplicate key");
}

TEST(SpecErrors, ClassSharesMayNotExceedOne) {
  ExpectParseError(
      "name = \"x\"\n[classes]\nmobile_only = [0.5, 0.4, 0.3]\n",
      "<inline>:3: [classes].mobile_only", "exceeding 1");
}

TEST(SpecErrors, SessionSharePairExceedsOne) {
  ExpectParseError(
      "name = \"x\"\n[sessions]\nsingle_op_share = 0.7\n"
      "few_ops_share = 0.5\n",
      "<inline>:4: [sessions].few_ops_share", "exceeding 1");
}

TEST(SpecErrors, MissingName) {
  ExpectParseError("[population]\nmobile_users = 5\n", "<inline>",
                   "does not declare a name");
}

TEST(SpecErrors, UnknownSpecNameListsAvailable) {
  try {
    (void)scenario::LoadSpec("no-such-spec");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("paper2016"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// paper2016 == defaults: the spec compiles into a validation run whose
// manifest fingerprint is byte-identical to today's default run, at more
// than one thread count.

TEST(SpecIdentity, Paper2016ReproducesDefaultValidateFingerprint) {
  const scenario::WorkloadSpec spec = scenario::LoadSpec("paper2016");
  std::uint64_t default_fp = 0;
  for (const int threads : {1, 3}) {
    validate::ValidateOptions defaults;
    defaults.users = 4000;
    defaults.threads = threads;
    const validate::ValidationRun base = validate::RunValidation(defaults);

    validate::ValidateOptions from_spec;
    from_spec.users = 4000;
    from_spec.threads = threads;
    from_spec.pc_users =
        spec.pc_only_users * from_spec.users / spec.mobile_users;
    from_spec.model = spec.model;
    const validate::ValidationRun run = validate::RunValidation(from_spec);

    const std::uint64_t fp = validate::ManifestFingerprint(base);
    EXPECT_EQ(validate::ManifestFingerprint(run), fp)
        << "spec-compiled run diverges from defaults at threads=" << threads;
    if (default_fp == 0) default_fp = fp;
    EXPECT_EQ(fp, default_fp) << "fingerprint varies with threads";
  }
}

// ---------------------------------------------------------------------------
// Negative control: a spec whose declared targets contradict its own
// parameters must fail conformance on exactly the contradicted checks.

TEST(Conformance, NegativeControlFailsExactlyTheContradictedChecks) {
  const scenario::WorkloadSpec spec = scenario::ParseSpec(
      "name = \"negative-control\"\n"
      "description = \"paper parameters, contradictory targets\"\n"
      "[targets]\n"
      "store_share = 0.2\n"      // world measures ~0.70
      "retrieve_share = 0.75\n"  // world measures ~0.29
      "mixed_share = 0.019\n"    // correct: must still pass
      "\n",
      "<negative-control>");
  scenario::ConformanceOptions opts;
  opts.users_override = 2000;
  const scenario::ConformanceRun run = scenario::RunConformance(spec, opts);
  ASSERT_EQ(run.outcomes.size(), 3u);
  EXPECT_FALSE(run.AllPassed());
  EXPECT_EQ(run.outcomes[0].id, "target_store_share");
  EXPECT_FALSE(run.outcomes[0].passed);
  EXPECT_EQ(run.outcomes[1].id, "target_retrieve_share");
  EXPECT_FALSE(run.outcomes[1].passed);
  EXPECT_EQ(run.outcomes[2].id, "target_mixed_share");
  EXPECT_TRUE(run.outcomes[2].passed);
}

// Conformance itself is deterministic: same spec, same seed, any thread
// count — same report fingerprint and check statistics.
TEST(Conformance, ThreadInvariantFingerprint) {
  const scenario::WorkloadSpec spec = scenario::LoadSpec("paper2016");
  scenario::ConformanceOptions opts;
  opts.users_override = 1500;
  opts.threads = 1;
  const auto a = scenario::RunConformance(spec, opts);
  opts.threads = 4;
  const auto b = scenario::RunConformance(spec, opts);
  EXPECT_EQ(a.report_fingerprint, b.report_fingerprint);
  EXPECT_EQ(scenario::ToJson(a), scenario::ToJson(b));
}

// The out-of-core conformance path (spill to a partitioned trace, analyze
// with the streaming engine) is execution strategy, not sample identity:
// same spec, same seed — same report, bit for bit. This is what lets a
// spec declare a paper-scale population and still be conformance-checked.
TEST(Conformance, OutOfCoreMatchesResident) {
  const scenario::WorkloadSpec spec =
      scenario::LoadSpec("flash-crowd-restore");
  scenario::ConformanceOptions opts;
  opts.users_override = 1200;
  const auto resident = scenario::RunConformance(spec, opts);
  opts.out_of_core = true;
  opts.spill_dir =
      (std::filesystem::temp_directory_path() / "mcloud-spec-ooc").string();
  std::filesystem::remove_all(opts.spill_dir);
  std::filesystem::create_directories(opts.spill_dir);
  const auto ooc = scenario::RunConformance(spec, opts);
  std::filesystem::remove_all(opts.spill_dir);
  EXPECT_EQ(ooc.report_fingerprint, resident.report_fingerprint);
  EXPECT_EQ(scenario::ToJson(ooc), scenario::ToJson(resident));
}

}  // namespace
}  // namespace mcloud
