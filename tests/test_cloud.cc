// Tests for the cloud service layer: chunker, metadata server (dedup),
// front-end bookkeeping, and the end-to-end storage service.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cloud/chunker.h"
#include "cloud/client_model.h"
#include "cloud/front_end_server.h"
#include "cloud/metadata_server.h"
#include "cloud/storage_service.h"

namespace mcloud::cloud {
namespace {

TEST(Chunker, ChunkCountAndSizes) {
  const Chunker chunker;
  EXPECT_EQ(chunker.ChunkCount(1), 1u);
  EXPECT_EQ(chunker.ChunkCount(kChunkSize), 1u);
  EXPECT_EQ(chunker.ChunkCount(kChunkSize + 1), 2u);
  const FileManifest m = chunker.Manifest(42, kChunkSize * 2 + 100);
  ASSERT_EQ(m.chunks.size(), 3u);
  EXPECT_EQ(m.chunks[0].size, kChunkSize);
  EXPECT_EQ(m.chunks[2].size, 100u);
  EXPECT_EQ(m.chunks[0].index, 0u);
  EXPECT_EQ(m.chunks[2].index, 2u);
  EXPECT_EQ(m.size, kChunkSize * 2 + 100);
}

TEST(Chunker, ContentIdentityIsDeterministic) {
  const Chunker chunker;
  const FileManifest a = chunker.Manifest(7, kChunkSize * 2);
  const FileManifest b = chunker.Manifest(7, kChunkSize * 2);
  EXPECT_EQ(a.file_md5, b.file_md5);
  EXPECT_EQ(a.chunks[0].md5, b.chunks[0].md5);
  // Different content, different hashes.
  const FileManifest c = chunker.Manifest(8, kChunkSize * 2);
  EXPECT_NE(a.file_md5, c.file_md5);
  EXPECT_NE(a.chunks[0].md5, c.chunks[0].md5);
  // Chunks of one file differ from each other.
  EXPECT_NE(a.chunks[0].md5, a.chunks[1].md5);
}

TEST(Chunker, SizeChangesFileHash) {
  const Chunker chunker;
  EXPECT_NE(chunker.Manifest(7, 1000).file_md5,
            chunker.Manifest(7, 1001).file_md5);
}

TEST(MetadataServer, DeduplicatesIdenticalContent) {
  MetadataServer md(4);
  const Chunker chunker;
  const FileManifest m = chunker.Manifest(1, kChunkSize);

  const StoreDecision first = md.QueryStore(100, m);
  EXPECT_FALSE(first.already_stored);
  // Same content from another user: dedup hit, upload suppressed.
  const StoreDecision second = md.QueryStore(200, m);
  EXPECT_TRUE(second.already_stored);
  EXPECT_EQ(second.front_end, first.front_end);
  EXPECT_EQ(md.stats().dedup_hits, 1u);
  EXPECT_EQ(md.stats().store_queries, 2u);
  // Both users have the file in their space.
  EXPECT_EQ(md.UserFileCount(100), 1u);
  EXPECT_EQ(md.UserFileCount(200), 1u);
  EXPECT_EQ(md.DistinctFiles(), 1u);
}

TEST(MetadataServer, RetrieveResolvesLocation) {
  MetadataServer md(4);
  const Chunker chunker;
  const FileManifest m = chunker.Manifest(9, kChunkSize);
  const StoreDecision stored = md.QueryStore(1, m);

  const auto found = md.QueryRetrieve(2, m.file_md5);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, stored.front_end);

  const FileManifest unknown = chunker.Manifest(999, kChunkSize);
  EXPECT_FALSE(md.QueryRetrieve(2, unknown.file_md5).has_value());
  EXPECT_EQ(md.stats().retrieve_misses, 1u);
}

TEST(MetadataServer, SpreadsNewContentAcrossFrontEnds) {
  MetadataServer md(3);
  const Chunker chunker;
  std::vector<FrontEndId> assignments;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    assignments.push_back(
        md.QueryStore(1, chunker.Manifest(seed, kChunkSize)).front_end);
  }
  EXPECT_EQ(assignments[0], assignments[3]);  // round robin, period 3
  EXPECT_NE(assignments[0], assignments[1]);
}

TEST(FrontEndServer, AccountsStoresAndRetrievals) {
  FrontEndServer fe(0, ServerBehavior{});
  std::vector<LogRecord> log;
  LogRecord base;
  base.user_id = 1;
  base.device_type = DeviceType::kAndroid;

  ChunkInfo chunk;
  chunk.size = kChunkSize;
  chunk.md5 = Md5::Hash("chunk-1");

  fe.LogFileOperation(base, 1000, Direction::kStore, 0.05, 0.1, log);
  fe.CommitChunkStore(base, 1001, chunk, 1.5, 0.1, 0.1, log);
  fe.CommitChunkStore(base, 1002, chunk, 1.5, 0.1, 0.1, log);  // same chunk
  EXPECT_EQ(fe.ServeChunkRetrieve(base, 1003, chunk, 0.8, 0.1, 0.1, log),
            RetrieveOutcome::kServed);

  EXPECT_EQ(fe.stats().file_operations, 1u);
  EXPECT_EQ(fe.stats().chunk_stores, 2u);
  EXPECT_EQ(fe.stats().chunk_dedup_hits, 1u);
  EXPECT_EQ(fe.stats().chunk_retrievals, 1u);
  EXPECT_EQ(fe.stats().bytes_stored, 2 * kChunkSize);
  EXPECT_EQ(fe.stats().bytes_served, kChunkSize);
  EXPECT_EQ(fe.ChunkCount(), 1u);

  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].request_type, RequestType::kFileOperation);
  EXPECT_EQ(log[0].data_volume, 0u);
  EXPECT_EQ(log[1].request_type, RequestType::kChunkRequest);
  EXPECT_EQ(log[1].data_volume, kChunkSize);
  EXPECT_NEAR(log[1].processing_time, 1.6, 1e-9);  // ttran + tsrv
  EXPECT_EQ(log[3].direction, Direction::kRetrieve);
}

TEST(FrontEndServer, CountsMissingChunks) {
  FrontEndServer fe(0, ServerBehavior{});
  std::vector<LogRecord> log;
  LogRecord base;
  ChunkInfo chunk;
  chunk.size = 100;
  chunk.md5 = Md5::Hash("never-stored");
  // The miss is surfaced to the caller, not just counted in stats.
  EXPECT_EQ(fe.ServeChunkRetrieve(base, 1, chunk, 0.5, 0.1, 0.1, log),
            RetrieveOutcome::kServedMissing);
  EXPECT_EQ(fe.stats().missing_chunks, 1u);
  EXPECT_EQ(log.size(), 1u);  // still served: a replica holds the chunk

  // Once stored, the same chunk retrieves cleanly.
  fe.CommitChunkStore(base, 2, chunk, 0.5, 0.1, 0.1, log);
  EXPECT_EQ(fe.ServeChunkRetrieve(base, 3, chunk, 0.5, 0.1, 0.1, log),
            RetrieveOutcome::kServed);
  EXPECT_EQ(fe.stats().missing_chunks, 1u);
}

TEST(ClientModel, LogNormalSpecStatistics) {
  const LogNormalSpec spec{0.1, 0.5};
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 40001; ++i) xs.push_back(spec.Sample(rng));
  std::nth_element(xs.begin(), xs.begin() + 20000, xs.end());
  EXPECT_NEAR(xs[20000], 0.1, 0.01);
  EXPECT_NEAR(spec.Mean(), 0.1 * std::exp(0.125), 1e-9);
}

TEST(ClientModel, AndroidSlowerClientThanIos) {
  const ClientBehavior android = BehaviorFor(DeviceType::kAndroid);
  const ClientBehavior ios = BehaviorFor(DeviceType::kIos);
  EXPECT_GT(android.store_tclt.Mean(), ios.store_tclt.Mean());
  EXPECT_GT(android.stall_duration.Mean(), ios.stall_duration.Mean());
  // Receive windows per §4.1: Android 4 MB, iOS 2 MB.
  EXPECT_EQ(android.receive_window, 4 * kMiB);
  EXPECT_EQ(ios.receive_window, 2 * kMiB);
}

workload::SessionPlan MakeSession(std::uint64_t user, DeviceType device,
                                  Direction dir, Bytes size,
                                  UnixSeconds start = 1438560000) {
  workload::SessionPlan s;
  s.user_id = user;
  s.device_id = user * 2;
  s.device_type = device;
  s.start = start;
  workload::FileOp op;
  op.direction = dir;
  op.size = size;
  op.offset = 0;
  s.ops.push_back(op);
  return s;
}

TEST(StorageService, ExecutesSessionsAndLogs) {
  StorageService service(ServiceConfig{});
  std::vector<workload::SessionPlan> plans;
  plans.push_back(MakeSession(1, DeviceType::kAndroid, Direction::kStore,
                              2 * kMiB));
  plans.push_back(MakeSession(2, DeviceType::kIos, Direction::kRetrieve,
                              kMiB, 1438560600));
  const ServiceResult result = service.Execute(plans);

  EXPECT_EQ(result.flows, 2u);
  EXPECT_FALSE(result.logs.empty());
  EXPECT_FALSE(result.chunk_perf.empty());
  // Logs are time-sorted.
  for (std::size_t i = 1; i < result.logs.size(); ++i)
    EXPECT_LE(result.logs[i - 1].timestamp, result.logs[i].timestamp);
  // Store session: 1 file op + 4 chunk stores of 512 KB.
  std::size_t store_chunks = 0;
  for (const auto& r : result.logs) {
    if (r.request_type == RequestType::kChunkRequest &&
        r.direction == Direction::kStore)
      ++store_chunks;
  }
  EXPECT_EQ(store_chunks, 4u);
}

TEST(StorageService, WindowScalingSpeedsUploads) {
  ServiceConfig base;
  ServiceConfig scaled;
  scaled.server_window_scaling = true;

  const auto run = [](const ServiceConfig& cfg) {
    StorageService service(cfg);
    double total = 0;
    for (int i = 0; i < 30; ++i) {
      const auto flow = service.SimulateFlow(DeviceType::kIos,
                                             Direction::kStore, 4 * kMiB,
                                             100 + i, 0.15);
      total += flow.duration;
    }
    return total;
  };
  EXPECT_LT(run(scaled), run(base));
}

TEST(StorageService, DisablingSsaiRemovesRestarts) {
  ServiceConfig no_ssai;
  no_ssai.ssai_enabled = false;
  StorageService service(no_ssai);
  const auto flow = service.SimulateFlow(DeviceType::kAndroid,
                                         Direction::kStore, 8 * kMiB, 5);
  EXPECT_EQ(flow.restarts, 0u);

  StorageService with_ssai{ServiceConfig{}};
  const auto flow2 = with_ssai.SimulateFlow(DeviceType::kAndroid,
                                            Direction::kStore, 8 * kMiB, 5);
  EXPECT_GT(flow2.restarts, 0u);
}

TEST(StorageService, BatchingReducesIdleGaps) {
  ServiceConfig batched;
  batched.batch_chunks = 4;
  StorageService a{ServiceConfig{}};
  StorageService b{batched};
  const auto base = a.SimulateFlow(DeviceType::kAndroid, Direction::kStore,
                                   8 * kMiB, 11, 0.1);
  const auto batch = b.SimulateFlow(DeviceType::kAndroid, Direction::kStore,
                                    8 * kMiB, 11, 0.1);
  EXPECT_LT(batch.chunks.size(), base.chunks.size());
}

TEST(StorageService, SharedContentRetrievalsAgreeOnSize) {
  // Two users retrieving the same popular URL must pull identical bytes —
  // content identity is keyed to the content seed.
  ServiceConfig cfg;
  cfg.shared_content_prob = 1.0;  // force shared-content retrievals
  cfg.popular_contents = 1;       // a single URL
  StorageService service(cfg);
  std::vector<workload::SessionPlan> plans;
  plans.push_back(MakeSession(1, DeviceType::kAndroid, Direction::kRetrieve,
                              kMiB));
  plans.push_back(MakeSession(2, DeviceType::kIos, Direction::kRetrieve,
                              kMiB, 1438560600));
  const ServiceResult result = service.Execute(plans);

  Bytes vol_user1 = 0;
  Bytes vol_user2 = 0;
  for (const auto& r : result.logs) {
    if (r.request_type != RequestType::kChunkRequest) continue;
    (r.user_id == 1 ? vol_user1 : vol_user2) += r.data_volume;
  }
  EXPECT_EQ(vol_user1, vol_user2);
  EXPECT_GT(vol_user1, 0u);
}

TEST(StorageService, PerfSamplesCoverEveryChunk) {
  StorageService service(ServiceConfig{});
  std::vector<workload::SessionPlan> plans;
  plans.push_back(MakeSession(1, DeviceType::kAndroid, Direction::kStore,
                              3 * kMiB));
  const ServiceResult result = service.Execute(plans);
  std::size_t chunk_logs = 0;
  for (const auto& r : result.logs) {
    if (r.request_type == RequestType::kChunkRequest) ++chunk_logs;
  }
  EXPECT_EQ(result.chunk_perf.size(), chunk_logs);
  // First chunk of the connection has no preceding idle gap.
  EXPECT_DOUBLE_EQ(result.chunk_perf.front().idle_before, 0.0);
}

}  // namespace
}  // namespace mcloud::cloud
