// Tests for the EM fitters (Gaussian and exponential mixtures) and the
// stretched-exponential rank fit — the statistical core behind Fig 3,
// Fig 6/Table 2, and Fig 10.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/em_exponential.h"
#include "stats/em_gaussian.h"
#include "stats/stretched_exponential.h"
#include "util/rng.h"

namespace mcloud {
namespace {

TEST(EmGaussian, RecoversTwoComponents) {
  Rng rng(1);
  const GaussianMixture truth({{0.7, 1.0, 0.6}, {0.3, 5.0, 0.8}});
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) xs.push_back(truth.Sample(rng));

  const auto fit = FitGaussianMixture(xs, 2);
  EXPECT_TRUE(fit.converged);
  const auto& c = fit.mixture.components();
  ASSERT_EQ(c.size(), 2u);
  // Components are reported sorted by mean.
  EXPECT_NEAR(c[0].mean, 1.0, 0.05);
  EXPECT_NEAR(c[1].mean, 5.0, 0.1);
  EXPECT_NEAR(c[0].weight, 0.7, 0.02);
  EXPECT_NEAR(c[0].stddev, 0.6, 0.08);
  EXPECT_NEAR(c[1].stddev, 0.8, 0.1);
}

TEST(EmGaussian, UnbalancedMixture) {
  // The Fig 3 regime: a small, distant second mode.
  Rng rng(2);
  const GaussianMixture truth({{0.93, 0.5, 0.5}, {0.07, 4.9, 0.5}});
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(truth.Sample(rng));
  const auto fit = FitGaussianMixture(xs, 2);
  const auto& c = fit.mixture.components();
  EXPECT_NEAR(c[1].mean, 4.9, 0.2);
  EXPECT_NEAR(c[1].weight, 0.07, 0.02);
}

TEST(EmGaussian, LikelihoodNeverDecreasesAcrossRefit) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Normal(0, 1));
  const auto one = FitGaussianMixture(xs, 1);
  const auto two = FitGaussianMixture(xs, 2);
  // More components can only raise the maximized likelihood (up to the
  // local-optimum slack inherent in EM).
  EXPECT_GE(two.log_likelihood, one.log_likelihood - 10.0);
}

TEST(EmGaussian, DegenerateInputs) {
  EXPECT_THROW((void)FitGaussianMixture(std::vector<double>{1.0}, 2),
               FitError);
  const std::vector<double> constant(100, 3.0);
  EXPECT_THROW((void)FitGaussianMixture(constant, 2), FitError);
}

TEST(EmExponential, RecoversTable2StoreMixture) {
  Rng rng(4);
  const MixtureExponential truth({{0.91, 1.5}, {0.07, 13.1}, {0.02, 77.4}});
  std::vector<double> xs;
  for (int i = 0; i < 120000; ++i) xs.push_back(truth.Sample(rng));

  const auto fit = FitMixtureExponential(xs, 3);
  const auto& c = fit.mixture.components();
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0].mean, 1.5, 0.25);
  EXPECT_NEAR(c[0].weight, 0.91, 0.05);
  EXPECT_NEAR(c[1].mean, 13.1, 5.0);
  EXPECT_NEAR(c[2].mean, 77.4, 15.0);
}

TEST(EmExponential, RequiresPositiveData) {
  const std::vector<double> bad = {1.0, 2.0, 0.0, 3.0};
  EXPECT_THROW((void)FitMixtureExponential(bad, 2), FitError);
}

TEST(EmExponential, SelectionStopsAtNegligibleComponent) {
  Rng rng(5);
  // A clean single exponential: the second component should be judged
  // unnecessary or nearly so.
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) xs.push_back(rng.ExponentialMean(2.0));
  const auto sel = SelectMixtureExponential(xs, 4, 0.02);
  EXPECT_LE(sel.selected_n, 2u);
  EXPECT_NEAR(sel.fit.mixture.Mean(), 2.0, 0.1);
}

TEST(EmExponential, SelectionFindsMultipleRealComponents) {
  Rng rng(6);
  const MixtureExponential truth({{0.6, 1.0}, {0.4, 30.0}});
  std::vector<double> xs;
  for (int i = 0; i < 60000; ++i) xs.push_back(truth.Sample(rng));
  const auto sel = SelectMixtureExponential(xs, 5, 1e-3);
  EXPECT_GE(sel.selected_n, 2u);
}

TEST(StretchedExponentialFit, RecoversContinuousLaw) {
  Rng rng(7);
  const StretchedExponential truth(0.018, 0.2);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) {
    // Conditioned on >= 1, as user activity is.
    const double cap = truth.Ccdf(1.0);
    double u = rng.Uniform() * cap;
    while (u <= 0) u = rng.Uniform() * cap;
    xs.push_back(truth.Quantile(u));
  }
  const auto fit = FitStretchedExponentialRank(xs);
  EXPECT_NEAR(fit.c, 0.2, 0.03);
  EXPECT_NEAR(fit.a, 0.448, 0.08);
  EXPECT_GT(fit.r_squared, 0.995);
}

TEST(StretchedExponentialFit, RobustToIntegerFlooring) {
  Rng rng(8);
  const StretchedExponential truth(0.018, 0.2);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) {
    const double cap = truth.Ccdf(1.0);
    double u = rng.Uniform() * cap;
    while (u <= 0) u = rng.Uniform() * cap;
    xs.push_back(std::max(1.0, std::floor(truth.Quantile(u))));
  }
  const auto fit = FitStretchedExponentialRank(xs);
  EXPECT_NEAR(fit.c, 0.2, 0.035);
  EXPECT_NEAR(fit.a, 0.448, 0.09);
}

TEST(StretchedExponentialFit, BeatsPowerLawOnSeData) {
  Rng rng(9);
  const StretchedExponential truth(0.5, 0.3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.Sample(rng));
  const auto se = FitStretchedExponentialRank(xs);
  const auto pl = FitPowerLawRank(xs);
  EXPECT_GT(se.r_squared, pl.r_squared);
}

TEST(StretchedExponentialFit, PredictedRankValues) {
  StretchedExponentialFit fit;
  fit.c = 0.2;
  fit.a = 0.448;
  fit.b = 7.239;  // the paper's store-activity parameters
  // Top rank: y = b^(1/c) = 7.239^5.
  EXPECT_NEAR(StretchedExponentialRankValue(fit, 1), std::pow(7.239, 5.0),
              1.0);
  // Values decrease with rank, hitting 0 once a ln(rank) exceeds b.
  EXPECT_GT(StretchedExponentialRankValue(fit, 10),
            StretchedExponentialRankValue(fit, 1000));
  EXPECT_DOUBLE_EQ(
      StretchedExponentialRankValue(fit, 100000000000ULL), 0.0);
}

TEST(StretchedExponentialFit, Errors) {
  EXPECT_THROW((void)FitStretchedExponentialRank(std::vector<double>{1, 2}),
               FitError);
  // Increasing "rank data" (all equal) cannot be fit.
  const std::vector<double> flat(100, 5.0);
  EXPECT_THROW((void)FitStretchedExponentialRank(flat), FitError);
}

// Parameterized recovery sweep across the SE parameter space.
class SeRecoverySweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SeRecoverySweep, GridSearchRecoversStretchFactor) {
  const auto [x0, c_true] = GetParam();
  Rng rng(static_cast<std::uint64_t>(x0 * 1e6) + 17);
  const StretchedExponential truth(x0, c_true);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.Sample(rng));
  const auto fit = FitStretchedExponentialRank(xs, 0.05, 1.0, 0.01);
  EXPECT_NEAR(fit.c, c_true, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Params, SeRecoverySweep,
    ::testing::Values(std::make_tuple(0.018, 0.2),
                      std::make_tuple(5.24e-4, 0.15),
                      std::make_tuple(1.0, 0.5),
                      std::make_tuple(10.0, 0.8)));

}  // namespace
}  // namespace mcloud
