// Tests for summary statistics, percentiles, ECDF, and grids.
#include "util/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mcloud {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  double sum = 0;
  for (double x : xs) {
    s.Add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);

  EXPECT_EQ(s.Count(), xs.size());
  EXPECT_NEAR(s.Mean(), mean, 1e-12);
  EXPECT_NEAR(s.Variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_NEAR(s.Sum(), sum, 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_THROW((void)s.Min(), Error);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 5.0);
}

TEST(Percentile, KnownValues) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 12.5), 1.5);  // interpolation
}

TEST(Percentile, Errors) {
  EXPECT_THROW((void)Percentile({}, 50), Error);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)Percentile(xs, -1), Error);
  EXPECT_THROW((void)Percentile(xs, 101), Error);
}

TEST(Percentiles, ManyCutsSingleSort) {
  const std::vector<double> xs = {5, 1, 4, 2, 3};
  const std::vector<double> ps = {0, 50, 100};
  const auto out = Percentiles(xs, ps);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
}

TEST(Ecdf, EvaluateAndQuantile) {
  const Ecdf e({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(e.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.Evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.Evaluate(10.0), 1.0);
  EXPECT_DOUBLE_EQ(e.Ccdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(e.Median(), 2.5);
}

TEST(Ecdf, RejectsEmpty) {
  EXPECT_THROW(Ecdf({}), Error);
}

TEST(Ecdf, OnGridMonotone) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.Normal());
  const Ecdf e(std::move(xs));
  const auto grid = LinGrid(-4, 4, 33);
  const auto cdf = e.OnGrid(grid);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Ecdf, KsDistanceSmallForTrueModel) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.ExponentialMean(2.0));
  const Ecdf e(std::move(xs));
  const double d =
      e.KsDistance([](double x) { return 1.0 - std::exp(-x / 2.0); });
  EXPECT_LT(d, 0.02);
  // A badly wrong model has a large distance.
  const double d_wrong =
      e.KsDistance([](double x) { return 1.0 - std::exp(-x / 20.0); });
  EXPECT_GT(d_wrong, 0.3);
}

TEST(Grids, LogGridProperties) {
  const auto g = LogGrid(1.0, 1000.0, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_NEAR(g[0], 1.0, 1e-12);
  EXPECT_NEAR(g[1], 10.0, 1e-9);
  EXPECT_NEAR(g[3], 1000.0, 1e-9);
  EXPECT_THROW((void)LogGrid(0.0, 1.0, 4), Error);
  EXPECT_THROW((void)LogGrid(1.0, 1.0, 4), Error);
}

TEST(Grids, LinGridProperties) {
  const auto g = LinGrid(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
  EXPECT_THROW((void)LinGrid(1.0, 0.0, 5), Error);
}

}  // namespace
}  // namespace mcloud
