// Tests for the discrete-event core: the slot-pooled 4-ary heap EventQueue
// (generation-counted EventIds, O(1) lazy cancel, lifetime stats) and the
// small-buffer EventCallback it schedules. The basic ordering/cancel tests
// moved here from test_tcp.cc when the event core grew its own test binary.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/event_callback.h"
#include "sim/event_queue.h"
#include "util/error.h"

namespace mcloud {
namespace {

// ---------------------------------------------------------------------------
// EventCallback
// ---------------------------------------------------------------------------

TEST(EventCallback, EmptyAndNullptrStates) {
  EventCallback empty;
  EXPECT_FALSE(empty);
  EXPECT_TRUE(empty == nullptr);
  EventCallback null_cb(nullptr);
  EXPECT_FALSE(null_cb);
  int ran = 0;
  EventCallback cb([&] { ++ran; });
  EXPECT_TRUE(cb);
  EXPECT_TRUE(cb != nullptr);
  cb();
  EXPECT_EQ(ran, 1);
  cb.Reset();
  EXPECT_FALSE(cb);
}

TEST(EventCallback, HoldsMoveOnlyCallable) {
  // std::function rejects move-only captures; EventCallback must not.
  auto p = std::make_unique<int>(41);
  EventCallback cb([p = std::move(p)] { ++*p; EXPECT_EQ(*p, 42); });
  EventCallback moved = std::move(cb);
  EXPECT_FALSE(cb);  // NOLINT: moved-from state is defined as empty
  ASSERT_TRUE(moved);
  moved();
}

TEST(EventCallback, HeapFallbackForLargeCaptures) {
  // Captures beyond the inline buffer transparently take the heap path.
  struct Big {
    unsigned char pad[2 * EventCallback::kInlineSize] = {};
    int value = 7;
  };
  Big big;
  big.value = 11;
  EventCallback cb([big] { EXPECT_EQ(big.value, 11); });
  EventCallback moved = std::move(cb);
  ASSERT_TRUE(moved);
  moved();
}

TEST(EventCallback, AcceptsCopyableLvalues) {
  // Call sites pass lvalue std::functions (e.g. a self-rescheduling
  // closure); construction copies the lvalue once and never again.
  int ran = 0;
  const std::function<void()> fn = [&ran] { ++ran; };
  EventCallback cb(fn);
  cb();
  EXPECT_EQ(ran, 1);
}

struct CopyMoveCounter {
  int* copies;
  int* moves;
  CopyMoveCounter(int* c, int* m) : copies(c), moves(m) {}
  CopyMoveCounter(const CopyMoveCounter& o) noexcept
      : copies(o.copies), moves(o.moves) {
    ++*copies;
  }
  CopyMoveCounter(CopyMoveCounter&& o) noexcept
      : copies(o.copies), moves(o.moves) {
    ++*moves;
  }
  CopyMoveCounter& operator=(const CopyMoveCounter&) = delete;
  CopyMoveCounter& operator=(CopyMoveCounter&&) = delete;
  void operator()() const {}
};

// Satellite regression: the old queue moved entries out of
// priority_queue::top() via const_cast; the slot pool made that disappear,
// but the contract — a scheduled callback is never copied, only moved —
// must hold forever.
TEST(EventQueue, PoppedCallbacksAreMovedNotCopied) {
  int copies = 0;
  int moves = 0;
  EventQueue q;
  q.ScheduleAt(1.0, CopyMoveCounter(&copies, &moves));
  q.ScheduleAt(2.0, CopyMoveCounter(&copies, &moves));
  EXPECT_EQ(q.RunAll(), 2u);
  EXPECT_EQ(copies, 0);
  EXPECT_GT(moves, 0);  // into the slot, out at pop
}

// ---------------------------------------------------------------------------
// EventQueue ordering / clock (moved from test_tcp.cc)
// ---------------------------------------------------------------------------

TEST(EventQueue, OrdersByTimeThenFifo) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(2.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(1.0, [&] { order.push_back(2); });  // same time: FIFO
  EXPECT_EQ(q.RunAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 2.0);
}

TEST(EventQueue, RunUntilAdvancesClock) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(1.0, [&] { ++ran; });
  q.ScheduleAt(5.0, [&] { ++ran; });
  EXPECT_EQ(q.RunUntil(3.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
  EXPECT_EQ(q.Pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.ScheduleIn(1.0, recurse);
  };
  q.ScheduleAt(0.0, recurse);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.Now(), 4.0);
}

TEST(EventQueue, RejectsPastAndNull) {
  EventQueue q;
  q.ScheduleAt(1.0, [] {});
  q.RunAll();
  EXPECT_THROW(q.ScheduleAt(0.5, [] {}), Error);
  EXPECT_THROW(q.ScheduleAt(2.0, nullptr), Error);
}

TEST(EventQueue, HeapOrderSurvivesInterleavedLoad) {
  // Exercise the 4-ary sift paths well past trivial sizes: a deterministic
  // pseudo-shuffled schedule must still run in exact (time, seq) order.
  EventQueue q;
  std::vector<std::pair<double, int>> ran;
  for (int i = 0; i < 500; ++i) {
    const double at = static_cast<double>((i * 7919) % 101);
    q.ScheduleAt(at, [&ran, at, i] { ran.emplace_back(at, i); });
  }
  EXPECT_EQ(q.RunAll(), 500u);
  ASSERT_EQ(ran.size(), 500u);
  for (std::size_t i = 1; i < ran.size(); ++i) {
    ASSERT_TRUE(ran[i - 1].first < ran[i].first ||
                (ran[i - 1].first == ran[i].first &&
                 ran[i - 1].second < ran[i].second))
        << "order violated at " << i;
  }
}

// ---------------------------------------------------------------------------
// Cancellation edge cases
// ---------------------------------------------------------------------------

TEST(EventQueue, SameTimestampKeepsScheduleOrderAcrossCancellation) {
  // Cancelling one of several simultaneous events must not disturb the
  // FIFO order of the survivors.
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  const auto victim = q.ScheduleAt(1.0, [&] { order.push_back(2); });
  q.ScheduleAt(1.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.Cancel(victim));
  EXPECT_EQ(q.RunAll(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelPendingEvent) {
  EventQueue q;
  int ran = 0;
  const auto id = q.ScheduleAt(1.0, [&] { ++ran; });
  EXPECT_EQ(q.Pending(), 1u);
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_EQ(q.Pending(), 0u);
  EXPECT_TRUE(q.Empty());
  // Cancelled events neither run nor count as executed.
  EXPECT_EQ(q.RunAll(), 0u);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(q.Executed(), 0u);
  EXPECT_EQ(q.Cancelled(), 1u);
}

TEST(EventQueue, CancelIsIdempotentAndRejectsRunIds) {
  EventQueue q;
  const auto id = q.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // second cancel is a no-op
  const auto ran_id = q.ScheduleAt(2.0, [] {});
  q.RunAll();
  EXPECT_FALSE(q.Cancel(ran_id));  // already executed: cancel-after-run
  EXPECT_FALSE(q.Cancel(123456));  // never issued
}

TEST(EventQueue, CancelFromInsideAnEarlierEvent) {
  // An event may retract a later one while the queue is running.
  EventQueue q;
  int ran = 0;
  EventQueue::EventId later = 0;
  q.ScheduleAt(1.0, [&] { EXPECT_TRUE(q.Cancel(later)); });
  later = q.ScheduleAt(2.0, [&] { ++ran; });
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(ran, 0);
  EXPECT_DOUBLE_EQ(q.Now(), 1.0);
}

TEST(EventQueue, StaleIdToRecycledSlotIsRejected) {
  // A cancelled event's slot is recycled for a later event; the stale
  // handle's generation no longer matches, so cancelling it again must not
  // kill the new occupant.
  EventQueue q;
  const auto stale = q.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(q.Cancel(stale));
  EXPECT_EQ(q.RunAll(), 0u);  // surfaces the dead slot, frees it
  int ran = 0;
  const auto fresh = q.ScheduleAt(2.0, [&] { ++ran; });  // reuses the slot
  EXPECT_FALSE(q.Cancel(stale));  // generation mismatch
  EXPECT_EQ(q.Pending(), 1u);
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(q.Cancel(fresh));  // cancel-after-run on the recycled slot
}

TEST(EventQueue, RunIdToRecycledSlotIsRejected) {
  // Same as above but the slot retires by *running*, not by cancellation.
  EventQueue q;
  const auto stale = q.ScheduleAt(1.0, [] {});
  EXPECT_EQ(q.RunAll(), 1u);
  int ran = 0;
  q.ScheduleAt(2.0, [&] { ++ran; });  // reuses the slot
  EXPECT_FALSE(q.Cancel(stale));
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(ran, 1);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(EventQueue, StatsTrackLifetimeCounts) {
  EventQueue q;
  const auto a = q.ScheduleAt(1.0, [] {});
  q.ScheduleAt(2.0, [] {});
  q.ScheduleAt(3.0, [] {});
  EXPECT_EQ(q.PeakPending(), 3u);
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_EQ(q.RunAll(), 2u);
  const EventQueue::Stats& s = q.GetStats();
  EXPECT_EQ(s.scheduled, 3u);
  EXPECT_EQ(s.executed, 2u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.peak_pending, 3u);
  // Refilling after drain does not shrink the peak.
  q.ScheduleAt(10.0, [] {});
  EXPECT_EQ(q.PeakPending(), 3u);
  q.RunAll();
  EXPECT_EQ(q.Executed(), 3u);
}

}  // namespace
}  // namespace mcloud
