// mcloudctl — command-line front door to the mcloud library.
//
//   mcloudctl generate  --users N [--pc N] [--seed S] [--threads N]
//                       [--anonymize KEY] [--faults] [--fail-rate R]
//                       [--loss-burst R] [--degraded R] [--hedge]
//                       [--out-of-core [--max-memory-mb M]] OUT
//   mcloudctl grow      --users N [--pc N] [--seed S] [--threads N]
//                       [--max-memory-mb M] [--analyze-while-generate] OUT
//   mcloudctl analyze   TRACE [--tau SECONDS|auto] [--threads N]
//                       [--max-memory-mb M] [--streaming]
//   mcloudctl sessions  TRACE [--tau SECONDS] [--top N]
//   mcloudctl convert   IN OUT
//   mcloudctl anonymize IN OUT --key KEY
//   mcloudctl simulate  [--device android|ios|pc] [--direction store|retrieve]
//                       [--file-mb N] [--seed S] [--no-ssai] [--pace]
//   mcloudctl simulate  --fail-rate R [--loss-burst R] [--degraded R]
//                       [--hedge] [--no-retry] [--users N] [--seed S]
//                       [--threads N] [--shards K]
//   mcloudctl validate  [--users N] [--seed S] [--seeds K] [--threads N]
//                       [--flows N] [--shards K] [--json FILE]
//                       [--out-of-core | --concurrent] [--max-memory-mb M]
//                       [--spill-dir D] [--spec NAME] [--specs-dir D]
//   mcloudctl specs     [--specs-dir D]
//   mcloudctl conform   SPEC [--users N] [--seed S] [--threads N]
//                       [--out-of-core [--spill-dir D]] [--json FILE]
//   mcloudctl matrix    SPEC... [--grids A,B] [--connections A,B]
//                       [--chunks A,B] [--users N] [--seed S] [--threads N]
//                       [--shards K] [--json FILE]
//   mcloudctl help
//
// The scenario lab (DESIGN.md §13): `specs` lists the declarative workload
// specs shipped in specs/; `generate --spec` / `validate --spec` compile a
// spec into the generator instead of the default calibration; `conform`
// checks a spec against its own declared [targets]; `matrix` sweeps
// spec × fault grid × connection strategy × chunk policy through the
// sharded fleet and emits one JSON report whose per-cell fingerprints are
// byte-identical at every --threads.
//
// Trace files are CSV (.csv), the columnar v2 binary format (.v2), or the
// row-wise v1 binary format (anything else); writes pick the format by
// extension, reads additionally sniff the v2 magic so a columnar file is
// recognized under any name. `analyze` runs the full §3 pipeline and prints
// the findings report — on a columnar trace it loads only the analysis
// columns and never materializes row structs; `simulate` runs one chunked
// transfer through the TCP substrate and prints its per-chunk timeline, or —
// when any fault knob is given — a whole session fleet against the
// fault-injected service, printing the availability report.
//
// Out-of-core mode: `generate --out-of-core OUT` writes a *partitioned
// trace directory* (per-day sorted run files + MANIFEST, see
// trace/partitioned_trace.h) under a bounded emission buffer, and `analyze`
// and `validate` stream such a directory through the out-of-core engine —
// same reports/fingerprints as the resident paths, at any --max-memory-mb.
//
// Online mode: `grow OUT` generates a partitioned trace *and* produces the
// findings report in one command — two-phase by default (spill, then the
// single-walk streaming engine), or fully overlapped with
// --analyze-while-generate (each sealed spill slice is analyzed while the
// next one is generated; see AnalysisPipeline::RunConcurrent). `analyze
// --streaming` runs the single-walk engine on an existing partition
// directory and prints the stage timing block with the sketch footprint;
// `validate --concurrent` validates through the overlapped pipeline and
// fingerprints identically to the resident run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/availability.h"
#include "analysis/sessionizer.h"
#include "cloud/fleet.h"
#include "cloud/storage_service.h"
#include "core/pipeline.h"
#include "trace/anonymizer.h"
#include "trace/log_io.h"
#include "trace/record_columns.h"
#include "scenario/conformance.h"
#include "scenario/matrix.h"
#include "scenario/workload_spec.h"
#include "trace/partitioned_trace.h"
#include "validate/validator.h"
#include "workload/generator.h"

namespace {

using namespace mcloud;

/// Minimal flag parser: --key value pairs plus positional arguments.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  [[nodiscard]] std::string Get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  [[nodiscard]] bool Has(const std::string& key) const {
    return flags.count(key) > 0;
  }
  [[nodiscard]] std::uint64_t GetU64(const std::string& key,
                                     std::uint64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] double GetDouble(const std::string& key,
                                 double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
  }
};

/// Shared fault-flag parsing for `generate --faults` and fleet `simulate`.
mcloud::fault::FaultConfig FaultsFrom(const Args& args) {
  mcloud::fault::FaultConfig f;
  f.frontend_fail_rate = args.GetDouble("fail-rate", 0.0);
  f.loss_burst_rate = args.GetDouble("loss-burst", 0.0);
  f.degraded_rate = args.GetDouble("degraded", 0.0);
  f.seed = args.GetU64("fault-seed", f.seed);
  return f;
}

Args Parse(int argc, char** argv, int first) {
  // Flags that never take a value, so a following positional (e.g. the
  // output path after `--faults`) is not swallowed as their argument.
  static const std::set<std::string> kBooleanFlags = {
      "no-ssai", "pace",      "faults",    "hedge",
      "no-retry", "out-of-core", "streaming", "analyze-while-generate",
      "concurrent"};
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key(a.substr(2));
      // Boolean flags take no value; value flags consume the next token.
      if (!kBooleanFlags.count(key) && i + 1 < argc && argv[i + 1][0] != '-') {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "";
      }
    } else {
      args.positional.emplace_back(a);
    }
  }
  return args;
}

/// Comma-separated axis lists for `matrix` (e.g. --grids none,frontend-flaky).
std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool IsCsv(const std::filesystem::path& p) { return p.extension() == ".csv"; }
bool IsV2(const std::filesystem::path& p) { return p.extension() == ".v2"; }

std::vector<LogRecord> ReadTrace(const std::filesystem::path& p) {
  if (IsCsv(p)) return ReadCsvTrace(p);
  if (IsColumnarTrace(p)) return ReadColumnarTrace(p).ToRecords();
  return ReadBinaryTrace(p);
}

void WriteTrace(const std::filesystem::path& p,
                std::span<const LogRecord> records) {
  if (IsCsv(p)) {
    WriteCsvTrace(p, records);
  } else if (IsV2(p)) {
    WriteColumnarTrace(p, TraceStore::FromRecords(records));
  } else {
    WriteBinaryTrace(p, records);
  }
}

int Usage() {
  std::fputs(
      "usage: mcloudctl COMMAND ...\n"
      "  generate  --users N [--pc N] [--seed S] [--threads N]\n"
      "            [--spec NAME] [--specs-dir D]\n"
      "            [--anonymize KEY] [--faults] [--fail-rate R]\n"
      "            [--loss-burst R] [--degraded R] [--hedge]\n"
      "            [--out-of-core [--max-memory-mb M]] OUT\n"
      "  grow      --users N [--pc N] [--seed S] [--threads N]\n"
      "            [--max-memory-mb M] [--analyze-while-generate] OUT\n"
      "  analyze   TRACE [--tau SECONDS|auto] [--threads N]\n"
      "            [--max-memory-mb M] [--streaming]\n"
      "  sessions  TRACE [--tau SECONDS] [--top N]\n"
      "  convert   IN OUT\n"
      "  anonymize IN OUT --key KEY\n"
      "  simulate  [--device android|ios|pc] [--direction store|retrieve]\n"
      "            [--file-mb N] [--seed S] [--no-ssai] [--pace]\n"
      "  simulate  --fail-rate R [--loss-burst R] [--degraded R] [--hedge]\n"
      "            [--no-retry] [--users N] [--seed S] [--threads N]\n"
      "            [--shards K]\n"
      "  validate  [--users N] [--seed S] [--seeds K] [--threads N]\n"
      "            [--flows N] [--shards K] [--json FILE]\n"
      "            [--out-of-core | --concurrent] [--max-memory-mb M]\n"
      "            [--spill-dir D] [--spec NAME] [--specs-dir D]\n"
      "  specs     [--specs-dir D]\n"
      "  conform   SPEC [--users N] [--seed S] [--threads N]\n"
      "            [--out-of-core [--spill-dir D] [--max-memory-mb M]]\n"
      "            [--specs-dir D] [--json FILE]\n"
      "  matrix    SPEC... [--grids A,B] [--connections A,B] [--chunks A,B]\n"
      "            [--users N] [--seed S] [--threads N] [--shards K]\n"
      "            [--specs-dir D] [--json FILE]\n"
      "Scenario lab: SPEC is a name resolved in the specs directory\n"
      "(--specs-dir, $MCLOUD_SPECS_DIR, or the shipped specs/) or a path to\n"
      "a .spec file. `conform` checks a spec against its own declared\n"
      "[targets] and exits non-zero when any check fails; `matrix` sweeps\n"
      "spec x fault grid x connection strategy x chunk policy through the\n"
      "sharded fleet and writes one JSON report whose fingerprints are\n"
      "byte-identical at every --threads.\n"
      "Trace format: .csv is CSV, .v2 is the columnar binary format,\n"
      "anything else is the row-wise v1 binary format (reads also sniff\n"
      "the v2 magic). With --out-of-core, generate's OUT (and analyze's\n"
      "TRACE) is a partitioned trace *directory*; --max-memory-mb bounds\n"
      "the resident footprint. grow writes a partitioned directory AND\n"
      "prints the findings report — two disk phases by default, one\n"
      "overlapped walk with --analyze-while-generate. analyze --streaming\n"
      "runs the single-walk engine on a partition directory and prints the\n"
      "stage timings with the sketch footprint; validate --concurrent\n"
      "validates through the overlapped pipeline. --threads 0 (the\n"
      "default) uses all hardware threads; output is identical for every\n"
      "thread count, memory budget, and execution strategy.\n",
      stderr);
  return 2;
}

/// Per-stage generation breakdown (the generator fast path's bench view).
/// plan/emit are CPU seconds summed over workers; sort/write are wall
/// seconds of the serial stages, so the fields need not sum to total.
void PrintGenTimings(const workload::GenTimings& gt) {
  std::fprintf(stderr,
               "gen timings: plan %.2fs emit %.2fs sort %.2fs write %.2fs "
               "(total %.2fs)\n",
               gt.plan_s, gt.emit_s, gt.sort_s, gt.write_s, gt.total_s);
#ifndef NDEBUG
  // Pooled-scratch health: steady-state generation should stop growing
  // after warm-up, so these stay near the session/record high-water marks.
  std::fprintf(stderr,
               "gen allocs: %zu plan slots, %zu record buffer growths\n",
               gt.plan_slot_allocs, gt.record_buffer_growths);
#endif
}

int CmdGenerate(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  workload::WorkloadConfig cfg;
  if (args.Has("spec")) {
    // Compile a declarative scenario spec; --users/--pc still override the
    // spec's population (the model parameters come from the spec).
    const scenario::WorkloadSpec spec =
        scenario::LoadSpec(args.Get("spec"), args.Get("specs-dir"));
    cfg = scenario::Compile(spec, args.GetU64("seed", 42),
                            static_cast<int>(args.GetU64("threads", 0)));
    cfg.population.mobile_users =
        args.GetU64("users", cfg.population.mobile_users);
    cfg.population.pc_only_users =
        args.GetU64("pc", cfg.population.pc_only_users);
  } else {
    cfg.population.mobile_users = args.GetU64("users", 6000);
    cfg.population.pc_only_users =
        args.GetU64("pc", cfg.population.mobile_users / 3);
    cfg.seed = args.GetU64("seed", 42);
    cfg.threads = static_cast<int>(args.GetU64("threads", 0));
  }

  std::fprintf(stderr,
               "generating: %zu mobile users, %zu PC-only, seed %llu...\n",
               cfg.population.mobile_users, cfg.population.pc_only_users,
               static_cast<unsigned long long>(cfg.seed));
  if (args.Has("out-of-core")) {
    if (args.Has("faults") || args.Has("anonymize")) {
      std::fprintf(stderr, "mcloudctl: --out-of-core cannot be combined "
                           "with --faults or --anonymize\n");
      return 2;
    }
    std::filesystem::create_directories(args.positional[0]);
    workload::SpillConfig spill;
    spill.dir = args.positional[0];
    spill.max_buffer_bytes =
        std::max<std::uint64_t>(args.GetU64("max-memory-mb", 2048),
                                64) * (1024 * 1024 / 3);
    workload::GenTimings gt;
    const workload::SpillSummary s =
        workload::WorkloadGenerator(cfg).GenerateToPartitions(spill, &gt);
    std::fprintf(stderr,
                 "wrote %llu records to %s (%zu spills, %zu run files)\n",
                 static_cast<unsigned long long>(s.records),
                 args.positional[0].c_str(), s.spills, s.run_files);
    PrintGenTimings(gt);
    return 0;
  }
  workload::Workload w;
  if (args.Has("faults")) {
    // Route the plans through the full storage service under fault
    // injection: the emitted trace is what the measurement pipeline would
    // have logged while front-ends crash and clients retry. Much slower
    // than the fast-path emitter (per-chunk TCP simulation).
    cloud::ServiceConfig svc;
    svc.faults = FaultsFrom(args);
    if (!svc.faults.Any()) svc.faults.frontend_fail_rate = 0.01;
    if (args.Has("hedge")) svc.retry.hedge = true;
    w = workload::WorkloadGenerator(cfg).GeneratePlansOnly();
    cloud::StorageService service(svc);
    auto result = service.Execute(w.sessions);
    std::fputs(
        analysis::RenderAvailability(analysis::Availability(result)).c_str(),
        stderr);
    w.trace = std::move(result.logs);
  } else {
    workload::GenTimings gt;
    w = workload::WorkloadGenerator(cfg).Generate(&gt);
    PrintGenTimings(gt);
  }
  if (args.Has("anonymize")) {
    w.trace = Anonymizer(args.Get("anonymize")).Apply(w.trace);
  }
  WriteTrace(args.positional[0], w.trace);
  std::fprintf(stderr, "wrote %zu records to %s\n", w.trace.size(),
               args.positional[0].c_str());
  // The fleet-determinism CI check diffs this line across thread counts.
  std::fprintf(stderr, "trace fingerprint: %016llx\n",
               static_cast<unsigned long long>(
                   TraceFingerprint(std::span<const LogRecord>(w.trace))));
  return 0;
}

void PrintStageTimings(const core::StageTimings& st,
                       const core::FullReport& report) {
  std::fprintf(stderr,
               "timings: scan %.2fs sessionize %.2fs per-user %.2fs "
               "fits %.2fs (total %.2fs); sketches %.1f KiB\n",
               st.scan_s, st.sessionize_s, st.per_user_s, st.fits_s,
               st.total_s,
               static_cast<double>(report.sketches.MemoryBytes()) / 1024.0);
}

int CmdAnalyze(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  const bool streaming = args.Has("streaming");
  core::PipelineOptions opts;
  const std::string tau = args.Get("tau", "3600");
  opts.session_tau = tau == "auto" ? 0 : std::strtod(tau.c_str(), nullptr);
  opts.threads = static_cast<int>(args.GetU64("threads", 0));
  if (streaming && opts.session_tau <= 0) {
    std::fprintf(stderr, "mcloudctl: --streaming needs a fixed --tau (the "
                         "single-walk engine cannot derive it)\n");
    return 2;
  }
  const core::AnalysisPipeline pipeline(opts);

  const std::filesystem::path path = args.positional[0];
  core::FullReport report;
  core::StageTimings st;
  if (std::filesystem::is_directory(path)) {
    // Partitioned trace directory: stream it through the out-of-core
    // engine under the requested budget — one walk with --streaming, two
    // without.
    opts.max_memory_mb =
        static_cast<std::size_t>(args.GetU64("max-memory-mb", 0));
    const core::AnalysisPipeline streamer(opts);
    const PartitionedTrace part = PartitionedTrace::Open(path);
    report = streaming ? streamer.RunStreaming(part, &st)
                       : streamer.RunOutOfCore(part, &st);
  } else if (!IsCsv(path) && IsColumnarTrace(path)) {
    // Columnar fast path: load only the columns the pipeline touches and
    // feed the store directly — no LogRecord vector is ever built.
    report = pipeline.Run(ReadColumnarTrace(path, kAnalysisColumns), &st);
  } else {
    report = pipeline.Run(ReadTrace(path), &st);
  }
  std::fputs(core::RenderFindings(report).c_str(), stdout);
  if (streaming) PrintStageTimings(st, report);
  return 0;
}

/// Generate a partitioned trace directory AND produce its findings report.
/// Two-phase by default (spill everything, then the single-walk streaming
/// engine); with --analyze-while-generate each sealed spill slice feeds the
/// concurrent pipeline while the next slice is generated, so the report is
/// ready moments after the last record is written.
int CmdGrow(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  workload::WorkloadConfig cfg;
  cfg.population.mobile_users = args.GetU64("users", 6000);
  cfg.population.pc_only_users =
      args.GetU64("pc", cfg.population.mobile_users / 3);
  cfg.seed = args.GetU64("seed", 42);
  cfg.threads = static_cast<int>(args.GetU64("threads", 0));

  std::filesystem::create_directories(args.positional[0]);
  const std::uint64_t budget_mb =
      std::max<std::uint64_t>(args.GetU64("max-memory-mb", 2048), 64);
  workload::SpillConfig spill;
  spill.dir = args.positional[0];
  spill.max_buffer_bytes = budget_mb * (1024 * 1024 / 3);

  core::PipelineOptions popts;
  popts.session_tau = std::strtod(args.Get("tau", "3600").c_str(), nullptr);
  popts.threads = cfg.threads;
  popts.max_memory_mb = static_cast<std::size_t>(budget_mb);
  if (popts.session_tau <= 0) {
    std::fprintf(stderr, "mcloudctl: grow needs a fixed --tau\n");
    return 2;
  }
  const core::AnalysisPipeline pipeline(popts);
  const workload::WorkloadGenerator generator(cfg);

  const bool overlapped = args.Has("analyze-while-generate");
  std::fprintf(stderr,
               "growing %s: %zu mobile users, %zu PC-only, seed %llu (%s)\n",
               args.positional[0].c_str(), cfg.population.mobile_users,
               cfg.population.pc_only_users,
               static_cast<unsigned long long>(cfg.seed),
               overlapped ? "analyze-while-generate" : "two-phase");

  core::FullReport report;
  core::StageTimings st;
  workload::SpillSummary sum;
  workload::GenTimings gt;
  if (overlapped) {
    // A third of the two-phase slice size: the overlapped pipeline keeps
    // up to three slices in flight (producer buffer, queue slot, consumer)
    // at the same total budget.
    spill.max_buffer_bytes = budget_mb * (1024 * 1024 / 9);
    report = pipeline.RunConcurrent(
        [&](const core::AnalysisPipeline::SliceConsumer& consume) {
          sum = generator.GenerateToPartitions(spill, consume, &gt);
        },
        &st);
  } else {
    sum = generator.GenerateToPartitions(spill, &gt);
    report =
        pipeline.RunStreaming(PartitionedTrace::Open(spill.dir), &st);
  }
  std::fprintf(stderr,
               "wrote %llu records to %s (%zu spills, %zu run files)\n",
               static_cast<unsigned long long>(sum.records),
               args.positional[0].c_str(), sum.spills, sum.run_files);
  std::fputs(core::RenderFindings(report).c_str(), stdout);
  PrintGenTimings(gt);
  PrintStageTimings(st, report);
  return 0;
}

int CmdSessions(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  const auto trace = ReadTrace(args.positional[0]);
  const Seconds tau = std::strtod(args.Get("tau", "3600").c_str(), nullptr);
  const auto sessions = analysis::Sessionizer(tau).Sessionize(trace);

  const std::uint64_t top = args.GetU64("top", 20);
  std::printf("%zu sessions (tau = %.0f s); largest %llu by volume:\n",
              sessions.size(), tau,
              static_cast<unsigned long long>(top));
  std::vector<const analysis::Session*> by_volume;
  by_volume.reserve(sessions.size());
  for (const auto& s : sessions) by_volume.push_back(&s);
  std::sort(by_volume.begin(), by_volume.end(),
            [](const auto* a, const auto* b) {
              return a->Volume() > b->Volume();
            });
  std::printf("%-12s %-10s %8s %8s %10s %10s %8s\n", "user", "type", "ops",
              "chunks", "volume MB", "length s", "oper s");
  for (std::uint64_t i = 0; i < top && i < by_volume.size(); ++i) {
    const auto& s = *by_volume[i];
    const char* type = s.SessionType() == analysis::Session::Type::kStoreOnly
                           ? "store"
                       : s.SessionType() ==
                               analysis::Session::Type::kRetrieveOnly
                           ? "retrieve"
                           : "mixed";
    std::printf("%-12llu %-10s %8zu %8zu %10.1f %10.0f %8.0f\n",
                static_cast<unsigned long long>(s.user_id), type, s.FileOps(),
                s.chunk_requests, ToMB(s.Volume()), s.Length(),
                s.OperatingTime());
  }
  return 0;
}

int CmdConvert(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const auto trace = ReadTrace(args.positional[0]);
  WriteTrace(args.positional[1], trace);
  std::fprintf(stderr, "converted %zu records: %s -> %s\n", trace.size(),
               args.positional[0].c_str(), args.positional[1].c_str());
  return 0;
}

int CmdAnonymize(const Args& args) {
  if (args.positional.size() != 2 || !args.Has("key")) return Usage();
  const auto trace = ReadTrace(args.positional[0]);
  const auto anonymized = Anonymizer(args.Get("key")).Apply(trace);
  WriteTrace(args.positional[1], anonymized);
  std::fprintf(stderr, "anonymized %zu records\n", anonymized.size());
  return 0;
}

/// Fleet simulation under fault injection: generate session plans for a
/// small population, execute them against the storage service with the
/// requested failure/loss/degradation rates, and print the availability
/// report.
int CmdSimulateFleet(const Args& args) {
  workload::WorkloadConfig wcfg;
  wcfg.population.mobile_users = args.GetU64("users", 400);
  wcfg.population.pc_only_users =
      args.GetU64("pc", wcfg.population.mobile_users / 3);
  wcfg.seed = args.GetU64("seed", 42);
  const auto w = workload::WorkloadGenerator(wcfg).GeneratePlansOnly();

  cloud::FleetConfig cfg;
  cfg.service.faults = FaultsFrom(args);
  if (args.Has("no-retry")) cfg.service.retry = fault::RetryPolicy::None();
  if (args.Has("hedge")) cfg.service.retry.hedge = true;
  cfg.shards = static_cast<std::uint32_t>(args.GetU64("shards", cfg.shards));
  cfg.threads = static_cast<int>(args.GetU64("threads", 0));

  std::fprintf(stderr,
               "simulating %zu sessions (%u shards): fail-rate %.3f, "
               "loss-burst %.3f, degraded %.3f, %s\n",
               w.sessions.size(), cfg.shards,
               cfg.service.faults.frontend_fail_rate,
               cfg.service.faults.loss_burst_rate,
               cfg.service.faults.degraded_rate,
               args.Has("no-retry")  ? "no retries"
               : cfg.service.retry.hedge ? "default retry policy + hedging"
                                         : "default retry policy");
  const auto result = cloud::ExecuteFleet(cfg, w.sessions).result;
  std::fputs(
      analysis::RenderAvailability(analysis::Availability(result)).c_str(),
      stdout);
  const auto by_device = analysis::SuccessRateByDevice(result);
  std::printf("  success by device   android %.4f  ios %.4f  pc %.4f\n",
              by_device[0], by_device[1], by_device[2]);
  return 0;
}

int CmdSimulate(const Args& args) {
  if (args.Has("fail-rate") || args.Has("loss-burst") ||
      args.Has("degraded") || args.Has("hedge") || args.Has("no-retry")) {
    return CmdSimulateFleet(args);
  }
  const std::string device = args.Get("device", "android");
  cloud::ServiceConfig cfg;
  cfg.ssai_enabled = !args.Has("no-ssai");
  cfg.pace_after_idle = args.Has("pace");
  const cloud::StorageService service(cfg);

  const DeviceType dev = device == "ios"  ? DeviceType::kIos
                         : device == "pc" ? DeviceType::kPc
                                          : DeviceType::kAndroid;
  const Direction dir = args.Get("direction", "store") == "retrieve"
                            ? Direction::kRetrieve
                            : Direction::kStore;
  const Bytes size = args.GetU64("file-mb", 8) * kMiB;
  const auto flow =
      service.SimulateFlow(dev, dir, size, args.GetU64("seed", 1));

  std::printf("%s %s of %.0f MB: %.2f s total, %llu slow-start restarts, "
              "%llu timeouts\n",
              device.c_str(),
              dir == Direction::kStore ? "upload" : "download", ToMB(size),
              flow.duration,
              static_cast<unsigned long long>(flow.restarts),
              static_cast<unsigned long long>(flow.timeouts));
  std::printf("%6s %10s %10s %10s %10s %9s\n", "chunk", "t_tran s",
              "T_srv s", "T_clt s", "idle s", "restart");
  for (std::size_t i = 0; i < flow.chunks.size(); ++i) {
    const auto& c = flow.chunks[i];
    std::printf("%6zu %10.2f %10.3f %10.3f %10.3f %9s\n", i + 1,
                c.transfer_time, c.server_time, c.client_time, c.idle_before,
                c.restarted ? "yes" : "");
  }
  return 0;
}

/// Shared --json writer for the scenario-lab commands.
void WriteJsonFile(const std::string& path, const std::string& json) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

/// List the specs visible in the resolved specs directory.
int CmdSpecs(const Args& args) {
  const std::string dir = args.Get("specs-dir");
  const auto names = scenario::ListSpecs(dir);
  if (names.empty()) {
    const std::string where =
        dir.empty() ? std::string(scenario::DefaultSpecsDir()) : dir;
    std::fprintf(stderr, "no specs found in %s\n", where.c_str());
    return 1;
  }
  for (const auto& name : names) {
    const scenario::WorkloadSpec spec = scenario::LoadSpec(name, dir);
    std::printf("%-24s %zu mobile + %zu PC users, %d days — %s\n",
                name.c_str(), spec.mobile_users, spec.pc_only_users,
                static_cast<int>(spec.days), spec.description.c_str());
  }
  return 0;
}

/// Self-conformance: run a spec's workload through the analysis pipeline
/// and gate its declared [targets] with the GoF tolerance machinery. Exit 0
/// iff every declared target passes.
int CmdConform(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  const scenario::WorkloadSpec spec =
      scenario::LoadSpec(args.positional[0], args.Get("specs-dir"));
  scenario::ConformanceOptions opts;
  opts.seed = args.GetU64("seed", opts.seed);
  opts.threads = static_cast<int>(args.GetU64("threads", 0));
  opts.users_override = args.GetU64("users", 0);
  opts.out_of_core = args.Has("out-of-core");
  opts.spill_dir = args.Get("spill-dir");
  opts.max_memory_mb = static_cast<std::size_t>(
      args.GetU64("max-memory-mb", opts.max_memory_mb));
  std::filesystem::path owned_spill;
  if (opts.out_of_core && opts.spill_dir.empty()) {
    owned_spill = std::filesystem::temp_directory_path() /
                  ("mcloud-conform-" + spec.name + "-" +
                   std::to_string(opts.seed));
    std::filesystem::remove_all(owned_spill);
    std::filesystem::create_directories(owned_spill);
    opts.spill_dir = owned_spill.string();
  }
  const scenario::ConformanceRun run = scenario::RunConformance(spec, opts);
  if (!owned_spill.empty()) std::filesystem::remove_all(owned_spill);
  std::fputs(scenario::RenderText(run).c_str(), stdout);
  WriteJsonFile(args.Get("json"), scenario::ToJson(run));
  return run.AllPassed() ? 0 : 1;
}

/// What-if matrix: sweep spec x fault grid x connection strategy x chunk
/// policy through the sharded fleet; one JSON report, byte-identical at
/// every --threads.
int CmdMatrix(const Args& args) {
  if (args.positional.empty()) return Usage();
  scenario::MatrixOptions opts;
  opts.specs = args.positional;
  if (args.Has("grids")) opts.faults = SplitList(args.Get("grids"));
  if (args.Has("connections"))
    opts.connections = SplitList(args.Get("connections"));
  if (args.Has("chunks")) opts.chunk_policies = SplitList(args.Get("chunks"));
  opts.users = args.GetU64("users", 0);
  opts.seed = args.GetU64("seed", opts.seed);
  opts.threads = static_cast<int>(args.GetU64("threads", 0));
  opts.shards = static_cast<std::uint32_t>(args.GetU64("shards", opts.shards));
  opts.specs_dir = args.Get("specs-dir");
  const scenario::MatrixReport report = scenario::RunMatrix(opts);
  std::fputs(scenario::RenderText(report).c_str(), stdout);
  WriteJsonFile(args.Get("json"), scenario::ToJson(report));
  return 0;
}

/// Paper-fidelity validation: generate → analyze → fleet-simulate → run
/// every FigureCheck. Exit 0 iff all checks pass (single run) or the
/// run-level pass rate is >= 95% (--seeds sweep). --json writes the
/// machine-readable manifest CI archives.
int CmdValidate(const Args& args) {
  validate::ValidateOptions opts;
  if (args.Has("spec")) {
    // Validate against a scenario spec's model: the spec supplies the
    // population and parameters; --users still scales the population down
    // (PC-only users shrink proportionally, so paper2016 at --users 4000
    // fingerprints identically to the default 4000-user run).
    const scenario::WorkloadSpec spec =
        scenario::LoadSpec(args.Get("spec"), args.Get("specs-dir"));
    opts.users = args.GetU64("users", spec.mobile_users);
    opts.pc_users = spec.pc_only_users * opts.users / spec.mobile_users;
    opts.model = spec.model;
  } else {
    opts.users = args.GetU64("users", opts.users);
  }
  opts.seed = args.GetU64("seed", opts.seed);
  opts.threads = static_cast<int>(args.GetU64("threads", 0));
  opts.fleet_flows = args.GetU64("flows", opts.fleet_flows);
  opts.fleet_shards =
      static_cast<std::uint32_t>(args.GetU64("shards", opts.fleet_shards));
  opts.out_of_core = args.Has("out-of-core");
  opts.concurrent = args.Has("concurrent");
  opts.max_memory_mb = static_cast<std::size_t>(
      args.GetU64("max-memory-mb", opts.max_memory_mb));
  opts.spill_dir = args.Get("spill-dir");
  const std::uint64_t seeds = args.GetU64("seeds", 1);
  const std::string json_path = args.Get("json");

  auto write_json = [&](const std::string& json) {
    if (json_path.empty()) return;
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  };

  if (seeds <= 1) {
    const validate::ValidationRun run = validate::RunValidation(opts);
    std::fputs(validate::RenderText(run).c_str(), stdout);
    write_json(validate::ToJson(run));
    return run.AllPassed() ? 0 : 1;
  }

  const validate::SeedSweep sweep = validate::RunSeedSweep(opts, seeds);
  for (const auto& run : sweep.runs) {
    std::printf("seed %-6llu %zu/%zu checks passed (%.1f s)\n",
                static_cast<unsigned long long>(run.options.seed),
                run.Passed(), run.outcomes.size(), run.total_s);
  }
  std::printf("sweep: %zu seeds, run pass rate %.2f "
              "(bootstrap 95%% CI [%.2f, %.2f])\n",
              sweep.runs.size(), sweep.run_pass_rate, sweep.pass_rate_ci.lo,
              sweep.pass_rate_ci.hi);
  for (const auto& [id, count] : sweep.failures_by_check)
    std::printf("  failing check: %-24s %zu/%zu seeds\n", id.c_str(), count,
                sweep.runs.size());
  write_json(validate::ToJson(sweep));
  return sweep.run_pass_rate >= 0.95 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string_view cmd = argv[1];
  const Args args = Parse(argc, argv, 2);
  try {
    if (cmd == "generate") return CmdGenerate(args);
    if (cmd == "grow") return CmdGrow(args);
    if (cmd == "analyze") return CmdAnalyze(args);
    if (cmd == "sessions") return CmdSessions(args);
    if (cmd == "convert") return CmdConvert(args);
    if (cmd == "anonymize") return CmdAnonymize(args);
    if (cmd == "simulate") return CmdSimulate(args);
    if (cmd == "specs") return CmdSpecs(args);
    if (cmd == "conform") return CmdConform(args);
    if (cmd == "matrix") return CmdMatrix(args);
    if (cmd == "validate") return CmdValidate(args);
    if (cmd == "help" || cmd == "--help") {
      Usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcloudctl: %s\n", e.what());
    return 1;
  }
  return Usage();
}
