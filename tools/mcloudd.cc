// mcloudd — the live storage front-end daemon (DESIGN.md §11).
//
//   mcloudd [--port P] [--bind ADDR] [--front-ends N] [--log FILE]
//           [--stats-json FILE] [--max-body-mb M] [--self-check]
//
// Binds (port 0 = kernel-assigned), prints one machine-readable line
//
//   mcloudd listening on ADDR:PORT
//
// to stdout, then serves the chunk protocol of src/net/live_protocol.h
// until SIGINT/SIGTERM. On shutdown it drains in-flight requests, writes
// the live request log (Table 1 schema; --log picks CSV or v1 binary by
// extension) and the service counters (--stats-json, also printed), so a
// live run feeds the exact same analysis pipeline as a simulated trace.
//
// --self-check binds, prints the port, and immediately drains — the ctest
// probe that port-0 startup and clean shutdown work.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/epoll_server.h"
#include "net/live_service.h"
#include "trace/log_io.h"
#include "util/error.h"

namespace {

using namespace mcloud;

struct Args {
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::string Get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  [[nodiscard]] bool Has(const std::string& key) const {
    return flags.count(key) > 0;
  }
  [[nodiscard]] std::uint64_t GetU64(const std::string& key,
                                     std::uint64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

Args Parse(int argc, char** argv) {
  static const std::set<std::string> kBooleanFlags = {"self-check", "help"};
  static const std::set<std::string> kValueFlags = {
      "port", "bind", "front-ends", "log", "stats-json", "max-body-mb"};
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    const bool is_flag = a.rfind("--", 0) == 0;
    const std::string key(is_flag ? a.substr(2) : a);
    if (!is_flag || (!kBooleanFlags.count(key) && !kValueFlags.count(key))) {
      throw Error("mcloudd: unknown argument: " + std::string(a));
    }
    if (kValueFlags.count(key) && i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[key] = argv[++i];
    } else {
      args.flags[key] = "";
    }
  }
  return args;
}

void Usage() {
  std::fprintf(stderr,
               "usage: mcloudd [--port P] [--bind ADDR] [--front-ends N]\n"
               "               [--log FILE] [--stats-json FILE]\n"
               "               [--max-body-mb M] [--self-check]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    args = Parse(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    Usage();
    return 2;
  }
  if (args.Has("help")) {
    Usage();
    return 0;
  }
  // Socket sends use MSG_NOSIGNAL, but stdout may be a pipe whose reader
  // (a spawning mcloudload) is long gone by shutdown time.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    net::LiveServiceConfig service_config;
    service_config.front_ends = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, args.GetU64("front-ends", 4)));
    net::LiveService service(service_config);

    net::ServerConfig server_config;
    server_config.bind_address = args.Get("bind", "127.0.0.1");
    server_config.port =
        static_cast<std::uint16_t>(args.GetU64("port", 0));
    if (args.Has("max-body-mb")) {
      server_config.limits.max_body_bytes =
          static_cast<std::size_t>(args.GetU64("max-body-mb", 4)) * 1024 *
          1024;
    }
    net::EpollServer server(
        server_config,
        [&service](const net::HttpRequest& req,
                   const net::RequestContext& ctx) {
          return service.Handle(req, ctx);
        });
    const std::uint16_t port = server.Start();
    // The one line spawners parse; flushed before serving starts.
    std::printf("mcloudd listening on %s:%u\n",
                server_config.bind_address.c_str(),
                static_cast<unsigned>(port));
    std::fflush(stdout);

    if (args.Has("self-check")) {
      server.RequestStop();
    } else {
      net::EpollServer::InstallStopSignals(&server);
    }
    server.Run();
    net::EpollServer::InstallStopSignals(nullptr);

    // Snapshot stats before TakeLog() empties the service's log buffer,
    // so log_records reports the session total rather than zero.
    const std::string stats = service.StatsJson();

    // Chunk-retrieve records land at response-flush time, so the live log
    // is only near-sorted; restore the canonical trace order.
    std::vector<LogRecord> log = service.TakeLog();
    std::stable_sort(log.begin(), log.end(), LogRecordTimeOrder);
    const std::string log_path = args.Get("log");
    if (!log_path.empty()) {
      if (log_path.size() > 4 &&
          log_path.compare(log_path.size() - 4, 4, ".csv") == 0) {
        WriteCsvTrace(log_path, log);
      } else {
        WriteBinaryTrace(log_path, log);
      }
    }
    const std::string stats_path = args.Get("stats-json");
    if (!stats_path.empty()) {
      std::ofstream out(stats_path);
      out << stats << "\n";
    }
    const net::ServerStats& ss = server.stats();
    std::printf("mcloudd: %llu requests on %llu connections, %llu records\n",
                static_cast<unsigned long long>(ss.requests),
                static_cast<unsigned long long>(ss.accepted),
                static_cast<unsigned long long>(log.size()));
    std::printf("%s\n", stats.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "mcloudd: %s\n", e.what());
    return 1;
  }
}
