// mcloudload — open-loop trace-replay load generator (DESIGN.md §11).
//
//   mcloudload (--trace PATH | --users N [--pc N] [--seed S] [--days D])
//              [--port P | --spawn MCLOUDD_PATH]
//              [--qps Q | --duration S] [--connections N] [--per-request]
//              [--max-chunk-kb K] [--no-verify] [--host ADDR]
//              [--json FILE] [--server-log FILE]
//
// The trace source is either an on-disk trace (--trace: CSV, v1 binary, or
// a partitioned MCLOGv02 directory) or a freshly generated workload
// (--users, same generator as `mcloudctl generate`). Each Table 1 record
// becomes exactly one wire request, scheduled open-loop at its trace
// timestamp rescaled to the target rate (--qps, or --duration to fix the
// replay length regardless of record count).
//
// --spawn forks/execs an `mcloudd --port 0`, parses the kernel-assigned
// port from its "listening on" line, replays against it, SIGTERMs it, and
// then cross-checks the server's written log against the input trace: the
// run fails unless per-session record counts match 1:1. This is the ctest
// loopback integration path — one command, no fixed ports, no sleeps.
//
// Exit status is non-zero on transport errors, verification failures,
// HTTP errors, or a live-log/trace mismatch.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/replay.h"
#include "trace/log_io.h"
#include "util/error.h"
#include "workload/generator.h"

namespace {

using namespace mcloud;

struct Args {
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::string Get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  [[nodiscard]] bool Has(const std::string& key) const {
    return flags.count(key) > 0;
  }
  [[nodiscard]] std::uint64_t GetU64(const std::string& key,
                                     std::uint64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] double GetDouble(const std::string& key,
                                 double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
  }
};

Args Parse(int argc, char** argv) {
  static const std::set<std::string> kBooleanFlags = {"per-request",
                                                      "no-verify", "help"};
  static const std::set<std::string> kValueFlags = {
      "trace", "users",        "pc",   "seed", "days",       "port",
      "spawn", "qps",          "duration",     "connections", "host",
      "json",  "max-chunk-kb", "server-log"};
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    const bool is_flag = a.rfind("--", 0) == 0;
    const std::string key(is_flag ? a.substr(2) : a);
    if (!is_flag || (!kBooleanFlags.count(key) && !kValueFlags.count(key))) {
      throw Error("mcloudload: unknown argument: " + std::string(a));
    }
    if (kValueFlags.count(key) && i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[key] = argv[++i];
    } else {
      args.flags[key] = "";
    }
  }
  return args;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: mcloudload (--trace PATH | --users N [--pc N] [--seed S]\n"
      "                   [--days D]) [--port P | --spawn MCLOUDD]\n"
      "                  [--qps Q | --duration S] [--connections N]\n"
      "                  [--per-request] [--max-chunk-kb K] [--no-verify]\n"
      "                  [--host ADDR] [--json FILE] [--server-log FILE]\n");
}

/// A spawned `mcloudd --port 0` child: fork/exec, port parsed from its
/// "listening on" line, SIGTERM + waitpid on Stop().
struct SpawnedServer {
  pid_t pid = -1;
  std::uint16_t port = 0;

  static SpawnedServer Launch(const std::string& binary,
                              const std::string& log_path) {
    int fds[2];
    MCLOUD_REQUIRE(::pipe(fds) == 0, "mcloudload: pipe failed");
    SpawnedServer s;
    s.pid = ::fork();
    MCLOUD_REQUIRE(s.pid >= 0, "mcloudload: fork failed");
    if (s.pid == 0) {
      ::close(fds[0]);
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      ::execl(binary.c_str(), "mcloudd", "--port", "0", "--log",
              log_path.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "mcloudload: exec %s failed: %s\n",
                   binary.c_str(), std::strerror(errno));
      ::_exit(127);
    }
    ::close(fds[1]);
    // Read the child's first line: "mcloudd listening on ADDR:PORT".
    std::string line;
    char c;
    while (::read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    ::close(fds[0]);
    const auto colon = line.rfind(':');
    MCLOUD_REQUIRE(colon != std::string::npos && colon + 1 < line.size(),
                   "mcloudload: could not parse mcloudd port from '" + line +
                       "'");
    s.port = static_cast<std::uint16_t>(
        std::strtoul(line.c_str() + colon + 1, nullptr, 10));
    MCLOUD_REQUIRE(s.port != 0, "mcloudload: mcloudd reported port 0");
    return s;
  }

  /// Graceful stop; returns the child's exit status (-1 on abnormal exit).
  int Stop() const {
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    args = Parse(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    Usage();
    return 2;
  }
  if (args.Has("help")) {
    Usage();
    return 0;
  }
  try {
    // --- trace source ----------------------------------------------------
    std::vector<LogRecord> trace;
    if (args.Has("trace")) {
      trace = net::LoadTraceForReplay(args.Get("trace"));
    } else if (args.Has("users")) {
      workload::WorkloadConfig wc;
      wc.seed = args.GetU64("seed", 42);
      wc.population.mobile_users =
          static_cast<std::size_t>(args.GetU64("users", 100));
      wc.population.pc_only_users =
          static_cast<std::size_t>(args.GetU64("pc", 0));
      wc.population.days = static_cast<int>(args.GetU64("days", 7));
      wc.threads = 1;
      trace = workload::WorkloadGenerator(wc).Generate().trace;
    } else {
      Usage();
      return 2;
    }
    MCLOUD_REQUIRE(!trace.empty(), "mcloudload: trace source is empty");

    // --- plan ------------------------------------------------------------
    net::ReplayPlanOptions plan_options;
    plan_options.max_chunk_bytes = args.GetU64("max-chunk-kb", 0) * kKiB;
    plan_options.target_qps = args.GetDouble("qps", 0.0);
    if (args.Has("duration")) {
      const double duration = std::max(args.GetDouble("duration", 10.0), 0.1);
      plan_options.target_qps = static_cast<double>(trace.size()) / duration;
    }
    const net::ReplayPlan plan = net::BuildReplayPlan(trace, plan_options);
    std::printf(
        "mcloudload: %zu requests (%llu fileops, %llu puts, %llu gets), "
        "%.1f MB to upload, %.1fs scheduled at %.0f req/s\n",
        plan.items.size(), static_cast<unsigned long long>(plan.fileops),
        static_cast<unsigned long long>(plan.chunk_puts),
        static_cast<unsigned long long>(plan.chunk_gets),
        ToMB(plan.put_bytes), plan.duration,
        plan.duration > 0
            ? static_cast<double>(plan.items.size()) / plan.duration
            : 0.0);

    // --- target server ---------------------------------------------------
    net::ReplayOptions replay_options;
    replay_options.host = args.Get("host", "127.0.0.1");
    replay_options.connections =
        static_cast<int>(args.GetU64("connections", 4));
    replay_options.persistent = !args.Has("per-request");
    replay_options.verify = !args.Has("no-verify");

    SpawnedServer spawned;
    std::string server_log = args.Get("server-log");
    if (args.Has("spawn")) {
      if (server_log.empty()) {
        server_log = (std::filesystem::temp_directory_path() /
                      ("mcloudd_live_" + std::to_string(::getpid()) + ".bin"))
                         .string();
      }
      spawned = SpawnedServer::Launch(args.Get("spawn"), server_log);
      replay_options.port = spawned.port;
      std::printf("mcloudload: spawned mcloudd pid %d on port %u\n",
                  static_cast<int>(spawned.pid),
                  static_cast<unsigned>(spawned.port));
    } else {
      replay_options.port = static_cast<std::uint16_t>(args.GetU64("port", 0));
      MCLOUD_REQUIRE(replay_options.port != 0,
                     "mcloudload: --port or --spawn required");
    }

    // --- replay ----------------------------------------------------------
    const net::ReplayReport report = net::ExecuteReplay(plan, replay_options);
    std::printf(
        "mcloudload: %llu sent, %llu ok, %llu http errors, %llu transport "
        "errors, %llu verify failures in %.2fs (%.0f req/s achieved)\n",
        static_cast<unsigned long long>(report.sent),
        static_cast<unsigned long long>(report.ok),
        static_cast<unsigned long long>(report.http_errors),
        static_cast<unsigned long long>(report.transport_errors),
        static_cast<unsigned long long>(report.verify_failures),
        report.wall_seconds, report.achieved_qps);
    std::printf(
        "mcloudload: latency p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, "
        "p999 %.3f ms; %llu dedup hits, %llu index / %llu replica serves\n",
        report.LatencyQuantile(0.50) * 1e3, report.LatencyQuantile(0.90) * 1e3,
        report.LatencyQuantile(0.99) * 1e3,
        report.LatencyQuantile(0.999) * 1e3,
        static_cast<unsigned long long>(report.dedup_hits),
        static_cast<unsigned long long>(report.index_serves),
        static_cast<unsigned long long>(report.replica_serves));

    const std::string json_path = args.Get("json");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      out << report.ToJson();
      std::printf("mcloudload: wrote %s\n", json_path.c_str());
    }

    bool failed = report.transport_errors > 0 || report.http_errors > 0 ||
                  report.verify_failures > 0;

    // --- post-run cross-check against the server's own log ---------------
    if (spawned.pid > 0) {
      const int server_status = spawned.Stop();
      if (server_status != 0) {
        std::fprintf(stderr, "mcloudload: mcloudd exited with status %d\n",
                     server_status);
        failed = true;
      }
      const std::vector<LogRecord> live = ReadBinaryTrace(server_log);
      if (const auto mismatch = net::LiveLogMatchesTrace(trace, live)) {
        std::fprintf(stderr, "mcloudload: live log check FAILED: %s\n",
                     mismatch->c_str());
        failed = true;
      } else {
        std::printf(
            "mcloudload: live log check ok — %zu records, per-session "
            "counts match the input trace\n",
            live.size());
      }
      if (!args.Has("server-log")) std::remove(server_log.c_str());
    }
    return failed ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "mcloudload: %s\n", e.what());
    return 1;
  }
}
