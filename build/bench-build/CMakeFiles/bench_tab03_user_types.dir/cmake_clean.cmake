file(REMOVE_RECURSE
  "../bench/bench_tab03_user_types"
  "../bench/bench_tab03_user_types.pdb"
  "CMakeFiles/bench_tab03_user_types.dir/bench_tab03_user_types.cc.o"
  "CMakeFiles/bench_tab03_user_types.dir/bench_tab03_user_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_user_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
