# Empty compiler generated dependencies file for bench_tab03_user_types.
# This may be replaced when dependencies are built.
