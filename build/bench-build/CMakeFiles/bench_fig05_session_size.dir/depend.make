# Empty dependencies file for bench_fig05_session_size.
# This may be replaced when dependencies are built.
