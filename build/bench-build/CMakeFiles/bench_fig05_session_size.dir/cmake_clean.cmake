file(REMOVE_RECURSE
  "../bench/bench_fig05_session_size"
  "../bench/bench_fig05_session_size.pdb"
  "CMakeFiles/bench_fig05_session_size.dir/bench_fig05_session_size.cc.o"
  "CMakeFiles/bench_fig05_session_size.dir/bench_fig05_session_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_session_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
