file(REMOVE_RECURSE
  "../bench/bench_whatif_chunking"
  "../bench/bench_whatif_chunking.pdb"
  "CMakeFiles/bench_whatif_chunking.dir/bench_whatif_chunking.cc.o"
  "CMakeFiles/bench_whatif_chunking.dir/bench_whatif_chunking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
