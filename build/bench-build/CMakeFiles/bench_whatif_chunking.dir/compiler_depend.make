# Empty compiler generated dependencies file for bench_whatif_chunking.
# This may be replaced when dependencies are built.
