file(REMOVE_RECURSE
  "../bench/bench_whatif_connections"
  "../bench/bench_whatif_connections.pdb"
  "CMakeFiles/bench_whatif_connections.dir/bench_whatif_connections.cc.o"
  "CMakeFiles/bench_whatif_connections.dir/bench_whatif_connections.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
