# Empty dependencies file for bench_whatif_connections.
# This may be replaced when dependencies are built.
