file(REMOVE_RECURSE
  "../bench/bench_fig14_rtt"
  "../bench/bench_fig14_rtt.pdb"
  "CMakeFiles/bench_fig14_rtt.dir/bench_fig14_rtt.cc.o"
  "CMakeFiles/bench_fig14_rtt.dir/bench_fig14_rtt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
