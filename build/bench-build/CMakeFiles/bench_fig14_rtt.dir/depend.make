# Empty dependencies file for bench_fig14_rtt.
# This may be replaced when dependencies are built.
