file(REMOVE_RECURSE
  "../bench/bench_fig07_usage_ratio"
  "../bench/bench_fig07_usage_ratio.pdb"
  "CMakeFiles/bench_fig07_usage_ratio.dir/bench_fig07_usage_ratio.cc.o"
  "CMakeFiles/bench_fig07_usage_ratio.dir/bench_fig07_usage_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_usage_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
