# Empty compiler generated dependencies file for bench_fig07_usage_ratio.
# This may be replaced when dependencies are built.
