file(REMOVE_RECURSE
  "../bench/bench_tab04_summary"
  "../bench/bench_tab04_summary.pdb"
  "CMakeFiles/bench_tab04_summary.dir/bench_tab04_summary.cc.o"
  "CMakeFiles/bench_tab04_summary.dir/bench_tab04_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
