file(REMOVE_RECURSE
  "../bench/bench_fig13_flow_timeline"
  "../bench/bench_fig13_flow_timeline.pdb"
  "CMakeFiles/bench_fig13_flow_timeline.dir/bench_fig13_flow_timeline.cc.o"
  "CMakeFiles/bench_fig13_flow_timeline.dir/bench_fig13_flow_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_flow_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
