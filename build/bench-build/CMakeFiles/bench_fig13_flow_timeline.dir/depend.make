# Empty dependencies file for bench_fig13_flow_timeline.
# This may be replaced when dependencies are built.
