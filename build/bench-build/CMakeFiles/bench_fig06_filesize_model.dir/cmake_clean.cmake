file(REMOVE_RECURSE
  "../bench/bench_fig06_filesize_model"
  "../bench/bench_fig06_filesize_model.pdb"
  "CMakeFiles/bench_fig06_filesize_model.dir/bench_fig06_filesize_model.cc.o"
  "CMakeFiles/bench_fig06_filesize_model.dir/bench_fig06_filesize_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_filesize_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
