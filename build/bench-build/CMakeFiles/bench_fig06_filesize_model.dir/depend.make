# Empty dependencies file for bench_fig06_filesize_model.
# This may be replaced when dependencies are built.
