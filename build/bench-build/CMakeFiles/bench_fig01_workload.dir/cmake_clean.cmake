file(REMOVE_RECURSE
  "../bench/bench_fig01_workload"
  "../bench/bench_fig01_workload.pdb"
  "CMakeFiles/bench_fig01_workload.dir/bench_fig01_workload.cc.o"
  "CMakeFiles/bench_fig01_workload.dir/bench_fig01_workload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
