# Empty compiler generated dependencies file for bench_fig01_workload.
# This may be replaced when dependencies are built.
