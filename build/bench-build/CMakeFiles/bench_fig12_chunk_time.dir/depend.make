# Empty dependencies file for bench_fig12_chunk_time.
# This may be replaced when dependencies are built.
