# Empty dependencies file for bench_fig04_burstiness.
# This may be replaced when dependencies are built.
