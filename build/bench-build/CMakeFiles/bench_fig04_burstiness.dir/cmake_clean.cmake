file(REMOVE_RECURSE
  "../bench/bench_fig04_burstiness"
  "../bench/bench_fig04_burstiness.pdb"
  "CMakeFiles/bench_fig04_burstiness.dir/bench_fig04_burstiness.cc.o"
  "CMakeFiles/bench_fig04_burstiness.dir/bench_fig04_burstiness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
