file(REMOVE_RECURSE
  "../bench/bench_whatif_cache"
  "../bench/bench_whatif_cache.pdb"
  "CMakeFiles/bench_whatif_cache.dir/bench_whatif_cache.cc.o"
  "CMakeFiles/bench_whatif_cache.dir/bench_whatif_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
