# Empty compiler generated dependencies file for bench_whatif_cache.
# This may be replaced when dependencies are built.
