# Empty dependencies file for bench_fig08_engagement.
# This may be replaced when dependencies are built.
