file(REMOVE_RECURSE
  "../bench/bench_fig08_engagement"
  "../bench/bench_fig08_engagement.pdb"
  "CMakeFiles/bench_fig08_engagement.dir/bench_fig08_engagement.cc.o"
  "CMakeFiles/bench_fig08_engagement.dir/bench_fig08_engagement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_engagement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
