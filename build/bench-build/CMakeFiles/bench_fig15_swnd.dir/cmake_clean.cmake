file(REMOVE_RECURSE
  "../bench/bench_fig15_swnd"
  "../bench/bench_fig15_swnd.pdb"
  "CMakeFiles/bench_fig15_swnd.dir/bench_fig15_swnd.cc.o"
  "CMakeFiles/bench_fig15_swnd.dir/bench_fig15_swnd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_swnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
