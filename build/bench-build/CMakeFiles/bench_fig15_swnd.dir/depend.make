# Empty dependencies file for bench_fig15_swnd.
# This may be replaced when dependencies are built.
