# Empty compiler generated dependencies file for bench_fig09_retrieval_return.
# This may be replaced when dependencies are built.
