file(REMOVE_RECURSE
  "../bench/bench_fig09_retrieval_return"
  "../bench/bench_fig09_retrieval_return.pdb"
  "CMakeFiles/bench_fig09_retrieval_return.dir/bench_fig09_retrieval_return.cc.o"
  "CMakeFiles/bench_fig09_retrieval_return.dir/bench_fig09_retrieval_return.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_retrieval_return.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
