file(REMOVE_RECURSE
  "../bench/bench_fig03_intervals"
  "../bench/bench_fig03_intervals.pdb"
  "CMakeFiles/bench_fig03_intervals.dir/bench_fig03_intervals.cc.o"
  "CMakeFiles/bench_fig03_intervals.dir/bench_fig03_intervals.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
