# Empty dependencies file for bench_fig03_intervals.
# This may be replaced when dependencies are built.
