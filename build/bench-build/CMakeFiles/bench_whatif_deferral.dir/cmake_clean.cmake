file(REMOVE_RECURSE
  "../bench/bench_whatif_deferral"
  "../bench/bench_whatif_deferral.pdb"
  "CMakeFiles/bench_whatif_deferral.dir/bench_whatif_deferral.cc.o"
  "CMakeFiles/bench_whatif_deferral.dir/bench_whatif_deferral.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_deferral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
