# Empty dependencies file for bench_whatif_deferral.
# This may be replaced when dependencies are built.
