file(REMOVE_RECURSE
  "../bench/bench_fig10_activity_model"
  "../bench/bench_fig10_activity_model.pdb"
  "CMakeFiles/bench_fig10_activity_model.dir/bench_fig10_activity_model.cc.o"
  "CMakeFiles/bench_fig10_activity_model.dir/bench_fig10_activity_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_activity_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
