# Empty compiler generated dependencies file for bench_fig10_activity_model.
# This may be replaced when dependencies are built.
