file(REMOVE_RECURSE
  "../bench/bench_fig16_idle_dissection"
  "../bench/bench_fig16_idle_dissection.pdb"
  "CMakeFiles/bench_fig16_idle_dissection.dir/bench_fig16_idle_dissection.cc.o"
  "CMakeFiles/bench_fig16_idle_dissection.dir/bench_fig16_idle_dissection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_idle_dissection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
