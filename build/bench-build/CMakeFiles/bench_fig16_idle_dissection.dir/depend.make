# Empty dependencies file for bench_fig16_idle_dissection.
# This may be replaced when dependencies are built.
