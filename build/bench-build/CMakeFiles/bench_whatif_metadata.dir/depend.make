# Empty dependencies file for bench_whatif_metadata.
# This may be replaced when dependencies are built.
