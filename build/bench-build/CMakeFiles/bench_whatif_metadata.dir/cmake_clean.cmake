file(REMOVE_RECURSE
  "../bench/bench_whatif_metadata"
  "../bench/bench_whatif_metadata.pdb"
  "CMakeFiles/bench_whatif_metadata.dir/bench_whatif_metadata.cc.o"
  "CMakeFiles/bench_whatif_metadata.dir/bench_whatif_metadata.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
