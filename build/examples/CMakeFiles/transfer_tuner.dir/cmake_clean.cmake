file(REMOVE_RECURSE
  "CMakeFiles/transfer_tuner.dir/transfer_tuner.cpp.o"
  "CMakeFiles/transfer_tuner.dir/transfer_tuner.cpp.o.d"
  "transfer_tuner"
  "transfer_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
