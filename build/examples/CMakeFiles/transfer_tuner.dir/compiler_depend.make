# Empty compiler generated dependencies file for transfer_tuner.
# This may be replaced when dependencies are built.
