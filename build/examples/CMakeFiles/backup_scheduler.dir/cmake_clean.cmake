file(REMOVE_RECURSE
  "CMakeFiles/backup_scheduler.dir/backup_scheduler.cpp.o"
  "CMakeFiles/backup_scheduler.dir/backup_scheduler.cpp.o.d"
  "backup_scheduler"
  "backup_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
