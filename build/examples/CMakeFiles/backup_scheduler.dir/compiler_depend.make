# Empty compiler generated dependencies file for backup_scheduler.
# This may be replaced when dependencies are built.
