file(REMOVE_RECURSE
  "CMakeFiles/trace_analytics.dir/trace_analytics.cpp.o"
  "CMakeFiles/trace_analytics.dir/trace_analytics.cpp.o.d"
  "trace_analytics"
  "trace_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
