# Empty compiler generated dependencies file for trace_analytics.
# This may be replaced when dependencies are built.
