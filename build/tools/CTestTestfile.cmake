# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mcloudctl_generate "/root/repo/build/tools/mcloudctl" "generate" "--users" "300" "--pc" "100" "--seed" "5" "/root/repo/build/ctl_trace.bin")
set_tests_properties(mcloudctl_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mcloudctl_sessions "/root/repo/build/tools/mcloudctl" "sessions" "/root/repo/build/ctl_trace.bin" "--top" "5")
set_tests_properties(mcloudctl_sessions PROPERTIES  DEPENDS "mcloudctl_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mcloudctl_analyze "/root/repo/build/tools/mcloudctl" "analyze" "/root/repo/build/ctl_trace.bin")
set_tests_properties(mcloudctl_analyze PROPERTIES  DEPENDS "mcloudctl_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mcloudctl_convert "/root/repo/build/tools/mcloudctl" "convert" "/root/repo/build/ctl_trace.bin" "/root/repo/build/ctl_trace.csv")
set_tests_properties(mcloudctl_convert PROPERTIES  DEPENDS "mcloudctl_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mcloudctl_anonymize "/root/repo/build/tools/mcloudctl" "anonymize" "/root/repo/build/ctl_trace.csv" "/root/repo/build/ctl_anon.csv" "--key" "testkey")
set_tests_properties(mcloudctl_anonymize PROPERTIES  DEPENDS "mcloudctl_convert" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mcloudctl_simulate "/root/repo/build/tools/mcloudctl" "simulate" "--device" "ios" "--file-mb" "4" "--seed" "2")
set_tests_properties(mcloudctl_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
