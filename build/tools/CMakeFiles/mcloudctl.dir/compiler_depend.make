# Empty compiler generated dependencies file for mcloudctl.
# This may be replaced when dependencies are built.
