file(REMOVE_RECURSE
  "CMakeFiles/mcloudctl.dir/mcloudctl.cc.o"
  "CMakeFiles/mcloudctl.dir/mcloudctl.cc.o.d"
  "mcloudctl"
  "mcloudctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloudctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
