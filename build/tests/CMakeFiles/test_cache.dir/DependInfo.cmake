
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/test_cache.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/test_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcloud_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mcloud_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/mcloud_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcloud_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mcloud_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mcloud_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mcloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
