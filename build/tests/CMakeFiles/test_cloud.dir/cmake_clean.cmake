file(REMOVE_RECURSE
  "CMakeFiles/test_cloud.dir/test_cloud.cc.o"
  "CMakeFiles/test_cloud.dir/test_cloud.cc.o.d"
  "test_cloud"
  "test_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
