file(REMOVE_RECURSE
  "CMakeFiles/test_md5.dir/test_md5.cc.o"
  "CMakeFiles/test_md5.dir/test_md5.cc.o.d"
  "test_md5"
  "test_md5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
