# Empty compiler generated dependencies file for test_md5.
# This may be replaced when dependencies are built.
