file(REMOVE_RECURSE
  "CMakeFiles/test_distributions.dir/test_distributions.cc.o"
  "CMakeFiles/test_distributions.dir/test_distributions.cc.o.d"
  "test_distributions"
  "test_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
