# Empty dependencies file for test_em_fitters.
# This may be replaced when dependencies are built.
