file(REMOVE_RECURSE
  "CMakeFiles/test_em_fitters.dir/test_em_fitters.cc.o"
  "CMakeFiles/test_em_fitters.dir/test_em_fitters.cc.o.d"
  "test_em_fitters"
  "test_em_fitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_em_fitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
