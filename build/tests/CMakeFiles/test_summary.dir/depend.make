# Empty dependencies file for test_summary.
# This may be replaced when dependencies are built.
