file(REMOVE_RECURSE
  "CMakeFiles/test_summary.dir/test_summary.cc.o"
  "CMakeFiles/test_summary.dir/test_summary.cc.o.d"
  "test_summary"
  "test_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
