file(REMOVE_RECURSE
  "CMakeFiles/test_tcp.dir/test_tcp.cc.o"
  "CMakeFiles/test_tcp.dir/test_tcp.cc.o.d"
  "test_tcp"
  "test_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
