# Empty compiler generated dependencies file for mcloud_core.
# This may be replaced when dependencies are built.
