file(REMOVE_RECURSE
  "libmcloud_core.a"
)
