file(REMOVE_RECURSE
  "CMakeFiles/mcloud_core.dir/deferral.cc.o"
  "CMakeFiles/mcloud_core.dir/deferral.cc.o.d"
  "CMakeFiles/mcloud_core.dir/pipeline.cc.o"
  "CMakeFiles/mcloud_core.dir/pipeline.cc.o.d"
  "CMakeFiles/mcloud_core.dir/report.cc.o"
  "CMakeFiles/mcloud_core.dir/report.cc.o.d"
  "CMakeFiles/mcloud_core.dir/whatif.cc.o"
  "CMakeFiles/mcloud_core.dir/whatif.cc.o.d"
  "libmcloud_core.a"
  "libmcloud_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
