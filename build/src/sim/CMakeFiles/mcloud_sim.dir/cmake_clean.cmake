file(REMOVE_RECURSE
  "CMakeFiles/mcloud_sim.dir/event_queue.cc.o"
  "CMakeFiles/mcloud_sim.dir/event_queue.cc.o.d"
  "libmcloud_sim.a"
  "libmcloud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
