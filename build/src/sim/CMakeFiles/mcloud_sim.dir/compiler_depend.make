# Empty compiler generated dependencies file for mcloud_sim.
# This may be replaced when dependencies are built.
