file(REMOVE_RECURSE
  "libmcloud_sim.a"
)
