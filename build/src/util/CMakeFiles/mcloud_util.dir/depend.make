# Empty dependencies file for mcloud_util.
# This may be replaced when dependencies are built.
