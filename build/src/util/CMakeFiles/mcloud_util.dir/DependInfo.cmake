
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/csv.cc" "src/util/CMakeFiles/mcloud_util.dir/csv.cc.o" "gcc" "src/util/CMakeFiles/mcloud_util.dir/csv.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/mcloud_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/mcloud_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/md5.cc" "src/util/CMakeFiles/mcloud_util.dir/md5.cc.o" "gcc" "src/util/CMakeFiles/mcloud_util.dir/md5.cc.o.d"
  "/root/repo/src/util/summary.cc" "src/util/CMakeFiles/mcloud_util.dir/summary.cc.o" "gcc" "src/util/CMakeFiles/mcloud_util.dir/summary.cc.o.d"
  "/root/repo/src/util/timeutil.cc" "src/util/CMakeFiles/mcloud_util.dir/timeutil.cc.o" "gcc" "src/util/CMakeFiles/mcloud_util.dir/timeutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
