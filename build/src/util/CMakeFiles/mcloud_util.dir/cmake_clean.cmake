file(REMOVE_RECURSE
  "CMakeFiles/mcloud_util.dir/csv.cc.o"
  "CMakeFiles/mcloud_util.dir/csv.cc.o.d"
  "CMakeFiles/mcloud_util.dir/histogram.cc.o"
  "CMakeFiles/mcloud_util.dir/histogram.cc.o.d"
  "CMakeFiles/mcloud_util.dir/md5.cc.o"
  "CMakeFiles/mcloud_util.dir/md5.cc.o.d"
  "CMakeFiles/mcloud_util.dir/summary.cc.o"
  "CMakeFiles/mcloud_util.dir/summary.cc.o.d"
  "CMakeFiles/mcloud_util.dir/timeutil.cc.o"
  "CMakeFiles/mcloud_util.dir/timeutil.cc.o.d"
  "libmcloud_util.a"
  "libmcloud_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
