file(REMOVE_RECURSE
  "libmcloud_util.a"
)
