file(REMOVE_RECURSE
  "libmcloud_model.a"
)
