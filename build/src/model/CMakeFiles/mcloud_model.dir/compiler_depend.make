# Empty compiler generated dependencies file for mcloud_model.
# This may be replaced when dependencies are built.
