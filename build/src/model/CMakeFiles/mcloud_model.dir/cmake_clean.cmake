file(REMOVE_RECURSE
  "CMakeFiles/mcloud_model.dir/paper_params.cc.o"
  "CMakeFiles/mcloud_model.dir/paper_params.cc.o.d"
  "libmcloud_model.a"
  "libmcloud_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
