file(REMOVE_RECURSE
  "libmcloud_stats.a"
)
