# Empty dependencies file for mcloud_stats.
# This may be replaced when dependencies are built.
