file(REMOVE_RECURSE
  "CMakeFiles/mcloud_stats.dir/chi_square.cc.o"
  "CMakeFiles/mcloud_stats.dir/chi_square.cc.o.d"
  "CMakeFiles/mcloud_stats.dir/em_exponential.cc.o"
  "CMakeFiles/mcloud_stats.dir/em_exponential.cc.o.d"
  "CMakeFiles/mcloud_stats.dir/em_gaussian.cc.o"
  "CMakeFiles/mcloud_stats.dir/em_gaussian.cc.o.d"
  "CMakeFiles/mcloud_stats.dir/regression.cc.o"
  "CMakeFiles/mcloud_stats.dir/regression.cc.o.d"
  "CMakeFiles/mcloud_stats.dir/special_functions.cc.o"
  "CMakeFiles/mcloud_stats.dir/special_functions.cc.o.d"
  "CMakeFiles/mcloud_stats.dir/stretched_exponential.cc.o"
  "CMakeFiles/mcloud_stats.dir/stretched_exponential.cc.o.d"
  "libmcloud_stats.a"
  "libmcloud_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
