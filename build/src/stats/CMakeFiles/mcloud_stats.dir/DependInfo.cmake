
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi_square.cc" "src/stats/CMakeFiles/mcloud_stats.dir/chi_square.cc.o" "gcc" "src/stats/CMakeFiles/mcloud_stats.dir/chi_square.cc.o.d"
  "/root/repo/src/stats/em_exponential.cc" "src/stats/CMakeFiles/mcloud_stats.dir/em_exponential.cc.o" "gcc" "src/stats/CMakeFiles/mcloud_stats.dir/em_exponential.cc.o.d"
  "/root/repo/src/stats/em_gaussian.cc" "src/stats/CMakeFiles/mcloud_stats.dir/em_gaussian.cc.o" "gcc" "src/stats/CMakeFiles/mcloud_stats.dir/em_gaussian.cc.o.d"
  "/root/repo/src/stats/regression.cc" "src/stats/CMakeFiles/mcloud_stats.dir/regression.cc.o" "gcc" "src/stats/CMakeFiles/mcloud_stats.dir/regression.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/stats/CMakeFiles/mcloud_stats.dir/special_functions.cc.o" "gcc" "src/stats/CMakeFiles/mcloud_stats.dir/special_functions.cc.o.d"
  "/root/repo/src/stats/stretched_exponential.cc" "src/stats/CMakeFiles/mcloud_stats.dir/stretched_exponential.cc.o" "gcc" "src/stats/CMakeFiles/mcloud_stats.dir/stretched_exponential.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
