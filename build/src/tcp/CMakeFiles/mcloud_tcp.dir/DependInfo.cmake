
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/congestion.cc" "src/tcp/CMakeFiles/mcloud_tcp.dir/congestion.cc.o" "gcc" "src/tcp/CMakeFiles/mcloud_tcp.dir/congestion.cc.o.d"
  "/root/repo/src/tcp/flow.cc" "src/tcp/CMakeFiles/mcloud_tcp.dir/flow.cc.o" "gcc" "src/tcp/CMakeFiles/mcloud_tcp.dir/flow.cc.o.d"
  "/root/repo/src/tcp/rtt_estimator.cc" "src/tcp/CMakeFiles/mcloud_tcp.dir/rtt_estimator.cc.o" "gcc" "src/tcp/CMakeFiles/mcloud_tcp.dir/rtt_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
