# Empty compiler generated dependencies file for mcloud_tcp.
# This may be replaced when dependencies are built.
