file(REMOVE_RECURSE
  "CMakeFiles/mcloud_tcp.dir/congestion.cc.o"
  "CMakeFiles/mcloud_tcp.dir/congestion.cc.o.d"
  "CMakeFiles/mcloud_tcp.dir/flow.cc.o"
  "CMakeFiles/mcloud_tcp.dir/flow.cc.o.d"
  "CMakeFiles/mcloud_tcp.dir/rtt_estimator.cc.o"
  "CMakeFiles/mcloud_tcp.dir/rtt_estimator.cc.o.d"
  "libmcloud_tcp.a"
  "libmcloud_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
