file(REMOVE_RECURSE
  "libmcloud_tcp.a"
)
