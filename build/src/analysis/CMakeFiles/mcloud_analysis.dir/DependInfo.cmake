
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/activity_model.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/activity_model.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/activity_model.cc.o.d"
  "/root/repo/src/analysis/burstiness.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/burstiness.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/burstiness.cc.o.d"
  "/root/repo/src/analysis/engagement.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/engagement.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/engagement.cc.o.d"
  "/root/repo/src/analysis/file_size_model.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/file_size_model.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/file_size_model.cc.o.d"
  "/root/repo/src/analysis/interval_model.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/interval_model.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/interval_model.cc.o.d"
  "/root/repo/src/analysis/perf_analysis.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/perf_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/perf_analysis.cc.o.d"
  "/root/repo/src/analysis/session_stats.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/session_stats.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/session_stats.cc.o.d"
  "/root/repo/src/analysis/sessionizer.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/sessionizer.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/sessionizer.cc.o.d"
  "/root/repo/src/analysis/usage_patterns.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/usage_patterns.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/usage_patterns.cc.o.d"
  "/root/repo/src/analysis/workload_timeseries.cc" "src/analysis/CMakeFiles/mcloud_analysis.dir/workload_timeseries.cc.o" "gcc" "src/analysis/CMakeFiles/mcloud_analysis.dir/workload_timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/mcloud_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mcloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mcloud_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcloud_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcloud_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mcloud_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
