# Empty compiler generated dependencies file for mcloud_analysis.
# This may be replaced when dependencies are built.
