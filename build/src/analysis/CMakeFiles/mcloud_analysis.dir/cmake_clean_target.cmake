file(REMOVE_RECURSE
  "libmcloud_analysis.a"
)
