file(REMOVE_RECURSE
  "CMakeFiles/mcloud_analysis.dir/activity_model.cc.o"
  "CMakeFiles/mcloud_analysis.dir/activity_model.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/burstiness.cc.o"
  "CMakeFiles/mcloud_analysis.dir/burstiness.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/engagement.cc.o"
  "CMakeFiles/mcloud_analysis.dir/engagement.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/file_size_model.cc.o"
  "CMakeFiles/mcloud_analysis.dir/file_size_model.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/interval_model.cc.o"
  "CMakeFiles/mcloud_analysis.dir/interval_model.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/perf_analysis.cc.o"
  "CMakeFiles/mcloud_analysis.dir/perf_analysis.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/session_stats.cc.o"
  "CMakeFiles/mcloud_analysis.dir/session_stats.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/sessionizer.cc.o"
  "CMakeFiles/mcloud_analysis.dir/sessionizer.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/usage_patterns.cc.o"
  "CMakeFiles/mcloud_analysis.dir/usage_patterns.cc.o.d"
  "CMakeFiles/mcloud_analysis.dir/workload_timeseries.cc.o"
  "CMakeFiles/mcloud_analysis.dir/workload_timeseries.cc.o.d"
  "libmcloud_analysis.a"
  "libmcloud_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
