file(REMOVE_RECURSE
  "libmcloud_trace.a"
)
