# Empty dependencies file for mcloud_trace.
# This may be replaced when dependencies are built.
