
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/anonymizer.cc" "src/trace/CMakeFiles/mcloud_trace.dir/anonymizer.cc.o" "gcc" "src/trace/CMakeFiles/mcloud_trace.dir/anonymizer.cc.o.d"
  "/root/repo/src/trace/filters.cc" "src/trace/CMakeFiles/mcloud_trace.dir/filters.cc.o" "gcc" "src/trace/CMakeFiles/mcloud_trace.dir/filters.cc.o.d"
  "/root/repo/src/trace/log_io.cc" "src/trace/CMakeFiles/mcloud_trace.dir/log_io.cc.o" "gcc" "src/trace/CMakeFiles/mcloud_trace.dir/log_io.cc.o.d"
  "/root/repo/src/trace/log_record.cc" "src/trace/CMakeFiles/mcloud_trace.dir/log_record.cc.o" "gcc" "src/trace/CMakeFiles/mcloud_trace.dir/log_record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
