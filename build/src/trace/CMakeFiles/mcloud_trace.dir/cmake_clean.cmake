file(REMOVE_RECURSE
  "CMakeFiles/mcloud_trace.dir/anonymizer.cc.o"
  "CMakeFiles/mcloud_trace.dir/anonymizer.cc.o.d"
  "CMakeFiles/mcloud_trace.dir/filters.cc.o"
  "CMakeFiles/mcloud_trace.dir/filters.cc.o.d"
  "CMakeFiles/mcloud_trace.dir/log_io.cc.o"
  "CMakeFiles/mcloud_trace.dir/log_io.cc.o.d"
  "CMakeFiles/mcloud_trace.dir/log_record.cc.o"
  "CMakeFiles/mcloud_trace.dir/log_record.cc.o.d"
  "libmcloud_trace.a"
  "libmcloud_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
