file(REMOVE_RECURSE
  "libmcloud_cloud.a"
)
