# Empty compiler generated dependencies file for mcloud_cloud.
# This may be replaced when dependencies are built.
