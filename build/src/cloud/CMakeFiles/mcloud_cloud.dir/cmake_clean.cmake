file(REMOVE_RECURSE
  "CMakeFiles/mcloud_cloud.dir/cache.cc.o"
  "CMakeFiles/mcloud_cloud.dir/cache.cc.o.d"
  "CMakeFiles/mcloud_cloud.dir/chunker.cc.o"
  "CMakeFiles/mcloud_cloud.dir/chunker.cc.o.d"
  "CMakeFiles/mcloud_cloud.dir/client_model.cc.o"
  "CMakeFiles/mcloud_cloud.dir/client_model.cc.o.d"
  "CMakeFiles/mcloud_cloud.dir/front_end_server.cc.o"
  "CMakeFiles/mcloud_cloud.dir/front_end_server.cc.o.d"
  "CMakeFiles/mcloud_cloud.dir/metadata_server.cc.o"
  "CMakeFiles/mcloud_cloud.dir/metadata_server.cc.o.d"
  "CMakeFiles/mcloud_cloud.dir/storage_service.cc.o"
  "CMakeFiles/mcloud_cloud.dir/storage_service.cc.o.d"
  "libmcloud_cloud.a"
  "libmcloud_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
