
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cache.cc" "src/cloud/CMakeFiles/mcloud_cloud.dir/cache.cc.o" "gcc" "src/cloud/CMakeFiles/mcloud_cloud.dir/cache.cc.o.d"
  "/root/repo/src/cloud/chunker.cc" "src/cloud/CMakeFiles/mcloud_cloud.dir/chunker.cc.o" "gcc" "src/cloud/CMakeFiles/mcloud_cloud.dir/chunker.cc.o.d"
  "/root/repo/src/cloud/client_model.cc" "src/cloud/CMakeFiles/mcloud_cloud.dir/client_model.cc.o" "gcc" "src/cloud/CMakeFiles/mcloud_cloud.dir/client_model.cc.o.d"
  "/root/repo/src/cloud/front_end_server.cc" "src/cloud/CMakeFiles/mcloud_cloud.dir/front_end_server.cc.o" "gcc" "src/cloud/CMakeFiles/mcloud_cloud.dir/front_end_server.cc.o.d"
  "/root/repo/src/cloud/metadata_server.cc" "src/cloud/CMakeFiles/mcloud_cloud.dir/metadata_server.cc.o" "gcc" "src/cloud/CMakeFiles/mcloud_cloud.dir/metadata_server.cc.o.d"
  "/root/repo/src/cloud/storage_service.cc" "src/cloud/CMakeFiles/mcloud_cloud.dir/storage_service.cc.o" "gcc" "src/cloud/CMakeFiles/mcloud_cloud.dir/storage_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mcloud_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mcloud_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mcloud_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
