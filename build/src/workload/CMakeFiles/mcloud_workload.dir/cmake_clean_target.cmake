file(REMOVE_RECURSE
  "libmcloud_workload.a"
)
