
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/diurnal.cc" "src/workload/CMakeFiles/mcloud_workload.dir/diurnal.cc.o" "gcc" "src/workload/CMakeFiles/mcloud_workload.dir/diurnal.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/mcloud_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/mcloud_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/log_emitter.cc" "src/workload/CMakeFiles/mcloud_workload.dir/log_emitter.cc.o" "gcc" "src/workload/CMakeFiles/mcloud_workload.dir/log_emitter.cc.o.d"
  "/root/repo/src/workload/session_model.cc" "src/workload/CMakeFiles/mcloud_workload.dir/session_model.cc.o" "gcc" "src/workload/CMakeFiles/mcloud_workload.dir/session_model.cc.o.d"
  "/root/repo/src/workload/user_model.cc" "src/workload/CMakeFiles/mcloud_workload.dir/user_model.cc.o" "gcc" "src/workload/CMakeFiles/mcloud_workload.dir/user_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mcloud_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mcloud_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
