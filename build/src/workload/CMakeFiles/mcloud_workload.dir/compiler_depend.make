# Empty compiler generated dependencies file for mcloud_workload.
# This may be replaced when dependencies are built.
