file(REMOVE_RECURSE
  "CMakeFiles/mcloud_workload.dir/diurnal.cc.o"
  "CMakeFiles/mcloud_workload.dir/diurnal.cc.o.d"
  "CMakeFiles/mcloud_workload.dir/generator.cc.o"
  "CMakeFiles/mcloud_workload.dir/generator.cc.o.d"
  "CMakeFiles/mcloud_workload.dir/log_emitter.cc.o"
  "CMakeFiles/mcloud_workload.dir/log_emitter.cc.o.d"
  "CMakeFiles/mcloud_workload.dir/session_model.cc.o"
  "CMakeFiles/mcloud_workload.dir/session_model.cc.o.d"
  "CMakeFiles/mcloud_workload.dir/user_model.cc.o"
  "CMakeFiles/mcloud_workload.dir/user_model.cc.o.d"
  "libmcloud_workload.a"
  "libmcloud_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcloud_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
