// Declarative workload specifications (the scenario lab, DESIGN.md §13).
//
// A WorkloadSpec is a small text file describing one *world*: the
// population and device mix, the session mixture, the upload/retrieve size
// mixtures, the diurnal (and day-of-week) curve, the burstiness parameters,
// and — crucially — the statistical targets the world promises to exhibit.
// Specs compile into the existing WorkloadConfig/ModelParams, so the
// generator's hot path never sees them; the conformance runner
// (scenario/conformance.h) then checks each spec's *own* declared targets
// with the validate-layer GoF machinery (self-conformance, not
// paper-conformance).
//
// Text format: a deliberately tiny TOML subset —
//
//     # comment
//     name = "paper2016"
//     [population]
//     mobile_users = 20000
//     android_share = 0.784
//     [store_size]
//     weights = [0.91, 0.07, 0.02]
//
// Sections/keys are a closed set; unknown sections, unknown keys, duplicate
// keys, wrong arities, out-of-range shares, and mixture weights that do not
// sum to 1 are all rejected at parse time with a `source:line: [section].key:
// message` ParseError, so a typo fails loudly instead of silently running
// the default world.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workload/generator.h"
#include "workload/model_params.h"

namespace mcloud::scenario {

// Default slacks for spec-declared session-share targets. These moved here
// from validate/tolerance.h: the 0.04 band is a property of the τ-based
// re-sessionization systematic of *one particular world* (the paper's), so
// it is declared per spec (`[targets] session_share_slack`) instead of being
// a validate-layer constant every session mix silently inherits. paper2016
// declares exactly these values; contrasting worlds calibrate their own.
inline constexpr double kDefaultSessionShareSlack = 0.04;
inline constexpr double kDefaultMixedShareSlack = 0.005;

/// Statistical targets a spec declares about its own output. Every engaged
/// field (non-nullopt) becomes one conformance check; slacks feed the same
/// sample-size-aware tolerance policies the paper validator uses.
struct SpecTargets {
  std::optional<double> store_share;     ///< store-only session share
  std::optional<double> retrieve_share;  ///< retrieve-only session share
  std::optional<double> mixed_share;     ///< mixed session share
  double session_share_slack = kDefaultSessionShareSlack;
  double mixed_share_slack = kDefaultMixedShareSlack;
  std::optional<double> single_op_share;  ///< sessions with exactly one op
  double single_op_slack = 0.18;
  std::optional<int> peak_hour;  ///< busiest hour of day, 0-23
  int peak_hour_tolerance = 1;
  std::optional<double> android_share;  ///< of mobile accesses
  double android_share_slack = 0.03;
  /// KS gates of the measured per-session average-size sketches against the
  /// spec's own declared mixtures; presence of the slack enables the check.
  std::optional<double> store_size_ks_slack;
  std::optional<double> retrieve_size_ks_slack;
};

struct WorkloadSpec {
  std::string name;
  std::string description;
  // Population (compiles into PopulationConfig).
  std::size_t mobile_users = 20'000;
  std::size_t pc_only_users = 8'000;
  int days = 7;
  double android_share = 0.784;
  double mobile_and_pc_share = 0.143;
  /// Everything else about the generating process (compiles into
  /// WorkloadConfig::model). Defaults = the paper calibration.
  workload::ModelParams model{};
  SpecTargets targets{};
};

/// Parse a spec from text. `source_name` labels error messages (a file path
/// or e.g. "<inline>"). Throws ParseError with `source:line: [section].key:
/// message` on any malformed input.
[[nodiscard]] WorkloadSpec ParseSpec(std::string_view text,
                                     const std::string& source_name);

/// Read + parse a spec file.
[[nodiscard]] WorkloadSpec LoadSpecFile(const std::filesystem::path& path);

/// Canonical text form: ParseSpec(ToText(s)) reproduces `s` exactly
/// (doubles rendered with round-trip precision). The round-trip golden of
/// test_scenario pins this.
[[nodiscard]] std::string ToText(const WorkloadSpec& spec);

/// Compile a spec into the generator's config. The spec never touches the
/// generator's hot path — it only fills the existing config structs.
[[nodiscard]] workload::WorkloadConfig Compile(const WorkloadSpec& spec,
                                               std::uint64_t seed = 42,
                                               int threads = 0);

/// Directory the shipped specs live in: $MCLOUD_SPECS_DIR if set in the
/// environment, else the build-time source `specs/` directory.
[[nodiscard]] std::filesystem::path DefaultSpecsDir();

/// Resolve a spec argument: an existing file path is used as-is; a bare
/// name resolves to `<specs_dir>/<name>.spec` (specs_dir empty =
/// DefaultSpecsDir()). Throws Error when nothing matches, listing the specs
/// that exist.
[[nodiscard]] std::filesystem::path ResolveSpecPath(
    const std::string& name_or_path, const std::string& specs_dir = "");

/// Resolve + load in one step.
[[nodiscard]] WorkloadSpec LoadSpec(const std::string& name_or_path,
                                    const std::string& specs_dir = "");

/// Names (without extension) of every .spec file in the specs directory.
[[nodiscard]] std::vector<std::string> ListSpecs(
    const std::string& specs_dir = "");

}  // namespace mcloud::scenario
