#include "scenario/matrix.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "cloud/fleet.h"
#include "scenario/workload_spec.h"
#include "util/error.h"
#include "workload/generator.h"

namespace mcloud::scenario {

namespace {

std::string Fmt(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

// FNV-1a over the deterministic cell fields (same constants as the fleet /
// manifest fingerprints).
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void HashU64(std::uint64_t& h, std::uint64_t v) { HashBytes(h, &v, 8); }

void HashDouble(std::uint64_t& h, double v) {
  HashU64(h, std::bit_cast<std::uint64_t>(v));
}

void HashStr(std::uint64_t& h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

double MedianOf(std::vector<double> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

double Mb(Bytes b) { return static_cast<double>(b) / 1e6; }

}  // namespace

fault::FaultConfig FaultGrid(const std::string& name) {
  fault::FaultConfig f;
  if (name == "none") return f;
  if (name == "frontend-flaky") {
    // Crash/restart plus degraded-T_srv episodes on the front-end fleet.
    f.frontend_fail_rate = 0.05;
    f.degraded_rate = 0.10;
    return f;
  }
  if (name == "lossy-cell") {
    // Cellular loss bursts on the client side; front ends stay healthy.
    f.loss_burst_rate = 0.15;
    return f;
  }
  throw Error("unknown fault grid `" + name +
              "` (known: none, frontend-flaky, lossy-cell)");
}

void ApplyConnectionStrategy(cloud::ServiceConfig& config,
                             const std::string& name) {
  if (name == "baseline") {
    config.ssai_enabled = true;
    config.pace_after_idle = false;
    return;
  }
  if (name == "no-ssai") {
    config.ssai_enabled = false;
    config.pace_after_idle = false;
    return;
  }
  if (name == "paced") {
    config.ssai_enabled = false;
    config.pace_after_idle = true;
    return;
  }
  throw Error("unknown connection strategy `" + name +
              "` (known: baseline, no-ssai, paced)");
}

void ApplyChunkPolicy(cloud::ServiceConfig& config, const std::string& name) {
  if (name == "paper") {
    config.chunk_size = kChunkSize;
    config.batch_chunks = 1;
    return;
  }
  if (name == "chunk2m") {
    config.chunk_size = 2 * kMiB;
    config.batch_chunks = 1;
    return;
  }
  if (name == "batch4") {
    config.chunk_size = kChunkSize;
    config.batch_chunks = 4;
    return;
  }
  throw Error("unknown chunk policy `" + name +
              "` (known: paper, chunk2m, batch4)");
}

MatrixReport RunMatrix(const MatrixOptions& options) {
  MCLOUD_REQUIRE(!options.specs.empty(), "matrix needs at least one spec");
  MCLOUD_REQUIRE(!options.faults.empty() && !options.connections.empty() &&
                     !options.chunk_policies.empty(),
                 "every matrix axis needs at least one value");
  // Validate all axis names up front so a typo fails before the first
  // (potentially long) generation.
  for (const auto& f : options.faults) (void)FaultGrid(f);
  for (const auto& c : options.connections) {
    cloud::ServiceConfig probe;
    ApplyConnectionStrategy(probe, c);
  }
  for (const auto& c : options.chunk_policies) {
    cloud::ServiceConfig probe;
    ApplyChunkPolicy(probe, c);
  }

  MatrixReport report;
  report.users = options.users;
  report.seed = options.seed;
  report.shards = options.shards;

  for (const std::string& spec_name : options.specs) {
    const WorkloadSpec spec = LoadSpec(spec_name, options.specs_dir);
    workload::WorkloadConfig cfg =
        Compile(spec, options.seed, options.threads);
    if (options.users > 0) {
      cfg.population.pc_only_users =
          spec.mobile_users ? spec.pc_only_users * options.users /
                                  spec.mobile_users
                            : spec.pc_only_users;
      cfg.population.mobile_users = options.users;
    }
    // Plans only, generated once per spec and shared by all of its cells.
    const workload::Workload w =
        workload::WorkloadGenerator(cfg).GeneratePlansOnly();

    for (const std::string& fault : options.faults) {
      for (const std::string& conn : options.connections) {
        for (const std::string& chunk : options.chunk_policies) {
          cloud::FleetConfig fc;
          fc.shards = options.shards;
          fc.threads = options.threads;
          fc.service.faults = FaultGrid(fault);
          ApplyConnectionStrategy(fc.service, conn);
          ApplyChunkPolicy(fc.service, chunk);

          const auto t0 = std::chrono::steady_clock::now();
          const cloud::FleetResult fleet = ExecuteFleet(fc, w.sessions);
          const std::chrono::duration<double> wall =
              std::chrono::steady_clock::now() - t0;
          const cloud::ServiceResult& r = fleet.result;

          MatrixCell cell;
          cell.spec = spec.name;
          cell.fault = fault;
          cell.connection = conn;
          cell.chunk = chunk;
          cell.fingerprint = cloud::FingerprintServiceResult(r);
          cell.sessions = r.faults.sessions;
          cell.ops = r.faults.ops;
          cell.failed_sessions = r.faults.failed_sessions;
          cell.failed_ops = r.faults.failed_ops;
          cell.flows = r.flows;
          cell.slow_start_restarts = r.slow_start_restarts;
          cell.chunk_requests = r.chunk_perf.size();
          cell.goodput_mb = Mb(r.faults.goodput_bytes);
          cell.wasted_mb = Mb(r.faults.wasted_bytes);
          std::vector<double> ttran;
          ttran.reserve(r.chunk_perf.size());
          for (const auto& c : r.chunk_perf) ttran.push_back(c.ttran);
          cell.median_ttran_s = MedianOf(std::move(ttran));
          cell.session_success_rate =
              r.faults.sessions
                  ? 1.0 - static_cast<double>(r.faults.failed_sessions) /
                              static_cast<double>(r.faults.sessions)
                  : 1.0;
          cell.wall_s = wall.count();
          report.cells.push_back(std::move(cell));
        }
      }
    }
  }

  std::uint64_t h = kFnvOffset;
  HashU64(h, report.users);
  HashU64(h, report.seed);
  HashU64(h, report.shards);
  HashU64(h, report.cells.size());
  for (const MatrixCell& c : report.cells) {
    HashStr(h, c.spec);
    HashStr(h, c.fault);
    HashStr(h, c.connection);
    HashStr(h, c.chunk);
    HashU64(h, c.fingerprint);
    HashU64(h, c.sessions);
    HashU64(h, c.ops);
    HashU64(h, c.failed_sessions);
    HashU64(h, c.failed_ops);
    HashU64(h, c.flows);
    HashU64(h, c.slow_start_restarts);
    HashU64(h, c.chunk_requests);
    HashDouble(h, c.goodput_mb);
    HashDouble(h, c.wasted_mb);
    HashDouble(h, c.median_ttran_s);
    HashDouble(h, c.session_success_rate);
    // wall_s intentionally excluded: the report fingerprint must be
    // byte-identical across thread counts and machines.
  }
  report.fingerprint = h;
  return report;
}

std::string ToJson(const MatrixReport& report) {
  std::string out = "{\n";
  out += Fmt("  \"users\": %zu,\n", report.users);
  out += Fmt("  \"seed\": %llu,\n",
             static_cast<unsigned long long>(report.seed));
  out += Fmt("  \"shards\": %u,\n", report.shards);
  out += Fmt("  \"fingerprint\": \"%016llx\",\n",
             static_cast<unsigned long long>(report.fingerprint));
  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const MatrixCell& c = report.cells[i];
    out += "    {";
    out += Fmt("\"spec\": \"%s\", \"fault\": \"%s\", \"connection\": \"%s\", "
               "\"chunk\": \"%s\",\n",
               c.spec.c_str(), c.fault.c_str(), c.connection.c_str(),
               c.chunk.c_str());
    out += Fmt("     \"fingerprint\": \"%016llx\",\n",
               static_cast<unsigned long long>(c.fingerprint));
    out += Fmt("     \"sessions\": %llu, \"ops\": %llu, "
               "\"failed_sessions\": %llu, \"failed_ops\": %llu,\n",
               static_cast<unsigned long long>(c.sessions),
               static_cast<unsigned long long>(c.ops),
               static_cast<unsigned long long>(c.failed_sessions),
               static_cast<unsigned long long>(c.failed_ops));
    out += Fmt("     \"flows\": %llu, \"slow_start_restarts\": %llu, "
               "\"chunk_requests\": %llu,\n",
               static_cast<unsigned long long>(c.flows),
               static_cast<unsigned long long>(c.slow_start_restarts),
               static_cast<unsigned long long>(c.chunk_requests));
    out += Fmt("     \"goodput_mb\": %.17g, \"wasted_mb\": %.17g, "
               "\"median_ttran_s\": %.17g, \"session_success_rate\": %.17g,\n",
               c.goodput_mb, c.wasted_mb, c.median_ttran_s,
               c.session_success_rate);
    out += Fmt("     \"wall_s\": %.3f}%s\n", c.wall_s,
               i + 1 < report.cells.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

std::string RenderText(const MatrixReport& report) {
  std::string out;
  out += Fmt("matrix: %zu cells, fingerprint %016llx\n", report.cells.size(),
             static_cast<unsigned long long>(report.fingerprint));
  out += Fmt("  %-20s %-15s %-9s %-8s %10s %8s %9s %9s %8s\n", "spec",
             "fault", "conn", "chunk", "sessions", "success", "restarts",
             "ttran_ms", "wall_s");
  for (const MatrixCell& c : report.cells) {
    out += Fmt("  %-20s %-15s %-9s %-8s %10llu %7.3f%% %9llu %9.1f %8.2f\n",
               c.spec.c_str(), c.fault.c_str(), c.connection.c_str(),
               c.chunk.c_str(), static_cast<unsigned long long>(c.sessions),
               100.0 * c.session_success_rate,
               static_cast<unsigned long long>(c.slow_start_restarts),
               1e3 * c.median_ttran_s, c.wall_s);
  }
  return out;
}

}  // namespace mcloud::scenario
