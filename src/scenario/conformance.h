// Spec self-conformance: generate the world a WorkloadSpec describes, run
// the §3 analysis pipeline over it, and check the spec's *own* declared
// statistical targets ([targets] in the spec text) with the validate-layer
// tolerance machinery. This is the harness behind `mcloudctl conform` and
// tests/test_scenario.cc — every shipped spec must pass itself, and the
// negative-control spec (targets contradicting parameters) must fail on
// exactly the contradicted checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/workload_spec.h"
#include "validate/figure_checks.h"

namespace mcloud::scenario {

struct ConformanceOptions {
  std::uint64_t seed = 42;
  int threads = 0;  ///< 0 = hardware concurrency; results thread-invariant
  /// Override the spec's mobile population (0 = use the spec's); the
  /// PC-only population scales proportionally. Lets tests/CI run paper2016
  /// at 4k users under the ctest budget.
  std::size_t users_override = 0;
  /// Generate to a partitioned on-disk trace and analyze it with the
  /// streaming engine instead of holding the trace resident — the path
  /// that lets specs declare paper-scale populations. Needs `spill_dir`.
  bool out_of_core = false;
  std::string spill_dir;
  std::size_t max_memory_mb = 0;  ///< streaming staging budget; 0 = default
};

struct ConformanceRun {
  std::string spec_name;
  std::size_t users = 0;
  std::size_t sessions = 0;  ///< re-sessionized mobile sessions analyzed
  /// FingerprintReport of the analysis report — the determinism handle
  /// (thread- and engine-invariant).
  std::uint64_t report_fingerprint = 0;
  /// One outcome per declared target, in spec-grammar order.
  std::vector<validate::CheckOutcome> outcomes;

  [[nodiscard]] bool AllPassed() const {
    for (const auto& o : outcomes)
      if (!o.passed) return false;
    return true;
  }
};

/// Generate + analyze + evaluate the spec's declared targets.
[[nodiscard]] ConformanceRun RunConformance(const WorkloadSpec& spec,
                                            const ConformanceOptions& options);

/// Human-readable per-check table with a PASS/FAIL verdict line.
[[nodiscard]] std::string RenderText(const ConformanceRun& run);

/// Machine-readable report (one JSON object).
[[nodiscard]] std::string ToJson(const ConformanceRun& run);

}  // namespace mcloud::scenario
