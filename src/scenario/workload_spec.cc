#include "scenario/workload_spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "util/error.h"

namespace mcloud::scenario {

namespace {

/// Mixture weights must sum to 1 within this tolerance.
constexpr double kWeightSumTol = 1e-6;

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

/// Shortest decimal form that parses back to exactly the same double, so
/// ParseSpec(ToText(s)) round-trips bit for bit without 17-digit noise.
std::string FmtDouble(double v) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Line-oriented parser for the spec grammar. All errors carry
/// `source:line: [section].key: message`.
class Parser {
 public:
  Parser(std::string_view text, std::string source)
      : text_(text), source_(std::move(source)) {}

  WorkloadSpec Run() {
    std::istringstream in{std::string(text_)};
    std::string raw;
    while (std::getline(in, raw)) {
      ++line_;
      if (!raw.empty() && raw.back() == '\r') raw.pop_back();
      HandleLine(raw);
    }
    Finish();
    return spec_;
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) const {
    std::string out = source_ + ":" + std::to_string(line_) + ": ";
    if (!key_.empty()) {
      if (!section_.empty()) out += "[" + section_ + "].";
      out += key_ + ": ";
    } else if (!section_.empty()) {
      out += "[" + section_ + "]: ";
    }
    throw ParseError(out + msg);
  }

  void HandleLine(std::string_view raw) {
    key_.clear();
    // Strip the comment: the first '#' outside double quotes.
    bool quoted = false;
    std::size_t cut = raw.size();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '"') quoted = !quoted;
      if (raw[i] == '#' && !quoted) {
        cut = i;
        break;
      }
    }
    const std::string_view body = Trim(raw.substr(0, cut));
    if (body.empty()) return;

    if (body.front() == '[') {
      if (body.back() != ']')
        Fail("section header does not end with ']'");
      const std::string_view name = Trim(body.substr(1, body.size() - 2));
      if (!IsIdentifier(name)) Fail("malformed section name");
      section_ = std::string(name);
      if (!kSections.count(section_))
        Fail("unknown section [" + section_ + "]");
      if (!open_sections_.insert(section_).second)
        Fail("section [" + section_ + "] opened twice");
      return;
    }

    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos)
      Fail("expected `key = value` or `[section]`");
    const std::string_view key = Trim(body.substr(0, eq));
    const std::string_view value = Trim(body.substr(eq + 1));
    if (!IsIdentifier(key)) Fail("malformed key");
    key_ = std::string(key);
    if (value.empty()) Fail("missing value");

    const std::string full = section_ + "." + key_;
    if (!lines_.emplace(full, line_).second) Fail("duplicate key");
    Assign(std::string(value));
  }

  // ---- typed value extractors (all validate and Fail with context) ----

  double Num(const std::string& v) const {
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end != v.c_str() + v.size() || v.empty())
      Fail("expected a number, got `" + v + "`");
    if (!std::isfinite(d)) Fail("number is not finite");
    return d;
  }

  double Share(const std::string& v) const {
    const double d = Num(v);
    if (d < 0.0 || d > 1.0)
      Fail("share " + FmtDouble(d) + " out of range [0, 1]");
    return d;
  }

  double Pos(const std::string& v) const {
    const double d = Num(v);
    if (d <= 0.0) Fail("value must be > 0");
    return d;
  }

  double NonNeg(const std::string& v) const {
    const double d = Num(v);
    if (d < 0.0) Fail("value must be >= 0");
    return d;
  }

  long Int(const std::string& v, long min, long max) const {
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size() || v.empty())
      Fail("expected an integer, got `" + v + "`");
    if (n < min || n > max)
      Fail("value " + std::to_string(n) + " out of range [" +
           std::to_string(min) + ", " + std::to_string(max) + "]");
    return n;
  }

  std::string Str(const std::string& v) const {
    if (v.size() < 2 || v.front() != '"' || v.back() != '"')
      Fail("expected a quoted string");
    const std::string s = v.substr(1, v.size() - 2);
    if (s.find('"') != std::string::npos)
      Fail("embedded '\"' is not supported");
    return s;
  }

  std::vector<double> Arr(const std::string& v, std::size_t arity) const {
    if (v.size() < 2 || v.front() != '[' || v.back() != ']')
      Fail("expected an array `[a, b, ...]`");
    std::vector<double> out;
    std::string_view body = Trim(std::string_view(v).substr(1, v.size() - 2));
    while (!body.empty()) {
      const std::size_t comma = body.find(',');
      const std::string_view tok = Trim(body.substr(0, comma));
      if (tok.empty()) Fail("empty array element");
      out.push_back(Num(std::string(tok)));
      if (comma == std::string_view::npos) break;
      body = Trim(body.substr(comma + 1));
      if (body.empty()) Fail("trailing comma in array");
    }
    if (out.size() != arity)
      Fail("expected " + std::to_string(arity) + " elements, got " +
           std::to_string(out.size()));
    return out;
  }

  /// Mixture weights: each >= 0, summing to 1 within kWeightSumTol.
  template <std::size_t N>
  std::array<double, N> Weights(const std::string& v) const {
    const std::vector<double> raw = Arr(v, N);
    double sum = 0;
    std::array<double, N> out{};
    for (std::size_t i = 0; i < N; ++i) {
      if (raw[i] < 0) Fail("weight must be >= 0");
      out[i] = raw[i];
      sum += raw[i];
    }
    if (std::abs(sum - 1.0) > kWeightSumTol)
      Fail("mixture weights sum to " + FmtDouble(sum) + ", expected 1");
    return out;
  }

  /// Class shares: each in [0, 1], sum <= 1 (remainder is implicit).
  template <std::size_t N>
  std::array<double, N> Shares(const std::string& v) const {
    const std::vector<double> raw = Arr(v, N);
    double sum = 0;
    std::array<double, N> out{};
    for (std::size_t i = 0; i < N; ++i) {
      if (raw[i] < 0 || raw[i] > 1)
        Fail("share " + FmtDouble(raw[i]) + " out of range [0, 1]");
      out[i] = raw[i];
      sum += raw[i];
    }
    if (sum > 1.0 + kWeightSumTol)
      Fail("shares sum to " + FmtDouble(sum) + ", exceeding 1");
    return out;
  }

  /// Relative intensities: each >= 0, at least one > 0.
  template <std::size_t N>
  std::array<double, N> Intensities(const std::string& v) const {
    const std::vector<double> raw = Arr(v, N);
    double sum = 0;
    std::array<double, N> out{};
    for (std::size_t i = 0; i < N; ++i) {
      if (raw[i] < 0) Fail("intensity must be >= 0");
      out[i] = raw[i];
      sum += raw[i];
    }
    if (sum <= 0) Fail("all intensities are zero");
    return out;
  }

  template <std::size_t N>
  std::array<double, N> PosArr(const std::string& v) const {
    const std::vector<double> raw = Arr(v, N);
    std::array<double, N> out{};
    for (std::size_t i = 0; i < N; ++i) {
      if (raw[i] <= 0) Fail("value must be > 0");
      out[i] = raw[i];
    }
    return out;
  }

  // ---- the closed (section, key) dispatch ----

  void Assign(const std::string& v) {
    workload::ModelParams& m = spec_.model;
    SpecTargets& t = spec_.targets;
    const std::string& k = key_;
    if (section_.empty()) {
      if (k == "name") {
        spec_.name = Str(v);
        if (spec_.name.empty()) Fail("name must be non-empty");
        for (char c : spec_.name) {
          if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
              c != '_' && c != '.')
            Fail("name may only contain [A-Za-z0-9._-]");
        }
      } else if (k == "description") {
        spec_.description = Str(v);
      } else {
        Fail("unknown top-level key (did you forget a [section] header?)");
      }
    } else if (section_ == "population") {
      if (k == "mobile_users")
        spec_.mobile_users = static_cast<std::size_t>(Int(v, 1, 100'000'000));
      else if (k == "pc_only_users")
        spec_.pc_only_users = static_cast<std::size_t>(Int(v, 0, 100'000'000));
      else if (k == "days")
        spec_.days = static_cast<int>(Int(v, 1, 366));
      else if (k == "android_share")
        spec_.android_share = Share(v);
      else if (k == "mobile_and_pc_share")
        spec_.mobile_and_pc_share = Share(v);
      else
        Fail("unknown key");
    } else if (section_ == "devices") {
      if (k == "count_weights")
        m.device_count_weights = Weights<3>(v);
      else if (k == "multi_upload_shift")
        m.multi_device_upload_shift = Share(v);
      else if (k == "multi_to_download")
        m.multi_device_to_download = Share(v);
      else
        Fail("unknown key");
    } else if (section_ == "classes") {
      if (k == "mobile_only")
        m.input_shares_mobile_only = Shares<3>(v);
      else if (k == "mobile_pc")
        m.input_shares_mobile_pc = Shares<3>(v);
      else if (k == "pc_only")
        m.input_shares_pc_only = Shares<3>(v);
      else
        Fail("unknown key");
    } else if (section_ == "activity") {
      if (k == "store_x0")
        m.store_activity_x0 = Pos(v);
      else if (k == "store_c")
        m.store_activity_c = Pos(v);
      else if (k == "retrieve_x0")
        m.retrieve_activity_x0 = Pos(v);
      else if (k == "retrieve_c")
        m.retrieve_activity_c = Pos(v);
      else
        Fail("unknown key");
    } else if (section_ == "engagement") {
      if (k == "single_device")
        m.engaged_single_device = Share(v);
      else if (k == "multi_device")
        m.engaged_multi_device = Share(v);
      else if (k == "mobile_pc")
        m.engaged_mobile_pc = Share(v);
      else if (k == "daily_active")
        m.engaged_daily_active = Share(v);
      else if (k == "daily_decay")
        m.engaged_daily_decay = Share(v);
      else if (k == "pc_sync_after_upload")
        m.pc_sync_after_upload = Share(v);
      else
        Fail("unknown key");
    } else if (section_ == "sessions") {
      if (k == "single_op_share")
        m.single_op_share = Share(v);
      else if (k == "few_ops_share")
        m.few_ops_share = Share(v);
      else if (k == "few_ops_mean")
        m.few_ops_mean = Pos(v);
      else if (k == "many_ops_tail_mean")
        m.many_ops_tail_mean = Pos(v);
      else if (k == "retrieve_single_op_share")
        m.retrieve_single_op_share = Share(v);
      else if (k == "retrieve_few_ops_share")
        m.retrieve_few_ops_share = Share(v);
      else if (k == "mixed_session_probability")
        m.mixed_session_probability = Share(v);
      else
        Fail("unknown key");
    } else if (section_ == "store_size") {
      if (k == "weights")
        m.store_file_size.weights = Weights<3>(v);
      else if (k == "means_mb")
        m.store_file_size.means_mb = PosArr<3>(v);
      else if (k == "single_op_weights")
        m.store_size_weights_single = Weights<3>(v);
      else if (k == "multi_op_weights")
        m.store_size_weights_multi = Weights<3>(v);
      else
        Fail("unknown key");
    } else if (section_ == "retrieve_size") {
      if (k == "weights")
        m.retrieve_file_size.weights = Weights<3>(v);
      else if (k == "means_mb")
        m.retrieve_file_size.means_mb = PosArr<3>(v);
      else if (k == "by_count_1_2")
        m.retrieve_size_weights_by_count[0] = Weights<3>(v);
      else if (k == "by_count_3_9")
        m.retrieve_size_weights_by_count[1] = Weights<3>(v);
      else if (k == "by_count_10_plus")
        m.retrieve_size_weights_by_count[2] = Weights<3>(v);
      else
        Fail("unknown key");
    } else if (section_ == "gaps") {
      if (k == "quick_share")
        m.quick_gap_share = Share(v);
      else if (k == "quick_mean_log10")
        m.quick_gap_mean_log10 = Num(v);
      else if (k == "quick_stddev_log10")
        m.quick_gap_stddev_log10 = NonNeg(v);
      else if (k == "think_mean_log10")
        m.think_gap_mean_log10 = Num(v);
      else if (k == "think_stddev_log10")
        m.think_gap_stddev_log10 = NonNeg(v);
      else if (k == "batch_mean_log10")
        m.batch_gap_mean_log10 = Num(v);
      else if (k == "batch_stddev_log10")
        m.batch_gap_stddev_log10 = NonNeg(v);
      else
        Fail("unknown key");
    } else if (section_ == "diurnal") {
      if (k == "hour_weights")
        m.hour_weights = Intensities<24>(v);
      else if (k == "day_weights")
        m.day_weights = Intensities<7>(v);
      else
        Fail("unknown key");
    } else if (section_ == "targets") {
      if (k == "store_share")
        t.store_share = Share(v);
      else if (k == "retrieve_share")
        t.retrieve_share = Share(v);
      else if (k == "mixed_share")
        t.mixed_share = Share(v);
      else if (k == "session_share_slack")
        t.session_share_slack = Share(v);
      else if (k == "mixed_share_slack")
        t.mixed_share_slack = Share(v);
      else if (k == "single_op_share")
        t.single_op_share = Share(v);
      else if (k == "single_op_slack")
        t.single_op_slack = Share(v);
      else if (k == "peak_hour")
        t.peak_hour = static_cast<int>(Int(v, 0, 23));
      else if (k == "peak_hour_tolerance")
        t.peak_hour_tolerance = static_cast<int>(Int(v, 0, 12));
      else if (k == "android_share")
        t.android_share = Share(v);
      else if (k == "android_share_slack")
        t.android_share_slack = Share(v);
      else if (k == "store_size_ks_slack")
        t.store_size_ks_slack = Share(v);
      else if (k == "retrieve_size_ks_slack")
        t.retrieve_size_ks_slack = Share(v);
      else
        Fail("unknown key");
    } else {
      // Unreachable: section names are checked at the header.
      Fail("unknown section");
    }
  }

  /// Cross-key constraints, reported against the line of the involved key.
  void Finish() {
    section_.clear();
    key_.clear();
    if (spec_.name.empty()) {
      line_ = 1;
      key_ = "name";
      Fail("spec does not declare a name");
    }
    CheckPairSum("sessions", "single_op_share", "few_ops_share",
                 spec_.model.single_op_share, spec_.model.few_ops_share);
    CheckPairSum("sessions", "retrieve_single_op_share",
                 "retrieve_few_ops_share",
                 spec_.model.retrieve_single_op_share,
                 spec_.model.retrieve_few_ops_share);
  }

  void CheckPairSum(const std::string& section, const std::string& a,
                    const std::string& b, double va, double vb) {
    if (va + vb <= 1.0 + kWeightSumTol) return;
    // Blame whichever of the pair the spec actually set, latest first.
    const auto ia = lines_.find(section + "." + a);
    const auto ib = lines_.find(section + "." + b);
    section_ = section;
    if (ib != lines_.end() && (ia == lines_.end() || ib->second > ia->second)) {
      line_ = ib->second;
      key_ = b;
    } else if (ia != lines_.end()) {
      line_ = ia->second;
      key_ = a;
    }
    Fail(a + " + " + b + " = " + FmtDouble(va + vb) + ", exceeding 1");
  }

  static const std::set<std::string> kSections;

  std::string_view text_;
  std::string source_;
  WorkloadSpec spec_;
  std::string section_;
  std::string key_;
  int line_ = 0;
  std::set<std::string> open_sections_;
  std::map<std::string, int> lines_;
};

const std::set<std::string> Parser::kSections = {
    "population", "devices",       "classes", "activity", "engagement",
    "sessions",   "store_size",    "gaps",    "diurnal",  "retrieve_size",
    "targets"};

void EmitArr(std::string& out, const char* key, const double* v,
             std::size_t n) {
  out += key;
  out += " = [";
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out += ", ";
    out += FmtDouble(v[i]);
  }
  out += "]\n";
}

void EmitNum(std::string& out, const char* key, double v) {
  out += key;
  out += " = ";
  out += FmtDouble(v);
  out += '\n';
}

void EmitInt(std::string& out, const char* key, long v) {
  out += key;
  out += " = ";
  out += std::to_string(v);
  out += '\n';
}

}  // namespace

WorkloadSpec ParseSpec(std::string_view text, const std::string& source_name) {
  return Parser(text, source_name).Run();
}

WorkloadSpec LoadSpecFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open spec file: " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseSpec(buf.str(), path.string());
}

std::string ToText(const WorkloadSpec& spec) {
  const workload::ModelParams& m = spec.model;
  const SpecTargets& t = spec.targets;
  std::string o;
  o.reserve(2048);
  o += "# mcloud workload spec (canonical form)\n";
  o += "name = \"" + spec.name + "\"\n";
  o += "description = \"" + spec.description + "\"\n";

  o += "\n[population]\n";
  EmitInt(o, "mobile_users", static_cast<long>(spec.mobile_users));
  EmitInt(o, "pc_only_users", static_cast<long>(spec.pc_only_users));
  EmitInt(o, "days", spec.days);
  EmitNum(o, "android_share", spec.android_share);
  EmitNum(o, "mobile_and_pc_share", spec.mobile_and_pc_share);

  o += "\n[devices]\n";
  EmitArr(o, "count_weights", m.device_count_weights.data(), 3);
  EmitNum(o, "multi_upload_shift", m.multi_device_upload_shift);
  EmitNum(o, "multi_to_download", m.multi_device_to_download);

  o += "\n[classes]\n";
  EmitArr(o, "mobile_only", m.input_shares_mobile_only.data(), 3);
  EmitArr(o, "mobile_pc", m.input_shares_mobile_pc.data(), 3);
  EmitArr(o, "pc_only", m.input_shares_pc_only.data(), 3);

  o += "\n[activity]\n";
  EmitNum(o, "store_x0", m.store_activity_x0);
  EmitNum(o, "store_c", m.store_activity_c);
  EmitNum(o, "retrieve_x0", m.retrieve_activity_x0);
  EmitNum(o, "retrieve_c", m.retrieve_activity_c);

  o += "\n[engagement]\n";
  EmitNum(o, "single_device", m.engaged_single_device);
  EmitNum(o, "multi_device", m.engaged_multi_device);
  EmitNum(o, "mobile_pc", m.engaged_mobile_pc);
  EmitNum(o, "daily_active", m.engaged_daily_active);
  EmitNum(o, "daily_decay", m.engaged_daily_decay);
  EmitNum(o, "pc_sync_after_upload", m.pc_sync_after_upload);

  o += "\n[sessions]\n";
  EmitNum(o, "single_op_share", m.single_op_share);
  EmitNum(o, "few_ops_share", m.few_ops_share);
  EmitNum(o, "few_ops_mean", m.few_ops_mean);
  EmitNum(o, "many_ops_tail_mean", m.many_ops_tail_mean);
  EmitNum(o, "retrieve_single_op_share", m.retrieve_single_op_share);
  EmitNum(o, "retrieve_few_ops_share", m.retrieve_few_ops_share);
  EmitNum(o, "mixed_session_probability", m.mixed_session_probability);

  o += "\n[store_size]\n";
  EmitArr(o, "weights", m.store_file_size.weights.data(), 3);
  EmitArr(o, "means_mb", m.store_file_size.means_mb.data(), 3);
  EmitArr(o, "single_op_weights", m.store_size_weights_single.data(), 3);
  EmitArr(o, "multi_op_weights", m.store_size_weights_multi.data(), 3);

  o += "\n[retrieve_size]\n";
  EmitArr(o, "weights", m.retrieve_file_size.weights.data(), 3);
  EmitArr(o, "means_mb", m.retrieve_file_size.means_mb.data(), 3);
  EmitArr(o, "by_count_1_2", m.retrieve_size_weights_by_count[0].data(), 3);
  EmitArr(o, "by_count_3_9", m.retrieve_size_weights_by_count[1].data(), 3);
  EmitArr(o, "by_count_10_plus", m.retrieve_size_weights_by_count[2].data(),
          3);

  o += "\n[gaps]\n";
  EmitNum(o, "quick_share", m.quick_gap_share);
  EmitNum(o, "quick_mean_log10", m.quick_gap_mean_log10);
  EmitNum(o, "quick_stddev_log10", m.quick_gap_stddev_log10);
  EmitNum(o, "think_mean_log10", m.think_gap_mean_log10);
  EmitNum(o, "think_stddev_log10", m.think_gap_stddev_log10);
  EmitNum(o, "batch_mean_log10", m.batch_gap_mean_log10);
  EmitNum(o, "batch_stddev_log10", m.batch_gap_stddev_log10);

  o += "\n[diurnal]\n";
  EmitArr(o, "hour_weights", m.hour_weights.data(), 24);
  EmitArr(o, "day_weights", m.day_weights.data(), 7);

  o += "\n[targets]\n";
  if (t.store_share) EmitNum(o, "store_share", *t.store_share);
  if (t.retrieve_share) EmitNum(o, "retrieve_share", *t.retrieve_share);
  if (t.mixed_share) EmitNum(o, "mixed_share", *t.mixed_share);
  EmitNum(o, "session_share_slack", t.session_share_slack);
  EmitNum(o, "mixed_share_slack", t.mixed_share_slack);
  if (t.single_op_share) EmitNum(o, "single_op_share", *t.single_op_share);
  EmitNum(o, "single_op_slack", t.single_op_slack);
  if (t.peak_hour) EmitInt(o, "peak_hour", *t.peak_hour);
  EmitInt(o, "peak_hour_tolerance", t.peak_hour_tolerance);
  if (t.android_share) EmitNum(o, "android_share", *t.android_share);
  EmitNum(o, "android_share_slack", t.android_share_slack);
  if (t.store_size_ks_slack)
    EmitNum(o, "store_size_ks_slack", *t.store_size_ks_slack);
  if (t.retrieve_size_ks_slack)
    EmitNum(o, "retrieve_size_ks_slack", *t.retrieve_size_ks_slack);
  return o;
}

workload::WorkloadConfig Compile(const WorkloadSpec& spec, std::uint64_t seed,
                                 int threads) {
  workload::WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.population.mobile_users = spec.mobile_users;
  cfg.population.pc_only_users = spec.pc_only_users;
  cfg.population.days = spec.days;
  cfg.population.android_share = spec.android_share;
  cfg.population.mobile_and_pc_share = spec.mobile_and_pc_share;
  cfg.model = spec.model;
  return cfg;
}

std::filesystem::path DefaultSpecsDir() {
  if (const char* env = std::getenv("MCLOUD_SPECS_DIR")) return env;
#ifdef MCLOUD_SPECS_DIR
  return MCLOUD_SPECS_DIR;
#else
  return "specs";
#endif
}

std::vector<std::string> ListSpecs(const std::string& specs_dir) {
  const std::filesystem::path dir =
      specs_dir.empty() ? DefaultSpecsDir() : std::filesystem::path(specs_dir);
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".spec")
      names.push_back(entry.path().stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::filesystem::path ResolveSpecPath(const std::string& name_or_path,
                                      const std::string& specs_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_regular_file(name_or_path, ec)) return name_or_path;
  const fs::path dir =
      specs_dir.empty() ? DefaultSpecsDir() : fs::path(specs_dir);
  for (const fs::path& cand :
       {dir / (name_or_path + ".spec"), dir / name_or_path}) {
    if (fs::is_regular_file(cand, ec)) return cand;
  }
  std::string msg = "unknown spec `" + name_or_path + "` (searched " +
                    dir.string() + "); available:";
  for (const std::string& n : ListSpecs(dir.string())) msg += " " + n;
  throw Error(msg);
}

WorkloadSpec LoadSpec(const std::string& name_or_path,
                      const std::string& specs_dir) {
  return LoadSpecFile(ResolveSpecPath(name_or_path, specs_dir));
}

}  // namespace mcloud::scenario
