// What-if matrix runner: sweep spec × fault grid × connection strategy ×
// chunk policy through the sharded fleet executor and emit one comparable
// JSON report with per-cell fingerprints.
//
// Determinism contract: each cell executes through ExecuteFleet, whose
// output is byte-identical at every thread count, and the cell order is the
// fixed row-major axis order — so the whole report (and its fingerprint) is
// byte-identical for `--threads 1` and `--threads N`. Wall-clock fields are
// excluded from the fingerprints. Each spec's session plans are generated
// once (plans only — no trace emission, so memory scales with sessions, not
// records) and shared by all of its cells; paper-scale *analysis* of a spec
// goes through the out-of-core conformance path instead
// (scenario/conformance.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/storage_service.h"
#include "fault/fault_config.h"

namespace mcloud::scenario {

struct MatrixOptions {
  /// Spec names (resolved against `specs_dir`) or spec file paths.
  std::vector<std::string> specs;
  /// Fault grids: "none", "frontend-flaky", "lossy-cell".
  std::vector<std::string> faults = {"none", "frontend-flaky"};
  /// Connection strategies (§4.3 connection-handling what-ifs): "baseline"
  /// (slow-start after idle, the measured service), "no-ssai" (idle
  /// connections keep their window), "paced" (SSAI off, first post-idle
  /// window paced).
  std::vector<std::string> connections = {"baseline", "no-ssai"};
  /// Chunk policies: "paper" (512 KB, one chunk per request), "chunk2m"
  /// (2 MiB chunks), "batch4" (512 KB, 4 chunks per request).
  std::vector<std::string> chunk_policies = {"paper"};
  /// Override every spec's mobile population (0 = spec-declared); PC-only
  /// users scale proportionally.
  std::size_t users = 0;
  std::uint64_t seed = 42;
  int threads = 0;  ///< wall-clock only; never affects the report bytes
  std::uint32_t shards = 8;
  std::string specs_dir;  ///< "" = DefaultSpecsDir()
};

/// One (spec, fault, connection, chunk) execution. All fields except
/// `wall_s` are deterministic and fingerprinted.
struct MatrixCell {
  std::string spec;
  std::string fault;
  std::string connection;
  std::string chunk;
  std::uint64_t fingerprint = 0;  ///< FingerprintServiceResult of the cell
  std::uint64_t sessions = 0;
  std::uint64_t ops = 0;
  std::uint64_t failed_sessions = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t flows = 0;
  std::uint64_t slow_start_restarts = 0;
  std::uint64_t chunk_requests = 0;
  double goodput_mb = 0;
  double wasted_mb = 0;
  double median_ttran_s = 0;  ///< median per-chunk transfer time
  double session_success_rate = 1;
  double wall_s = 0;  ///< not fingerprinted
};

struct MatrixReport {
  std::size_t users = 0;  ///< the override (0 = per-spec populations)
  std::uint64_t seed = 42;
  std::uint32_t shards = 8;
  std::vector<MatrixCell> cells;  ///< fixed row-major axis order
  std::uint64_t fingerprint = 0;  ///< FNV-1a over every cell (minus wall_s)
};

/// Named fault-grid preset; throws Error on an unknown name.
[[nodiscard]] fault::FaultConfig FaultGrid(const std::string& name);

/// Apply a named connection strategy / chunk policy to a service config;
/// throws Error on an unknown name.
void ApplyConnectionStrategy(cloud::ServiceConfig& config,
                             const std::string& name);
void ApplyChunkPolicy(cloud::ServiceConfig& config, const std::string& name);

/// Run the full sweep. Loads + compiles each spec once, generates its
/// session plans once, then executes every cell through the sharded fleet.
[[nodiscard]] MatrixReport RunMatrix(const MatrixOptions& options);

/// One JSON object: axes, per-cell metrics + fingerprints, overall
/// fingerprint. Byte-identical at every thread count except `wall_s`
/// values, which CI strips before diffing (it compares the fingerprint
/// lines).
[[nodiscard]] std::string ToJson(const MatrixReport& report);

/// Compact per-cell table for the terminal.
[[nodiscard]] std::string RenderText(const MatrixReport& report);

}  // namespace mcloud::scenario
