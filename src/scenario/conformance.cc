#include "scenario/conformance.h"

#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/report.h"
#include "stats/tdigest.h"
#include "trace/partitioned_trace.h"
#include "util/error.h"
#include "validate/gof.h"
#include "validate/tolerance.h"
#include "workload/generator.h"

namespace mcloud::scenario {

namespace {

std::string Fmt(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

/// (bin mean, bin count) pairs of a sketch's occupied bins — same shape the
/// validate layer feeds its grouped GoF statistics.
struct SketchGroups {
  std::vector<double> values;
  std::vector<std::uint64_t> counts;
};

SketchGroups GroupsOf(const LogBins& sketch) {
  SketchGroups g;
  for (std::size_t b = 0; b < sketch.bins(); ++b) {
    if (sketch.Count(b) == 0) continue;
    g.values.push_back(sketch.Mean(b));
    g.counts.push_back(sketch.Count(b));
  }
  return g;
}

MixtureExponential MixtureOf(const paper::MixtureExpParams& p) {
  std::vector<MixtureExponential::Component> cs;
  cs.reserve(p.weights.size());
  for (std::size_t i = 0; i < p.weights.size(); ++i)
    cs.push_back({p.weights[i], p.means_mb[i]});
  return MixtureExponential(std::move(cs));
}

validate::CheckOutcome MakeOutcome(std::string id, std::string what,
                                   validate::CheckResult result) {
  validate::CheckOutcome o;
  o.id = std::move(id);
  o.figure = "spec";
  o.what = std::move(what);
  o.passed = result.statistic <= result.threshold;
  o.result = std::move(result);
  return o;
}

/// |measured - declared| share gate with the sample-size-aware band.
validate::CheckOutcome ShareCheck(const std::string& id,
                                  const std::string& what, double measured,
                                  double declared, double slack,
                                  std::size_t n) {
  validate::CheckResult r;
  r.metric = "|d share|";
  r.statistic = std::abs(measured - declared);
  r.threshold = validate::SharePolicy{slack}.Band(declared, n);
  r.n = n;
  r.detail = Fmt("measured %.4f vs declared %.4f (n=%zu)", measured, declared,
                 n);
  return MakeOutcome(id, what, std::move(r));
}

int CircularHourDistance(int a, int b) {
  const int d = std::abs(a - b) % 24;
  return d > 12 ? 24 - d : d;
}

}  // namespace

ConformanceRun RunConformance(const WorkloadSpec& spec,
                              const ConformanceOptions& options) {
  workload::WorkloadConfig cfg = Compile(spec, options.seed, options.threads);
  if (options.users_override > 0) {
    // Keep the spec's PC:mobile ratio when scaling the population down.
    cfg.population.pc_only_users =
        spec.mobile_users
            ? spec.pc_only_users * options.users_override / spec.mobile_users
            : spec.pc_only_users;
    cfg.population.mobile_users = options.users_override;
  }

  core::PipelineOptions po;
  po.trace_start = cfg.trace_start;
  po.days = cfg.population.days;
  po.session_tau = kHour;
  po.threads = options.threads;
  po.max_memory_mb = options.max_memory_mb;

  const workload::WorkloadGenerator gen(cfg);
  const core::AnalysisPipeline pipeline(po);
  core::FullReport report;
  if (options.out_of_core) {
    MCLOUD_REQUIRE(!options.spill_dir.empty(),
                   "out-of-core conformance needs a spill dir");
    workload::SpillConfig spill;
    spill.dir = options.spill_dir;
    (void)gen.GenerateToPartitions(spill);
    report = pipeline.RunStreaming(PartitionedTrace::Open(spill.dir));
  } else {
    report = pipeline.Run(gen.GenerateColumnar().trace);
  }

  ConformanceRun run;
  run.spec_name = spec.name;
  run.users = cfg.population.mobile_users + cfg.population.pc_only_users;
  run.sessions = report.session_split.total;
  run.report_fingerprint = core::FingerprintReport(report);

  const SpecTargets& t = spec.targets;
  const analysis::SessionTypeSplit& split = report.session_split;

  if (t.store_share) {
    run.outcomes.push_back(ShareCheck(
        "target_store_share", "store-only session share", split.StoreShare(),
        *t.store_share, t.session_share_slack, split.total));
  }
  if (t.retrieve_share) {
    run.outcomes.push_back(
        ShareCheck("target_retrieve_share", "retrieve-only session share",
                   split.RetrieveShare(), *t.retrieve_share,
                   t.session_share_slack, split.total));
  }
  if (t.mixed_share) {
    run.outcomes.push_back(ShareCheck(
        "target_mixed_share", "mixed session share", split.MixedShare(),
        *t.mixed_share, t.mixed_share_slack, split.total));
  }
  if (t.single_op_share) {
    const double measured =
        split.total ? static_cast<double>(report.sketches.single_op_sessions) /
                          static_cast<double>(split.total)
                    : 0.0;
    run.outcomes.push_back(
        ShareCheck("target_single_op_share", "single-operation session share",
                   measured, *t.single_op_share, t.single_op_slack,
                   split.total));
  }
  if (t.peak_hour) {
    const int measured = report.timeseries.PeakHourOfDay();
    validate::CheckResult r;
    r.metric = "|d hour|";
    r.statistic = CircularHourDistance(measured, *t.peak_hour);
    r.threshold = t.peak_hour_tolerance;
    r.n = report.records;
    r.detail = Fmt("peak hour %d vs declared %d", measured, *t.peak_hour);
    run.outcomes.push_back(
        MakeOutcome("target_peak_hour", "diurnal peak hour", std::move(r)));
  }
  if (t.android_share) {
    run.outcomes.push_back(ShareCheck(
        "target_android_share", "Android share of mobile accesses",
        report.android_access_share, *t.android_share, t.android_share_slack,
        report.records));
  }
  if (t.store_size_ks_slack) {
    const SketchGroups g = GroupsOf(report.sketches.store_avg_mb);
    const MixtureExponential model = MixtureOf(spec.model.store_file_size);
    const validate::GofResult ks = validate::KsGrouped(
        g.values, g.counts, [&](double x) { return model.Cdf(x); });
    validate::CheckResult r;
    r.metric = "KS D";
    r.statistic = ks.statistic;
    r.threshold = validate::KsBand(*t.store_size_ks_slack, ks.n);
    r.p_value = ks.p_value;
    r.n = ks.n;
    r.detail = Fmt("per-session avg store MB vs declared mixture (D=%.4f)",
                   ks.statistic);
    run.outcomes.push_back(MakeOutcome(
        "target_store_size_ks", "store avg-file-size mixture", std::move(r)));
  }
  if (t.retrieve_size_ks_slack) {
    const SketchGroups g = GroupsOf(report.sketches.retrieve_avg_mb);
    const MixtureExponential model = MixtureOf(spec.model.retrieve_file_size);
    const validate::GofResult ks = validate::KsGrouped(
        g.values, g.counts, [&](double x) { return model.Cdf(x); });
    validate::CheckResult r;
    r.metric = "KS D";
    r.statistic = ks.statistic;
    r.threshold = validate::KsBand(*t.retrieve_size_ks_slack, ks.n);
    r.p_value = ks.p_value;
    r.n = ks.n;
    r.detail = Fmt("per-session avg retrieve MB vs declared mixture (D=%.4f)",
                   ks.statistic);
    run.outcomes.push_back(MakeOutcome("target_retrieve_size_ks",
                                       "retrieve avg-file-size mixture",
                                       std::move(r)));
  }
  return run;
}

std::string RenderText(const ConformanceRun& run) {
  std::string out;
  out += Fmt("spec %s: %zu users, %zu sessions, report fingerprint %016llx\n",
             run.spec_name.c_str(), run.users, run.sessions,
             static_cast<unsigned long long>(run.report_fingerprint));
  for (const auto& o : run.outcomes) {
    out += Fmt("  [%s] %-26s %-10s %.4f <= %.4f  %s\n",
               o.passed ? "PASS" : "FAIL", o.id.c_str(),
               o.result.metric.c_str(), o.result.statistic,
               o.result.threshold, o.result.detail.c_str());
  }
  std::size_t passed = 0;
  for (const auto& o : run.outcomes) passed += o.passed ? 1 : 0;
  out += Fmt("%zu/%zu declared targets met\n", passed, run.outcomes.size());
  return out;
}

std::string ToJson(const ConformanceRun& run) {
  std::string out = "{\n";
  out += Fmt("  \"spec\": \"%s\",\n", run.spec_name.c_str());
  out += Fmt("  \"users\": %zu,\n", run.users);
  out += Fmt("  \"sessions\": %zu,\n", run.sessions);
  out += Fmt("  \"report_fingerprint\": \"%016llx\",\n",
             static_cast<unsigned long long>(run.report_fingerprint));
  out += Fmt("  \"passed\": %s,\n", run.AllPassed() ? "true" : "false");
  out += "  \"checks\": [\n";
  for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
    const auto& o = run.outcomes[i];
    out += Fmt(
        "    {\"id\": \"%s\", \"metric\": \"%s\", \"statistic\": %.17g, "
        "\"threshold\": %.17g, \"n\": %zu, \"passed\": %s}%s\n",
        o.id.c_str(), o.result.metric.c_str(), o.result.statistic,
        o.result.threshold, o.result.n, o.passed ? "true" : "false",
        i + 1 < run.outcomes.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace mcloud::scenario
