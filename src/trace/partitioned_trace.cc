#include "trace/partitioned_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "trace/log_io.h"
#include "util/error.h"
#include "util/merge.h"
#include "util/timeutil.h"

namespace mcloud {
namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestMagic = "MCLOUDPART v1";

/// The analysis columns in v2 on-disk order; index in this array == index in
/// Run::col_offset.
constexpr std::uint32_t kScanColumns[7] = {
    kColTimestamp, kColDeviceType, kColDeviceId,    kColUser,
    kColRequestType, kColDirection, kColDataVolume,
};

}  // namespace

TraceRowBlock BlockOf(const TraceStore& store, std::size_t begin,
                      std::size_t end) {
  if (!store.has(kAnalysisColumns))
    throw Error("trace store is missing analysis columns");
  const std::size_t n = end - begin;
  TraceRowBlock b;
  b.timestamps = store.timestamps().subspan(begin, n);
  b.device_types = store.device_types().subspan(begin, n);
  b.device_ids = store.device_ids().subspan(begin, n);
  b.users = store.user_index().subspan(begin, n);
  b.request_types = store.request_types().subspan(begin, n);
  b.directions = store.directions().subspan(begin, n);
  b.data_volumes = store.data_volumes().subspan(begin, n);
  return b;
}

PartitionedTraceWriter::PartitionedTraceWriter(std::filesystem::path dir,
                                               UnixSeconds day_base)
    : dir_(std::move(dir)), day_base_(day_base) {
  if (!std::filesystem::is_directory(dir_))
    throw Error("spill target is not a directory: " + dir_.string());
}

void PartitionedTraceWriter::WriteSortedSlice(
    std::span<const LogRecord> slice) {
  if (finished_)
    throw Error("partitioned trace already sealed: " + dir_.string());
  // Timestamps are non-decreasing within the slice, so equal-day segments
  // are contiguous; each becomes one run file.
  std::size_t begin = 0;
  while (begin < slice.size()) {
    const std::int64_t day =
        FloorDayIndex(slice[begin].timestamp - day_base_);
    std::size_t end = begin + 1;
    while (end < slice.size() &&
           FloorDayIndex(slice[end].timestamp - day_base_) == day)
      ++end;
    char name[32];
    std::snprintf(name, sizeof(name), "run-%06zu.v2", runs_.size());
    WriteColumnarTrace(
        dir_ / name,
        TraceStore::FromRecords(slice.subspan(begin, end - begin), day_base_));
    runs_.push_back({day, static_cast<std::uint64_t>(end - begin), name});
    records_ += end - begin;
    begin = end;
  }
}

void PartitionedTraceWriter::WriteSortedSlice(const RecordColumns& slice) {
  if (finished_)
    throw Error("partitioned trace already sealed: " + dir_.string());
  // Timestamps are non-decreasing within the slice, so equal-day segments
  // are contiguous; each becomes one run file.
  std::size_t begin = 0;
  while (begin < slice.size()) {
    const std::int64_t day =
        FloorDayIndex(slice.timestamps[begin] - day_base_);
    std::size_t end = begin + 1;
    while (end < slice.size() &&
           FloorDayIndex(slice.timestamps[end] - day_base_) == day)
      ++end;
    char name[32];
    std::snprintf(name, sizeof(name), "run-%06zu.v2", runs_.size());
    WriteColumnarRun(dir_ / name, slice, begin, end, day_base_, run_scratch_);
    runs_.push_back({day, static_cast<std::uint64_t>(end - begin), name});
    records_ += end - begin;
    begin = end;
  }
}

void PartitionedTraceWriter::Finish() {
  if (finished_) return;
  const std::filesystem::path path = dir_ / kManifestName;
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path.string());
  out << kManifestMagic << '\n';
  out << "day_base " << day_base_ << '\n';
  out << "records " << records_ << '\n';
  out << "runs " << runs_.size() << '\n';
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    out << "run " << i << ' ' << runs_[i].day << ' ' << runs_[i].rows << ' '
        << runs_[i].file << '\n';
  }
  out << "end\n";
  if (!out) throw Error("write failed: " + path.string());
  finished_ = true;
}

PartitionedTrace PartitionedTrace::Open(const std::filesystem::path& dir) {
  const std::filesystem::path manifest = dir / kManifestName;
  std::ifstream in(manifest);
  if (!in)
    throw ParseError("cannot open partitioned trace manifest: " +
                     manifest.string());
  std::string line;
  const auto next_line = [&]() -> const std::string& {
    if (!std::getline(in, line))
      throw ParseError("truncated partitioned trace manifest: " +
                       manifest.string());
    return line;
  };
  const auto bad = [&](const std::string& what) {
    return ParseError("bad partitioned trace manifest (" + what + "): " +
                      manifest.string());
  };
  if (next_line() != kManifestMagic)
    throw ParseError("not a partitioned trace manifest: " + manifest.string());

  PartitionedTrace t;
  std::uint64_t n_runs = 0;
  {
    std::istringstream ls(next_line());
    std::string key;
    if (!(ls >> key >> t.day_base_) || key != "day_base")
      throw bad("day_base");
  }
  {
    std::istringstream ls(next_line());
    std::string key;
    if (!(ls >> key >> t.rows_) || key != "records") throw bad("records");
  }
  {
    std::istringstream ls(next_line());
    std::string key;
    if (!(ls >> key >> n_runs) || key != "runs") throw bad("runs");
  }
  t.runs_.reserve(n_runs);
  std::uint64_t declared_rows = 0;
  for (std::uint64_t i = 0; i < n_runs; ++i) {
    std::istringstream ls(next_line());
    std::string key, file;
    std::uint64_t seq = 0, rows = 0;
    std::int64_t day = 0;
    if (!(ls >> key >> seq >> day >> rows >> file) || key != "run" ||
        seq != i || file.empty())
      throw bad("run entry " + std::to_string(i));
    Run r;
    r.path = dir / file;
    r.day = day;
    r.rows = rows;
    declared_rows += rows;
    t.runs_.push_back(std::move(r));
  }
  // The trailing sentinel distinguishes a complete manifest from one cut
  // short mid-write: a truncated run list fails loudly here.
  if (next_line() != "end") throw bad("missing end sentinel");
  if (declared_rows != t.rows_) throw bad("record count mismatch");

  // Validate every run file (missing/short partitions throw in
  // ReadV2FileInfo), collect column offsets, and read the user tables.
  std::vector<std::vector<std::uint64_t>> tables(t.runs_.size());
  for (std::size_t i = 0; i < t.runs_.size(); ++i) {
    Run& r = t.runs_[i];
    const detail::V2FileInfo info = detail::ReadV2FileInfo(r.path);
    if (info.rows != r.rows)
      throw ParseError("partition row count mismatch (manifest says " +
                       std::to_string(r.rows) + ", file has " +
                       std::to_string(info.rows) + "): " + r.path.string());
    if (info.day_base != t.day_base_)
      throw ParseError("partition day_base mismatch: " + r.path.string());
    if ((info.mask & kAnalysisColumns) != kAnalysisColumns)
      throw ParseError("partition is missing analysis columns: " +
                       r.path.string());
    for (std::size_t c = 0; c < 7; ++c)
      r.col_offset[c] = info.ColumnOffset(kScanColumns[c]);

    std::ifstream run_in(r.path, std::ios::binary);
    if (!run_in)
      throw ParseError("cannot open partition: " + r.path.string());
    run_in.seekg(static_cast<std::streamoff>(info.user_table_offset));
    tables[i].resize(static_cast<std::size_t>(info.users));
    run_in.read(reinterpret_cast<char*>(tables[i].data()),
                static_cast<std::streamsize>(info.users *
                                             sizeof(std::uint64_t)));
    if (!run_in)
      throw ParseError("truncated columnar trace: " + r.path.string());
  }

  // Global user table: sorted union of the per-run tables — the same
  // ascending-original-id dense remap a resident TraceStore would assign.
  std::size_t total = 0;
  for (const auto& table : tables) total += table.size();
  t.user_ids_.reserve(total);
  for (const auto& table : tables)
    t.user_ids_.insert(t.user_ids_.end(), table.begin(), table.end());
  std::sort(t.user_ids_.begin(), t.user_ids_.end());
  t.user_ids_.erase(std::unique(t.user_ids_.begin(), t.user_ids_.end()),
                    t.user_ids_.end());
  if (t.user_ids_.size() > UINT32_MAX)
    throw ParseError("partitioned trace has too many users: " + dir.string());
  for (std::size_t i = 0; i < t.runs_.size(); ++i) {
    Run& r = t.runs_[i];
    r.local_to_global.reserve(tables[i].size());
    for (const std::uint64_t id : tables[i]) {
      const auto it =
          std::lower_bound(t.user_ids_.begin(), t.user_ids_.end(), id);
      r.local_to_global.push_back(
          static_cast<std::uint32_t>(it - t.user_ids_.begin()));
    }
    tables[i] = std::vector<std::uint64_t>();  // release as we go
  }
  return t;
}

namespace {

/// Block-buffered streaming cursor over one run file's analysis columns.
/// Satisfies the MergeSortedCursorsInto contract; user ids are remapped to
/// global dense indices as each block is loaded.
class RunCursor {
 public:
  RunCursor(const std::filesystem::path& path, std::uint64_t rows,
            const std::uint64_t* col_offset,
            std::span<const std::uint32_t> local_to_global,
            std::size_t block_rows)
      : in_(path, std::ios::binary),
        path_(path),
        rows_(rows),
        col_offset_(col_offset),
        local_to_global_(local_to_global) {
    if (!in_) throw ParseError("cannot open partition: " + path_.string());
    const std::size_t cap =
        static_cast<std::size_t>(std::min<std::uint64_t>(rows, block_rows));
    ts_.resize(cap);
    dev_.resize(cap);
    dev_id_.resize(cap);
    user_.resize(cap);
    req_.resize(cap);
    dir_.resize(cap);
    vol_.resize(cap);
    Refill();
  }

  [[nodiscard]] bool empty() const { return pos_ == block_n_; }
  void pop() {
    ++pos_;
    if (pos_ == block_n_ && file_pos_ < rows_) Refill();
  }

  [[nodiscard]] std::int64_t ts() const { return ts_[pos_]; }
  [[nodiscard]] std::uint8_t device_type() const { return dev_[pos_]; }
  [[nodiscard]] std::uint64_t device_id() const { return dev_id_[pos_]; }
  [[nodiscard]] std::uint32_t user() const { return user_[pos_]; }
  [[nodiscard]] std::uint8_t request_type() const { return req_[pos_]; }
  [[nodiscard]] std::uint8_t direction() const { return dir_[pos_]; }
  [[nodiscard]] std::uint64_t data_volume() const { return vol_[pos_]; }

 private:
  void ReadColumnAt(std::size_t col, void* data, std::size_t width,
                    std::size_t n) {
    in_.seekg(static_cast<std::streamoff>(col_offset_[col] +
                                          file_pos_ * width));
    in_.read(reinterpret_cast<char*>(data),
             static_cast<std::streamsize>(n * width));
    if (!in_)
      throw ParseError("truncated columnar trace: " + path_.string());
  }

  void Refill() {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(rows_ - file_pos_, ts_.size()));
    ReadColumnAt(0, ts_.data(), sizeof(std::int64_t), n);
    ReadColumnAt(1, dev_.data(), sizeof(std::uint8_t), n);
    ReadColumnAt(2, dev_id_.data(), sizeof(std::uint64_t), n);
    ReadColumnAt(3, user_.data(), sizeof(std::uint32_t), n);
    ReadColumnAt(4, req_.data(), sizeof(std::uint8_t), n);
    ReadColumnAt(5, dir_.data(), sizeof(std::uint8_t), n);
    ReadColumnAt(6, vol_.data(), sizeof(std::uint64_t), n);
    for (std::size_t i = 0; i < n; ++i) {
      if (user_[i] >= local_to_global_.size())
        throw ParseError("bad user index in partition: " + path_.string());
      user_[i] = local_to_global_[user_[i]];
    }
    file_pos_ += n;
    pos_ = 0;
    block_n_ = n;
  }

  std::ifstream in_;
  std::filesystem::path path_;
  std::uint64_t rows_;
  const std::uint64_t* col_offset_;
  std::span<const std::uint32_t> local_to_global_;
  std::uint64_t file_pos_ = 0;
  std::size_t pos_ = 0;
  std::size_t block_n_ = 0;
  std::vector<std::int64_t> ts_;
  std::vector<std::uint8_t> dev_;
  std::vector<std::uint64_t> dev_id_;
  std::vector<std::uint32_t> user_;
  std::vector<std::uint8_t> req_;
  std::vector<std::uint8_t> dir_;
  std::vector<std::uint64_t> vol_;
};

}  // namespace

void PartitionedTrace::Scan(std::size_t staging_rows,
                            const BlockSink& sink) const {
  staging_rows = std::max<std::size_t>(staging_rows, std::size_t{16} * 1024);
  // Ascending day order; within a day, manifest (= spill sequence) order —
  // std::map iterates keys ascending, push_back preserves run order.
  std::map<std::int64_t, std::vector<const Run*>> days;
  for (const Run& r : runs_)
    if (r.rows > 0) days[r.day].push_back(&r);

  // Half the budget stages the merged output; the other half is split
  // across the day's per-run read buffers.
  const std::size_t out_rows = std::max<std::size_t>(staging_rows / 2, 4096);
  std::vector<std::int64_t> ts;
  std::vector<std::uint8_t> dev;
  std::vector<std::uint64_t> dev_id;
  std::vector<std::uint32_t> user;
  std::vector<std::uint8_t> req;
  std::vector<std::uint8_t> dir;
  std::vector<std::uint64_t> vol;
  ts.reserve(out_rows);
  dev.reserve(out_rows);
  dev_id.reserve(out_rows);
  user.reserve(out_rows);
  req.reserve(out_rows);
  dir.reserve(out_rows);
  vol.reserve(out_rows);

  const auto flush = [&](std::int64_t day) {
    if (ts.empty()) return;
    TraceRowBlock b;
    b.timestamps = ts;
    b.device_types = dev;
    b.device_ids = dev_id;
    b.users = user;
    b.request_types = req;
    b.directions = dir;
    b.data_volumes = vol;
    sink(day, b);
    ts.clear();
    dev.clear();
    dev_id.clear();
    user.clear();
    req.clear();
    dir.clear();
    vol.clear();
  };

  for (const auto& [day, day_runs] : days) {
    const std::size_t per_run = std::max<std::size_t>(
        (staging_rows - out_rows) / day_runs.size(), 4096);
    std::vector<RunCursor> cursors;
    cursors.reserve(day_runs.size());
    for (const Run* r : day_runs)
      cursors.emplace_back(r->path, r->rows, r->col_offset, r->local_to_global,
                           per_run);
    // (ts, global user, device) == LogRecordTimeOrder: the global dense
    // remap is ascending in original id, so comparing dense indices is
    // comparing original ids. Index ties resolve to the lower cursor — the
    // earlier spill — giving exactly stable-sort order.
    const auto less = [](const RunCursor& a, const RunCursor& b) {
      if (a.ts() != b.ts()) return a.ts() < b.ts();
      if (a.user() != b.user()) return a.user() < b.user();
      return a.device_id() < b.device_id();
    };
    MergeSortedCursorsInto(cursors, less, [&](RunCursor& c) {
      ts.push_back(c.ts());
      dev.push_back(c.device_type());
      dev_id.push_back(c.device_id());
      user.push_back(c.user());
      req.push_back(c.request_type());
      dir.push_back(c.direction());
      vol.push_back(c.data_volume());
      if (ts.size() == out_rows) flush(day);
    });
    flush(day);
  }
}

}  // namespace mcloud
