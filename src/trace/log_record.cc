#include "trace/log_record.h"

#include "util/error.h"

namespace mcloud {

std::string_view ToString(DeviceType t) {
  switch (t) {
    case DeviceType::kAndroid:
      return "android";
    case DeviceType::kIos:
      return "ios";
    case DeviceType::kPc:
      return "pc";
  }
  throw Error("invalid DeviceType");
}

std::string_view ToString(RequestType t) {
  switch (t) {
    case RequestType::kFileOperation:
      return "file_op";
    case RequestType::kChunkRequest:
      return "chunk";
  }
  throw Error("invalid RequestType");
}

std::string_view ToString(Direction d) {
  switch (d) {
    case Direction::kStore:
      return "store";
    case Direction::kRetrieve:
      return "retrieve";
  }
  throw Error("invalid Direction");
}

std::string_view ToString(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kTimedOut:
      return "timed_out";
    case RequestOutcome::kFailed:
      return "failed";
    case RequestOutcome::kHedged:
      return "hedged";
  }
  throw Error("invalid RequestOutcome");
}

DeviceType DeviceTypeFromString(std::string_view s) {
  if (s == "android") return DeviceType::kAndroid;
  if (s == "ios") return DeviceType::kIos;
  if (s == "pc") return DeviceType::kPc;
  throw ParseError("unknown device type: '" + std::string(s) + "'");
}

RequestType RequestTypeFromString(std::string_view s) {
  if (s == "file_op") return RequestType::kFileOperation;
  if (s == "chunk") return RequestType::kChunkRequest;
  throw ParseError("unknown request type: '" + std::string(s) + "'");
}

Direction DirectionFromString(std::string_view s) {
  if (s == "store") return Direction::kStore;
  if (s == "retrieve") return Direction::kRetrieve;
  throw ParseError("unknown direction: '" + std::string(s) + "'");
}

}  // namespace mcloud
