// Keyed anonymization of user and device identifiers.
//
// The published dataset anonymizes device IDs and user IDs (§2.2). The
// Anonymizer reproduces that: IDs are mapped through MD5(key || id), which is
// deterministic per key, irreversible without the key, and collision-free in
// practice for the ID volumes involved. Re-anonymizing a trace with the same
// key is idempotent on the mapping (the same input always maps to the same
// output), so joins across traces anonymized with one key remain valid —
// exactly the property the paper relies on to link mobile and PC logs of the
// same user.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/log_record.h"

namespace mcloud {

class Anonymizer {
 public:
  explicit Anonymizer(std::string key) : key_(std::move(key)) {}

  /// Pseudonym for a raw identifier.
  [[nodiscard]] std::uint64_t MapId(std::uint64_t raw) const;

  /// Anonymize user_id and device_id of one record.
  [[nodiscard]] LogRecord Apply(LogRecord r) const;

  /// Anonymize an entire trace.
  [[nodiscard]] std::vector<LogRecord> Apply(
      std::span<const LogRecord> trace) const;

 private:
  std::string key_;
};

}  // namespace mcloud
