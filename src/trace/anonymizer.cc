#include "trace/anonymizer.h"

#include "util/md5.h"

namespace mcloud {

std::uint64_t Anonymizer::MapId(std::uint64_t raw) const {
  Md5 h;
  h.Update(key_);
  std::array<std::uint8_t, 8> bytes;
  for (std::size_t i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>((raw >> (8 * i)) & 0xff);
  h.Update(std::span<const std::uint8_t>(bytes));
  return h.Finalize().Low64();
}

LogRecord Anonymizer::Apply(LogRecord r) const {
  r.user_id = MapId(r.user_id);
  r.device_id = MapId(r.device_id);
  return r;
}

std::vector<LogRecord> Anonymizer::Apply(
    std::span<const LogRecord> trace) const {
  std::vector<LogRecord> out;
  out.reserve(trace.size());
  for (const auto& r : trace) out.push_back(Apply(r));
  return out;
}

}  // namespace mcloud
