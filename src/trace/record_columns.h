// Columnar (structure-of-arrays) staging buffer for emitted log records.
//
// The generator fast path emits records straight into these columns instead
// of building `std::vector<LogRecord>` and transposing later: an emitted
// record costs ~59 bytes of sequential column stores instead of a 112-byte
// AoS struct copy, the time-order sort runs as a radix permutation over
// 16-byte pairs plus one gather per column, and the buffer moves directly
// into TraceStore::Builder (resident path) or the partitioned run writer
// (spill path) without another transpose. `user_ids` holds the *original*
// 64-bit ids — dense remapping stays where it always lived (TraceStore
// build / per-run v2 writer / per-slice analysis remap).
//
// The resilience tags (outcome, attempt) are runtime-only and not staged,
// exactly as in the on-disk formats (trace/log_io.cc).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/log_record.h"
#include "util/radix_sort.h"

namespace mcloud {

struct RecordColumns;

/// Reusable scratch for RecordColumns::SortByTimeOrder: the radix sorter's
/// pair/count buffers plus one gather target per column element type. Keep
/// one per shard/worker and steady-state sorting allocates nothing.
struct RecordColumnsScratch {
  StableRadixSorter sorter;
  std::vector<std::int64_t> i64;
  std::vector<std::uint64_t> u64;
  std::vector<std::uint8_t> u8;
  std::vector<double> f64;
};

struct RecordColumns {
  std::vector<std::int64_t> timestamps;
  std::vector<std::uint8_t> device_types;
  std::vector<std::uint64_t> device_ids;
  std::vector<std::uint64_t> user_ids;
  std::vector<std::uint8_t> request_types;
  std::vector<std::uint8_t> directions;
  std::vector<std::uint64_t> data_volumes;
  std::vector<double> processing_times;
  std::vector<double> server_times;
  std::vector<double> avg_rtts;
  std::vector<std::uint8_t> proxied;

  [[nodiscard]] std::size_t size() const { return timestamps.size(); }
  [[nodiscard]] bool empty() const { return timestamps.empty(); }

  void clear();
  void reserve(std::size_t n);
  /// Capacity of the backing storage (rows the buffer can hold without
  /// reallocating) — the pooled-buffer growth diagnostic.
  [[nodiscard]] std::size_t capacity() const { return timestamps.capacity(); }

  /// Append one record (AoS compatibility shim; the emitter writes columns
  /// directly).
  void Append(const LogRecord& r);
  /// Materialize row i as a LogRecord (resilience tags at defaults).
  [[nodiscard]] LogRecord RecordAt(std::size_t i) const;
  /// Materialize the whole buffer (byte-identical to appending RecordAt(i)
  /// for every row).
  [[nodiscard]] std::vector<LogRecord> ToRecords() const;
  /// Materialize rows in permutation order — RecordAt(perm[0]),
  /// RecordAt(perm[1]), ... The resident Generate path fuses its final
  /// time-order sort with the AoS transpose this way, skipping the
  /// 11-column gather entirely.
  [[nodiscard]] std::vector<LogRecord> ToRecords(
      std::span<const std::uint32_t> perm) const;

  /// Append all rows of `other`. When this buffer is empty with no
  /// capacity, steals other's storage outright.
  void AppendAll(RecordColumns&& other);
  /// Append rows of `other` by copy, leaving `other`'s capacity intact
  /// (the pooled chunk-buffer path).
  void AppendCopy(const RecordColumns& other);

  /// Stable sort by LogRecordTimeOrder — (timestamp, user_id, device_id),
  /// ties in current order — via a radix permutation and one gather per
  /// column. Identical order to std::stable_sort with LogRecordTimeOrder.
  void SortByTimeOrder(RecordColumnsScratch& scratch);
  /// The stable LogRecordTimeOrder permutation without rearranging the
  /// columns. The span is owned by `scratch` and valid until its next sort.
  [[nodiscard]] std::span<const std::uint32_t> TimeOrderPerm(
      RecordColumnsScratch& scratch) const;
};

/// Canonical FNV-1a fingerprint of a trace's Table 1 content, independent
/// of representation (times folded as the on-disk microsecond integers).
/// The three overloads agree for the same record sequence.
[[nodiscard]] std::uint64_t TraceFingerprint(const RecordColumns& cols);
[[nodiscard]] std::uint64_t TraceFingerprint(
    std::span<const LogRecord> records);
class TraceStore;
[[nodiscard]] std::uint64_t TraceFingerprint(const TraceStore& store);

}  // namespace mcloud
