// Readers and writers for HTTP request log traces.
//
// Three on-disk formats:
//   * CSV — human-inspectable, one record per line, with a header naming the
//     Table 1 fields. This is the interchange format of examples/.
//   * Binary v1 — fixed-width little-endian records behind a small
//     magic+version header; ~6× faster to scan, used by benches that replay
//     multi-million record traces.
//   * Binary v2 (columnar) — one contiguous column per Table 1 field plus the
//     TraceStore user table, so readers can load a column subset (see
//     ColumnMask) with one seek per skipped column and analyze paper-scale
//     traces without ever materializing the AoS vector.
// All formats round-trip LogRecord exactly (times are stored in microseconds).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "trace/log_record.h"
#include "trace/record_columns.h"
#include "trace/trace_store.h"
#include "util/error.h"

namespace mcloud {

/// Header line written/expected by the CSV format.
[[nodiscard]] std::string CsvHeader();

/// Serialize one record as a CSV line (no trailing newline).
[[nodiscard]] std::string ToCsvLine(const LogRecord& r);

/// Parse one CSV line. Throws ParseError on malformed input.
[[nodiscard]] LogRecord FromCsvLine(std::string_view line);

/// Write a trace as CSV (with header). Overwrites `path`.
void WriteCsvTrace(const std::filesystem::path& path,
                   std::span<const LogRecord> records);

/// Read an entire CSV trace into memory.
[[nodiscard]] std::vector<LogRecord> ReadCsvTrace(
    const std::filesystem::path& path);

/// Write a trace in the v1 binary format. Overwrites `path`.
void WriteBinaryTrace(const std::filesystem::path& path,
                      std::span<const LogRecord> records);

/// Record count from a v1 binary trace header (no record reads). Throws
/// ParseError on a bad magic/version.
[[nodiscard]] std::uint64_t BinaryTraceCount(const std::filesystem::path& path);

/// Read an entire v1 binary trace into memory. Throws ParseError on a bad
/// magic/version or a truncated file.
[[nodiscard]] std::vector<LogRecord> ReadBinaryTrace(
    const std::filesystem::path& path);

namespace detail {

/// Fixed-width on-disk layout of one v1 binary record (little-endian).
struct PackedRecord {
  std::int64_t timestamp;
  std::uint64_t device_id;
  std::uint64_t user_id;
  std::uint64_t data_volume;
  std::int64_t processing_us;
  std::int64_t server_us;
  std::int64_t rtt_us;
  std::uint8_t device_type;
  std::uint8_t request_type;
  std::uint8_t direction;
  std::uint8_t proxied;
  std::uint8_t pad[4];
};
static_assert(sizeof(PackedRecord) == 64, "unexpected record layout");

[[nodiscard]] inline std::int64_t ToMicros(Seconds s) {
  return static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}
[[nodiscard]] inline Seconds FromMicros(std::int64_t us) {
  return static_cast<Seconds>(us) * 1e-6;
}

[[nodiscard]] inline PackedRecord Pack(const LogRecord& r) {
  PackedRecord p{};
  p.timestamp = r.timestamp;
  p.device_id = r.device_id;
  p.user_id = r.user_id;
  p.data_volume = r.data_volume;
  p.processing_us = ToMicros(r.processing_time);
  p.server_us = ToMicros(r.server_time);
  p.rtt_us = ToMicros(r.avg_rtt);
  p.device_type = static_cast<std::uint8_t>(r.device_type);
  p.request_type = static_cast<std::uint8_t>(r.request_type);
  p.direction = static_cast<std::uint8_t>(r.direction);
  p.proxied = r.proxied ? 1 : 0;
  return p;
}

[[nodiscard]] inline LogRecord Unpack(const PackedRecord& p) {
  LogRecord r;
  r.timestamp = p.timestamp;
  r.device_id = p.device_id;
  r.user_id = p.user_id;
  r.data_volume = p.data_volume;
  r.processing_time = FromMicros(p.processing_us);
  r.server_time = FromMicros(p.server_us);
  r.avg_rtt = FromMicros(p.rtt_us);
  if (p.device_type > 2) throw ParseError("bad device type in binary trace");
  if (p.request_type > 1) throw ParseError("bad request type in binary trace");
  if (p.direction > 1) throw ParseError("bad direction in binary trace");
  r.device_type = static_cast<DeviceType>(p.device_type);
  r.request_type = static_cast<RequestType>(p.request_type);
  r.direction = static_cast<Direction>(p.direction);
  r.proxied = p.proxied != 0;
  return r;
}

/// Stream a v1 binary trace as blocks of packed records; `sink` returning
/// false stops the scan after that block. Throws ParseError on bad
/// magic/truncation. The per-block std::function costs nothing per record —
/// visitors inline inside ScanBinaryTraceWith's block loop.
std::size_t ScanPackedBlocks(
    const std::filesystem::path& path,
    const std::function<bool(std::span<const PackedRecord>)>& sink);

}  // namespace detail

/// Stream a v1 binary trace record-by-record without materializing the
/// vector. `visit(const LogRecord&)` is invoked through an inlined template
/// call (no type erasure per record); returning false stops the scan early.
/// Returns records visited (including the one that stopped the scan).
template <typename Visitor>
std::size_t ScanBinaryTraceWith(const std::filesystem::path& path,
                                Visitor&& visit) {
  std::size_t visited = 0;
  detail::ScanPackedBlocks(
      path, [&](std::span<const detail::PackedRecord> block) {
        for (const auto& p : block) {
          ++visited;
          if (!visit(detail::Unpack(p))) return false;
        }
        return true;
      });
  return visited;
}

/// Type-erased wrapper over ScanBinaryTraceWith for ABI users; prefer the
/// template when scanning multi-million record traces.
std::size_t ScanBinaryTrace(const std::filesystem::path& path,
                            const std::function<bool(const LogRecord&)>& fn);

/// True when `path` starts with the v2 columnar magic — the format sniff
/// used by tools that accept any trace format. Returns false (never throws)
/// for missing or short files.
[[nodiscard]] bool IsColumnarTrace(const std::filesystem::path& path);

/// Write a trace in the v2 columnar format (all columns the store carries).
/// Overwrites `path`.
void WriteColumnarTrace(const std::filesystem::path& path,
                        const TraceStore& store);

/// Reusable buffers for WriteColumnarRun: the per-run user table, the dense
/// user column, and the microsecond staging of the time columns.
struct V2RunScratch {
  std::vector<std::uint64_t> user_table;
  std::vector<std::uint32_t> dense_users;
  std::vector<std::int64_t> micros;
};

/// Write rows [begin, end) of a time-sorted columnar record buffer as one
/// all-columns v2 file — byte-identical to WriteColumnarTrace(path,
/// TraceStore::FromRecords(<those rows>, day_base)) without materializing
/// the records or the store (the run's user table is the sorted unique raw
/// ids of the range; dense ids are the ascending-id ranks, exactly the
/// remap TraceStore assigns).
void WriteColumnarRun(const std::filesystem::path& path,
                      const RecordColumns& cols, std::size_t begin,
                      std::size_t end, UnixSeconds day_base,
                      V2RunScratch& scratch);

/// Read a v2 columnar trace, loading only the columns in `want` (skipped
/// columns cost one seek each; the timestamp and user columns are always
/// loaded — the store's indexes need them). Columns in `want` that the file
/// does not carry are simply absent from the result (check
/// columns_present()). Throws ParseError on a bad magic/version or a
/// truncated file.
[[nodiscard]] TraceStore ReadColumnarTrace(const std::filesystem::path& path,
                                           std::uint32_t want = kAllColumns);

namespace detail {

/// Parsed and validated header of one MCLOGv02 columnar file. Offsets are
/// absolute byte positions, precomputed from the fixed column order, so
/// out-of-core readers can seek straight to a column's row range.
struct V2FileInfo {
  std::uint64_t rows = 0;
  std::uint64_t users = 0;
  std::int64_t day_base = 0;
  std::uint32_t mask = 0;
  std::uint64_t user_table_offset = 0;  ///< byte offset of the user-id table

  /// Byte offset of column `col`'s data. Throws Error when the file does
  /// not carry `col` (check `mask` first).
  [[nodiscard]] std::uint64_t ColumnOffset(std::uint32_t col) const;
};

/// Element width in bytes of `col` in the v2 on-disk layout (times are
/// stored as int64 microseconds). Throws Error for an unknown column bit.
[[nodiscard]] std::size_t V2ColumnWidth(std::uint32_t col);

/// Read and validate a v2 columnar header: magic, column mask, and the full
/// expected byte length (header + user table + every present column). A
/// missing, short, or truncated file throws ParseError here — this is the
/// single truncation gate shared by ReadColumnarTrace and the partitioned
/// multi-file reader, so a partition can never silently drop rows.
[[nodiscard]] V2FileInfo ReadV2FileInfo(const std::filesystem::path& path);

}  // namespace detail

}  // namespace mcloud
