// Readers and writers for HTTP request log traces.
//
// Two on-disk formats:
//   * CSV — human-inspectable, one record per line, with a header naming the
//     Table 1 fields. This is the interchange format of examples/.
//   * Binary — fixed-width little-endian records behind a small magic+version
//     header; ~6× faster to scan, used by benches that replay multi-million
//     record traces.
// Both round-trip LogRecord exactly (times are stored in microseconds).
#pragma once

#include <filesystem>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "trace/log_record.h"

namespace mcloud {

/// Header line written/expected by the CSV format.
[[nodiscard]] std::string CsvHeader();

/// Serialize one record as a CSV line (no trailing newline).
[[nodiscard]] std::string ToCsvLine(const LogRecord& r);

/// Parse one CSV line. Throws ParseError on malformed input.
[[nodiscard]] LogRecord FromCsvLine(std::string_view line);

/// Write a trace as CSV (with header). Overwrites `path`.
void WriteCsvTrace(const std::filesystem::path& path,
                   std::span<const LogRecord> records);

/// Read an entire CSV trace into memory.
[[nodiscard]] std::vector<LogRecord> ReadCsvTrace(
    const std::filesystem::path& path);

/// Write a trace in the binary format. Overwrites `path`.
void WriteBinaryTrace(const std::filesystem::path& path,
                      std::span<const LogRecord> records);

/// Read an entire binary trace into memory. Throws ParseError on a bad
/// magic/version or a truncated file.
[[nodiscard]] std::vector<LogRecord> ReadBinaryTrace(
    const std::filesystem::path& path);

/// Stream a binary trace record-by-record without materializing the vector;
/// `fn` returning false stops the scan early. Returns records visited.
std::size_t ScanBinaryTrace(const std::filesystem::path& path,
                            const std::function<bool(const LogRecord&)>& fn);

}  // namespace mcloud
