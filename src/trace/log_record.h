// The HTTP request log record — Table 1 of the paper.
//
// One record per HTTP request seen at a storage front-end server. Two request
// types exist (§2.1): a *file operation* announces an upcoming file
// store/retrieve and carries metadata only; a *chunk request* moves one
// (up to) 512 KB chunk of data. Delete/share never reach the front-ends and
// therefore never appear in the trace.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/units.h"

namespace mcloud {

enum class DeviceType : std::uint8_t {
  kAndroid = 0,
  kIos = 1,
  kPc = 2,  ///< PC client logs used by the §3.2 usage-pattern analysis
};

enum class RequestType : std::uint8_t {
  kFileOperation = 0,  ///< file storage/retrieval operation request
  kChunkRequest = 1,   ///< chunk storage/retrieval request
};

/// Transfer direction of the request.
enum class Direction : std::uint8_t {
  kStore = 0,
  kRetrieve = 1,
};

/// How the request ended, as seen by the resilience layer. The paper's
/// dataset contains only completed requests (outcome == kOk); the other
/// values exist for fault-injection runs and are never serialized — the
/// on-disk CSV/binary formats carry Table 1 fields only.
enum class RequestOutcome : std::uint8_t {
  kOk = 0,        ///< completed normally
  kTimedOut = 1,  ///< client hit its chunk deadline and abandoned the attempt
  kFailed = 2,    ///< all retry attempts exhausted; operation abandoned
  kHedged = 3,    ///< completed, but served by the hedged duplicate request
};

[[nodiscard]] std::string_view ToString(DeviceType t);
[[nodiscard]] std::string_view ToString(RequestType t);
[[nodiscard]] std::string_view ToString(Direction d);
[[nodiscard]] std::string_view ToString(RequestOutcome o);
[[nodiscard]] DeviceType DeviceTypeFromString(std::string_view s);
[[nodiscard]] RequestType RequestTypeFromString(std::string_view s);
[[nodiscard]] Direction DirectionFromString(std::string_view s);

struct LogRecord {
  UnixSeconds timestamp = 0;    ///< 1 s resolution, as in the dataset
  DeviceType device_type = DeviceType::kAndroid;
  std::uint64_t device_id = 0;  ///< anonymized; unique per physical device
  std::uint64_t user_id = 0;    ///< anonymized; unique per registered account
  RequestType request_type = RequestType::kFileOperation;
  Direction direction = Direction::kStore;
  Bytes data_volume = 0;        ///< bytes moved; 0 for file operations
  Seconds processing_time = 0;  ///< T_chunk: first byte in → last byte out
  Seconds server_time = 0;      ///< T_srv: upstream storage-server time
  Seconds avg_rtt = 0;          ///< mean RTT of the carrying TCP connection
  bool proxied = false;         ///< X-FORWARDED-FOR present
  /// Resilience tags (fault-injection runs only; not part of the Table 1
  /// schema and not serialized — see trace/log_io.cc).
  RequestOutcome outcome = RequestOutcome::kOk;
  std::uint32_t attempt = 1;    ///< which try produced this record (1-based)

  [[nodiscard]] bool IsMobile() const {
    return device_type != DeviceType::kPc;
  }

  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

/// Strict-weak order by (timestamp, user, device) — trace files are sorted
/// this way so per-user scans are sequential.
[[nodiscard]] inline bool LogRecordTimeOrder(const LogRecord& a,
                                             const LogRecord& b) {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  if (a.user_id != b.user_id) return a.user_id < b.user_id;
  return a.device_id < b.device_id;
}

}  // namespace mcloud
