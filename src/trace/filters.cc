#include "trace/filters.h"

#include <unordered_set>

namespace mcloud {

TraceView MobileOnlyView(std::span<const LogRecord> trace) {
  return TraceView::Of(trace, [](const LogRecord& r) { return r.IsMobile(); });
}

std::vector<LogRecord> MobileOnly(std::span<const LogRecord> trace) {
  return Filter(trace, [](const LogRecord& r) { return r.IsMobile(); });
}

std::vector<LogRecord> Unproxied(std::span<const LogRecord> trace) {
  return Filter(trace, [](const LogRecord& r) { return !r.proxied; });
}

std::vector<LogRecord> ChunksOnly(std::span<const LogRecord> trace) {
  return Filter(trace, [](const LogRecord& r) {
    return r.request_type == RequestType::kChunkRequest;
  });
}

std::vector<LogRecord> FileOperationsOnly(std::span<const LogRecord> trace) {
  return Filter(trace, [](const LogRecord& r) {
    return r.request_type == RequestType::kFileOperation;
  });
}

std::unordered_map<std::uint64_t, std::vector<LogRecord>> GroupByUser(
    std::span<const LogRecord> trace) {
  std::unordered_map<std::uint64_t, std::vector<LogRecord>> out;
  for (const auto& r : trace) out[r.user_id].push_back(r);
  return out;
}

std::size_t CountDistinctUsers(std::span<const LogRecord> trace) {
  std::unordered_set<std::uint64_t> ids;
  for (const auto& r : trace) ids.insert(r.user_id);
  return ids.size();
}

std::size_t CountDistinctDevices(std::span<const LogRecord> trace) {
  std::unordered_set<std::uint64_t> ids;
  for (const auto& r : trace) ids.insert(r.device_id);
  return ids.size();
}

std::unordered_map<std::uint64_t, UserDevices> DevicesPerUser(
    std::span<const LogRecord> trace) {
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      mobile_ids;
  std::unordered_map<std::uint64_t, UserDevices> out;
  for (const auto& r : trace) {
    auto& u = out[r.user_id];
    if (r.device_type == DeviceType::kPc) {
      u.uses_pc = true;
    } else {
      mobile_ids[r.user_id].insert(r.device_id);
    }
  }
  for (auto& [user, devices] : mobile_ids)
    out[user].mobile_devices = devices.size();
  return out;
}

}  // namespace mcloud
