#include "trace/record_columns.h"

#include <span>
#include <utility>

#include "trace/log_io.h"
#include "trace/trace_store.h"

namespace mcloud {

void RecordColumns::clear() {
  timestamps.clear();
  device_types.clear();
  device_ids.clear();
  user_ids.clear();
  request_types.clear();
  directions.clear();
  data_volumes.clear();
  processing_times.clear();
  server_times.clear();
  avg_rtts.clear();
  proxied.clear();
}

void RecordColumns::reserve(std::size_t n) {
  timestamps.reserve(n);
  device_types.reserve(n);
  device_ids.reserve(n);
  user_ids.reserve(n);
  request_types.reserve(n);
  directions.reserve(n);
  data_volumes.reserve(n);
  processing_times.reserve(n);
  server_times.reserve(n);
  avg_rtts.reserve(n);
  proxied.reserve(n);
}

void RecordColumns::Append(const LogRecord& r) {
  timestamps.push_back(r.timestamp);
  device_types.push_back(static_cast<std::uint8_t>(r.device_type));
  device_ids.push_back(r.device_id);
  user_ids.push_back(r.user_id);
  request_types.push_back(static_cast<std::uint8_t>(r.request_type));
  directions.push_back(static_cast<std::uint8_t>(r.direction));
  data_volumes.push_back(r.data_volume);
  processing_times.push_back(r.processing_time);
  server_times.push_back(r.server_time);
  avg_rtts.push_back(r.avg_rtt);
  proxied.push_back(r.proxied ? 1 : 0);
}

LogRecord RecordColumns::RecordAt(std::size_t i) const {
  LogRecord r;
  r.timestamp = timestamps[i];
  r.device_type = static_cast<DeviceType>(device_types[i]);
  r.device_id = device_ids[i];
  r.user_id = user_ids[i];
  r.request_type = static_cast<RequestType>(request_types[i]);
  r.direction = static_cast<Direction>(directions[i]);
  r.data_volume = data_volumes[i];
  r.processing_time = processing_times[i];
  r.server_time = server_times[i];
  r.avg_rtt = avg_rtts[i];
  r.proxied = proxied[i] != 0;
  return r;
}

std::vector<LogRecord> RecordColumns::ToRecords() const {
  std::vector<LogRecord> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(RecordAt(i));
  return out;
}

std::vector<LogRecord> RecordColumns::ToRecords(
    std::span<const std::uint32_t> perm) const {
  std::vector<LogRecord> out;
  out.reserve(perm.size());
  for (const std::uint32_t i : perm) out.push_back(RecordAt(i));
  return out;
}

void RecordColumns::AppendAll(RecordColumns&& other) {
  if (empty() && capacity() == 0) {
    *this = std::move(other);
    return;
  }
  AppendCopy(other);
  other.clear();
}

void RecordColumns::AppendCopy(const RecordColumns& other) {
  const auto cat = [](auto& dst, const auto& src) {
    dst.insert(dst.end(), src.begin(), src.end());
  };
  cat(timestamps, other.timestamps);
  cat(device_types, other.device_types);
  cat(device_ids, other.device_ids);
  cat(user_ids, other.user_ids);
  cat(request_types, other.request_types);
  cat(directions, other.directions);
  cat(data_volumes, other.data_volumes);
  cat(processing_times, other.processing_times);
  cat(server_times, other.server_times);
  cat(avg_rtts, other.avg_rtts);
  cat(proxied, other.proxied);
}

std::span<const std::uint32_t> RecordColumns::TimeOrderPerm(
    RecordColumnsScratch& scratch) const {
  const RadixKey keys[3] = {
      RadixKey::I64(timestamps),
      RadixKey::U64(user_ids),
      RadixKey::U64(device_ids),
  };
  return scratch.sorter.Sort(size(), keys);
}

void RecordColumns::SortByTimeOrder(RecordColumnsScratch& scratch) {
  const std::size_t n = size();
  if (n < 2) return;
  const std::span<const std::uint32_t> perm = TimeOrderPerm(scratch);

  const auto gather = [&perm, n](auto& col, auto& tmp) {
    tmp.resize(n);
    for (std::size_t j = 0; j < n; ++j) tmp[j] = col[perm[j]];
    col.swap(tmp);
  };
  gather(timestamps, scratch.i64);
  gather(device_types, scratch.u8);
  gather(device_ids, scratch.u64);
  gather(user_ids, scratch.u64);
  gather(request_types, scratch.u8);
  gather(directions, scratch.u8);
  gather(data_volumes, scratch.u64);
  gather(processing_times, scratch.f64);
  gather(server_times, scratch.f64);
  gather(avg_rtts, scratch.f64);
  gather(proxied, scratch.u8);
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t Fnv(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// One record's Table 1 fields folded in canonical field order; times as
/// the on-disk microsecond integers so AoS/columnar/file agree bit-exact.
inline std::uint64_t FoldRecord(std::uint64_t h, std::int64_t ts,
                                std::uint8_t dev, std::uint64_t dev_id,
                                std::uint64_t user, std::uint8_t req,
                                std::uint8_t dir, std::uint64_t vol,
                                double proc, double srv, double rtt,
                                std::uint8_t prox) {
  h = Fnv(h, static_cast<std::uint64_t>(ts));
  h = Fnv(h, dev);
  h = Fnv(h, dev_id);
  h = Fnv(h, user);
  h = Fnv(h, req);
  h = Fnv(h, dir);
  h = Fnv(h, vol);
  h = Fnv(h, static_cast<std::uint64_t>(detail::ToMicros(proc)));
  h = Fnv(h, static_cast<std::uint64_t>(detail::ToMicros(srv)));
  h = Fnv(h, static_cast<std::uint64_t>(detail::ToMicros(rtt)));
  h = Fnv(h, prox);
  return h;
}

}  // namespace

std::uint64_t TraceFingerprint(const RecordColumns& cols) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    h = FoldRecord(h, cols.timestamps[i], cols.device_types[i],
                   cols.device_ids[i], cols.user_ids[i],
                   cols.request_types[i], cols.directions[i],
                   cols.data_volumes[i], cols.processing_times[i],
                   cols.server_times[i], cols.avg_rtts[i], cols.proxied[i]);
  }
  return h;
}

std::uint64_t TraceFingerprint(std::span<const LogRecord> records) {
  std::uint64_t h = kFnvOffset;
  for (const LogRecord& r : records) {
    h = FoldRecord(h, r.timestamp, static_cast<std::uint8_t>(r.device_type),
                   r.device_id, r.user_id,
                   static_cast<std::uint8_t>(r.request_type),
                   static_cast<std::uint8_t>(r.direction), r.data_volume,
                   r.processing_time, r.server_time, r.avg_rtt,
                   r.proxied ? 1 : 0);
  }
  return h;
}

std::uint64_t TraceFingerprint(const TraceStore& store) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < store.rows(); ++i) {
    h = FoldRecord(h, store.timestamps()[i], store.device_types()[i],
                   store.device_ids()[i],
                   store.user_ids()[store.user_index()[i]],
                   store.request_types()[i], store.directions()[i],
                   store.data_volumes()[i], store.processing_times()[i],
                   store.server_times()[i], store.avg_rtts()[i],
                   store.proxied()[i]);
  }
  return h;
}

}  // namespace mcloud
