// Columnar (structure-of-arrays) trace storage with dense user indexing.
//
// The AoS `std::vector<LogRecord>` layout spends ~80 bytes per record and
// forces every analysis stage to re-discover per-user structure through
// `unordered_map` probes on sparse 64-bit user ids. TraceStore holds the same
// Table 1 trace as one contiguous column per field, plus three indexes built
// once and shared by every stage:
//
//   * a dense user-id remap: `user_index()[row]` ∈ [0, users()), with
//     `user_ids()[dense]` recovering the original 64-bit id. Dense ids are
//     assigned in ascending original-id order, so iterating dense ids yields
//     users in a canonical, thread-count-independent order.
//   * a per-user run index: `UserRun(u)` lists the row indices of user u in
//     time order (a stable user-major resort of the row index), so per-user
//     analyses are sequential walks instead of hash probes.
//   * per-day time partitions: contiguous [begin, end) row ranges of equal
//     calendar day (relative to `day_base`), so day-windowed stages skip
//     out-of-window rows wholesale and can shard deterministically.
//
// Enum columns are stored as `uint8_t`; the user column as dense `uint32_t`.
// The resilience tags (`outcome`, `attempt`) are runtime-only and not stored,
// exactly as in the binary trace formats (see trace/log_io.cc).
//
// Columns may be selectively absent (see ColumnMask and the v2 columnar
// reader in trace/log_io.h): an absent column reads back as zeros through
// ToRecords(). The analysis pipeline needs only kAnalysisColumns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/log_record.h"
#include "util/timeutil.h"

namespace mcloud {

/// Bitmask naming the Table 1 columns of a TraceStore.
enum ColumnMask : std::uint32_t {
  kColTimestamp = 1u << 0,
  kColDeviceType = 1u << 1,
  kColDeviceId = 1u << 2,
  kColUser = 1u << 3,
  kColRequestType = 1u << 4,
  kColDirection = 1u << 5,
  kColDataVolume = 1u << 6,
  kColProcessingTime = 1u << 7,
  kColServerTime = 1u << 8,
  kColAvgRtt = 1u << 9,
  kColProxied = 1u << 10,
};

inline constexpr std::uint32_t kAllColumns =
    kColTimestamp | kColDeviceType | kColDeviceId | kColUser |
    kColRequestType | kColDirection | kColDataVolume | kColProcessingTime |
    kColServerTime | kColAvgRtt | kColProxied;

/// The columns AnalysisPipeline::Run(const TraceStore&) touches. Loading only
/// these from a v2 file costs ~31 bytes/record instead of ~55.
inline constexpr std::uint32_t kAnalysisColumns =
    kColTimestamp | kColDeviceType | kColDeviceId | kColUser |
    kColRequestType | kColDirection | kColDataVolume;

class TraceStore {
 public:
  /// One contiguous run of rows sharing a calendar day relative to
  /// day_base(): rows [begin, end) all have FloorDayIndex(ts - day_base)
  /// == day (see util/timeutil.h).
  struct DayPartition {
    std::int64_t day = 0;  ///< days since day_base (may be negative)
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  TraceStore() = default;

  /// Build the columnar store from a time-sorted AoS trace. `day_base`
  /// anchors the day partitions (defaults to the paper's trace epoch).
  /// Requires records.size() <= UINT32_MAX and non-decreasing timestamps.
  [[nodiscard]] static TraceStore FromRecords(
      std::span<const LogRecord> records, UnixSeconds day_base = kTraceStart);

  /// Materialize the AoS vector back (absent columns read as zeros; the
  /// runtime-only resilience tags come back at their defaults).
  [[nodiscard]] std::vector<LogRecord> ToRecords() const;

  // ---- dimensions ----
  [[nodiscard]] std::size_t rows() const { return timestamps_.size(); }
  [[nodiscard]] bool empty() const { return timestamps_.empty(); }
  [[nodiscard]] std::size_t users() const { return user_ids_.size(); }
  [[nodiscard]] UnixSeconds day_base() const { return day_base_; }
  [[nodiscard]] std::uint32_t columns_present() const { return present_; }
  [[nodiscard]] bool has(std::uint32_t mask) const {
    return (present_ & mask) == mask;
  }

  // ---- columns (empty when absent) ----
  [[nodiscard]] std::span<const std::int64_t> timestamps() const {
    return timestamps_;
  }
  [[nodiscard]] std::span<const std::uint8_t> device_types() const {
    return device_types_;
  }
  [[nodiscard]] std::span<const std::uint64_t> device_ids() const {
    return device_ids_;
  }
  /// Dense user index per row (uint32, ∈ [0, users())).
  [[nodiscard]] std::span<const std::uint32_t> user_index() const {
    return user_index_;
  }
  /// Original user id per dense index, ascending.
  [[nodiscard]] std::span<const std::uint64_t> user_ids() const {
    return user_ids_;
  }
  [[nodiscard]] std::span<const std::uint8_t> request_types() const {
    return request_types_;
  }
  [[nodiscard]] std::span<const std::uint8_t> directions() const {
    return directions_;
  }
  [[nodiscard]] std::span<const std::uint64_t> data_volumes() const {
    return data_volumes_;
  }
  [[nodiscard]] std::span<const double> processing_times() const {
    return processing_times_;
  }
  [[nodiscard]] std::span<const double> server_times() const {
    return server_times_;
  }
  [[nodiscard]] std::span<const double> avg_rtts() const { return avg_rtts_; }
  [[nodiscard]] std::span<const std::uint8_t> proxied() const {
    return proxied_;
  }

  [[nodiscard]] bool IsMobileRow(std::size_t row) const {
    return device_types_[row] != static_cast<std::uint8_t>(DeviceType::kPc);
  }

  // ---- indexes ----
  /// Row indices of dense user `u`, in time order (base order within ties).
  [[nodiscard]] std::span<const std::uint32_t> UserRun(std::size_t u) const {
    return std::span<const std::uint32_t>(user_order_)
        .subspan(user_offsets_[u], user_offsets_[u + 1] - user_offsets_[u]);
  }
  [[nodiscard]] std::span<const DayPartition> day_partitions() const {
    return partitions_;
  }

  // log_io.cc's v2 reader fills columns directly and finalizes.
  struct Builder;

 private:
  friend struct Builder;

  /// Validates enum columns, assigns the canonical dense remap from a raw
  /// original-id user column, and builds the run index and day partitions.
  void FinalizeFromRawUsers(std::span<const std::uint64_t> raw_users);
  void BuildIndexes();

  std::uint32_t present_ = 0;
  UnixSeconds day_base_ = kTraceStart;

  std::vector<std::int64_t> timestamps_;
  std::vector<std::uint8_t> device_types_;
  std::vector<std::uint64_t> device_ids_;
  std::vector<std::uint32_t> user_index_;
  std::vector<std::uint64_t> user_ids_;
  std::vector<std::uint8_t> request_types_;
  std::vector<std::uint8_t> directions_;
  std::vector<std::uint64_t> data_volumes_;
  std::vector<double> processing_times_;
  std::vector<double> server_times_;
  std::vector<double> avg_rtts_;
  std::vector<std::uint8_t> proxied_;

  // user-major resort: user_order_[user_offsets_[u] .. user_offsets_[u+1])
  // lists user u's rows in time order.
  std::vector<std::uint32_t> user_order_;
  std::vector<std::uint32_t> user_offsets_;
  std::vector<DayPartition> partitions_;
};

/// Mutable staging area used by FromRecords, the v2 reader, and the columnar
/// workload emitter: raw columns (original 64-bit user ids) go in, a
/// validated + indexed TraceStore comes out.
struct TraceStore::Builder {
  std::uint32_t present = kAllColumns;
  UnixSeconds day_base = kTraceStart;

  std::vector<std::int64_t> timestamps;
  std::vector<std::uint8_t> device_types;
  std::vector<std::uint64_t> device_ids;
  std::vector<std::uint64_t> raw_users;  ///< original ids; remapped on Build
  std::vector<std::uint8_t> request_types;
  std::vector<std::uint8_t> directions;
  std::vector<std::uint64_t> data_volumes;
  std::vector<double> processing_times;
  std::vector<double> server_times;
  std::vector<double> avg_rtts;
  std::vector<std::uint8_t> proxied;

  /// Optional pre-resolved dense mapping (v2 files store it): when
  /// `user_ids` is non-empty, `raw_users` instead holds dense indices into
  /// it and no remap pass runs (the table must be sorted ascending).
  std::vector<std::uint64_t> user_ids;

  void Reserve(std::size_t n);
  void Append(const LogRecord& r);
  /// Validate, remap users, build indexes. Consumes the builder.
  [[nodiscard]] TraceStore Build() &&;
};

}  // namespace mcloud
