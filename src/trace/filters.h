// Record-level filters and per-user grouping over traces.
//
// The paper's analyses slice the trace several ways: mobile-only records for
// §3.1, proxied requests removed for §4, per-user request streams everywhere.
// These helpers are the shared slicing vocabulary.
//
// Two slicing forms exist. `Filter` materializes a new vector (exact-sized:
// it counts before it copies). `TraceView` is an index-based view over the
// base trace — 4 bytes per selected record instead of a full LogRecord copy
// — for the streaming consumers in the analysis pipeline that only ever
// iterate their slice once (see AnalysisPipeline::Run).
#pragma once

#include <cstdint>
#include <iterator>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/log_record.h"
#include "util/error.h"

namespace mcloud {

/// Keep only records matching a predicate; preserves order. Two passes:
/// count, reserve exactly, copy — no growth overshoot.
template <typename Pred>
[[nodiscard]] std::vector<LogRecord> Filter(std::span<const LogRecord> trace,
                                            Pred&& pred) {
  std::size_t n = 0;
  for (const auto& r : trace) {
    if (pred(r)) ++n;
  }
  std::vector<LogRecord> out;
  out.reserve(n);
  for (const auto& r : trace) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

/// Index-based slice of a trace: the selected records in base order, without
/// copying them. Iteration yields `const LogRecord&`; the base span must
/// outlive the view. Indices are 32-bit — ample for the paper-scale 349M
/// records and half the footprint of 64-bit offsets.
class TraceView {
 public:
  TraceView() = default;
  TraceView(std::span<const LogRecord> base, std::vector<std::uint32_t> index)
      : base_(base), index_(std::move(index)) {}

  /// Build a view of all records matching `pred`.
  template <typename Pred>
  [[nodiscard]] static TraceView Of(std::span<const LogRecord> base,
                                    Pred&& pred) {
    MCLOUD_REQUIRE(base.size() <= UINT32_MAX, "trace too large for TraceView");
    std::size_t n = 0;
    for (const auto& r : base) {
      if (pred(r)) ++n;
    }
    std::vector<std::uint32_t> index;
    index.reserve(n);
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (pred(base[i])) index.push_back(static_cast<std::uint32_t>(i));
    }
    return TraceView(base, std::move(index));
  }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = LogRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = const LogRecord*;
    using reference = const LogRecord&;

    iterator() = default;
    iterator(const LogRecord* base, const std::uint32_t* pos)
        : base_(base), pos_(pos) {}

    reference operator*() const { return base_[*pos_]; }
    pointer operator->() const { return &base_[*pos_]; }
    iterator& operator++() {
      ++pos_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++pos_;
      return old;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.pos_ == b.pos_;
    }

   private:
    const LogRecord* base_ = nullptr;
    const std::uint32_t* pos_ = nullptr;
  };

  [[nodiscard]] iterator begin() const {
    return {base_.data(), index_.data()};
  }
  [[nodiscard]] iterator end() const {
    return {base_.data(), index_.data() + index_.size()};
  }
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] bool empty() const { return index_.empty(); }
  [[nodiscard]] const LogRecord& operator[](std::size_t i) const {
    return base_[index_[i]];
  }

 private:
  std::span<const LogRecord> base_;
  std::vector<std::uint32_t> index_;
};

/// Index view of the mobile (Android + iOS) records.
[[nodiscard]] TraceView MobileOnlyView(std::span<const LogRecord> trace);

/// Records from mobile devices only (Android + iOS).
[[nodiscard]] std::vector<LogRecord> MobileOnly(
    std::span<const LogRecord> trace);

/// Records not behind an HTTP proxy — required before any RTT/throughput
/// analysis (§4: "we filtered out those requests that were proxied").
[[nodiscard]] std::vector<LogRecord> Unproxied(
    std::span<const LogRecord> trace);

/// Chunk requests only / file operations only.
[[nodiscard]] std::vector<LogRecord> ChunksOnly(
    std::span<const LogRecord> trace);
[[nodiscard]] std::vector<LogRecord> FileOperationsOnly(
    std::span<const LogRecord> trace);

/// Group a time-sorted trace by user; each user's records stay time-sorted.
[[nodiscard]] std::unordered_map<std::uint64_t, std::vector<LogRecord>>
GroupByUser(std::span<const LogRecord> trace);

/// Distinct users / devices in a trace.
[[nodiscard]] std::size_t CountDistinctUsers(std::span<const LogRecord> trace);
[[nodiscard]] std::size_t CountDistinctDevices(
    std::span<const LogRecord> trace);

/// Per-user sets of device types seen, for the mobile&PC splits of §3.2.
struct UserDevices {
  std::size_t mobile_devices = 0;  ///< distinct mobile device ids
  bool uses_pc = false;
};
[[nodiscard]] std::unordered_map<std::uint64_t, UserDevices> DevicesPerUser(
    std::span<const LogRecord> trace);

}  // namespace mcloud
