// Record-level filters and per-user grouping over traces.
//
// The paper's analyses slice the trace several ways: mobile-only records for
// §3.1, proxied requests removed for §4, per-user request streams everywhere.
// These helpers are the shared slicing vocabulary.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/log_record.h"

namespace mcloud {

/// Keep only records matching a predicate; preserves order.
template <typename Pred>
[[nodiscard]] std::vector<LogRecord> Filter(std::span<const LogRecord> trace,
                                            Pred&& pred) {
  std::vector<LogRecord> out;
  for (const auto& r : trace) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

/// Records from mobile devices only (Android + iOS).
[[nodiscard]] std::vector<LogRecord> MobileOnly(
    std::span<const LogRecord> trace);

/// Records not behind an HTTP proxy — required before any RTT/throughput
/// analysis (§4: "we filtered out those requests that were proxied").
[[nodiscard]] std::vector<LogRecord> Unproxied(
    std::span<const LogRecord> trace);

/// Chunk requests only / file operations only.
[[nodiscard]] std::vector<LogRecord> ChunksOnly(
    std::span<const LogRecord> trace);
[[nodiscard]] std::vector<LogRecord> FileOperationsOnly(
    std::span<const LogRecord> trace);

/// Group a time-sorted trace by user; each user's records stay time-sorted.
[[nodiscard]] std::unordered_map<std::uint64_t, std::vector<LogRecord>>
GroupByUser(std::span<const LogRecord> trace);

/// Distinct users / devices in a trace.
[[nodiscard]] std::size_t CountDistinctUsers(std::span<const LogRecord> trace);
[[nodiscard]] std::size_t CountDistinctDevices(
    std::span<const LogRecord> trace);

/// Per-user sets of device types seen, for the mobile&PC splits of §3.2.
struct UserDevices {
  std::size_t mobile_devices = 0;  ///< distinct mobile device ids
  bool uses_pc = false;
};
[[nodiscard]] std::unordered_map<std::uint64_t, UserDevices> DevicesPerUser(
    std::span<const LogRecord> trace);

}  // namespace mcloud
