#include "trace/trace_store.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/error.h"

namespace mcloud {

void TraceStore::Builder::Reserve(std::size_t n) {
  timestamps.reserve(n);
  device_types.reserve(n);
  device_ids.reserve(n);
  raw_users.reserve(n);
  request_types.reserve(n);
  directions.reserve(n);
  data_volumes.reserve(n);
  if (present & kColProcessingTime) processing_times.reserve(n);
  if (present & kColServerTime) server_times.reserve(n);
  if (present & kColAvgRtt) avg_rtts.reserve(n);
  if (present & kColProxied) proxied.reserve(n);
}

void TraceStore::Builder::Append(const LogRecord& r) {
  timestamps.push_back(r.timestamp);
  device_types.push_back(static_cast<std::uint8_t>(r.device_type));
  device_ids.push_back(r.device_id);
  raw_users.push_back(r.user_id);
  request_types.push_back(static_cast<std::uint8_t>(r.request_type));
  directions.push_back(static_cast<std::uint8_t>(r.direction));
  data_volumes.push_back(r.data_volume);
  if (present & kColProcessingTime) processing_times.push_back(r.processing_time);
  if (present & kColServerTime) server_times.push_back(r.server_time);
  if (present & kColAvgRtt) avg_rtts.push_back(r.avg_rtt);
  if (present & kColProxied) proxied.push_back(r.proxied ? 1 : 0);
}

TraceStore TraceStore::Builder::Build() && {
  TraceStore s;
  s.present_ = present;
  s.day_base_ = day_base;
  s.timestamps_ = std::move(timestamps);
  s.device_types_ = std::move(device_types);
  s.device_ids_ = std::move(device_ids);
  s.request_types_ = std::move(request_types);
  s.directions_ = std::move(directions);
  s.data_volumes_ = std::move(data_volumes);
  s.processing_times_ = std::move(processing_times);
  s.server_times_ = std::move(server_times);
  s.avg_rtts_ = std::move(avg_rtts);
  s.proxied_ = std::move(proxied);

  const std::size_t n = s.timestamps_.size();
  MCLOUD_REQUIRE(n <= UINT32_MAX, "trace too large for TraceStore");
  MCLOUD_REQUIRE((present & kColTimestamp) && (present & kColUser),
                 "timestamp and user columns are mandatory");
  const auto column_sized = [n](std::size_t size, std::uint32_t col,
                                std::uint32_t mask) {
    return (mask & col) ? size == n : size == 0;
  };
  MCLOUD_REQUIRE(column_sized(s.device_types_.size(), kColDeviceType, present) &&
                     column_sized(s.device_ids_.size(), kColDeviceId, present) &&
                     column_sized(s.request_types_.size(), kColRequestType,
                                  present) &&
                     column_sized(s.directions_.size(), kColDirection, present) &&
                     column_sized(s.data_volumes_.size(), kColDataVolume,
                                  present) &&
                     column_sized(s.processing_times_.size(),
                                  kColProcessingTime, present) &&
                     column_sized(s.server_times_.size(), kColServerTime,
                                  present) &&
                     column_sized(s.avg_rtts_.size(), kColAvgRtt, present) &&
                     column_sized(s.proxied_.size(), kColProxied, present),
                 "column length mismatch");
  for (std::size_t i = 1; i < n; ++i) {
    MCLOUD_REQUIRE(s.timestamps_[i] >= s.timestamps_[i - 1],
                   "trace must be time-sorted");
  }
  for (const std::uint8_t d : s.device_types_)
    MCLOUD_REQUIRE(d <= 2, "bad device type");
  for (const std::uint8_t t : s.request_types_)
    MCLOUD_REQUIRE(t <= 1, "bad request type");
  for (const std::uint8_t d : s.directions_)
    MCLOUD_REQUIRE(d <= 1, "bad direction");

  MCLOUD_REQUIRE(raw_users.size() == n, "user column length mismatch");
  if (!user_ids.empty()) {
    // Pre-resolved dense mapping (the v2 on-disk layout).
    MCLOUD_REQUIRE(std::is_sorted(user_ids.begin(), user_ids.end()) &&
                       std::adjacent_find(user_ids.begin(), user_ids.end()) ==
                           user_ids.end(),
                   "user id table must be sorted and unique");
    s.user_ids_ = std::move(user_ids);
    s.user_index_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      MCLOUD_REQUIRE(raw_users[i] < s.user_ids_.size(),
                     "dense user index out of range");
      s.user_index_[i] = static_cast<std::uint32_t>(raw_users[i]);
    }
  } else {
    s.FinalizeFromRawUsers(raw_users);
  }
  s.BuildIndexes();
  return s;
}

void TraceStore::FinalizeFromRawUsers(std::span<const std::uint64_t> raw) {
  const std::size_t n = raw.size();
  // First pass: first-seen dense ids via one hash probe per row.
  std::unordered_map<std::uint64_t, std::uint32_t> first_seen;
  first_seen.reserve(n / 32 + 16);
  std::vector<std::uint32_t> seen_index(n);
  std::vector<std::uint64_t> ids_in_first_seen_order;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = first_seen.try_emplace(
        raw[i], static_cast<std::uint32_t>(ids_in_first_seen_order.size()));
    if (inserted) ids_in_first_seen_order.push_back(raw[i]);
    seen_index[i] = it->second;
  }
  // Canonicalize: dense id = rank of the original id in ascending order, so
  // dense iteration order never depends on record order or sharding.
  const std::size_t u = ids_in_first_seen_order.size();
  std::vector<std::uint32_t> by_id(u);
  for (std::size_t i = 0; i < u; ++i) by_id[i] = static_cast<std::uint32_t>(i);
  std::sort(by_id.begin(), by_id.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return ids_in_first_seen_order[a] < ids_in_first_seen_order[b];
            });
  std::vector<std::uint32_t> rank_of(u);
  user_ids_.resize(u);
  for (std::size_t r = 0; r < u; ++r) {
    rank_of[by_id[r]] = static_cast<std::uint32_t>(r);
    user_ids_[r] = ids_in_first_seen_order[by_id[r]];
  }
  user_index_.resize(n);
  for (std::size_t i = 0; i < n; ++i) user_index_[i] = rank_of[seen_index[i]];
}

void TraceStore::BuildIndexes() {
  const std::size_t n = user_index_.size();
  const std::size_t u = user_ids_.size();

  // Counting sort of row indices by dense user: a stable user-major resort.
  user_offsets_.assign(u + 1, 0);
  for (const std::uint32_t d : user_index_) ++user_offsets_[d + 1];
  for (std::size_t i = 1; i <= u; ++i) user_offsets_[i] += user_offsets_[i - 1];
  user_order_.resize(n);
  std::vector<std::uint32_t> cursor(user_offsets_.begin(),
                                    user_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i)
    user_order_[cursor[user_index_[i]]++] = static_cast<std::uint32_t>(i);

  // Day partitions: contiguous runs of equal calendar day (time-sorted).
  partitions_.clear();
  std::size_t begin = 0;
  while (begin < n) {
    const std::int64_t day = FloorDayIndex(timestamps_[begin] - day_base_);
    std::size_t end = begin + 1;
    while (end < n && FloorDayIndex(timestamps_[end] - day_base_) == day) ++end;
    partitions_.push_back({day, static_cast<std::uint32_t>(begin),
                           static_cast<std::uint32_t>(end)});
    begin = end;
  }
}

TraceStore TraceStore::FromRecords(std::span<const LogRecord> records,
                                   UnixSeconds day_base) {
  Builder b;
  b.day_base = day_base;
  b.Reserve(records.size());
  for (const LogRecord& r : records) b.Append(r);
  return std::move(b).Build();
}

std::vector<LogRecord> TraceStore::ToRecords() const {
  std::vector<LogRecord> out(rows());
  for (std::size_t i = 0; i < out.size(); ++i) {
    LogRecord& r = out[i];
    r.timestamp = timestamps_[i];
    if (!device_types_.empty())
      r.device_type = static_cast<DeviceType>(device_types_[i]);
    if (!device_ids_.empty()) r.device_id = device_ids_[i];
    r.user_id = user_ids_[user_index_[i]];
    if (!request_types_.empty())
      r.request_type = static_cast<RequestType>(request_types_[i]);
    if (!directions_.empty())
      r.direction = static_cast<Direction>(directions_[i]);
    if (!data_volumes_.empty()) r.data_volume = data_volumes_[i];
    if (!processing_times_.empty()) r.processing_time = processing_times_[i];
    if (!server_times_.empty()) r.server_time = server_times_[i];
    if (!avg_rtts_.empty()) r.avg_rtt = avg_rtts_[i];
    if (!proxied_.empty()) r.proxied = proxied_[i] != 0;
  }
  return out;
}

}  // namespace mcloud
