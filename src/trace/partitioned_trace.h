// Partitioned on-disk traces: the spill format of the out-of-core pipeline.
//
// A partitioned trace is a directory of time-sorted MCLOGv02 run files plus
// a MANIFEST. The workload generator spills its bounded in-memory buffer as
// one sorted slice at a time; the writer splits every slice into contiguous
// calendar-day segments (relative to `day_base`, same key as TraceStore's
// day partitions) and writes each segment as its own run file. A calendar
// day therefore maps to the set of runs carrying its rows — one per spill
// that touched the day — and the reader streams the trace back one day at a
// time through a k-way merge of that day's runs.
//
// Determinism (see DESIGN.md "Out-of-core pipeline"): runs are merged
// stably by the full record time order (timestamp, user, device), ties
// across runs broken by manifest order. Since every run is a stably-sorted
// contiguous slice of the generator's user-ordered emission, the merged
// stream is exactly std::stable_sort of the whole emission — byte-identical
// to the resident GenerateColumnar() row order at every thread count and
// every spill-buffer size.
//
// Truncation safety: Open() validates every run file against its MANIFEST
// entry through detail::ReadV2FileInfo (magic + column mask + full expected
// byte length), so a missing or short partition fails loudly instead of
// silently dropping a day.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "trace/log_io.h"
#include "trace/log_record.h"
#include "trace/record_columns.h"
#include "trace/trace_store.h"

namespace mcloud {

/// One structure-of-arrays slice of analysis-column rows, in time order.
/// `users` holds *global* dense user indices (ascending-original-id remap
/// over the whole trace — identical to TraceStore::user_index()).
struct TraceRowBlock {
  std::span<const std::int64_t> timestamps;
  std::span<const std::uint8_t> device_types;
  std::span<const std::uint64_t> device_ids;
  std::span<const std::uint32_t> users;
  std::span<const std::uint8_t> request_types;
  std::span<const std::uint8_t> directions;
  std::span<const std::uint64_t> data_volumes;

  [[nodiscard]] std::size_t rows() const { return timestamps.size(); }
};

/// View of rows [begin, end) of a resident store as a TraceRowBlock — how
/// the resident engine feeds the same streaming cores the out-of-core path
/// uses. Requires kAnalysisColumns.
[[nodiscard]] TraceRowBlock BlockOf(const TraceStore& store, std::size_t begin,
                                    std::size_t end);

/// Writes a partitioned trace: sorted slices in, per-day run files +
/// MANIFEST out. Slices must arrive in spill order; Finish() seals the
/// directory. Not thread-safe (one spiller at a time by design).
class PartitionedTraceWriter {
 public:
  /// `dir` must exist and be writable; existing run files are overwritten.
  PartitionedTraceWriter(std::filesystem::path dir, UnixSeconds day_base);

  /// Spill one slice sorted by LogRecordTimeOrder: splits it into
  /// contiguous calendar-day segments and writes each segment as its own
  /// MCLOGv02 run file. Empty slices are no-ops.
  void WriteSortedSlice(std::span<const LogRecord> slice);

  /// Columnar twin: identical run files from a time-sorted SoA slice (the
  /// generator fast path), without materializing records or per-run
  /// TraceStores.
  void WriteSortedSlice(const RecordColumns& slice);

  /// Write the MANIFEST. No further WriteSortedSlice calls afterwards.
  void Finish();

  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::size_t run_files() const { return runs_.size(); }

 private:
  struct RunEntry {
    std::int64_t day = 0;
    std::uint64_t rows = 0;
    std::string file;
  };

  std::filesystem::path dir_;
  UnixSeconds day_base_;
  std::uint64_t records_ = 0;
  std::vector<RunEntry> runs_;
  V2RunScratch run_scratch_;  ///< reused across columnar runs
  bool finished_ = false;
};

/// Reader over a sealed partitioned trace. Open() validates the MANIFEST
/// and every run file (loud failure on any missing/short partition) and
/// builds the global user table; Scan() streams the rows back in global
/// time order under a bounded staging budget.
class PartitionedTrace {
 public:
  /// Sink for Scan: one time-ordered block of rows, all in calendar day
  /// `day` (relative to day_base()). Days arrive in ascending order; one
  /// day spans multiple calls when it exceeds the staging budget.
  using BlockSink =
      std::function<void(std::int64_t day, const TraceRowBlock& block)>;

  /// Validate the directory and build the cross-partition indexes: the
  /// global user table (sorted union of the run tables — the same
  /// ascending-original-id dense remap TraceStore assigns) and each run's
  /// local-to-global remap. Throws ParseError on a malformed MANIFEST or
  /// any missing/truncated/mismatched run file.
  [[nodiscard]] static PartitionedTrace Open(const std::filesystem::path& dir);

  [[nodiscard]] std::uint64_t rows() const { return rows_; }
  [[nodiscard]] std::size_t users() const { return user_ids_.size(); }
  [[nodiscard]] UnixSeconds day_base() const { return day_base_; }
  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }
  /// Original user id per global dense index, ascending.
  [[nodiscard]] std::span<const std::uint64_t> user_ids() const {
    return user_ids_;
  }

  /// Stream every record in global time order, one calendar day at a time,
  /// as analysis-column blocks with global dense user ids. `staging_rows`
  /// bounds the resident rows (split between the per-run read buffers of
  /// the day's k-way merge and the output staging block). Deterministic:
  /// the merge order is a pure function of the on-disk bytes, independent
  /// of `staging_rows`.
  void Scan(std::size_t staging_rows, const BlockSink& sink) const;

 private:
  struct Run {
    std::filesystem::path path;
    std::int64_t day = 0;
    std::uint64_t rows = 0;
    /// Column byte offsets in file order of kAnalysisColumns.
    std::uint64_t col_offset[7] = {};
    /// Local dense user id -> global dense user id.
    std::vector<std::uint32_t> local_to_global;
  };

  PartitionedTrace() = default;

  UnixSeconds day_base_ = 0;
  std::uint64_t rows_ = 0;
  std::vector<Run> runs_;
  std::vector<std::uint64_t> user_ids_;
};

}  // namespace mcloud
