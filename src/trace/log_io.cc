#include "trace/log_io.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <type_traits>

#include "util/csv.h"
#include "util/error.h"

namespace mcloud {
namespace {

constexpr std::array<char, 8> kMagic = {'M', 'C', 'L', 'O',
                                        'G', 'v', '0', '1'};
constexpr std::array<char, 8> kMagicV2 = {'M', 'C', 'L', 'O',
                                          'G', 'v', '0', '2'};

/// Records per I/O block when streaming the v1 format (256 KiB buffers).
constexpr std::size_t kScanBlockRecords = 4096;

std::ofstream OpenForWrite(const std::filesystem::path& path, bool binary) {
  std::ofstream out(path, binary ? std::ios::binary | std::ios::trunc
                                 : std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path.string());
  return out;
}

std::ifstream OpenForRead(const std::filesystem::path& path, bool binary) {
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw Error("cannot open for reading: " + path.string());
  return in;
}

/// Open a v1 binary trace and return (stream positioned at the first
/// record, record count).
std::ifstream OpenV1(const std::filesystem::path& path, std::uint64_t* count) {
  std::ifstream in = OpenForRead(path, /*binary=*/true);
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic)
    throw ParseError("not a mcloud binary trace: " + path.string());
  in.read(reinterpret_cast<char*>(count), sizeof(*count));
  if (!in) throw ParseError("truncated binary trace: " + path.string());
  return in;
}

}  // namespace

std::string CsvHeader() {
  return "timestamp,device_type,device_id,user_id,request_type,direction,"
         "data_volume,processing_time,server_time,avg_rtt,proxied";
}

std::string ToCsvLine(const LogRecord& r) {
  std::string out;
  out.reserve(128);
  out.append(std::to_string(r.timestamp)).push_back(',');
  out.append(ToString(r.device_type)).push_back(',');
  out.append(std::to_string(r.device_id)).push_back(',');
  out.append(std::to_string(r.user_id)).push_back(',');
  out.append(ToString(r.request_type)).push_back(',');
  out.append(ToString(r.direction)).push_back(',');
  out.append(std::to_string(r.data_volume)).push_back(',');
  // 6 decimals = microsecond resolution, matching the binary format.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", r.processing_time);
  out.append(buf).push_back(',');
  std::snprintf(buf, sizeof(buf), "%.6f", r.server_time);
  out.append(buf).push_back(',');
  std::snprintf(buf, sizeof(buf), "%.6f", r.avg_rtt);
  out.append(buf).push_back(',');
  out.push_back(r.proxied ? '1' : '0');
  return out;
}

LogRecord FromCsvLine(std::string_view line) {
  const auto f = SplitCsvLine(line);
  if (f.size() != 11)
    throw ParseError("expected 11 CSV fields, got " +
                     std::to_string(f.size()));
  LogRecord r;
  r.timestamp = ParseInt64(f[0], "timestamp");
  r.device_type = DeviceTypeFromString(f[1]);
  r.device_id = ParseUint64(f[2], "device_id");
  r.user_id = ParseUint64(f[3], "user_id");
  r.request_type = RequestTypeFromString(f[4]);
  r.direction = DirectionFromString(f[5]);
  r.data_volume = ParseUint64(f[6], "data_volume");
  r.processing_time = ParseDouble(f[7], "processing_time");
  r.server_time = ParseDouble(f[8], "server_time");
  r.avg_rtt = ParseDouble(f[9], "avg_rtt");
  if (f[10] == "1") {
    r.proxied = true;
  } else if (f[10] == "0") {
    r.proxied = false;
  } else {
    throw ParseError("bad proxied flag: '" + std::string(f[10]) + "'");
  }
  return r;
}

void WriteCsvTrace(const std::filesystem::path& path,
                   std::span<const LogRecord> records) {
  std::ofstream out = OpenForWrite(path, /*binary=*/false);
  out << CsvHeader() << '\n';
  for (const auto& r : records) out << ToCsvLine(r) << '\n';
  if (!out) throw Error("write failed: " + path.string());
}

std::vector<LogRecord> ReadCsvTrace(const std::filesystem::path& path) {
  std::ifstream in = OpenForRead(path, /*binary=*/false);
  std::string line;
  if (!std::getline(in, line))
    throw ParseError("empty CSV trace: " + path.string());
  if (line != CsvHeader())
    throw ParseError("unexpected CSV header in " + path.string());
  std::vector<LogRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    records.push_back(FromCsvLine(line));
  }
  return records;
}

void WriteBinaryTrace(const std::filesystem::path& path,
                      std::span<const LogRecord> records) {
  std::ofstream out = OpenForWrite(path, /*binary=*/true);
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t count = records.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  // Pack and flush blockwise rather than one 64-byte write per record.
  std::vector<detail::PackedRecord> block;
  block.reserve(kScanBlockRecords);
  for (const auto& r : records) {
    block.push_back(detail::Pack(r));
    if (block.size() == kScanBlockRecords) {
      out.write(reinterpret_cast<const char*>(block.data()),
                static_cast<std::streamsize>(block.size() *
                                             sizeof(detail::PackedRecord)));
      block.clear();
    }
  }
  if (!block.empty()) {
    out.write(reinterpret_cast<const char*>(block.data()),
              static_cast<std::streamsize>(block.size() *
                                           sizeof(detail::PackedRecord)));
  }
  if (!out) throw Error("write failed: " + path.string());
}

std::uint64_t BinaryTraceCount(const std::filesystem::path& path) {
  std::uint64_t count = 0;
  OpenV1(path, &count);
  return count;
}

std::vector<LogRecord> ReadBinaryTrace(const std::filesystem::path& path) {
  std::vector<LogRecord> records;
  records.reserve(BinaryTraceCount(path));
  ScanBinaryTraceWith(path, [&records](const LogRecord& r) {
    records.push_back(r);
    return true;
  });
  return records;
}

namespace detail {

std::size_t ScanPackedBlocks(
    const std::filesystem::path& path,
    const std::function<bool(std::span<const PackedRecord>)>& sink) {
  std::uint64_t count = 0;
  std::ifstream in = OpenV1(path, &count);

  std::size_t delivered = 0;
  std::vector<PackedRecord> block(
      static_cast<std::size_t>(std::min<std::uint64_t>(count,
                                                       kScanBlockRecords)));
  while (delivered < count) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(count - delivered, block.size()));
    in.read(reinterpret_cast<char*>(block.data()),
            static_cast<std::streamsize>(n * sizeof(PackedRecord)));
    if (!in) throw ParseError("truncated binary trace: " + path.string());
    delivered += n;
    if (!sink(std::span<const PackedRecord>(block.data(), n))) break;
  }
  return delivered;
}

}  // namespace detail

std::size_t ScanBinaryTrace(const std::filesystem::path& path,
                            const std::function<bool(const LogRecord&)>& fn) {
  return ScanBinaryTraceWith(path, [&fn](const LogRecord& r) {
    return fn(r);
  });
}

namespace {

/// The fixed on-disk column order of the v2 format. Element width in bytes;
/// 0 marks the dense user column (uint32) handled specially.
struct ColumnLayout {
  std::uint32_t mask;
  std::size_t width;
};
constexpr ColumnLayout kV2Columns[] = {
    {kColTimestamp, sizeof(std::int64_t)},
    {kColDeviceType, sizeof(std::uint8_t)},
    {kColDeviceId, sizeof(std::uint64_t)},
    {kColUser, sizeof(std::uint32_t)},
    {kColRequestType, sizeof(std::uint8_t)},
    {kColDirection, sizeof(std::uint8_t)},
    {kColDataVolume, sizeof(std::uint64_t)},
    {kColProcessingTime, sizeof(std::int64_t)},  // microseconds on disk
    {kColServerTime, sizeof(std::int64_t)},
    {kColAvgRtt, sizeof(std::int64_t)},
    {kColProxied, sizeof(std::uint8_t)},
};

void WriteRaw(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
}

template <typename T>
void WriteColumn(std::ofstream& out, std::span<const T> column) {
  WriteRaw(out, column.data(), column.size() * sizeof(T));
}

void WriteMicrosColumn(std::ofstream& out, std::span<const double> seconds) {
  std::vector<std::int64_t> micros(seconds.size());
  for (std::size_t i = 0; i < seconds.size(); ++i)
    micros[i] = detail::ToMicros(seconds[i]);
  WriteColumn<std::int64_t>(out, micros);
}

}  // namespace

namespace detail {

std::size_t V2ColumnWidth(std::uint32_t col) {
  for (const auto& c : kV2Columns)
    if (c.mask == col) return c.width;
  throw Error("unknown v2 column bit: " + std::to_string(col));
}

std::uint64_t V2FileInfo::ColumnOffset(std::uint32_t col) const {
  if (!(mask & col)) throw Error("column absent from v2 file");
  std::uint64_t offset = user_table_offset + users * sizeof(std::uint64_t);
  for (const auto& c : kV2Columns) {
    if (c.mask == col) return offset;
    if (mask & c.mask) offset += rows * c.width;
  }
  throw Error("unknown v2 column bit: " + std::to_string(col));
}

V2FileInfo ReadV2FileInfo(const std::filesystem::path& path) {
  // Not OpenForRead: a partitioned trace names its runs in the MANIFEST,
  // so a missing run is a malformed trace (ParseError), not an IO error.
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw ParseError("missing columnar trace file: " + path.string());
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagicV2)
    throw ParseError("not a mcloud columnar trace: " + path.string());

  V2FileInfo info;
  std::uint32_t reserved = 0;
  in.read(reinterpret_cast<char*>(&info.rows), sizeof(info.rows));
  in.read(reinterpret_cast<char*>(&info.users), sizeof(info.users));
  in.read(reinterpret_cast<char*>(&info.day_base), sizeof(info.day_base));
  in.read(reinterpret_cast<char*>(&info.mask), sizeof(info.mask));
  in.read(reinterpret_cast<char*>(&reserved), sizeof(reserved));
  if (!in) throw ParseError("truncated columnar trace: " + path.string());
  if ((info.mask & ~kAllColumns) != 0 || !(info.mask & kColTimestamp) ||
      !(info.mask & kColUser))
    throw ParseError("bad column mask in columnar trace: " + path.string());
  info.user_table_offset = 8 + sizeof(info.rows) + sizeof(info.users) +
                           sizeof(info.day_base) + sizeof(info.mask) +
                           sizeof(reserved);

  // Validate the full payload length up front: seeks past EOF would not
  // fail, so even columns a reader skips must be accounted for here.
  std::uint64_t expected =
      info.user_table_offset + info.users * sizeof(std::uint64_t);
  for (const auto& col : kV2Columns)
    if (info.mask & col.mask) expected += info.rows * col.width;
  std::error_code ec;
  const std::uint64_t actual = std::filesystem::file_size(path, ec);
  if (ec || actual < expected)
    throw ParseError("truncated columnar trace: " + path.string());
  return info;
}

}  // namespace detail

bool IsColumnarTrace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  return in && magic == kMagicV2;
}

void WriteColumnarTrace(const std::filesystem::path& path,
                        const TraceStore& store) {
  std::ofstream out = OpenForWrite(path, /*binary=*/true);
  out.write(kMagicV2.data(), kMagicV2.size());
  const std::uint64_t n_rows = store.rows();
  const std::uint64_t n_users = store.users();
  const std::int64_t day_base = store.day_base();
  const std::uint32_t mask = store.columns_present();
  const std::uint32_t reserved = 0;
  WriteRaw(out, &n_rows, sizeof(n_rows));
  WriteRaw(out, &n_users, sizeof(n_users));
  WriteRaw(out, &day_base, sizeof(day_base));
  WriteRaw(out, &mask, sizeof(mask));
  WriteRaw(out, &reserved, sizeof(reserved));
  WriteColumn(out, store.user_ids());

  for (const auto& col : kV2Columns) {
    if (!(mask & col.mask)) continue;
    switch (col.mask) {
      case kColTimestamp: WriteColumn(out, store.timestamps()); break;
      case kColDeviceType: WriteColumn(out, store.device_types()); break;
      case kColDeviceId: WriteColumn(out, store.device_ids()); break;
      case kColUser: WriteColumn(out, store.user_index()); break;
      case kColRequestType: WriteColumn(out, store.request_types()); break;
      case kColDirection: WriteColumn(out, store.directions()); break;
      case kColDataVolume: WriteColumn(out, store.data_volumes()); break;
      case kColProcessingTime:
        WriteMicrosColumn(out, store.processing_times());
        break;
      case kColServerTime: WriteMicrosColumn(out, store.server_times()); break;
      case kColAvgRtt: WriteMicrosColumn(out, store.avg_rtts()); break;
      case kColProxied: WriteColumn(out, store.proxied()); break;
    }
  }
  if (!out) throw Error("write failed: " + path.string());
}

void WriteColumnarRun(const std::filesystem::path& path,
                      const RecordColumns& cols, std::size_t begin,
                      std::size_t end, UnixSeconds day_base,
                      V2RunScratch& scratch) {
  const std::size_t n = end - begin;
  // Per-run user table: sorted unique raw ids; dense ids are ascending-id
  // ranks — the exact remap TraceStore::FromRecords would assign.
  auto& table = scratch.user_table;
  table.assign(cols.user_ids.begin() + static_cast<std::ptrdiff_t>(begin),
               cols.user_ids.begin() + static_cast<std::ptrdiff_t>(end));
  std::sort(table.begin(), table.end());
  table.erase(std::unique(table.begin(), table.end()), table.end());
  auto& dense = scratch.dense_users;
  dense.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    dense[i] = static_cast<std::uint32_t>(
        std::lower_bound(table.begin(), table.end(),
                         cols.user_ids[begin + i]) -
        table.begin());
  }

  std::ofstream out = OpenForWrite(path, /*binary=*/true);
  out.write(kMagicV2.data(), kMagicV2.size());
  const std::uint64_t n_rows = n;
  const std::uint64_t n_users = table.size();
  const std::int64_t base = day_base;
  const std::uint32_t mask = kAllColumns;
  const std::uint32_t reserved = 0;
  WriteRaw(out, &n_rows, sizeof(n_rows));
  WriteRaw(out, &n_users, sizeof(n_users));
  WriteRaw(out, &base, sizeof(base));
  WriteRaw(out, &mask, sizeof(mask));
  WriteRaw(out, &reserved, sizeof(reserved));
  WriteColumn<std::uint64_t>(out, table);

  // Column payloads in the fixed kV2Columns order.
  const auto sub = [&](const auto& col) {
    using T = typename std::remove_reference_t<decltype(col)>::value_type;
    return std::span<const T>(col).subspan(begin, n);
  };
  const auto write_micros = [&](const std::vector<double>& col) {
    scratch.micros.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      scratch.micros[i] = detail::ToMicros(col[begin + i]);
    WriteColumn<std::int64_t>(out, scratch.micros);
  };
  WriteColumn<std::int64_t>(out, sub(cols.timestamps));
  WriteColumn<std::uint8_t>(out, sub(cols.device_types));
  WriteColumn<std::uint64_t>(out, sub(cols.device_ids));
  WriteColumn<std::uint32_t>(out, dense);
  WriteColumn<std::uint8_t>(out, sub(cols.request_types));
  WriteColumn<std::uint8_t>(out, sub(cols.directions));
  WriteColumn<std::uint64_t>(out, sub(cols.data_volumes));
  write_micros(cols.processing_times);
  write_micros(cols.server_times);
  write_micros(cols.avg_rtts);
  WriteColumn<std::uint8_t>(out, sub(cols.proxied));
  if (!out) throw Error("write failed: " + path.string());
}

namespace {

struct V2Reader {
  std::ifstream in;
  std::filesystem::path path;

  void Read(void* data, std::size_t bytes) {
    in.read(reinterpret_cast<char*>(data),
            static_cast<std::streamsize>(bytes));
    if (!in)
      throw ParseError("truncated columnar trace: " + path.string());
  }

  template <typename T>
  std::vector<T> ReadColumn(std::uint64_t n) {
    std::vector<T> column(static_cast<std::size_t>(n));
    Read(column.data(), column.size() * sizeof(T));
    return column;
  }

  std::vector<double> ReadMicrosColumn(std::uint64_t n) {
    const auto micros = ReadColumn<std::int64_t>(n);
    std::vector<double> seconds(micros.size());
    for (std::size_t i = 0; i < micros.size(); ++i)
      seconds[i] = detail::FromMicros(micros[i]);
    return seconds;
  }

  void Skip(std::uint64_t bytes) {
    in.seekg(static_cast<std::streamoff>(bytes), std::ios::cur);
    if (!in)
      throw ParseError("truncated columnar trace: " + path.string());
  }
};

}  // namespace

TraceStore ReadColumnarTrace(const std::filesystem::path& path,
                             std::uint32_t want) {
  // The probe validates the magic, mask, and full expected byte length.
  const detail::V2FileInfo info = detail::ReadV2FileInfo(path);
  const std::uint64_t n_rows = info.rows;
  const std::uint64_t n_users = info.users;
  const std::uint32_t file_mask = info.mask;
  if (n_rows > UINT32_MAX)
    throw ParseError("columnar trace too large: " + path.string());

  V2Reader r{OpenForRead(path, /*binary=*/true), path};
  r.Skip(info.user_table_offset);

  TraceStore::Builder b;
  b.day_base = info.day_base;
  b.user_ids = r.ReadColumn<std::uint64_t>(n_users);

  // The indexes need timestamps and users regardless of the request.
  const std::uint32_t load = (want | kColTimestamp | kColUser) & file_mask;
  b.present = load;
  for (const auto& col : kV2Columns) {
    if (!(file_mask & col.mask)) continue;
    if (!(load & col.mask)) {
      r.Skip(n_rows * col.width);
      continue;
    }
    switch (col.mask) {
      case kColTimestamp:
        b.timestamps = r.ReadColumn<std::int64_t>(n_rows);
        break;
      case kColDeviceType:
        b.device_types = r.ReadColumn<std::uint8_t>(n_rows);
        break;
      case kColDeviceId:
        b.device_ids = r.ReadColumn<std::uint64_t>(n_rows);
        break;
      case kColUser: {
        const auto dense = r.ReadColumn<std::uint32_t>(n_rows);
        b.raw_users.assign(dense.begin(), dense.end());
        break;
      }
      case kColRequestType:
        b.request_types = r.ReadColumn<std::uint8_t>(n_rows);
        break;
      case kColDirection:
        b.directions = r.ReadColumn<std::uint8_t>(n_rows);
        break;
      case kColDataVolume:
        b.data_volumes = r.ReadColumn<std::uint64_t>(n_rows);
        break;
      case kColProcessingTime:
        b.processing_times = r.ReadMicrosColumn(n_rows);
        break;
      case kColServerTime:
        b.server_times = r.ReadMicrosColumn(n_rows);
        break;
      case kColAvgRtt:
        b.avg_rtts = r.ReadMicrosColumn(n_rows);
        break;
      case kColProxied:
        b.proxied = r.ReadColumn<std::uint8_t>(n_rows);
        break;
    }
  }
  try {
    return std::move(b).Build();
  } catch (const Error& e) {
    throw ParseError("invalid columnar trace " + path.string() + ": " +
                     e.what());
  }
}

}  // namespace mcloud
