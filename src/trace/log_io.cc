#include "trace/log_io.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/csv.h"
#include "util/error.h"

namespace mcloud {
namespace {

constexpr std::array<char, 8> kMagic = {'M', 'C', 'L', 'O',
                                        'G', 'v', '0', '1'};

/// Fixed-width on-disk layout of one binary record (little-endian).
struct PackedRecord {
  std::int64_t timestamp;
  std::uint64_t device_id;
  std::uint64_t user_id;
  std::uint64_t data_volume;
  std::int64_t processing_us;
  std::int64_t server_us;
  std::int64_t rtt_us;
  std::uint8_t device_type;
  std::uint8_t request_type;
  std::uint8_t direction;
  std::uint8_t proxied;
  std::uint8_t pad[4];
};
static_assert(sizeof(PackedRecord) == 64, "unexpected record layout");

std::int64_t ToMicros(Seconds s) {
  return static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}
Seconds FromMicros(std::int64_t us) {
  return static_cast<Seconds>(us) * 1e-6;
}

PackedRecord Pack(const LogRecord& r) {
  PackedRecord p{};
  p.timestamp = r.timestamp;
  p.device_id = r.device_id;
  p.user_id = r.user_id;
  p.data_volume = r.data_volume;
  p.processing_us = ToMicros(r.processing_time);
  p.server_us = ToMicros(r.server_time);
  p.rtt_us = ToMicros(r.avg_rtt);
  p.device_type = static_cast<std::uint8_t>(r.device_type);
  p.request_type = static_cast<std::uint8_t>(r.request_type);
  p.direction = static_cast<std::uint8_t>(r.direction);
  p.proxied = r.proxied ? 1 : 0;
  return p;
}

LogRecord Unpack(const PackedRecord& p) {
  LogRecord r;
  r.timestamp = p.timestamp;
  r.device_id = p.device_id;
  r.user_id = p.user_id;
  r.data_volume = p.data_volume;
  r.processing_time = FromMicros(p.processing_us);
  r.server_time = FromMicros(p.server_us);
  r.avg_rtt = FromMicros(p.rtt_us);
  if (p.device_type > 2) throw ParseError("bad device type in binary trace");
  if (p.request_type > 1) throw ParseError("bad request type in binary trace");
  if (p.direction > 1) throw ParseError("bad direction in binary trace");
  r.device_type = static_cast<DeviceType>(p.device_type);
  r.request_type = static_cast<RequestType>(p.request_type);
  r.direction = static_cast<Direction>(p.direction);
  r.proxied = p.proxied != 0;
  return r;
}

std::ofstream OpenForWrite(const std::filesystem::path& path, bool binary) {
  std::ofstream out(path, binary ? std::ios::binary | std::ios::trunc
                                 : std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path.string());
  return out;
}

std::ifstream OpenForRead(const std::filesystem::path& path, bool binary) {
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw Error("cannot open for reading: " + path.string());
  return in;
}

}  // namespace

std::string CsvHeader() {
  return "timestamp,device_type,device_id,user_id,request_type,direction,"
         "data_volume,processing_time,server_time,avg_rtt,proxied";
}

std::string ToCsvLine(const LogRecord& r) {
  std::string out;
  out.reserve(128);
  out.append(std::to_string(r.timestamp)).push_back(',');
  out.append(ToString(r.device_type)).push_back(',');
  out.append(std::to_string(r.device_id)).push_back(',');
  out.append(std::to_string(r.user_id)).push_back(',');
  out.append(ToString(r.request_type)).push_back(',');
  out.append(ToString(r.direction)).push_back(',');
  out.append(std::to_string(r.data_volume)).push_back(',');
  // 6 decimals = microsecond resolution, matching the binary format.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", r.processing_time);
  out.append(buf).push_back(',');
  std::snprintf(buf, sizeof(buf), "%.6f", r.server_time);
  out.append(buf).push_back(',');
  std::snprintf(buf, sizeof(buf), "%.6f", r.avg_rtt);
  out.append(buf).push_back(',');
  out.push_back(r.proxied ? '1' : '0');
  return out;
}

LogRecord FromCsvLine(std::string_view line) {
  const auto f = SplitCsvLine(line);
  if (f.size() != 11)
    throw ParseError("expected 11 CSV fields, got " +
                     std::to_string(f.size()));
  LogRecord r;
  r.timestamp = ParseInt64(f[0], "timestamp");
  r.device_type = DeviceTypeFromString(f[1]);
  r.device_id = ParseUint64(f[2], "device_id");
  r.user_id = ParseUint64(f[3], "user_id");
  r.request_type = RequestTypeFromString(f[4]);
  r.direction = DirectionFromString(f[5]);
  r.data_volume = ParseUint64(f[6], "data_volume");
  r.processing_time = ParseDouble(f[7], "processing_time");
  r.server_time = ParseDouble(f[8], "server_time");
  r.avg_rtt = ParseDouble(f[9], "avg_rtt");
  if (f[10] == "1") {
    r.proxied = true;
  } else if (f[10] == "0") {
    r.proxied = false;
  } else {
    throw ParseError("bad proxied flag: '" + std::string(f[10]) + "'");
  }
  return r;
}

void WriteCsvTrace(const std::filesystem::path& path,
                   std::span<const LogRecord> records) {
  std::ofstream out = OpenForWrite(path, /*binary=*/false);
  out << CsvHeader() << '\n';
  for (const auto& r : records) out << ToCsvLine(r) << '\n';
  if (!out) throw Error("write failed: " + path.string());
}

std::vector<LogRecord> ReadCsvTrace(const std::filesystem::path& path) {
  std::ifstream in = OpenForRead(path, /*binary=*/false);
  std::string line;
  if (!std::getline(in, line))
    throw ParseError("empty CSV trace: " + path.string());
  if (line != CsvHeader())
    throw ParseError("unexpected CSV header in " + path.string());
  std::vector<LogRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    records.push_back(FromCsvLine(line));
  }
  return records;
}

void WriteBinaryTrace(const std::filesystem::path& path,
                      std::span<const LogRecord> records) {
  std::ofstream out = OpenForWrite(path, /*binary=*/true);
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t count = records.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& r : records) {
    const PackedRecord p = Pack(r);
    out.write(reinterpret_cast<const char*>(&p), sizeof(p));
  }
  if (!out) throw Error("write failed: " + path.string());
}

std::vector<LogRecord> ReadBinaryTrace(const std::filesystem::path& path) {
  std::vector<LogRecord> records;
  ScanBinaryTrace(path, [&records](const LogRecord& r) {
    records.push_back(r);
    return true;
  });
  return records;
}

std::size_t ScanBinaryTrace(const std::filesystem::path& path,
                            const std::function<bool(const LogRecord&)>& fn) {
  std::ifstream in = OpenForRead(path, /*binary=*/true);
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic)
    throw ParseError("not a mcloud binary trace: " + path.string());
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw ParseError("truncated binary trace: " + path.string());

  std::size_t visited = 0;
  PackedRecord p{};
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(&p), sizeof(p));
    if (!in) throw ParseError("truncated binary trace: " + path.string());
    ++visited;
    if (!fn(Unpack(p))) break;
  }
  return visited;
}

}  // namespace mcloud
