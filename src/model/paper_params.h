// Every number the paper reports, in one place, with section/figure
// citations. The workload generator is calibrated from these constants and
// the benches print them as the "paper" column next to measured values.
//
// Where the paper publishes a fitted model (Table 2 mixtures, Fig 10 SE
// models, Fig 3 GMM component means), builder functions return the
// distribution object directly.
#pragma once

#include <array>

#include "util/distributions.h"
#include "util/units.h"

namespace mcloud::paper {

// ---------------------------------------------------------------------------
// §2.2 Dataset description
// ---------------------------------------------------------------------------
inline constexpr std::uint64_t kTotalMobileLogs = 349'092'451;
inline constexpr std::uint64_t kMobileUsers = 1'148'640;
inline constexpr std::uint64_t kMobileDevices = 1'396'494;
inline constexpr double kAndroidShare = 0.784;   ///< of mobile accesses
inline constexpr std::uint64_t kMobileAndPcUsers = 164'764;
inline constexpr double kMobileAndPcShare = 0.143;
inline constexpr std::uint64_t kPacketTraceFlows = 40'386;
inline constexpr Seconds kObservationPeriod = kWeek;

// ---------------------------------------------------------------------------
// §3.1.1 File operation interval & session identification (Fig 3)
// ---------------------------------------------------------------------------
/// Session gap threshold τ: the Fig 3 histogram has a valley at ~1 hour.
inline constexpr Seconds kSessionGapTau = kHour;

/// Two-component Gaussian mixture over log10(inter-op seconds):
/// intra-session component mean ≈ 10 s; inter-session mean ≈ 1 day.
/// Mixture weights and stddevs are not printed in the paper; the weights
/// follow from the session structure (most gaps are intra-session) and the
/// stddevs are chosen so the two modes separate with the valley at 1 h,
/// matching the figure's shape.
inline constexpr double kIntraSessionGapMeanLog10 = 1.0;    // 10 s
inline constexpr double kIntraSessionGapStddevLog10 = 0.65;
inline constexpr double kInterSessionGapMeanLog10 = 4.9365; // ≈ 86400 s
inline constexpr double kInterSessionGapStddevLog10 = 0.55;
inline constexpr double kIntraSessionGapWeight = 0.80;

[[nodiscard]] GaussianMixture InterOpGapModel();

/// Session counts (§3.1.1).
inline constexpr std::uint64_t kTotalSessions = 2'377'124;
inline constexpr double kStoreOnlySessionShare = 0.682;
inline constexpr double kRetrieveOnlySessionShare = 0.299;
inline constexpr double kMixedSessionShare = 0.019;

// ---------------------------------------------------------------------------
// §3.1.2 Burstiness (Fig 4)
// ---------------------------------------------------------------------------
/// For >80% of multi-op sessions the normalized operating time is < 0.1;
/// sessions with >20 ops issue everything within 3% of the session length.
inline constexpr double kBurstyOperatingTimeQuantile = 0.80;
inline constexpr double kBurstyOperatingTimeBound = 0.10;

// ---------------------------------------------------------------------------
// §3.1.3 Session size (Fig 5)
// ---------------------------------------------------------------------------
/// 40% of sessions contain exactly one file operation; ~10% contain > 20.
inline constexpr double kSingleOpSessionShare = 0.40;
inline constexpr double kOver20OpSessionShare = 0.10;
/// Store-only sessions: volume grows linearly at ~1.5 MB per file (Fig 5b).
inline constexpr double kStoreLinearCoefficientMB = 1.5;
/// Retrieve-only single-file sessions average ~70 MB (Fig 5c).
inline constexpr double kRetrieveSingleFileAvgMB = 70.0;

// ---------------------------------------------------------------------------
// §3.1.4 Average file size models (Fig 6, Table 2), sizes in MB
// ---------------------------------------------------------------------------
struct MixtureExpParams {
  std::array<double, 3> weights;
  std::array<double, 3> means_mb;
};
inline constexpr MixtureExpParams kStoreFileSizeParams{
    {0.91, 0.07, 0.02}, {1.5, 13.1, 77.4}};
inline constexpr MixtureExpParams kRetrieveFileSizeParams{
    {0.46, 0.26, 0.28}, {1.6, 29.8, 146.8}};

[[nodiscard]] MixtureExponential StoreFileSizeModel();     ///< Table 2 row 1
[[nodiscard]] MixtureExponential RetrieveFileSizeModel();  ///< Table 2 row 2

// ---------------------------------------------------------------------------
// §3.2.1 Usage scenarios (Fig 7, Table 3)
// ---------------------------------------------------------------------------
/// Store/retrieve volume-ratio thresholds separating the usage classes.
inline constexpr double kUploadOnlyRatio = 1e5;
inline constexpr double kDownloadOnlyRatio = 1e-5;
/// Occasional users move less than 1 MB total.
inline constexpr Bytes kOccasionalVolumeBound = FromMB(1.0);

enum class UserClass { kOccasional, kUploadOnly, kDownloadOnly, kMixed };

/// Table 3, "mobile only" column.
inline constexpr double kMobileUploadOnlyShare = 0.515;
inline constexpr double kMobileDownloadOnlyShare = 0.173;
inline constexpr double kMobileOccasionalShare = 0.239;
inline constexpr double kMobileMixedShare = 0.072;
inline constexpr double kMobileUploadOnlyStoreVolume = 0.866;
inline constexpr double kMobileDownloadOnlyRetrieveVolume = 0.845;

/// Table 3, "mobile & PC" column.
inline constexpr double kBothUploadOnlyShare = 0.537;
inline constexpr double kBothDownloadOnlyShare = 0.151;
inline constexpr double kBothOccasionalShare = 0.132;
inline constexpr double kBothMixedShare = 0.180;

/// Table 3, "PC only" column.
inline constexpr double kPcUploadOnlyShare = 0.316;
inline constexpr double kPcDownloadOnlyShare = 0.172;
inline constexpr double kPcOccasionalShare = 0.341;
inline constexpr double kPcMixedShare = 0.191;

// ---------------------------------------------------------------------------
// §3.2.2 User engagement (Fig 8, Fig 9)
// ---------------------------------------------------------------------------
inline constexpr std::uint64_t kDayOneActiveUsers = 233'225;
/// Roughly half of single-device users never return within the week; with
/// more than one device, fewer than 20% stay away.
inline constexpr double kSingleDeviceNoReturnShare = 0.50;
inline constexpr double kMultiDeviceNoReturnShare = 0.20;
/// ~80% of mobile-only uploaders never retrieve within the week (Fig 9);
/// mobile&PC users retrieve much sooner, especially same-day.
inline constexpr double kMobileOnlyNoRetrievalShare = 0.80;

// ---------------------------------------------------------------------------
// §3.2.3 User activity models (Fig 10)
// ---------------------------------------------------------------------------
struct SeParams {
  double c;   ///< stretch factor
  double a;   ///< slope magnitude in y^c = -a log rank + b
  double b;   ///< intercept
  double r2;  ///< published coefficient of determination
};
inline constexpr SeParams kStoreActivitySe{0.20, 0.448, 7.239, 0.999201};
inline constexpr SeParams kRetrieveActivitySe{0.15, 0.322, 4.971, 0.998964};

// ---------------------------------------------------------------------------
// §2.4 Workload overview (Fig 1)
// ---------------------------------------------------------------------------
/// Hour of the evening surge (~11 PM local).
inline constexpr int kPeakHourOfDay = 23;
/// Retrieval data volume exceeds storage volume, while stored-file count is
/// over 2× retrieved-file count (retrieved objects are much larger).
inline constexpr double kStoredToRetrievedFileCountRatio = 2.0;

// ---------------------------------------------------------------------------
// §4 Data transmission performance
// ---------------------------------------------------------------------------
inline constexpr Bytes kPaperChunkSize = kChunkSize;  // 512 KB, §2.1
/// Median per-chunk upload time (Fig 12a).
inline constexpr Seconds kMedianUploadTimeIos = 1.6;
inline constexpr Seconds kMedianUploadTimeAndroid = 4.1;
/// Servers advertise ≤ 64 KB receive window; no window scaling (Fig 13/15).
inline constexpr Bytes kServerReceiveWindow = 64 * kKiB;
/// Client-side receive windows when downloading (window scaling enabled).
inline constexpr Bytes kAndroidReceiveWindow = 4 * kMiB;
inline constexpr Bytes kIosReceiveWindow = 2 * kMiB;
/// Median RTT of chunk transfers ≈ 100 ms (Fig 14).
inline constexpr Seconds kMedianRtt = 0.100;
/// Fraction of inter-chunk idle gaps exceeding the RTO (Fig 16c):
/// Android storage ≈ 60%, iOS storage ≈ 18%.
inline constexpr double kAndroidIdleOverRtoShare = 0.60;
inline constexpr double kIosIdleOverRtoShare = 0.18;
/// Server processing time T_srv ≈ 100 ms regardless of device (Fig 16a/b).
inline constexpr Seconds kMedianServerTime = 0.100;
/// Android spends on average ~90 ms more than iOS preparing an upload chunk.
inline constexpr Seconds kAndroidExtraUploadPrep = 0.090;
/// 90th-percentile Android retrieval T_clt ≈ 1 s (one order above iOS).
inline constexpr Seconds kAndroidRetrievalP90Tclt = 1.0;

/// RTO estimate used in §4.2: RTO ≈ RTT + max(200 ms, 2·RTT).
[[nodiscard]] constexpr Seconds EstimateRto(Seconds rtt) {
  const Seconds var_term = 2.0 * rtt;
  return rtt + (var_term > 0.200 ? var_term : 0.200);
}

}  // namespace mcloud::paper
