#include "model/paper_params.h"

namespace mcloud::paper {

GaussianMixture InterOpGapModel() {
  return GaussianMixture({
      {kIntraSessionGapWeight, kIntraSessionGapMeanLog10,
       kIntraSessionGapStddevLog10},
      {1.0 - kIntraSessionGapWeight, kInterSessionGapMeanLog10,
       kInterSessionGapStddevLog10},
  });
}

namespace {
MixtureExponential BuildMixture(const MixtureExpParams& p) {
  std::vector<MixtureExponential::Component> comps;
  comps.reserve(p.weights.size());
  for (std::size_t i = 0; i < p.weights.size(); ++i)
    comps.push_back({p.weights[i], p.means_mb[i]});
  return MixtureExponential(std::move(comps));
}
}  // namespace

MixtureExponential StoreFileSizeModel() {
  return BuildMixture(kStoreFileSizeParams);
}

MixtureExponential RetrieveFileSizeModel() {
  return BuildMixture(kRetrieveFileSizeParams);
}

}  // namespace mcloud::paper
