// Burstiness within sessions (§3.1.2, Fig 4): users issue all file
// operations at the beginning of a session, then wait for the transfers.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "analysis/sessionizer.h"

namespace mcloud::analysis {

struct BurstinessGroup {
  std::size_t min_ops_exclusive = 1;     ///< group = sessions with > this
  std::vector<double> normalized_times;  ///< operating time / session length
};

/// Normalized user-operating-time samples for the Fig 4 op-count groups
/// (> 1, > 10, > 20 by default). Sessions of zero length are skipped.
[[nodiscard]] std::vector<BurstinessGroup> NormalizedOperatingTimes(
    std::span<const Session> sessions,
    std::span<const std::size_t> group_mins = std::array<std::size_t, 3>{
        1, 10, 20});

/// Fraction of a group's sessions with normalized operating time below
/// `bound` (the paper's ">80% below 0.1" headline).
[[nodiscard]] double FractionBelow(const BurstinessGroup& group,
                                   double bound);

}  // namespace mcloud::analysis
