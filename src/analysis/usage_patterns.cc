#include "analysis/usage_patterns.h"

#include <cmath>
#include <unordered_set>

#include "util/error.h"

namespace mcloud::analysis {
namespace {

constexpr double kRatioSaturation = 1e10;  // stands in for ±infinity

bool MatchesProfile(const UserUsage& u, DeviceProfile profile) {
  switch (profile) {
    case DeviceProfile::kMobileOnly:
      return u.MobileOnly();
    case DeviceProfile::kMobileAndPc:
      return u.MobileAndPc();
    case DeviceProfile::kPcOnly:
      return u.PcOnly();
  }
  throw Error("invalid DeviceProfile");
}

std::size_t ClassIndex(paper::UserClass c) {
  return static_cast<std::size_t>(c);
}

}  // namespace

double UserUsage::VolumeRatio() const {
  if (store_volume == 0 && retrieve_volume == 0) return 1.0;
  if (retrieve_volume == 0) return kRatioSaturation;
  if (store_volume == 0) return 1.0 / kRatioSaturation;
  return static_cast<double>(store_volume) /
         static_cast<double>(retrieve_volume);
}

paper::UserClass UserUsage::Classify() const {
  // Table 3 definitions: occasional = under 1 MB of total traffic; then the
  // volume-ratio thresholds split upload/download/mixed.
  if (store_volume + retrieve_volume < paper::kOccasionalVolumeBound)
    return paper::UserClass::kOccasional;
  const double ratio = VolumeRatio();
  if (ratio > paper::kUploadOnlyRatio) return paper::UserClass::kUploadOnly;
  if (ratio < paper::kDownloadOnlyRatio)
    return paper::UserClass::kDownloadOnly;
  return paper::UserClass::kMixed;
}

std::vector<UserUsage> BuildUserUsage(std::span<const LogRecord> trace) {
  return BuildUserUsageFrom(trace);
}

std::vector<double> RatioSample(std::span<const UserUsage> usage,
                                DeviceProfile profile) {
  std::vector<double> out;
  for (const UserUsage& u : usage) {
    if (!MatchesProfile(u, profile)) continue;
    if (u.store_volume == 0 && u.retrieve_volume == 0) continue;
    out.push_back(std::log10(u.VolumeRatio()));
  }
  return out;
}

std::vector<double> RatioSampleByDevices(std::span<const UserUsage> usage,
                                         std::size_t min_devices) {
  std::vector<double> out;
  for (const UserUsage& u : usage) {
    if (!u.MobileOnly() || u.mobile_devices < min_devices) continue;
    if (u.store_volume == 0 && u.retrieve_volume == 0) continue;
    out.push_back(std::log10(u.VolumeRatio()));
  }
  return out;
}

UserTypeColumn BuildUserTypeColumn(std::span<const UserUsage> usage,
                                   DeviceProfile profile) {
  UserTypeColumn col;
  std::array<std::size_t, 4> counts{};
  std::array<double, 4> store{};
  std::array<double, 4> retrieve{};
  double store_total = 0;
  double retrieve_total = 0;

  for (const UserUsage& u : usage) {
    if (!MatchesProfile(u, profile)) continue;
    ++col.users;
    const std::size_t k = ClassIndex(u.Classify());
    ++counts[k];
    store[k] += static_cast<double>(u.store_volume);
    retrieve[k] += static_cast<double>(u.retrieve_volume);
    store_total += static_cast<double>(u.store_volume);
    retrieve_total += static_cast<double>(u.retrieve_volume);
  }

  for (std::size_t k = 0; k < 4; ++k) {
    col.user_share[k] =
        col.users ? static_cast<double>(counts[k]) / col.users : 0;
    col.store_share[k] = store_total > 0 ? store[k] / store_total : 0;
    col.retrieve_share[k] =
        retrieve_total > 0 ? retrieve[k] / retrieve_total : 0;
  }
  return col;
}

}  // namespace mcloud::analysis
