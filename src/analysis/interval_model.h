// Inter-operation interval modeling (§3.1.1, Fig 3).
//
// The paper histograms the log10 of inter-file-operation times, finds a
// valley near the 1-hour mark, fits a two-component Gaussian mixture (one
// intra-session, one inter-session component), and sets τ = 1 h. This module
// packages that pipeline: histogram → valley → GMM fit → τ.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "stats/em_gaussian.h"
#include "stats/tdigest.h"
#include "util/histogram.h"
#include "util/units.h"

namespace mcloud::analysis {

struct IntervalModel {
  Histogram log10_histogram;       ///< Fig 3's bars
  GaussianMixtureFit gmm;          ///< two components over log10 seconds
  Seconds valley_tau = 0;          ///< τ from the histogram valley
  Seconds gmm_tau = 0;             ///< τ where both components are equally
                                   ///< likely (crossover point)
  /// Component means converted back to seconds (geometric means).
  Seconds intra_mean_seconds = 0;
  Seconds inter_mean_seconds = 0;
};

struct IntervalModelOptions {
  std::size_t histogram_bins = 60;
  double log10_min = 0.0;   ///< 1 second
  double log10_max = 6.0;   ///< ~11.6 days
};

/// Fit the full Fig 3 pipeline on raw inter-op intervals (seconds).
[[nodiscard]] IntervalModel FitIntervalModel(
    std::span<const double> intervals_seconds,
    const IntervalModelOptions& options = {});

// --- Streaming interval sketch ---------------------------------------------
//
// The online engine replaces the retained interval vector with a LogBins
// sketch. Log timestamps are quantized to one second (Table 1), so intervals
// are de-quantized with uniform jitter before binning — without it, log bins
// that contain no integer stay empty and fake histogram valleys appear. The
// jitter is a *stateless hash* of (user_id, timestamp): every engine and
// every slice of the trace computes the identical jitter for a given gap
// regardless of processing order, which is what makes the sketch mergeable
// and byte-identical across --threads. The bin index uses the jittered
// value, while the bin sum accumulates the raw integer gap so per-bin sums
// stay exactly representable (order-independent FP addition).

/// Fine-bin geometry: 1016 log10 bins of width 0.00625 over [-0.35, 6.0).
/// 0.0 is a bin edge and each Fig 3 coarse bin (width 0.1) is exactly 16
/// fine bins, so the 60-bin histogram is reconstructed without loss; the
/// jittered minimum 0.5 s (log10 ≈ -0.301) stays in range.
inline constexpr double kIntervalSketchLog10Lo = -0.35;
inline constexpr double kIntervalSketchLog10Hi = 6.0;
inline constexpr std::size_t kIntervalSketchBins = 1016;

[[nodiscard]] inline LogBins MakeIntervalSketch() {
  return LogBins(kIntervalSketchLog10Lo, kIntervalSketchLog10Hi,
                 kIntervalSketchBins);
}

/// Deterministic dequantization jitter in [-0.5, 0.5): SplitMix64 finalizer
/// over the (user, timestamp) pair that ends the gap.
[[nodiscard]] inline double IntervalJitter(std::uint64_t user_id,
                                           std::uint64_t timestamp) {
  std::uint64_t z = user_id * 0x9E3779B97F4A7C15ull ^
                    timestamp * 0xD1B54A32D192ED03ull;
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 - 0.5;
}

/// Add one positive inter-op gap (integer seconds, ended by `user_id`'s file
/// operation at `timestamp`) to the sketch.
inline void AddIntervalToSketch(LogBins& sketch, std::uint64_t user_id,
                                std::uint64_t timestamp,
                                double gap_seconds) {
  const double dequantized =
      gap_seconds >= 1.0
          ? std::max(0.5, gap_seconds + IntervalJitter(user_id, timestamp))
          : gap_seconds;
  sketch.Add(dequantized, gap_seconds, 1);
}

/// Fit the Fig 3 pipeline from the interval sketch: the coarse histogram is
/// reconstructed exactly from fine-bin counts (fine centers below
/// `log10_min` land in underflow, matching the raw path's treatment of
/// sub-second jittered values) and the GMM is fit to the weighted
/// (fine-bin log10 center, count) pairs.
[[nodiscard]] IntervalModel FitIntervalModel(
    const LogBins& sketch, const IntervalModelOptions& options = {});

/// Crossover point of a two-component mixture: the x where the weighted
/// densities of the two components are equal (between their means). This is
/// the paper's argument that the 1-hour mark "is equally likely to be within
/// the two components".
[[nodiscard]] double MixtureCrossover(const GaussianMixture& mixture);

}  // namespace mcloud::analysis
