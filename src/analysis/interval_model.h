// Inter-operation interval modeling (§3.1.1, Fig 3).
//
// The paper histograms the log10 of inter-file-operation times, finds a
// valley near the 1-hour mark, fits a two-component Gaussian mixture (one
// intra-session, one inter-session component), and sets τ = 1 h. This module
// packages that pipeline: histogram → valley → GMM fit → τ.
#pragma once

#include <span>
#include <vector>

#include "stats/em_gaussian.h"
#include "util/histogram.h"
#include "util/units.h"

namespace mcloud::analysis {

struct IntervalModel {
  Histogram log10_histogram;       ///< Fig 3's bars
  GaussianMixtureFit gmm;          ///< two components over log10 seconds
  Seconds valley_tau = 0;          ///< τ from the histogram valley
  Seconds gmm_tau = 0;             ///< τ where both components are equally
                                   ///< likely (crossover point)
  /// Component means converted back to seconds (geometric means).
  Seconds intra_mean_seconds = 0;
  Seconds inter_mean_seconds = 0;
};

struct IntervalModelOptions {
  std::size_t histogram_bins = 60;
  double log10_min = 0.0;   ///< 1 second
  double log10_max = 6.0;   ///< ~11.6 days
};

/// Fit the full Fig 3 pipeline on raw inter-op intervals (seconds).
[[nodiscard]] IntervalModel FitIntervalModel(
    std::span<const double> intervals_seconds,
    const IntervalModelOptions& options = {});

/// Crossover point of a two-component mixture: the x where the weighted
/// densities of the two components are equal (between their means). This is
/// the paper's argument that the 1-hour mark "is equally likely to be within
/// the two components".
[[nodiscard]] double MixtureCrossover(const GaussianMixture& mixture);

}  // namespace mcloud::analysis
