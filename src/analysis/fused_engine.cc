#include "analysis/fused_engine.h"

#include "analysis/stream_engine.h"
#include "trace/partitioned_trace.h"
#include "util/error.h"

namespace mcloud::analysis {

// Both passes are thin wrappers over the streaming cores in
// analysis/stream_engine.h: the resident store is fed as day-partition (or
// whole-trace) blocks, which is exactly what the out-of-core reader does —
// one implementation, two data sources, bit-identical results.

FusedRowPassResult FusedRowPass(const TraceStore& store,
                                UnixSeconds trace_start, int days) {
  MCLOUD_REQUIRE(store.has(kAnalysisColumns),
                 "row pass needs the analysis columns");
  StreamingRowPass pass(store.user_ids(), trace_start, days,
                        store.day_base());
  for (const TraceStore::DayPartition& part : store.day_partitions())
    pass.Consume(part.day, BlockOf(store, part.begin, part.end));
  return pass.TakeResult();
}

FusedPerUserResult FusedPerUserPass(const TraceStore& store, Seconds tau,
                                    ThreadPool& pool) {
  MCLOUD_REQUIRE(store.has(kAnalysisColumns),
                 "per-user pass needs the analysis columns");
  // Mobility pre-pass: two sequential byte/word columns, so it streams at
  // memory speed (the out-of-core path instead collects mobility during its
  // row-pass walk — same table either way).
  constexpr std::uint8_t kPcRaw = static_cast<std::uint8_t>(DeviceType::kPc);
  const auto dev = store.device_types();
  const auto user = store.user_index();
  std::vector<std::uint8_t> mobility(store.users(), 0);
  for (std::size_t row = 0; row < store.rows(); ++row)
    mobility[user[row]] |= dev[row] == kPcRaw ? kPcBit : kMobileBit;

  StreamingPerUserPass pass(store.user_ids(), tau, std::move(mobility));
  pass.Consume(BlockOf(store, 0, store.rows()));
  return pass.Finish(pool);
}

}  // namespace mcloud::analysis
