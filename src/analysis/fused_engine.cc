#include "analysis/fused_engine.h"

#include <algorithm>

#include "util/error.h"
#include "util/timeutil.h"

namespace mcloud::analysis {

namespace {

constexpr std::uint8_t kPcRaw = static_cast<std::uint8_t>(DeviceType::kPc);
constexpr std::uint8_t kAndroidRaw =
    static_cast<std::uint8_t>(DeviceType::kAndroid);
constexpr std::uint8_t kFileOpRaw =
    static_cast<std::uint8_t>(RequestType::kFileOperation);
constexpr std::uint8_t kStoreRaw = static_cast<std::uint8_t>(Direction::kStore);

}  // namespace

FusedRowPassResult FusedRowPass(const TraceStore& store,
                                UnixSeconds trace_start, int days) {
  MCLOUD_REQUIRE(days >= 1, "need at least one day");
  MCLOUD_REQUIRE(store.has(kAnalysisColumns),
                 "row pass needs the analysis columns");
  const auto ts = store.timestamps();
  const auto dev = store.device_types();
  const auto req = store.request_types();
  const auto dir = store.directions();
  const auto vol = store.data_volumes();
  const auto user = store.user_index();

  FusedRowPassResult out;
  auto& hours = out.timeseries.hours;
  hours.resize(static_cast<std::size_t>(days) * 24);
  for (std::size_t i = 0; i < hours.size(); ++i)
    hours[i].hour = static_cast<int>(i);

  // Dense per-user last-file-op state replaces the hash map of
  // InterOpIntervalsFrom; row order keeps the sample identical.
  std::vector<std::int64_t> last_op(store.users(), 0);
  std::vector<std::uint8_t> seen(store.users(), 0);

  const std::int64_t window_begin = trace_start;
  const std::int64_t window_end =
      trace_start + static_cast<std::int64_t>(days) * kDay;

  for (const TraceStore::DayPartition& part : store.day_partitions()) {
    // Day partitions let the hourly binning skip out-of-window days
    // wholesale; the interval sample and overview counts are unwindowed and
    // still visit every row.
    const std::int64_t part_begin = store.day_base() + part.day * kDay;
    const bool in_window =
        part_begin < window_end && part_begin + kDay > window_begin;
    for (std::uint32_t row = part.begin; row < part.end; ++row) {
      if (dev[row] == kPcRaw) continue;
      ++out.mobile_records;
      if (dev[row] == kAndroidRaw) ++out.android_records;

      const bool is_op = req[row] == kFileOpRaw;
      const bool is_store = dir[row] == kStoreRaw;
      if (in_window) {
        const int hour = HourIndex(ts[row], trace_start);
        if (hour >= 0 && hour < static_cast<int>(hours.size())) {
          HourBin& bin = hours[static_cast<std::size_t>(hour)];
          if (is_op) {
            (is_store ? bin.stored_files : bin.retrieved_files)++;
          } else {
            const double gb = static_cast<double>(vol[row]) / 1e9;
            (is_store ? bin.store_volume_gb : bin.retrieve_volume_gb) += gb;
          }
        }
      }
      if (is_op) {
        const std::uint32_t u = user[row];
        if (seen[u]) {
          const auto gap = static_cast<double>(ts[row] - last_op[u]);
          if (gap > 0) out.intervals.push_back(gap);
        }
        seen[u] = 1;
        last_op[u] = ts[row];
      }
    }
  }
  return out;
}

namespace {

/// Open-session state for one user during the fused pass — the columnar
/// twin of Sessionizer::SessionizeRange's OpenSession.
struct SessionCursor {
  Session s;
  std::int64_t last_file_op = 0;
  bool has_file_op = false;
  bool open = false;
};

/// Per-user mobility classes, filled by a cheap pre-pass.
constexpr std::uint8_t kMobileBit = 1;
constexpr std::uint8_t kPcBit = 2;
constexpr std::uint8_t kMixed = kMobileBit | kPcBit;

}  // namespace

FusedPerUserResult FusedPerUserPass(const TraceStore& store, Seconds tau,
                                    ThreadPool& pool) {
  MCLOUD_REQUIRE(store.has(kAnalysisColumns),
                 "per-user pass needs the analysis columns");
  const auto ts = store.timestamps();
  const auto dev = store.device_types();
  const auto dev_id = store.device_ids();
  const auto req = store.request_types();
  const auto dir = store.directions();
  const auto vol = store.data_volumes();
  const auto uid = store.user_ids();
  const auto user = store.user_index();
  const std::size_t n_users = store.users();
  const std::size_t n_rows = store.rows();

  const auto fold = [&](SessionCursor& c, std::vector<Session>& sink,
                        std::uint64_t user_id, std::size_t row, bool is_op,
                        bool is_store, bool mobile_row) {
    const std::int64_t t = ts[row];
    const bool splits = c.open && is_op && c.has_file_op &&
                        static_cast<Seconds>(t - c.last_file_op) > tau;
    if (!c.open || splits) {
      if (c.open) sink.push_back(c.s);
      c.s = Session{};
      c.s.user_id = user_id;
      c.s.begin = c.s.end = c.s.first_op = c.s.last_op = t;
      c.has_file_op = false;
      c.open = true;
    }
    if (is_op) {
      c.last_file_op = t;
      c.has_file_op = true;
    }
    if (t > c.s.end) c.s.end = t;
    if (!mobile_row) c.s.mobile = false;
    if (is_op) {
      c.s.last_op = t;
      if (c.s.FileOps() == 0) c.s.first_op = t;
      (is_store ? c.s.store_ops : c.s.retrieve_ops)++;
    } else {
      ++c.s.chunk_requests;
      (is_store ? c.s.store_volume : c.s.retrieve_volume) += vol[row];
    }
  };

  // Mobility pre-pass: two sequential byte/word columns, so it streams at
  // memory speed. Knowing each user's class up front lets the main pass run
  // the mobile-filtered fold only for mixed users — for mobile-only users
  // the full fold IS the mobile fold, for PC-only users it folds nothing.
  std::vector<std::uint8_t> mobility(n_users, 0);
  for (std::size_t row = 0; row < n_rows; ++row)
    mobility[user[row]] |= dev[row] == kPcRaw ? kPcBit : kMobileBit;

  // Main pass in row (= time) order: every column is read sequentially and
  // the per-user state lives in dense arrays a few MB wide, instead of
  // gathering each user's rows from all over the store. Within one user,
  // row order equals run order, so each cursor sees the exact record
  // sequence SessionizeRange folds.
  std::vector<SessionCursor> cur(n_users);
  std::vector<SessionCursor> mob_cur(n_users);
  std::vector<UserUsage> usage(n_users);
  std::vector<UserUsage> mob_usage(n_users);
  std::vector<std::vector<std::uint64_t>> devs(n_users);
  std::vector<Session> sessions;
  std::vector<Session> mixed_mobile;  // mobile sessions of mixed users only

  for (std::size_t row = 0; row < n_rows; ++row) {
    const std::uint32_t u = user[row];
    const std::uint64_t user_id = uid[u];
    const bool mobile_row = dev[row] != kPcRaw;
    const bool is_op = req[row] == kFileOpRaw;
    const bool is_store = dir[row] == kStoreRaw;

    UserUsage& full = usage[u];
    if (mobile_row) {
      auto& d = devs[u];
      if (std::find(d.begin(), d.end(), dev_id[row]) == d.end())
        d.push_back(dev_id[row]);
    } else {
      full.uses_pc = true;
    }
    if (is_op) {
      (is_store ? full.stored_files : full.retrieved_files)++;
    } else {
      (is_store ? full.store_volume : full.retrieve_volume) += vol[row];
    }
    fold(cur[u], sessions, user_id, row, is_op, is_store, mobile_row);

    if (mobile_row && mobility[u] == kMixed) {
      UserUsage& m = mob_usage[u];
      if (is_op) {
        (is_store ? m.stored_files : m.retrieved_files)++;
      } else {
        (is_store ? m.store_volume : m.retrieve_volume) += vol[row];
      }
      fold(mob_cur[u], mixed_mobile, user_id, row, is_op, is_store,
           /*mobile_row=*/true);
    }
  }

  // Flush open sessions, then restore the canonical (user, begin) order the
  // AoS sessionizer ends with. Per-user session begins strictly increase
  // (a split needs a gap > tau > 0), so the sort keys are unique and the
  // result is independent of the emission order and of std::sort's tie
  // handling.
  for (std::size_t u = 0; u < n_users; ++u) {
    if (cur[u].open) sessions.push_back(cur[u].s);
    if (mob_cur[u].open) mixed_mobile.push_back(mob_cur[u].s);
  }
  cur = {};
  mob_cur = {};
  const auto by_user_begin = [](const Session& a, const Session& b) {
    if (a.user_id != b.user_id) return a.user_id < b.user_id;
    return a.begin < b.begin;
  };
  ParallelInvoke(pool, {
                           [&] {
                             std::sort(sessions.begin(), sessions.end(),
                                       by_user_begin);
                           },
                           [&] {
                             std::sort(mixed_mobile.begin(),
                                       mixed_mobile.end(), by_user_begin);
                           },
                       });

  FusedPerUserResult out;
  out.usage = std::move(usage);
  std::size_t n_mobile_users = 0;
  std::size_t n_device_ids = 0;
  for (std::size_t u = 0; u < n_users; ++u) {
    out.usage[u].user_id = uid[u];
    out.usage[u].mobile_devices = devs[u].size();
    n_device_ids += devs[u].size();
    if (mobility[u] & kMobileBit) ++n_mobile_users;
  }

  // Mobile usage, ascending user order: mobile-only users reuse their full
  // row (all rows mobile, so the filtered counters are identical), mixed
  // users take the separately accumulated mobile counters.
  out.mobile_usage.reserve(n_mobile_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    if (!(mobility[u] & kMobileBit)) continue;
    if (mobility[u] == kMixed) {
      UserUsage m = mob_usage[u];
      m.user_id = uid[u];
      m.mobile_devices = devs[u].size();
      out.mobile_usage.push_back(m);
    } else {
      out.mobile_usage.push_back(out.usage[u]);
    }
  }
  out.mobile_users = n_mobile_users;

  // Mobile sessions: splice per user in ascending order — mobile-only
  // users' slices of the sorted full list (bit-identical, no PC rows) and
  // mixed users' slices of the sorted mixed list.
  std::size_t n_uniform = 0;
  {
    std::size_t u = 0;
    for (const Session& s : sessions) {
      while (uid[u] != s.user_id) ++u;
      if (mobility[u] == kMobileBit) ++n_uniform;
    }
  }
  out.mobile_sessions.reserve(n_uniform + mixed_mobile.size());
  {
    std::size_t i = 0;
    std::size_t j = 0;
    for (std::size_t u = 0; u < n_users; ++u) {
      const std::uint64_t id = uid[u];
      if (mobility[u] == kMobileBit) {
        while (i < sessions.size() && sessions[i].user_id == id)
          out.mobile_sessions.push_back(sessions[i++]);
      } else {
        while (i < sessions.size() && sessions[i].user_id == id) ++i;
        while (j < mixed_mobile.size() && mixed_mobile[j].user_id == id)
          out.mobile_sessions.push_back(mixed_mobile[j++]);
      }
    }
  }
  out.sessions = std::move(sessions);

  // Per-user lists are already deduplicated; a final sort+unique handles
  // devices shared across users.
  std::vector<std::uint64_t> device_ids;
  device_ids.reserve(n_device_ids);
  for (const auto& d : devs) {
    device_ids.insert(device_ids.end(), d.begin(), d.end());
  }
  std::sort(device_ids.begin(), device_ids.end());
  out.mobile_devices = static_cast<std::size_t>(
      std::unique(device_ids.begin(), device_ids.end()) - device_ids.begin());
  return out;
}

}  // namespace mcloud::analysis
