// Average-file-size modeling (§3.1.4, Fig 6, Table 2): fit mixture-
// exponential models to the per-session average file size of store-only and
// retrieve-only sessions, with the paper's model-selection loop and
// chi-square validation.
#pragma once

#include <span>

#include "stats/chi_square.h"
#include "stats/em_exponential.h"

namespace mcloud::analysis {

struct FileSizeModel {
  MixtureSelection selection;     ///< EM fit with the selected n
  ChiSquareResult chi_square;     ///< GoF of the selected model
  bool chi_square_valid = false;  ///< false when the sample is too small
  /// CCDF of the fitted model on a log grid, paired with the empirical CCDF
  /// (the two series of Fig 6).
  std::vector<double> grid_mb;
  std::vector<double> empirical_ccdf;
  std::vector<double> model_ccdf;
};

struct FileSizeModelOptions {
  std::size_t max_components = 6;
  /// Stop threshold for added-component weight. The paper uses α < 0.001;
  /// 0.002 additionally absorbs the boundary-weight phantom component the
  /// synthetic data sometimes admits.
  double weight_floor = 2e-3;
  std::size_t chi_square_bins = 40;
  std::size_t grid_points = 48;
  /// Samples at or above this count are collapsed into `fit_bins` log-spaced
  /// (mean, count) pairs before EM, making every iteration O(bins) instead
  /// of O(n). Chi-square and the CCDF series always use the full sample.
  /// Set to 0 to disable binned fitting.
  std::size_t binned_fit_threshold = 8192;
  std::size_t fit_bins = 2048;
};

/// Fit the full Fig 6 pipeline to per-session average file sizes (MB).
[[nodiscard]] FileSizeModel FitFileSizeModel(
    std::span<const double> avg_sizes_mb,
    const FileSizeModelOptions& options = {});

}  // namespace mcloud::analysis
