// Average-file-size modeling (§3.1.4, Fig 6, Table 2): fit mixture-
// exponential models to the per-session average file size of store-only and
// retrieve-only sessions, with the paper's model-selection loop and
// chi-square validation.
#pragma once

#include <span>

#include "stats/chi_square.h"
#include "stats/em_exponential.h"
#include "stats/tdigest.h"

namespace mcloud::analysis {

struct FileSizeModel {
  MixtureSelection selection;     ///< EM fit with the selected n
  ChiSquareResult chi_square;     ///< GoF of the selected model
  bool chi_square_valid = false;  ///< false when the sample is too small
  /// CCDF of the fitted model on a log grid, paired with the empirical CCDF
  /// (the two series of Fig 6).
  std::vector<double> grid_mb;
  std::vector<double> empirical_ccdf;
  std::vector<double> model_ccdf;
};

struct FileSizeModelOptions {
  std::size_t max_components = 6;
  /// Stop threshold for added-component weight. The paper uses α < 0.001;
  /// 0.002 additionally absorbs the boundary-weight phantom component the
  /// synthetic data sometimes admits.
  double weight_floor = 2e-3;
  std::size_t chi_square_bins = 40;
  std::size_t grid_points = 48;
  /// Samples at or above this count are collapsed into `fit_bins` log-spaced
  /// (mean, count) pairs before EM, making every iteration O(bins) instead
  /// of O(n). Chi-square and the CCDF series always use the full sample.
  /// Set to 0 to disable binned fitting.
  std::size_t binned_fit_threshold = 8192;
  std::size_t fit_bins = 2048;
};

/// Fit the full Fig 6 pipeline to per-session average file sizes (MB).
[[nodiscard]] FileSizeModel FitFileSizeModel(
    std::span<const double> avg_sizes_mb,
    const FileSizeModelOptions& options = {});

/// Fixed geometry of the size sketch: 96 log10 bins per decade over
/// [1e-4 MB, 1e5 MB); out-of-range sizes clamp into the edge bins, whose
/// exact per-bin means keep the EM moments unbiased. EM time is linear in
/// occupied bins, so the resolution is the fit-stage budget knob: 96/decade
/// keeps the grouped KS/AD statistics far inside the check slacks while
/// halving the fit cost of the 192/decade geometry.
[[nodiscard]] inline LogBins MakeSizeSketch() {
  return LogBins(-4.0, 5.0, 9 * 96);
}

/// Sketch-backed variant of the Fig 6 pipeline: the weighted EM consumes the
/// sketch's exact per-bin (mean, count) moments, goodness-of-fit becomes a
/// grouped chi-square over the same bins (each bin's count assigned to the
/// model-quantile interval containing its mean), and the empirical CCDF
/// series is read off the t-digest. Memory and fit time are O(bins), not
/// O(sessions).
[[nodiscard]] FileSizeModel FitFileSizeModel(
    const LogBins& sketch, const TDigest& digest,
    const FileSizeModelOptions& options = {});

}  // namespace mcloud::analysis
