// Temporal workload pattern (§2.4, Fig 1): hourly data volume and file
// counts per direction, plus the diurnal summary the paper discusses
// (evening surge, retrieval volume above storage volume, stored-file count
// about twice the retrieved-file count).
#pragma once

#include <span>
#include <vector>

#include "trace/log_record.h"
#include "util/timeutil.h"

namespace mcloud::analysis {

struct HourBin {
  int hour = 0;                 ///< hour since trace start
  double store_volume_gb = 0;   ///< chunk payload volume (decimal GB)
  double retrieve_volume_gb = 0;
  std::uint64_t stored_files = 0;      ///< file storage operations
  std::uint64_t retrieved_files = 0;   ///< file retrieval operations
};

struct WorkloadTimeseries {
  std::vector<HourBin> hours;

  [[nodiscard]] double TotalStoreGb() const;
  [[nodiscard]] double TotalRetrieveGb() const;
  [[nodiscard]] std::uint64_t TotalStoredFiles() const;
  [[nodiscard]] std::uint64_t TotalRetrievedFiles() const;
  /// Hour-of-day (0..23) with the largest average total volume — the
  /// paper's ~11 PM surge.
  [[nodiscard]] int PeakHourOfDay() const;
};

[[nodiscard]] WorkloadTimeseries BuildTimeseries(
    std::span<const LogRecord> trace, UnixSeconds trace_start = kTraceStart,
    int days = 7);

}  // namespace mcloud::analysis
