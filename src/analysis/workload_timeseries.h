// Temporal workload pattern (§2.4, Fig 1): hourly data volume and file
// counts per direction, plus the diurnal summary the paper discusses
// (evening surge, retrieval volume above storage volume, stored-file count
// about twice the retrieved-file count).
#pragma once

#include <span>
#include <vector>

#include "trace/log_record.h"
#include "util/error.h"
#include "util/timeutil.h"

namespace mcloud::analysis {

struct HourBin {
  int hour = 0;  ///< hour since trace start
  // Volumes are kept as exact integer bytes: integer addition is
  // associative, so partial bins merged across trace slices (the concurrent
  // analyze-while-generate walk) sum to exactly the same totals as one
  // resident pass. Figures read the decimal-GB accessors.
  std::uint64_t store_volume_bytes = 0;  ///< chunk payload volume
  std::uint64_t retrieve_volume_bytes = 0;
  std::uint64_t stored_files = 0;      ///< file storage operations
  std::uint64_t retrieved_files = 0;   ///< file retrieval operations

  [[nodiscard]] double StoreVolumeGb() const {
    return static_cast<double>(store_volume_bytes) / 1e9;
  }
  [[nodiscard]] double RetrieveVolumeGb() const {
    return static_cast<double>(retrieve_volume_bytes) / 1e9;
  }
};

struct WorkloadTimeseries {
  std::vector<HourBin> hours;

  [[nodiscard]] double TotalStoreGb() const;
  [[nodiscard]] double TotalRetrieveGb() const;
  [[nodiscard]] std::uint64_t TotalStoredFiles() const;
  [[nodiscard]] std::uint64_t TotalRetrievedFiles() const;
  /// Hour-of-day (0..23) with the largest average total volume — the
  /// paper's ~11 PM surge.
  [[nodiscard]] int PeakHourOfDay() const;
};

/// Build the hourly series from any forward range of LogRecord — a trace
/// vector/span or an index-based TraceView (no record copies).
template <typename Range>
[[nodiscard]] WorkloadTimeseries BuildTimeseriesFrom(const Range& records,
                                                     UnixSeconds trace_start,
                                                     int days) {
  MCLOUD_REQUIRE(days >= 1, "need at least one day");
  WorkloadTimeseries ts;
  ts.hours.resize(static_cast<std::size_t>(days) * 24);
  for (std::size_t i = 0; i < ts.hours.size(); ++i)
    ts.hours[i].hour = static_cast<int>(i);

  for (const LogRecord& r : records) {
    const int hour = HourIndex(r.timestamp, trace_start);
    if (hour < 0 || hour >= static_cast<int>(ts.hours.size())) continue;
    HourBin& bin = ts.hours[static_cast<std::size_t>(hour)];
    if (r.request_type == RequestType::kFileOperation) {
      (r.direction == Direction::kStore ? bin.stored_files
                                        : bin.retrieved_files)++;
    } else {
      (r.direction == Direction::kStore ? bin.store_volume_bytes
                                        : bin.retrieve_volume_bytes) +=
          r.data_volume;
    }
  }
  return ts;
}

[[nodiscard]] WorkloadTimeseries BuildTimeseries(
    std::span<const LogRecord> trace, UnixSeconds trace_start = kTraceStart,
    int days = 7);

}  // namespace mcloud::analysis
