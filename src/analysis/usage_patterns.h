// Usage-pattern analysis (§3.2.1, Fig 7, Table 3): per-user store/retrieve
// volumes, the volume-ratio CDFs, and the four-class user taxonomy.
#pragma once

#include <algorithm>
#include <array>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/paper_params.h"
#include "trace/log_record.h"

namespace mcloud::analysis {

/// Per-user aggregates over the observation window.
struct UserUsage {
  std::uint64_t user_id = 0;
  Bytes store_volume = 0;
  Bytes retrieve_volume = 0;
  std::uint64_t stored_files = 0;     ///< file storage operations
  std::uint64_t retrieved_files = 0;  ///< file retrieval operations
  std::size_t mobile_devices = 0;
  bool uses_pc = false;

  [[nodiscard]] bool MobileOnly() const {
    return mobile_devices > 0 && !uses_pc;
  }
  [[nodiscard]] bool MobileAndPc() const {
    return mobile_devices > 0 && uses_pc;
  }
  [[nodiscard]] bool PcOnly() const { return mobile_devices == 0 && uses_pc; }

  /// Store/retrieve volume ratio with the paper's conventions: 0 volume on
  /// one side saturates the ratio beyond the classification thresholds.
  [[nodiscard]] double VolumeRatio() const;

  [[nodiscard]] paper::UserClass Classify() const;
};

/// Build per-user usage from any forward range of LogRecord — a trace
/// vector/span or an index-based TraceView (no record copies).
template <typename Range>
[[nodiscard]] std::vector<UserUsage> BuildUserUsageFrom(
    const Range& records) {
  std::unordered_map<std::uint64_t, UserUsage> by_user;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      mobile_devices;

  for (const LogRecord& r : records) {
    UserUsage& u = by_user[r.user_id];
    u.user_id = r.user_id;
    if (r.IsMobile()) {
      mobile_devices[r.user_id].insert(r.device_id);
    } else {
      u.uses_pc = true;
    }
    if (r.request_type == RequestType::kFileOperation) {
      (r.direction == Direction::kStore ? u.stored_files
                                        : u.retrieved_files)++;
    } else {
      (r.direction == Direction::kStore ? u.store_volume
                                        : u.retrieve_volume) += r.data_volume;
    }
  }

  std::vector<UserUsage> out;
  out.reserve(by_user.size());
  for (auto& [id, usage] : by_user) {
    if (const auto it = mobile_devices.find(id); it != mobile_devices.end())
      usage.mobile_devices = it->second.size();
    out.push_back(usage);
  }
  // Canonical ascending-user order: downstream consumers sum in vector
  // order, and the columnar engine emits this order natively — sorting here
  // makes both paths bit-identical (and the result hash-order independent).
  std::sort(out.begin(), out.end(),
            [](const UserUsage& a, const UserUsage& b) {
              return a.user_id < b.user_id;
            });
  return out;
}

/// Build per-user usage from a (mobile + PC) trace.
[[nodiscard]] std::vector<UserUsage> BuildUserUsage(
    std::span<const LogRecord> trace);

/// Device-profile grouping used by Fig 7 / Table 3 columns.
enum class DeviceProfile { kMobileOnly, kMobileAndPc, kPcOnly };

/// Log10 of the volume ratio for users matching `profile` (Fig 7a series);
/// users with zero traffic in both directions are skipped.
[[nodiscard]] std::vector<double> RatioSample(
    std::span<const UserUsage> usage, DeviceProfile profile);

/// Same, restricted to mobile-only users with at least `min_devices`
/// devices (Fig 7b series).
[[nodiscard]] std::vector<double> RatioSampleByDevices(
    std::span<const UserUsage> usage, std::size_t min_devices);

/// One column of Table 3.
struct UserTypeColumn {
  std::size_t users = 0;
  std::array<double, 4> user_share{};      ///< by paper::UserClass order
  std::array<double, 4> store_share{};     ///< share of column store volume
  std::array<double, 4> retrieve_share{};  ///< share of column retrieve vol.
};

/// Table 3: per-class user and volume shares for one device profile.
[[nodiscard]] UserTypeColumn BuildUserTypeColumn(
    std::span<const UserUsage> usage, DeviceProfile profile);

}  // namespace mcloud::analysis
