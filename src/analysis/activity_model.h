// User activity modeling (§3.2.3, Fig 10): rank users by the number of
// stored (retrieved) files, fit the stretched-exponential rank law, and
// compare against the power law the paper rejects.
#pragma once

#include <span>
#include <vector>

#include "analysis/usage_patterns.h"
#include "stats/stretched_exponential.h"

namespace mcloud::analysis {

struct ActivityModelResult {
  StretchedExponentialFit se;    ///< the paper's model
  LinearFit power_law;           ///< log-log comparison fit
  std::size_t active_users = 0;  ///< users with a positive count
  /// Ranked positive activity values, descending (Fig 10's blue series).
  std::vector<double> ranked;
};

/// Fit both models to per-user stored (direction = kStore) or retrieved
/// file counts.
[[nodiscard]] ActivityModelResult FitActivity(
    std::span<const UserUsage> usage, Direction direction);

/// The SE model's predicted rank curve on selected ranks, for printing
/// alongside the data (Fig 10's red dashed line).
[[nodiscard]] std::vector<double> SePredictedCurve(
    const StretchedExponentialFit& fit, std::span<const std::size_t> ranks);

}  // namespace mcloud::analysis
