#include "analysis/stream_engine.h"

#include <algorithm>
#include <utility>

#include "util/error.h"
#include "util/timeutil.h"

namespace mcloud::analysis {

namespace {

constexpr std::uint8_t kPcRaw = static_cast<std::uint8_t>(DeviceType::kPc);
constexpr std::uint8_t kAndroidRaw =
    static_cast<std::uint8_t>(DeviceType::kAndroid);
constexpr std::uint8_t kFileOpRaw =
    static_cast<std::uint8_t>(RequestType::kFileOperation);
constexpr std::uint8_t kStoreRaw = static_cast<std::uint8_t>(Direction::kStore);

}  // namespace

StreamingRowPass::StreamingRowPass(std::span<const std::uint64_t> user_ids,
                                   UnixSeconds trace_start, int days,
                                   UnixSeconds day_base)
    : user_ids_(user_ids),
      day_base_(day_base),
      trace_start_(trace_start),
      window_begin_(trace_start),
      window_end_(trace_start + static_cast<std::int64_t>(days) * kDay),
      last_op_(user_ids.size(), 0),
      seen_(user_ids.size(), 0),
      mobility_(user_ids.size(), 0) {
  MCLOUD_REQUIRE(days >= 1, "need at least one day");
  auto& hours = out_.timeseries.hours;
  hours.resize(static_cast<std::size_t>(days) * 24);
  for (std::size_t i = 0; i < hours.size(); ++i)
    hours[i].hour = static_cast<int>(i);
}

void StreamingRowPass::Consume(std::int64_t day, const TraceRowBlock& block) {
  const auto ts = block.timestamps;
  const auto dev = block.device_types;
  const auto req = block.request_types;
  const auto dir = block.directions;
  const auto vol = block.data_volumes;
  const auto user = block.users;
  auto& hours = out_.timeseries.hours;

  // Day partitions let the hourly binning skip out-of-window days
  // wholesale; the interval sample and overview counts are unwindowed and
  // still visit every row.
  const std::int64_t part_begin = day_base_ + day * kDay;
  const bool in_window =
      part_begin < window_end_ && part_begin + kDay > window_begin_;

  for (std::size_t row = 0; row < block.rows(); ++row) {
    const std::uint32_t u = user[row];
    mobility_[u] |= dev[row] == kPcRaw ? kPcBit : kMobileBit;
    if (dev[row] == kPcRaw) continue;
    ++out_.mobile_records;
    if (dev[row] == kAndroidRaw) ++out_.android_records;

    const bool is_op = req[row] == kFileOpRaw;
    const bool is_store = dir[row] == kStoreRaw;
    if (in_window) {
      const int hour = HourIndex(ts[row], trace_start_);
      if (hour >= 0 && hour < static_cast<int>(hours.size())) {
        HourBin& bin = hours[static_cast<std::size_t>(hour)];
        if (is_op) {
          (is_store ? bin.stored_files : bin.retrieved_files)++;
        } else {
          (is_store ? bin.store_volume_bytes : bin.retrieve_volume_bytes) +=
              vol[row];
        }
      }
    }
    if (is_op) {
      if (seen_[u]) {
        const auto gap = static_cast<double>(ts[row] - last_op_[u]);
        if (gap > 0) {
          AddIntervalToSketch(out_.intervals, user_ids_[u],
                              static_cast<std::uint64_t>(ts[row]), gap);
        }
      }
      seen_[u] = 1;
      last_op_[u] = ts[row];
    }
  }
}

FusedRowPassResult StreamingRowPass::TakeResult() { return std::move(out_); }

std::vector<std::uint8_t> StreamingRowPass::TakeMobility() {
  return std::move(mobility_);
}

StreamingPerUserPass::StreamingPerUserPass(
    std::span<const std::uint64_t> user_ids, Seconds tau,
    std::vector<std::uint8_t> mobility)
    : user_ids_(user_ids),
      tau_(tau),
      mobility_(std::move(mobility)),
      cur_(user_ids.size()),
      mob_cur_(user_ids.size()),
      usage_(user_ids.size()),
      mob_usage_(user_ids.size()),
      devs_(user_ids.size()) {
  MCLOUD_REQUIRE(mobility_.size() == user_ids_.size(),
                 "mobility table size mismatch");
}

StreamingPerUserPass::StreamingPerUserPass(
    std::span<const std::uint64_t> user_ids, Seconds tau)
    : user_ids_(user_ids),
      tau_(tau),
      inline_mobility_(true),
      mobility_(user_ids.size(), 0),
      cur_(user_ids.size()),
      mob_cur_(user_ids.size()),
      usage_(user_ids.size()),
      mob_usage_(user_ids.size()),
      devs_(user_ids.size()) {}

void StreamingPerUserPass::Fold(SessionCursor& c, std::vector<Session>& sink,
                                std::uint64_t user_id, std::int64_t t,
                                bool is_op, bool is_store, bool mobile_row,
                                std::uint64_t volume) {
  const bool splits = c.open && is_op && c.has_file_op &&
                      static_cast<Seconds>(t - c.last_file_op) > tau_;
  if (!c.open || splits) {
    if (c.open) sink.push_back(c.s);
    c.s = Session{};
    c.s.user_id = user_id;
    c.s.begin = c.s.end = c.s.first_op = c.s.last_op = t;
    c.has_file_op = false;
    c.open = true;
  }
  if (is_op) {
    c.last_file_op = t;
    c.has_file_op = true;
  }
  if (t > c.s.end) c.s.end = t;
  if (!mobile_row) c.s.mobile = false;
  if (is_op) {
    c.s.last_op = t;
    if (c.s.FileOps() == 0) c.s.first_op = t;
    (is_store ? c.s.store_ops : c.s.retrieve_ops)++;
  } else {
    ++c.s.chunk_requests;
    (is_store ? c.s.store_volume : c.s.retrieve_volume) += volume;
  }
}

void StreamingPerUserPass::Consume(const TraceRowBlock& block) {
  const auto ts = block.timestamps;
  const auto dev = block.device_types;
  const auto dev_id = block.device_ids;
  const auto req = block.request_types;
  const auto dir = block.directions;
  const auto vol = block.data_volumes;

  // Row (= time) order: every column is read sequentially and the per-user
  // state lives in dense arrays, instead of gathering each user's rows from
  // all over the store. Within one user, row order equals run order, so
  // each cursor sees the exact record sequence SessionizeRange folds.
  for (std::size_t row = 0; row < block.rows(); ++row) {
    const std::uint32_t u = block.users[row];
    const std::uint64_t user_id = user_ids_[u];
    const bool mobile_row = dev[row] != kPcRaw;
    const bool is_op = req[row] == kFileOpRaw;
    const bool is_store = dir[row] == kStoreRaw;
    if (inline_mobility_)
      mobility_[u] |= mobile_row ? kMobileBit : kPcBit;

    UserUsage& full = usage_[u];
    if (mobile_row) {
      auto& d = devs_[u];
      if (std::find(d.begin(), d.end(), dev_id[row]) == d.end())
        d.push_back(dev_id[row]);
    } else {
      full.uses_pc = true;
    }
    if (is_op) {
      (is_store ? full.stored_files : full.retrieved_files)++;
    } else {
      (is_store ? full.store_volume : full.retrieve_volume) += vol[row];
    }
    Fold(cur_[u], sessions_, user_id, ts[row], is_op, is_store, mobile_row,
         vol[row]);

    // Knowing each user's class up front lets the mobile-filtered fold run
    // only for mixed users — for mobile-only users the full fold IS the
    // mobile fold, for PC-only users it folds nothing. Inline-mobility mode
    // cannot know the class yet, so it folds every user's mobile rows and
    // discards the mobile-only users' speculative results at Finish.
    if (mobile_row &&
        (inline_mobility_ || mobility_[u] == kMixedMobility)) {
      UserUsage& m = mob_usage_[u];
      if (is_op) {
        (is_store ? m.stored_files : m.retrieved_files)++;
      } else {
        (is_store ? m.store_volume : m.retrieve_volume) += vol[row];
      }
      Fold(mob_cur_[u], mixed_mobile_, user_id, ts[row], is_op, is_store,
           /*mobile_row=*/true, vol[row]);
    }
  }
}

FusedPerUserResult StreamingPerUserPass::Finish(ThreadPool& pool) {
  const std::size_t n_users = user_ids_.size();
  const auto uid = user_ids_;

  // Flush open sessions, then restore the canonical (user, begin) order the
  // AoS sessionizer ends with. Per-user session begins strictly increase
  // (a split needs a gap > tau > 0), so the sort keys are unique and the
  // result is independent of the emission order and of std::sort's tie
  // handling.
  for (std::size_t u = 0; u < n_users; ++u) {
    if (cur_[u].open) sessions_.push_back(cur_[u].s);
    if (mob_cur_[u].open) mixed_mobile_.push_back(mob_cur_[u].s);
  }
  cur_ = {};
  mob_cur_ = {};
  const auto by_user_begin = [](const Session& a, const Session& b) {
    if (a.user_id != b.user_id) return a.user_id < b.user_id;
    return a.begin < b.begin;
  };
  ParallelInvoke(pool, {
                          [&] {
                            std::sort(sessions_.begin(), sessions_.end(),
                                      by_user_begin);
                          },
                          [&] {
                            std::sort(mixed_mobile_.begin(),
                                      mixed_mobile_.end(), by_user_begin);
                          },
                      });

  FusedPerUserResult out;
  out.usage = std::move(usage_);
  std::size_t n_mobile_users = 0;
  std::size_t n_device_ids = 0;
  for (std::size_t u = 0; u < n_users; ++u) {
    out.usage[u].user_id = uid[u];
    out.usage[u].mobile_devices = devs_[u].size();
    n_device_ids += devs_[u].size();
    if (mobility_[u] & kMobileBit) ++n_mobile_users;
  }

  // Mobile usage, ascending user order: mobile-only users reuse their full
  // row (all rows mobile, so the filtered counters are identical), mixed
  // users take the separately accumulated mobile counters.
  out.mobile_usage.reserve(n_mobile_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    if (!(mobility_[u] & kMobileBit)) continue;
    if (mobility_[u] == kMixedMobility) {
      UserUsage m = mob_usage_[u];
      m.user_id = uid[u];
      m.mobile_devices = devs_[u].size();
      out.mobile_usage.push_back(m);
    } else {
      out.mobile_usage.push_back(out.usage[u]);
    }
  }
  out.mobile_users = n_mobile_users;

  // Mobile sessions: splice per user in ascending order — mobile-only
  // users' slices of the sorted full list (bit-identical, no PC rows) and
  // mixed users' slices of the sorted mixed list.
  std::size_t n_uniform = 0;
  {
    std::size_t u = 0;
    for (const Session& s : sessions_) {
      while (uid[u] != s.user_id) ++u;
      if (mobility_[u] == kMobileBit) ++n_uniform;
    }
  }
  out.mobile_sessions.reserve(n_uniform + mixed_mobile_.size());
  {
    std::size_t i = 0;
    std::size_t j = 0;
    for (std::size_t u = 0; u < n_users; ++u) {
      const std::uint64_t id = uid[u];
      if (mobility_[u] == kMobileBit) {
        while (i < sessions_.size() && sessions_[i].user_id == id)
          out.mobile_sessions.push_back(sessions_[i++]);
        // Inline-mobility mode speculatively folded this mobile-only user
        // into the mixed list too; the full-list slice above is the
        // canonical copy, so drop the duplicates.
        while (j < mixed_mobile_.size() && mixed_mobile_[j].user_id == id)
          ++j;
      } else {
        while (i < sessions_.size() && sessions_[i].user_id == id) ++i;
        while (j < mixed_mobile_.size() && mixed_mobile_[j].user_id == id)
          out.mobile_sessions.push_back(mixed_mobile_[j++]);
      }
    }
  }
  out.sessions = std::move(sessions_);

  // Per-user lists are already deduplicated; a final sort+unique handles
  // devices shared across users.
  std::vector<std::uint64_t> device_ids;
  device_ids.reserve(n_device_ids);
  for (const auto& d : devs_) {
    device_ids.insert(device_ids.end(), d.begin(), d.end());
  }
  std::sort(device_ids.begin(), device_ids.end());
  device_ids.erase(std::unique(device_ids.begin(), device_ids.end()),
                   device_ids.end());
  out.mobile_devices = device_ids.size();
  out.mobile_device_ids = std::move(device_ids);
  return out;
}

}  // namespace mcloud::analysis
