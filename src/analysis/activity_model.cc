#include "analysis/activity_model.h"

#include <algorithm>

namespace mcloud::analysis {

ActivityModelResult FitActivity(std::span<const UserUsage> usage,
                                Direction direction) {
  std::vector<double> counts;
  counts.reserve(usage.size());
  for (const UserUsage& u : usage) {
    const auto c = (direction == Direction::kStore) ? u.stored_files
                                                    : u.retrieved_files;
    if (c > 0) counts.push_back(static_cast<double>(c));
  }

  ActivityModelResult result;
  result.active_users = counts.size();
  result.se = FitStretchedExponentialRank(counts);
  result.power_law = FitPowerLawRank(counts);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  result.ranked = std::move(counts);
  return result;
}

std::vector<double> SePredictedCurve(const StretchedExponentialFit& fit,
                                     std::span<const std::size_t> ranks) {
  std::vector<double> out;
  out.reserve(ranks.size());
  for (std::size_t r : ranks)
    out.push_back(StretchedExponentialRankValue(fit, r));
  return out;
}

}  // namespace mcloud::analysis
