// Availability and resilience analysis over fault-injection runs.
//
// Consumes a ServiceResult produced under a FaultConfig and summarizes what
// the paper's completed-requests-only dataset cannot show: how often
// sessions fail end-to-end, how much of the offered load became goodput,
// how many extra bytes and attempts the retry policy cost, and where the
// chunk-latency tail lands once degraded servers and retries are in play.
#pragma once

#include <string>
#include <vector>

#include "cloud/storage_service.h"

namespace mcloud::analysis {

struct AvailabilityReport {
  // --- Session availability ---------------------------------------------
  std::uint64_t sessions = 0;
  std::uint64_t failed_sessions = 0;
  double session_success_rate = 1.0;  ///< sessions with every op delivered
  std::uint64_t ops = 0;
  std::uint64_t failed_ops = 0;
  double op_success_rate = 1.0;

  // --- Goodput vs offered load ------------------------------------------
  Bytes offered_bytes = 0;   ///< goodput + wasted (all bytes put on the wire)
  Bytes goodput_bytes = 0;   ///< bytes of chunks that were delivered
  Bytes wasted_bytes = 0;    ///< bytes of failed attempts
  double goodput_fraction = 1.0;  ///< goodput / offered

  // --- Retry amplification ----------------------------------------------
  std::uint64_t chunk_attempts = 0;
  std::uint64_t chunks_delivered = 0;
  /// attempts per delivered chunk (1.0 = no retries ever needed).
  double retry_amplification = 1.0;
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t resume_skipped_chunks = 0;

  // --- Chunk latency (successful chunks, transfer time) ------------------
  double chunk_ttran_p50 = 0;
  double chunk_ttran_p99 = 0;
};

/// Build the availability report for one Execute() run.
[[nodiscard]] AvailabilityReport Availability(
    const cloud::ServiceResult& result);

/// Session success rate bucketed by device type, in DeviceType enum order
/// (android, ios, pc). Buckets with no sessions report 1.0.
[[nodiscard]] std::vector<double> SuccessRateByDevice(
    const cloud::ServiceResult& result);

/// Human-readable one-block rendering (mcloudctl `simulate` output).
[[nodiscard]] std::string RenderAvailability(const AvailabilityReport& r);

}  // namespace mcloud::analysis
