#include "analysis/burstiness.h"

namespace mcloud::analysis {

std::vector<BurstinessGroup> NormalizedOperatingTimes(
    std::span<const Session> sessions,
    std::span<const std::size_t> group_mins) {
  std::vector<BurstinessGroup> groups;
  groups.reserve(group_mins.size());
  for (std::size_t m : group_mins)
    groups.push_back(BurstinessGroup{m, {}});

  for (const Session& s : sessions) {
    const std::size_t ops = s.FileOps();
    const Seconds length = s.Length();
    if (length <= 0) continue;
    const double normalized = s.OperatingTime() / length;
    for (auto& g : groups) {
      if (ops > g.min_ops_exclusive) g.normalized_times.push_back(normalized);
    }
  }
  return groups;
}

double FractionBelow(const BurstinessGroup& group, double bound) {
  if (group.normalized_times.empty()) return 0;
  std::size_t below = 0;
  for (double v : group.normalized_times) {
    if (v < bound) ++below;
  }
  return static_cast<double>(below) /
         static_cast<double>(group.normalized_times.size());
}

}  // namespace mcloud::analysis
