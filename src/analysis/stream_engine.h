// Streaming (partition-at-a-time) analysis cores.
//
// These two classes are the fused engine's row-order walks (see
// analysis/fused_engine.h) factored into incremental consumers of
// TraceRowBlock slices. Per-user state lives in dense arrays keyed by the
// *global* uint32 user remap and survives across blocks and calendar-day
// partitions, so feeding the blocks of an out-of-core PartitionedTrace::Scan
// produces bit-identical results to feeding one resident TraceStore whole —
// the resident FusedRowPass/FusedPerUserPass are now thin wrappers that do
// exactly that. The only requirement is that blocks arrive in global row
// (= time) order, which both sources guarantee.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/fused_engine.h"
#include "analysis/sessionizer.h"
#include "analysis/usage_patterns.h"
#include "trace/partitioned_trace.h"
#include "util/parallel.h"

namespace mcloud::analysis {

/// Per-user mobility classes, accumulated as rows stream by.
inline constexpr std::uint8_t kMobileBit = 1;
inline constexpr std::uint8_t kPcBit = 2;
inline constexpr std::uint8_t kMixedMobility = kMobileBit | kPcBit;

/// Walk 1: hourly series, inter-op interval sample, overview counts — and,
/// as a free by-product, each user's mobility class (the out-of-core path
/// cannot afford the resident engine's dedicated mobility pre-pass, so this
/// walk collects it for walk 2).
class StreamingRowPass {
 public:
  /// `user_ids` maps global dense index -> original id (the interval
  /// sketch's jitter is keyed by original user ids so every engine and
  /// slicing computes identical jitter) and must outlive the pass;
  /// `trace_start`/`days` bound the Fig 1 hourly window; `day_base` anchors
  /// the calendar-day keys passed to Consume (same epoch as the trace).
  StreamingRowPass(std::span<const std::uint64_t> user_ids,
                   UnixSeconds trace_start, int days, UnixSeconds day_base);

  /// Feed the next block. All rows must be in calendar day `day`, and
  /// blocks must arrive in global time order.
  void Consume(std::int64_t day, const TraceRowBlock& block);

  /// The fused row-pass result (call once, after the last block).
  [[nodiscard]] FusedRowPassResult TakeResult();
  /// Per-user mobility classes (kMobileBit/kPcBit), for StreamingPerUserPass.
  [[nodiscard]] std::vector<std::uint8_t> TakeMobility();

 private:
  std::span<const std::uint64_t> user_ids_;
  UnixSeconds day_base_;
  UnixSeconds trace_start_;
  std::int64_t window_begin_;
  std::int64_t window_end_;
  FusedRowPassResult out_;
  std::vector<std::int64_t> last_op_;
  std::vector<std::uint8_t> seen_;
  std::vector<std::uint8_t> mobility_;
};

/// Walk 2: both sessionizations (full trace and mobile slice), both
/// per-user usage tables, distinct-device counts. Needs the session gap
/// threshold `tau` — fitted from walk 1's interval sample — and the
/// mobility classes, so it necessarily runs as a second pass.
class StreamingPerUserPass {
 public:
  /// `user_ids` maps global dense index -> original id and must outlive the
  /// pass; `mobility` is TakeMobility()'s output (or any per-user class
  /// table of the same semantics).
  StreamingPerUserPass(std::span<const std::uint64_t> user_ids, Seconds tau,
                       std::vector<std::uint8_t> mobility);

  /// Inline-mobility mode for single-walk pipelines that have no mobility
  /// table yet: the pass accumulates mobility as rows stream by and runs
  /// the mobile-filtered fold for *every* user's mobile rows. At Finish the
  /// classes are known, and the speculative mobile results of users that
  /// turned out mobile-only are discarded (their full fold IS the mobile
  /// fold), producing output identical to the two-walk form.
  StreamingPerUserPass(std::span<const std::uint64_t> user_ids, Seconds tau);

  /// Feed the next block (global time order; day boundaries irrelevant —
  /// sessions span days).
  void Consume(const TraceRowBlock& block);

  /// Flush open sessions, restore canonical (user, begin) order, assemble
  /// the result. Call once, after the last block.
  [[nodiscard]] FusedPerUserResult Finish(ThreadPool& pool);

 private:
  /// Open-session state for one user — the columnar twin of
  /// Sessionizer::SessionizeRange's OpenSession.
  struct SessionCursor {
    Session s;
    std::int64_t last_file_op = 0;
    bool has_file_op = false;
    bool open = false;
  };

  void Fold(SessionCursor& c, std::vector<Session>& sink,
            std::uint64_t user_id, std::int64_t t, bool is_op, bool is_store,
            bool mobile_row, std::uint64_t volume);

  std::span<const std::uint64_t> user_ids_;
  Seconds tau_;
  bool inline_mobility_ = false;
  std::vector<std::uint8_t> mobility_;
  std::vector<SessionCursor> cur_;
  std::vector<SessionCursor> mob_cur_;
  std::vector<UserUsage> usage_;
  std::vector<UserUsage> mob_usage_;
  std::vector<std::vector<std::uint64_t>> devs_;
  std::vector<Session> sessions_;
  std::vector<Session> mixed_mobile_;  ///< mobile sessions of mixed users
};

}  // namespace mcloud::analysis
