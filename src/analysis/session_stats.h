// Session-level statistics (§3.1.1, §3.1.3, §3.1.4): type split, size
// distributions versus file-operation count, and per-session average file
// size samples for the Table 2 mixture fits.
#pragma once

#include <span>
#include <vector>

#include "analysis/sessionizer.h"

namespace mcloud::analysis {

struct SessionTypeSplit {
  std::size_t total = 0;
  std::size_t store_only = 0;
  std::size_t retrieve_only = 0;
  std::size_t mixed = 0;

  [[nodiscard]] double StoreShare() const {
    return total ? static_cast<double>(store_only) / total : 0;
  }
  [[nodiscard]] double RetrieveShare() const {
    return total ? static_cast<double>(retrieve_only) / total : 0;
  }
  [[nodiscard]] double MixedShare() const {
    return total ? static_cast<double>(mixed) / total : 0;
  }
};

[[nodiscard]] SessionTypeSplit ClassifySessions(
    std::span<const Session> sessions);

/// One bin of Fig 5b/5c: sessions grouped by file-operation count.
struct SessionSizeBin {
  std::size_t file_ops = 0;     ///< the bin key
  std::size_t sessions = 0;
  double avg_mb = 0;
  double median_mb = 0;
  double p25_mb = 0;
  double p75_mb = 0;
};

/// Volume-vs-op-count bins for sessions of one type, up to `max_ops` file
/// operations (the paper plots 1..100).
[[nodiscard]] std::vector<SessionSizeBin> SessionSizeByOpCount(
    std::span<const Session> sessions, Session::Type type,
    std::size_t max_ops = 100);

/// File-operation counts of sessions of one type (Fig 5a's CDF sample).
[[nodiscard]] std::vector<double> OpCountSample(
    std::span<const Session> sessions, Session::Type type);

/// Per-session average file size (MB) for sessions of one type — the sample
/// that Table 2's mixture-exponential models describe. Sessions with zero
/// transferred volume are skipped.
[[nodiscard]] std::vector<double> AvgFileSizeSample(
    std::span<const Session> sessions, Session::Type type);

}  // namespace mcloud::analysis
