// Data-transmission performance analysis (§4, Fig 12–16).
//
// Two input sources, mirroring the paper's methodology:
//   * HTTP request logs (Table 1 fields) — chunk transfer times, RTTs, and
//     the sending-window estimate swnd = reqsize·RTT/t_tran (Fig 12/14/15).
//     Proxied requests are excluded, as in the paper.
//   * Per-chunk performance samples from the service simulator (the
//     packet-trace stand-in) — T_srv/T_clt dissection and idle/RTO ratios
//     (Fig 16).
#pragma once

#include <span>
#include <vector>

#include "cloud/storage_service.h"
#include "trace/log_record.h"

namespace mcloud::analysis {

/// t_tran = T_chunk − T_srv samples (seconds) for chunk requests of one
/// device type and direction, proxied requests excluded.
[[nodiscard]] std::vector<double> ChunkTransferTimes(
    std::span<const LogRecord> trace, DeviceType device, Direction direction);

/// Per-chunk-request average RTT samples (seconds), unproxied mobile chunk
/// requests (Fig 14).
[[nodiscard]] std::vector<double> RttSamples(std::span<const LogRecord> trace);

/// Estimated average sending window swnd = reqsize·RTT/t_tran (bytes) of
/// storage chunk requests (Fig 15). Requests with degenerate timing are
/// skipped.
[[nodiscard]] std::vector<double> SendingWindowEstimates(
    std::span<const LogRecord> trace);

// --- ChunkPerf-based dissection (Fig 16) ---------------------------------

[[nodiscard]] std::vector<double> TcltSamples(
    std::span<const cloud::ChunkPerf> perf, DeviceType device,
    Direction direction);

[[nodiscard]] std::vector<double> TsrvSamples(
    std::span<const cloud::ChunkPerf> perf, DeviceType device,
    Direction direction);

/// idle/RTO ratios for inter-chunk gaps (first chunks of a connection,
/// which have no preceding gap, are excluded) — Fig 16c's x-axis.
[[nodiscard]] std::vector<double> IdleToRtoRatios(
    std::span<const cloud::ChunkPerf> perf, DeviceType device,
    Direction direction);

/// Fraction of inter-chunk gaps that exceeded the RTO and restarted slow
/// start (the paper's 60% Android vs 18% iOS headline).
[[nodiscard]] double SlowStartRestartShare(
    std::span<const cloud::ChunkPerf> perf, DeviceType device,
    Direction direction);

/// Transfer-time samples straight from ChunkPerf (used when the §4 benches
/// bypass log round-tripping).
[[nodiscard]] std::vector<double> PerfTransferTimes(
    std::span<const cloud::ChunkPerf> perf, DeviceType device,
    Direction direction);

}  // namespace mcloud::analysis
