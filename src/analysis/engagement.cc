#include "analysis/engagement.h"

#include <unordered_map>

#include "util/error.h"
#include "util/timeutil.h"

namespace mcloud::analysis {
namespace {

bool InGroup(const UserUsage& u, EngagementGroup g) {
  switch (g) {
    case EngagementGroup::kOneDevice:
      return u.MobileOnly() && u.mobile_devices == 1;
    case EngagementGroup::kMultiDevice:
      return u.MobileOnly() && u.mobile_devices > 1;
    case EngagementGroup::kThreePlusDevice:
      return u.MobileOnly() && u.mobile_devices > 2;
    case EngagementGroup::kMobileAndPc:
      return u.MobileAndPc();
  }
  throw Error("invalid EngagementGroup");
}

}  // namespace

std::string_view ToString(EngagementGroup g) {
  switch (g) {
    case EngagementGroup::kOneDevice:
      return "1 mobile dev";
    case EngagementGroup::kMultiDevice:
      return ">1 mobile dev";
    case EngagementGroup::kThreePlusDevice:
      return ">2 mobile dev";
    case EngagementGroup::kMobileAndPc:
      return "mobile & PC";
  }
  throw Error("invalid EngagementGroup");
}

std::vector<EngagementCurve> ReturnCurves(std::span<const Session> sessions,
                                          std::span<const UserUsage> usage,
                                          UnixSeconds trace_start, int days) {
  MCLOUD_REQUIRE(days >= 2, "need at least two days");

  // Per-user bitmap of active days.
  std::unordered_map<std::uint64_t, std::uint32_t> active_days;
  for (const Session& s : sessions) {
    const int day = DayIndex(s.begin, trace_start);
    if (day >= 0 && day < days)
      active_days[s.user_id] |= (1u << day);
  }

  std::vector<EngagementCurve> out;
  for (EngagementGroup g : kEngagementGroups) {
    EngagementCurve curve;
    curve.group = g;
    curve.active_on_day.assign(static_cast<std::size_t>(days) - 1, 0.0);
    std::size_t never = 0;

    for (const UserUsage& u : usage) {
      if (!InGroup(u, g)) continue;
      const auto it = active_days.find(u.user_id);
      if (it == active_days.end() || !(it->second & 1u)) continue;
      ++curve.day1_users;
      bool returned = false;
      for (int d = 1; d < days; ++d) {
        if (it->second & (1u << d)) {
          curve.active_on_day[static_cast<std::size_t>(d) - 1] += 1.0;
          returned = true;
        }
      }
      if (!returned) ++never;
    }
    if (curve.day1_users > 0) {
      for (auto& v : curve.active_on_day)
        v /= static_cast<double>(curve.day1_users);
      curve.never_returned =
          static_cast<double>(never) / static_cast<double>(curve.day1_users);
    }
    out.push_back(std::move(curve));
  }
  return out;
}

std::vector<RetrievalReturnCurve> RetrievalReturns(
    std::span<const Session> sessions, std::span<const UserUsage> usage,
    UnixSeconds trace_start, int days) {
  MCLOUD_REQUIRE(days >= 1, "need at least one day");

  // For each user: did they upload on day 0, and what is the day of the
  // first retrieval session at or after that upload?
  struct UploaderState {
    bool uploaded_day1 = false;
    UnixSeconds first_upload = 0;
    int first_retrieval_day = -1;  // relative to trace start
  };
  std::unordered_map<std::uint64_t, UploaderState> state;

  for (const Session& s : sessions) {
    const int day = DayIndex(s.begin, trace_start);
    if (day < 0 || day >= days) continue;
    auto& st = state[s.user_id];
    if (day == 0 && s.store_ops > 0 && !st.uploaded_day1) {
      st.uploaded_day1 = true;
      st.first_upload = s.begin;
    }
    // Any retrieval session after the first-day upload counts toward the
    // upper bound (the dataset cannot link retrievals to specific files).
    if (s.retrieve_ops > 0 && st.uploaded_day1 &&
        s.begin >= st.first_upload && st.first_retrieval_day < 0) {
      st.first_retrieval_day = day;
    }
  }

  std::vector<RetrievalReturnCurve> out;
  for (EngagementGroup g : kEngagementGroups) {
    RetrievalReturnCurve curve;
    curve.group = g;
    curve.retrieved_by_day.assign(static_cast<std::size_t>(days), 0.0);

    for (const UserUsage& u : usage) {
      if (!InGroup(u, g)) continue;
      const auto it = state.find(u.user_id);
      if (it == state.end() || !it->second.uploaded_day1) continue;
      ++curve.day1_uploaders;
      const int rd = it->second.first_retrieval_day;
      if (rd >= 0) {
        for (int d = rd; d < days; ++d)
          curve.retrieved_by_day[static_cast<std::size_t>(d)] += 1.0;
      }
    }
    if (curve.day1_uploaders > 0) {
      for (auto& v : curve.retrieved_by_day)
        v /= static_cast<double>(curve.day1_uploaders);
      curve.never_retrieved = 1.0 - curve.retrieved_by_day.back();
    }
    out.push_back(std::move(curve));
  }
  return out;
}

}  // namespace mcloud::analysis
