#include "analysis/availability.h"

#include <algorithm>
#include <sstream>

#include "util/summary.h"

namespace mcloud::analysis {

AvailabilityReport Availability(const cloud::ServiceResult& result) {
  const cloud::FaultStats& f = result.faults;
  AvailabilityReport r;

  r.sessions = f.sessions;
  r.failed_sessions = f.failed_sessions;
  r.session_success_rate =
      f.sessions > 0 ? 1.0 - static_cast<double>(f.failed_sessions) /
                                 static_cast<double>(f.sessions)
                     : 1.0;
  r.ops = f.ops;
  r.failed_ops = f.failed_ops;
  r.op_success_rate =
      f.ops > 0 ? 1.0 - static_cast<double>(f.failed_ops) /
                            static_cast<double>(f.ops)
                : 1.0;

  // On a fault-free run the service does not track goodput explicitly —
  // every chunk delivered is goodput, so reconstruct it from the samples.
  r.goodput_bytes = f.goodput_bytes;
  if (f.goodput_bytes == 0 && f.wasted_bytes == 0)
    for (const cloud::ChunkPerf& p : result.chunk_perf)
      r.goodput_bytes += p.bytes;
  r.wasted_bytes = f.wasted_bytes;
  r.offered_bytes = r.goodput_bytes + r.wasted_bytes;
  r.goodput_fraction =
      r.offered_bytes > 0 ? static_cast<double>(r.goodput_bytes) /
                                static_cast<double>(r.offered_bytes)
                          : 1.0;

  r.chunks_delivered = result.chunk_perf.size();
  r.chunk_attempts =
      f.chunk_attempts > 0 ? f.chunk_attempts : r.chunks_delivered;
  r.retry_amplification =
      r.chunks_delivered > 0 ? static_cast<double>(r.chunk_attempts) /
                                   static_cast<double>(r.chunks_delivered)
                             : 1.0;
  r.retries = f.retries;
  r.failovers = f.failovers;
  r.hedges_issued = f.hedges_issued;
  r.hedge_wins = f.hedge_wins;
  r.resume_skipped_chunks = f.resume_skipped_chunks;

  std::vector<double> ttran;
  ttran.reserve(result.chunk_perf.size());
  for (const cloud::ChunkPerf& p : result.chunk_perf) ttran.push_back(p.ttran);
  if (!ttran.empty()) {
    std::sort(ttran.begin(), ttran.end());
    r.chunk_ttran_p50 = Percentile(ttran, 50.0);
    r.chunk_ttran_p99 = Percentile(ttran, 99.0);
  }
  return r;
}

std::vector<double> SuccessRateByDevice(const cloud::ServiceResult& result) {
  std::vector<std::uint64_t> total(3, 0), failed(3, 0);
  for (const cloud::SessionOutcome& s : result.session_outcomes) {
    const auto d = static_cast<std::size_t>(s.device);
    if (d >= total.size()) continue;
    ++total[d];
    if (!s.Success()) ++failed[d];
  }
  std::vector<double> rates(3, 1.0);
  for (std::size_t d = 0; d < rates.size(); ++d)
    if (total[d] > 0)
      rates[d] = 1.0 - static_cast<double>(failed[d]) /
                           static_cast<double>(total[d]);
  return rates;
}

std::string RenderAvailability(const AvailabilityReport& r) {
  std::ostringstream os;
  os << "availability:\n"
     << "  sessions            " << r.sessions << " (" << r.failed_sessions
     << " failed, success rate " << r.session_success_rate << ")\n"
     << "  operations          " << r.ops << " (" << r.failed_ops
     << " failed, success rate " << r.op_success_rate << ")\n"
     << "  goodput             " << ToMB(r.goodput_bytes) << " MB of "
     << ToMB(r.offered_bytes) << " MB offered (fraction "
     << r.goodput_fraction << ", " << ToMB(r.wasted_bytes) << " MB wasted)\n"
     << "  retry amplification " << r.retry_amplification << " ("
     << r.chunk_attempts << " attempts / " << r.chunks_delivered
     << " delivered, " << r.retries << " retry rounds)\n"
     << "  failovers           " << r.failovers << ", hedges "
     << r.hedges_issued << " (" << r.hedge_wins << " wins), resume skipped "
     << r.resume_skipped_chunks << " chunks\n"
     << "  chunk t_tran        p50 " << r.chunk_ttran_p50 << " s, p99 "
     << r.chunk_ttran_p99 << " s\n";
  return os.str();
}

}  // namespace mcloud::analysis
