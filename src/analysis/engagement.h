// User engagement (§3.2.2, Fig 8 and Fig 9): of the users active on the
// first observation day, who comes back, when, and do uploaders ever return
// to retrieve what they stored?
#pragma once

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "analysis/sessionizer.h"
#include "analysis/usage_patterns.h"

namespace mcloud::analysis {

/// User grouping of Fig 8/9: mobile-only by device count, and mobile&PC.
enum class EngagementGroup {
  kOneDevice,        ///< mobile-only, exactly 1 device
  kMultiDevice,      ///< mobile-only, > 1 device
  kThreePlusDevice,  ///< mobile-only, > 2 devices
  kMobileAndPc,
};
inline constexpr std::array<EngagementGroup, 4> kEngagementGroups = {
    EngagementGroup::kOneDevice, EngagementGroup::kMultiDevice,
    EngagementGroup::kThreePlusDevice, EngagementGroup::kMobileAndPc};

[[nodiscard]] std::string_view ToString(EngagementGroup g);

struct EngagementCurve {
  EngagementGroup group{};
  std::size_t day1_users = 0;        ///< users active on the first day
  /// index d (1-based days after the first day, 1..days-1): fraction of
  /// day-1 users with any session on that day (Fig 8's bars).
  std::vector<double> active_on_day;
  double never_returned = 0;         ///< Fig 8's ">6" bar
};

/// Fig 8: per-group return curves. `days` is the observation length.
[[nodiscard]] std::vector<EngagementCurve> ReturnCurves(
    std::span<const Session> sessions, std::span<const UserUsage> usage,
    UnixSeconds trace_start, int days = 7);

struct RetrievalReturnCurve {
  EngagementGroup group{};
  std::size_t day1_uploaders = 0;  ///< users with a store session on day 1
  /// index d (0-based days after the first day, 0..days-1): fraction of
  /// day-1 uploaders whose first later retrieval session happens on day d
  /// or earlier — the cumulative upper bound of Fig 9.
  std::vector<double> retrieved_by_day;
  double never_retrieved = 0;
};

/// Fig 9: upper bound on uploaders returning to retrieve, per group.
[[nodiscard]] std::vector<RetrievalReturnCurve> RetrievalReturns(
    std::span<const Session> sessions, std::span<const UserUsage> usage,
    UnixSeconds trace_start, int days = 7);

}  // namespace mcloud::analysis
