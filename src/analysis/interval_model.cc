#include "analysis/interval_model.h"

#include <cmath>

#include "util/rng.h"
#include "util/error.h"

namespace mcloud::analysis {

double MixtureCrossover(const GaussianMixture& mixture) {
  MCLOUD_REQUIRE(mixture.size() == 2, "crossover needs exactly 2 components");
  const auto& lo = mixture.components()[0];
  const auto& hi = mixture.components()[1];
  MCLOUD_REQUIRE(lo.mean < hi.mean, "components must be ordered by mean");

  // Bisection on the responsibility of component 0 between the two means.
  double a = lo.mean;
  double b = hi.mean;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (a + b);
    if (mixture.Responsibility(0, mid) > 0.5) {
      a = mid;
    } else {
      b = mid;
    }
  }
  return 0.5 * (a + b);
}

IntervalModel FitIntervalModel(std::span<const double> intervals_seconds,
                               const IntervalModelOptions& options) {
  MCLOUD_REQUIRE(!intervals_seconds.empty(), "no intervals to model");

  // Log timestamps are quantized to one second (Table 1); de-quantize with
  // uniform jitter before taking logs, or the point mass at exactly 1 s
  // collapses an EM component into a zero-variance singularity.
  Rng rng(0x1f1f1f);
  std::vector<double> log_intervals;
  log_intervals.reserve(intervals_seconds.size());
  for (double s : intervals_seconds) {
    if (s <= 0) continue;
    const double dequantized =
        s >= 1.0 ? std::max(0.5, s + rng.Uniform(-0.5, 0.5)) : s;
    log_intervals.push_back(std::log10(dequantized));
  }
  if (log_intervals.size() < 10)
    throw FitError("too few positive intervals for the Fig 3 pipeline");

  IntervalModel model{
      Histogram(options.log10_min, options.log10_max,
                options.histogram_bins),
      {}, 0, 0, 0, 0};
  for (double x : log_intervals) model.log10_histogram.Add(x);

  // Valley → τ.
  const std::size_t valley = model.log10_histogram.DeepestValley();
  if (valley < model.log10_histogram.bins()) {
    model.valley_tau =
        std::pow(10.0, model.log10_histogram.BinCenter(valley));
  }

  // Two-component GMM over log10 intervals.
  model.gmm = FitGaussianMixture(log_intervals, 2);
  const auto& comps = model.gmm.mixture.components();
  model.intra_mean_seconds = std::pow(10.0, comps[0].mean);
  model.inter_mean_seconds = std::pow(10.0, comps[1].mean);
  model.gmm_tau = std::pow(10.0, MixtureCrossover(model.gmm.mixture));
  return model;
}

IntervalModel FitIntervalModel(const LogBins& sketch,
                               const IntervalModelOptions& options) {
  if (sketch.Total() < 10)
    throw FitError("too few positive intervals for the Fig 3 pipeline");

  IntervalModel model{
      Histogram(options.log10_min, options.log10_max,
                options.histogram_bins),
      {}, 0, 0, 0, 0};

  // Reconstruct the coarse histogram and collect the weighted GMM sample in
  // one pass. The fine geometry nests inside the coarse one, so every fine
  // center maps to exactly one coarse bin (or to underflow below log10_min).
  std::vector<double> centers;
  std::vector<double> weights;
  centers.reserve(sketch.bins());
  weights.reserve(sketch.bins());
  for (std::size_t i = 0; i < sketch.bins(); ++i) {
    const std::uint64_t c = sketch.Count(i);
    if (c == 0) continue;
    const double center = sketch.Log10Center(i);
    model.log10_histogram.Add(center, c);
    centers.push_back(center);
    weights.push_back(static_cast<double>(c));
  }

  const std::size_t valley = model.log10_histogram.DeepestValley();
  if (valley < model.log10_histogram.bins()) {
    model.valley_tau =
        std::pow(10.0, model.log10_histogram.BinCenter(valley));
  }

  model.gmm = FitGaussianMixtureWeighted(centers, weights, 2);
  const auto& comps = model.gmm.mixture.components();
  model.intra_mean_seconds = std::pow(10.0, comps[0].mean);
  model.inter_mean_seconds = std::pow(10.0, comps[1].mean);
  model.gmm_tau = std::pow(10.0, MixtureCrossover(model.gmm.mixture));
  return model;
}

}  // namespace mcloud::analysis
