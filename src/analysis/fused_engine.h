// Fused single-pass analysis over a columnar TraceStore.
//
// The AoS pipeline's first-touch stages — sessionizer, usage_patterns,
// engagement inputs, interval_model sampling, the §2.2 overview counts —
// each re-scan the trace and rediscover per-user structure through
// unordered_map probes on sparse 64-bit user ids. Over a TraceStore those
// collapse into two passes:
//
//   * FusedRowPass — one walk in row (= time) order over the mobile rows,
//     producing the Fig 1 hourly series, the Fig 3 inter-op interval sample
//     (via a dense per-user last-op array instead of a hash map), and the
//     overview's record counts. Row order preserves the AoS floating-point
//     accumulation order exactly.
//   * FusedPerUserPass — a second row-order walk carrying dense per-user
//     cursor arrays (a few MB of hot state instead of per-user row
//     gathers), producing both sessionizations (full trace and mobile
//     slice), both per-user usage tables, and the distinct-device count.
//     Within one user, row order equals run order, so every cursor folds
//     the exact record sequence the AoS sessionizer sees; a final sort by
//     (user, begin) — the same sort the AoS path ends with, over unique
//     keys — restores the canonical order, so downstream consumers receive
//     bit-identical inputs at every thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/interval_model.h"
#include "analysis/sessionizer.h"
#include "analysis/usage_patterns.h"
#include "analysis/workload_timeseries.h"
#include "trace/trace_store.h"
#include "util/parallel.h"

namespace mcloud::analysis {

/// Row-order (time-order) results: Fig 1 series, Fig 3 sketch, §2.2 counts.
struct FusedRowPassResult {
  WorkloadTimeseries timeseries;
  /// Inter-file-operation gaps of mobile users as the jitter-binned log10
  /// sketch — the exact sketch AddInterOpIntervalsToSketch(mobile view)
  /// builds, and mergeable across trace slices (the jitter is a stateless
  /// hash of (user, timestamp) and per-bin sums are integer-exact).
  LogBins intervals = MakeIntervalSketch();
  std::size_t mobile_records = 0;
  std::size_t android_records = 0;
};

[[nodiscard]] FusedRowPassResult FusedRowPass(const TraceStore& store,
                                              UnixSeconds trace_start,
                                              int days);

/// Per-user-run results: sessions, usage tables, device/user counts.
struct FusedPerUserResult {
  /// Sessions over the full trace, in (user_id, begin) order.
  std::vector<Session> sessions;
  /// Sessions over the mobile rows only, in (user_id, begin) order.
  std::vector<Session> mobile_sessions;
  /// Per-user usage over the full trace, ascending user_id (one entry per
  /// store user — every user has at least one record).
  std::vector<UserUsage> usage;
  /// Per-user usage over the mobile rows only, ascending user_id (users
  /// with no mobile record are absent).
  std::vector<UserUsage> mobile_usage;
  std::size_t mobile_users = 0;    ///< users with >= 1 mobile record
  std::size_t mobile_devices = 0;  ///< distinct mobile device ids
  /// The distinct mobile device ids themselves, sorted ascending — lets the
  /// concurrent pipeline union device sets across independently analyzed
  /// trace slices (a count alone cannot be merged).
  std::vector<std::uint64_t> mobile_device_ids;
};

/// One row-order pass with dense per-user cursors. `tau` is the session gap
/// threshold (see Sessionizer); `pool` runs the final canonical sorts.
[[nodiscard]] FusedPerUserResult FusedPerUserPass(const TraceStore& store,
                                                  Seconds tau,
                                                  ThreadPool& pool);

}  // namespace mcloud::analysis
