#include "analysis/sessionizer.h"

#include "util/error.h"

namespace mcloud::analysis {

Sessionizer::Sessionizer(Seconds tau) : tau_(tau) {
  MCLOUD_REQUIRE(tau > 0, "session threshold must be positive");
}

std::vector<Session> Sessionizer::Sessionize(
    std::span<const LogRecord> trace) const {
  return SessionizeRange(trace);
}

std::vector<double> InterOpIntervals(std::span<const LogRecord> trace) {
  return InterOpIntervalsFrom(trace);
}

}  // namespace mcloud::analysis
