#include "analysis/sessionizer.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "trace/filters.h"
#include "util/error.h"

namespace mcloud::analysis {

Sessionizer::Sessionizer(Seconds tau) : tau_(tau) {
  MCLOUD_REQUIRE(tau > 0, "session threshold must be positive");
}

std::vector<Session> Sessionizer::Sessionize(
    std::span<const LogRecord> trace) const {
  // Per-user open session state; traces are time-sorted, so a single pass
  // suffices.
  struct OpenSession {
    Session session;
    UnixSeconds last_file_op = 0;
    bool has_file_op = false;
  };
  std::unordered_map<std::uint64_t, OpenSession> open;
  std::vector<Session> out;

  auto fold_record = [](Session& s, const LogRecord& r) {
    s.end = std::max(s.end, r.timestamp);
    if (!r.IsMobile()) s.mobile = false;
    if (r.request_type == RequestType::kFileOperation) {
      s.last_op = r.timestamp;
      if (s.FileOps() == 0) s.first_op = r.timestamp;
      (r.direction == Direction::kStore ? s.store_ops : s.retrieve_ops)++;
    } else {
      ++s.chunk_requests;
      (r.direction == Direction::kStore ? s.store_volume
                                        : s.retrieve_volume) += r.data_volume;
    }
  };

  UnixSeconds prev_ts = std::numeric_limits<UnixSeconds>::min();
  for (const LogRecord& r : trace) {
    MCLOUD_REQUIRE(r.timestamp >= prev_ts, "trace must be time-sorted");
    prev_ts = r.timestamp;

    auto [it, inserted] = open.try_emplace(r.user_id);
    OpenSession& cur = it->second;

    const bool is_op = r.request_type == RequestType::kFileOperation;
    const bool splits =
        !inserted && is_op && cur.has_file_op &&
        static_cast<Seconds>(r.timestamp - cur.last_file_op) > tau_;

    if (inserted || splits) {
      if (!inserted) out.push_back(cur.session);
      cur = OpenSession{};
      cur.session.user_id = r.user_id;
      cur.session.begin = r.timestamp;
      cur.session.end = r.timestamp;
      cur.session.first_op = r.timestamp;
      cur.session.last_op = r.timestamp;
    }
    if (is_op) {
      cur.last_file_op = r.timestamp;
      cur.has_file_op = true;
    }
    fold_record(cur.session, r);
  }

  for (auto& [user, state] : open) out.push_back(state.session);

  std::sort(out.begin(), out.end(), [](const Session& a, const Session& b) {
    if (a.user_id != b.user_id) return a.user_id < b.user_id;
    return a.begin < b.begin;
  });
  return out;
}

std::vector<double> InterOpIntervals(std::span<const LogRecord> trace) {
  std::unordered_map<std::uint64_t, UnixSeconds> last_op;
  std::vector<double> intervals;
  for (const LogRecord& r : trace) {
    if (r.request_type != RequestType::kFileOperation) continue;
    if (const auto it = last_op.find(r.user_id); it != last_op.end()) {
      const auto gap = static_cast<double>(r.timestamp - it->second);
      if (gap > 0) intervals.push_back(gap);
      it->second = r.timestamp;
    } else {
      last_op.emplace(r.user_id, r.timestamp);
    }
  }
  return intervals;
}

}  // namespace mcloud::analysis
