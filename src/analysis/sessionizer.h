// Session identification (§3.1.1, Fig 2).
//
// A session is a maximal run of a user's HTTP requests in which consecutive
// *file operations* are separated by at most τ. A file operation more than τ
// after the user's previous file operation begins a new session. Chunk
// requests never split a session — they extend the current one, which is how
// a session's length covers the tail of its transfers (Fig 2).
#pragma once

#include <span>
#include <vector>

#include "model/paper_params.h"
#include "trace/log_record.h"

namespace mcloud::analysis {

/// Aggregate view of one identified session.
struct Session {
  std::uint64_t user_id = 0;
  UnixSeconds begin = 0;          ///< first request of the session
  UnixSeconds end = 0;            ///< last request of the session
  UnixSeconds first_op = 0;       ///< first file operation
  UnixSeconds last_op = 0;        ///< last file operation
  std::size_t store_ops = 0;      ///< file storage operations
  std::size_t retrieve_ops = 0;   ///< file retrieval operations
  std::size_t chunk_requests = 0;
  Bytes store_volume = 0;
  Bytes retrieve_volume = 0;
  bool mobile = true;             ///< session came from a mobile device

  [[nodiscard]] std::size_t FileOps() const {
    return store_ops + retrieve_ops;
  }
  [[nodiscard]] Bytes Volume() const {
    return store_volume + retrieve_volume;
  }
  [[nodiscard]] Seconds Length() const {
    return static_cast<Seconds>(end - begin);
  }
  /// Time between first and last file operation (Fig 4's numerator).
  [[nodiscard]] Seconds OperatingTime() const {
    return static_cast<Seconds>(last_op - first_op);
  }

  enum class Type { kStoreOnly, kRetrieveOnly, kMixed };
  [[nodiscard]] Type SessionType() const {
    if (store_ops > 0 && retrieve_ops > 0) return Type::kMixed;
    return store_ops > 0 ? Type::kStoreOnly : Type::kRetrieveOnly;
  }
};

class Sessionizer {
 public:
  /// `tau` — the session gap threshold (1 hour in the paper, derived from
  /// the Fig 3 valley; see interval_model.h for deriving it from data).
  explicit Sessionizer(Seconds tau = paper::kSessionGapTau);

  /// Identify sessions in a time-sorted trace. Sessions are returned in
  /// (user, begin) order. Records with no file operation before them (a
  /// trace cut mid-session) open a session at the first record.
  [[nodiscard]] std::vector<Session> Sessionize(
      std::span<const LogRecord> trace) const;

  [[nodiscard]] Seconds tau() const { return tau_; }

 private:
  Seconds tau_;
};

/// All inter-file-operation intervals (seconds) of individual users — the
/// sample whose distribution Fig 3 plots. Only consecutive file operations
/// of the same user count; chunk requests are ignored.
[[nodiscard]] std::vector<double> InterOpIntervals(
    std::span<const LogRecord> trace);

}  // namespace mcloud::analysis
