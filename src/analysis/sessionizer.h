// Session identification (§3.1.1, Fig 2).
//
// A session is a maximal run of a user's HTTP requests in which consecutive
// *file operations* are separated by at most τ. A file operation more than τ
// after the user's previous file operation begins a new session. Chunk
// requests never split a session — they extend the current one, which is how
// a session's length covers the tail of its transfers (Fig 2).
#pragma once

#include <algorithm>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "analysis/interval_model.h"
#include "model/paper_params.h"
#include "trace/log_record.h"
#include "util/error.h"

namespace mcloud::analysis {

/// Aggregate view of one identified session.
struct Session {
  std::uint64_t user_id = 0;
  UnixSeconds begin = 0;          ///< first request of the session
  UnixSeconds end = 0;            ///< last request of the session
  UnixSeconds first_op = 0;       ///< first file operation
  UnixSeconds last_op = 0;        ///< last file operation
  std::size_t store_ops = 0;      ///< file storage operations
  std::size_t retrieve_ops = 0;   ///< file retrieval operations
  std::size_t chunk_requests = 0;
  Bytes store_volume = 0;
  Bytes retrieve_volume = 0;
  bool mobile = true;             ///< session came from a mobile device

  [[nodiscard]] std::size_t FileOps() const {
    return store_ops + retrieve_ops;
  }
  [[nodiscard]] Bytes Volume() const {
    return store_volume + retrieve_volume;
  }
  [[nodiscard]] Seconds Length() const {
    return static_cast<Seconds>(end - begin);
  }
  /// Time between first and last file operation (Fig 4's numerator).
  [[nodiscard]] Seconds OperatingTime() const {
    return static_cast<Seconds>(last_op - first_op);
  }

  enum class Type { kStoreOnly, kRetrieveOnly, kMixed };
  [[nodiscard]] Type SessionType() const {
    if (store_ops > 0 && retrieve_ops > 0) return Type::kMixed;
    return store_ops > 0 ? Type::kStoreOnly : Type::kRetrieveOnly;
  }
};

class Sessionizer {
 public:
  /// `tau` — the session gap threshold (1 hour in the paper, derived from
  /// the Fig 3 valley; see interval_model.h for deriving it from data).
  explicit Sessionizer(Seconds tau = paper::kSessionGapTau);

  /// Identify sessions in a time-sorted trace. Sessions are returned in
  /// (user, begin) order. Records with no file operation before them (a
  /// trace cut mid-session) open a session at the first record.
  [[nodiscard]] std::vector<Session> Sessionize(
      std::span<const LogRecord> trace) const;

  /// Same, over any forward range of LogRecord (e.g. a TraceView) — the
  /// analysis pipeline sessionizes its mobile slice without copying it.
  template <typename Range>
  [[nodiscard]] std::vector<Session> SessionizeRange(
      const Range& records) const {
    // Per-user open session state; traces are time-sorted, so a single pass
    // suffices.
    struct OpenSession {
      Session session;
      UnixSeconds last_file_op = 0;
      bool has_file_op = false;
    };
    std::unordered_map<std::uint64_t, OpenSession> open;
    std::vector<Session> out;

    const auto fold_record = [](Session& s, const LogRecord& r) {
      s.end = std::max(s.end, r.timestamp);
      if (!r.IsMobile()) s.mobile = false;
      if (r.request_type == RequestType::kFileOperation) {
        s.last_op = r.timestamp;
        if (s.FileOps() == 0) s.first_op = r.timestamp;
        (r.direction == Direction::kStore ? s.store_ops : s.retrieve_ops)++;
      } else {
        ++s.chunk_requests;
        (r.direction == Direction::kStore
             ? s.store_volume
             : s.retrieve_volume) += r.data_volume;
      }
    };

    UnixSeconds prev_ts = std::numeric_limits<UnixSeconds>::min();
    for (const LogRecord& r : records) {
      MCLOUD_REQUIRE(r.timestamp >= prev_ts, "trace must be time-sorted");
      prev_ts = r.timestamp;

      auto [it, inserted] = open.try_emplace(r.user_id);
      OpenSession& cur = it->second;

      const bool is_op = r.request_type == RequestType::kFileOperation;
      const bool splits =
          !inserted && is_op && cur.has_file_op &&
          static_cast<Seconds>(r.timestamp - cur.last_file_op) > tau_;

      if (inserted || splits) {
        if (!inserted) out.push_back(cur.session);
        cur = OpenSession{};
        cur.session.user_id = r.user_id;
        cur.session.begin = r.timestamp;
        cur.session.end = r.timestamp;
        cur.session.first_op = r.timestamp;
        cur.session.last_op = r.timestamp;
      }
      if (is_op) {
        cur.last_file_op = r.timestamp;
        cur.has_file_op = true;
      }
      fold_record(cur.session, r);
    }

    for (auto& [user, state] : open) out.push_back(state.session);

    std::sort(out.begin(), out.end(),
              [](const Session& a, const Session& b) {
                if (a.user_id != b.user_id) return a.user_id < b.user_id;
                return a.begin < b.begin;
              });
    return out;
  }

  [[nodiscard]] Seconds tau() const { return tau_; }

 private:
  Seconds tau_;
};

/// All inter-file-operation intervals (seconds) of individual users — the
/// sample whose distribution Fig 3 plots. Only consecutive file operations
/// of the same user count; chunk requests are ignored. Range form for
/// copy-free views, span form for existing callers.
template <typename Range>
[[nodiscard]] std::vector<double> InterOpIntervalsFrom(const Range& records) {
  std::unordered_map<std::uint64_t, UnixSeconds> last_op;
  std::vector<double> intervals;
  for (const LogRecord& r : records) {
    if (r.request_type != RequestType::kFileOperation) continue;
    if (const auto it = last_op.find(r.user_id); it != last_op.end()) {
      const auto gap = static_cast<double>(r.timestamp - it->second);
      if (gap > 0) intervals.push_back(gap);
      it->second = r.timestamp;
    } else {
      last_op.emplace(r.user_id, r.timestamp);
    }
  }
  return intervals;
}

[[nodiscard]] std::vector<double> InterOpIntervals(
    std::span<const LogRecord> trace);

/// Streaming twin of InterOpIntervalsFrom: feed every inter-file-operation
/// gap straight into the Fig 3 interval sketch (see interval_model.h). The
/// jitter key is (user, ending timestamp), so the sketch is identical to the
/// one the columnar/streaming engines build from the same records.
template <typename Range>
void AddInterOpIntervalsToSketch(const Range& records, LogBins& sketch) {
  std::unordered_map<std::uint64_t, UnixSeconds> last_op;
  for (const LogRecord& r : records) {
    if (r.request_type != RequestType::kFileOperation) continue;
    if (const auto it = last_op.find(r.user_id); it != last_op.end()) {
      const auto gap = static_cast<double>(r.timestamp - it->second);
      if (gap > 0) {
        AddIntervalToSketch(sketch, r.user_id,
                            static_cast<std::uint64_t>(r.timestamp), gap);
      }
      it->second = r.timestamp;
    } else {
      last_op.emplace(r.user_id, r.timestamp);
    }
  }
}

}  // namespace mcloud::analysis
