#include "analysis/workload_timeseries.h"

#include <array>

#include "util/error.h"

namespace mcloud::analysis {

double WorkloadTimeseries::TotalStoreGb() const {
  std::uint64_t v = 0;
  for (const auto& h : hours) v += h.store_volume_bytes;
  return static_cast<double>(v) / 1e9;
}

double WorkloadTimeseries::TotalRetrieveGb() const {
  std::uint64_t v = 0;
  for (const auto& h : hours) v += h.retrieve_volume_bytes;
  return static_cast<double>(v) / 1e9;
}

std::uint64_t WorkloadTimeseries::TotalStoredFiles() const {
  std::uint64_t v = 0;
  for (const auto& h : hours) v += h.stored_files;
  return v;
}

std::uint64_t WorkloadTimeseries::TotalRetrievedFiles() const {
  std::uint64_t v = 0;
  for (const auto& h : hours) v += h.retrieved_files;
  return v;
}

int WorkloadTimeseries::PeakHourOfDay() const {
  std::array<std::uint64_t, 24> by_hour{};
  for (const auto& h : hours)
    by_hour[static_cast<std::size_t>(h.hour % 24)] +=
        h.store_volume_bytes + h.retrieve_volume_bytes;
  int best = 0;
  for (int i = 1; i < 24; ++i) {
    if (by_hour[static_cast<std::size_t>(i)] >
        by_hour[static_cast<std::size_t>(best)])
      best = i;
  }
  return best;
}

WorkloadTimeseries BuildTimeseries(std::span<const LogRecord> trace,
                                   UnixSeconds trace_start, int days) {
  return BuildTimeseriesFrom(trace, trace_start, days);
}

}  // namespace mcloud::analysis
