#include "analysis/file_size_model.h"

#include <algorithm>

#include "util/error.h"
#include "util/summary.h"

namespace mcloud::analysis {

FileSizeModel FitFileSizeModel(std::span<const double> avg_sizes_mb,
                               const FileSizeModelOptions& options) {
  MCLOUD_REQUIRE(!avg_sizes_mb.empty(), "no sizes to fit");

  FileSizeModel out;
  out.selection = SelectMixtureExponential(
      avg_sizes_mb, options.max_components, options.weight_floor);

  const MixtureExponential& mixture = out.selection.fit.mixture;
  const std::size_t n_params = 2 * mixture.size() - 1;  // α's + µ's, Σα = 1

  const auto cdf = [&mixture](double x) { return mixture.Cdf(x); };
  double hi = *std::max_element(avg_sizes_mb.begin(), avg_sizes_mb.end());
  const auto quantile = [&](double q) {
    return InvertCdf(cdf, q, 0.0, std::max(hi * 4.0, 1.0));
  };
  // Scale the bin count down for small samples (>= 5 expected per bin);
  // below ~10 usable bins the test carries no power and is skipped.
  const std::size_t bins =
      std::min<std::size_t>(options.chi_square_bins, avg_sizes_mb.size() / 50);
  if (bins > n_params + 1 && bins >= 10) {
    out.chi_square =
        ChiSquareGoodnessOfFit(avg_sizes_mb, cdf, quantile, bins, n_params);
    out.chi_square_valid = true;
  }

  // Fig 6 series: empirical vs model CCDF on a log grid.
  const Ecdf ecdf(std::vector<double>(avg_sizes_mb.begin(),
                                      avg_sizes_mb.end()));
  const double lo = std::max(ecdf.sorted().front(), 1e-3);
  out.grid_mb = LogGrid(lo, hi, options.grid_points);
  out.empirical_ccdf.reserve(out.grid_mb.size());
  out.model_ccdf.reserve(out.grid_mb.size());
  for (double x : out.grid_mb) {
    out.empirical_ccdf.push_back(ecdf.Ccdf(x));
    out.model_ccdf.push_back(mixture.Ccdf(x));
  }
  return out;
}

}  // namespace mcloud::analysis
