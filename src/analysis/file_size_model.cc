#include "analysis/file_size_model.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/summary.h"

namespace mcloud::analysis {
namespace {

/// Collapse a large positive sample into log-spaced (bin mean, bin count)
/// pairs for the weighted EM. Returns false — meaning the caller should fit
/// the raw sample — when the sample contains non-positive values (the
/// unbinned path owns that error), spans no range, or occupies too few bins
/// for the quantile-schedule initialization to be meaningful.
bool BinLogSpaced(std::span<const double> data, std::size_t bins,
                  std::vector<double>& values, std::vector<double>& counts) {
  double lo = data.front();
  double hi = data.front();
  for (double x : data) {
    if (!(x > 0) || !std::isfinite(x)) return false;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (!(hi > lo) || bins < 2) return false;

  const double llo = std::log(lo);
  const double scale = static_cast<double>(bins) / (std::log(hi) - llo);
  std::vector<double> sum(bins, 0.0);
  std::vector<double> cnt(bins, 0.0);
  for (double x : data) {
    auto b = static_cast<std::size_t>((std::log(x) - llo) * scale);
    b = std::min(b, bins - 1);
    sum[b] += x;
    cnt[b] += 1.0;
  }

  values.clear();
  counts.clear();
  std::size_t occupied = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (cnt[b] == 0) continue;
    ++occupied;
    values.push_back(sum[b] / cnt[b]);
    counts.push_back(cnt[b]);
  }
  // With few occupied bins the collapsed sample is not meaningfully cheaper
  // and the binning error is relatively largest; fit the raw data instead.
  return occupied >= 64;
}

}  // namespace

FileSizeModel FitFileSizeModel(std::span<const double> avg_sizes_mb,
                               const FileSizeModelOptions& options) {
  MCLOUD_REQUIRE(!avg_sizes_mb.empty(), "no sizes to fit");

  FileSizeModel out;
  // EM iterations dominate the pipeline's fit cost on large traces; collapse
  // the sample into per-bin (mean, count) pairs so each iteration is
  // O(fit_bins) while chi-square and the CCDF series below keep full
  // resolution.
  std::vector<double> binned_values;
  std::vector<double> binned_counts;
  if (options.binned_fit_threshold > 0 &&
      avg_sizes_mb.size() >= options.binned_fit_threshold &&
      BinLogSpaced(avg_sizes_mb, options.fit_bins, binned_values,
                   binned_counts)) {
    out.selection = SelectMixtureExponentialWeighted(
        binned_values, binned_counts, options.max_components,
        options.weight_floor);
  } else {
    out.selection = SelectMixtureExponential(
        avg_sizes_mb, options.max_components, options.weight_floor);
  }

  const MixtureExponential& mixture = out.selection.fit.mixture;
  const std::size_t n_params = 2 * mixture.size() - 1;  // α's + µ's, Σα = 1

  const auto cdf = [&mixture](double x) { return mixture.Cdf(x); };
  double hi = *std::max_element(avg_sizes_mb.begin(), avg_sizes_mb.end());
  const auto quantile = [&](double q) {
    return InvertCdf(cdf, q, 0.0, std::max(hi * 4.0, 1.0));
  };
  // Scale the bin count down for small samples (>= 5 expected per bin);
  // below ~10 usable bins the test carries no power and is skipped.
  const std::size_t bins =
      std::min<std::size_t>(options.chi_square_bins, avg_sizes_mb.size() / 50);
  if (bins > n_params + 1 && bins >= 10) {
    out.chi_square =
        ChiSquareGoodnessOfFit(avg_sizes_mb, cdf, quantile, bins, n_params);
    out.chi_square_valid = true;
  }

  // Fig 6 series: empirical vs model CCDF on a log grid.
  const Ecdf ecdf(std::vector<double>(avg_sizes_mb.begin(),
                                      avg_sizes_mb.end()));
  const double lo = std::max(ecdf.sorted().front(), 1e-3);
  out.grid_mb = LogGrid(lo, hi, options.grid_points);
  out.empirical_ccdf.reserve(out.grid_mb.size());
  out.model_ccdf.reserve(out.grid_mb.size());
  for (double x : out.grid_mb) {
    out.empirical_ccdf.push_back(ecdf.Ccdf(x));
    out.model_ccdf.push_back(mixture.Ccdf(x));
  }
  return out;
}

FileSizeModel FitFileSizeModel(const LogBins& sketch, const TDigest& digest,
                               const FileSizeModelOptions& options) {
  MCLOUD_REQUIRE(sketch.Total() > 0, "no sizes to fit");
  MCLOUD_REQUIRE(sketch.Total() == digest.Count(),
                 "size sketch and digest disagree on sample count");

  FileSizeModel out;
  // Occupied (exact bin mean, count) pairs drive the weighted EM — the same
  // moments the binned raw path feeds it, but from O(bins) state.
  std::vector<double> values;
  std::vector<double> counts;
  values.reserve(sketch.bins());
  counts.reserve(sketch.bins());
  for (std::size_t b = 0; b < sketch.bins(); ++b) {
    if (sketch.Count(b) == 0) continue;
    values.push_back(sketch.Mean(b));
    counts.push_back(static_cast<double>(sketch.Count(b)));
  }
  out.selection = SelectMixtureExponentialWeighted(
      values, counts, options.max_components, options.weight_floor);

  const MixtureExponential& mixture = out.selection.fit.mixture;
  const std::size_t n_params = 2 * mixture.size() - 1;  // α's + µ's, Σα = 1

  const auto cdf = [&mixture](double x) { return mixture.Cdf(x); };
  const double hi = sketch.Max();
  const auto quantile = [&](double q) {
    return InvertCdf(cdf, q, 0.0, std::max(hi * 4.0, 1.0));
  };
  // Grouped chi-square: the same equal-probability partition as the raw
  // path, with each occupied bin's count assigned to the model-quantile
  // interval containing its mean. Same power gates as the raw path.
  const std::size_t n = sketch.Total();
  const std::size_t bins =
      std::min<std::size_t>(options.chi_square_bins, n / 50);
  if (bins > n_params + 1 && bins >= 10) {
    std::vector<double> edges(bins - 1);
    for (std::size_t i = 0; i + 1 < bins; ++i) {
      edges[i] =
          quantile(static_cast<double>(i + 1) / static_cast<double>(bins));
    }
    std::vector<std::uint64_t> observed(bins, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const auto it =
          std::upper_bound(edges.begin(), edges.end(), values[i]);
      observed[static_cast<std::size_t>(it - edges.begin())] +=
          static_cast<std::uint64_t>(counts[i]);
    }
    const std::vector<double> probs(bins, 1.0 / static_cast<double>(bins));
    out.chi_square = ChiSquareCounts(observed, probs, n_params);
    out.chi_square_valid = true;
  }

  // Fig 6 series: the empirical CCDF comes from the t-digest.
  const double lo = std::max(sketch.Min(), 1e-3);
  out.grid_mb = LogGrid(lo, hi, options.grid_points);
  out.empirical_ccdf.reserve(out.grid_mb.size());
  out.model_ccdf.reserve(out.grid_mb.size());
  for (double x : out.grid_mb) {
    out.empirical_ccdf.push_back(1.0 - digest.Cdf(x));
    out.model_ccdf.push_back(mixture.Ccdf(x));
  }
  return out;
}

}  // namespace mcloud::analysis
