#include "analysis/perf_analysis.h"

namespace mcloud::analysis {
namespace {

bool IsChunk(const LogRecord& r) {
  return r.request_type == RequestType::kChunkRequest && !r.proxied;
}

bool Matches(const cloud::ChunkPerf& p, DeviceType device,
             Direction direction) {
  return !p.proxied && p.device == device && p.direction == direction;
}

}  // namespace

std::vector<double> ChunkTransferTimes(std::span<const LogRecord> trace,
                                       DeviceType device,
                                       Direction direction) {
  std::vector<double> out;
  for (const LogRecord& r : trace) {
    if (!IsChunk(r)) continue;
    if (r.device_type != device || r.direction != direction) continue;
    const double ttran = r.processing_time - r.server_time;
    if (ttran > 0) out.push_back(ttran);
  }
  return out;
}

std::vector<double> RttSamples(std::span<const LogRecord> trace) {
  std::vector<double> out;
  for (const LogRecord& r : trace) {
    if (!IsChunk(r) || !r.IsMobile()) continue;
    if (r.avg_rtt > 0) out.push_back(r.avg_rtt);
  }
  return out;
}

std::vector<double> SendingWindowEstimates(std::span<const LogRecord> trace) {
  std::vector<double> out;
  for (const LogRecord& r : trace) {
    if (!IsChunk(r) || !r.IsMobile()) continue;
    if (r.direction != Direction::kStore) continue;
    const double ttran = r.processing_time - r.server_time;
    if (ttran <= 0 || r.avg_rtt <= 0 || r.data_volume == 0) continue;
    out.push_back(static_cast<double>(r.data_volume) * r.avg_rtt / ttran);
  }
  return out;
}

std::vector<double> TcltSamples(std::span<const cloud::ChunkPerf> perf,
                                DeviceType device, Direction direction) {
  std::vector<double> out;
  for (const auto& p : perf) {
    if (Matches(p, device, direction)) out.push_back(p.tclt);
  }
  return out;
}

std::vector<double> TsrvSamples(std::span<const cloud::ChunkPerf> perf,
                                DeviceType device, Direction direction) {
  std::vector<double> out;
  for (const auto& p : perf) {
    if (Matches(p, device, direction)) out.push_back(p.tsrv);
  }
  return out;
}

std::vector<double> IdleToRtoRatios(std::span<const cloud::ChunkPerf> perf,
                                    DeviceType device, Direction direction) {
  std::vector<double> out;
  for (const auto& p : perf) {
    if (!Matches(p, device, direction)) continue;
    if (p.idle_before <= 0 || p.rto_at_idle <= 0) continue;
    out.push_back(p.idle_before / p.rto_at_idle);
  }
  return out;
}

double SlowStartRestartShare(std::span<const cloud::ChunkPerf> perf,
                             DeviceType device, Direction direction) {
  std::size_t gaps = 0;
  std::size_t restarts = 0;
  for (const auto& p : perf) {
    if (!Matches(p, device, direction)) continue;
    if (p.idle_before <= 0) continue;
    ++gaps;
    if (p.restarted) ++restarts;
  }
  return gaps ? static_cast<double>(restarts) / static_cast<double>(gaps) : 0;
}

std::vector<double> PerfTransferTimes(std::span<const cloud::ChunkPerf> perf,
                                      DeviceType device,
                                      Direction direction) {
  std::vector<double> out;
  for (const auto& p : perf) {
    if (Matches(p, device, direction) && p.ttran > 0)
      out.push_back(p.ttran);
  }
  return out;
}

}  // namespace mcloud::analysis
