#include "analysis/session_stats.h"

#include <algorithm>
#include <map>

#include "util/summary.h"
#include "util/units.h"

namespace mcloud::analysis {

SessionTypeSplit ClassifySessions(std::span<const Session> sessions) {
  SessionTypeSplit split;
  split.total = sessions.size();
  for (const Session& s : sessions) {
    switch (s.SessionType()) {
      case Session::Type::kStoreOnly:
        ++split.store_only;
        break;
      case Session::Type::kRetrieveOnly:
        ++split.retrieve_only;
        break;
      case Session::Type::kMixed:
        ++split.mixed;
        break;
    }
  }
  return split;
}

std::vector<SessionSizeBin> SessionSizeByOpCount(
    std::span<const Session> sessions, Session::Type type,
    std::size_t max_ops) {
  std::map<std::size_t, std::vector<double>> bins;
  for (const Session& s : sessions) {
    if (s.SessionType() != type) continue;
    const std::size_t ops = s.FileOps();
    if (ops == 0 || ops > max_ops) continue;
    bins[ops].push_back(ToMB(s.Volume()));
  }

  std::vector<SessionSizeBin> out;
  out.reserve(bins.size());
  const std::array<double, 3> cuts = {25.0, 50.0, 75.0};
  for (auto& [ops, volumes] : bins) {
    SessionSizeBin bin;
    bin.file_ops = ops;
    bin.sessions = volumes.size();
    double sum = 0;
    for (double v : volumes) sum += v;
    bin.avg_mb = sum / static_cast<double>(volumes.size());
    const auto pct = Percentiles(volumes, cuts);
    bin.p25_mb = pct[0];
    bin.median_mb = pct[1];
    bin.p75_mb = pct[2];
    out.push_back(bin);
  }
  return out;
}

std::vector<double> OpCountSample(std::span<const Session> sessions,
                                  Session::Type type) {
  std::vector<double> out;
  for (const Session& s : sessions) {
    if (s.SessionType() == type && s.FileOps() > 0)
      out.push_back(static_cast<double>(s.FileOps()));
  }
  return out;
}

std::vector<double> AvgFileSizeSample(std::span<const Session> sessions,
                                      Session::Type type) {
  std::vector<double> out;
  for (const Session& s : sessions) {
    if (s.SessionType() != type) continue;
    if (s.FileOps() == 0 || s.Volume() == 0) continue;
    out.push_back(ToMB(s.Volume()) / static_cast<double>(s.FileOps()));
  }
  return out;
}

}  // namespace mcloud::analysis
