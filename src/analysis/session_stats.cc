#include "analysis/session_stats.h"

#include <algorithm>
#include <array>
#include <span>

#include "util/summary.h"
#include "util/units.h"

namespace mcloud::analysis {

SessionTypeSplit ClassifySessions(std::span<const Session> sessions) {
  SessionTypeSplit split;
  split.total = sessions.size();
  for (const Session& s : sessions) {
    switch (s.SessionType()) {
      case Session::Type::kStoreOnly:
        ++split.store_only;
        break;
      case Session::Type::kRetrieveOnly:
        ++split.retrieve_only;
        break;
      case Session::Type::kMixed:
        ++split.mixed;
        break;
    }
  }
  return split;
}

std::vector<SessionSizeBin> SessionSizeByOpCount(
    std::span<const Session> sessions, Session::Type type,
    std::size_t max_ops) {
  // The bin key is a small dense integer (1..max_ops), so a counting pass
  // plus one flat scatter buffer replaces the former std::map of vectors:
  // no node allocations, and each bin's volumes land contiguously.
  std::vector<std::size_t> counts(max_ops + 1, 0);
  for (const Session& s : sessions) {
    if (s.SessionType() != type) continue;
    const std::size_t ops = s.FileOps();
    if (ops == 0 || ops > max_ops) continue;
    ++counts[ops];
  }
  std::vector<std::size_t> offsets(max_ops + 2, 0);
  for (std::size_t ops = 1; ops <= max_ops; ++ops)
    offsets[ops + 1] = offsets[ops] + counts[ops];
  std::vector<double> volumes(offsets[max_ops + 1]);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Session& s : sessions) {
    if (s.SessionType() != type) continue;
    const std::size_t ops = s.FileOps();
    if (ops == 0 || ops > max_ops) continue;
    volumes[cursor[ops]++] = ToMB(s.Volume());
  }

  std::vector<SessionSizeBin> out;
  const std::array<double, 3> cuts = {25.0, 50.0, 75.0};
  for (std::size_t ops = 1; ops <= max_ops; ++ops) {
    if (counts[ops] == 0) continue;
    const std::span<const double> vols(volumes.data() + offsets[ops],
                                       counts[ops]);
    SessionSizeBin bin;
    bin.file_ops = ops;
    bin.sessions = vols.size();
    double sum = 0;
    for (double v : vols) sum += v;
    bin.avg_mb = sum / static_cast<double>(vols.size());
    const auto pct = Percentiles(vols, cuts);
    bin.p25_mb = pct[0];
    bin.median_mb = pct[1];
    bin.p75_mb = pct[2];
    out.push_back(bin);
  }
  return out;
}

std::vector<double> OpCountSample(std::span<const Session> sessions,
                                  Session::Type type) {
  std::vector<double> out;
  for (const Session& s : sessions) {
    if (s.SessionType() == type && s.FileOps() > 0)
      out.push_back(static_cast<double>(s.FileOps()));
  }
  return out;
}

std::vector<double> AvgFileSizeSample(std::span<const Session> sessions,
                                      Session::Type type) {
  std::vector<double> out;
  for (const Session& s : sessions) {
    if (s.SessionType() != type) continue;
    if (s.FileOps() == 0 || s.Volume() == 0) continue;
    out.push_back(ToMB(s.Volume()) / static_cast<double>(s.FileOps()));
  }
  return out;
}

}  // namespace mcloud::analysis
