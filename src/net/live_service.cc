#include "net/live_service.h"

#include <chrono>
#include <ctime>
#include <optional>
#include <string_view>
#include <utility>

#include "net/live_protocol.h"
#include "util/md5.h"

namespace mcloud::net {

namespace {

/// Live records carry the wall clock at 1 s resolution, like the dataset.
[[nodiscard]] UnixSeconds WallNow() {
  return static_cast<UnixSeconds>(std::time(nullptr));
}

[[nodiscard]] HttpResponse Json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.headers.emplace_back("Content-Type", "application/json");
  r.body = std::move(body);
  return r;
}

}  // namespace

LiveService::LiveService(const LiveServiceConfig& config)
    : config_(config),
      chunker_(config.chunk_size),
      metadata_(config.front_ends) {
  front_ends_.reserve(config.front_ends);
  for (std::uint32_t i = 0; i < config.front_ends; ++i) {
    front_ends_.emplace_back(i, cloud::ServerBehavior{});
  }
}

bool LiveService::BaseRecord(const HttpRequest& req, LogRecord& base) {
  const std::string* user = req.Header(kHdrUser);
  const std::string* device = req.Header(kHdrDevice);
  if (user == nullptr || device == nullptr) return false;
  base.user_id = req.HeaderU64(kHdrUser, 0);
  base.device_id = req.HeaderU64(kHdrDevice, 0);
  base.device_type = DeviceType::kAndroid;
  if (const std::string* t = req.Header(kHdrDeviceType); t != nullptr) {
    if (*t == "ios") {
      base.device_type = DeviceType::kIos;
    } else if (*t == "pc") {
      base.device_type = DeviceType::kPc;
    } else if (*t != "android") {
      return false;
    }
  }
  return true;
}

HttpResponse LiveService::BadRequest(std::string why) {
  ++counters_.bad_requests;
  why.append("\n");
  HttpResponse r;
  r.status = 400;
  r.headers.emplace_back("Content-Type", "text/plain");
  r.body = std::move(why);
  return r;
}

HttpResponse LiveService::Handle(const HttpRequest& req,
                                 const RequestContext& ctx) {
  counters_.bytes_in += req.body.size();
  if (req.method == "POST" && req.target == "/fileop") {
    return HandleFileOp(req, ctx);
  }
  if (req.method == "PUT" && req.target == "/chunk") {
    return HandleChunkPut(req, ctx);
  }
  constexpr std::string_view kChunkPrefix = "/chunk/";
  if (req.method == "GET" && req.target.size() > kChunkPrefix.size() &&
      std::string_view(req.target).substr(0, kChunkPrefix.size()) ==
          kChunkPrefix) {
    return HandleChunkGet(req, ctx,
                          std::string_view(req.target)
                              .substr(kChunkPrefix.size()));
  }
  if (req.method == "GET" && req.target == "/stats") {
    return Json(200, StatsJson());
  }
  if (req.method == "GET" && req.target == "/healthz") {
    HttpResponse r;
    r.headers.emplace_back("Content-Type", "text/plain");
    r.body = "ok\n";
    return r;
  }
  HttpResponse r;
  r.status = 404;
  r.headers.emplace_back("Content-Type", "text/plain");
  r.body = "unknown route\n";
  return r;
}

HttpResponse LiveService::HandleFileOp(const HttpRequest& req,
                                       const RequestContext& ctx) {
  LogRecord base;
  if (!BaseRecord(req, base)) return BadRequest("missing user/device");
  const std::string* dir = req.Header(kHdrDirection);
  if (dir == nullptr || (*dir != "store" && *dir != "retrieve")) {
    return BadRequest("direction must be store|retrieve");
  }
  const std::uint64_t seed = req.HeaderU64(kHdrContentSeed, 0);
  const Bytes size = req.HeaderU64(kHdrBytes, 0);
  if (size == 0) return BadRequest("missing file size");

  ++counters_.fileops;
  const cloud::FileManifest manifest = chunker_.Manifest(seed, size);
  std::string body;
  cloud::FrontEndId fe = 0;
  if (*dir == "store") {
    const cloud::StoreDecision d = metadata_.QueryStore(base.user_id, manifest);
    if (d.already_stored) ++counters_.file_dedup_hits;
    fe = d.front_end;
    body = std::string("{\"already_stored\":") +
           (d.already_stored ? "true" : "false") +
           ",\"front_end\":" + std::to_string(fe) +
           ",\"chunks\":" + std::to_string(manifest.chunks.size()) + "}";
    front_ends_[fe].LogFileOperation(base, WallNow(), Direction::kStore,
                                     /*tsrv=*/0, ctx.rtt, log_);
  } else {
    const std::optional<cloud::FrontEndId> home =
        metadata_.QueryRetrieve(base.user_id, manifest.file_md5);
    const bool found = home.has_value();
    if (!found) ++counters_.retrieve_misses;
    fe = home.value_or(static_cast<cloud::FrontEndId>(
        manifest.file_md5.Low64() % config_.front_ends));
    body = std::string("{\"found\":") + (found ? "true" : "false") +
           ",\"front_end\":" + std::to_string(fe) +
           ",\"chunks\":" + std::to_string(manifest.chunks.size()) + "}";
    front_ends_[fe].LogFileOperation(base, WallNow(), Direction::kRetrieve,
                                     /*tsrv=*/0, ctx.rtt, log_);
  }
  return Json(200, std::move(body));
}

HttpResponse LiveService::HandleChunkPut(const HttpRequest& req,
                                         const RequestContext& ctx) {
  LogRecord base;
  if (!BaseRecord(req, base)) return BadRequest("missing user/device");
  if (req.body.empty()) return BadRequest("empty chunk body");

  ++counters_.chunk_puts;
  cloud::ChunkInfo chunk;
  chunk.index = static_cast<std::uint32_t>(req.HeaderU64(kHdrChunkIndex, 0));
  chunk.size = req.body.size();
  chunk.md5 = Md5::Hash(req.body);
  const auto fe = static_cast<cloud::FrontEndId>(
      req.HeaderU64(kHdrFrontEnd, chunk.md5.Low64() % config_.front_ends));
  if (fe >= config_.front_ends) return BadRequest("front_end out of range");

  // The request body *is* the transfer: T_chunk for an upload is dominated
  // by receiving it, and the handler runs at parse-complete time.
  const bool dedup = front_ends_[fe].CommitChunkStore(
      base, WallNow(), chunk, /*ttran=*/ctx.recv_seconds, /*tsrv=*/0, ctx.rtt,
      log_);
  if (dedup) ++counters_.dedup_hits;
  chunk_home_.emplace(chunk.md5, fe);
  if (!dedup && stored_body_bytes_ + chunk.size <=
                    config_.max_stored_body_bytes) {
    if (bodies_.emplace(chunk.md5, req.body).second) {
      stored_body_bytes_ += chunk.size;
    }
  }

  HttpResponse r = Json(
      200, std::string("{\"dedup\":") + (dedup ? "true" : "false") +
               ",\"front_end\":" + std::to_string(fe) + "}");
  r.headers.emplace_back(std::string(kHdrSource), dedup ? "index" : "stored");
  r.headers.emplace_back("ETag", "\"" + chunk.md5.ToHex() + "\"");
  return r;
}

HttpResponse LiveService::HandleChunkGet(const HttpRequest& req,
                                         const RequestContext& ctx,
                                         std::string_view hex_md5) {
  LogRecord base;
  if (!BaseRecord(req, base)) return BadRequest("missing user/device");
  Md5Digest md5;
  if (!ParseHexMd5(hex_md5, md5)) return BadRequest("malformed chunk md5");

  ++counters_.chunk_gets;
  cloud::ChunkInfo chunk;
  chunk.index = static_cast<std::uint32_t>(req.HeaderU64(kHdrChunkIndex, 0));
  chunk.md5 = md5;

  HttpResponse r;
  r.chunked = true;
  const auto body_it = bodies_.find(md5);
  const bool from_index = body_it != bodies_.end();
  if (from_index) {
    r.body = body_it->second;
  } else {
    ++counters_.replica_serves;
    const Bytes size = req.HeaderU64(kHdrBytes, config_.chunk_size);
    FillReplicaBody(md5, size, r.body);
  }
  chunk.size = r.body.size();
  const auto home_it = chunk_home_.find(md5);
  const auto fe = home_it != chunk_home_.end()
                      ? home_it->second
                      : static_cast<cloud::FrontEndId>(
                            md5.Low64() % config_.front_ends);
  r.headers.emplace_back("Content-Type", "application/octet-stream");
  r.headers.emplace_back(std::string(kHdrSource),
                         from_index ? "index" : "replica");
  counters_.bytes_out += r.body.size();

  // T_chunk on a retrieval spans to the *last byte out*: defer the record to
  // the server's flush hook. `this` outlives the server loop that fires it.
  const auto first_byte_at = ctx.first_byte_at;
  const Seconds rtt = ctx.rtt;
  r.on_flushed = [this, base, chunk, fe, first_byte_at, rtt]() {
    const Seconds ttran =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      first_byte_at)
            .count();
    (void)front_ends_[fe].ServeChunkRetrieve(base, WallNow(), chunk, ttran,
                                             /*tsrv=*/0, rtt, log_);
  };
  return r;
}

std::string LiveService::StatsJson() const {
  const cloud::MetadataStats& md = metadata_.stats();
  std::string s = "{";
  auto field = [&s](std::string_view key, std::uint64_t value, bool last) {
    s.append("\"").append(key).append("\":").append(std::to_string(value));
    if (!last) s.append(",");
  };
  field("fileops", counters_.fileops, false);
  field("chunk_puts", counters_.chunk_puts, false);
  field("chunk_gets", counters_.chunk_gets, false);
  field("dedup_hits", counters_.dedup_hits, false);
  field("file_dedup_hits", counters_.file_dedup_hits, false);
  field("retrieve_misses", counters_.retrieve_misses, false);
  field("replica_serves", counters_.replica_serves, false);
  field("bad_requests", counters_.bad_requests, false);
  field("bytes_in", counters_.bytes_in, false);
  field("bytes_out", counters_.bytes_out, false);
  field("log_records", log_.size(), false);
  field("distinct_files", metadata_.DistinctFiles(), false);
  field("metadata_store_queries", md.store_queries, false);
  field("metadata_dedup_hits", md.dedup_hits, true);
  s.append("}");
  return s;
}

}  // namespace mcloud::net
