#include "net/replay.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "net/http.h"
#include "net/live_protocol.h"
#include "trace/log_io.h"
#include "trace/partitioned_trace.h"
#include "util/error.h"

namespace mcloud::net {

namespace {

constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

/// Bounded ring of content references shared by the fallback paths.
template <typename T>
class RefRing {
 public:
  explicit RefRing(std::size_t cap) : cap_(cap) {}
  void Push(const T& v) {
    if (refs_.size() < cap_) {
      refs_.push_back(v);
    } else {
      refs_[pushes_ % cap_] = v;
    }
    ++pushes_;
  }
  [[nodiscard]] bool Empty() const { return refs_.empty(); }
  /// Deterministic round-robin pick.
  [[nodiscard]] const T& Pick() { return refs_[picks_++ % refs_.size()]; }

 private:
  std::size_t cap_;
  std::vector<T> refs_;
  std::uint64_t pushes_ = 0;
  std::uint64_t picks_ = 0;
};

struct FileRef {
  std::uint64_t seed = 0;
  Bytes bytes = 0;
};

struct ChunkRef {
  std::uint64_t seed = 0;
  std::uint32_t index = 0;
  Bytes bytes = 0;
};

struct UserState {
  bool group_open = false;
  std::size_t group_item = kNoItem;  ///< store-fileop item to patch
  std::uint64_t group_seed = 0;
  Bytes group_bytes = 0;
  std::uint32_t next_chunk = 0;
  RefRing<FileRef> files{64};
  RefRing<ChunkRef> chunks{256};
};

[[nodiscard]] Bytes CapBody(Bytes dv, Bytes cap) {
  Bytes b = dv == 0 ? 1 : dv;
  if (cap > 0) b = std::min(b, cap);
  return b;
}

}  // namespace

ReplayPlan BuildReplayPlan(std::span<const LogRecord> trace,
                           const ReplayPlanOptions& options) {
  ReplayPlan plan;
  if (trace.empty()) return plan;
  plan.items.reserve(trace.size());

  // Raw send offsets: whole-second trace timestamps, records within the
  // same second spread evenly across it so replay does not fire the whole
  // second as one burst.
  std::vector<double> raw(trace.size());
  const UnixSeconds t0 = trace.front().timestamp;
  for (std::size_t i = 0; i < trace.size();) {
    std::size_t j = i;
    while (j < trace.size() && trace[j].timestamp == trace[i].timestamp) ++j;
    const auto n = static_cast<double>(j - i);
    for (std::size_t k = i; k < j; ++k) {
      raw[k] = static_cast<double>(trace[i].timestamp - t0) +
               static_cast<double>(k - i) / n;
    }
    i = j;
  }
  const double span = std::max(raw.back(), 1e-6);
  const double scale =
      options.target_qps > 0
          ? (static_cast<double>(trace.size()) / options.target_qps) / span
          : 1.0;

  std::unordered_map<std::uint64_t, UserState> users;
  RefRing<FileRef> global_files{256};
  RefRing<ChunkRef> global_chunks{1024};
  std::uint64_t store_counter = 0;
  std::uint64_t unseen_counter = 0;
  const std::uint64_t unique_base = options.seed_base + 1'000'000;
  const std::uint64_t unseen_base = options.seed_base ^ 0x756e7365656eull;

  auto close_group = [&plan, &global_files](UserState& u) {
    if (!u.group_open) return;
    if (u.group_bytes == 0) u.group_bytes = 64 * kKiB;  // metadata-only store
    if (u.group_item != kNoItem) {
      plan.items[u.group_item].bytes = u.group_bytes;
    }
    const FileRef ref{u.group_seed, u.group_bytes};
    u.files.Push(ref);
    global_files.Push(ref);
    u.group_open = false;
    u.group_item = kNoItem;
    u.group_bytes = 0;
    u.next_chunk = 0;
  };
  auto open_group = [&](UserState& u, std::size_t item_index) {
    close_group(u);
    u.group_open = true;
    u.group_item = item_index;
    const bool popular =
        options.popular_every > 0 && options.popular_seeds > 0 &&
        (store_counter % options.popular_every) == options.popular_every - 1;
    u.group_seed = popular ? options.seed_base +
                                 (store_counter / options.popular_every) %
                                     options.popular_seeds
                           : unique_base + store_counter;
    ++store_counter;
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const LogRecord& r = trace[i];
    UserState& u = users[r.user_id];
    PlanItem item;
    item.send_at = raw[i] * scale;
    item.user_id = r.user_id;
    item.device_id = r.device_id;
    item.device_type = r.device_type;

    if (r.request_type == RequestType::kFileOperation) {
      ++plan.fileops;
      if (r.direction == Direction::kStore) {
        item.kind = PlanKind::kFileOpStore;
        open_group(u, plan.items.size());
        item.content_seed = u.group_seed;
        item.bytes = 0;  // patched when the group closes
      } else {
        item.kind = PlanKind::kFileOpRetrieve;
        if (!u.files.Empty()) {
          const FileRef& ref = u.files.Pick();
          item.content_seed = ref.seed;
          item.bytes = ref.bytes;
        } else if (!global_files.Empty()) {
          const FileRef& ref = global_files.Pick();
          item.content_seed = ref.seed;
          item.bytes = ref.bytes;
        } else {
          item.content_seed = unseen_base + unseen_counter++;
          item.bytes = 64 * kKiB;
          item.expect_missing = true;
        }
      }
    } else if (r.direction == Direction::kStore) {
      item.kind = PlanKind::kChunkPut;
      ++plan.chunk_puts;
      if (!u.group_open) open_group(u, kNoItem);  // trace starts mid-stream
      item.content_seed = u.group_seed;
      item.chunk_index = u.next_chunk++;
      item.bytes = CapBody(r.data_volume, options.max_chunk_bytes);
      u.group_bytes += item.bytes;
      plan.put_bytes += item.bytes;
      const ChunkRef ref{item.content_seed, item.chunk_index, item.bytes};
      u.chunks.Push(ref);
      global_chunks.Push(ref);
    } else {
      item.kind = PlanKind::kChunkGet;
      ++plan.chunk_gets;
      if (!u.chunks.Empty()) {
        const ChunkRef& ref = u.chunks.Pick();
        item.content_seed = ref.seed;
        item.chunk_index = ref.index;
        item.bytes = ref.bytes;
      } else if (!global_chunks.Empty()) {
        const ChunkRef& ref = global_chunks.Pick();
        item.content_seed = ref.seed;
        item.chunk_index = ref.index;
        item.bytes = ref.bytes;
      } else {
        item.content_seed = unseen_base + unseen_counter++;
        item.chunk_index = 0;
        item.bytes = CapBody(r.data_volume, options.max_chunk_bytes);
        item.expect_missing = true;
      }
    }
    plan.items.push_back(item);
  }
  for (auto& [id, u] : users) close_group(u);
  plan.duration = plan.items.back().send_at;
  return plan;
}

// --- blocking loopback client --------------------------------------------

namespace {

class BlockingClient {
 public:
  ~BlockingClient() { Close(); }

  [[nodiscard]] bool Connected() const { return fd_ >= 0; }

  bool Connect(const std::string& host, std::uint16_t port,
               Seconds io_timeout) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      Close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(io_timeout);
    tv.tv_usec = static_cast<suseconds_t>(
        (io_timeout - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    parser_ = HttpResponseParser{};
    return true;
  }

  bool SendAll(std::string_view bytes) {
    while (!bytes.empty()) {
      const ssize_t n =
          ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        Close();
        return false;
      }
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  bool RecvResponse(HttpResponseMsg& out) {
    char buf[64 * 1024];
    for (;;) {
      switch (parser_.Poll(out)) {
        case HttpResponseParser::Result::kResponse:
          return true;
        case HttpResponseParser::Result::kError:
          Close();
          return false;
        case HttpResponseParser::Result::kNeedMore:
          break;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        Close();
        return false;
      }
      parser_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  HttpResponseParser parser_;
};

struct WireRequest {
  std::string bytes;     ///< serialized request
  std::string expected;  ///< synthesized chunk body (GET verification)
  Md5Digest md5;         ///< chunk md5 (GET)
};

[[nodiscard]] WireRequest BuildWire(const PlanItem& item) {
  WireRequest w;
  HeaderList h;
  h.emplace_back(std::string(kHdrUser), std::to_string(item.user_id));
  h.emplace_back(std::string(kHdrDevice), std::to_string(item.device_id));
  h.emplace_back(std::string(kHdrDeviceType),
                 std::string(ToString(item.device_type)));
  switch (item.kind) {
    case PlanKind::kFileOpStore:
    case PlanKind::kFileOpRetrieve: {
      h.emplace_back(std::string(kHdrDirection),
                     item.kind == PlanKind::kFileOpStore ? "store"
                                                         : "retrieve");
      h.emplace_back(std::string(kHdrContentSeed),
                     std::to_string(item.content_seed));
      h.emplace_back(std::string(kHdrBytes), std::to_string(item.bytes));
      w.bytes = SerializeRequest("POST", "/fileop", h, "");
      break;
    }
    case PlanKind::kChunkPut: {
      h.emplace_back(std::string(kHdrChunkIndex),
                     std::to_string(item.chunk_index));
      std::string body;
      FillChunkBody(item.content_seed, item.chunk_index, item.bytes, body);
      w.md5 = Md5::Hash(body);
      w.bytes = SerializeRequest("PUT", "/chunk", h, body);
      break;
    }
    case PlanKind::kChunkGet: {
      h.emplace_back(std::string(kHdrChunkIndex),
                     std::to_string(item.chunk_index));
      h.emplace_back(std::string(kHdrBytes), std::to_string(item.bytes));
      FillChunkBody(item.content_seed, item.chunk_index, item.bytes,
                    w.expected);
      w.md5 = Md5::Hash(w.expected);
      w.bytes =
          SerializeRequest("GET", "/chunk/" + w.md5.ToHex(), h, "");
      break;
    }
  }
  return w;
}

}  // namespace

Seconds ReplayReport::LatencyQuantile(double q) const {
  return std::pow(10.0, latency_log10.ValueAtQuantile(q));
}

Seconds ReplayReport::ChunkLatencyQuantile(double q) const {
  return std::pow(10.0, chunk_latency_log10.ValueAtQuantile(q));
}

std::string ReplayReport::ToJson() const {
  std::string s = "{\n";
  auto u64 = [&s](std::string_view key, std::uint64_t v, bool last = false) {
    s.append("  \"").append(key).append("\": ").append(std::to_string(v));
    s.append(last ? "\n" : ",\n");
  };
  auto f64 = [&s](std::string_view key, double v, bool last = false) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    s.append("  \"").append(key).append("\": ").append(buf);
    s.append(last ? "\n" : ",\n");
  };
  u64("sent", sent);
  u64("ok", ok);
  u64("http_errors", http_errors);
  u64("transport_errors", transport_errors);
  u64("verify_failures", verify_failures);
  u64("dedup_hits", dedup_hits);
  u64("index_serves", index_serves);
  u64("replica_serves", replica_serves);
  u64("bytes_sent", bytes_sent);
  u64("bytes_received", bytes_received);
  f64("wall_seconds", wall_seconds);
  f64("achieved_qps", achieved_qps);
  for (const auto& [name, hist] :
       {std::pair<std::string_view, const Histogram*>{"latency", &latency_log10},
        {"chunk_latency", &chunk_latency_log10}}) {
    f64(std::string(name) + "_p50_s", std::pow(10.0, hist->ValueAtQuantile(0.50)));
    f64(std::string(name) + "_p90_s", std::pow(10.0, hist->ValueAtQuantile(0.90)));
    f64(std::string(name) + "_p99_s", std::pow(10.0, hist->ValueAtQuantile(0.99)));
    f64(std::string(name) + "_p999_s",
        std::pow(10.0, hist->ValueAtQuantile(0.999)));
    s.append("  \"").append(name).append("_log10_bins\": [");
    bool first = true;
    for (std::size_t i = 0; i < hist->bins(); ++i) {
      if (hist->Count(i) == 0) continue;
      if (!first) s.append(", ");
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "[%.4g, %llu]", hist->BinLeft(i),
                    static_cast<unsigned long long>(hist->Count(i)));
      s.append(buf);
    }
    s.append("],\n");
  }
  u64("schema", 1, true);
  s.append("}\n");
  return s;
}

ReplayReport ExecuteReplay(const ReplayPlan& plan,
                           const ReplayOptions& options) {
  ReplayReport report;
  if (plan.items.empty()) return report;

  {
    BlockingClient probe;
    MCLOUD_REQUIRE(probe.Connect(options.host, options.port,
                                 options.io_timeout),
                   "mcloudload: nothing listening on " + options.host + ":" +
                       std::to_string(options.port));
  }

  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, options.connections)),
      plan.items.size()));
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  const auto start = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(20);

  auto run_worker = [&]() {
    BlockingClient client;
    ReplayReport local;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= plan.items.size()) break;
      const PlanItem& item = plan.items[i];
      const auto deadline =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(item.send_at));
      std::this_thread::sleep_until(deadline);

      const WireRequest wire = BuildWire(item);
      if (!options.persistent) client.Close();
      if (!client.Connected() &&
          !client.Connect(options.host, options.port, options.io_timeout)) {
        ++local.sent;
        ++local.transport_errors;
        continue;
      }
      ++local.sent;
      local.bytes_sent += wire.bytes.size();
      HttpResponseMsg resp;
      if (!client.SendAll(wire.bytes) || !client.RecvResponse(resp)) {
        ++local.transport_errors;
        continue;
      }
      local.bytes_received += resp.body.size();
      const Seconds latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        deadline)
              .count();
      const double log_latency = std::log10(std::max(latency, 1e-9));
      local.latency_log10.Add(log_latency);
      const bool chunk_req = item.kind == PlanKind::kChunkPut ||
                             item.kind == PlanKind::kChunkGet;
      if (chunk_req) local.chunk_latency_log10.Add(log_latency);

      if (resp.status / 100 != 2) {
        ++local.http_errors;
        continue;
      }
      ++local.ok;
      if (item.kind == PlanKind::kChunkPut) {
        if (const std::string* src = resp.Header(kHdrSource);
            src != nullptr && *src == "index") {
          ++local.dedup_hits;
        }
      } else if (item.kind == PlanKind::kChunkGet) {
        const std::string* src = resp.Header(kHdrSource);
        const bool from_index = src != nullptr && *src == "index";
        if (from_index) {
          ++local.index_serves;
        } else {
          ++local.replica_serves;
        }
        if (options.verify) {
          bool good;
          if (from_index) {
            good = resp.body == wire.expected;
          } else {
            std::string replica;
            FillReplicaBody(wire.md5, resp.body.size(), replica);
            good = resp.body == replica;
          }
          if (!good) ++local.verify_failures;
        }
      }
    }
    client.Close();

    const std::scoped_lock lock(mu);
    report.sent += local.sent;
    report.ok += local.ok;
    report.http_errors += local.http_errors;
    report.transport_errors += local.transport_errors;
    report.verify_failures += local.verify_failures;
    report.dedup_hits += local.dedup_hits;
    report.index_serves += local.index_serves;
    report.replica_serves += local.replica_serves;
    report.bytes_sent += local.bytes_sent;
    report.bytes_received += local.bytes_received;
    for (const auto& [from, to] :
         {std::pair<const Histogram*, Histogram*>{&local.latency_log10,
                                                  &report.latency_log10},
          {&local.chunk_latency_log10, &report.chunk_latency_log10}}) {
      for (std::size_t b = 0; b < from->bins(); ++b) {
        if (from->Count(b) > 0) to->Add(from->BinCenter(b), from->Count(b));
      }
      if (from->Underflow() > 0) to->Add(from->lo() - 1.0, from->Underflow());
      if (from->Overflow() > 0) to->Add(from->hi() + 1.0, from->Overflow());
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) threads.emplace_back(run_worker);
  for (std::thread& t : threads) t.join();

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.achieved_qps = report.wall_seconds > 0
                            ? static_cast<double>(report.sent) /
                                  report.wall_seconds
                            : 0;
  return report;
}

std::optional<std::string> LiveLogMatchesTrace(
    std::span<const LogRecord> trace, std::span<const LogRecord> live) {
  if (trace.size() != live.size()) {
    return "record count mismatch: trace has " +
           std::to_string(trace.size()) + ", live log has " +
           std::to_string(live.size());
  }
  using Key = std::tuple<std::uint64_t, int, int>;
  std::map<Key, std::int64_t> delta;
  for (const LogRecord& r : trace) {
    ++delta[{r.user_id, static_cast<int>(r.request_type),
             static_cast<int>(r.direction)}];
  }
  for (const LogRecord& r : live) {
    --delta[{r.user_id, static_cast<int>(r.request_type),
             static_cast<int>(r.direction)}];
  }
  for (const auto& [key, d] : delta) {
    if (d == 0) continue;
    const auto& [user, type, dir] = key;
    return "per-session mismatch for user " + std::to_string(user) +
           " (type=" + std::string(ToString(static_cast<RequestType>(type))) +
           ", dir=" + std::string(ToString(static_cast<Direction>(dir))) +
           "): " + std::to_string(d > 0 ? d : -d) +
           (d > 0 ? " missing from" : " extra in") + " live log";
  }
  return std::nullopt;
}

std::vector<LogRecord> LoadTraceForReplay(const std::filesystem::path& path) {
  if (std::filesystem::is_directory(path)) {
    const PartitionedTrace pt = PartitionedTrace::Open(path);
    std::vector<LogRecord> records;
    records.reserve(pt.rows());
    const std::span<const std::uint64_t> user_ids = pt.user_ids();
    pt.Scan(1 << 20, [&records, user_ids](std::int64_t,
                                          const TraceRowBlock& block) {
      for (std::size_t i = 0; i < block.rows(); ++i) {
        LogRecord r;
        r.timestamp = block.timestamps[i];
        r.device_type = static_cast<DeviceType>(block.device_types[i]);
        r.device_id = block.device_ids[i];
        r.user_id = user_ids[block.users[i]];
        r.request_type = static_cast<RequestType>(block.request_types[i]);
        r.direction = static_cast<Direction>(block.directions[i]);
        r.data_volume = block.data_volumes[i];
        records.push_back(r);
      }
    });
    return records;
  }
  if (path.extension() == ".csv") return ReadCsvTrace(path);
  return ReadBinaryTrace(path);
}

}  // namespace mcloud::net
