// Open-loop trace replay against a live `mcloudd` (DESIGN.md §11).
//
// BuildReplayPlan turns a time-sorted Table 1 trace into one wire request
// per record — POST /fileop for file operations, PUT /chunk for chunk
// stores, GET /chunk/<md5> for chunk retrievals — with content identity
// synthesized deterministically so that (a) dedup happens at the same
// places on every run and (b) the client can verify every retrieved byte.
// Trace timestamps become send deadlines, optionally rescaled to a target
// aggregate request rate.
//
// ExecuteReplay drives the plan open-loop: requests are due at their
// scheduled instant regardless of earlier completions (PBench-style), so
// server slowdowns surface as queueing delay in the measured latency
// rather than silently stretching the run. N workers each own one
// connection (persistent) or reconnect per request.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/log_record.h"
#include "util/histogram.h"
#include "util/md5.h"
#include "util/units.h"

namespace mcloud::net {

enum class PlanKind : std::uint8_t {
  kFileOpStore = 0,
  kFileOpRetrieve = 1,
  kChunkPut = 2,
  kChunkGet = 3,
};

/// One wire request. For kChunkGet, (content_seed, chunk_index, bytes)
/// name the *referenced* chunk: the worker re-synthesizes its body to form
/// the URL md5 and to verify the response.
struct PlanItem {
  Seconds send_at = 0;  ///< offset from replay start, already rate-scaled
  PlanKind kind = PlanKind::kFileOpStore;
  std::uint64_t user_id = 0;
  std::uint64_t device_id = 0;
  DeviceType device_type = DeviceType::kAndroid;
  std::uint64_t content_seed = 0;
  Bytes bytes = 0;  ///< fileop: file size; put/get: chunk body size
  std::uint32_t chunk_index = 0;
  bool expect_missing = false;  ///< retrieve of content never stored here
};

struct ReplayPlanOptions {
  /// Target aggregate request rate; 0 replays at original trace speed.
  double target_qps = 0;
  /// Cap chunk-body sizes (request *count* is unchanged); 0 = trace sizes.
  /// CI uses a small cap so loopback runs finish quickly on one core.
  Bytes max_chunk_bytes = 0;
  /// Namespace for synthesized content seeds.
  std::uint64_t seed_base = 0x6d636c6f7564ull;
  /// Every `popular_every`-th stored file draws its seed from a pool of
  /// `popular_seeds` — identical content across users, exercising file- and
  /// chunk-level dedup exactly like the paper's URL-shared popular files.
  std::size_t popular_seeds = 16;
  std::size_t popular_every = 8;
};

struct ReplayPlan {
  std::vector<PlanItem> items;  ///< sorted by send_at
  Seconds duration = 0;         ///< scheduled span (last send_at)
  std::uint64_t fileops = 0;
  std::uint64_t chunk_puts = 0;
  std::uint64_t chunk_gets = 0;
  Bytes put_bytes = 0;
};

/// `trace` must be sorted by LogRecordTimeOrder (trace files are).
[[nodiscard]] ReplayPlan BuildReplayPlan(std::span<const LogRecord> trace,
                                         const ReplayPlanOptions& options);

struct ReplayOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connections = 4;
  /// false = open a fresh connection per request (the PR 5 what-if axis).
  bool persistent = true;
  /// MD5-verify retrieved chunk bodies and PUT echo tags.
  bool verify = true;
  /// Per-socket receive timeout.
  Seconds io_timeout = 30.0;
};

struct ReplayReport {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t http_errors = 0;       ///< non-2xx responses
  std::uint64_t transport_errors = 0;  ///< connect/send/recv/parse failures
  std::uint64_t verify_failures = 0;
  std::uint64_t dedup_hits = 0;      ///< server answered PUT with dedup:true
  std::uint64_t index_serves = 0;    ///< GET served from the chunk index
  std::uint64_t replica_serves = 0;  ///< GET served via the replica path
  Bytes bytes_sent = 0;
  Bytes bytes_received = 0;
  Seconds wall_seconds = 0;
  double achieved_qps = 0;
  /// log10(latency seconds), latency measured from the *scheduled* send
  /// instant to response completion (open-loop: includes queueing delay).
  Histogram latency_log10{-7.0, 3.0, 200};
  /// Chunk requests only (the T_chunk-comparable population).
  Histogram chunk_latency_log10{-7.0, 3.0, 200};

  [[nodiscard]] Seconds LatencyQuantile(double q) const;
  [[nodiscard]] Seconds ChunkLatencyQuantile(double q) const;
  /// Latency histogram + quantiles as JSON (the CI artifact payload).
  [[nodiscard]] std::string ToJson() const;
};

/// Drive the plan against a live server. Blocks until every request has
/// been answered (or failed). Throws Error only on setup failures (e.g.
/// nothing listening); per-request failures are counted in the report.
[[nodiscard]] ReplayReport ExecuteReplay(const ReplayPlan& plan,
                                         const ReplayOptions& options);

/// Check that a live run produced exactly the records the input trace
/// implies: total count and per-(user, request type, direction) counts
/// match 1:1. Returns nullopt on a match, else a human-readable mismatch.
[[nodiscard]] std::optional<std::string> LiveLogMatchesTrace(
    std::span<const LogRecord> trace, std::span<const LogRecord> live);

/// Load a trace for replay: a directory is opened as a partitioned
/// MCLOGv02 trace (out-of-core pipeline output), a `.csv` file as CSV,
/// anything else as a v1 binary trace.
[[nodiscard]] std::vector<LogRecord> LoadTraceForReplay(
    const std::filesystem::path& path);

}  // namespace mcloud::net
