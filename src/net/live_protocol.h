// Wire protocol of the live service mode (DESIGN.md §11) — the pieces the
// server (`mcloudd` / LiveService) and the replay client (`mcloudload`)
// must agree on byte-for-byte.
//
// Grammar (HTTP/1.1 over loopback TCP, §2.1's store/retrieve protocol):
//   POST /fileop           announce a file store/retrieve (metadata only)
//   PUT  /chunk            move one (up to) 512 KB chunk; body = chunk bytes
//   GET  /chunk/<hex-md5>  fetch a chunk by content hash (chunked response)
//   GET  /stats            service counters (JSON)
//   GET  /healthz          liveness probe
// Request metadata rides in X-Mc-* headers (Table 1 fields the real
// front-ends read from the request line + auth context).
//
// Chunk bodies are synthesized deterministically — the trace carries no real
// bytes — from (content_seed, chunk_index) via a SplitMix64 keystream, so
// identical logical content hashes identically everywhere (what the dedup
// index needs) and the client can verify retrieved bytes by MD5 alone.
// A chunk the server never saw is still served (a replica elsewhere in the
// real fleet holds it): those bodies derive from the *requested md5*, again
// deterministically, so both sides can check them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/md5.h"
#include "util/units.h"

namespace mcloud::net {

// --- header names ---------------------------------------------------------
inline constexpr std::string_view kHdrUser = "X-Mc-User";
inline constexpr std::string_view kHdrDevice = "X-Mc-Device";
inline constexpr std::string_view kHdrDeviceType = "X-Mc-Device-Type";
inline constexpr std::string_view kHdrDirection = "X-Mc-Direction";
inline constexpr std::string_view kHdrContentSeed = "X-Mc-Content-Seed";
inline constexpr std::string_view kHdrBytes = "X-Mc-Bytes";
inline constexpr std::string_view kHdrChunkIndex = "X-Mc-Chunk-Index";
inline constexpr std::string_view kHdrFrontEnd = "X-Mc-Front-End";
/// Response header on GET /chunk: "index" (served from this front-end's
/// chunk index) or "replica" (unknown here, synthesized replica).
inline constexpr std::string_view kHdrSource = "X-Mc-Source";

namespace detail {

[[nodiscard]] inline std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline void FillKeystream(std::uint64_t seed0, std::uint64_t seed1,
                          std::string& out, Bytes size) {
  out.clear();
  out.reserve(size);
  std::uint64_t state = seed0 ^ (seed1 * 0xD1B54A32D192ED03ull);
  while (out.size() < size) {
    std::uint64_t w = SplitMix64(state);
    const std::size_t take =
        std::min<std::size_t>(8, static_cast<std::size_t>(size) - out.size());
    out.append(reinterpret_cast<const char*>(&w), take);
  }
}

}  // namespace detail

/// Deterministic bytes of chunk `index` of logical content `content_seed`.
/// Same (seed, index, size) ⇒ same bytes ⇒ same MD5: chunk-level dedup in
/// the front-end index works exactly as it does in the simulation.
inline void FillChunkBody(std::uint64_t content_seed, std::uint32_t index,
                          Bytes size, std::string& out) {
  detail::FillKeystream(content_seed, 0x6368756E6Bull + index, out, size);
}

/// Deterministic replica bytes for a chunk known only by its md5 — what the
/// wider fleet would serve for content this front-end never ingested.
inline void FillReplicaBody(const Md5Digest& md5, Bytes size,
                            std::string& out) {
  std::uint64_t hi = 0;
  for (int i = 8; i < 16; ++i) {
    hi = (hi << 8) | md5.bytes[static_cast<std::size_t>(i)];
  }
  detail::FillKeystream(md5.Low64(), hi ^ 0x7265706C696361ull, out, size);
}

/// Parse a 32-hex-digit MD5. Returns false on malformed input.
[[nodiscard]] inline bool ParseHexMd5(std::string_view hex, Md5Digest& out) {
  if (hex.size() != 32) return false;
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < 16; ++i) {
    const int hi = nib(hex[2 * i]);
    const int lo = nib(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return true;
}

}  // namespace mcloud::net
