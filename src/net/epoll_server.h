// Single-threaded epoll HTTP server — the network front of `mcloudd`
// (DESIGN.md §11).
//
// Design points, in the order they matter to correctness:
//   * The listener binds with SO_REUSEADDR and supports port 0: the kernel
//     assigns an ephemeral port which Start() returns (and `mcloudd` prints),
//     so loopback tests never race on a fixed port.
//   * Everything is nonblocking and level-triggered on one epoll instance;
//     the handler runs on the server thread, so handler state needs no locks.
//   * Responses carry an optional on_flushed callback fired when the last
//     byte has been written to the socket — the hook the live service uses to
//     measure T_chunk (first byte in → last byte out) on real kernel TCP.
//   * RequestStop() is thread- and async-signal-safe (one eventfd write).
//     Stopping drains: the listener closes immediately, buffered pipelined
//     requests are answered, pending output is flushed, then Run() returns.
//     A grace deadline bounds the drain against stuck peers.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/http.h"
#include "util/units.h"

namespace mcloud::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
  int backlog = 128;
  HttpLimits limits{};
  Seconds drain_grace = 5.0;  ///< max wait for in-flight flush on stop
};

/// Per-request context handed to the handler alongside the parsed request.
struct RequestContext {
  /// steady_clock instant when the first byte of this request arrived.
  std::chrono::steady_clock::time_point first_byte_at{};
  /// First byte in → parse complete (the request receive time).
  Seconds recv_seconds = 0;
  /// Kernel-smoothed RTT of the carrying connection (TCP_INFO), seconds.
  Seconds rtt = 0;
};

using HttpHandler =
    std::function<HttpResponse(const HttpRequest&, const RequestContext&)>;

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t closed = 0;
};

class EpollServer {
 public:
  EpollServer(const ServerConfig& config, HttpHandler handler);
  ~EpollServer();
  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Bind + listen. Returns the bound port (the kernel-assigned one when
  /// config.port == 0). Throws Error on any socket failure.
  std::uint16_t Start();
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Serve until RequestStop(), then drain and return. Call Start() first.
  void Run();

  /// Thread- and signal-safe stop request (eventfd write).
  void RequestStop();

  /// Route SIGINT/SIGTERM to server.RequestStop(). One server at a time;
  /// passing nullptr restores SIG_DFL.
  static void InstallStopSignals(EpollServer* server);

  [[nodiscard]] const ServerStats& stats() const { return stats_; }

 private:
  struct Connection {
    int fd = -1;
    HttpParser parser;
    std::string out;          ///< bytes queued, not yet written
    std::size_t out_off = 0;  ///< written prefix of `out`
    /// (queued-bytes watermark, callback) pairs: fired when the total
    /// written byte count passes the watermark.
    std::vector<std::pair<std::uint64_t, std::function<void()>>> flush_cbs;
    std::uint64_t queued = 0;   ///< total bytes ever queued
    std::uint64_t written = 0;  ///< total bytes ever written
    bool close_after_flush = false;
    bool want_write = false;  ///< EPOLLOUT currently registered
    std::chrono::steady_clock::time_point first_byte_at{};
    bool in_request = false;  ///< first_byte_at is armed

    explicit Connection(const HttpLimits& limits) : parser(limits) {}
    [[nodiscard]] bool FlushDone() const { return out_off == out.size(); }
  };

  void AcceptPending();
  /// Returns false when the connection was closed.
  bool HandleReadable(Connection& conn);
  bool FlushWrites(Connection& conn);
  void QueueResponse(Connection& conn, const HttpResponse& response);
  void UpdateInterest(Connection& conn);
  void CloseConnection(int fd);

  ServerConfig config_;
  HttpHandler handler_;
  ServerStats stats_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int stop_fd_ = -1;  ///< eventfd; any write requests a stop
  std::uint16_t port_ = 0;
  std::map<int, Connection> connections_;
};

}  // namespace mcloud::net
