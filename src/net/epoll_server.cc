#include "net/epoll_server.h"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"

namespace mcloud::net {

namespace {

using Clock = std::chrono::steady_clock;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MCLOUD_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(O_NONBLOCK) failed");
}

[[nodiscard]] Seconds KernelRtt(int fd) {
  struct tcp_info info{};
  socklen_t len = sizeof(info);
  if (::getsockopt(fd, IPPROTO_TCP, TCP_INFO, &info, &len) != 0) return 0;
  return static_cast<Seconds>(info.tcpi_rtt) * 1e-6;
}

std::atomic<EpollServer*> g_signal_server{nullptr};

void StopSignalHandler(int /*signo*/) {
  // Async-signal-safe: RequestStop is one eventfd write.
  if (EpollServer* s = g_signal_server.load(std::memory_order_relaxed)) {
    s->RequestStop();
  }
}

}  // namespace

EpollServer::EpollServer(const ServerConfig& config, HttpHandler handler)
    : config_(config), handler_(std::move(handler)) {
  MCLOUD_REQUIRE(handler_ != nullptr, "EpollServer needs a handler");
}

EpollServer::~EpollServer() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_fd_ >= 0) ::close(stop_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (g_signal_server.load(std::memory_order_relaxed) == this) {
    InstallStopSignals(nullptr);
  }
}

std::uint16_t EpollServer::Start() {
  MCLOUD_REQUIRE(listen_fd_ < 0, "Start() called twice");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  MCLOUD_CHECK(epoll_fd_ >= 0, "epoll_create1 failed");
  stop_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  MCLOUD_CHECK(stop_fd_ >= 0, "eventfd failed");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MCLOUD_CHECK(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    throw Error("bad bind address: " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw Error("bind(" + config_.bind_address + ":" +
                std::to_string(config_.port) +
                ") failed: " + std::strerror(errno));
  }
  MCLOUD_CHECK(::listen(listen_fd_, config_.backlog) == 0, "listen() failed");
  SetNonBlocking(listen_fd_);

  // Report the port the kernel actually assigned (the point of port 0).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  MCLOUD_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                             &len) == 0,
               "getsockname failed");
  port_ = ntohs(bound.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  MCLOUD_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
               "epoll_ctl(listener) failed");
  ev.events = EPOLLIN;
  ev.data.fd = stop_fd_;
  MCLOUD_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_fd_, &ev) == 0,
               "epoll_ctl(stop) failed");
  return port_;
}

void EpollServer::RequestStop() {
  if (stop_fd_ < 0) return;
  const std::uint64_t one = 1;
  // Best effort; EAGAIN means a stop is already pending.
  [[maybe_unused]] const auto n = ::write(stop_fd_, &one, sizeof(one));
}

void EpollServer::InstallStopSignals(EpollServer* server) {
  g_signal_server.store(server, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = server != nullptr ? StopSignalHandler : SIG_DFL;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void EpollServer::UpdateInterest(Connection& conn) {
  const bool want_write = !conn.FlushDone();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  MCLOUD_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0,
               "epoll_ctl(MOD) failed");
}

void EpollServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  ++stats_.closed;
}

void EpollServer::AcceptPending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // transient accept failure; keep serving
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto [it, inserted] =
        connections_.emplace(fd, Connection(config_.limits));
    it->second.fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    MCLOUD_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                 "epoll_ctl(ADD conn) failed");
    ++stats_.accepted;
  }
}

void EpollServer::QueueResponse(Connection& conn,
                                const HttpResponse& response) {
  conn.out.append(SerializeResponse(response));
  conn.queued = conn.written + (conn.out.size() - conn.out_off);
  if (response.on_flushed) {
    conn.flush_cbs.emplace_back(conn.queued, response.on_flushed);
  }
  if (response.close) conn.close_after_flush = true;
  ++stats_.responses;
}

bool EpollServer::FlushWrites(Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    const auto n = ::send(conn.fd, conn.out.data() + conn.out_off,
                          conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn.fd);
      return false;
    }
    conn.out_off += static_cast<std::size_t>(n);
    conn.written += static_cast<std::uint64_t>(n);
    // Fire flush callbacks whose watermark the write crossed.
    while (!conn.flush_cbs.empty() &&
           conn.flush_cbs.front().first <= conn.written) {
      auto cb = std::move(conn.flush_cbs.front().second);
      conn.flush_cbs.erase(conn.flush_cbs.begin());
      cb();
    }
  }
  if (conn.FlushDone()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
      CloseConnection(conn.fd);
      return false;
    }
  }
  UpdateInterest(conn);
  return true;
}

bool EpollServer::HandleReadable(Connection& conn) {
  char buf[64 * 1024];
  bool peer_closed = false;
  for (;;) {
    const auto n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!conn.in_request) {
        conn.in_request = true;
        conn.first_byte_at = Clock::now();
      }
      conn.parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn.fd);
    return false;
  }

  HttpRequest req;
  for (;;) {
    const HttpParser::Result r = conn.parser.Poll(req);
    if (r == HttpParser::Result::kNeedMore) break;
    if (r == HttpParser::Result::kError) {
      ++stats_.parse_errors;
      HttpResponse err;
      err.status = conn.parser.error_status();
      err.body = conn.parser.error();
      err.body.append("\n");
      err.close = true;
      QueueResponse(conn, err);
      conn.in_request = false;
      break;
    }
    ++stats_.requests;
    RequestContext ctx;
    ctx.first_byte_at = conn.first_byte_at;
    ctx.recv_seconds =
        std::chrono::duration<double>(Clock::now() - conn.first_byte_at)
            .count();
    ctx.rtt = KernelRtt(conn.fd);
    HttpResponse resp = handler_(req, ctx);
    if (!req.KeepAlive()) resp.close = true;
    QueueResponse(conn, resp);
    // A pipelined next request already buffered starts its clock now (its
    // bytes arrived while this one was being handled).
    conn.in_request = conn.parser.HasBufferedData();
    conn.first_byte_at = Clock::now();
    if (resp.close) break;
  }

  if (peer_closed && conn.FlushDone()) {
    CloseConnection(conn.fd);
    return false;
  }
  if (peer_closed) conn.close_after_flush = true;
  return FlushWrites(conn);
}

void EpollServer::Run() {
  MCLOUD_REQUIRE(listen_fd_ >= 0, "call Start() before Run()");
  bool draining = false;
  Clock::time_point drain_deadline{};
  epoll_event events[64];

  for (;;) {
    if (draining) {
      // Close connections with nothing left to say; leave flushing ones.
      std::vector<int> idle;
      for (auto& [fd, conn] : connections_) {
        if (conn.FlushDone() && !conn.parser.HasBufferedData()) {
          idle.push_back(fd);
        }
      }
      for (int fd : idle) CloseConnection(fd);
      if (connections_.empty() || Clock::now() >= drain_deadline) break;
    }

    const int timeout_ms = draining ? 20 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("epoll_wait failed: ") + std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == stop_fd_) {
        std::uint64_t drainval = 0;
        [[maybe_unused]] const auto rd =
            ::read(stop_fd_, &drainval, sizeof(drainval));
        if (!draining) {
          draining = true;
          drain_deadline =
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     config_.drain_grace));
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConnection(fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        if (!HandleReadable(conn)) continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushWrites(conn);
    }
  }

  // Hard-close anything the grace period left behind.
  while (!connections_.empty()) CloseConnection(connections_.begin()->first);
}

}  // namespace mcloud::net
