#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace mcloud::net {

namespace {

[[nodiscard]] bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Byte offset one past the blank line ending the header block, or npos.
/// Accepts CRLF and bare LF line endings.
[[nodiscard]] std::size_t HeaderBlockEnd(std::string_view buf) {
  const std::size_t crlf = buf.find("\r\n\r\n");
  const std::size_t lf = buf.find("\n\n");
  if (crlf == std::string_view::npos) {
    return lf == std::string_view::npos ? std::string_view::npos : lf + 2;
  }
  if (lf != std::string_view::npos && lf < crlf) return lf + 2;
  return crlf + 4;
}

/// Pop one header-block line [start of `rest`, first LF), trimming the line
/// ending. Returns false when `rest` is exhausted.
bool NextLine(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const std::size_t lf = rest.find('\n');
  if (lf == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, lf);
    rest.remove_prefix(lf + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return true;
}

[[nodiscard]] bool ParseU64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Parse "Name: value" lines into `headers`; empty return on success, else
/// the offending line.
[[nodiscard]] std::string_view ParseHeaderLines(std::string_view block,
                                                HeaderList& headers) {
  std::string_view line;
  while (NextLine(block, line)) {
    if (line.empty()) continue;  // the terminating blank line
    if (std::isspace(static_cast<unsigned char>(line.front()))) {
      return line;  // obs-fold continuations are rejected
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return line;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    if (name.find(' ') != std::string_view::npos) return line;
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.front()))) {
      value.remove_prefix(1);
    }
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.back()))) {
      value.remove_suffix(1);
    }
    headers.emplace_back(std::string(name), std::string(value));
  }
  return {};
}

}  // namespace

const std::string* FindHeader(const HeaderList& headers,
                              std::string_view name) {
  for (const auto& [n, v] : headers) {
    if (EqualsIgnoreCase(n, name)) return &v;
  }
  return nullptr;
}

std::uint64_t HttpRequest::HeaderU64(std::string_view name,
                                     std::uint64_t fallback) const {
  const std::string* v = Header(name);
  std::uint64_t out = 0;
  if (v != nullptr && ParseU64(*v, out)) return out;
  return fallback;
}

bool HttpRequest::KeepAlive() const {
  const std::string* c = Header("Connection");
  if (c != nullptr) {
    if (EqualsIgnoreCase(*c, "close")) return false;
    if (EqualsIgnoreCase(*c, "keep-alive")) return true;
  }
  return version != "HTTP/1.0";
}

std::string_view StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& r) {
  std::string out;
  out.reserve(r.body.size() + 256);
  char line[96];
  std::snprintf(line, sizeof(line), "HTTP/1.1 %d ", r.status);
  out.append(line).append(StatusReason(r.status)).append("\r\n");
  for (const auto& [n, v] : r.headers) {
    out.append(n).append(": ").append(v).append("\r\n");
  }
  if (r.close) out.append("Connection: close\r\n");
  if (r.chunked) {
    out.append("Transfer-Encoding: chunked\r\n\r\n");
    std::size_t off = 0;
    const std::size_t slice = std::max<std::size_t>(r.chunk_size, 1);
    while (off < r.body.size()) {
      const std::size_t n = std::min(slice, r.body.size() - off);
      std::snprintf(line, sizeof(line), "%zx\r\n", n);
      out.append(line);
      out.append(r.body, off, n);
      out.append("\r\n");
      off += n;
    }
    out.append("0\r\n\r\n");
  } else {
    std::snprintf(line, sizeof(line), "Content-Length: %zu\r\n\r\n",
                  r.body.size());
    out.append(line);
    out.append(r.body);
  }
  return out;
}

std::string SerializeRequest(std::string_view method, std::string_view target,
                             const HeaderList& headers,
                             std::string_view body) {
  std::string out;
  out.reserve(body.size() + 192);
  out.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  for (const auto& [n, v] : headers) {
    out.append(n).append(": ").append(v).append("\r\n");
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    char line[64];
    std::snprintf(line, sizeof(line), "Content-Length: %zu\r\n",
                  body.size());
    out.append(line);
  }
  out.append("\r\n").append(body);
  return out;
}

HttpParser::Result HttpParser::Fail(int status, std::string message) {
  failed_ = true;
  error_status_ = status;
  error_ = std::move(message);
  return Result::kError;
}

HttpParser::Result HttpParser::Poll(HttpRequest& out) {
  if (failed_) return Result::kError;
  const std::string_view buf = buf_;
  const std::size_t header_end = HeaderBlockEnd(buf);
  if (header_end == std::string_view::npos) {
    if (buf.size() > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds limit");
    }
    return Result::kNeedMore;
  }
  if (header_end > limits_.max_header_bytes) {
    return Fail(431, "header block exceeds limit");
  }

  std::string_view block = buf.substr(0, header_end);
  std::string_view request_line;
  NextLine(block, request_line);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail(400, "unsupported HTTP version");
  }

  HttpRequest req;
  req.method = std::string(method);
  req.target = std::string(target);
  req.version = std::string(version);
  const std::string_view bad = ParseHeaderLines(block, req.headers);
  if (!bad.empty()) {
    return Fail(400, "malformed header line: " + std::string(bad));
  }
  if (FindHeader(req.headers, "Transfer-Encoding") != nullptr) {
    return Fail(400, "chunked request bodies are not supported");
  }

  std::uint64_t content_length = 0;
  if (const std::string* cl = FindHeader(req.headers, "Content-Length")) {
    if (!ParseU64(*cl, content_length)) {
      return Fail(400, "malformed Content-Length");
    }
    if (content_length > limits_.max_body_bytes) {
      return Fail(413, "request body exceeds limit");
    }
  }
  const std::size_t total = header_end + content_length;
  if (buf.size() < total) return Result::kNeedMore;

  req.body = buf_.substr(header_end, content_length);
  buf_.erase(0, total);
  out = std::move(req);
  return Result::kRequest;
}

HttpResponseParser::Result HttpResponseParser::Fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  return Result::kError;
}

HttpResponseParser::Result HttpResponseParser::Poll(HttpResponseMsg& out) {
  if (failed_) return Result::kError;
  const std::string_view buf = buf_;
  const std::size_t header_end = HeaderBlockEnd(buf);
  if (header_end == std::string_view::npos) {
    if (buf.size() > 64 * 1024) return Fail("response header block too large");
    return Result::kNeedMore;
  }

  std::string_view block = buf.substr(0, header_end);
  std::string_view status_line;
  NextLine(block, status_line);
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || status_line.substr(0, 5) != "HTTP/") {
    return Fail("malformed status line");
  }
  const std::size_t sp2 = status_line.find(' ', sp1 + 1);
  const std::string_view code = status_line.substr(
      sp1 + 1, (sp2 == std::string_view::npos ? status_line.size() : sp2) -
                   sp1 - 1);
  std::uint64_t status = 0;
  if (!ParseU64(code, status) || status < 100 || status > 599) {
    return Fail("malformed status code");
  }

  HttpResponseMsg msg;
  msg.version = std::string(status_line.substr(0, sp1));
  msg.status = static_cast<int>(status);
  if (sp2 != std::string_view::npos) {
    msg.reason = std::string(status_line.substr(sp2 + 1));
  }
  const std::string_view bad = ParseHeaderLines(block, msg.headers);
  if (!bad.empty()) {
    return Fail("malformed header line: " + std::string(bad));
  }

  const std::string* te = FindHeader(msg.headers, "Transfer-Encoding");
  if (te != nullptr && EqualsIgnoreCase(*te, "chunked")) {
    // Decode chunked framing. Incomplete input re-parses from scratch on
    // the next Poll — fine at chunk-retrieval sizes.
    std::string body;
    std::size_t pos = header_end;
    for (;;) {
      const std::size_t lf = buf.find('\n', pos);
      if (lf == std::string_view::npos) return Result::kNeedMore;
      std::string_view size_line = buf.substr(pos, lf - pos);
      if (!size_line.empty() && size_line.back() == '\r') {
        size_line.remove_suffix(1);
      }
      const std::size_t semi = size_line.find(';');
      if (semi != std::string_view::npos) size_line = size_line.substr(0, semi);
      std::uint64_t n = 0;
      const auto [ptr, ec] = std::from_chars(
          size_line.data(), size_line.data() + size_line.size(), n, 16);
      if (ec != std::errc() || ptr != size_line.data() + size_line.size()) {
        return Fail("malformed chunk size");
      }
      pos = lf + 1;
      if (n == 0) break;
      if (body.size() + n > max_body_bytes_) return Fail("body too large");
      if (buf.size() < pos + n) return Result::kNeedMore;
      body.append(buf.substr(pos, n));
      pos += n;
      // Consume the CRLF (or LF) after the chunk data.
      if (buf.size() < pos + 1) return Result::kNeedMore;
      if (buf[pos] == '\r') {
        if (buf.size() < pos + 2) return Result::kNeedMore;
        pos += 2;
      } else if (buf[pos] == '\n') {
        pos += 1;
      } else {
        return Fail("missing chunk terminator");
      }
    }
    // Trailers: consume lines until a blank one.
    for (;;) {
      const std::size_t lf = buf.find('\n', pos);
      if (lf == std::string_view::npos) return Result::kNeedMore;
      std::string_view line = buf.substr(pos, lf - pos);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      pos = lf + 1;
      if (line.empty()) break;
    }
    msg.body = std::move(body);
    buf_.erase(0, pos);
    out = std::move(msg);
    return Result::kResponse;
  }

  std::uint64_t content_length = 0;
  if (const std::string* cl = FindHeader(msg.headers, "Content-Length")) {
    if (!ParseU64(*cl, content_length)) return Fail("bad Content-Length");
    if (content_length > max_body_bytes_) return Fail("body too large");
  }
  const std::size_t total = header_end + content_length;
  if (buf.size() < total) return Result::kNeedMore;
  msg.body = buf_.substr(header_end, content_length);
  buf_.erase(0, total);
  out = std::move(msg);
  return Result::kResponse;
}

}  // namespace mcloud::net
