// Minimal HTTP/1.1 message layer for the live service mode (DESIGN.md §11).
//
// The paper's front-ends speak plain HTTP/1.1: a file operation announces an
// upcoming store/retrieve, then each (up to) 512 KB chunk moves in its own
// request (§2.1). This header provides exactly what `mcloudd` and the replay
// client need and nothing more:
//   * HttpParser — an incremental *request* parser: feed bytes as they
//     arrive off a nonblocking socket, pop complete requests. Handles split
//     reads, pipelined requests, Content-Length bodies, and turns malformed
//     or oversized input into a definite error status (400/413/431).
//   * HttpResponseParser — the client-side mirror: status line + headers +
//     Content-Length or chunked transfer-coded bodies.
//   * SerializeResponse / SerializeRequest — wire encoding, including the
//     chunked response writer used for chunk retrievals.
// No std::regex, no allocations beyond the message strings themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcloud::net {

/// Size gates applied while parsing. Exceeding a gate is a protocol error
/// with a definite HTTP status, not an exception: the server answers and
/// closes, exactly like a production front-end.
struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;      ///< request line + headers
  std::size_t max_body_bytes = 4 * 1024 * 1024;  ///< > one 512 KB chunk
};

using HeaderList = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive header lookup shared by requests and responses.
[[nodiscard]] const std::string* FindHeader(const HeaderList& headers,
                                            std::string_view name);

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  HeaderList headers;
  std::string body;

  [[nodiscard]] const std::string* Header(std::string_view name) const {
    return FindHeader(headers, name);
  }
  /// Parse a header as u64; `fallback` when absent or non-numeric.
  [[nodiscard]] std::uint64_t HeaderU64(std::string_view name,
                                        std::uint64_t fallback) const;
  /// HTTP/1.1 defaults to persistent connections; "Connection: close" (or
  /// HTTP/1.0 without keep-alive) ends the connection after the response.
  [[nodiscard]] bool KeepAlive() const;
};

/// A response as built by a handler. `chunked` selects chunked
/// transfer-coding (the chunk-retrieval path uses it); otherwise the body is
/// framed with Content-Length. `on_flushed` — if set — is invoked by the
/// server when the *last byte* of this response has been handed to the
/// kernel, which is how the live service measures T_chunk (first byte in →
/// last byte out) on retrievals.
struct HttpResponse {
  int status = 200;
  HeaderList headers;
  std::string body;
  bool chunked = false;
  std::size_t chunk_size = 64 * 1024;  ///< chunked-framing slice size
  bool close = false;                  ///< force Connection: close
  std::function<void()> on_flushed;
};

/// Canonical reason phrase for the statuses this layer emits.
[[nodiscard]] std::string_view StatusReason(int status);

/// Wire-encode a response (status line, headers, framing, body).
[[nodiscard]] std::string SerializeResponse(const HttpResponse& r);

/// Wire-encode a request with a Content-Length body (empty body ⇒ no
/// Content-Length header for GET-style requests).
[[nodiscard]] std::string SerializeRequest(std::string_view method,
                                           std::string_view target,
                                           const HeaderList& headers,
                                           std::string_view body);

/// Incremental HTTP/1.1 request parser.
///
///   parser.Feed(bytes_from_socket);
///   HttpRequest req;
///   while (parser.Poll(req) == HttpParser::Result::kRequest) { ... }
///
/// Poll() returning kError is terminal for the connection: error_status()
/// is the status to answer with (400 malformed, 413 oversized body, 431
/// oversized headers) before closing. Line endings may be CRLF or bare LF.
class HttpParser {
 public:
  enum class Result { kNeedMore, kRequest, kError };

  explicit HttpParser(const HttpLimits& limits = {}) : limits_(limits) {}

  void Feed(std::string_view bytes) { buf_.append(bytes); }

  /// Try to pop one complete request from the buffered bytes.
  Result Poll(HttpRequest& out);

  [[nodiscard]] int error_status() const { return error_status_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed (e.g. a pipelined next request).
  [[nodiscard]] bool HasBufferedData() const { return !buf_.empty(); }

 private:
  Result Fail(int status, std::string message);

  HttpLimits limits_;
  std::string buf_;
  int error_status_ = 0;
  std::string error_;
  bool failed_ = false;
};

/// Client-side response message.
struct HttpResponseMsg {
  std::string version;
  int status = 0;
  std::string reason;
  HeaderList headers;
  std::string body;

  [[nodiscard]] const std::string* Header(std::string_view name) const {
    return FindHeader(headers, name);
  }
};

/// Incremental HTTP/1.1 response parser: Content-Length and chunked bodies
/// (trailers after the last chunk are consumed and discarded). Same
/// Feed/Poll discipline as HttpParser.
class HttpResponseParser {
 public:
  enum class Result { kNeedMore, kResponse, kError };

  explicit HttpResponseParser(std::size_t max_body_bytes = 64 * 1024 * 1024)
      : max_body_bytes_(max_body_bytes) {}

  void Feed(std::string_view bytes) { buf_.append(bytes); }
  Result Poll(HttpResponseMsg& out);

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  Result Fail(std::string message);

  std::size_t max_body_bytes_;
  std::string buf_;
  std::string error_;
  bool failed_ = false;
};

}  // namespace mcloud::net
