// The live storage front-end: routes the wire protocol of live_protocol.h
// into the existing metadata/dedup + front-end machinery and emits the same
// LogRecord schema (Table 1) the analysis pipeline consumes — but with
// timings measured on the real kernel TCP stack instead of the simulated
// `src/tcp` substrate (DESIGN.md §11).
//
// One LiveService instance is owned by one EpollServer and its Handle()
// runs exclusively on the server thread, so no locking is needed; read the
// log after the server loop has returned (or via GET /stats from a client).
//
// Timing semantics, mirroring Table 1:
//   * chunk store  (PUT /chunk):  T_chunk ≈ first request byte in → request
//     fully received. The response is a few dozen bytes, so receive time is
//     the transfer time; the record is emitted at handler time.
//   * chunk retrieve (GET /chunk/<md5>): T_chunk = first request byte in →
//     last response byte handed to the kernel, measured via the server's
//     on_flushed hook; the record is emitted when the flush completes.
//   * T_srv is 0: live mode has no upstream storage tier — the dissection
//     t_tran = T_chunk − T_srv therefore equals processing_time.
//   * avg_rtt is the kernel's smoothed RTT (TCP_INFO) of the carrying
//     connection at request time.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/chunker.h"
#include "cloud/front_end_server.h"
#include "cloud/metadata_server.h"
#include "net/epoll_server.h"
#include "trace/log_record.h"

namespace mcloud::net {

struct LiveServiceConfig {
  std::uint32_t front_ends = 4;
  Bytes chunk_size = kChunkSize;
  /// Retain PUT bodies (keyed by md5, deduplicated) so retrievals serve the
  /// exact stored bytes. Past this cap new bodies are not retained and
  /// their retrievals fall back to the deterministic replica path.
  Bytes max_stored_body_bytes = 256 * kMiB;
};

struct LiveCounters {
  std::uint64_t fileops = 0;
  std::uint64_t chunk_puts = 0;
  std::uint64_t chunk_gets = 0;
  std::uint64_t dedup_hits = 0;       ///< chunk-level (front-end index)
  std::uint64_t file_dedup_hits = 0;  ///< file-level (metadata server)
  std::uint64_t retrieve_misses = 0;  ///< fileop retrieve of unknown content
  std::uint64_t replica_serves = 0;   ///< GET of a chunk never PUT here
  std::uint64_t bad_requests = 0;
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;
};

class LiveService {
 public:
  explicit LiveService(const LiveServiceConfig& config);

  /// The EpollServer handler. Runs on the server thread only.
  [[nodiscard]] HttpResponse Handle(const HttpRequest& req,
                                    const RequestContext& ctx);

  /// The live request log (Table 1 schema). Chunk-retrieve records land
  /// when their response flush completes, so snapshot only after the server
  /// loop has returned.
  [[nodiscard]] const std::vector<LogRecord>& log() const { return log_; }
  [[nodiscard]] std::vector<LogRecord> TakeLog() { return std::move(log_); }

  [[nodiscard]] const LiveCounters& counters() const { return counters_; }
  [[nodiscard]] const cloud::MetadataStats& metadata_stats() const {
    return metadata_.stats();
  }
  [[nodiscard]] const std::vector<cloud::FrontEndServer>& front_ends() const {
    return front_ends_;
  }
  /// The JSON served by GET /stats.
  [[nodiscard]] std::string StatsJson() const;

 private:
  [[nodiscard]] HttpResponse HandleFileOp(const HttpRequest& req,
                                          const RequestContext& ctx);
  [[nodiscard]] HttpResponse HandleChunkPut(const HttpRequest& req,
                                            const RequestContext& ctx);
  [[nodiscard]] HttpResponse HandleChunkGet(const HttpRequest& req,
                                            const RequestContext& ctx,
                                            std::string_view hex_md5);
  [[nodiscard]] HttpResponse BadRequest(std::string why);
  /// Table 1 identity fields from the X-Mc-* headers; false on a missing or
  /// malformed user/device.
  [[nodiscard]] bool BaseRecord(const HttpRequest& req, LogRecord& base);

  LiveServiceConfig config_;
  cloud::Chunker chunker_;
  cloud::MetadataServer metadata_;
  std::vector<cloud::FrontEndServer> front_ends_;
  /// Retained PUT bodies (md5 → bytes) and chunk → front-end homes.
  std::unordered_map<Md5Digest, std::string> bodies_;
  std::unordered_map<Md5Digest, cloud::FrontEndId> chunk_home_;
  Bytes stored_body_bytes_ = 0;
  std::vector<LogRecord> log_;
  LiveCounters counters_;
};

}  // namespace mcloud::net
