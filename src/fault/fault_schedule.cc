#include "fault/fault_schedule.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace mcloud::fault {
namespace {

// Purpose keys separating the fault streams. Combined with the per-front-end
// index so each server's timeline is its own ForStream stream.
constexpr std::uint64_t kCrashStream = 0xC4A5ULL << 32;
constexpr std::uint64_t kDegradedStream = 0xDE64ULL << 32;
constexpr std::uint64_t kLossStream = 0x105EULL << 32;

/// Alternating up/down renewal process: exponential up times with
/// mean_down*(1-rate)/rate, exponential down times with mean_down, starting
/// up at t=0. The down windows over [0, horizon) are the episodes.
EpisodeList DrawEpisodes(double rate, Seconds mean_down, Seconds horizon,
                         Rng rng) {
  EpisodeList episodes;
  if (rate <= 0 || horizon <= 0) return episodes;
  MCLOUD_REQUIRE(rate < 1.0, "fault rate must be below 1");
  MCLOUD_REQUIRE(mean_down > 0, "fault episode duration must be positive");
  const Seconds mean_up = mean_down * (1.0 - rate) / rate;
  Seconds t = 0;
  while (t < horizon) {
    t += rng.ExponentialMean(mean_up);
    if (t >= horizon) break;
    const Seconds end = t + rng.ExponentialMean(mean_down);
    episodes.push_back(Episode{t, std::min(end, horizon)});
    t = end;
  }
  return episodes;
}

/// Episode containing `t`, or nullptr. Episodes are sorted and disjoint.
const Episode* Find(const EpisodeList& episodes, Seconds t) {
  auto it = std::upper_bound(
      episodes.begin(), episodes.end(), t,
      [](Seconds v, const Episode& e) { return v < e.start; });
  if (it == episodes.begin()) return nullptr;
  --it;
  return t < it->end ? &*it : nullptr;
}

}  // namespace

std::uint32_t FrontEndHealth::UpCount() const {
  std::uint32_t n = 0;
  for (bool d : down_)
    if (!d) ++n;
  return n;
}

FaultSchedule::FaultSchedule(const FaultConfig& config,
                             std::uint32_t front_ends, Seconds horizon)
    : config_(config), horizon_(horizon) {
  MCLOUD_REQUIRE(front_ends > 0, "fault schedule needs a fleet");
  crash_.resize(front_ends);
  degraded_.resize(front_ends);
  if (!config.Any()) return;
  for (std::uint32_t fe = 0; fe < front_ends; ++fe) {
    crash_[fe] = DrawEpisodes(config.frontend_fail_rate, config.frontend_mttr,
                              horizon,
                              Rng::ForStream(config.seed, kCrashStream | fe));
    degraded_[fe] =
        DrawEpisodes(config.degraded_rate, config.degraded_mean_duration,
                     horizon,
                     Rng::ForStream(config.seed, kDegradedStream | fe));
  }
  loss_ = DrawEpisodes(config.loss_burst_rate, config.loss_burst_mean_duration,
                       horizon, Rng::ForStream(config.seed, kLossStream));
}

bool FaultSchedule::FrontEndDown(std::uint32_t fe_id, Seconds t) const {
  return Find(crash_.at(fe_id), t) != nullptr;
}

bool FaultSchedule::FrontEndDownDuring(std::uint32_t fe_id, Seconds from,
                                       Seconds to) const {
  const EpisodeList& episodes = crash_.at(fe_id);
  // First episode starting at or after `from`; the one before may still
  // reach into the interval.
  auto it = std::lower_bound(
      episodes.begin(), episodes.end(), from,
      [](const Episode& e, Seconds v) { return e.start < v; });
  if (it != episodes.end() && it->start < to) return true;
  return it != episodes.begin() && std::prev(it)->end > from;
}

Seconds FaultSchedule::DownUntil(std::uint32_t fe_id, Seconds t) const {
  const Episode* e = Find(crash_.at(fe_id), t);
  return e != nullptr ? e->end : t;
}

double FaultSchedule::TsrvFactor(std::uint32_t fe_id, Seconds t) const {
  return Find(degraded_.at(fe_id), t) != nullptr ? config_.degraded_tsrv_factor
                                                 : 1.0;
}

bool FaultSchedule::InLossBurst(Seconds t) const {
  return Find(loss_, t) != nullptr;
}

double FaultSchedule::ExtraLossProb(Seconds t) const {
  return InLossBurst(t) ? config_.loss_burst_loss_prob : 0.0;
}

double FaultSchedule::DisconnectProb(Seconds t) const {
  return InLossBurst(t) ? config_.disconnect_prob : 0.0;
}

std::vector<EventQueue::EventId> FaultSchedule::InstallHealthEvents(
    EventQueue& queue, FrontEndHealth& health) const {
  MCLOUD_REQUIRE(health.FrontEnds() >= front_ends(),
                 "health registry smaller than the scheduled fleet");
  std::vector<EventQueue::EventId> ids;
  for (std::uint32_t fe = 0; fe < front_ends(); ++fe) {
    for (const Episode& e : crash_[fe]) {
      if (e.start < queue.Now()) continue;  // already past this window
      ids.push_back(
          queue.ScheduleAt(e.start, [&health, fe] { health.MarkDown(fe); }));
      ids.push_back(
          queue.ScheduleAt(e.end, [&health, fe] { health.MarkUp(fe); }));
    }
  }
  return ids;
}

}  // namespace mcloud::fault
