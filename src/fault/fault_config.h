// Fault-injection knobs for the resilience layer.
//
// The paper's dataset (§2.1) records only *completed* requests: a session
// that dies with its front-end or loses its cellular link simply never
// appears. This layer makes those failures first-class — deterministic,
// seed-driven episode schedules (see FaultSchedule) that the service
// simulator consults while executing sessions — so availability and retry
// behaviour become measurable simulation outputs instead of assumptions.
//
// Determinism contract: with every rate at zero (`Any() == false`) the
// service takes the exact pre-fault code path and consumes the exact same
// RNG stream — generated traces and §4 figure inputs are bit-identical to a
// build without the fault layer (guarded by the ZeroFaultGolden tests).
// Fault randomness always comes from streams keyed on `seed`, never from
// the workload's session streams.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace mcloud::fault {

struct FaultConfig {
  /// Root of every fault stream (episode schedules, per-chunk drops,
  /// backoff jitter). Independent of the workload seed so the same fault
  /// timeline can be replayed against different workloads and vice versa.
  std::uint64_t seed = 0xFA17ULL;

  // --- Front-end crash/restart windows (per front-end) -------------------
  /// Long-run fraction of time each front-end is down (0 = never crashes).
  double frontend_fail_rate = 0;
  /// Mean length of one down window (mean time to restart).
  Seconds frontend_mttr = 120.0;

  // --- Degraded-server episodes (per front-end) --------------------------
  /// Long-run fraction of time each front-end runs degraded: T_srv inflated
  /// by `degraded_tsrv_factor` (overloaded upstream storage servers — the
  /// tail-latency regime of Li et al.'s block-storage study).
  double degraded_rate = 0;
  Seconds degraded_mean_duration = 300.0;
  double degraded_tsrv_factor = 8.0;

  // --- Cellular loss/disconnect bursts (global, client side) -------------
  /// Long-run fraction of time the access network is inside a loss burst
  /// (tunnels, handovers, congested cells).
  double loss_burst_rate = 0;
  Seconds loss_burst_mean_duration = 30.0;
  /// Extra per-round loss probability layered onto FlowSimulator's
  /// `random_loss_prob` while a burst is active.
  double loss_burst_loss_prob = 0.05;
  /// Probability that a chunk issued inside a burst loses its connection
  /// outright (radio drop / NAT rebinding) and must be retried.
  double disconnect_prob = 0.30;

  /// True iff any fault injection is active. Gates the whole resilience
  /// code path in the service simulator.
  [[nodiscard]] bool Any() const {
    return frontend_fail_rate > 0 || degraded_rate > 0 || loss_burst_rate > 0;
  }
};

}  // namespace mcloud::fault
