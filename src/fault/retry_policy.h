// Client-side retry policy: per-chunk timeout, truncated exponential
// backoff with deterministic jitter, bounded attempts, optional hedging.
//
// The sync clients in the paper's service are background agents — they can
// afford patient, capped retries rather than user-facing fail-fast. The
// defaults here (4 attempts, 45 s chunk deadline, 0.5 s base backoff
// doubling to a 30 s cap, ±25 % jitter) mirror the behaviour of production
// sync clients and are what the PR's acceptance experiment exercises:
// ≥99 % session success under 1 % front-end downtime + 0.5 % loss bursts.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/units.h"

namespace mcloud::fault {

struct RetryPolicy {
  /// Total tries per chunk, including the first (1 = no retries).
  std::uint32_t max_attempts = 4;
  /// Client abandons a chunk transfer after this long and retries
  /// (0 = wait forever). Maps onto tcp::FlowConfig::chunk_deadline.
  Seconds chunk_timeout = 45.0;
  /// Backoff before attempt k (k >= 2) is
  ///     min(base * multiplier^(k-2), max_backoff) * (1 ± jitter)
  /// with the jitter factor drawn deterministically from the fault stream.
  Seconds base_backoff = 0.5;
  double multiplier = 2.0;
  Seconds max_backoff = 30.0;
  double jitter = 0.25;
  /// Hedged requests: when a chunk's total service time (transfer + T_srv)
  /// exceeds `hedge_delay`, clone it to a second healthy front-end and keep
  /// the faster copy (tail-latency cutting à la "The Tail at Scale"). The
  /// default sits near the healthy p99 of a 512 KB chunk, so hedges fire
  /// almost exclusively against degraded servers.
  bool hedge = false;
  Seconds hedge_delay = 2.0;

  /// Backoff delay preceding `attempt` (2-based; attempt 1 has none).
  [[nodiscard]] Seconds Backoff(std::uint32_t attempt, Rng& rng) const;

  /// A policy that never retries, never times out, never hedges — the
  /// "no resilience" baseline for the availability sweeps.
  [[nodiscard]] static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    p.chunk_timeout = 0;
    p.hedge = false;
    return p;
  }
};

}  // namespace mcloud::fault
