#include "fault/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace mcloud::fault {

Seconds RetryPolicy::Backoff(std::uint32_t attempt, Rng& rng) const {
  if (attempt < 2 || base_backoff <= 0) return 0;
  const double exponent = static_cast<double>(attempt - 2);
  Seconds delay =
      std::min(base_backoff * std::pow(multiplier, exponent), max_backoff);
  if (jitter > 0) delay *= rng.Uniform(1.0 - jitter, 1.0 + jitter);
  return delay;
}

}  // namespace mcloud::fault
