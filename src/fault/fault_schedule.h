// Deterministic fault timelines.
//
// A FaultSchedule expands a FaultConfig into concrete episode lists over a
// simulation horizon: per-front-end crash windows, per-front-end degraded
// windows (inflated T_srv), and global cellular loss bursts. Episodes are
// alternating up/down renewals with exponential durations; the mean up time
// is chosen so the long-run downtime fraction equals the configured rate:
//     mean_up = mean_down * (1 - rate) / rate.
//
// Every episode list is drawn from its own Rng::ForStream(seed, purpose_key)
// stream, so schedules are identical regardless of front-end count ordering,
// thread count, or what the workload does — the fault timeline is a fixed
// backdrop the simulation plays out against.
//
// The schedule is queryable by absolute time (binary search over sorted
// episodes) and can additionally be installed into an EventQueue as
// crash/restart callbacks driving a FrontEndHealth registry — the mechanism
// StorageService's failover uses for health-checked front-end selection.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_config.h"
#include "sim/event_queue.h"
#include "util/units.h"

namespace mcloud::fault {

/// One contiguous fault window [start, end).
struct Episode {
  Seconds start = 0;
  Seconds end = 0;
};
using EpisodeList = std::vector<Episode>;

/// Live up/down view of the front-end fleet, driven by EventQueue callbacks
/// installed from a FaultSchedule. The service consults it at dispatch time
/// to route requests around crashed front-ends.
class FrontEndHealth {
 public:
  explicit FrontEndHealth(std::uint32_t front_ends)
      : down_(front_ends, false) {}

  [[nodiscard]] bool IsUp(std::uint32_t fe_id) const {
    return fe_id < down_.size() && !down_[fe_id];
  }
  [[nodiscard]] std::uint32_t FrontEnds() const {
    return static_cast<std::uint32_t>(down_.size());
  }
  [[nodiscard]] std::uint32_t UpCount() const;

  void MarkDown(std::uint32_t fe_id) { down_.at(fe_id) = true; }
  void MarkUp(std::uint32_t fe_id) { down_.at(fe_id) = false; }

 private:
  std::vector<bool> down_;
};

class FaultSchedule {
 public:
  /// Expand `config` into episode lists covering [0, horizon) for a fleet of
  /// `front_ends` servers. With `config.Any() == false` every list is empty
  /// and every query returns the no-fault answer, at zero RNG cost.
  FaultSchedule(const FaultConfig& config, std::uint32_t front_ends,
                Seconds horizon);

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t front_ends() const {
    return static_cast<std::uint32_t>(crash_.size());
  }
  [[nodiscard]] Seconds horizon() const { return horizon_; }

  /// Is front-end `fe_id` inside a crash window at time `t`?
  [[nodiscard]] bool FrontEndDown(std::uint32_t fe_id, Seconds t) const;
  /// Does any crash window of `fe_id` overlap [from, to)? Used to detect a
  /// front-end dying mid-transfer, not just at the sampling instants.
  [[nodiscard]] bool FrontEndDownDuring(std::uint32_t fe_id, Seconds from,
                                        Seconds to) const;
  /// End of the crash window containing `t` (== t when the front-end is up).
  [[nodiscard]] Seconds DownUntil(std::uint32_t fe_id, Seconds t) const;
  /// T_srv multiplier in force on `fe_id` at `t` (1 when healthy).
  [[nodiscard]] double TsrvFactor(std::uint32_t fe_id, Seconds t) const;

  /// Is the access network inside a loss burst at `t`?
  [[nodiscard]] bool InLossBurst(Seconds t) const;
  /// Extra per-round loss probability at `t` (0 outside bursts).
  [[nodiscard]] double ExtraLossProb(Seconds t) const;
  /// Probability a chunk issued at `t` drops its connection outright.
  [[nodiscard]] double DisconnectProb(Seconds t) const;

  [[nodiscard]] const EpisodeList& CrashEpisodes(std::uint32_t fe_id) const {
    return crash_.at(fe_id);
  }
  [[nodiscard]] const EpisodeList& DegradedEpisodes(
      std::uint32_t fe_id) const {
    return degraded_.at(fe_id);
  }
  [[nodiscard]] const EpisodeList& LossBursts() const { return loss_; }

  /// Schedule crash/restart callbacks for every crash episode into `queue`,
  /// flipping `health` down at each episode start and up at each end.
  /// Returns the EventIds, so a caller running a shorter horizon can Cancel
  /// the tail it will never reach.
  std::vector<EventQueue::EventId> InstallHealthEvents(
      EventQueue& queue, FrontEndHealth& health) const;

 private:
  FaultConfig config_;
  Seconds horizon_;
  std::vector<EpisodeList> crash_;     ///< per front-end
  std::vector<EpisodeList> degraded_;  ///< per front-end
  EpisodeList loss_;                   ///< global
};

}  // namespace mcloud::fault
