#include "stats/special_functions.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace mcloud {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Series expansion of P(a, x), accurate for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x), accurate for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  MCLOUD_REQUIRE(a > 0, "gamma P needs a > 0");
  MCLOUD_REQUIRE(x >= 0, "gamma P needs x >= 0");
  if (x == 0) return 0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  MCLOUD_REQUIRE(a > 0, "gamma Q needs a > 0");
  MCLOUD_REQUIRE(x >= 0, "gamma Q needs x >= 0");
  if (x == 0) return 1;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSurvival(double x, double dof) {
  MCLOUD_REQUIRE(dof > 0, "chi-square needs dof > 0");
  if (x <= 0) return 1;
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

}  // namespace mcloud
