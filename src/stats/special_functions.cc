#include "stats/special_functions.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace mcloud {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Series expansion of P(a, x), accurate for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x), accurate for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  MCLOUD_REQUIRE(a > 0, "gamma P needs a > 0");
  MCLOUD_REQUIRE(x >= 0, "gamma P needs x >= 0");
  if (x == 0) return 0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  MCLOUD_REQUIRE(a > 0, "gamma Q needs a > 0");
  MCLOUD_REQUIRE(x >= 0, "gamma Q needs x >= 0");
  if (x == 0) return 1;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSurvival(double x, double dof) {
  MCLOUD_REQUIRE(dof > 0, "chi-square needs dof > 0");
  if (x <= 0) return 1;
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

double KolmogorovSurvival(double t) {
  if (t <= 0) return 1.0;
  if (t < 1.18) {
    // Dual (Jacobi theta) series: P(K <= t) = sqrt(2π)/t Σ exp(-(2k-1)²π²/8t²)
    // converges in a couple of terms for small t where the alternating
    // series needs many.
    const double f = std::exp(-1.23370055013616983 / (t * t));  // π²/8
    const double cdf = 2.50662827463100050 / t *                 // sqrt(2π)
                       (f + std::pow(f, 9.0) + std::pow(f, 25.0) +
                        std::pow(f, 49.0));
    return 1.0 - cdf;
  }
  // Alternating series; terms shrink so fast past t >= 1.18 that four
  // suffice for full double precision.
  const double e = std::exp(-2.0 * t * t);
  double sum = 0;
  double sign = 1;
  for (int k = 1; k <= 8; ++k) {
    const double term = std::pow(e, static_cast<double>(k) * k);
    sum += sign * term;
    if (term < 1e-18) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double AndersonDarlingSurvival(double z) {
  if (z <= 0) return 1.0;
  // Marsaglia & Marsaglia (2004), "Evaluating the Anderson-Darling
  // Distribution": adinf(z) approximates the limiting CDF.
  double cdf;
  if (z < 2.0) {
    cdf = std::pow(z, -0.5) * std::exp(-1.2337141 / z) *
          (2.00012 +
           (0.247105 -
            (0.0649821 - (0.0347962 - (0.011672 - 0.00168691 * z) * z) * z) *
                z) *
               z);
  } else {
    cdf = std::exp(
        -std::exp(1.0776 -
                  (2.30695 -
                   (0.43424 - (0.082433 - (0.008056 - 0.0003146 * z) * z) * z) *
                       z) *
                      z));
  }
  return std::clamp(1.0 - cdf, 0.0, 1.0);
}

}  // namespace mcloud
