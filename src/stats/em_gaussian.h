// Expectation–maximization fitting of 1-D Gaussian mixtures.
//
// §3.1.1 of the paper fits a two-component Gaussian mixture to the log10 of
// inter-file-operation times: one component for intra-session gaps (mean
// ≈ 10 s) and one for inter-session gaps (mean ≈ 1 day). This module is the
// "mixtools"-equivalent used there.
#pragma once

#include <span>
#include <vector>

#include "util/distributions.h"

namespace mcloud {

struct EmOptions {
  int max_iterations = 500;
  double tolerance = 1e-8;      ///< relative log-likelihood change to stop
  double min_weight = 1e-6;     ///< floor to keep components alive
  std::uint64_t seed = 1;       ///< for randomized initialization (if used)
};

struct GaussianMixtureFit {
  GaussianMixture mixture;
  double log_likelihood = 0;
  int iterations = 0;
  bool converged = false;
};

/// Fit a k-component Gaussian mixture to `data` by EM.
///
/// Initialization is deterministic: component means are placed at evenly
/// spaced quantiles of the data, stddevs at the overall stddev / k, weights
/// uniform. Throws FitError on degenerate input (fewer than 2*k points or
/// zero variance).
[[nodiscard]] GaussianMixtureFit FitGaussianMixture(
    std::span<const double> data, std::size_t k, const EmOptions& opts = {});

/// Weighted-sample variant: fit a k-component mixture to `values` where
/// values[i] carries weight weights[i] (e.g. a sketch bin representative
/// with its count). Exactly mirrors FitGaussianMixture — same deterministic
/// range-based initialization, floors, and convergence test — with every
/// per-point sum weighted; FitGaussianMixture(data, k) is the special case
/// of unit weights. Throws FitError when total weight < 2*k or the weighted
/// variance is zero.
[[nodiscard]] GaussianMixtureFit FitGaussianMixtureWeighted(
    std::span<const double> values, std::span<const double> weights,
    std::size_t k, const EmOptions& opts = {});

/// Log-likelihood of data under a mixture (for model comparison / tests).
[[nodiscard]] double GaussianMixtureLogLikelihood(
    const GaussianMixture& mixture, std::span<const double> data);

}  // namespace mcloud
