// Stretched-exponential fitting of rank-ordered activity data.
//
// §3.2.3 / Fig 10: rank users by the number of stored (retrieved) files.
// Under a stretched-exponential law, P(X >= x_i) = i/N implies
//     x_i^c = -a·log(i) + b     with a = x0^c, b = x1^c,
// i.e. the log-y^c plot of the ranked data is a straight line. The fit
// follows the paper's method (Guo et al., KDD'09): grid search the stretch
// factor c, and for each candidate solve the linear regression of y^c on
// log rank; pick the c maximizing R².
#pragma once

#include <span>

#include "stats/regression.h"
#include "util/distributions.h"

namespace mcloud {

struct StretchedExponentialFit {
  double c = 0;          ///< stretch factor
  double a = 0;          ///< slope magnitude in y^c = -a log(i) + b
  double b = 0;          ///< intercept
  double x0 = 0;         ///< scale: a = x0^c
  double r_squared = 0;  ///< of the linear fit in log–y^c space
};

/// Fit a stretched-exponential rank law to activity values (any order; the
/// function sorts descending). Values must be positive. Ranks with value 0
/// are dropped (a user that stored nothing carries no information about the
/// tail law).
[[nodiscard]] StretchedExponentialFit FitStretchedExponentialRank(
    std::span<const double> values, double c_min = 0.05, double c_max = 1.0,
    double c_step = 0.01);

/// R² of a pure power-law (Zipf) fit, log(value) = -s·log(rank) + k, on the
/// same ranked data. The paper uses this comparison to *reject* the power
/// law: the SE fit attains a visibly higher R².
[[nodiscard]] LinearFit FitPowerLawRank(std::span<const double> values);

/// Predicted value at a 1-based rank under a fitted SE law.
[[nodiscard]] double StretchedExponentialRankValue(
    const StretchedExponentialFit& fit, std::size_t rank);

}  // namespace mcloud
