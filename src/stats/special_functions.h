// Special functions needed by the goodness-of-fit machinery.
//
// What the chi-square, Kolmogorov–Smirnov, and Anderson–Darling p-value
// computations need: the regularized incomplete gamma functions P(a, x) and
// Q(a, x) (standard series / continued-fraction split), the Kolmogorov
// limiting distribution, and the asymptotic Anderson–Darling distribution.
#pragma once

namespace mcloud {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
[[nodiscard]] double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-square distribution with k degrees of
/// freedom: P(X > x) = Q(k/2, x/2). This is the p-value of a chi-square test.
[[nodiscard]] double ChiSquareSurvival(double x, double dof);

/// Survival of the Kolmogorov limiting distribution,
///   Q(t) = 2 Σ_{k>=1} (-1)^{k-1} exp(-2 k² t²),
/// evaluated with the theta-function dual series for small t where the
/// alternating series converges slowly. Q(1.358) ≈ 0.05 — the classic KS
/// critical value. Arguments t <= 0 return 1.
[[nodiscard]] double KolmogorovSurvival(double t);

/// Survival of the asymptotic (case-0, fully specified null) one-sample
/// Anderson–Darling A² statistic, using Marsaglia & Marsaglia's rational
/// approximations of the limiting CDF (accurate to ~1e-6 for z in (0, 32)).
/// AndersonDarlingSurvival(2.492) ≈ 0.05. Arguments z <= 0 return 1.
[[nodiscard]] double AndersonDarlingSurvival(double z);

}  // namespace mcloud
