// Special functions needed by the goodness-of-fit machinery.
//
// Only what the chi-square p-value computation needs: the regularized
// incomplete gamma functions P(a, x) and Q(a, x), evaluated with the
// standard series / continued-fraction split.
#pragma once

namespace mcloud {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
[[nodiscard]] double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-square distribution with k degrees of
/// freedom: P(X > x) = Q(k/2, x/2). This is the p-value of a chi-square test.
[[nodiscard]] double ChiSquareSurvival(double x, double dof);

}  // namespace mcloud
