// Chi-square goodness-of-fit test of a sample against a model CDF.
//
// The paper validates its mixture-exponential fits with chi-square tests at
// significance level 5% (§3.1.4 footnote). The test here bins the sample
// into equal-probability bins under the model, which keeps expected counts
// balanced and the statistic well behaved in the heavy tail.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace mcloud {

struct ChiSquareResult {
  double statistic = 0;
  double dof = 0;       ///< bins - 1 - fitted_parameters
  double p_value = 0;   ///< survival of chi-square at `statistic`
  std::size_t bins = 0;
};

/// Chi-square GoF of `data` against `model_cdf` (a CDF on the data's
/// support), using `bins` equal-probability bins and accounting for
/// `fitted_parameters` estimated from the same data.
/// `model_quantile` must be the inverse of `model_cdf`.
[[nodiscard]] ChiSquareResult ChiSquareGoodnessOfFit(
    std::span<const double> data,
    const std::function<double(double)>& model_cdf,
    const std::function<double(double)>& model_quantile, std::size_t bins,
    std::size_t fitted_parameters);

/// Generalized (categorical) chi-square gate: test observed category counts
/// against expected probabilities. This is the multinomial form the
/// validation layer uses for the session-type split and the Table 3 user
/// classes; `statistic / n` is the per-sample effect size the FigureCheck
/// thresholds gate on, so a systematic calibration offset is distinguished
/// from sampling noise. `expected_probs` must sum to ~1; `dof` is
/// k - 1 - fitted_parameters.
[[nodiscard]] ChiSquareResult ChiSquareCounts(
    std::span<const std::uint64_t> observed,
    std::span<const double> expected_probs, std::size_t fitted_parameters = 0);

/// Numeric inverse of a monotone CDF by bisection on [lo, hi].
[[nodiscard]] double InvertCdf(const std::function<double(double)>& cdf,
                               double target, double lo, double hi,
                               int iterations = 200);

/// Quantile of the chi-square distribution with `dof` degrees of freedom:
/// the x with survival(x) = alpha. Used to convert a target false-positive
/// rate into a gate threshold.
[[nodiscard]] double ChiSquareQuantile(double upper_tail_alpha, double dof);

}  // namespace mcloud
