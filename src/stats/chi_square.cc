#include "stats/chi_square.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/special_functions.h"
#include "util/error.h"

namespace mcloud {

double InvertCdf(const std::function<double(double)>& cdf, double target,
                 double lo, double hi, int iterations) {
  MCLOUD_REQUIRE(hi > lo, "invalid bracket");
  MCLOUD_REQUIRE(target >= 0 && target <= 1, "target must be a probability");
  double a = lo;
  double b = hi;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (a + b);
    if (cdf(mid) < target) {
      a = mid;
    } else {
      b = mid;
    }
  }
  return 0.5 * (a + b);
}

ChiSquareResult ChiSquareGoodnessOfFit(
    std::span<const double> data,
    const std::function<double(double)>& model_cdf,
    const std::function<double(double)>& model_quantile, std::size_t bins,
    std::size_t fitted_parameters) {
  MCLOUD_REQUIRE(bins >= 2, "chi-square needs >= 2 bins");
  MCLOUD_REQUIRE(data.size() >= 5 * bins,
                 "chi-square needs >= 5 expected counts per bin");
  MCLOUD_REQUIRE(bins > fitted_parameters + 1,
                 "not enough bins for the fitted parameter count");

  // Equal-probability bin edges under the model.
  std::vector<double> edges;
  edges.reserve(bins - 1);
  for (std::size_t i = 1; i < bins; ++i) {
    edges.push_back(
        model_quantile(static_cast<double>(i) / static_cast<double>(bins)));
  }

  std::vector<std::size_t> observed(bins, 0);
  for (double x : data) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    observed[static_cast<std::size_t>(it - edges.begin())]++;
  }

  const double n = static_cast<double>(data.size());
  ChiSquareResult out;
  out.bins = bins;
  for (std::size_t i = 0; i < bins; ++i) {
    // Expected probability mass of bin i under the model (edges are model
    // quantiles, but recompute from the CDF so an imperfect quantile inverse
    // still yields a consistent test).
    const double lo_p = (i == 0) ? 0.0 : model_cdf(edges[i - 1]);
    const double hi_p = (i == bins - 1) ? 1.0 : model_cdf(edges[i]);
    const double expected = n * std::max(hi_p - lo_p, 1e-12);
    const double d = static_cast<double>(observed[i]) - expected;
    out.statistic += d * d / expected;
  }
  out.dof = static_cast<double>(bins - 1 - fitted_parameters);
  out.p_value = ChiSquareSurvival(out.statistic, out.dof);
  return out;
}

ChiSquareResult ChiSquareCounts(std::span<const std::uint64_t> observed,
                                std::span<const double> expected_probs,
                                std::size_t fitted_parameters) {
  MCLOUD_REQUIRE(observed.size() >= 2, "chi-square needs >= 2 categories");
  MCLOUD_REQUIRE(observed.size() == expected_probs.size(),
                 "observed/expected size mismatch");
  MCLOUD_REQUIRE(observed.size() > fitted_parameters + 1,
                 "not enough categories for the fitted parameter count");
  double total_prob = 0;
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    MCLOUD_REQUIRE(expected_probs[i] > 0, "expected probs must be positive");
    total_prob += expected_probs[i];
    n += observed[i];
  }
  MCLOUD_REQUIRE(std::abs(total_prob - 1.0) < 1e-6,
                 "expected probs must sum to 1");
  MCLOUD_REQUIRE(n > 0, "chi-square needs observations");

  ChiSquareResult out;
  out.bins = observed.size();
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = static_cast<double>(n) * expected_probs[i];
    const double d = static_cast<double>(observed[i]) - expected;
    out.statistic += d * d / expected;
  }
  out.dof = static_cast<double>(observed.size() - 1 - fitted_parameters);
  out.p_value = ChiSquareSurvival(out.statistic, out.dof);
  return out;
}

double ChiSquareQuantile(double upper_tail_alpha, double dof) {
  MCLOUD_REQUIRE(upper_tail_alpha > 0 && upper_tail_alpha < 1,
                 "alpha must be in (0,1)");
  MCLOUD_REQUIRE(dof > 0, "chi-square needs dof > 0");
  // Survival is monotone decreasing; bracket generously (dof + tail room).
  const double hi = 10.0 * dof + 100.0;
  return InvertCdf(
      [dof](double x) { return 1.0 - ChiSquareSurvival(x, dof); },
      1.0 - upper_tail_alpha, 0.0, hi);
}

}  // namespace mcloud
