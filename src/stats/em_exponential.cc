#include "stats/em_exponential.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace mcloud {
namespace {

double LogExpPdf(double x, double mean) {
  return -std::log(mean) - x / mean;
}

double LogSumExp(std::span<const double> v) {
  const double m = *std::max_element(v.begin(), v.end());
  double s = 0;
  for (double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

double MixtureExponentialLogLikelihood(const MixtureExponential& mixture,
                                       std::span<const double> data) {
  double ll = 0;
  std::vector<double> lp(mixture.size());
  for (double x : data) {
    for (std::size_t k = 0; k < mixture.size(); ++k) {
      const auto& c = mixture.components()[k];
      lp[k] = std::log(std::max(c.weight, 1e-300)) + LogExpPdf(x, c.mean);
    }
    ll += LogSumExp(lp);
  }
  return ll;
}

namespace {

/// One EM run from the given initial components; `weights` empty means every
/// sample counts once. Shared by the restart loop of both fit entry points.
MixtureExponentialFit RunEmFrom(
    std::vector<MixtureExponential::Component> comps,
    std::span<const double> data, std::span<const double> weights,
    const EmOptions& opts) {
  const std::size_t k = comps.size();
  const std::size_t n = data.size();
  const bool weighted = !weights.empty();
  // Total sample mass W replaces n in every place the unweighted algorithm
  // counted samples (weight floor, mixture-weight normalization).
  double total = static_cast<double>(n);
  if (weighted) total = std::accumulate(weights.begin(), weights.end(), 0.0);

  std::vector<double> lp(k);
  std::vector<double> r(k);
  std::vector<double> nk(k);
  std::vector<double> sum(k);
  // Per-iteration constants: log α_j + log(1/µ_j) and 1/µ_j. Hoisting them
  // out of the sample loop removes two log() calls per sample per component;
  // with the single-exp E step below each sample costs k exp() calls and one
  // log() total.
  std::vector<double> lw(k);
  std::vector<double> inv(k);
  // exp() underflows to exactly +0.0 below this argument, so skipping the
  // call is bit-identical — and on heavy-tailed data with well-separated
  // means most (sample, component) pairs land here, past the subnormal
  // range where exp() is slowest.
  constexpr double kExpUnderflow = -746.0;

  MixtureExponentialFit fit;
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    for (std::size_t j = 0; j < k; ++j) {
      lw[j] = std::log(std::max(comps[j].weight, 1e-300)) -
              std::log(comps[j].mean);
      inv[j] = 1.0 / comps[j].mean;
      nk[j] = 0;
      sum[j] = 0;
    }

    // Fused E+M sweep: lp_j = log α_j + log f_j(x) = lw_j - x/µ_j;
    // responsibilities are softmax(lp) scaled by the sample's weight and
    // folded into the M-step accumulators immediately (the additions run in
    // the same ascending-i order a separate M pass would use, so fusing is
    // bit-identical and the n×k responsibility matrix never materializes).
    double ll = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = data[i];
      double m = -std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < k; ++j) {
        lp[j] = lw[j] - x * inv[j];
        if (lp[j] > m) m = lp[j];
      }
      double s = 0;
      for (std::size_t j = 0; j < k; ++j) {
        const double d = lp[j] - m;
        r[j] = d < kExpUnderflow ? 0.0 : std::exp(d);
        s += r[j];
      }
      const double wi = weighted ? weights[i] : 1.0;
      ll += wi * (m + std::log(s));
      const double norm = wi / s;
      for (std::size_t j = 0; j < k; ++j) {
        const double rj = r[j] * norm;
        nk[j] += rj;
        sum[j] += rj * x;
      }
    }

    // M step: weight_j = responsibility mass / W, mean_j = weighted mean of x.
    for (std::size_t j = 0; j < k; ++j) {
      const double mass = std::max(nk[j], opts.min_weight * total);
      comps[j].weight = mass / total;
      comps[j].mean = std::max(sum[j] / mass, 1e-12);
    }
    double wsum = 0;
    for (const auto& c : comps) wsum += c.weight;
    for (auto& c : comps) c.weight /= wsum;

    fit.iterations = iter;
    fit.log_likelihood = ll;
    // prev_ll is -inf on the first iteration; the relative-change test is
    // only meaningful once two finite likelihoods exist.
    if (std::isfinite(prev_ll) &&
        std::abs(ll - prev_ll) <=
            opts.tolerance * (std::abs(prev_ll) + 1.0)) {
      fit.converged = true;
      break;
    }
    prev_ll = ll;
  }

  // Sort by ascending mean: component 1 = typical photo size, component 3 =
  // heavy tail, matching Table 2's ordering.
  std::sort(comps.begin(), comps.end(),
            [](const auto& a, const auto& b) { return a.mean < b.mean; });
  fit.mixture = MixtureExponential(std::move(comps));
  return fit;
}

MixtureExponentialFit FitImpl(std::span<const double> data,
                              std::span<const double> weights, std::size_t k,
                              const EmOptions& opts) {
  MCLOUD_REQUIRE(k >= 1, "need at least one component");
  if (data.size() < 2 * k)
    throw FitError("too few data points for exponential mixture EM");
  for (double x : data) {
    if (!(x > 0))
      throw FitError("mixture-exponential EM needs strictly positive data");
  }
  const bool weighted = !weights.empty();
  if (weighted) {
    MCLOUD_REQUIRE(weights.size() == data.size(),
                   "weights must match data in length");
    for (double w : weights) {
      if (!(w > 0))
        throw FitError("mixture-exponential EM needs positive weights");
    }
  }

  // Sorted (value, weight) pairs for quantile-based initialization. The
  // unweighted quantile keeps the historical index formula; the weighted one
  // finds the first value whose cumulative mass reaches q·W.
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return data[a] < data[b]; });
  std::vector<double> cum;
  double total_w = 0;
  if (weighted) {
    cum.reserve(order.size());
    for (std::size_t idx : order) {
      total_w += weights[idx];
      cum.push_back(total_w);
    }
  }
  const auto quantile = [&](double q) {
    if (!weighted) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(order.size() - 1));
      return data[order[idx]];
    }
    const auto it = std::lower_bound(cum.begin(), cum.end(), q * total_w);
    const std::size_t pos = std::min<std::size_t>(
        static_cast<std::size_t>(it - cum.begin()), order.size() - 1);
    return data[order[pos]];
  };

  // Deterministic multi-restart: exponential-mixture EM is riddled with
  // local optima (split-the-bulk, merged-tail). Each restart places the
  // initial means at a different quantile schedule — strongly tail-biased
  // (0.5, 0.95, 0.995…), mildly tail-biased, and evenly spread — and the
  // run with the best likelihood wins.
  const auto means_at = [&](std::span<const double> qs) {
    std::vector<MixtureExponential::Component> comps(k);
    for (std::size_t j = 0; j < k; ++j) {
      comps[j].mean = std::max(quantile(qs[j]), 1e-9);
      comps[j].weight = 1.0 / static_cast<double>(k);
    }
    for (std::size_t j = 1; j < k; ++j) {
      if (comps[j].mean <= comps[j - 1].mean)
        comps[j].mean = comps[j - 1].mean * 2.0;
    }
    return comps;
  };

  std::vector<std::vector<double>> schedules;
  {
    std::vector<double> strong(k);
    std::vector<double> mild(k);
    std::vector<double> even(k);
    for (std::size_t j = 0; j < k; ++j) {
      strong[j] = 1.0 - 0.5 * std::pow(0.1, static_cast<double>(j));
      mild[j] = 1.0 - 0.5 * std::pow(0.3, static_cast<double>(j));
      even[j] = (static_cast<double>(j) + 0.5) / static_cast<double>(k);
    }
    schedules = {strong, mild, even};
  }

  MixtureExponentialFit best;
  bool have_best = false;
  for (const auto& qs : schedules) {
    MixtureExponentialFit fit = RunEmFrom(means_at(qs), data, weights, opts);
    if (!have_best || fit.log_likelihood > best.log_likelihood) {
      best = std::move(fit);
      have_best = true;
    }
  }
  return best;
}

MixtureSelection SelectImpl(
    std::size_t max_components, double weight_floor,
    const std::function<MixtureExponentialFit(std::size_t)>& fit_k) {
  MCLOUD_REQUIRE(max_components >= 1, "need at least one component");
  MixtureSelection out;
  out.fit = fit_k(1);
  out.selected_n = 1;
  out.rejected_weight = 1.0;

  // Exponential mixtures are only identifiable when component means are
  // well separated; a candidate whose adjacent means nearly coincide has
  // split one true component in two and carries no additional structure.
  constexpr double kMinMeanRatio = 2.0;

  // The paper's procedure: grow n until an added component is negligible
  // (α < 0.001). EM occasionally parks a negligible *phantom* component on
  // a handful of extreme outliers while real structure appears only at a
  // larger k, so negligible components are pruned from a candidate rather
  // than condemning it; selection stops when the count of *meaningful*
  // components stops growing.
  for (std::size_t k = 2; k <= max_components; ++k) {
    MixtureExponentialFit candidate = fit_k(k);

    std::vector<MixtureExponential::Component> meaningful;
    double min_weight = 1.0;
    double pruned_weight = 1.0;
    for (const auto& c : candidate.mixture.components()) {
      min_weight = std::min(min_weight, c.weight);
      if (c.weight >= weight_floor) {
        meaningful.push_back(c);
      } else {
        pruned_weight = std::min(pruned_weight, c.weight);
      }
    }
    bool overlapping = false;
    for (std::size_t j = 1; j < meaningful.size(); ++j) {
      if (meaningful[j].mean < kMinMeanRatio * meaningful[j - 1].mean)
        overlapping = true;
    }

    out.rejected_weight = min_weight;
    // Keep probing larger k even when this candidate adds nothing: real
    // structure sometimes only separates once more components are allowed
    // (a phantom can absorb outliers at k, freeing the tail at k+1).
    if (overlapping || meaningful.size() <= out.selected_n) continue;

    if (meaningful.size() < candidate.mixture.size()) {
      // Renormalize the surviving weights after pruning phantoms.
      double total = 0;
      for (const auto& c : meaningful) total += c.weight;
      for (auto& c : meaningful) c.weight /= total;
      candidate.mixture = MixtureExponential(std::move(meaningful));
    }
    out.selected_n = candidate.mixture.size();
    out.fit = std::move(candidate);
  }
  return out;
}

}  // namespace

MixtureExponentialFit FitMixtureExponential(std::span<const double> data,
                                            std::size_t k,
                                            const EmOptions& opts) {
  return FitImpl(data, {}, k, opts);
}

MixtureExponentialFit FitMixtureExponentialWeighted(
    std::span<const double> data, std::span<const double> weights,
    std::size_t k, const EmOptions& opts) {
  return FitImpl(data, weights, k, opts);
}

MixtureSelection SelectMixtureExponential(std::span<const double> data,
                                          std::size_t max_components,
                                          double weight_floor,
                                          const EmOptions& opts) {
  return SelectImpl(max_components, weight_floor, [&](std::size_t k) {
    return FitImpl(data, {}, k, opts);
  });
}

MixtureSelection SelectMixtureExponentialWeighted(
    std::span<const double> data, std::span<const double> weights,
    std::size_t max_components, double weight_floor, const EmOptions& opts) {
  return SelectImpl(max_components, weight_floor, [&](std::size_t k) {
    return FitImpl(data, weights, k, opts);
  });
}

}  // namespace mcloud
