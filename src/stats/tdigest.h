// Mergeable streaming sketches for the online analysis engine.
//
// Three accumulators that let the 20-check figure pipeline run on bounded
// memory (DESIGN.md §12):
//
//  - TDigest: a deterministic merging t-digest (Dunning's k1 scale function,
//    fixed compression). The centroid state is a pure function of the
//    ingestion + merge *sequence*: buffered points are compressed only at
//    fixed capacity boundaries and at Merge(), never on query, so two runs
//    that feed the same values in the same order — regardless of when or
//    whether quantiles were read — hold byte-identical centroids. Production
//    builds the per-shard digests over a fixed shard count and merges them
//    in ascending shard order, which makes the result independent of
//    --threads. (It is *not* invariant to re-sharding the same multiset —
//    no t-digest is; the determinism contract is fixed ingestion order +
//    fixed merge order.)
//
//  - LogBins: fixed-geometry log10 bins with exact per-bin counts and sums.
//    Counts are integers and sums are either integers-in-double (inter-op
//    gaps) or merged in a canonical order (file sizes), so LogBins merges
//    are order-independent in production use and per-bin means are exact
//    moments for the weighted EM fitters.
//
//  - StreamingMoments: weighted count/mean/variance/min/max accumulator
//    (West's algorithm), mergeable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcloud {

/// One t-digest centroid: `weight` samples with mean `mean`.
struct Centroid {
  double mean = 0;
  std::uint64_t weight = 0;
};

class TDigest {
 public:
  /// `compression` bounds the centroid count (~2x compression centroids);
  /// 200 gives ~1e-3 absolute quantile error in the tails at the sample
  /// sizes the validator uses. All production digests share the default so
  /// merges are geometry-compatible by construction.
  explicit TDigest(double compression = 200.0);

  /// Add `count` samples of value `x`. Buffered; the buffer is compressed
  /// into the centroid list only when it reaches its fixed capacity.
  void Add(double x, std::uint64_t count = 1);

  /// Fold `other` into this digest: both sides' canonical centroids are
  /// concatenated and recompressed once. Deterministic in caller order.
  void Merge(const TDigest& other);

  [[nodiscard]] std::uint64_t Count() const { return count_; }
  [[nodiscard]] double Min() const { return min_; }
  [[nodiscard]] double Max() const { return max_; }
  [[nodiscard]] double compression() const { return compression_; }

  /// Value at quantile q in [0, 1]; piecewise-linear between centroid means
  /// with exact min/max endpoints. Returns 0 on an empty digest.
  [[nodiscard]] double Quantile(double q) const;

  /// P(X <= x) estimate; inverse of Quantile's interpolation scheme.
  [[nodiscard]] double Cdf(double x) const;

  /// The canonical (fully compressed) centroid list. Const and pure: the
  /// persistent state is never mutated by queries, so interleaving reads
  /// with ingestion cannot perturb determinism.
  [[nodiscard]] std::vector<Centroid> CanonicalCentroids() const;

  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  void FlushBuffer();
  static std::vector<Centroid> Compress(std::vector<Centroid> cs,
                                        double compression);

  double compression_;
  std::size_t buffer_capacity_;
  std::vector<Centroid> centroids_;
  std::vector<Centroid> buffer_;
  std::uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Fixed log10-geometry bins over [10^log10_lo, 10^log10_hi): per-bin exact
/// counts and sums plus exact global min/max/total. Out-of-range values are
/// clamped into the edge bins (per-bin sums stay exact, so clamping only
/// coarsens the binning, never biases a mean). Merge requires identical
/// geometry and is a per-bin integer/double add in caller order.
class LogBins {
 public:
  LogBins(double log10_lo, double log10_hi, std::size_t bins);

  /// Bin by x, accumulate x (count times).
  void Add(double x, std::uint64_t count = 1) {
    Add(x, x * static_cast<double>(count), count);
  }

  /// Bin by `bin_by`, but accumulate `accumulate` into the bin sum. Used by
  /// the interval sketch: the bin index comes from the dequantization-
  /// jittered gap while the sum accumulates the raw integer gap, keeping
  /// per-bin sums exactly representable (and therefore order-independent
  /// under merges).
  void Add(double bin_by, double accumulate, std::uint64_t count);

  void Merge(const LogBins& other);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double log10_lo() const { return log10_lo_; }
  [[nodiscard]] double log10_hi() const { return log10_hi_; }
  [[nodiscard]] double Log10Width() const { return width_; }
  [[nodiscard]] double Log10Left(std::size_t i) const {
    return log10_lo_ + static_cast<double>(i) * width_;
  }
  [[nodiscard]] double Log10Center(std::size_t i) const {
    return Log10Left(i) + 0.5 * width_;
  }
  [[nodiscard]] std::uint64_t Count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double Sum(std::size_t i) const { return sums_[i]; }
  /// Exact mean of the values that landed in bin i (0 if empty).
  [[nodiscard]] double Mean(std::size_t i) const {
    return counts_[i] == 0 ? 0.0
                           : sums_[i] / static_cast<double>(counts_[i]);
  }
  [[nodiscard]] std::uint64_t Total() const { return total_; }
  [[nodiscard]] double Min() const { return min_; }
  [[nodiscard]] double Max() const { return max_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] const std::vector<double>& sums() const { return sums_; }
  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  double log10_lo_;
  double log10_hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> sums_;
  std::uint64_t total_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Weighted streaming moments (count, mean, variance, min, max) via West's
/// incremental update; mergeable with the parallel-variance combination.
class StreamingMoments {
 public:
  void Add(double x, double weight = 1.0);
  void Merge(const StreamingMoments& other);

  [[nodiscard]] double WeightSum() const { return wsum_; }
  [[nodiscard]] double Mean() const { return mean_; }
  [[nodiscard]] double Variance() const {
    return wsum_ > 0 ? m2_ / wsum_ : 0.0;
  }
  [[nodiscard]] double StdDev() const;
  [[nodiscard]] double Min() const { return min_; }
  [[nodiscard]] double Max() const { return max_; }

 private:
  double wsum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace mcloud
