// Ordinary least squares on (x, y) pairs, plus R².
//
// Used by the stretched-exponential rank fit (regress y^c on log rank,
// §3.2.3), the power-law comparison fit, and the Fig 5b linear
// volume-vs-file-count relationship.
#pragma once

#include <span>

namespace mcloud {

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;  ///< coefficient of determination
  std::size_t n = 0;
};

/// Least-squares fit y ≈ slope*x + intercept. Requires >= 2 points with
/// non-degenerate x.
[[nodiscard]] LinearFit FitLinear(std::span<const double> x,
                                  std::span<const double> y);

/// Weighted least squares y ≈ slope*x + intercept with per-point weights
/// (r_squared is the weighted coefficient of determination).
[[nodiscard]] LinearFit FitLinearWeighted(std::span<const double> x,
                                          std::span<const double> y,
                                          std::span<const double> w);

/// R² of an arbitrary set of predictions against observations.
[[nodiscard]] double RSquared(std::span<const double> observed,
                              std::span<const double> predicted);

}  // namespace mcloud
