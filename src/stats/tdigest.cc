#include "stats/tdigest.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.h"

namespace mcloud {
namespace {

/// k1 scale function (Dunning): k(q) = delta/(2*pi) * asin(2q - 1). Bins are
/// allowed to span one unit of k, which concentrates resolution in the tails.
double ScaleK(double q, double compression) {
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * std::numbers::pi) * std::asin(2.0 * q - 1.0);
}

double Interpolate(double x, double x0, double x1, double y0, double y1) {
  if (x1 <= x0) return y0;
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression),
      buffer_capacity_(static_cast<std::size_t>(8.0 * compression)) {
  MCLOUD_REQUIRE(compression >= 20.0, "t-digest compression too small");
  buffer_.reserve(buffer_capacity_);
}

void TDigest::Add(double x, std::uint64_t count) {
  if (count == 0) return;
  MCLOUD_REQUIRE(std::isfinite(x), "t-digest input must be finite");
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += count;
  buffer_.push_back({x, count});
  if (buffer_.size() >= buffer_capacity_) FlushBuffer();
}

void TDigest::FlushBuffer() {
  if (buffer_.empty()) return;
  centroids_.insert(centroids_.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  centroids_ = Compress(std::move(centroids_), compression_);
}

std::vector<Centroid> TDigest::Compress(std::vector<Centroid> cs,
                                        double compression) {
  if (cs.size() <= 1) return cs;
  // Deterministic order: by mean, then weight. Equal (mean, weight) pairs
  // are interchangeable, so this fully determines the merge result.
  std::sort(cs.begin(), cs.end(), [](const Centroid& a, const Centroid& b) {
    return a.mean != b.mean ? a.mean < b.mean : a.weight < b.weight;
  });
  double total = 0;
  for (const Centroid& c : cs) total += static_cast<double>(c.weight);

  std::vector<Centroid> out;
  out.reserve(static_cast<std::size_t>(2.0 * compression) + 8);
  Centroid cur = cs.front();
  double cum = 0;  // weight strictly before `cur`
  double k_lo = ScaleK(0.0, compression);
  for (std::size_t i = 1; i < cs.size(); ++i) {
    const Centroid& c = cs[i];
    const double q_new =
        (cum + static_cast<double>(cur.weight + c.weight)) / total;
    if (ScaleK(q_new, compression) - k_lo <= 1.0) {
      const double w = static_cast<double>(cur.weight + c.weight);
      cur.mean += static_cast<double>(c.weight) / w * (c.mean - cur.mean);
      cur.weight += c.weight;
    } else {
      out.push_back(cur);
      cum += static_cast<double>(cur.weight);
      k_lo = ScaleK(cum / total, compression);
      cur = c;
    }
  }
  out.push_back(cur);
  return out;
}

void TDigest::Merge(const TDigest& other) {
  MCLOUD_REQUIRE(compression_ == other.compression_,
                 "cannot merge t-digests with different compression");
  if (other.count_ == 0) return;
  FlushBuffer();
  const std::vector<Centroid> oc = other.CanonicalCentroids();
  centroids_.insert(centroids_.end(), oc.begin(), oc.end());
  centroids_ = Compress(std::move(centroids_), compression_);
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

std::vector<Centroid> TDigest::CanonicalCentroids() const {
  if (buffer_.empty()) return centroids_;
  std::vector<Centroid> cs = centroids_;
  cs.insert(cs.end(), buffer_.begin(), buffer_.end());
  return Compress(std::move(cs), compression_);
}

double TDigest::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (min_ == max_) return min_;
  const std::vector<Centroid> cs = CanonicalCentroids();
  const double total = static_cast<double>(count_);
  const double target = std::clamp(q, 0.0, 1.0) * total;

  // Node list: (0, min), (midpoint-of-centroid-i, mean_i)..., (total, max).
  double cum = 0;
  double prev_pos = 0;
  double prev_val = min_;
  for (const Centroid& c : cs) {
    const double mid = cum + static_cast<double>(c.weight) / 2.0;
    if (target <= mid)
      return Interpolate(target, prev_pos, mid, prev_val, c.mean);
    prev_pos = mid;
    prev_val = c.mean;
    cum += static_cast<double>(c.weight);
  }
  return Interpolate(target, prev_pos, total, prev_val, max_);
}

double TDigest::Cdf(double x) const {
  if (count_ == 0) return 0.0;
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  if (min_ == max_) return 1.0;  // unreachable given the guards, but safe
  const std::vector<Centroid> cs = CanonicalCentroids();
  const double total = static_cast<double>(count_);

  double cum = 0;
  double prev_pos = 0;
  double prev_val = min_;
  for (const Centroid& c : cs) {
    const double mid = cum + static_cast<double>(c.weight) / 2.0;
    if (x < c.mean)
      return Interpolate(x, prev_val, c.mean, prev_pos, mid) / total;
    prev_pos = mid;
    prev_val = c.mean;
    cum += static_cast<double>(c.weight);
  }
  return Interpolate(x, prev_val, max_, prev_pos, total) / total;
}

std::size_t TDigest::MemoryBytes() const {
  return sizeof(*this) + centroids_.capacity() * sizeof(Centroid) +
         buffer_.capacity() * sizeof(Centroid);
}

LogBins::LogBins(double log10_lo, double log10_hi, std::size_t bins)
    : log10_lo_(log10_lo),
      log10_hi_(log10_hi),
      width_((log10_hi - log10_lo) / static_cast<double>(bins)),
      counts_(bins, 0),
      sums_(bins, 0.0) {
  MCLOUD_REQUIRE(log10_hi > log10_lo, "log-bin range must be non-empty");
  MCLOUD_REQUIRE(bins > 0, "log bins need at least one bin");
}

void LogBins::Add(double bin_by, double accumulate, std::uint64_t count) {
  if (count == 0) return;
  MCLOUD_REQUIRE(bin_by > 0, "log bins take positive values");
  const double lg = std::log10(bin_by);
  const auto raw = static_cast<std::ptrdiff_t>(
      std::floor((lg - log10_lo_) / width_));
  const auto idx = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
      raw, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1));
  if (total_ == 0) {
    min_ = max_ = bin_by;
  } else {
    min_ = std::min(min_, bin_by);
    max_ = std::max(max_, bin_by);
  }
  counts_[idx] += count;
  sums_[idx] += accumulate;
  total_ += count;
}

void LogBins::Merge(const LogBins& other) {
  MCLOUD_REQUIRE(counts_.size() == other.counts_.size() &&
                     log10_lo_ == other.log10_lo_ &&
                     log10_hi_ == other.log10_hi_,
                 "cannot merge log bins with different geometry");
  if (other.total_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
    sums_[i] += other.sums_[i];
  }
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
}

std::size_t LogBins::MemoryBytes() const {
  return sizeof(*this) + counts_.capacity() * sizeof(std::uint64_t) +
         sums_.capacity() * sizeof(double);
}

void StreamingMoments::Add(double x, double weight) {
  if (weight <= 0) return;
  if (wsum_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  wsum_ += weight;
  const double d = x - mean_;
  mean_ += weight / wsum_ * d;
  m2_ += weight * d * (x - mean_);
}

void StreamingMoments::Merge(const StreamingMoments& other) {
  if (other.wsum_ == 0) return;
  if (wsum_ == 0) {
    *this = other;
    return;
  }
  const double d = other.mean_ - mean_;
  const double w = wsum_ + other.wsum_;
  m2_ += other.m2_ + d * d * wsum_ * other.wsum_ / w;
  mean_ += d * other.wsum_ / w;
  wsum_ = w;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingMoments::StdDev() const { return std::sqrt(Variance()); }

}  // namespace mcloud
