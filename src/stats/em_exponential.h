// Expectation–maximization fitting of mixtures of exponentials.
//
// §3.1.4 / Table 2 of the paper fits mixture-exponential models to the
// average file size of store-only and retrieve-only sessions; the number of
// components n is chosen iteratively: n is increased until an added component
// receives negligible weight (α < 0.001). SelectMixtureExponential implements
// exactly that procedure.
#pragma once

#include <span>

#include "stats/em_gaussian.h"  // EmOptions
#include "util/distributions.h"

namespace mcloud {

struct MixtureExponentialFit {
  MixtureExponential mixture;
  double log_likelihood = 0;
  int iterations = 0;
  bool converged = false;
};

/// Fit a k-component mixture of exponentials to non-negative `data` by EM.
/// Initialization spreads component means geometrically across the data
/// quantiles. Throws FitError on degenerate input.
[[nodiscard]] MixtureExponentialFit FitMixtureExponential(
    std::span<const double> data, std::size_t k, const EmOptions& opts = {});

/// Weighted variant: sample i carries multiplicity `weights[i]` > 0 (e.g. a
/// histogram-bin count), so a large sample collapsed into per-bin (mean,
/// count) pairs fits in O(bins) per EM iteration instead of O(n). All sums
/// (likelihood, responsibilities, component updates) are weighted;
/// `weights` must match `data` in length.
[[nodiscard]] MixtureExponentialFit FitMixtureExponentialWeighted(
    std::span<const double> data, std::span<const double> weights,
    std::size_t k, const EmOptions& opts = {});

struct MixtureSelection {
  MixtureExponentialFit fit;    ///< the selected model (n components)
  std::size_t selected_n = 0;
  double rejected_weight = 0;   ///< smallest α of the (n+1)-component model
};

/// The paper's model-selection loop: fit with n = 1, 2, ... components until
/// adding a component yields a weight below `weight_floor` (default 0.001),
/// then return the previous model.
[[nodiscard]] MixtureSelection SelectMixtureExponential(
    std::span<const double> data, std::size_t max_components = 6,
    double weight_floor = 1e-3, const EmOptions& opts = {});

/// Weighted variant of the selection loop (see
/// FitMixtureExponentialWeighted); every candidate fit is weighted.
[[nodiscard]] MixtureSelection SelectMixtureExponentialWeighted(
    std::span<const double> data, std::span<const double> weights,
    std::size_t max_components = 6, double weight_floor = 1e-3,
    const EmOptions& opts = {});

/// Log-likelihood under a mixture-exponential model.
[[nodiscard]] double MixtureExponentialLogLikelihood(
    const MixtureExponential& mixture, std::span<const double> data);

}  // namespace mcloud
