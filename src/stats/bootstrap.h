// Nonparametric bootstrap confidence intervals.
//
// The paper reports point estimates for its fitted models; on synthetic data
// it is cheap to also quantify estimator uncertainty. BootstrapPercentileCi
// resamples the data with replacement, re-runs an arbitrary fitting
// functional, and returns percentile intervals for each returned statistic
// (e.g. the SE stretch factor c and slope a of Fig 10).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/error.h"
#include "util/rng.h"
#include "util/summary.h"

namespace mcloud {

struct BootstrapCi {
  double point = 0;  ///< statistic on the original sample
  double lo = 0;     ///< lower percentile bound
  double hi = 0;     ///< upper percentile bound
};

/// `statistic` maps a sample to one or more numbers (all replicates must
/// return the same count). `confidence` is the two-sided level (e.g. 0.95).
/// Replicates whose statistic computation throws (e.g. a degenerate
/// resample breaks a fit) are skipped; at least half must survive.
[[nodiscard]] inline std::vector<BootstrapCi> BootstrapPercentileCi(
    std::span<const double> data,
    const std::function<std::vector<double>(std::span<const double>)>&
        statistic,
    std::size_t replicates = 200, double confidence = 0.95,
    std::uint64_t seed = 1) {
  MCLOUD_REQUIRE(!data.empty(), "bootstrap needs data");
  MCLOUD_REQUIRE(replicates >= 10, "bootstrap needs >= 10 replicates");
  MCLOUD_REQUIRE(confidence > 0 && confidence < 1,
                 "confidence must be in (0,1)");

  const std::vector<double> point = statistic(data);
  MCLOUD_REQUIRE(!point.empty(), "statistic returned nothing");

  Rng rng(seed);
  std::vector<std::vector<double>> replicate_stats(point.size());
  std::vector<double> resample(data.size());
  std::size_t survived = 0;
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& x : resample) x = data[rng.UniformInt(data.size())];
    try {
      const std::vector<double> s = statistic(resample);
      MCLOUD_CHECK(s.size() == point.size(),
                   "statistic arity changed across replicates");
      for (std::size_t j = 0; j < s.size(); ++j)
        replicate_stats[j].push_back(s[j]);
      ++survived;
    } catch (const Error&) {
      // degenerate resample; skip
    }
  }
  MCLOUD_REQUIRE(survived * 2 >= replicates,
                 "too many bootstrap replicates failed");

  const double alpha = (1.0 - confidence) / 2.0;
  std::vector<BootstrapCi> out(point.size());
  for (std::size_t j = 0; j < point.size(); ++j) {
    out[j].point = point[j];
    out[j].lo = Percentile(replicate_stats[j], 100.0 * alpha);
    out[j].hi = Percentile(replicate_stats[j], 100.0 * (1.0 - alpha));
  }
  return out;
}

}  // namespace mcloud
