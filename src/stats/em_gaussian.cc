#include "stats/em_gaussian.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "stats/tdigest.h"
#include "util/error.h"
#include "util/summary.h"

namespace mcloud {
namespace {

double LogNormalPdf(double x, double mean, double stddev) {
  const double z = (x - mean) / stddev;
  return -0.5 * z * z - std::log(stddev) -
         0.5 * std::log(2.0 * std::numbers::pi);
}

/// log(sum(exp(v))) without overflow.
double LogSumExp(std::span<const double> v) {
  const double m = *std::max_element(v.begin(), v.end());
  double s = 0;
  for (double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

double GaussianMixtureLogLikelihood(const GaussianMixture& mixture,
                                    std::span<const double> data) {
  double ll = 0;
  std::vector<double> lp(mixture.size());
  for (double x : data) {
    for (std::size_t k = 0; k < mixture.size(); ++k) {
      const auto& c = mixture.components()[k];
      lp[k] = std::log(std::max(c.weight, 1e-300)) +
              LogNormalPdf(x, c.mean, c.stddev);
    }
    ll += LogSumExp(lp);
  }
  return ll;
}

GaussianMixtureFit FitGaussianMixture(std::span<const double> data,
                                      std::size_t k, const EmOptions& opts) {
  MCLOUD_REQUIRE(k >= 1, "need at least one component");
  if (data.size() < 2 * k)
    throw FitError("too few data points for Gaussian mixture EM");

  // Deterministic range-based initialization: means spread evenly across the
  // data range. Quantile-based initialization fails on very unbalanced
  // mixtures (e.g. inter-session gaps are a small fraction of all gaps, yet
  // far from the bulk), which range spreading handles.
  RunningStats overall;
  for (double x : data) overall.Add(x);
  if (overall.StdDev() <= 0)
    throw FitError("degenerate data: zero variance");
  const double range = overall.Max() - overall.Min();

  std::vector<GaussianMixture::Component> comps(k);
  for (std::size_t j = 0; j < k; ++j) {
    const double frac =
        (static_cast<double>(j) + 0.5) / static_cast<double>(k);
    comps[j].mean = overall.Min() + frac * range;
    // Narrow enough that the components start separated (wide initial
    // stddevs make every component explain everything and EM settles in a
    // merged local optimum), wide enough to keep all points in reach.
    comps[j].stddev = std::max(
        std::min(overall.StdDev() / 2.0,
                 range / (4.0 * static_cast<double>(k))),
        1e-6);
    comps[j].weight = 1.0 / static_cast<double>(k);
  }

  const auto n = data.size();
  std::vector<double> resp(n * k);  // responsibilities, row-major by point
  std::vector<double> lp(k);

  GaussianMixtureFit fit;
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    // E step.
    double ll = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        lp[j] = std::log(std::max(comps[j].weight, 1e-300)) +
                LogNormalPdf(data[i], comps[j].mean, comps[j].stddev);
      }
      const double lse = LogSumExp(lp);
      ll += lse;
      for (std::size_t j = 0; j < k; ++j)
        resp[i * k + j] = std::exp(lp[j] - lse);
    }

    // M step.
    for (std::size_t j = 0; j < k; ++j) {
      double nk = 0;
      double mean = 0;
      for (std::size_t i = 0; i < n; ++i) {
        nk += resp[i * k + j];
        mean += resp[i * k + j] * data[i];
      }
      nk = std::max(nk, opts.min_weight * static_cast<double>(n));
      mean /= nk;
      double var = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = data[i] - mean;
        var += resp[i * k + j] * d * d;
      }
      var = std::max(var / nk, 1e-4);
      comps[j].weight = nk / static_cast<double>(n);
      comps[j].mean = mean;
      comps[j].stddev = std::sqrt(var);
    }
    // Renormalize weights (floors may have perturbed the sum).
    double wsum = 0;
    for (const auto& c : comps) wsum += c.weight;
    for (auto& c : comps) c.weight /= wsum;

    fit.iterations = iter;
    fit.log_likelihood = ll;
    // prev_ll is -inf on the first iteration; the relative-change test is
    // only meaningful once two finite likelihoods exist.
    if (std::isfinite(prev_ll) &&
        std::abs(ll - prev_ll) <=
            opts.tolerance * (std::abs(prev_ll) + 1.0)) {
      fit.converged = true;
      break;
    }
    prev_ll = ll;
  }

  // Report components sorted by mean for stable downstream interpretation
  // (component 0 = intra-session, component 1 = inter-session in Fig 3).
  std::sort(comps.begin(), comps.end(),
            [](const auto& a, const auto& b) { return a.mean < b.mean; });
  fit.mixture = GaussianMixture(std::move(comps));
  return fit;
}

GaussianMixtureFit FitGaussianMixtureWeighted(std::span<const double> values,
                                              std::span<const double> weights,
                                              std::size_t k,
                                              const EmOptions& opts) {
  MCLOUD_REQUIRE(k >= 1, "need at least one component");
  MCLOUD_REQUIRE(values.size() == weights.size(),
                 "values/weights size mismatch");

  StreamingMoments overall;
  for (std::size_t i = 0; i < values.size(); ++i)
    overall.Add(values[i], weights[i]);
  const double wtotal = overall.WeightSum();
  if (wtotal < 2.0 * static_cast<double>(k))
    throw FitError("too little weight for Gaussian mixture EM");
  if (overall.StdDev() <= 0)
    throw FitError("degenerate data: zero variance");
  const double range = overall.Max() - overall.Min();

  // Identical initialization to FitGaussianMixture (see the rationale
  // there): means spread across the weighted data range, narrow stddevs.
  std::vector<GaussianMixture::Component> comps(k);
  for (std::size_t j = 0; j < k; ++j) {
    const double frac =
        (static_cast<double>(j) + 0.5) / static_cast<double>(k);
    comps[j].mean = overall.Min() + frac * range;
    comps[j].stddev = std::max(
        std::min(overall.StdDev() / 2.0,
                 range / (4.0 * static_cast<double>(k))),
        1e-6);
    comps[j].weight = 1.0 / static_cast<double>(k);
  }

  const auto n = values.size();
  std::vector<double> resp(n * k);
  std::vector<double> lp(k);

  GaussianMixtureFit fit;
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    // E step: responsibilities per distinct value; log-likelihood terms are
    // weighted by the value's multiplicity.
    double ll = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        lp[j] = std::log(std::max(comps[j].weight, 1e-300)) +
                LogNormalPdf(values[i], comps[j].mean, comps[j].stddev);
      }
      const double lse = LogSumExp(lp);
      ll += weights[i] * lse;
      for (std::size_t j = 0; j < k; ++j)
        resp[i * k + j] = std::exp(lp[j] - lse);
    }

    // M step with weighted sums.
    for (std::size_t j = 0; j < k; ++j) {
      double nk = 0;
      double mean = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double wr = weights[i] * resp[i * k + j];
        nk += wr;
        mean += wr * values[i];
      }
      nk = std::max(nk, opts.min_weight * wtotal);
      mean /= nk;
      double var = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = values[i] - mean;
        var += weights[i] * resp[i * k + j] * d * d;
      }
      var = std::max(var / nk, 1e-4);
      comps[j].weight = nk / wtotal;
      comps[j].mean = mean;
      comps[j].stddev = std::sqrt(var);
    }
    double wsum = 0;
    for (const auto& c : comps) wsum += c.weight;
    for (auto& c : comps) c.weight /= wsum;

    fit.iterations = iter;
    fit.log_likelihood = ll;
    if (std::isfinite(prev_ll) &&
        std::abs(ll - prev_ll) <=
            opts.tolerance * (std::abs(prev_ll) + 1.0)) {
      fit.converged = true;
      break;
    }
    prev_ll = ll;
  }

  std::sort(comps.begin(), comps.end(),
            [](const auto& a, const auto& b) { return a.mean < b.mean; });
  fit.mixture = GaussianMixture(std::move(comps));
  return fit;
}

}  // namespace mcloud
