#include "stats/regression.h"

#include <cmath>

#include "util/error.h"

namespace mcloud {

LinearFit FitLinear(std::span<const double> x, std::span<const double> y) {
  MCLOUD_REQUIRE(x.size() == y.size(), "x/y length mismatch");
  MCLOUD_REQUIRE(x.size() >= 2, "linear fit needs >= 2 points");

  const auto n = static_cast<double>(x.size());
  double sx = 0;
  double sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  MCLOUD_REQUIRE(sxx > 0, "x values are degenerate");

  LinearFit fit;
  fit.n = x.size();
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LinearFit FitLinearWeighted(std::span<const double> x,
                            std::span<const double> y,
                            std::span<const double> w) {
  MCLOUD_REQUIRE(x.size() == y.size() && x.size() == w.size(),
                 "x/y/w length mismatch");
  MCLOUD_REQUIRE(x.size() >= 2, "linear fit needs >= 2 points");

  double wsum = 0;
  double sx = 0;
  double sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    MCLOUD_REQUIRE(w[i] >= 0, "weights must be non-negative");
    wsum += w[i];
    sx += w[i] * x[i];
    sy += w[i] * y[i];
  }
  MCLOUD_REQUIRE(wsum > 0, "weights must not all be zero");
  const double mx = sx / wsum;
  const double my = sy / wsum;

  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += w[i] * dx * dx;
    sxy += w[i] * dx * dy;
    syy += w[i] * dy * dy;
  }
  MCLOUD_REQUIRE(sxx > 0, "x values are degenerate");

  LinearFit fit;
  fit.n = x.size();
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double RSquared(std::span<const double> observed,
                std::span<const double> predicted) {
  MCLOUD_REQUIRE(observed.size() == predicted.size(), "length mismatch");
  MCLOUD_REQUIRE(!observed.empty(), "empty sample");
  double mean = 0;
  for (double v : observed) mean += v;
  mean /= static_cast<double>(observed.size());

  double ss_res = 0;
  double ss_tot = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double t = observed[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot <= 0) return ss_res <= 0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace mcloud
