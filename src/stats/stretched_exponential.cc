#include "stats/stretched_exponential.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace mcloud {
namespace {

std::vector<double> SortedDescendingPositive(std::span<const double> values) {
  std::vector<double> v;
  v.reserve(values.size());
  for (double x : values) {
    if (x > 0) v.push_back(x);
  }
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

struct CornerPoint {
  double log_rank;  ///< ln(count of values >= this value)
  double value;
};

/// Collapse ranked data to its staircase corners: one point per distinct
/// value v, at rank = #values >= v, i.e. the empirical CCDF evaluated on the
/// data's support. For continuous data this is the full rank curve; for
/// integer-valued activity counts it removes the tie plateaus that would
/// otherwise dominate (and bias) a least-squares fit. Under a discretized
/// SE law, v^c is *exactly* linear in ln(rank) at these corners.
std::vector<CornerPoint> StaircaseCorners(std::span<const double> ranked) {
  std::vector<CornerPoint> corners;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const bool last_of_value =
        (i + 1 == ranked.size()) || (ranked[i + 1] != ranked[i]);
    if (last_of_value) {
      corners.push_back(
          CornerPoint{std::log(static_cast<double>(i + 1)), ranked[i]});
    }
  }
  // Subsample the corners geometrically by *rank*, giving each decade of
  // ranks equal weight. Without this, the extreme tail (where every value
  // is distinct and the empirical CCDF is Poisson-noisy) contributes
  // hundreds of points while the well-estimated bulk contributes a handful,
  // and the noise drags the stretch factor down.
  std::vector<CornerPoint> out;
  double target = 0.0;  // log rank
  const double step = std::log(1.12);
  for (const CornerPoint& c : corners) {
    if (c.log_rank + 1e-12 >= target) {
      out.push_back(c);
      target = c.log_rank + step;
    }
  }
  if (out.back().log_rank != corners.back().log_rank)
    out.push_back(corners.back());
  return out;
}

}  // namespace

StretchedExponentialFit FitStretchedExponentialRank(
    std::span<const double> values, double c_min, double c_max,
    double c_step) {
  MCLOUD_REQUIRE(c_min > 0 && c_max >= c_min && c_step > 0,
                 "invalid stretch-factor grid");
  const std::vector<double> ranked = SortedDescendingPositive(values);
  if (ranked.size() < 3)
    throw FitError("stretched-exponential fit needs >= 3 positive values");

  const std::vector<CornerPoint> corners = StaircaseCorners(ranked);
  if (corners.size() < 3)
    throw FitError("too few distinct values for a rank fit");

  std::vector<double> log_rank(corners.size());
  std::vector<double> weight(corners.size());
  for (std::size_t i = 0; i < corners.size(); ++i) {
    log_rank[i] = corners[i].log_rank;
    // Inverse-variance weighting: the empirical CCDF at rank m has relative
    // error ~1/sqrt(m), so the transformed ordinate's variance scales as
    // 1/m. Without this, the handful of extreme-tail points (rank 1..10)
    // would dominate the grid search and bias the stretch factor low.
    weight[i] = std::exp(corners[i].log_rank);
  }

  StretchedExponentialFit best;
  best.r_squared = -1;
  std::vector<double> yc(corners.size());

  for (double c = c_min; c <= c_max + 1e-12; c += c_step) {
    for (std::size_t i = 0; i < corners.size(); ++i)
      yc[i] = std::pow(corners[i].value, c);
    const LinearFit lin = FitLinearWeighted(log_rank, yc, weight);
    if (lin.slope >= 0) continue;  // SE rank law requires a negative slope
    if (lin.r_squared > best.r_squared) {
      best.c = c;
      best.a = -lin.slope;
      best.b = lin.intercept;
      best.x0 = std::pow(best.a, 1.0 / c);
      best.r_squared = lin.r_squared;
    }
  }
  if (best.r_squared < 0)
    throw FitError("no stretch factor produced a decreasing rank fit");
  return best;
}

LinearFit FitPowerLawRank(std::span<const double> values) {
  const std::vector<double> ranked = SortedDescendingPositive(values);
  if (ranked.size() < 3)
    throw FitError("power-law fit needs >= 3 positive values");
  // Same staircase-corner points as the SE fit, so the R² comparison
  // between the two models (the paper's power-law rejection) is apples to
  // apples.
  const std::vector<CornerPoint> corners = StaircaseCorners(ranked);
  if (corners.size() < 3)
    throw FitError("too few distinct values for a rank fit");
  std::vector<double> log_rank(corners.size());
  std::vector<double> log_val(corners.size());
  std::vector<double> weight(corners.size());
  for (std::size_t i = 0; i < corners.size(); ++i) {
    log_rank[i] = corners[i].log_rank;
    log_val[i] = std::log(corners[i].value);
    weight[i] = std::exp(corners[i].log_rank);
  }
  return FitLinearWeighted(log_rank, log_val, weight);
}

double StretchedExponentialRankValue(const StretchedExponentialFit& fit,
                                     std::size_t rank) {
  MCLOUD_REQUIRE(rank >= 1, "rank is 1-based");
  const double yc =
      -fit.a * std::log(static_cast<double>(rank)) + fit.b;
  if (yc <= 0) return 0;
  return std::pow(yc, 1.0 / fit.c);
}

}  // namespace mcloud
