#include "core/report.h"

#include <cstdio>
#include <cstring>

#include "model/paper_params.h"
#include "util/summary.h"

namespace mcloud::core {
namespace {

void Append(std::string& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

}  // namespace

std::string RenderFindings(const FullReport& r) {
  std::string out;
  out += "=== mcloud findings summary (paper vs measured) ===\n\n";

  Append(out, "[dataset]   records=%zu  mobile users=%zu  devices=%zu  "
              "android share=%.1f%% (paper %.1f%%)\n",
         r.records, r.mobile_users, r.mobile_devices,
         100 * r.android_access_share, 100 * paper::kAndroidShare);

  Append(out, "[workload]  peak hour-of-day=%d (paper %d)  "
              "retrieve/store volume=%.2f  stored/retrieved files=%.2f "
              "(paper ~%.1f)\n",
         r.timeseries.PeakHourOfDay(), paper::kPeakHourOfDay,
         r.timeseries.TotalStoreGb() > 0
             ? r.timeseries.TotalRetrieveGb() / r.timeseries.TotalStoreGb()
             : 0.0,
         r.timeseries.TotalRetrievedFiles() > 0
             ? static_cast<double>(r.timeseries.TotalStoredFiles()) /
                   static_cast<double>(r.timeseries.TotalRetrievedFiles())
             : 0.0,
         paper::kStoredToRetrievedFileCountRatio);

  Append(out, "[sessions]  intra gap mean=%.1fs (paper ~10s)  "
              "inter gap mean=%.2f days (paper ~1 day)  "
              "valley tau=%.0f min (paper 60 min)\n",
         r.interval_model.intra_mean_seconds,
         r.interval_model.inter_mean_seconds / kDay,
         r.interval_model.valley_tau / kMinute);

  Append(out, "[sessions]  store-only=%.1f%% (paper %.1f%%)  "
              "retrieve-only=%.1f%% (paper %.1f%%)  mixed=%.1f%% "
              "(paper ~%.1f%%)\n",
         100 * r.session_split.StoreShare(),
         100 * paper::kStoreOnlySessionShare,
         100 * r.session_split.RetrieveShare(),
         100 * paper::kRetrieveOnlySessionShare,
         100 * r.session_split.MixedShare(),
         100 * paper::kMixedSessionShare);

  for (const auto& g : r.burstiness) {
    Append(out, "[burstiness] sessions with >%zu ops: %.1f%% below "
                "normalized operating time 0.1 (paper >80%% for >1 op)\n",
           g.min_ops_exclusive,
           100 * analysis::FractionBelow(g, paper::kBurstyOperatingTimeBound));
  }

  const auto& store_mix =
      r.store_size_model.selection.fit.mixture.components();
  Append(out, "[file size] store-only mixture (n=%zu):", store_mix.size());
  for (const auto& c : store_mix)
    Append(out, "  a=%.2f u=%.1fMB", c.weight, c.mean);
  Append(out, "  (paper: 0.91/1.5, 0.07/13.1, 0.02/77.4)\n");
  const auto& ret_mix =
      r.retrieve_size_model.selection.fit.mixture.components();
  Append(out, "[file size] retrieve-only mixture (n=%zu):", ret_mix.size());
  for (const auto& c : ret_mix)
    Append(out, "  a=%.2f u=%.1fMB", c.weight, c.mean);
  Append(out, "  (paper: 0.46/1.6, 0.26/29.8, 0.28/146.8)\n");

  Append(out, "[usage]     mobile-only classes (occ/up/down/mixed): "
              "%.1f/%.1f/%.1f/%.1f%%  (paper %.1f/%.1f/%.1f/%.1f%%)\n",
         100 * r.mobile_only_column.user_share[0],
         100 * r.mobile_only_column.user_share[1],
         100 * r.mobile_only_column.user_share[2],
         100 * r.mobile_only_column.user_share[3],
         100 * paper::kMobileOccasionalShare,
         100 * paper::kMobileUploadOnlyShare,
         100 * paper::kMobileDownloadOnlyShare,
         100 * paper::kMobileMixedShare);

  for (const auto& e : r.engagement) {
    Append(out, "[engagement] %-14s day1 users=%zu  never returned=%.1f%%\n",
           std::string(analysis::ToString(e.group)).c_str(), e.day1_users,
           100 * e.never_returned);
  }
  for (const auto& rr : r.retrieval_returns) {
    Append(out,
           "[retrieval]  %-14s day1 uploaders=%zu  never retrieved=%.1f%% "
           "(paper: ~80%% for mobile-only)\n",
           std::string(analysis::ToString(rr.group)).c_str(),
           rr.day1_uploaders, 100 * rr.never_retrieved);
  }

  Append(out, "[activity]  store SE: c=%.2f a=%.3f R2=%.4f "
              "(paper c=%.2f a=%.3f R2=%.4f)  power-law R2=%.4f\n",
         r.store_activity.se.c, r.store_activity.se.a,
         r.store_activity.se.r_squared, paper::kStoreActivitySe.c,
         paper::kStoreActivitySe.a, paper::kStoreActivitySe.r2,
         r.store_activity.power_law.r_squared);
  Append(out, "[activity]  retrieve SE: c=%.2f a=%.3f R2=%.4f "
              "(paper c=%.2f a=%.3f R2=%.4f)  power-law R2=%.4f\n",
         r.retrieve_activity.se.c, r.retrieve_activity.se.a,
         r.retrieve_activity.se.r_squared, paper::kRetrieveActivitySe.c,
         paper::kRetrieveActivitySe.a, paper::kRetrieveActivitySe.r2,
         r.retrieve_activity.power_law.r_squared);

  out += "\nImplications (Table 4): write-dominated sessions; decouple "
         "metadata from data management; bundling has low value; delta "
         "encoding/compression unnecessary; defer uploads off-peak; "
         "cold-storage friendly; SE (not power-law) activity models.\n";
  return out;
}

namespace {

/// Incremental FNV-1a over 64-bit words; every scalar is widened to one
/// word (doubles by bit pattern) so the stream is unambiguous, and vector
/// lengths are hashed before their elements.
class Fnv {
 public:
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Size(std::size_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U64(v ? 1 : 0); }
  void D(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Doubles(const std::vector<double>& v) {
    Size(v.size());
    for (const double x : v) D(x);
  }
  [[nodiscard]] std::uint64_t hash() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

void HashMixtureExponential(Fnv& f, const MixtureExponentialFit& fit) {
  f.Size(fit.mixture.components().size());
  for (const auto& c : fit.mixture.components()) {
    f.D(c.weight);
    f.D(c.mean);
  }
  f.D(fit.log_likelihood);
  f.I64(fit.iterations);
  f.Bool(fit.converged);
}

void HashFileSizeModel(Fnv& f, const analysis::FileSizeModel& m) {
  HashMixtureExponential(f, m.selection.fit);
  f.Size(m.selection.selected_n);
  f.D(m.selection.rejected_weight);
  f.D(m.chi_square.statistic);
  f.D(m.chi_square.dof);
  f.D(m.chi_square.p_value);
  f.Size(m.chi_square.bins);
  f.Bool(m.chi_square_valid);
  f.Doubles(m.grid_mb);
  f.Doubles(m.empirical_ccdf);
  f.Doubles(m.model_ccdf);
}

void HashUserTypeColumn(Fnv& f, const analysis::UserTypeColumn& c) {
  f.Size(c.users);
  for (const double v : c.user_share) f.D(v);
  for (const double v : c.store_share) f.D(v);
  for (const double v : c.retrieve_share) f.D(v);
}

void HashActivity(Fnv& f, const analysis::ActivityModelResult& a) {
  f.D(a.se.c);
  f.D(a.se.a);
  f.D(a.se.b);
  f.D(a.se.x0);
  f.D(a.se.r_squared);
  f.D(a.power_law.slope);
  f.D(a.power_law.intercept);
  f.D(a.power_law.r_squared);
  f.Size(a.power_law.n);
  f.Size(a.active_users);
  f.Doubles(a.ranked);
}

void HashLogBins(Fnv& f, const LogBins& b) {
  f.D(b.log10_lo());
  f.D(b.log10_hi());
  f.Size(b.bins());
  for (std::size_t i = 0; i < b.bins(); ++i) {
    f.U64(b.Count(i));
    f.D(b.Sum(i));
  }
  f.U64(b.Total());
  f.D(b.Min());
  f.D(b.Max());
}

void HashTDigest(Fnv& f, const TDigest& d) {
  const std::vector<Centroid> cs = d.CanonicalCentroids();
  f.Size(cs.size());
  for (const Centroid& c : cs) {
    f.D(c.mean);
    f.U64(c.weight);
  }
  f.U64(d.Count());
  f.D(d.Min());
  f.D(d.Max());
}

}  // namespace

std::uint64_t FingerprintReport(const FullReport& r) {
  Fnv f;
  f.Size(r.records);
  f.Size(r.mobile_users);
  f.Size(r.mobile_devices);
  f.D(r.android_access_share);

  f.Size(r.timeseries.hours.size());
  for (const auto& h : r.timeseries.hours) {
    f.I64(h.hour);
    f.U64(h.store_volume_bytes);
    f.U64(h.retrieve_volume_bytes);
    f.U64(h.stored_files);
    f.U64(h.retrieved_files);
  }

  const auto& im = r.interval_model;
  f.D(im.log10_histogram.lo());
  f.D(im.log10_histogram.hi());
  f.Size(im.log10_histogram.bins());
  for (std::size_t i = 0; i < im.log10_histogram.bins(); ++i)
    f.U64(im.log10_histogram.Count(i));
  f.U64(im.log10_histogram.Underflow());
  f.U64(im.log10_histogram.Overflow());
  f.Size(im.gmm.mixture.components().size());
  for (const auto& c : im.gmm.mixture.components()) {
    f.D(c.weight);
    f.D(c.mean);
    f.D(c.stddev);
  }
  f.D(im.gmm.log_likelihood);
  f.I64(im.gmm.iterations);
  f.Bool(im.gmm.converged);
  f.D(im.valley_tau);
  f.D(im.gmm_tau);
  f.D(im.intra_mean_seconds);
  f.D(im.inter_mean_seconds);

  f.Size(r.session_split.total);
  f.Size(r.session_split.store_only);
  f.Size(r.session_split.retrieve_only);
  f.Size(r.session_split.mixed);

  f.Size(r.burstiness.size());
  for (const auto& g : r.burstiness) {
    f.Size(g.min_ops_exclusive);
    f.Doubles(g.normalized_times);
  }

  HashFileSizeModel(f, r.store_size_model);
  HashFileSizeModel(f, r.retrieve_size_model);

  HashUserTypeColumn(f, r.mobile_only_column);
  HashUserTypeColumn(f, r.mobile_pc_column);
  HashUserTypeColumn(f, r.pc_only_column);

  f.Size(r.engagement.size());
  for (const auto& e : r.engagement) {
    f.U64(static_cast<std::uint64_t>(e.group));
    f.Size(e.day1_users);
    f.Doubles(e.active_on_day);
    f.D(e.never_returned);
  }
  f.Size(r.retrieval_returns.size());
  for (const auto& e : r.retrieval_returns) {
    f.U64(static_cast<std::uint64_t>(e.group));
    f.Size(e.day1_uploaders);
    f.Doubles(e.retrieved_by_day);
    f.D(e.never_retrieved);
  }

  HashActivity(f, r.store_activity);
  HashActivity(f, r.retrieve_activity);

  HashLogBins(f, r.sketches.intervals);
  HashLogBins(f, r.sketches.store_avg_mb);
  HashLogBins(f, r.sketches.retrieve_avg_mb);
  HashTDigest(f, r.sketches.store_avg_mb_digest);
  HashTDigest(f, r.sketches.retrieve_avg_mb_digest);
  f.U64(r.sketches.single_op_sessions);
  f.U64(r.sketches.over20_op_sessions);
  f.U64(r.sketches.ratio_middle_users);
  f.U64(r.sketches.ratio_sample_users);
  return f.hash();
}

}  // namespace mcloud::core
