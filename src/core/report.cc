#include "core/report.h"

#include <cstdio>

#include "model/paper_params.h"
#include "util/summary.h"

namespace mcloud::core {
namespace {

void Append(std::string& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

}  // namespace

std::string RenderFindings(const FullReport& r) {
  std::string out;
  out += "=== mcloud findings summary (paper vs measured) ===\n\n";

  Append(out, "[dataset]   records=%zu  mobile users=%zu  devices=%zu  "
              "android share=%.1f%% (paper %.1f%%)\n",
         r.records, r.mobile_users, r.mobile_devices,
         100 * r.android_access_share, 100 * paper::kAndroidShare);

  Append(out, "[workload]  peak hour-of-day=%d (paper %d)  "
              "retrieve/store volume=%.2f  stored/retrieved files=%.2f "
              "(paper ~%.1f)\n",
         r.timeseries.PeakHourOfDay(), paper::kPeakHourOfDay,
         r.timeseries.TotalStoreGb() > 0
             ? r.timeseries.TotalRetrieveGb() / r.timeseries.TotalStoreGb()
             : 0.0,
         r.timeseries.TotalRetrievedFiles() > 0
             ? static_cast<double>(r.timeseries.TotalStoredFiles()) /
                   static_cast<double>(r.timeseries.TotalRetrievedFiles())
             : 0.0,
         paper::kStoredToRetrievedFileCountRatio);

  Append(out, "[sessions]  intra gap mean=%.1fs (paper ~10s)  "
              "inter gap mean=%.2f days (paper ~1 day)  "
              "valley tau=%.0f min (paper 60 min)\n",
         r.interval_model.intra_mean_seconds,
         r.interval_model.inter_mean_seconds / kDay,
         r.interval_model.valley_tau / kMinute);

  Append(out, "[sessions]  store-only=%.1f%% (paper %.1f%%)  "
              "retrieve-only=%.1f%% (paper %.1f%%)  mixed=%.1f%% "
              "(paper ~%.1f%%)\n",
         100 * r.session_split.StoreShare(),
         100 * paper::kStoreOnlySessionShare,
         100 * r.session_split.RetrieveShare(),
         100 * paper::kRetrieveOnlySessionShare,
         100 * r.session_split.MixedShare(),
         100 * paper::kMixedSessionShare);

  for (const auto& g : r.burstiness) {
    Append(out, "[burstiness] sessions with >%zu ops: %.1f%% below "
                "normalized operating time 0.1 (paper >80%% for >1 op)\n",
           g.min_ops_exclusive,
           100 * analysis::FractionBelow(g, paper::kBurstyOperatingTimeBound));
  }

  const auto& store_mix =
      r.store_size_model.selection.fit.mixture.components();
  Append(out, "[file size] store-only mixture (n=%zu):", store_mix.size());
  for (const auto& c : store_mix)
    Append(out, "  a=%.2f u=%.1fMB", c.weight, c.mean);
  Append(out, "  (paper: 0.91/1.5, 0.07/13.1, 0.02/77.4)\n");
  const auto& ret_mix =
      r.retrieve_size_model.selection.fit.mixture.components();
  Append(out, "[file size] retrieve-only mixture (n=%zu):", ret_mix.size());
  for (const auto& c : ret_mix)
    Append(out, "  a=%.2f u=%.1fMB", c.weight, c.mean);
  Append(out, "  (paper: 0.46/1.6, 0.26/29.8, 0.28/146.8)\n");

  Append(out, "[usage]     mobile-only classes (occ/up/down/mixed): "
              "%.1f/%.1f/%.1f/%.1f%%  (paper %.1f/%.1f/%.1f/%.1f%%)\n",
         100 * r.mobile_only_column.user_share[0],
         100 * r.mobile_only_column.user_share[1],
         100 * r.mobile_only_column.user_share[2],
         100 * r.mobile_only_column.user_share[3],
         100 * paper::kMobileOccasionalShare,
         100 * paper::kMobileUploadOnlyShare,
         100 * paper::kMobileDownloadOnlyShare,
         100 * paper::kMobileMixedShare);

  for (const auto& e : r.engagement) {
    Append(out, "[engagement] %-14s day1 users=%zu  never returned=%.1f%%\n",
           std::string(analysis::ToString(e.group)).c_str(), e.day1_users,
           100 * e.never_returned);
  }
  for (const auto& rr : r.retrieval_returns) {
    Append(out,
           "[retrieval]  %-14s day1 uploaders=%zu  never retrieved=%.1f%% "
           "(paper: ~80%% for mobile-only)\n",
           std::string(analysis::ToString(rr.group)).c_str(),
           rr.day1_uploaders, 100 * rr.never_retrieved);
  }

  Append(out, "[activity]  store SE: c=%.2f a=%.3f R2=%.4f "
              "(paper c=%.2f a=%.3f R2=%.4f)  power-law R2=%.4f\n",
         r.store_activity.se.c, r.store_activity.se.a,
         r.store_activity.se.r_squared, paper::kStoreActivitySe.c,
         paper::kStoreActivitySe.a, paper::kStoreActivitySe.r2,
         r.store_activity.power_law.r_squared);
  Append(out, "[activity]  retrieve SE: c=%.2f a=%.3f R2=%.4f "
              "(paper c=%.2f a=%.3f R2=%.4f)  power-law R2=%.4f\n",
         r.retrieve_activity.se.c, r.retrieve_activity.se.a,
         r.retrieve_activity.se.r_squared, paper::kRetrieveActivitySe.c,
         paper::kRetrieveActivitySe.a, paper::kRetrieveActivitySe.r2,
         r.retrieve_activity.power_law.r_squared);

  out += "\nImplications (Table 4): write-dominated sessions; decouple "
         "metadata from data management; bundling has low value; delta "
         "encoding/compression unnecessary; defer uploads off-peak; "
         "cold-storage friendly; SE (not power-law) activity models.\n";
  return out;
}

}  // namespace mcloud::core
