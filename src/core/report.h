// The aggregated findings report — everything §3 of the paper derives from
// the trace, in one struct, with a renderer that prints the Table 4-style
// summary of findings and implications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/activity_model.h"
#include "analysis/burstiness.h"
#include "analysis/engagement.h"
#include "analysis/file_size_model.h"
#include "analysis/interval_model.h"
#include "analysis/session_stats.h"
#include "analysis/usage_patterns.h"
#include "analysis/workload_timeseries.h"

namespace mcloud::core {

/// Streaming sketches and exact counters behind the fitted summaries —
/// the O(sketch) replacement for the retained raw-sample vectors (DESIGN.md
/// §12). Always populated, identically by every engine and at every thread
/// count. The paper-fidelity validation layer (src/validate/) runs its
/// grouped KS/AD gates and share checks on these instead of the fitted
/// parameters, so a fit that silently absorbs a generator regression still
/// trips the gate.
struct ReportSketches {
  /// Mobile inter-file-operation gaps: jitter-binned log10 sketch
  /// (Fig 3 input; see interval_model.h).
  LogBins intervals = analysis::MakeIntervalSketch();
  /// Per-session average file size (MB) of mobile store-only /
  /// retrieve-only sessions (Table 2 / Fig 6 inputs).
  LogBins store_avg_mb = analysis::MakeSizeSketch();
  LogBins retrieve_avg_mb = analysis::MakeSizeSketch();
  TDigest store_avg_mb_digest;
  TDigest retrieve_avg_mb_digest;
  /// Fig 5a counters over all mobile sessions.
  std::uint64_t single_op_sessions = 0;
  std::uint64_t over20_op_sessions = 0;
  /// Fig 7a counters: mobile-only users with |log10 ratio| < 5, and the
  /// ratio-sample size (zero-traffic users skipped).
  std::uint64_t ratio_middle_users = 0;
  std::uint64_t ratio_sample_users = 0;

  [[nodiscard]] std::size_t MemoryBytes() const {
    return intervals.MemoryBytes() + store_avg_mb.MemoryBytes() +
           retrieve_avg_mb.MemoryBytes() + store_avg_mb_digest.MemoryBytes() +
           retrieve_avg_mb_digest.MemoryBytes() + 4 * sizeof(std::uint64_t);
  }
};

struct FullReport {
  // Dataset overview (§2.2).
  std::size_t records = 0;
  std::size_t mobile_users = 0;
  std::size_t mobile_devices = 0;
  double android_access_share = 0;

  // Workload (§2.4).
  analysis::WorkloadTimeseries timeseries;

  // Sessions (§3.1).
  analysis::IntervalModel interval_model{
      Histogram(0.0, 6.0, 60), {}, 0, 0, 0, 0};
  analysis::SessionTypeSplit session_split;
  std::vector<analysis::BurstinessGroup> burstiness;
  analysis::FileSizeModel store_size_model;
  analysis::FileSizeModel retrieve_size_model;

  // Usage patterns (§3.2).
  analysis::UserTypeColumn mobile_only_column;
  analysis::UserTypeColumn mobile_pc_column;
  analysis::UserTypeColumn pc_only_column;
  std::vector<analysis::EngagementCurve> engagement;
  std::vector<analysis::RetrievalReturnCurve> retrieval_returns;
  analysis::ActivityModelResult store_activity;
  analysis::ActivityModelResult retrieve_activity;

  /// Streaming validation inputs (always populated; O(sketch) memory).
  ReportSketches sketches;
};

/// Render the Table 4-style findings summary (paper value vs measured).
[[nodiscard]] std::string RenderFindings(const FullReport& report);

/// Order-sensitive FNV-1a hash over every field of the report (doubles by
/// bit pattern). Two reports fingerprint equal iff they are bit-identical —
/// the equivalence oracle for the columnar vs AoS engines and for thread
/// sweeps.
[[nodiscard]] std::uint64_t FingerprintReport(const FullReport& report);

}  // namespace mcloud::core
